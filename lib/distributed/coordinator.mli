(** The ACK+16 distributed min-cut pipeline the paper's introduction
    describes: each server sends (a) a constant-accuracy for-all sketch and
    (b) a (1 ± ε) for-each sketch of its edge shard; the coordinator merges
    the coarse sparsifiers to find all O(1)-approximate minimum cuts (at
    most poly(n) of them, located by repeated contraction) and then scores
    each candidate by summing the servers' for-each estimates — paying the
    ε-dependent communication only once per server at for-each rates.

    The baselines quantify the trade-off: shipping raw edges, or shipping
    full-accuracy for-all sketches. All message sizes are metered in bits
    by the sketches' canonical encodings.

    {!min_cut_robust} runs the same pipeline over a lossy medium
    ({!Dcs_util.Fault}): sketches travel in checksummed frames, the
    coordinator detects dropped or corrupted deliveries and re-requests
    with exponential backoff up to a retry budget, and past the budget it
    degrades gracefully — candidates come from the surviving coarse
    sketches, scores are rescaled by the advertised weight of surviving
    fine shards, and the error bound is widened accordingly. {!min_cut} is
    exactly the zero-fault instance: same estimates, same metered bits.

    Stragglers: the policy's timeout rate models a shard sketch arriving
    past the coordinator's per-sketch deadline. Rather than wait, the
    coordinator fires a {e speculative re-request} (sharing the same
    retry budget and backoff schedule as drop/corruption recovery) and
    keeps the late copy as a fallback — whichever intact copy it ends up
    holding is used, so straggling costs speculative bits but never loses
    a sketch, and the estimate is unchanged. *)

type config = {
  eps : float;            (** target accuracy of the final estimate *)
  eps_coarse : float;     (** accuracy of the for-all sketches (paper: 0.2;
                              default 0.5 at laptop scale) *)
  karger_trials : int;    (** contraction runs for candidate enumeration *)
  candidate_factor : float;  (** keep cuts within this factor of the best *)
}

val default_config : eps:float -> config

val validate : config -> unit
(** [Invalid_argument] unless [0 < eps < 1], [eps_coarse > 0],
    [karger_trials >= 1] and [candidate_factor >= 1.0]. Called by both
    entry points, so a bad config fails loudly instead of silently
    producing garbage estimates. *)

type result = {
  estimate : float;               (** refined min-cut estimate *)
  coarse_estimate : float;        (** best candidate value on the merged sparsifier *)
  cut : Dcs_graph.Cut.t;          (** the winning candidate *)
  candidates : int;               (** candidate cuts scored *)
  forall_bits : int;              (** Σ coarse sketch sizes *)
  foreach_bits : int;             (** Σ for-each sketch sizes *)
  total_bits : int;
  naive_bits : int;               (** shipping every shard verbatim *)
  fullacc_forall_bits : int;      (** shipping (1±ε) for-all sketches instead *)
}

val min_cut :
  Dcs_util.Prng.t -> config -> Dcs_graph.Ugraph.t array -> result
(** Runs the full pipeline over the shards. Requires the merged graph to be
    connected with at least 2 vertices. *)

(** {2 Fault-tolerant pipeline} *)

type fault_report = {
  retransmissions : int;          (** frames re-sent after a drop/corruption *)
  drops_seen : int;               (** deliveries that never arrived *)
  corruptions_detected : int;     (** frames rejected by their checksum *)
  stragglers : int;               (** deliveries that arrived past the
                                      per-sketch deadline (the policy's
                                      timeout rate models the overrun) *)
  speculative_retransmissions : int;
                                  (** duplicate requests fired while a
                                      straggler was still in flight *)
  coarse_lost : int;              (** coarse sketches abandoned past budget *)
  fine_lost : int;                (** fine sketches abandoned past budget *)
  checksum_bits : int;            (** CRC overhead on first sends *)
  retransmit_bits : int;          (** full frames re-sent (payload + CRC) *)
  control_bits : int;             (** per-shard weight advertisements *)
  backoff_units : int;            (** Σ 2^attempt simulated backoff waits *)
  eps_effective : float;          (** [eps], widened by the lost fine-shard
                                      weight fraction when degraded *)
  degraded : bool;                (** any sketch lost past the retry budget *)
}

type robust_result = { base : result; report : fault_report }

val min_cut_robust :
  ?retry_budget:int ->
  Dcs_util.Prng.t ->
  config ->
  fault:Dcs_util.Fault.t ->
  Dcs_graph.Ugraph.t array ->
  robust_result
(** [retry_budget] (default 4) is the number of re-requests allowed per
    sketch beyond the first send. With {!Dcs_util.Fault.disabled} the
    [base] result is bit-identical to {!min_cut}'s — the payload metering
    ([forall_bits] etc.) never includes the robustness overhead, which is
    reported separately in the {!fault_report}. Raises [Failure] when every
    coarse sketch is lost (or the surviving merge is disconnected): with
    no usable for-all information there is nothing to degrade to. *)

module Ugraph = Dcs_graph.Ugraph
module Cut = Dcs_graph.Cut
module Serialize = Dcs_graph.Serialize
module Sketch = Dcs_sketch.Sketch
module Prng = Dcs_util.Prng
module Fault = Dcs_util.Fault
module Channel = Dcs_comm.Channel
module Metrics = Dcs_obs_core.Metrics
module Trace = Dcs_obs_core.Trace

(* Registry mirrors of the per-run [fault_report] meters: each run bumps
   these by the report's values, so a registry delta over a batch equals the
   field-wise sum of the batch's reports (E18 relies on that identity). *)
let m_runs = Metrics.counter "coord.runs"
let m_shards = Metrics.counter "coord.shards"
let m_retrans = Metrics.counter "coord.retransmissions"
let m_drops = Metrics.counter "coord.drops_seen"
let m_corrupt = Metrics.counter "coord.corruptions_detected"
let m_stragglers = Metrics.counter "coord.stragglers"
let m_spec = Metrics.counter "coord.speculative_retransmissions"
let m_coarse_lost = Metrics.counter "coord.coarse_lost"
let m_fine_lost = Metrics.counter "coord.fine_lost"
let m_backoff = Metrics.counter "coord.backoff_units"
let m_candidates = Metrics.histogram ~buckets:12 "coord.candidate_cuts"

type config = {
  eps : float;
  eps_coarse : float;
  karger_trials : int;
  candidate_factor : float;
}

(* The paper uses (1 ± 0.2) coarse sketches; at laptop scale the ln n/ε²
   oversampling of Benczúr–Karger only drops below 1 for very dense graphs,
   so the default coarse accuracy is 0.5 (with a correspondingly wider
   candidate factor). EXPERIMENTS.md discusses the regime. *)
let default_config ~eps =
  { eps; eps_coarse = 0.5; karger_trials = 200; candidate_factor = 2.0 }

let validate cfg =
  if not (cfg.eps > 0.0 && cfg.eps < 1.0) then
    invalid_arg "Coordinator: eps must be in (0, 1)";
  if not (cfg.eps_coarse > 0.0) then
    invalid_arg "Coordinator: eps_coarse must be positive";
  if cfg.karger_trials < 1 then
    invalid_arg "Coordinator: karger_trials must be >= 1";
  if not (cfg.candidate_factor >= 1.0) then
    invalid_arg "Coordinator: candidate_factor must be >= 1.0"

type result = {
  estimate : float;
  coarse_estimate : float;
  cut : Dcs_graph.Cut.t;
  candidates : int;
  forall_bits : int;
  foreach_bits : int;
  total_bits : int;
  naive_bits : int;
  fullacc_forall_bits : int;
}

type fault_report = {
  retransmissions : int;
  drops_seen : int;
  corruptions_detected : int;
  stragglers : int;
  speculative_retransmissions : int;
  coarse_lost : int;
  fine_lost : int;
  checksum_bits : int;
  retransmit_bits : int;
  control_bits : int;
  backoff_units : int;
  eps_effective : float;
  degraded : bool;
}

type robust_result = { base : result; report : fault_report }

(* One server→coordinator sketch delivery over the lossy channel: frame the
   canonical encoding with a checksum, transmit, let the receiver detect a
   drop (nothing arrives) or a corruption (checksum fails) and re-request
   with exponential backoff, up to [retry_budget] retransmissions.

   When the injector is inactive no frame can be damaged, so the textual
   round-trip is skipped entirely (the metering is identical either way):
   this keeps the idealized pipeline's fast path — and makes [min_cut]
   literally the zero-fault instance of the robust one. *)
type 'a delivery_stats = {
  got : 'a option;
  payload_bits : int;
  d_retrans : int;
  d_drops : int;
  d_corrupt : int;
  d_stragglers : int;
  d_spec : int;
  d_backoff : int;
}

let deliver_sketch lossy ~fault ~retry_budget h =
  let payload_bits = Sketch.ugraph_encoding_bits h in
  let bits = payload_bits + Sketch.checksum_bits in
  if not (Fault.active fault) then begin
    ignore (Channel.transmit lossy ~bits "");
    { got = Some h; payload_bits; d_retrans = 0; d_drops = 0; d_corrupt = 0;
      d_stragglers = 0; d_spec = 0; d_backoff = 0 }
  end
  else begin
    let frame = Serialize.ugraph_to_frame h in
    (* [late] is a straggler frame: it was delivered, but only after the
       coordinator's per-sketch deadline (the policy's timeout rate models
       the deadline being exceeded). The coordinator speculatively
       re-requests instead of waiting — the late copy is kept as a fallback,
       so a straggling shard costs speculative bits, never data. *)
    let finish ~late attempt drops corrupt stragglers spec backoff =
      match late with
      | None ->
          { got = None; payload_bits; d_retrans = retry_budget; d_drops = drops;
            d_corrupt = corrupt; d_stragglers = stragglers; d_spec = spec;
            d_backoff = backoff }
      | Some s -> (
          match Serialize.ugraph_of_frame s with
          | Ok g ->
              { got = Some g; payload_bits; d_retrans = min attempt retry_budget;
                d_drops = drops; d_corrupt = corrupt; d_stragglers = stragglers;
                d_spec = spec; d_backoff = backoff }
          | Error _ ->
              { got = None; payload_bits; d_retrans = retry_budget;
                d_drops = drops; d_corrupt = corrupt + 1;
                d_stragglers = stragglers; d_spec = spec; d_backoff = backoff })
    in
    let rec go attempt ~late drops corrupt stragglers spec backoff =
      if attempt > retry_budget then
        finish ~late attempt drops corrupt stragglers spec backoff
      else
        match Channel.transmit lossy ~retransmission:(attempt > 0) ~bits frame with
        | Channel.Dropped ->
            go (attempt + 1) ~late (drops + 1) corrupt stragglers spec
              (backoff + (1 lsl attempt))
        | Channel.Received s ->
            if Fault.times_out fault then
              (* Straggler: fire a speculative re-request (if budget remains)
                 and remember the late copy. *)
              let spec = if attempt + 1 <= retry_budget then spec + 1 else spec in
              go (attempt + 1) ~late:(Some s) drops corrupt (stragglers + 1)
                spec
                (backoff + (1 lsl attempt))
            else (
              match Serialize.ugraph_of_frame s with
              | Ok g ->
                  { got = Some g; payload_bits; d_retrans = attempt;
                    d_drops = drops; d_corrupt = corrupt;
                    d_stragglers = stragglers; d_spec = spec;
                    d_backoff = backoff }
              | Error _ ->
                  go (attempt + 1) ~late drops (corrupt + 1) stragglers spec
                    (backoff + (1 lsl attempt)))
    in
    go 0 ~late:None 0 0 0 0 0
  end

let min_cut_robust ?(retry_budget = 4) rng cfg ~fault shards =
  validate cfg;
  if retry_budget < 0 then
    invalid_arg "Coordinator.min_cut_robust: retry_budget must be >= 0";
  if Array.length shards = 0 then invalid_arg "Coordinator.min_cut: no shards";
  Trace.with_span "coord.min_cut" @@ fun () ->
  Metrics.inc m_runs;
  Metrics.inc ~by:(Array.length shards) m_shards;
  let n = Ugraph.n shards.(0) in
  let lossy = Channel.create_lossy fault in
  (* Server side: each shard produces its two sketches and ships them in
     checksummed frames. A shard may be disconnected or even empty — the
     samplers handle that (strength indices are per-component). The rng
     draw order (all coarse sketches, then all fine ones, then the
     contraction trials) matches the idealized pipeline exactly. *)
  let sketch_shard builder shard =
    if Ugraph.m shard = 0 then shard else builder shard
  in
  let coarse =
    Trace.with_span "coord.coarse" @@ fun () ->
    Array.map
      (fun shard ->
        deliver_sketch lossy ~fault ~retry_budget
          (sketch_shard (Dcs_sketch.Benczur_karger.sparsify rng ~eps:cfg.eps_coarse) shard))
      shards
  in
  let fine =
    Trace.with_span "coord.fine" @@ fun () ->
    Array.map
      (fun shard ->
        deliver_sketch lossy ~fault ~retry_budget
          (sketch_shard (Dcs_sketch.Foreach_sampler.sparsify rng ~eps:cfg.eps) shard))
      shards
  in
  (* Coordinator side: merge the surviving coarse sparsifiers and enumerate
     near-minimum candidate cuts by repeated contraction. *)
  let surviving_coarse =
    Array.of_list
      (List.filter_map (fun d -> d.got) (Array.to_list coarse))
  in
  if Array.length surviving_coarse = 0 then
    failwith "Coordinator.min_cut_robust: every coarse sketch lost past the retry budget";
  let merged = Partition.union n surviving_coarse in
  if Fault.active fault && not (Dcs_graph.Traversal.is_connected merged) then
    failwith
      "Coordinator.min_cut_robust: merged coarse sparsifier disconnected (shards lost past the retry budget)";
  let candidates =
    Trace.with_span "coord.candidates" @@ fun () ->
    Dcs_mincut.Karger.candidate_cuts rng ~trials:cfg.karger_trials
      ~factor:cfg.candidate_factor merged
  in
  Metrics.observe m_candidates (List.length candidates);
  let coarse_estimate =
    match candidates with [] -> infinity | (v, _) :: _ -> v
  in
  (* Refine every candidate with the surviving for-each sketches: shard
     edges are disjoint, so a cut's estimate is the sum of the shards'
     estimates. Lost fine shards are compensated by rescaling with the
     advertised shard weights (the tiny control-plane message every server
     sends up front), and the error bound is widened by the lost weight
     fraction. With nothing lost the scale is exactly 1.0. *)
  let total_weight = Array.fold_left (fun acc s -> acc +. Ugraph.total_weight s) 0.0 shards in
  let surviving_weight =
    Array.fold_left
      (fun acc i ->
        match fine.(i).got with
        | Some _ -> acc +. Ugraph.total_weight shards.(i)
        | None -> acc)
      0.0
      (Array.init (Array.length shards) (fun i -> i))
  in
  let scale =
    if surviving_weight > 0.0 then total_weight /. surviving_weight else 1.0
  in
  (* Freeze each surviving fine sketch once before the candidate loop: the
     refinement evaluates every candidate cut against every shard, so the
     per-shard hashtable scans would dominate. *)
  let fine_frozen =
    Array.map
      (fun d -> Option.map Dcs_graph.Csr.of_ugraph d.got)
      fine
  in
  let score cut =
    Array.fold_left
      (fun acc h ->
        match h with
        | Some h -> acc +. Dcs_graph.Csr.cut_value h cut
        | None -> acc)
      0.0 fine_frozen
    *. scale
  in
  let best =
    Trace.with_span "coord.refine" @@ fun () ->
    List.fold_left
      (fun acc (_, cut) ->
        let v = score cut in
        match acc with
        | Some (bv, _) when bv <= v -> acc
        | _ -> Some (v, cut))
      None candidates
  in
  let estimate, cut =
    match best with
    | Some (v, c) -> (v, c)
    | None -> invalid_arg "Coordinator.min_cut: no candidate cuts (empty graph?)"
  in
  let sum f arr = Array.fold_left (fun acc d -> acc + f d) 0 arr in
  let forall_bits = sum (fun d -> d.payload_bits) coarse in
  let foreach_bits = sum (fun d -> d.payload_bits) fine in
  let naive_bits =
    Array.fold_left (fun acc s -> acc + Sketch.ugraph_encoding_bits s) 0 shards
  in
  let fullacc_forall_bits =
    Array.fold_left
      (fun acc shard ->
        if Ugraph.m shard = 0 then acc + Sketch.ugraph_encoding_bits shard
        else begin
          let h = Dcs_sketch.Benczur_karger.sparsify rng ~eps:cfg.eps shard in
          acc + Sketch.ugraph_encoding_bits h
        end)
      0 shards
  in
  let base =
    {
      estimate;
      coarse_estimate;
      cut;
      candidates = List.length candidates;
      forall_bits;
      foreach_bits;
      total_bits = forall_bits + foreach_bits;
      naive_bits;
      fullacc_forall_bits;
    }
  in
  let lost arr = sum (fun d -> if d.got = None then 1 else 0) arr in
  let coarse_lost = lost coarse and fine_lost = lost fine in
  let lost_weight = total_weight -. surviving_weight in
  let eps_effective =
    if fine_lost = 0 then cfg.eps
    else if total_weight > 0.0 then
      Float.min 1.0 (cfg.eps +. (lost_weight /. total_weight))
    else 1.0
  in
  let report =
    {
      retransmissions = sum (fun d -> d.d_retrans) coarse + sum (fun d -> d.d_retrans) fine;
      drops_seen = sum (fun d -> d.d_drops) coarse + sum (fun d -> d.d_drops) fine;
      corruptions_detected =
        sum (fun d -> d.d_corrupt) coarse + sum (fun d -> d.d_corrupt) fine;
      stragglers =
        sum (fun d -> d.d_stragglers) coarse + sum (fun d -> d.d_stragglers) fine;
      speculative_retransmissions =
        sum (fun d -> d.d_spec) coarse + sum (fun d -> d.d_spec) fine;
      coarse_lost;
      fine_lost;
      checksum_bits = Sketch.checksum_bits * 2 * Array.length shards;
      retransmit_bits = Channel.retransmit_bits lossy;
      (* every server advertises its shard's total weight up front on the
         reliable control plane: one 64-bit float per shard *)
      control_bits = 64 * Array.length shards;
      backoff_units = sum (fun d -> d.d_backoff) coarse + sum (fun d -> d.d_backoff) fine;
      eps_effective;
      degraded = coarse_lost > 0 || fine_lost > 0;
    }
  in
  Metrics.inc ~by:report.retransmissions m_retrans;
  Metrics.inc ~by:report.drops_seen m_drops;
  Metrics.inc ~by:report.corruptions_detected m_corrupt;
  Metrics.inc ~by:report.stragglers m_stragglers;
  Metrics.inc ~by:report.speculative_retransmissions m_spec;
  Metrics.inc ~by:report.coarse_lost m_coarse_lost;
  Metrics.inc ~by:report.fine_lost m_fine_lost;
  Metrics.inc ~by:report.backoff_units m_backoff;
  { base; report }

let min_cut rng cfg shards =
  (min_cut_robust ~retry_budget:0 rng cfg ~fault:Fault.disabled shards).base

module Prng = Dcs_util.Prng
module Cut = Dcs_graph.Cut

type mode = Random | Adversarial | Deterministic_up | Deterministic_down

let create ?(mode = Adversarial) rng ~eps g =
  if eps < 0.0 || eps >= 1.0 then invalid_arg "Noisy_oracle.create: eps in [0,1)";
  let g = Dcs_graph.Digraph.copy g in
  let rng = Prng.fork rng in
  let factor () =
    match mode with
    | Random -> 1.0 +. (eps *. ((2.0 *. Prng.float rng 1.0) -. 1.0))
    | Adversarial -> 1.0 +. (eps *. float_of_int (Prng.sign rng))
    | Deterministic_up -> 1.0 +. eps
    | Deterministic_down -> 1.0 -. eps
  in
  let size_bits = Sketch.digraph_encoding_bits g in
  Dcs_obs_core.Metrics.inc (Dcs_obs_core.Metrics.counter "sketch.built");
  Dcs_obs_core.Metrics.inc ~by:size_bits
    (Dcs_obs_core.Metrics.counter "sketch.size_bits");
  {
    Sketch.name = Printf.sprintf "noisy-oracle(eps=%g)" eps;
    size_bits;
    query = (fun s -> Cut.value g s *. factor ());
    graph = None;
  }

(** Nagamochi–Ibaraki forest decomposition and edge-strength estimates.

    A spanning-forest decomposition assigns every edge an index: compute a
    maximal spanning forest, give its edges index 1, remove them, and
    repeat. An edge whose index is k connects two vertices that are at least
    k-edge-connected in the graph, so the index is a valid lower estimate of
    the edge's local connectivity — exactly what Benczúr–Karger-style
    sampling needs (sampling probabilities may only *over*estimate
    importance, never underestimate it).

    Integer edge weights are treated as multiplicities: an edge of weight w
    may be used by w consecutive forests and receives the index of the
    forest that exhausts it. *)

type t

val compute : ?max_rounds:int -> Dcs_graph.Ugraph.t -> t
(** Weights are rounded to integer multiplicities (minimum 1).
    [max_rounds] caps the number of forests (default 512); surviving edges
    get index [max_rounds], still a valid lower estimate. *)

val index : t -> int -> int -> int
(** NI index of edge (u, v); raises [Invalid_argument] naming the pair for
    a non-edge ("Strength.index: (u, v) is not an edge"). *)

val rounds_used : t -> int

val fold : (int -> int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over (u, v, index) with u < v, in ascending (u, v) order — a pure
    function of graph content, never of hashtable history, so accumulations
    that are order-sensitive (float sums, sampling streams, stage
    artifacts) are byte-stable across equal graphs built by different
    routes. *)

val certificate : t -> Dcs_graph.Ugraph.t -> Dcs_graph.Ugraph.t
(** [certificate t g] (where [t] was computed from [g]) is the
    Nagamochi–Ibaraki sparse certificate: each edge weighted by
    min(number of forests that used it, its weight in [g]) — at most
    [rounds_used t * (n-1)] edge slots however dense [g] is. It is a
    weighted subgraph of [g] preserving every cut of value at most
    [rounds_used t] and hence min(λ(u,v), [rounds_used t]) for every pair,
    in rounded-multiplicity units; max-flow connectivity queries capped at
    [rounds_used t] can therefore run on the certificate instead of [g].
    Raises [Invalid_argument] if vertex counts disagree. *)

val min_index : t -> int
val max_index : t -> int

module Digraph = Dcs_graph.Digraph
module Ugraph = Dcs_graph.Ugraph
module Prng = Dcs_util.Prng

let check_params ~eps ~beta =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Directed_sparsifier: eps in (0,1)";
  if beta < 1.0 then invalid_arg "Directed_sparsifier: beta >= 1"

let probability ~oversample g =
  let proj = Ugraph.of_digraph g in
  let strengths = Strength.compute proj in
  fun u v _w ->
    let k = float_of_int (Strength.index strengths u v) in
    oversample /. k

let forall_sparsify ?(c = 4.0) rng ~eps ~beta g =
  check_params ~eps ~beta;
  let n = float_of_int (max 2 (Digraph.n g)) in
  let oversample = c *. beta *. log n /. (eps *. eps) in
  Importance.sample_digraph rng ~prob:(probability ~oversample g) g

let foreach_sparsify ?(c = 4.0) rng ~eps ~beta g =
  check_params ~eps ~beta;
  let oversample = c *. beta /. (eps *. eps) in
  Importance.sample_digraph rng ~prob:(probability ~oversample g) g

(* The CCPS21 sampling-rate schedule: ρ(ε, β, n) = c·γ·ln n/ε² with
   γ = (1+β)(3 + log₂ n) — the oversampling that makes p = min(1, ρ/λ)
   preserve all directed cuts of a β-balanced graph within (1 ± ε) w.h.p.
   The default c is scaled down from the proof constant the same way the
   strength samplers' c is, so bench-scale graphs actually shrink. *)
let rho ?(c = 0.25) ~eps ~beta ~n () =
  check_params ~eps ~beta;
  let n = float_of_int (max 2 n) in
  let gamma = (1.0 +. beta) *. (3.0 +. (log n /. log 2.0)) in
  c *. gamma *. log n /. (eps *. eps)

(* Connectivity-based importance sampling (CCPS21's compress):
   p_e = min(1, ρ/λ̂(e)) with λ̂ the capped lower-bound estimates of
   {!Connectivity} (cap = ρ: capping at the sampling rate only ever
   *raises* p, so any prefiltered estimate stays sound), and binomial
   weight resampling through {!Importance.binomial_keep}. Edge e draws
   from its own [Prng.split master i] stream over the canonical sorted
   edge order, so the sample is a pure function of (seed, graph content)
   and edges could be resampled independently in any order. *)
let connectivity_sparsify ?c ?rho:rho_opt ?cap ?domains ?chunk ?flow_budget
    ?connectivity rng ~eps ~beta g =
  check_params ~eps ~beta;
  let rho =
    match rho_opt with
    | Some r ->
        if r <= 0.0 then invalid_arg "Directed_sparsifier: rho must be positive";
        r
    | None -> rho ?c ~eps ~beta ~n:(Digraph.n g) ()
  in
  let conn =
    match connectivity with
    | Some conn -> conn
    | None ->
        (* The cap must sit well above ρ: estimates saturate at the cap,
           and p = ρ/λ̂, so cap = ρ would pin every p at 1 and sparsify
           nothing. The default allows keep probabilities down to 1/16. *)
        let cap = match cap with Some k -> k | None -> 16.0 *. rho in
        Connectivity.estimate_digraph ?domains ?chunk ?flow_budget ~beta ~cap g
  in
  let master = Prng.fork rng in
  let h = Digraph.create (Digraph.n g) in
  Array.iteri
    (fun i (u, v, w) ->
      let lam = Connectivity.lambda_at conn i in
      let p = if lam <= 0.0 then 1.0 else rho /. lam in
      match Importance.binomial_keep (Prng.split master i) ~p ~w with
      | Some w' -> Digraph.add_edge h u v w'
      | None -> ())
    (Connectivity.edges conn);
  h

(* Exact expected kept-edge count of [connectivity_sparsify] at rate
   [rho] given the same estimates — the budget-matching knob: monotone in
   rho, so a bisection on it pins the sketch size to a target. *)
let expected_kept ~rho conn =
  let acc = ref 0.0 in
  Connectivity.iter conn (fun _ _ w lam ->
      let p = if lam <= 0.0 then 1.0 else rho /. lam in
      acc := !acc +. Importance.keep_probability ~p ~w);
  !acc

let to_sketch ~name h =
  Sketch.of_digraph ~name ~size_bits:(Sketch.digraph_encoding_bits h) h

let forall_sketch ?c rng ~eps ~beta g =
  to_sketch
    ~name:(Printf.sprintf "directed-forall(eps=%g,beta=%g)" eps beta)
    (forall_sparsify ?c rng ~eps ~beta g)

let foreach_sketch ?c rng ~eps ~beta g =
  to_sketch
    ~name:(Printf.sprintf "directed-foreach(eps=%g,beta=%g)" eps beta)
    (foreach_sparsify ?c rng ~eps ~beta g)

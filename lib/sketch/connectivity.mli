(** Batched local edge-connectivity estimation for importance sampling.

    For every edge (u, v) of a graph, compute a sound lower bound
    λ̂(u,v) <= λ(u,v), sharp up to a cap: λ̂ = min(λ, cap) whenever the
    exact tier runs. Connectivity sampling (CCPS21: p = min(1, ρ/λ))
    tolerates any underestimate — it only oversamples — and never needs λ
    beyond the sampling rate ρ, so estimation is a chain of increasingly
    expensive, always-sound lower bounds that stops at the first one
    reaching [cap]:

    + the edge's own weight;
    + the Nagamochi–Ibaraki {!Strength} index (divided by (1+β) on
      β-balanced digraphs);
    + a common-neighbour bound (direct edge + one edge-disjoint two-hop
      path per shared neighbour, a sorted-row merge);
    + exact Dinic max-flow capped at [cap] — batched over
      {!Dcs_util.Pool.run_batched} with one reusable residual network per
      worker domain (built once, reset between queries), run
      weakest-bound-first under [flow_budget], and, for undirected
      graphs, run on the {!Strength.certificate} (O(cap·n) edges) instead
      of the full graph.

    When the estimates feed p = min(1, ρ/λ̂) sampling, choose
    [cap] {e well above} ρ: estimates saturate at the cap, so [cap = ρ]
    pins every keep probability at 1 and nothing is dropped; keep
    probabilities bottom out at ρ/cap (the samplers default to 16·ρ).

    Estimates are a pure function of graph content (canonical edge order,
    pure per-index flow tasks): byte-identical for every domain count.
    Strength/certificate tiers count rounded integer multiplicities, so
    on graphs with sub-unit fractional weights tiers 2–4 can overshoot
    the (un-rounded) connectivity by the rounding; with weights >= 1 in
    integer units — every generator in this repo — all tiers are exact
    lower bounds. Metered as [conn.edges], [conn.by_weight],
    [conn.by_strength], [conn.by_triangle], [conn.flows],
    [conn.budgeted]. *)

type stats = {
  edges : int;  (** edges estimated *)
  by_weight : int;  (** resolved by the weight tier (w >= cap) *)
  by_strength : int;  (** resolved by the NI strength tier *)
  by_triangle : int;  (** resolved by the common-neighbour tier *)
  flows : int;  (** exact capped max-flows run *)
  budgeted : int;  (** flow budget exhausted; kept the cheap bound *)
}

type t

val estimate_ugraph :
  ?domains:int ->
  ?chunk:int ->
  ?flow_budget:int ->
  ?strengths:Strength.t ->
  cap:float ->
  Dcs_graph.Ugraph.t ->
  t
(** λ̂ for every undirected edge (u < v). [strengths] reuses a
    precomputed NI decomposition (its {!Strength.certificate} is the flow
    graph, so estimates are sharp at [cap] when it ran for at least [cap]
    rounds — the default computes exactly that many); [flow_budget]
    (default unlimited) caps the exact tier. [cap] must be positive;
    pass [infinity] for uncapped exact local connectivities (the cheap
    tiers then never fire). *)

val estimate_digraph :
  ?domains:int ->
  ?chunk:int ->
  ?flow_budget:int ->
  ?csr:Dcs_graph.Csr.t ->
  ?strengths:Strength.t ->
  ?beta:float ->
  cap:float ->
  Dcs_graph.Digraph.t ->
  t
(** λ̂ for every directed edge, flows on the digraph itself ([csr]
    reuses a frozen view of [g]). [strengths] is an NI decomposition of
    the {e undirected projection}; its index prefilters through the
    (1+β) balance factor (default [beta] = 1), which is sound exactly
    when [g] is β-balanced — the caller owns that promise, as in
    {!Directed_sparsifier}. *)

val n : t -> int

val cap : t -> float

val edges : t -> (int * int * float) array
(** The estimated edges with their original weights, in canonical
    ascending (u, v) order — the order {!Importance} samplers consume
    their streams in. Callers must not mutate. *)

val lambda_at : t -> int -> float
(** Estimate for {!edges}[(i)]; in [(0, cap t]]. *)

val find : t -> int -> int -> float option
(** Estimate by endpoints ((u, v) directed; (min, max) undirected). *)

val get : t -> int -> int -> float
(** Like {!find} but raises [Invalid_argument] naming the pair for a
    non-edge. *)

val iter : t -> (int -> int -> float -> float -> unit) -> unit
(** [iter t f] calls [f u v w lambda] in canonical edge order. *)

val stats : t -> stats

module Ugraph = Dcs_graph.Ugraph

let probability ?(c = 4.0) ~eps g =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Benczur_karger: eps in (0,1)";
  let n = float_of_int (max 2 (Ugraph.n g)) in
  let strengths = Strength.compute g in
  (* The w_e factor treats a weight-w edge as w parallel unit edges (the NI
     index already accounts for multiplicity on the strength side). *)
  fun u v w ->
    let k = float_of_int (Strength.index strengths u v) in
    c *. w *. log n /. (eps *. eps *. k)

let sparsify ?c rng ~eps g =
  Dcs_obs_core.Trace.with_span "sketch.bk.sparsify" @@ fun () ->
  Importance.sample_ugraph rng ~prob:(probability ?c ~eps g) g

let sketch ?c rng ~eps g =
  let h = sparsify ?c rng ~eps g in
  let d = Ugraph.to_digraph h in
  Sketch.of_digraph
    ~name:(Printf.sprintf "benczur-karger(eps=%g)" eps)
    ~size_bits:(Sketch.ugraph_encoding_bits h)
    d

let expected_edges ?c ~eps g =
  Importance.expected_edges_ugraph ~prob:(probability ?c ~eps g) g

(** Generic importance sampling of edges: keep edge e with probability p_e,
    reweight kept edges by w_e / p_e (unbiased for every cut). *)

val sample_ugraph :
  Dcs_util.Prng.t ->
  prob:(int -> int -> float -> float) ->
  Dcs_graph.Ugraph.t ->
  Dcs_graph.Ugraph.t

val sample_digraph :
  Dcs_util.Prng.t ->
  prob:(int -> int -> float -> float) ->
  Dcs_graph.Digraph.t ->
  Dcs_graph.Digraph.t

val expected_edges_ugraph :
  prob:(int -> int -> float -> float) -> Dcs_graph.Ugraph.t -> float

val expected_edges_digraph :
  prob:(int -> int -> float -> float) -> Dcs_graph.Digraph.t -> float

val sorted_edges_ugraph : Dcs_graph.Ugraph.t -> (int * int * float) array
(** Edges (u < v) in ascending (u, v) order — the canonical iteration
    order every sampler here consumes its PRNG stream in, exposed so other
    samplers can pin the same order. *)

val sorted_edges_digraph : Dcs_graph.Digraph.t -> (int * int * float) array

val binomial_keep :
  Dcs_util.Prng.t -> p:float -> w:float -> float option
(** Binomial weight resampling (the resampling step of CCPS21's compress):
    an integer weight [w] is kept as Binomial(w, p)/p — [None] when the
    binomial count is 0 — which is cut-unbiased like the whole-edge coin
    but with variance lower by a factor of [w]. Non-integer or sub-unit
    weights fall back to a single Bernoulli coin keeping [w/p]. [p] is
    clamped to [0, 1]; [p >= 1] returns [Some w] without consuming the
    stream. *)

val keep_probability : p:float -> w:float -> float
(** Probability that {!binomial_keep} keeps the edge (1 - (1-p)^w for
    integer weights, p otherwise) — the exact expectation to budget
    sketch sizes against. *)

(** The cut-sketch abstraction (Definitions 2.2 and 2.3).

    A sketch is any data structure from which directed cut values can be
    estimated. The lower-bound decoders of Sections 3 and 4 consume this
    interface only — they never look inside — which is exactly the shape of
    the paper's reductions ("Alice runs any sketching algorithm and sends
    the sketch to Bob").

    [size_bits] is the honest serialized size of the structure, the
    quantity the lower bounds speak about. [graph] is exposed when the
    sketch happens to be a (sparsified) graph; graph-valued sketches
    support richer queries (e.g. the additive per-vertex estimates used by
    the polynomial variant of the Section 4 decoder). *)

type t = {
  name : string;
  size_bits : int;
  query : Dcs_graph.Cut.t -> float;  (** estimate of w(S, V\S) *)
  graph : Dcs_graph.Digraph.t option;
}

val of_digraph : name:string -> size_bits:int -> Dcs_graph.Digraph.t -> t
(** Graph-valued sketch: queries are exact cuts of the given graph. *)

val relative_error : t -> Dcs_graph.Digraph.t -> Dcs_graph.Cut.t -> float
(** |estimate - truth| / |truth| against a reference graph. Zero-cut edge
    cases are exact, not tolerance-based: 0 when the true cut is 0 and the
    estimate is exactly 0; infinite if only the truth is 0 (any nonzero
    estimate of a zero cut has unbounded relative error). A zero estimate
    of a nonzero cut is the ordinary case with value 1. *)

val max_error_on : t -> Dcs_graph.Digraph.t -> Dcs_graph.Cut.t list -> float

val digraph_encoding_bits : Dcs_graph.Digraph.t -> int
(** Canonical size of sending a weighted digraph: per edge, two
    ceil(log2 n)-bit endpoints and a 64-bit weight, plus a small header.
    Used as the size of every graph-valued sketch. *)

val ugraph_encoding_bits : Dcs_graph.Ugraph.t -> int
(** Same, counting each undirected edge once. *)

val checksum_bits : int
(** Canonical overhead of making an encoding self-checking (a CRC-32
    field, {!Dcs_util.Checksum}): 32 bits per message. Metered separately
    from the payload so fault-tolerant pipelines report the same first-send
    payload bits as their idealized counterparts. *)

val digraph_frame_bits : Dcs_graph.Digraph.t -> int
(** [digraph_encoding_bits] + [checksum_bits]: the canonical size of one
    checksummed sketch message on a lossy channel. *)

val ugraph_frame_bits : Dcs_graph.Ugraph.t -> int

val median_boost : t list -> t
(** The paper's footnote-2 amplification: run O(1) independent sketches and
    answer each query with the median estimate, boosting per-cut success
    from 2/3 to 99/100 at a constant-factor size cost. [size_bits] is the
    sum of the parts; [graph] is kept only if all parts share one. *)

(** For-each directed cut sketching by the imbalance decomposition.

    For any digraph and any cut S,

      w(S, V\S) = ( u(S) + Δ(S) ) / 2,

    where u(S) is the cut value of the undirected projection (forward +
    backward weight per pair) and Δ(S) = Σ_{v∈S} (out_w(v) - in_w(v)) is
    the *imbalance* of S — exactly additive over vertices, because internal
    edges cancel. So a directed for-each sketch needs only (a) the n vertex
    imbalances, stored exactly, and (b) an undirected for-each sketch of
    the projection. This decomposition is the structural reason balanced
    digraphs are sketchable at all (EMPS16/IT18/CCPS21): in a β-balanced
    graph u(S) <= (1+β)·w(S,V\S), so a (1 ± ε/(1+β)) undirected sketch
    yields a (1 ± ε) directed one.

    Two limiting cases worth noting: Eulerian graphs (β = 1) have zero
    imbalance everywhere — directed sketching reduces *exactly* to
    undirected sketching; and as β grows the undirected accuracy must
    tighten linearly, which is why the lower bounds of Theorems 1.1/1.2
    carry β factors. *)

val create :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> beta:float -> Dcs_graph.Digraph.t -> Sketch.t
(** (1 ± ε) for-each sketch of a β-balanced digraph: exact imbalances plus
    a strength-sampled projection sketch at accuracy ε/(1+β). Size =
    64·n bits for the imbalances + the projection sample. *)

val of_imbalances :
  ?c:float ->
  Dcs_util.Prng.t ->
  eps:float ->
  beta:float ->
  imb:float array ->
  Dcs_graph.Ugraph.t ->
  Sketch.t
(** {!create} from already-maintained parts: the per-vertex imbalance
    array and the undirected projection. This is the constructor the
    streaming layer uses — it keeps both pieces incrementally under
    insert/delete streams and never materializes the digraph. Since the
    projection is sampled in canonical (sorted-edge) order, the sketch is
    a pure function of (seed, imbalances, projection content): streamed
    and batch construction of the same graph agree bit for bit. *)

val imbalances : Dcs_graph.Digraph.t -> float array
(** out-weight minus in-weight per vertex (Δ of a singleton). *)

val delta : float array -> Dcs_graph.Cut.t -> float
(** Δ(S) = Σ_{v∈S} imbalance(v). *)

val exact_decomposition : Dcs_graph.Digraph.t -> Dcs_graph.Cut.t -> float
(** (u(S) + Δ(S)) / 2 computed exactly — equals w(S, V\S) identically; used
    by tests and as the reference the sketch approximates. *)

let create g =
  Dcs_obs_core.Trace.with_span "sketch.exact.create" @@ fun () ->
  Sketch.of_digraph ~name:"exact"
    ~size_bits:(Sketch.digraph_encoding_bits g)
    (Dcs_graph.Digraph.copy g)

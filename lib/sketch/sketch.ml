module Digraph = Dcs_graph.Digraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut
module Bits = Dcs_util.Bits
module Metrics = Dcs_obs_core.Metrics

(* Every graph-valued sketch construction funnels through [of_digraph], so
   these two registry counters mirror the repo's bit accounting: the
   registry total equals the sum of [size_bits] over all sketches built.
   E18 cross-checks the equality. *)
let m_built = Metrics.counter "sketch.built"
let m_size_bits = Metrics.counter "sketch.size_bits"

type t = {
  name : string;
  size_bits : int;
  query : Cut.t -> float;
  graph : Digraph.t option;
}

let digraph_encoding_bits g =
  let c = Bits.create () in
  Bits.write_nonneg c (Digraph.n g);
  Bits.write_nonneg c (Digraph.m g);
  let vertex_bits = Bits.bits_for_range (max 2 (Digraph.n g)) in
  Digraph.iter_edges g (fun _ _ _ ->
      Bits.add c (2 * vertex_bits);
      Bits.add c 64);
  Bits.total c

let ugraph_encoding_bits g =
  let module Ugraph = Dcs_graph.Ugraph in
  let c = Bits.create () in
  Bits.write_nonneg c (Ugraph.n g);
  Bits.write_nonneg c (Ugraph.m g);
  let vertex_bits = Bits.bits_for_range (max 2 (Ugraph.n g)) in
  Ugraph.iter_edges g (fun _ _ _ ->
      Bits.add c (2 * vertex_bits);
      Bits.add c 64);
  Bits.total c

let checksum_bits = Dcs_util.Checksum.bits
let digraph_frame_bits g = digraph_encoding_bits g + checksum_bits
let ugraph_frame_bits g = ugraph_encoding_bits g + checksum_bits

let of_digraph ~name ~size_bits g =
  Metrics.inc m_built;
  Metrics.inc ~by:size_bits m_size_bits;
  (* Freeze once at construction; every query is then a flat-array scan
     instead of a hashtable walk. [graph] still exposes the mutable source
     for decoders that want per-edge access. *)
  let csr = Csr.of_digraph g in
  { name; size_bits; query = (fun s -> Csr.cut_value csr s); graph = Some g }

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let median_boost parts =
  match parts with
  | [] -> invalid_arg "Sketch.median_boost: no sketches"
  | first :: _ ->
      {
        name = Printf.sprintf "median-of-%d(%s)" (List.length parts) first.name;
        size_bits = List.fold_left (fun acc s -> acc + s.size_bits) 0 parts;
        query = (fun c -> median (List.map (fun s -> s.query c) parts));
        graph = None;
      }

let relative_error sk g s =
  let truth = Cut.value g s in
  let est = sk.query s in
  if truth = 0.0 then if est = 0.0 then 0.0 else infinity
  else Float.abs (est -. truth) /. Float.abs truth

let max_error_on sk g cuts =
  List.fold_left (fun acc s -> Float.max acc (relative_error sk g s)) 0.0 cuts

module Digraph = Dcs_graph.Digraph
module Ugraph = Dcs_graph.Ugraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut

let imbalances g =
  Array.init (Digraph.n g) (fun v -> Digraph.out_weight g v -. Digraph.in_weight g v)

let delta imb c =
  let acc = ref 0.0 in
  Array.iteri (fun v b -> if Cut.mem c v then acc := !acc +. b) imb;
  !acc

let exact_decomposition g c =
  let proj = Ugraph.of_digraph g in
  (Ugraph.cut_value proj c +. delta (imbalances g) c) /. 2.0

let of_imbalances ?c rng ~eps ~beta ~imb proj =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Imbalance_sketch: eps in (0,1)";
  if beta < 1.0 then invalid_arg "Imbalance_sketch: beta >= 1";
  let n = Ugraph.n proj in
  if Array.length imb <> n then
    invalid_arg "Imbalance_sketch: imbalance array size mismatch";
  (* u(S) <= (1+β)·w(S,V\S) on β-balanced graphs, so an ε/(1+β)-accurate
     undirected estimate gives ε-accurate directed values. *)
  let eps_u = eps /. (1.0 +. beta) in
  let sampled =
    if eps_u < 1.0 then Foreach_sampler.sparsify ?c rng ~eps:eps_u proj else proj
  in
  let size_bits = (64 * n) + Sketch.ugraph_encoding_bits sampled in
  (* Freeze the sampled projection once; queries scan the flat arrays. *)
  let scsr = Csr.of_ugraph sampled in
  {
    Sketch.name = Printf.sprintf "imbalance-foreach(eps=%g,beta=%g)" eps beta;
    size_bits;
    query = (fun s -> (Csr.cut_value scsr s +. delta imb s) /. 2.0);
    graph = None;
  }

let create ?c rng ~eps ~beta g =
  of_imbalances ?c rng ~eps ~beta ~imb:(imbalances g) (Ugraph.of_digraph g)

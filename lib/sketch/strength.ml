module Ugraph = Dcs_graph.Ugraph

type t = {
  idx : (int * int, int) Hashtbl.t;  (* key has u < v *)
  cons : (int * int, int) Hashtbl.t; (* forests that used the edge (<= idx) *)
  n : int;
  rounds : int;
}

let key u v = if u < v then (u, v) else (v, u)

(* Union-find used per forest round. *)
let rec find parent x =
  if parent.(x) = x then x
  else begin
    parent.(x) <- find parent parent.(x);
    parent.(x)
  end

let compute ?(max_rounds = 512) g =
  if max_rounds < 1 then invalid_arg "Strength.compute: max_rounds";
  let n = Ugraph.n g in
  let idx = Hashtbl.create (2 * Ugraph.m g) in
  (* Remaining multiplicity per live edge. *)
  let live = Hashtbl.create (2 * Ugraph.m g) in
  Ugraph.iter_edges g (fun u v w ->
      let mult = max 1 (int_of_float (Float.round w)) in
      Hashtbl.replace live (key u v) mult);
  (* Forest construction is greedy, so the edge order decides which edges
     each spanning forest grabs. Iterating [live] directly would make the
     strength indices depend on hashtable history; walking a sorted edge
     array makes them a pure function of graph content — required for
     streamed-and-compacted graphs to sample identically to batch ones. *)
  let all_edges =
    let a = Array.make (Hashtbl.length live) (0, 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun e _ ->
        a.(!i) <- e;
        incr i)
      live;
    Array.sort compare a;
    a
  in
  let round = ref 0 in
  let cons = Hashtbl.create (2 * Ugraph.m g) in
  while Hashtbl.length live > 0 && !round < max_rounds do
    incr round;
    let parent = Array.init n (fun i -> i) in
    let used = ref [] in
    Array.iter
      (fun (u, v) ->
        if Hashtbl.mem live (u, v) then begin
          let ru = find parent u and rv = find parent v in
          if ru <> rv then begin
            parent.(ru) <- rv;
            used := (u, v) :: !used
          end
        end)
      all_edges;
    List.iter
      (fun e ->
        Hashtbl.replace cons e
          (1 + Option.value (Hashtbl.find_opt cons e) ~default:0);
        let mult = Hashtbl.find live e in
        if mult <= 1 then begin
          Hashtbl.remove live e;
          Hashtbl.replace idx e !round
        end
        else Hashtbl.replace live e (mult - 1))
      !used
  done;
  (* Edges still alive are at least max_rounds-connected (or were never
     reached because the forest construction stalled on multiplicity). *)
  Hashtbl.iter (fun e _ -> Hashtbl.replace idx e !round) live;
  { idx; cons; n; rounds = !round }

let index t u v =
  match Hashtbl.find_opt t.idx (key u v) with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "Strength.index: (%d, %d) is not an edge" u v)

let rounds_used t = t.rounds

(* Sorted-key iteration: hashtable order depends on insertion history, and
   every consumer of these indices (samplers, certificates, stage
   artifacts) is under the byte-identity contract. *)
let sorted_keys (tbl : (int * int, int) Hashtbl.t) =
  let a = Array.make (Hashtbl.length tbl) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun e _ ->
      a.(!i) <- e;
      incr i)
    tbl;
  Array.sort compare a;
  a

let fold f t init =
  Array.fold_left
    (fun acc (u, v) -> f u v (Hashtbl.find t.idx (u, v)) acc)
    init (sorted_keys t.idx)

(* The Nagamochi–Ibaraki sparse certificate. The forest rounds of [compute]
   are maximal spanning forests of the not-yet-exhausted edges, so the
   union of the first k of them — each edge taken with multiplicity equal
   to the number of those forests that used it — preserves every cut of
   value <= k and hence every local connectivity up to k. The certificate
   weight is min(consumed multiplicity, original weight): consumption is in
   rounded-multiplicity units, and clamping to the true weight keeps the
   certificate a weighted subgraph (its connectivities never exceed the
   source's) even for fractional weights. At most n-1 edges join per round,
   so the certificate has O(rounds_used * n) edges however dense [g] is. *)
let certificate t g =
  if Ugraph.n g <> t.n then invalid_arg "Strength.certificate: vertex count";
  let h = Ugraph.create t.n in
  Array.iter
    (fun (u, v) ->
      let uses = float_of_int (Hashtbl.find t.cons (u, v)) in
      let w = Float.min uses (Ugraph.weight g u v) in
      if w > 0.0 then Ugraph.add_edge h u v w)
    (sorted_keys t.cons);
  h

let min_index t = fold (fun _ _ i acc -> min i acc) t max_int
let max_index t = fold (fun _ _ i acc -> max i acc) t 0

module Ugraph = Dcs_graph.Ugraph

type t = {
  idx : (int * int, int) Hashtbl.t;  (* key has u < v *)
  rounds : int;
}

let key u v = if u < v then (u, v) else (v, u)

(* Union-find used per forest round. *)
let rec find parent x =
  if parent.(x) = x then x
  else begin
    parent.(x) <- find parent parent.(x);
    parent.(x)
  end

let compute ?(max_rounds = 512) g =
  if max_rounds < 1 then invalid_arg "Strength.compute: max_rounds";
  let n = Ugraph.n g in
  let idx = Hashtbl.create (2 * Ugraph.m g) in
  (* Remaining multiplicity per live edge. *)
  let live = Hashtbl.create (2 * Ugraph.m g) in
  Ugraph.iter_edges g (fun u v w ->
      let mult = max 1 (int_of_float (Float.round w)) in
      Hashtbl.replace live (key u v) mult);
  (* Forest construction is greedy, so the edge order decides which edges
     each spanning forest grabs. Iterating [live] directly would make the
     strength indices depend on hashtable history; walking a sorted edge
     array makes them a pure function of graph content — required for
     streamed-and-compacted graphs to sample identically to batch ones. *)
  let all_edges =
    let a = Array.make (Hashtbl.length live) (0, 0) in
    let i = ref 0 in
    Hashtbl.iter
      (fun e _ ->
        a.(!i) <- e;
        incr i)
      live;
    Array.sort compare a;
    a
  in
  let round = ref 0 in
  while Hashtbl.length live > 0 && !round < max_rounds do
    incr round;
    let parent = Array.init n (fun i -> i) in
    let used = ref [] in
    Array.iter
      (fun (u, v) ->
        if Hashtbl.mem live (u, v) then begin
          let ru = find parent u and rv = find parent v in
          if ru <> rv then begin
            parent.(ru) <- rv;
            used := (u, v) :: !used
          end
        end)
      all_edges;
    List.iter
      (fun e ->
        let mult = Hashtbl.find live e in
        if mult <= 1 then begin
          Hashtbl.remove live e;
          Hashtbl.replace idx e !round
        end
        else Hashtbl.replace live e (mult - 1))
      !used
  done;
  (* Edges still alive are at least max_rounds-connected (or were never
     reached because the forest construction stalled on multiplicity). *)
  Hashtbl.iter (fun e _ -> Hashtbl.replace idx e !round) live;
  { idx; rounds = !round }

let index t u v =
  match Hashtbl.find_opt t.idx (key u v) with
  | Some i -> i
  | None -> raise Not_found

let rounds_used t = t.rounds

let fold f t init = Hashtbl.fold (fun (u, v) i acc -> f u v i acc) t.idx init

let min_index t = fold (fun _ _ i acc -> min i acc) t max_int
let max_index t = fold (fun _ _ i acc -> max i acc) t 0

module Ugraph = Dcs_graph.Ugraph

let probability ?(c = 3.0) ~eps g =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Foreach_sampler: eps in (0,1)";
  let strengths = Strength.compute g in
  fun u v w ->
    let k = float_of_int (Strength.index strengths u v) in
    c *. w /. (eps *. eps *. k)

let sparsify ?c rng ~eps g =
  Dcs_obs_core.Trace.with_span "sketch.foreach.sparsify" @@ fun () ->
  Importance.sample_ugraph rng ~prob:(probability ?c ~eps g) g

let sketch ?c rng ~eps g =
  let h = sparsify ?c rng ~eps g in
  Sketch.of_digraph
    ~name:(Printf.sprintf "foreach-sampler(eps=%g)" eps)
    ~size_bits:(Sketch.ugraph_encoding_bits h)
    (Ugraph.to_digraph h)

let expected_edges ?c ~eps g =
  Importance.expected_edges_ugraph ~prob:(probability ?c ~eps g) g

module Prng = Dcs_util.Prng
module Ugraph = Dcs_graph.Ugraph
module Digraph = Dcs_graph.Digraph

let clamp p = Float.max 0.0 (Float.min 1.0 p)

(* Sampling consumes the PRNG once per kept-or-rejected edge, so the edge
   *iteration order* decides which draw lands on which edge. Hashtable
   order depends on insertion history, which would make two equal graphs
   built by different routes (batch vs. streamed-and-compacted) sample
   different subgraphs from the same seed. Sorting the edges first makes
   the sample a pure function of (seed, graph content). *)
let sorted_edges_ugraph g =
  let edges = Array.make (Ugraph.m g) (0, 0, 0.0) in
  let i = ref 0 in
  Ugraph.iter_edges g (fun u v w ->
      edges.(!i) <- (u, v, w);
      incr i);
  Array.sort (fun (a, b, _) (c, d, _) -> compare (a, b) (c, d)) edges;
  edges

let sorted_edges_digraph g =
  let edges = Array.make (Digraph.m g) (0, 0, 0.0) in
  let i = ref 0 in
  Digraph.iter_edges g (fun u v w ->
      edges.(!i) <- (u, v, w);
      incr i);
  Array.sort (fun (a, b, _) (c, d, _) -> compare (a, b) (c, d)) edges;
  edges

let sample_ugraph rng ~prob g =
  let h = Ugraph.create (Ugraph.n g) in
  Array.iter
    (fun (u, v, w) ->
      let p = clamp (prob u v w) in
      if p >= 1.0 then Ugraph.add_edge h u v w
      else if p > 0.0 && Prng.bernoulli rng p then Ugraph.add_edge h u v (w /. p))
    (sorted_edges_ugraph g);
  h

let sample_digraph rng ~prob g =
  let h = Digraph.create (Digraph.n g) in
  Array.iter
    (fun (u, v, w) ->
      let p = clamp (prob u v w) in
      if p >= 1.0 then Digraph.add_edge h u v w
      else if p > 0.0 && Prng.bernoulli rng p then
        Digraph.add_edge h u v (w /. p))
    (sorted_edges_digraph g);
  h

(* Binomial weight resampling: an integer weight w is w parallel unit
   edges, each kept independently with probability p and rescaled by 1/p —
   so E[kept weight] = w (unbiased per cut, like the whole-edge coin) but
   with per-edge variance w·(1-p)/p² instead of w²·(1-p)/p², a factor w
   lower. Non-integer (or sub-unit) weights fall back to the single
   whole-edge Bernoulli coin. This is the resampling step of CCPS21's
   compress. *)
let binomial_split_ok w =
  w >= 1.0 && Float.abs (w -. Float.round w) <= 1e-9 && w <= 1e6

let binomial_keep rng ~p ~w =
  let p = clamp p in
  if p <= 0.0 then None
  else if p >= 1.0 then Some w
  else if binomial_split_ok w then begin
    let x = Prng.binomial rng ~n:(int_of_float (Float.round w)) ~p in
    if x > 0 then Some (float_of_int x /. p) else None
  end
  else if Prng.bernoulli rng p then Some (w /. p)
  else None

let keep_probability ~p ~w =
  let p = clamp p in
  if p <= 0.0 then 0.0
  else if p >= 1.0 then 1.0
  else if binomial_split_ok w then 1.0 -. ((1.0 -. p) ** Float.round w)
  else p

let expected_edges_ugraph ~prob g =
  Ugraph.fold_edges (fun u v w acc -> acc +. clamp (prob u v w)) g 0.0

let expected_edges_digraph ~prob g =
  Digraph.fold_edges (fun u v w acc -> acc +. clamp (prob u v w)) g 0.0

(** Cut sketches for β-balanced directed graphs — the upper-bound side of
    the paper's Theorems 1.1/1.2 (constructions in the shape of IT18 and
    CCPS21).

    Both samplers compute Nagamochi–Ibaraki strengths on the undirected
    projection (forward + backward weight per pair) and then sample each
    *directed* edge independently with a strength-based probability,
    oversampled by a function of β. In a β-balanced graph every directed
    cut is within a (1+β) factor of the corresponding undirected cut, so
    undirected strengths certify directed cut variance up to β factors —
    this is the mechanism behind the Õ(nβ/ε²) for-all bound of CCPS21.

    - [forall_sketch]: p_e = min(1, c·β·ln n / (ε²·k_e)). All directed cuts
      preserved within (1 ± ε) w.h.p.; expected size Õ(nβ/ε²) edges.
    - [foreach_sketch]: p_e = min(1, c·β / (ε²·k_e)) — the same scheme
      without the union-bound log factor; each fixed cut is preserved with
      constant probability (Chebyshev). Note: the asymptotically smaller
      Õ(n√β/ε) for-each construction of CCPS21 requires machinery beyond
      the scope of this reproduction; DESIGN.md discusses this substitution
      and experiment E8 uses the instance-optimal codec for the tightness
      comparison instead. *)

val forall_sketch :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> beta:float -> Dcs_graph.Digraph.t -> Sketch.t

val foreach_sketch :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> beta:float -> Dcs_graph.Digraph.t -> Sketch.t

val forall_sparsify :
  ?c:float ->
  Dcs_util.Prng.t ->
  eps:float ->
  beta:float ->
  Dcs_graph.Digraph.t ->
  Dcs_graph.Digraph.t

val foreach_sparsify :
  ?c:float ->
  Dcs_util.Prng.t ->
  eps:float ->
  beta:float ->
  Dcs_graph.Digraph.t ->
  Dcs_graph.Digraph.t

val rho : ?c:float -> eps:float -> beta:float -> n:int -> unit -> float
(** The CCPS21 sampling-rate schedule ρ(ε, β, n) = c·γ·ln n/ε² with
    γ = (1+β)(3 + log₂ n); [c] defaults to 0.25 (proof constant scaled
    down, like the strength samplers' [c]). *)

val connectivity_sparsify :
  ?c:float ->
  ?rho:float ->
  ?cap:float ->
  ?domains:int ->
  ?chunk:int ->
  ?flow_budget:int ->
  ?connectivity:Connectivity.t ->
  Dcs_util.Prng.t ->
  eps:float ->
  beta:float ->
  Dcs_graph.Digraph.t ->
  Dcs_graph.Digraph.t
(** Connectivity-based importance sampling (CCPS21's compress):
    p_e = min(1, ρ/λ̂(u,v)) with λ̂ the {!Connectivity} lower-bound
    estimates (capping only raises p — sound), binomial weight
    resampling ({!Importance.binomial_keep}), and one [Prng.split]
    stream per edge over the canonical sorted order, so the sample is a
    pure function of (seed, graph content). [rho] overrides the {!rho}
    schedule (matched-budget experiments). [cap] is the estimation
    ceiling (default 16·ρ): estimates saturate there, so it must exceed
    ρ for anything to be dropped — at [cap = ρ] every p is 1 — and
    keep probabilities bottom out at ρ/cap. [connectivity] reuses
    precomputed estimates (must come from this graph; its own cap then
    governs). Sharper λ̂ than the strength indices is the point:
    strength-1 tree edges inside dense regions get their true (large) λ
    and stop being kept with probability 1, which is where the
    worst-cut-error win over {!forall_sparsify} comes from (E24 vs
    E12/E13). *)

val expected_kept : rho:float -> Connectivity.t -> float
(** Exact expected kept-edge count of {!connectivity_sparsify} at rate
    [rho] on those estimates; monotone in [rho] (bisect to match a
    budget). *)

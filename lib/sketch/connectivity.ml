module Ugraph = Dcs_graph.Ugraph
module Digraph = Dcs_graph.Digraph
module Csr = Dcs_graph.Csr
module Pool = Dcs_util.Pool
module Dinic = Dcs_mincut.Dinic
module Metrics = Dcs_obs_core.Metrics

(* Batched local edge-connectivity estimation: a lower bound
   λ̂(u,v) <= min(λ(u,v), cap) for every edge, where λ is the local
   edge connectivity. Connectivity-based importance sampling (CCPS21's
   compress: p = min(1, ρ/λ)) only needs λ capped at the sampling rate ρ
   and tolerates any *under*estimate — a smaller λ̂ means a larger p,
   i.e. oversampling — so the estimator is a chain of ever-sharper,
   always-sound lower bounds and stops at the first one that reaches
   [cap]:

   1. the edge's own weight (an edge is a cut-crossing witness of itself);
   2. the Nagamochi–Ibaraki strength index — an O(cap) forest rounds
      prefilter, divided by (1+β) on digraphs (undirected local
      connectivity exceeds directed λ by at most that factor on
      β-balanced graphs);
   3. a common-neighbour bound: w(u,v) + Σ_z min(w(u,z), w(z,v)) — the
      direct edge plus one edge-disjoint two-hop path per shared
      neighbour, an O(deg) sorted-row merge;
   4. exact max-flow capped at [cap], batched over
      {!Dcs_util.Pool.run_batched} with one reusable Dinic residual
      network per worker domain (built once per domain, reset — an O(m)
      blit — between queries).

   Exact flows run only where the cheap tiers are uninformative (their
   bound is below [cap]), weakest-bound-first under an optional flow
   budget, and — for undirected graphs — on the NI sparse certificate
   ({!Strength.certificate}, O(cap·n) edges) instead of the full graph.
   Results are a pure function of graph content: edges are visited in
   canonical sorted order and each flow task is a pure function of its
   index, so estimates are byte-identical for every domain count. *)

let m_edges = Metrics.counter "conn.edges"
let m_by_weight = Metrics.counter "conn.by_weight"
let m_by_strength = Metrics.counter "conn.by_strength"
let m_by_triangle = Metrics.counter "conn.by_triangle"
let m_flows = Metrics.counter "conn.flows"
let m_budgeted = Metrics.counter "conn.budgeted"

type stats = {
  edges : int;
  by_weight : int;
  by_strength : int;
  by_triangle : int;
  flows : int;
  budgeted : int;
}

type t = {
  n : int;
  cap : float;
  edges : (int * int * float) array;
  lambda : float array;
  table : (int * int, float) Hashtbl.t Lazy.t;
      (* endpoint lookup is off the samplers' hot path; built on first
         [find]/[get] *)
  stats : stats;
}

let n t = t.n
let cap t = t.cap
let edges t = t.edges
let lambda_at t i = t.lambda.(i)
let stats t = t.stats
let find t u v = Hashtbl.find_opt (Lazy.force t.table) (u, v)

let get t u v =
  match find t u v with
  | Some l -> l
  | None ->
      invalid_arg (Printf.sprintf "Connectivity.get: (%d, %d) is not an edge" u v)

let iter t f =
  Array.iteri (fun i (u, v, w) -> f u v w t.lambda.(i)) t.edges

(* Adjacency rows of a frozen view as flat arrays, for the sorted-row
   merges of the common-neighbour bound. *)
let materialize n iter deg =
  let heads = Array.init n (fun u -> Array.make (deg u) 0) in
  let ws = Array.init n (fun u -> Array.make (deg u) 0.0) in
  for u = 0 to n - 1 do
    let i = ref 0 in
    iter u (fun v w ->
        heads.(u).(!i) <- v;
        ws.(u).(!i) <- w;
        incr i)
  done;
  (heads, ws)

(* Out- and in-rows of the graph the common-neighbour merges read; an
   undirected (symmetric) view shares one materialization for both
   sides. *)
let rows_of_csr ~symmetric csr =
  let n = Csr.n csr in
  let out = materialize n (Csr.iter_out csr) (Csr.out_degree csr) in
  let inn =
    if symmetric then out
    else materialize n (Csr.iter_in csr) (Csr.in_degree csr)
  in
  (out, inn)

(* w_direct + Σ_{z <> u,v} min(w(u,z), w(z,v)): the direct edge plus one
   two-hop path per common neighbour, pairwise edge-disjoint, so every
   u→v cut severs at least this much weight. Rows are sorted by endpoint,
   so the merge is linear in the two degrees. *)
let common_neighbour_bound ~oh ~ow ~ih ~iw u v w_direct =
  let a = oh.(u) and aw = ow.(u) and b = ih.(v) and bw = iw.(v) in
  let la = Array.length a and lb = Array.length b in
  let i = ref 0 and j = ref 0 in
  let acc = ref w_direct in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      if x <> u && x <> v then acc := !acc +. Float.min aw.(!i) bw.(!j);
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  !acc

let default_rounds ~cap ~scale =
  if Float.is_finite cap then max 1 (int_of_float (ceil (cap *. scale)))
  else 512

(* The shared tier chain. [ni i] must already include any balance
   correction; the common-neighbour merges read [tri_csr] (the source
   graph: sharpest) while the flows run on [flow_csr] (any weighted
   subgraph of the source is sound — undirected estimation passes the NI
   certificate so flow cost is independent of the source density). *)
let estimate_core ?domains ?chunk ?(flow_budget = max_int) ~cap ~n ~edges ~ni
    ~tri_rows ~flow_csr () =
  if cap <= 0.0 then invalid_arg "Connectivity: cap must be positive";
  if flow_budget < 0 then invalid_arg "Connectivity: flow_budget >= 0";
  let m = Array.length edges in
  let lambda = Array.make m 0.0 in
  let by_weight = ref 0 and by_strength = ref 0 and by_triangle = ref 0 in
  let pending = ref [] in
  for i = m - 1 downto 0 do
    let _, _, w = edges.(i) in
    if w >= cap then begin
      lambda.(i) <- cap;
      incr by_weight
    end
    else begin
      let b = Float.max w (ni i) in
      if b >= cap then begin
        lambda.(i) <- cap;
        incr by_strength
      end
      else begin
        lambda.(i) <- b;
        pending := i :: !pending
      end
    end
  done;
  let (oh, ow), (ih, iw) = tri_rows in
  let unresolved =
    List.filter
      (fun i ->
        let u, v, w = edges.(i) in
        let tb = common_neighbour_bound ~oh ~ow ~ih ~iw u v w in
        if tb >= cap then begin
          lambda.(i) <- cap;
          incr by_triangle;
          false
        end
        else begin
          lambda.(i) <- Float.max lambda.(i) tb;
          true
        end)
      !pending
  in
  let unresolved = Array.of_list unresolved in
  (* Weakest bound first: those are the edges whose sampling probability
     an exact answer moves the most, so a finite flow budget buys the
     sharpest estimates available. Ties break on edge index — the order
     is a pure function of graph content. *)
  Array.sort
    (fun i j ->
      let c = Float.compare lambda.(i) lambda.(j) in
      if c <> 0 then c else Int.compare i j)
    unresolved;
  let nflows = min flow_budget (Array.length unresolved) in
  if nflows > 0 then begin
    let flows =
      Pool.run_batched ?domains ?chunk
        ~arena:(fun () -> Dinic.of_csr flow_csr)
        ~n:nflows
        (fun net k ->
          let u, v, _ = edges.(unresolved.(k)) in
          Dinic.maxflow ~limit:cap net ~s:u ~t:v)
    in
    for k = 0 to nflows - 1 do
      let i = unresolved.(k) in
      lambda.(i) <- Float.max lambda.(i) flows.(k)
    done
  end;
  let budgeted = Array.length unresolved - nflows in
  let table =
    lazy
      (let tbl = Hashtbl.create (2 * max 1 m) in
       Array.iteri
         (fun i (u, v, _) -> Hashtbl.replace tbl (u, v) lambda.(i))
         edges;
       tbl)
  in
  Metrics.inc ~by:m m_edges;
  Metrics.inc ~by:!by_weight m_by_weight;
  Metrics.inc ~by:!by_strength m_by_strength;
  Metrics.inc ~by:!by_triangle m_by_triangle;
  Metrics.inc ~by:nflows m_flows;
  Metrics.inc ~by:budgeted m_budgeted;
  {
    n;
    cap;
    edges;
    lambda;
    table;
    stats =
      {
        edges = m;
        by_weight = !by_weight;
        by_strength = !by_strength;
        by_triangle = !by_triangle;
        flows = nflows;
        budgeted;
      };
  }

let estimate_ugraph ?domains ?chunk ?flow_budget ?strengths ~cap g =
  let n = Ugraph.n g in
  let edges = Importance.sorted_edges_ugraph g in
  let strengths =
    match strengths with
    | Some s -> s
    | None -> Strength.compute ~max_rounds:(default_rounds ~cap ~scale:1.0) g
  in
  (* Neighbour merges read the full graph (sharpest sound bound); flows
     run on the NI sparse certificate — a weighted subgraph with
     O(rounds·n) edges preserving min(λ, rounds) — so per-query flow cost
     is independent of the source density. *)
  let tri_rows = rows_of_csr ~symmetric:true (Csr.of_ugraph g) in
  let flow_csr = Csr.of_ugraph (Strength.certificate strengths g) in
  let ni i =
    let u, v, _ = edges.(i) in
    float_of_int (Strength.index strengths u v)
  in
  estimate_core ?domains ?chunk ?flow_budget ~cap ~n ~edges ~ni ~tri_rows
    ~flow_csr ()

let estimate_digraph ?domains ?chunk ?flow_budget ?csr ?strengths ?(beta = 1.0)
    ~cap g =
  if beta < 1.0 then invalid_arg "Connectivity.estimate_digraph: beta >= 1";
  let n = Digraph.n g in
  let edges = Importance.sorted_edges_digraph g in
  let csr = match csr with Some c -> c | None -> Csr.of_digraph g in
  let strengths =
    match strengths with
    | Some s -> s
    | None ->
        Strength.compute
          ~max_rounds:(default_rounds ~cap ~scale:(1.0 +. beta))
          (Ugraph.of_digraph g)
  in
  (* Undirected strength bounds directed λ only through the balance
     factor: on a β-balanced graph every undirected cut is at most (1+β)
     times its forward directed weight, so λ_dir >= λ_und/(1+β) >=
     NI/(1+β). The caller owns the β promise, exactly as in the
     strength-based samplers. *)
  let ni i =
    let u, v, _ = edges.(i) in
    float_of_int (Strength.index strengths u v) /. (1.0 +. beta)
  in
  estimate_core ?domains ?chunk ?flow_budget ~cap ~n ~edges ~ni
    ~tri_rows:(rows_of_csr ~symmetric:false csr)
    ~flow_csr:csr ()

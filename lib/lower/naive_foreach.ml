module Prng = Dcs_util.Prng
module Digraph = Dcs_graph.Digraph
module Cut = Dcs_graph.Cut
module Sketch = Dcs_sketch.Sketch

type params = { n : int; beta : int; inv_eps : int }

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let int_sqrt x =
  let r = int_of_float (Float.round (sqrt (float_of_int x))) in
  if r * r = x then Some r else None

let make_params ~beta ~inv_eps n =
  if beta < 1 then invalid_arg "Naive_foreach: beta >= 1";
  if not (is_power_of_two inv_eps) || inv_eps < 2 then
    invalid_arg "Naive_foreach: 1/eps must be a power of two >= 2";
  let sb =
    match int_sqrt beta with
    | Some sb -> sb
    | None -> invalid_arg "Naive_foreach: beta must be a perfect square"
  in
  let block = sb * inv_eps in
  if n <= 0 || n mod block <> 0 || n / block < 2 then
    invalid_arg "Naive_foreach: n must be a multiple of the block with >= 2 blocks";
  { n; beta; inv_eps }

let block_size p =
  match int_sqrt p.beta with Some sb -> sb * p.inv_eps | None -> assert false

let layout p = Layout.create ~n:p.n ~block:(block_size p)

let bits_capacity p =
  let k = block_size p in
  ((layout p).Layout.chains - 1) * k * k

type instance = { params : params; s : bool array; graph : Dcs_graph.Digraph.t }

type address = { pair : int; u : int; v : int }

let address_of_index p q =
  if q < 0 || q >= bits_capacity p then invalid_arg "Naive_foreach: bit index";
  let k = block_size p in
  let per_pair = k * k in
  let pair = q / per_pair in
  let r = q mod per_pair in
  { pair; u = r / k; v = r mod k }

let index_of_address p a =
  let k = block_size p in
  (a.pair * k * k) + (a.u * k) + a.v

let encode p ~s =
  if Array.length s <> bits_capacity p then
    invalid_arg "Naive_foreach.encode: wrong string length";
  let lay = layout p in
  let k = block_size p in
  let g = Digraph.create p.n in
  for pair = 0 to lay.Layout.chains - 2 do
    for u = 0 to k - 1 do
      for v = 0 to k - 1 do
        let bit = s.(index_of_address p { pair; u; v }) in
        Digraph.add_edge g
          (Layout.vertex lay ~chain:pair ~offset:u)
          (Layout.vertex lay ~chain:(pair + 1) ~offset:v)
          (if bit then 2.0 else 1.0)
      done
    done
  done;
  Layout.add_backward_edges lay ~weight:(1.0 /. float_of_int p.beta) g;
  { params = p; s = Array.copy s; graph = g }

let random_instance rng p =
  encode p ~s:(Array.init (bits_capacity p) (fun _ -> Prng.bool rng))

let query_cut p a =
  let lay = layout p in
  let block = lay.Layout.block in
  let mem w =
    let chain = w / block in
    if chain >= a.pair + 2 then true
    else if chain = a.pair then w mod block = a.u
    else if chain = a.pair + 1 then w mod block <> a.v
    else false
  in
  Cut.of_mem ~n:p.n mem

let fixed_crossing_weight p a =
  let lay = layout p in
  let k = lay.Layout.block in
  let within = float_of_int ((k - 1) * (k - 1)) in
  let from_u = if a.pair >= 1 then float_of_int k else 0.0 in
  let into_v =
    if a.pair + 2 <= lay.Layout.chains - 1 then float_of_int k else 0.0
  in
  (within +. from_u +. into_v) /. float_of_int p.beta

let decode_bit p ~query q =
  let a = address_of_index p q in
  let est = query (query_cut p a) -. fixed_crossing_weight p a in
  est >= 1.5

type trial_stats = {
  trials : int;
  bits_tested : int;
  correct : int;
  success_rate : float;
}

let run_trials ?domains rng p ~sketch_of ~trials ~bits_per_trial =
  if trials <= 0 || bits_per_trial <= 0 then invalid_arg "Naive_foreach.run_trials";
  let master = Prng.fork rng in
  let one_trial t =
    let rng = Prng.split master t in
    let inst = random_instance rng p in
    let sk = sketch_of rng inst in
    let correct = ref 0 in
    for _ = 1 to bits_per_trial do
      let q = Prng.int rng (bits_capacity p) in
      if decode_bit p ~query:sk.Sketch.query q = inst.s.(q) then incr correct
    done;
    !correct
  in
  let per_trial = Dcs_util.Pool.parallel_init ?domains ~n:trials one_trial in
  let correct = Array.fold_left ( + ) 0 per_trial in
  let total = trials * bits_per_trial in
  {
    trials;
    bits_tested = total;
    correct;
    success_rate = float_of_int correct /. float_of_int total;
  }

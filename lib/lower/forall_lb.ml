module Prng = Dcs_util.Prng
module Digraph = Dcs_graph.Digraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut
module Bits = Dcs_util.Bits
module Bitstring = Dcs_comm.Bitstring
module Gap_hamming = Dcs_comm.Gap_hamming
module Sketch = Dcs_sketch.Sketch

type params = { n : int; beta : int; inv_eps_sq : int; c : float }

let make_params ?(c = 0.25) ~beta ~inv_eps_sq n =
  if beta < 1 then invalid_arg "Forall_lb: beta >= 1";
  if inv_eps_sq < 4 || inv_eps_sq mod 4 <> 0 then
    invalid_arg "Forall_lb: 1/eps^2 must be a positive multiple of 4";
  if c <= 0.0 then invalid_arg "Forall_lb: c > 0";
  let block = beta * inv_eps_sq in
  if n <= 0 || n mod block <> 0 || n / block < 2 then
    invalid_arg
      (Printf.sprintf
         "Forall_lb: n (%d) must be a multiple of block %d with at least 2 blocks"
         n block);
  if block mod 2 <> 0 then invalid_arg "Forall_lb: block must be even";
  { n; beta; inv_eps_sq; c }

let block_size p = p.beta * p.inv_eps_sq
let layout p = Layout.create ~n:p.n ~block:(block_size p)
let eps p = 1.0 /. sqrt (float_of_int p.inv_eps_sq)
let strings_per_pair p = block_size p * p.beta
let total_strings p = strings_per_pair p * ((layout p).Layout.chains - 1)
let bits_capacity p = total_strings p * p.inv_eps_sq
let balance_upper_bound p = 2.0 *. float_of_int p.beta

type address = { pair : int; i : int; j : int }

let address_of_string_index p g =
  if g < 0 || g >= total_strings p then invalid_arg "Forall_lb: string index";
  let per_pair = strings_per_pair p in
  let pair = g / per_pair in
  let r = g mod per_pair in
  { pair; i = r / p.beta; j = r mod p.beta }

let string_index_of_address p a =
  (a.pair * strings_per_pair p) + (a.i * p.beta) + a.j

type instance = {
  params : params;
  gh : Gap_hamming.instance;
  graph : Dcs_graph.Digraph.t;
  target : address;
}

(* Vertex of the v-th node of cluster R_j in block [chain]. *)
let right_vertex p lay ~chain ~j ~v =
  Layout.vertex lay ~chain ~offset:((j * p.inv_eps_sq) + v)

let encode p gh =
  if Array.length gh.Gap_hamming.strings <> total_strings p then
    invalid_arg "Forall_lb.encode: wrong number of strings";
  if gh.Gap_hamming.d <> p.inv_eps_sq then
    invalid_arg "Forall_lb.encode: wrong string length";
  let lay = layout p in
  let g = Digraph.create p.n in
  let k = block_size p in
  for pair = 0 to lay.Layout.chains - 2 do
    for i = 0 to k - 1 do
      let left = Layout.vertex lay ~chain:pair ~offset:i in
      for j = 0 to p.beta - 1 do
        let s = gh.Gap_hamming.strings.(string_index_of_address p { pair; i; j }) in
        for v = 0 to p.inv_eps_sq - 1 do
          let w = if s.(v) then 2.0 else 1.0 in
          Digraph.add_edge g left (right_vertex p lay ~chain:(pair + 1) ~j ~v) w
        done
      done
    done
  done;
  Layout.add_backward_edges lay ~weight:(1.0 /. float_of_int p.beta) g;
  { params = p; gh; graph = g; target = address_of_string_index p gh.Gap_hamming.i }

let random_instance rng p =
  let gh =
    Gap_hamming.generate rng ~h:(total_strings p) ~inv_eps_sq:p.inv_eps_sq ~c:p.c
  in
  encode p gh

type decision = Delta_high | Delta_low

let correct_decision inst =
  if inst.gh.Gap_hamming.high then Delta_high else Delta_low

(* The decode hot paths take the layout as an argument: [layout p] is cheap
   but allocates, and the enumerate decoder issues one cut query per
   half-size subset — reconstructing it inside [query_cut] /
   [fixed_backward_weight] put an allocation in the innermost loop. The
   public wrappers below rebuild it once per call. *)
let query_cut_lay p lay a ~u_mem ~t =
  let block = lay.Layout.block in
  if Bitstring.length t <> p.inv_eps_sq then invalid_arg "Forall_lb.query_cut: t";
  let mem v =
    let chain = v / block in
    if chain >= a.pair + 2 then true
    else if chain = a.pair then u_mem (v mod block)
    else if chain = a.pair + 1 then begin
      let off = v mod block in
      let cluster = off / p.inv_eps_sq and pos = off mod p.inv_eps_sq in
      not (cluster = a.j && t.(pos))
    end
    else false
  in
  Cut.of_mem ~n:p.n mem

let query_cut p a ~u_mem ~t = query_cut_lay p (layout p) a ~u_mem ~t

let fixed_backward_weight_lay p lay a ~u_size =
  let k = lay.Layout.block in
  let half_t = p.inv_eps_sq / 2 in
  (* (V_{p+1}\T) -> (V_p\U), then U -> V_{p-1}, then V_{p+2} -> T. *)
  let within_pair = float_of_int ((k - half_t) * (k - u_size)) in
  let from_u_back = if a.pair >= 1 then float_of_int (u_size * k) else 0.0 in
  let into_t =
    if a.pair + 2 <= lay.Layout.chains - 1 then float_of_int (k * half_t) else 0.0
  in
  (within_pair +. from_u_back +. into_t) /. float_of_int p.beta

let fixed_backward_weight p a ~u_size =
  fixed_backward_weight_lay p (layout p) a ~u_size

let estimate_w_ut_lay p lay ~query a ~u_mem ~t =
  let k = lay.Layout.block in
  let u_size = ref 0 in
  for o = 0 to k - 1 do
    if u_mem o then incr u_size
  done;
  let s = query_cut_lay p lay a ~u_mem ~t in
  query s -. fixed_backward_weight_lay p lay a ~u_size:!u_size

let estimate_w_ut p ~query a ~u_mem ~t =
  estimate_w_ut_lay p (layout p) ~query a ~u_mem ~t

(* The "natural" one-query decoder the paper shows is too weak: estimate
   w({ℓ_i}, T) directly from S = {ℓ_i} ∪ (R\T) ∪ …  and threshold it at
   its midpoint 1/(2ε²) + 1/(4ε²). A (1±ε') sketch answers the Θ(β/ε⁴) cut
   with Θ(ε'β/ε⁴) additive error, which swamps the Θ(1/ε) signal unless ε'
   is tiny — the motivation for the Lemma 4.4 subset enumeration. *)
let decode_single_query p ~query a ~t =
  let est =
    estimate_w_ut p ~query a ~u_mem:(fun o -> o = a.i) ~t
  in
  let d = float_of_int p.inv_eps_sq in
  let midpoint = (d /. 2.0) +. (d /. 4.0) in
  if est >= midpoint then Delta_low else Delta_high

(* Iterate all size-[k] subsets of 0..n-1 as a membership array, announcing
   every membership toggle through [flip]. The binomial recursion changes
   one element per step, so consecutive visited subsets are connected by
   O(1) flips on average (a revolving-door walk): an incremental consumer
   keeps a running cut value via [Csr.cut_delta] instead of recomputing it
   per subset. [flip o] fires after [mem.(o)] changed. *)
let iter_combinations_incremental ~n ~k ~flip ~visit =
  let mem = Array.make n false in
  let rec go start remaining =
    if remaining = 0 then visit mem
    else if n - start >= remaining then begin
      (* include [start] *)
      mem.(start) <- true;
      flip start;
      go (start + 1) (remaining - 1);
      mem.(start) <- false;
      flip start;
      (* skip [start] *)
      go (start + 1) remaining
    end
  in
  go 0 k

let iter_combinations ~n ~k f =
  iter_combinations_incremental ~n ~k ~flip:(fun _ -> ()) ~visit:f

(* Reference decoder: one full-cut sketch query per subset. *)
let decode_enumerate_query p lay ~query a ~t =
  let k = lay.Layout.block in
  let best = ref neg_infinity in
  let best_q = Array.make k false in
  iter_combinations ~n:k ~k:(k / 2) (fun mem ->
      let est = estimate_w_ut_lay p lay ~query a ~u_mem:(fun o -> mem.(o)) ~t in
      if est > !best then begin
        best := est;
        Array.blit mem 0 best_q 0 k
      end);
  if best_q.(a.i) then Delta_low else Delta_high

(* Guard for the incremental (graph-backed) enumeration: C(28,14) ≈ 40M
   subsets at O(degree) per step. Subsets are also carried as int
   bitmasks over left offsets, so the guard must stay < Sys.int_size. *)
let enumerate_guard = 28

(* Guard for the generic one-query-per-subset path. *)
let enumerate_query_guard = 20

(* Reusable buffers for [decode_enumerate_frozen]: the query side array
   plus the flip/visit recording blocks that feed [Csr.flip_sweep]. One
   scratch per worker domain (sized by the params, not the instance)
   serves every trial that domain runs — the decoder then allocates
   nothing proportional to the C(k, k/2) walk. *)
type decode_scratch = {
  scratch_n : int;
  side : bool array;        (* query-cut membership, length n *)
  flips : int array;        (* recorded membership toggles (vertex ids) *)
  vals : float array;       (* running cut value after each flip *)
  visit_at : int array;     (* #flips recorded when a subset was visited *)
  visit_mask : int array;   (* that subset, as a bitmask over 0..k-1 *)
}

let scratch_block = 4096

let decode_scratch p =
  {
    scratch_n = p.n;
    side = Array.make p.n false;
    flips = Array.make scratch_block 0;
    vals = Array.make scratch_block 0.0;
    visit_at = Array.make scratch_block 0;
    visit_mask = Array.make scratch_block 0;
  }

(* Incremental decoder for graph-valued sketches, batched: evaluate the
   first query cut from scratch, then walk the subsets recording each
   membership toggle (and each visited subset, as a bitmask) into the
   scratch blocks; a full block is flushed through [Csr.flip_sweep],
   which replays the toggles with [cut_delta]'s exact float operations in
   the same order — so the running values, and the argmax with the same
   strict-> tie-break in the same visiting order, match the one-flip-at-
   a-time loop (and [decode_enumerate_query]) bit for bit whenever cut
   sums are exact in floating point — in particular on the encoder's
   weights {1, 2, 1/β} for β a power of two. *)
let decode_enumerate_frozen ?scratch p csr a ~t =
  let lay = layout p in
  let block = lay.Layout.block in
  let k = block in
  if k > enumerate_guard then
    invalid_arg
      (Printf.sprintf "Forall_lb.decode_enumerate: k too large (> %d)"
         enumerate_guard);
  if Bitstring.length t <> p.inv_eps_sq then invalid_arg "Forall_lb.query_cut: t";
  let s =
    match scratch with
    | None -> decode_scratch p
    | Some s ->
        if s.scratch_n <> p.n then
          invalid_arg "Forall_lb.decode_enumerate: scratch built for other params";
        s
  in
  let side = s.side in
  (* Membership of the query cut with U = ∅ (cf. [query_cut_lay]). *)
  for v = 0 to p.n - 1 do
    let chain = v / block in
    side.(v) <-
      (if chain >= a.pair + 2 then true
       else if chain = a.pair then false
       else if chain = a.pair + 1 then begin
         let off = v mod block in
         let cluster = off / p.inv_eps_sq and pos = off mod p.inv_eps_sq in
         not (cluster = a.j && t.(pos))
       end
       else false)
  done;
  let base = Layout.block_start lay a.pair in
  let cur = ref (Csr.cut_weight csr (fun v -> side.(v))) in
  let back = fixed_backward_weight_lay p lay a ~u_size:(k / 2) in
  let best = ref neg_infinity in
  let best_mask = ref 0 in
  let mask = ref 0 in
  let nflips = ref 0 in
  let nvisits = ref 0 in
  let flush () =
    let v0 = !cur in
    if !nflips > 0 then
      cur :=
        Csr.flip_sweep ~len:!nflips csr ~side ~init:v0 ~flips:s.flips
          ~vals:s.vals;
    for q = 0 to !nvisits - 1 do
      let c = s.visit_at.(q) in
      let est = (if c = 0 then v0 else s.vals.(c - 1)) -. back in
      if est > !best then begin
        best := est;
        best_mask := s.visit_mask.(q)
      end
    done;
    nflips := 0;
    nvisits := 0
  in
  iter_combinations_incremental ~n:k ~k:(k / 2)
    ~flip:(fun o ->
      if !nflips = scratch_block then flush ();
      s.flips.(!nflips) <- base + o;
      incr nflips;
      mask := !mask lxor (1 lsl o))
    ~visit:(fun _ ->
      if !nvisits = scratch_block then flush ();
      s.visit_at.(!nvisits) <- !nflips;
      s.visit_mask.(!nvisits) <- !mask;
      incr nvisits);
  flush ();
  if (!best_mask lsr a.i) land 1 = 1 then Delta_low else Delta_high

let decode_enumerate ?graph ?scratch p ~query a ~t =
  let lay = layout p in
  let k = lay.Layout.block in
  match graph with
  | Some g -> decode_enumerate_frozen ?scratch p (Csr.of_digraph g) a ~t
  | None ->
      (* A generic sketch costs a full query per subset. *)
      if k > enumerate_query_guard then
        invalid_arg
          (Printf.sprintf "Forall_lb.decode_enumerate: k too large (> %d)"
             enumerate_query_guard);
      decode_enumerate_query p lay ~query a ~t

(* Per-left-vertex score on a graph-valued sketch: sampled forward weight
   from ℓ_i into T. Summing scores over U gives exactly the sketch's
   estimate of w(U, T), so the top-k/2 set maximizes it over half-size
   subsets (Lemma 4.4's argmax, computed in polynomial time). *)
let topk_q_set p ~sketch_graph a ~t =
  let lay = layout p in
  let k = lay.Layout.block in
  let scores =
    Array.init k (fun i ->
        let left = Layout.vertex lay ~chain:a.pair ~offset:i in
        let acc = ref 0.0 in
        for v = 0 to p.inv_eps_sq - 1 do
          if t.(v) then
            (* [Layout.vertex] already validated both endpoints, so the
               k·(1/ε²) probes skip the per-lookup bounds checks. *)
            acc :=
              !acc
              +. Digraph.unsafe_weight sketch_graph left
                   (right_vertex p lay ~chain:(a.pair + 1) ~j:a.j ~v)
        done;
        !acc)
  in
  let order = Array.init k (fun i -> i) in
  Array.sort (fun x y -> compare scores.(y) scores.(x)) order;
  let q = Array.make k false in
  for r = 0 to (k / 2) - 1 do
    q.(order.(r)) <- true
  done;
  q

let decode_topk p ~sketch_graph a ~t =
  let q = topk_q_set p ~sketch_graph a ~t in
  if q.(a.i) then Delta_low else Delta_high

let lemma43_stats inst =
  let p = inst.params in
  let a = inst.target in
  let k = block_size p in
  let t = inst.gh.Gap_hamming.t in
  let quarter = float_of_int p.inv_eps_sq /. 4.0 in
  let gap_half = float_of_int inst.gh.Gap_hamming.gap /. 2.0 in
  let high = ref 0 and low = ref 0 in
  for i = 0 to k - 1 do
    let s = inst.gh.Gap_hamming.strings.(string_index_of_address p { a with i }) in
    let overlap = float_of_int (Bitstring.intersection_size s t) in
    if overlap >= quarter +. gap_half then incr high
    else if overlap <= quarter -. gap_half then incr low
  done;
  (!high, !low)

let codec_bits p =
  let c = Bits.create () in
  Bits.write_nonneg c p.n;
  Bits.write_nonneg c p.beta;
  Bits.write_nonneg c p.inv_eps_sq;
  Bits.write_float c p.c;
  Bits.add c (bits_capacity p);
  Bits.total c

let codec_sketch inst =
  let g = inst.graph in
  let csr = Csr.of_digraph g in
  {
    Sketch.name = "instance-codec(for-all)";
    size_bits = codec_bits inst.params;
    query = (fun s -> Csr.cut_value csr s);
    graph = Some g;
  }

type trial_stats = {
  trials : int;
  correct : int;
  success_rate : float;
  mean_sketch_bits : float;
}

let run_trials ?domains ?chunk rng p ~sketch_of ~decoder ~trials =
  if trials <= 0 then invalid_arg "Forall_lb.run_trials";
  (* Same seed-splitting discipline as [Foreach_lb.run_trials]: trial [t]'s
     randomness is a pure function of (master, t), so any domain count gives
     the same stats. Trials fan out through the chunked pool; each worker
     domain reuses one [decode_scratch], which only the enumerate decoder
     touches (and every decoder ignores at will — the decision is a pure
     function of the trial index either way). *)
  let master = Prng.fork rng in
  let one_trial scratch t =
    let rng = Prng.split master t in
    let inst = random_instance rng p in
    let sk = sketch_of rng inst in
    let t = inst.gh.Gap_hamming.t in
    let decision =
      match decoder with
      | `Single -> decode_single_query p ~query:sk.Sketch.query inst.target ~t
      | `Enumerate ->
          decode_enumerate ?graph:sk.Sketch.graph ~scratch p
            ~query:sk.Sketch.query inst.target ~t
      | `Topk -> (
          match sk.Sketch.graph with
          | Some g -> decode_topk p ~sketch_graph:g inst.target ~t
          | None ->
              invalid_arg "Forall_lb.run_trials: `Topk needs a graph-valued sketch")
    in
    (decision = correct_decision inst, float_of_int sk.Sketch.size_bits)
  in
  let per_trial =
    Dcs_util.Pool.run_batched ?domains ?chunk
      ~arena:(fun () -> decode_scratch p)
      ~n:trials one_trial
  in
  let correct =
    Array.fold_left (fun acc (ok, _) -> if ok then acc + 1 else acc) 0 per_trial
  in
  let sketch_bits = Array.fold_left (fun acc (_, b) -> acc +. b) 0.0 per_trial in
  {
    trials;
    correct;
    success_rate = float_of_int correct /. float_of_int trials;
    mean_sketch_bits = sketch_bits /. float_of_int trials;
  }

(** The Section 4 lower-bound construction (Theorem 1.2): encoding an h-fold
    Gap-Hamming instance into a (2β)-balanced digraph so that any (1 ± c₂ε)
    for-all cut sketch decides the planted Hamming-distance gap.

    Structure: blocks of k = β/ε² vertices; within a consecutive pair
    (V_p, V_{p+1}), the left nodes are ℓ_1..ℓ_k and the right block splits
    into β clusters R_1..R_β of size 1/ε². The string s_{i,j} ∈ {0,1}^{1/ε²}
    (Hamming weight 1/(2ε²)) sets the forward weight of (ℓ_i, v-th of R_j)
    to s_{i,j}(v) + 1 ∈ {1,2}; every backward edge has weight 1/β.

    Bob holds (i0, j0) and a weight-1/(2ε²) string t. Writing T ⊂ R_{j0}
    for t's support, he approximates w(U, T) for half-size subsets U ⊂ V_p
    by querying S = U ∪ (V_{p+1}\T) ∪ V_{p+2} ∪ … and subtracting the fixed
    backward weight; the subset Q maximizing the estimate captures >= 4/5
    of L_high (Lemma 4.4), and Bob answers "Δ small" iff ℓ_{i0} ∈ Q.

    Two decoders are provided: the literal subset enumeration (any cut
    oracle; exponential in k, for small instances) and a polynomial top-k
    variant that is exact for every sketch whose cut estimates are additive
    over left vertices — in particular every graph-valued sketch (the
    estimate of w(U,T) on a sparsifier is Σ_{ℓ∈U} w̃(ℓ,T), so the argmax
    over half-size subsets is attained by the top k/2 per-vertex scores). *)

type params = {
  n : int;            (** total vertices; multiple of block k = β·(1/ε²) *)
  beta : int;         (** balance parameter, >= 1 *)
  inv_eps_sq : int;   (** d = 1/ε²; a positive multiple of 4 *)
  c : float;          (** Gap-Hamming gap constant (paper's c) *)
}

val make_params : ?c:float -> beta:int -> inv_eps_sq:int -> int -> params
(** [make_params ~beta ~inv_eps_sq n]; default [c] is 0.25. *)

val layout : params -> Layout.t
val eps : params -> float
val block_size : params -> int
(** k = β/ε². *)

val strings_per_pair : params -> int
(** k·β = β²/ε². *)

val total_strings : params -> int
(** h = (ℓ-1)·β²/ε². *)

val bits_capacity : params -> int
(** h·(1/ε²) raw input bits — the Ω(nβ/ε²) quantity. *)

val balance_upper_bound : params -> float
(** 2β (edgewise certificate). *)

type address = {
  pair : int;  (** chain pair p *)
  i : int;     (** left node index in [k] *)
  j : int;     (** right cluster index in [β] *)
}

val address_of_string_index : params -> int -> address
val string_index_of_address : params -> address -> int

type instance = {
  params : params;
  gh : Dcs_comm.Gap_hamming.instance;
  graph : Dcs_graph.Digraph.t;
  target : address;   (** where Bob's planted string lives *)
}

val encode : params -> Dcs_comm.Gap_hamming.instance -> instance
(** Deterministic given the Gap-Hamming instance; the instance must have
    [total_strings] strings of length [inv_eps_sq]. *)

val random_instance : Dcs_util.Prng.t -> params -> instance

type decision = Delta_high | Delta_low

val correct_decision : instance -> decision

val query_cut : params -> address -> u_mem:(int -> bool) -> t:Dcs_comm.Bitstring.t -> Dcs_graph.Cut.t
(** S = U ∪ (V_{p+1}\T) ∪ V_{p+2} ∪ …, where U ⊂ V_p is given by the
    membership predicate over left offsets 0..k-1. *)

val fixed_backward_weight : params -> address -> u_size:int -> float
(** Closed-form backward crossing weight of [query_cut] for |U| = u_size. *)

val estimate_w_ut :
  params -> query:(Dcs_graph.Cut.t -> float) -> address ->
  u_mem:(int -> bool) -> t:Dcs_comm.Bitstring.t -> float
(** One Lemma 4.2 probe: query(S_U) minus the fixed backward weight. *)

val decode_single_query :
  params -> query:(Dcs_graph.Cut.t -> float) -> address ->
  t:Dcs_comm.Bitstring.t -> decision
(** The one-query strawman the paper rules out (Section 4's "Bob can only
    get a (1±ε)-approximation … with this much error Bob cannot
    distinguish"): estimate w(\{ℓ_i\}, T) directly and threshold. Works
    only when the sketch error is far below ε; included to reproduce that
    contrast experimentally. *)

type decode_scratch
(** Reusable decoder buffers (query side array + the flip/visit blocks
    fed to [Csr.flip_sweep]): build one per worker domain with
    {!decode_scratch} and pass it to every decode of the same [params].
    Contents carry no state between decodes. *)

val decode_scratch : params -> decode_scratch

val enumerate_guard : int
(** 28 — largest block size k the graph-backed enumeration accepts
    (C(28,14) ≈ 40M incremental steps; subsets are tracked as int
    bitmasks over the k left offsets). *)

val enumerate_query_guard : int
(** 20 — largest k the generic one-query-per-subset enumeration accepts. *)

val decode_enumerate_frozen :
  ?scratch:decode_scratch ->
  params -> Dcs_graph.Csr.t -> address ->
  t:Dcs_comm.Bitstring.t -> decision
(** Lemma 4.4 enumeration over a pre-frozen sketch graph: walks the
    C(k, k/2) half-size subsets incrementally, recording membership
    toggles and visited subsets into [scratch] blocks and flushing them
    through the batched {!Dcs_graph.Csr.flip_sweep} kernel — the same
    float operations in the same order as a per-flip [cut_delta] loop,
    so decisions are byte-identical to it. Guarded to k <=
    {!enumerate_guard}. [scratch] (default: fresh) must come from
    {!decode_scratch} on the same [params]. *)

val decode_enumerate :
  ?graph:Dcs_graph.Digraph.t ->
  ?scratch:decode_scratch ->
  params -> query:(Dcs_graph.Cut.t -> float) -> address ->
  t:Dcs_comm.Bitstring.t -> decision
(** Literal Lemma 4.4: enumerate all C(k, k/2) half-size subsets, keeping
    the argmax estimate.

    Without [graph], each subset costs one full [query]; guarded to
    k <= {!enumerate_query_guard}. With [graph] — the sketch's own graph,
    as exposed by graph-valued sketches ([query] must equal its exact cut
    value) — the graph is frozen into a {!Dcs_graph.Csr} and decoding is
    {!decode_enumerate_frozen}, raising the guard to
    k <= {!enumerate_guard} (k = 24 runs in seconds; k = 26 in minutes).
    Both paths visit subsets in the same order with the same strict->
    tie-break, and agree bit for bit whenever cut sums are exact in
    floating point (the encoder's weights for β a power of two). *)

val iter_combinations_incremental :
  n:int -> k:int -> flip:(int -> unit) -> visit:(bool array -> unit) -> unit
(** The subset walk behind [decode_enumerate]: visits every size-[k] subset
    of 0..n-1 (same order as the plain enumeration), firing [flip o] after
    each membership toggle of element [o]. Exposed for the representation
    benchmark and the incremental-cut equivalence tests. *)

val decode_topk :
  params -> sketch_graph:Dcs_graph.Digraph.t -> address ->
  t:Dcs_comm.Bitstring.t -> decision
(** Polynomial decoder for additive (graph-valued) sketches. *)

val topk_q_set :
  params -> sketch_graph:Dcs_graph.Digraph.t -> address ->
  t:Dcs_comm.Bitstring.t -> bool array
(** The Q ⊂ V_p chosen by the top-k decoder (exposed for the Lemma 4.3/4.4
    statistics experiment). *)

val lemma43_stats : instance -> int * int
(** (|L_high|, |L_low|) for the planted pair's T — the population the
    Lemma 4.3 concentration statement is about. *)

val codec_sketch : instance -> Dcs_sketch.Sketch.t
(** Instance-optimal matching sketch: h/ε² bits (the raw strings). *)

val codec_bits : params -> int

type trial_stats = {
  trials : int;
  correct : int;
  success_rate : float;
  mean_sketch_bits : float;
}

val run_trials :
  ?domains:int ->
  ?chunk:int ->
  Dcs_util.Prng.t ->
  params ->
  sketch_of:(Dcs_util.Prng.t -> instance -> Dcs_sketch.Sketch.t) ->
  decoder:[ `Enumerate | `Topk | `Single ] ->
  trials:int ->
  trial_stats
(** Fresh instance per trial; decodes the planted pair. [`Topk] requires
    the sketches to be graph-valued. Trials run on the chunked pool
    ({!Dcs_util.Pool.run_batched}) over [domains] domains (default
    [Pool.domain_count ()]) in [chunk]-sized batches, one reusable
    {!decode_scratch} per domain; per-trial [Prng.split] streams keep the
    stats bit-identical for every domain and chunk count. *)

(** The "simple encoding method" the paper's Section 1.2 rules out, built
    so the failure is measurable.

    Each bit is encoded into a single forward edge (weight 1 or 2, as in
    ACK+16/CCPS21); every backward edge has weight 1/β. To decode bit
    (u, v), Bob queries the one cut S = {u} ∪ (V_{p+1} \ {v}) ∪ rest and
    subtracts the fixed weights of everything except the (u, v) edge. The
    problem the paper points out: that cut carries Θ(β/ε²)·(1/β) = Θ(1/ε²)
    of backward mass plus Θ(k) of other forward edges, so a (1 ± ε') sketch
    answers with Θ(ε'/ε²) additive error while the signal is Θ(1) — the
    naive scheme needs accuracy ~ ε², whereas the Hadamard superposition of
    Section 3 survives down to ~ ε/ln(1/ε).

    The chain layout matches {!Foreach_lb} (blocks of k = √β/ε vertices) so
    the two schemes are compared on identically-shaped graphs. *)

type params = {
  n : int;
  beta : int;     (** perfect square *)
  inv_eps : int;  (** 1/ε, power of two >= 2 *)
}

val make_params : beta:int -> inv_eps:int -> int -> params
val block_size : params -> int
val layout : params -> Layout.t

val bits_capacity : params -> int
(** One bit per forward edge: (ℓ-1)·k² — note this is *more* raw bits than
    the Section 3 construction stores; the lower bound is about what can be
    *recovered through a (1±ε) sketch*, which is where this scheme fails. *)

type instance = {
  params : params;
  s : bool array;
  graph : Dcs_graph.Digraph.t;
}

val encode : params -> s:bool array -> instance
val random_instance : Dcs_util.Prng.t -> params -> instance

type address = { pair : int; u : int; v : int }
(** Bit of the forward edge from the [u]-th node of V_pair to the [v]-th
    node of V_{pair+1}. *)

val address_of_index : params -> int -> address
val index_of_address : params -> address -> int

val decode_bit : params -> query:(Dcs_graph.Cut.t -> float) -> int -> bool
(** One cut query; thresholds the de-biased estimate at 1.5. *)

val query_cut : params -> address -> Dcs_graph.Cut.t

val fixed_crossing_weight : params -> address -> float
(** Everything crossing [query_cut] except the queried edge itself — all of
    it backward mass of weight 1/β, instance-independent and Θ(1/ε²):
    ((k-1)² + boundary terms)/β. With an exact oracle the decode is
    perfect; with a (1±ε') oracle the error ε'/ε² drowns the ±1/2 signal
    once ε' ≳ ε². *)

type trial_stats = {
  trials : int;
  bits_tested : int;
  correct : int;
  success_rate : float;
}

val run_trials :
  ?domains:int ->
  Dcs_util.Prng.t ->
  params ->
  sketch_of:(Dcs_util.Prng.t -> instance -> Dcs_sketch.Sketch.t) ->
  trials:int ->
  bits_per_trial:int ->
  trial_stats

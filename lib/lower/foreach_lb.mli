(** The Section 3 lower-bound construction (Theorem 1.1): encoding a random
    sign string into a β-balanced digraph so that any (1 ± Θ̃(ε)) for-each
    cut sketch allows each bit to be recovered with 4 cut queries.

    Structure (paper's notation): n vertices in ℓ = n/k blocks of
    k = √β/ε; each consecutive block pair carries a complete bipartite
    digraph. Left/right blocks split into √β clusters of size 1/ε; the
    (1/ε - 1)² sign bits of a cluster pair are superposed over the 1/ε²
    forward edges through the Hadamard-tensor rows of Lemma 3.2
    (w = ε·Σ_t z_t·M_t + 2c₁ln(1/ε)·1), and every backward edge has weight
    1/β. Decoding bit t queries the four cuts S = A ∪ (V_{p+1}\B) ∪ rest
    given by the sign pattern of M_t = h_A ⊗ h_B (Figure 1) and subtracts
    the instance-independent backward weight in closed form. *)

type params = {
  n : int;        (** total vertices, a multiple of block = √β/ε *)
  beta : int;     (** balance parameter; must be a perfect square *)
  inv_eps : int;  (** 1/ε; a power of two, >= 2 *)
  c1 : float;     (** ‖x‖_∞ bound constant (encode failure threshold) *)
}

val make_params : ?c1:float -> beta:int -> inv_eps:int -> int -> params
(** [make_params ~beta ~inv_eps n] validates all divisibility constraints.
    Default [c1] is 2.0. *)

val layout : params -> Layout.t
val eps : params -> float
val sqrt_beta : params -> int
val block_size : params -> int
(** k = √β/ε. *)

val bits_capacity : params -> int
(** |s| = β·(1/ε - 1)²·(ℓ-1): the number of sign bits the construction
    stores, hence the paper's Ω̃(n√β/ε) once constants are unwound. *)

val bits_per_pair : params -> int
val cluster_pairs_per_pair : params -> int
(** β. *)

val weight_low : params -> float
(** Minimum forward edge weight c₁·ln(1/ε) (when the encode succeeded). *)

val weight_high : params -> float
(** Maximum forward weight 3c₁·ln(1/ε). *)

val balance_upper_bound : params -> float
(** Edgewise balance certificate: 3c₁·β·ln(1/ε) — the paper's
    O(β log(1/ε)). *)

type instance = {
  params : params;
  s : int array;          (** the encoded string, entries in \{-1,+1\} *)
  graph : Dcs_graph.Digraph.t;
  failed : bool array;    (** per cluster pair: ‖x‖_∞ check failed, constant
                              weights used instead (paper's 1% event) *)
}

val encode : params -> s:int array -> instance
(** Deterministic given [s]; length must equal [bits_capacity]. *)

val random_instance : Dcs_util.Prng.t -> params -> instance

type address = {
  pair : int;    (** chain pair p: blocks (V_p, V_{p+1}) *)
  ci : int;      (** left cluster index in [√β] *)
  cj : int;      (** right cluster index *)
  t : int;       (** row of the decode matrix, in [(1/ε - 1)²] *)
}

val address_of_index : params -> int -> address
val index_of_address : params -> address -> int
val failed_at : instance -> int -> bool
(** Whether the cluster pair holding this bit index failed to encode. *)

type decode_result = {
  decoded : int;         (** in \{-1,+1\} *)
  estimate : float;      (** estimate of ⟨w, M_t⟩ = z_t/ε *)
  queries_used : int;    (** always 4 *)
}

val decode_bit :
  params -> query:(Dcs_graph.Cut.t -> float) -> int -> decode_result
(** Bob's algorithm: needs only the public parameters and a cut-value
    oracle. *)

val query_cut :
  params -> address -> side_a:int -> side_b:int -> Dcs_graph.Cut.t
(** The cut S = A ∪ (V_{p+1} \ B) ∪ V_{p+2} ∪ … queried for one sign
    combination (sides are +1/-1 selecting A vs its cluster complement);
    exposed for the Figure 1 anatomy experiment and tests. *)

val fixed_backward_weight : params -> address -> float
(** Closed-form total weight of backward edges crossing [query_cut]
    (independent of the sign combination because |A| = |B| = 1/(2ε)). *)

val codec_sketch : instance -> Dcs_sketch.Sketch.t
(** The instance-optimal matching upper bound: a sketch that serializes the
    construction as s itself (1 bit per sign plus a fixed-size header) and
    answers cut queries exactly by rebuilding the graph. Its size is what
    makes the lower bound tight on this instance family. *)

val codec_bits : params -> int

type trial_stats = {
  trials : int;
  bits_tested : int;
  correct : int;
  success_rate : float;
  encode_failure_rate : float;  (** fraction of tested bits in failed pairs *)
  mean_sketch_bits : float;
}

val run_trials :
  ?domains:int ->
  Dcs_util.Prng.t ->
  params ->
  sketch_of:(Dcs_util.Prng.t -> instance -> Dcs_sketch.Sketch.t) ->
  trials:int ->
  bits_per_trial:int ->
  trial_stats
(** Fresh random instance per trial; [bits_per_trial] uniformly random
    indices decoded against the provided sketch. Trials run in parallel on
    [domains] domains (default [Pool.domain_count ()], i.e. [DCS_DOMAINS]);
    each trial draws from its own [Prng.split] stream, so the stats are
    bit-identical for every domain count. [sketch_of] receives the trial's
    private rng and must not touch shared mutable state. *)

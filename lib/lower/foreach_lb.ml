module Prng = Dcs_util.Prng
module Digraph = Dcs_graph.Digraph
module Cut = Dcs_graph.Cut
module Decode_matrix = Dcs_linalg.Decode_matrix
module Pm_vector = Dcs_linalg.Pm_vector
module Bits = Dcs_util.Bits
module Sketch = Dcs_sketch.Sketch
module Metrics = Dcs_obs_core.Metrics
module Trace = Dcs_obs_core.Trace

let m_bits_decoded = Metrics.counter "foreach_lb.bits_decoded"
let m_cut_queries = Metrics.counter "foreach_lb.cut_queries"

type params = { n : int; beta : int; inv_eps : int; c1 : float }

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let int_sqrt x =
  let r = int_of_float (Float.round (sqrt (float_of_int x))) in
  if r * r = x then Some r else None

let make_params ?(c1 = 2.0) ~beta ~inv_eps n =
  if beta < 1 then invalid_arg "Foreach_lb: beta >= 1";
  if not (is_power_of_two inv_eps) || inv_eps < 2 then
    invalid_arg "Foreach_lb: 1/eps must be a power of two >= 2";
  (match int_sqrt beta with
  | None -> invalid_arg "Foreach_lb: beta must be a perfect square"
  | Some _ -> ());
  if c1 <= 0.0 then invalid_arg "Foreach_lb: c1 > 0";
  let p = { n; beta; inv_eps; c1 } in
  let block =
    match int_sqrt beta with Some sb -> sb * inv_eps | None -> assert false
  in
  if n <= 0 || n mod block <> 0 || n / block < 2 then
    invalid_arg
      (Printf.sprintf
         "Foreach_lb: n (%d) must be a multiple of block %d with at least 2 blocks"
         n block);
  p

let sqrt_beta p =
  match int_sqrt p.beta with Some sb -> sb | None -> assert false

let block_size p = sqrt_beta p * p.inv_eps
let layout p = Layout.create ~n:p.n ~block:(block_size p)
let eps p = 1.0 /. float_of_int p.inv_eps
let ln_inv_eps p = log (float_of_int p.inv_eps)

let bits_per_cluster p = (p.inv_eps - 1) * (p.inv_eps - 1)
let cluster_pairs_per_pair p = p.beta
let bits_per_pair p = p.beta * bits_per_cluster p
let bits_capacity p = bits_per_pair p * ((layout p).Layout.chains - 1)

let weight_base p = 2.0 *. p.c1 *. ln_inv_eps p
let weight_low p = p.c1 *. ln_inv_eps p
let weight_high p = 3.0 *. p.c1 *. ln_inv_eps p
let balance_upper_bound p = weight_high p *. float_of_int p.beta

let infnorm_bound p = p.c1 *. ln_inv_eps p *. float_of_int p.inv_eps

type instance = {
  params : params;
  s : int array;
  graph : Dcs_graph.Digraph.t;
  failed : bool array;
}

type address = { pair : int; ci : int; cj : int; t : int }

let address_of_index p q =
  if q < 0 || q >= bits_capacity p then invalid_arg "Foreach_lb: bit index";
  let per_pair = bits_per_pair p in
  let per_cluster = bits_per_cluster p in
  let sb = sqrt_beta p in
  let pair = q / per_pair in
  let r = q mod per_pair in
  let cp = r / per_cluster in
  { pair; ci = cp / sb; cj = cp mod sb; t = r mod per_cluster }

let index_of_address p a =
  let per_pair = bits_per_pair p in
  let per_cluster = bits_per_cluster p in
  let sb = sqrt_beta p in
  (a.pair * per_pair) + (((a.ci * sb) + a.cj) * per_cluster) + a.t

(* Global index of a cluster pair (used for the failure bitmap). *)
let cluster_pair_index p a = (a.pair * p.beta) + (a.ci * sqrt_beta p) + a.cj

let failed_at inst q =
  let a = address_of_index inst.params q in
  inst.failed.(cluster_pair_index inst.params a)

(* Vertex of position [pos] in cluster [c] of block [chain]. *)
let cluster_vertex p lay ~chain ~cluster ~pos =
  Layout.vertex lay ~chain ~offset:((cluster * p.inv_eps) + pos)

let encode p ~s =
  if Array.length s <> bits_capacity p then
    invalid_arg "Foreach_lb.encode: wrong string length";
  Array.iter (fun z -> if z <> 1 && z <> -1 then invalid_arg "Foreach_lb.encode: signs") s;
  Trace.with_span "foreach_lb.encode" @@ fun () ->
  let lay = layout p in
  let dm = Decode_matrix.create ~k:(Dcs_util.Stats.log2 (float_of_int p.inv_eps) |> int_of_float) in
  assert (Decode_matrix.q dm = p.inv_eps);
  let g = Digraph.create p.n in
  let sb = sqrt_beta p in
  let per_cluster = bits_per_cluster p in
  let failed = Array.make ((lay.Layout.chains - 1) * p.beta) false in
  let bound = infnorm_bound p in
  let base = weight_base p in
  let e = eps p in
  for pair = 0 to lay.Layout.chains - 2 do
    for ci = 0 to sb - 1 do
      for cj = 0 to sb - 1 do
        let a = { pair; ci; cj; t = 0 } in
        let start = index_of_address p a in
        let z = Array.sub s start per_cluster in
        let x = Decode_matrix.superpose dm z in
        let ok = Array.for_all (fun v -> Float.abs v <= bound) x in
        if not ok then failed.(cluster_pair_index p a) <- true;
        for u = 0 to p.inv_eps - 1 do
          for v = 0 to p.inv_eps - 1 do
            let w =
              if ok then (e *. x.((u * p.inv_eps) + v)) +. base else base
            in
            Digraph.add_edge g
              (cluster_vertex p lay ~chain:pair ~cluster:ci ~pos:u)
              (cluster_vertex p lay ~chain:(pair + 1) ~cluster:cj ~pos:v)
              w
          done
        done
      done
    done
  done;
  Layout.add_backward_edges lay ~weight:(1.0 /. float_of_int p.beta) g;
  { params = p; s = Array.copy s; graph = g; failed }

let random_instance rng p =
  let s = Array.init (bits_capacity p) (fun _ -> Prng.sign rng) in
  encode p ~s

(* The decode matrix row for a bit address, as its two tensor factors. *)
let row_factors p a =
  let k = int_of_float (Dcs_util.Stats.log2 (float_of_int p.inv_eps)) in
  let dm = Decode_matrix.create ~k in
  Decode_matrix.row_factors dm a.t

let query_cut p a ~side_a ~side_b =
  if abs side_a <> 1 || abs side_b <> 1 then invalid_arg "Foreach_lb.query_cut: sides";
  let lay = layout p in
  let h_a, h_b = row_factors p a in
  let block = lay.Layout.block in
  let mem v =
    let chain = v / block in
    if chain >= a.pair + 2 then true
    else if chain = a.pair then begin
      let off = v mod block in
      let cluster = off / p.inv_eps and pos = off mod p.inv_eps in
      cluster = a.ci && h_a.(pos) = side_a
    end
    else if chain = a.pair + 1 then begin
      let off = v mod block in
      let cluster = off / p.inv_eps and pos = off mod p.inv_eps in
      not (cluster = a.cj && h_b.(pos) = side_b)
    end
    else false
  in
  Cut.of_mem ~n:p.n mem

let fixed_backward_weight p a =
  let lay = layout p in
  let block = lay.Layout.block in
  (* |A| = |B| = 1/(2ε) for every sign combination by row balance. *)
  let half = p.inv_eps / 2 in
  let within_pair = float_of_int ((block - half) * (block - half)) in
  let from_a_back =
    if a.pair >= 1 then float_of_int (half * block) else 0.0
  in
  let into_b =
    if a.pair + 2 <= lay.Layout.chains - 1 then float_of_int (block * half)
    else 0.0
  in
  (within_pair +. from_a_back +. into_b) /. float_of_int p.beta

type decode_result = { decoded : int; estimate : float; queries_used : int }

let decode_bit p ~query q =
  Trace.with_span "foreach_lb.decode_bit" @@ fun () ->
  Metrics.inc m_bits_decoded;
  Metrics.inc ~by:4 m_cut_queries;
  let a = address_of_index p q in
  let back = fixed_backward_weight p a in
  let combo side_a side_b =
    let s = query_cut p a ~side_a ~side_b in
    query s -. back
  in
  (* ⟨w, M_t⟩ = w(A,B) - w(Ā,B) - w(A,B̄) + w(Ā,B̄). *)
  let estimate =
    combo 1 1 -. combo (-1) 1 -. combo 1 (-1) +. combo (-1) (-1)
  in
  { decoded = (if estimate >= 0.0 then 1 else -1); estimate; queries_used = 4 }

let codec_bits p =
  let c = Bits.create () in
  Bits.write_nonneg c p.n;
  Bits.write_nonneg c p.beta;
  Bits.write_nonneg c p.inv_eps;
  Bits.write_float c p.c1;
  Bits.add c (bits_capacity p);
  Bits.total c

let codec_sketch inst =
  (* The graph is a deterministic function of (params, s); transmitting s is
     a complete description, so the codec answers queries exactly. *)
  let g = inst.graph in
  let csr = Dcs_graph.Csr.of_digraph g in
  {
    Sketch.name = "instance-codec(for-each)";
    size_bits = codec_bits inst.params;
    query = (fun s -> Dcs_graph.Csr.cut_value csr s);
    graph = Some g;
  }

type trial_stats = {
  trials : int;
  bits_tested : int;
  correct : int;
  success_rate : float;
  encode_failure_rate : float;
  mean_sketch_bits : float;
}

let run_trials ?domains rng p ~sketch_of ~trials ~bits_per_trial =
  if trials <= 0 || bits_per_trial <= 0 then invalid_arg "Foreach_lb.run_trials";
  (* Fork once so successive calls on the same rng see fresh streams, then
     give trial [t] the pure child stream [split master t]: the per-trial
     randomness depends only on (master, t), never on the domain count. *)
  let master = Prng.fork rng in
  let one_trial t =
    let rng = Prng.split master t in
    let inst = random_instance rng p in
    let sk = sketch_of rng inst in
    let correct = ref 0 and in_failed = ref 0 in
    for _ = 1 to bits_per_trial do
      let q = Prng.int rng (bits_capacity p) in
      if failed_at inst q then incr in_failed;
      let r = decode_bit p ~query:sk.Sketch.query q in
      if r.decoded = inst.s.(q) then incr correct
    done;
    (!correct, !in_failed, float_of_int sk.Sketch.size_bits)
  in
  let per_trial = Dcs_util.Pool.parallel_init ?domains ~n:trials one_trial in
  let correct = Array.fold_left (fun acc (c, _, _) -> acc + c) 0 per_trial in
  let in_failed = Array.fold_left (fun acc (_, f, _) -> acc + f) 0 per_trial in
  let sketch_bits = Array.fold_left (fun acc (_, _, b) -> acc +. b) 0.0 per_trial in
  let total = trials * bits_per_trial in
  {
    trials;
    bits_tested = total;
    correct;
    success_rate = float_of_int correct /. float_of_int total;
    encode_failure_rate = float_of_int in_failed /. float_of_int total;
    mean_sketch_bits = sketch_bits /. float_of_int trials;
  }

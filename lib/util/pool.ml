let env_var = "DCS_DOMAINS"

let domain_count () =
  match Sys.getenv_opt env_var with
  | None -> Domain.recommended_domain_count ()
  | Some raw when String.trim raw = "" -> Domain.recommended_domain_count ()
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "%s must be a positive integer (got %S)" env_var raw))

(* Chunk [c] of [chunks] over 0..n-1: contiguous, sizes differing by at most
   one, low chunks take the remainder. *)
let chunk_bounds ~n ~chunks c =
  let base = n / chunks and extra = n mod chunks in
  let lo = (c * base) + min c extra in
  let hi = lo + base + if c < extra then 1 else 0 in
  (lo, hi)

let parallel_init ?domains ~n f =
  if n < 0 then invalid_arg "Pool.parallel_init: n must be nonnegative";
  let d =
    let d = match domains with Some d -> d | None -> domain_count () in
    if d < 1 then invalid_arg "Pool.parallel_init: domains must be positive";
    min d (max 1 n)
  in
  if d = 1 then Array.init n f
  else begin
    (* Slot [i] is written by exactly one domain and read only after the
       joins, so the array needs no lock; [None] marks a task whose chunk
       died before reaching it. *)
    let results = Array.make n None in
    let run_chunk c () =
      let lo, hi = chunk_bounds ~n ~chunks:d c in
      for i = lo to hi - 1 do
        results.(i) <- Some (f i)
      done
    in
    let spawned = Array.init (d - 1) (fun c -> Domain.spawn (run_chunk (c + 1))) in
    (* Chunk 0 runs in the calling domain; remember its exception (if any)
       but always join every spawned domain before re-raising. *)
    let first_exn = ref None in
    (try run_chunk 0 () with e -> first_exn := Some e);
    Array.iter
      (fun dom ->
        match Domain.join dom with
        | () -> ()
        | exception e -> if Option.is_none !first_exn then first_exn := Some e)
      spawned;
    (match !first_exn with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map ?domains f xs =
  parallel_init ?domains ~n:(Array.length xs) (fun i -> f xs.(i))

let parallel_init_sum ?domains ~n f =
  let terms = parallel_init ?domains ~n f in
  Array.fold_left ( +. ) 0.0 terms

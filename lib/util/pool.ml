module Metrics = Dcs_obs_core.Metrics
module Trace = Dcs_obs_core.Trace

(* Registry-backed scheduling meters. Everything here counts logical work
   (tasks, rounds, restarts), never domains or chunks: snapshots must be
   byte-identical across DCS_DOMAINS. Per-domain utilization is visible in
   the trace ("pool.chunk" spans), which is wall-clock and excluded from
   determinism diffs. *)
let m_parallel_calls = Metrics.counter "pool.parallel_calls"
let m_batched_calls = Metrics.counter "pool.batched_calls"
let m_tasks = Metrics.counter "pool.tasks"
let m_supervised_tasks = Metrics.counter "pool.supervised_tasks"
let m_rounds = Metrics.counter "pool.supervised_rounds"
let m_restarts = Metrics.counter "pool.restarts"
let m_crashes = Metrics.counter "pool.crashes"
let m_hangs = Metrics.counter "pool.hangs"
let m_poisoned = Metrics.counter "pool.poisoned"

let env_var = "DCS_DOMAINS"

let domain_count () =
  match Sys.getenv_opt env_var with
  | None -> Domain.recommended_domain_count ()
  | Some raw when String.trim raw = "" -> Domain.recommended_domain_count ()
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "%s must be a positive integer (got %S)" env_var raw))

(* Chunk [c] of [chunks] over 0..n-1: contiguous, sizes differing by at most
   one, low chunks take the remainder. *)
let chunk_bounds ~n ~chunks c =
  let base = n / chunks and extra = n mod chunks in
  let lo = (c * base) + min c extra in
  let hi = lo + base + if c < extra then 1 else 0 in
  (lo, hi)

exception Task_failed of { index : int; exn : exn; backtrace : string }

let () =
  Printexc.register_printer (function
    | Task_failed { index; exn; _ } ->
        Some
          (Printf.sprintf "Pool.Task_failed (task %d: %s)" index
             (Printexc.to_string exn))
    | _ -> None)

(* Tag a worker exception with the task it killed. The innermost pool wins
   when pools nest (e.g. a supervised sweep whose trials fan out their own
   contraction runs): an already-tagged exception passes through untouched,
   so the reported index is the one closest to the failure. *)
let wrap_task f i =
  try f i with
  | Task_failed _ as e -> raise e
  | e ->
      let backtrace = Printexc.get_backtrace () in
      raise (Task_failed { index = i; exn = e; backtrace })

let parallel_init ?domains ~n f =
  if n < 0 then invalid_arg "Pool.parallel_init: n must be nonnegative";
  let d =
    let d = match domains with Some d -> d | None -> domain_count () in
    if d < 1 then invalid_arg "Pool.parallel_init: domains must be positive";
    min d (max 1 n)
  in
  Metrics.inc m_parallel_calls;
  Metrics.inc ~by:n m_tasks;
  if d = 1 then
    Trace.with_span "pool.run" (fun () -> Array.init n (wrap_task f))
  else begin
    (* Slot [i] is written by exactly one domain and read only after the
       joins, so the array needs no lock; [None] marks a task whose chunk
       died before reaching it. *)
    let results = Array.make n None in
    let run_chunk c () =
      Trace.with_span "pool.chunk" ~args:[ ("chunk", string_of_int c) ]
      @@ fun () ->
      let lo, hi = chunk_bounds ~n ~chunks:d c in
      for i = lo to hi - 1 do
        results.(i) <- Some (wrap_task f i)
      done
    in
    Trace.with_span "pool.run" @@ fun () ->
    let spawned = Array.init (d - 1) (fun c -> Domain.spawn (run_chunk (c + 1))) in
    (* Chunk 0 runs in the calling domain; remember its exception (if any)
       but always join every spawned domain before re-raising. *)
    let first_exn = ref None in
    (try run_chunk 0 () with e -> first_exn := Some e);
    Array.iter
      (fun dom ->
        match Domain.join dom with
        | () -> ()
        | exception e -> if Option.is_none !first_exn then first_exn := Some e)
      spawned;
    (match !first_exn with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map ?domains f xs =
  parallel_init ?domains ~n:(Array.length xs) (fun i -> f xs.(i))

(* --- chunked batches with per-domain arenas --- *)

let resolve_domains ~who ~domains ~n =
  let d = match domains with Some d -> d | None -> domain_count () in
  if d < 1 then invalid_arg (who ^ ": domains must be positive");
  min d (max 1 n)

let resolve_chunk ~who ~chunk ~n ~d =
  match chunk with
  | Some c ->
      if c < 1 then invalid_arg (who ^ ": chunk must be positive");
      c
  | None -> max 1 ((n + d - 1) / d)

(* The chunked executor shared by [run_batched] and the supervised rounds:
   tasks 0..n-1 are cut into fixed-size chunks that worker domains pull
   from an atomic cursor (dynamic assignment — a slow chunk does not
   straggle the whole batch the way a static split would), each worker
   builds its [arena] once and reuses it for every task it runs, and
   [run a i] must store its own result by slot. Workers run every chunk to
   completion even when [run] raises — failures are deferred so the caller
   observes the same "all other tasks have run" contract as
   [parallel_init] — and return their failures for the caller to merge.
   Chunk *contents* are fixed by [chunk] alone; only which domain runs a
   chunk varies, which is invisible as long as [run] is slot-addressed. *)
let run_chunked ~d ~chunk ~n ~arena run =
  let nchunks = (n + chunk - 1) / chunk in
  let next = Atomic.make 0 in
  let worker w () =
    Trace.with_span "pool.worker" ~args:[ ("worker", string_of_int w) ]
    @@ fun () ->
    let a = arena () in
    let failures = ref [] in
    let rec loop () =
      let c = Atomic.fetch_and_add next 1 in
      if c < nchunks then begin
        Trace.with_span "pool.chunk" ~args:[ ("chunk", string_of_int c) ]
          (fun () ->
            let lo = c * chunk and hi = min n ((c + 1) * chunk) in
            for i = lo to hi - 1 do
              try run a i with
              | Task_failed _ as e -> failures := e :: !failures
              | e ->
                  let backtrace = Printexc.get_backtrace () in
                  failures := Task_failed { index = i; exn = e; backtrace } :: !failures
            done);
        loop ()
      end
    in
    loop ();
    !failures
  in
  let all_failures =
    if d = 1 then worker 0 ()
    else begin
      let spawned = Array.init (d - 1) (fun w -> Domain.spawn (worker (w + 1))) in
      let first_exn = ref None in
      let mine = try worker 0 () with e -> first_exn := Some e; [] in
      let rest =
        Array.fold_left
          (fun acc dom ->
            match Domain.join dom with
            | fs -> fs @ acc
            | exception e ->
                if Option.is_none !first_exn then first_exn := Some e;
                acc)
          [] spawned
      in
      (* An exception here escaped the per-task isolation (e.g. the arena
         constructor itself died): surface it over the deferred failures. *)
      (match !first_exn with Some e -> raise e | None -> ());
      mine @ rest
    end
  in
  match all_failures with
  | [] -> ()
  | fs ->
      (* Deterministic abort point: the lowest failing index, whatever the
         chunk assignment was. *)
      let lowest a b =
        match (a, b) with
        | Task_failed { index = ia; _ }, Task_failed { index = ib; _ } ->
            if ib < ia then b else a
        | _ -> a
      in
      raise (List.fold_left lowest (List.hd fs) (List.tl fs))

let run_batched ?domains ?chunk ~arena ~n f =
  if n < 0 then invalid_arg "Pool.run_batched: n must be nonnegative";
  let d = resolve_domains ~who:"Pool.run_batched" ~domains ~n in
  let chunk = resolve_chunk ~who:"Pool.run_batched" ~chunk ~n ~d in
  Metrics.inc m_batched_calls;
  Metrics.inc ~by:n m_tasks;
  let results = Array.make n None in
  Trace.with_span "pool.run_batched" (fun () ->
      run_chunked ~d ~chunk ~n ~arena (fun a i ->
          results.(i) <- Some (f a i)));
  Array.map (function Some v -> v | None -> assert false) results

let parallel_init_sum ?domains ~n f =
  let terms = parallel_init ?domains ~n f in
  Array.fold_left ( +. ) 0.0 terms

(* --- supervised execution --- *)

type ctx = {
  index : int;
  attempt : int;
  rng : Prng.t;
  attempt_rng : Prng.t;
  deadline : float option;
  started : float;
}

exception Cancelled of { index : int; attempt : int }

let cancelled ctx =
  match ctx.deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () -. ctx.started > d

let guard ctx =
  if cancelled ctx then raise (Cancelled { index = ctx.index; attempt = ctx.attempt })

type failure = {
  failed_index : int;
  failed_attempt : int;
  stream_fingerprint : int64;
  hung : bool;
  error : string;
  backtrace : string;
}

let describe_failure f =
  Printf.sprintf "task %d attempt %d (stream %016Lx) %s" f.failed_index
    f.failed_attempt f.stream_fingerprint
    (if f.hung then "hung past its deadline" else "crashed: " ^ f.error)

type report = {
  tasks : int;
  crashes : int;
  hangs : int;
  restarts : int;
  rounds : int;
  failures : failure list;
}

exception Poisoned of { index : int; attempts : int; last : failure }

let () =
  Printexc.register_printer (function
    | Poisoned { index; attempts; last } ->
        Some
          (Printf.sprintf "Pool.Poisoned (task %d after %d attempts; last: %s)"
             index attempts (describe_failure last))
    | _ -> None)

(* One attempt of one task, fully isolated: every exception is converted
   into a [failure] value, so a worker domain running a batch of attempts
   can never die and take unrelated tasks down with it. *)
let run_attempt ~deadline ~master ~attempt task i =
  let task_master = Prng.split master i in
  let attempt_rng = Prng.split task_master (attempt + 1) in
  let fp = Prng.fingerprint attempt_rng in
  let ctx =
    {
      index = i;
      attempt;
      rng = Prng.split task_master 0;
      attempt_rng;
      deadline;
      started = Unix.gettimeofday ();
    }
  in
  (* Journal this attempt's metric increments: a crashed or hung attempt
     must leave no trace in the merged snapshot, so a retried task counts
     exactly once. *)
  match Metrics.in_attempt (fun () -> task ctx) with
  | v -> Ok v
  | exception Cancelled _ ->
      Error
        {
          failed_index = i;
          failed_attempt = attempt;
          stream_fingerprint = fp;
          hung = true;
          error = "deadline exceeded";
          backtrace = "";
        }
  | exception e ->
      Error
        {
          failed_index = i;
          failed_attempt = attempt;
          stream_fingerprint = fp;
          hung = false;
          error = Printexc.to_string e;
          backtrace = Printexc.get_backtrace ();
        }

let supervised_core ?domains ?chunk ?(restart_budget = 2) ?deadline ~arena ~rng
    ~indices task =
  if restart_budget < 0 then
    invalid_arg "Pool.run_supervised: restart_budget must be nonnegative";
  Array.iter
    (fun i ->
      if i < 0 then invalid_arg "Pool.run_supervised: indices must be nonnegative")
    indices;
  let d_requested = match domains with Some d -> d | None -> domain_count () in
  if d_requested < 1 then
    invalid_arg "Pool.run_supervised: domains must be positive";
  let k = Array.length indices in
  Metrics.inc ~by:k m_supervised_tasks;
  let results = Array.make k None in
  let failures = ref [] (* reverse chronological *) in
  let crashes = ref 0 and hangs = ref 0 and restarts = ref 0 and rounds = ref 0 in
  (* Round [attempt] re-executes every still-failing task on fresh domains:
     a crash cannot corrupt its replacement's domain-local state, and the
     attempt streams are pure functions of (master, index, attempt), so the
     rounds — and the final results — are independent of scheduling.
     [pending] holds caller slots (positions into [indices]). *)
  let rec round attempt pending =
    if Array.length pending > 0 then begin
      if attempt > restart_budget then begin
        let i = indices.(pending.(0)) in
        let last = List.find (fun f -> f.failed_index = i) !failures in
        Metrics.inc m_poisoned;
        raise (Poisoned { index = i; attempts = attempt; last })
      end;
      incr rounds;
      Metrics.inc m_rounds;
      if attempt > 0 then begin
        restarts := !restarts + Array.length pending;
        Metrics.inc ~by:(Array.length pending) m_restarts
      end;
      let np = Array.length pending in
      let outcomes = Array.make np None in
      let d = min d_requested np in
      let chunk = resolve_chunk ~who:"Pool.run_supervised" ~chunk ~n:np ~d in
      (* run_attempt converts every task exception into a value, so the
         chunked executor sees no failures and the joins are plain. *)
      run_chunked ~d ~chunk ~n:np ~arena (fun a pos ->
          outcomes.(pos) <-
            Some
              (run_attempt ~deadline ~master:rng ~attempt (task a)
                 indices.(pending.(pos))));
      let still = ref [] in
      for pos = 0 to np - 1 do
        match outcomes.(pos) with
        | Some (Ok v) -> results.(pending.(pos)) <- Some v
        | Some (Error f) ->
            failures := f :: !failures;
            if f.hung then begin incr hangs; Metrics.inc m_hangs end
            else begin incr crashes; Metrics.inc m_crashes end;
            still := pending.(pos) :: !still
        | None -> assert false
      done;
      round (attempt + 1) (Array.of_list (List.rev !still))
    end
  in
  round 0 (Array.init k Fun.id);
  let values =
    Array.map (function Some v -> v | None -> assert false) results
  in
  ( values,
    {
      tasks = k;
      crashes = !crashes;
      hangs = !hangs;
      restarts = !restarts;
      rounds = !rounds;
      failures = List.rev !failures;
    } )

let run_supervised_on ?domains ?restart_budget ?deadline ~rng ~indices task =
  supervised_core ?domains ?restart_budget ?deadline
    ~arena:(fun () -> ())
    ~rng ~indices
    (fun () ctx -> task ctx)

let run_supervised ?domains ?restart_budget ?deadline ~rng ~n task =
  if n < 0 then invalid_arg "Pool.run_supervised: n must be nonnegative";
  run_supervised_on ?domains ?restart_budget ?deadline ~rng
    ~indices:(Array.init n Fun.id) task

let run_supervised_batched ?domains ?chunk ?restart_budget ?deadline ~arena ~rng
    ~n task =
  if n < 0 then invalid_arg "Pool.run_supervised: n must be nonnegative";
  supervised_core ?domains ?chunk ?restart_budget ?deadline ~arena ~rng
    ~indices:(Array.init n Fun.id) task

let run_supervised_batched_on ?domains ?chunk ?restart_budget ?deadline ~arena
    ~rng ~indices task =
  supervised_core ?domains ?chunk ?restart_budget ?deadline ~arena ~rng ~indices
    task

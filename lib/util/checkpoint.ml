type record = { index : int; payload : string }

(* --- snapshot encoding ---

   Body layout (all lengths explicit so payloads may hold any bytes):

     ckpt1\n
     <signature length>\n
     <signature>\n
     <record count>\n
     <index> <payload length>\n<payload>\n     (per record, indices strictly
                                                increasing)

   The body travels inside a Checksum.frame, so the CRC-32 catches every
   single-bit flip and the length header catches truncation before this
   parser ever runs; the strictness below guards against software bugs
   (foreign files, encoder drift), not line noise. *)

let magic = "ckpt1"

let encode_body ~signature records =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int (String.length signature));
  Buffer.add_char buf '\n';
  Buffer.add_string buf signature;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int (List.length records));
  Buffer.add_char buf '\n';
  let last = ref (-1) in
  List.iter
    (fun r ->
      if r.index < 0 then invalid_arg "Checkpoint: record index must be nonnegative";
      if r.index <= !last then
        invalid_arg "Checkpoint: record indices must be strictly increasing";
      last := r.index;
      Buffer.add_string buf (string_of_int r.index);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (String.length r.payload));
      Buffer.add_char buf '\n';
      Buffer.add_string buf r.payload;
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

exception Malformed of string

let decode_body ~signature body =
  let pos = ref 0 in
  let len = String.length body in
  let fail msg = raise (Malformed msg) in
  let take_line () =
    match String.index_from_opt body !pos '\n' with
    | None -> fail "truncated line"
    | Some nl ->
        let s = String.sub body !pos (nl - !pos) in
        pos := nl + 1;
        s
  in
  let take_bytes k =
    if k < 0 || !pos + k > len then fail "truncated payload";
    let s = String.sub body !pos k in
    pos := !pos + k;
    s
  in
  let int_line s = match int_of_string_opt s with
    | Some v when v >= 0 -> v
    | _ -> fail "unparsable count"
  in
  if take_line () <> magic then fail "bad magic";
  let siglen = int_line (take_line ()) in
  let sig_found = take_bytes siglen in
  if take_line () <> "" then fail "unterminated signature";
  if sig_found <> signature then
    fail "signature mismatch (stale or foreign checkpoint)";
  let count = int_line (take_line ()) in
  let last = ref (-1) in
  let records =
    List.init count (fun _ ->
        let header = take_line () in
        match String.split_on_char ' ' header with
        | [ idx; plen ] ->
            let index = int_line idx and plen = int_line plen in
            if index <= !last then fail "record indices not increasing";
            last := index;
            let payload = take_bytes plen in
            if take_line () <> "" then fail "unterminated payload";
            { index; payload }
        | _ -> fail "bad record header")
  in
  if !pos <> len then fail "trailing bytes";
  records

let save ~path ~signature records =
  let body = encode_body ~signature records in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Checksum.frame body);
      flush oc);
  (* Atomic on POSIX: a reader sees the old snapshot or the new one, never
     a torn write — a crash mid-save costs at most the snapshot being
     written, and the frame check rejects whatever half survives. *)
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path ~signature =
  match read_file path with
  | exception Sys_error e -> Error ("checkpoint: " ^ e)
  | raw -> (
      match Checksum.unframe raw with
      | Error e -> Error ("checkpoint: " ^ e)
      | Ok body -> (
          match decode_body ~signature body with
          | records -> Ok records
          | exception Malformed msg -> Error ("checkpoint: " ^ msg)))

(* --- resumable supervised sweeps --- *)

exception Interrupted of { path : string; completed_now : int }

let () =
  Printexc.register_printer (function
    | Interrupted { path; completed_now } ->
        Some
          (Printf.sprintf
             "Checkpoint.Interrupted (%d trials newly checkpointed in %s)"
             completed_now path)
    | _ -> None)

type sweep_report = {
  resumed : int;
  computed : int;
  saves : int;
  discarded : string option;
  crashes : int;
  hangs : int;
  restarts : int;
  failures : Pool.failure list;
}

(* Shared persistence core: [runner ~indices] is the supervised engine the
   remaining trials run on — the classic per-task supervisor for [sweep],
   the chunked arena supervisor for [sweep_batched]. Both split task
   streams by real index, so everything above the runner is identical. *)
let sweep_core ?path ?(signature = "") ?(resume = true) ?(block = 16)
    ?abort_after ~encode ~decode ~n ~runner () =
  if n < 0 then invalid_arg "Checkpoint.sweep: n must be nonnegative";
  if block < 1 then invalid_arg "Checkpoint.sweep: block must be positive";
  let results = Array.make n None in
  let discarded = ref None and resumed = ref 0 in
  (match path with
  | Some p when not resume ->
      (* Cold start requested: a stale snapshot must not resurrect later. *)
      if Sys.file_exists p then (try Sys.remove p with Sys_error _ -> ())
  | Some p when Sys.file_exists p -> (
      match load ~path:p ~signature with
      | Error why -> discarded := Some why
      | Ok records -> (
          (* All-or-nothing: one undecodable or out-of-range record means
             the encoder changed under the snapshot — recompute everything
             rather than mix generations. *)
          match
            List.iter
              (fun r ->
                if r.index >= n then raise (Malformed "record index out of range");
                match decode r.payload with
                | Some v -> results.(r.index) <- Some v
                | None -> raise (Malformed "undecodable trial payload"))
              records
          with
          | () -> resumed := List.length records
          | exception Malformed msg ->
              Array.fill results 0 n None;
              discarded := Some ("checkpoint: " ^ msg)))
  | _ -> ());
  let saves = ref 0 in
  let save_snapshot () =
    match path with
    | None -> ()
    | Some p ->
        let records = ref [] in
        for i = n - 1 downto 0 do
          match results.(i) with
          | Some v -> records := { index = i; payload = encode v } :: !records
          | None -> ()
        done;
        save ~path:p ~signature !records;
        incr saves
  in
  let pending = ref [] in
  for i = n - 1 downto 0 do
    if results.(i) = None then pending := i :: !pending
  done;
  let computed = ref 0 in
  let crashes = ref 0 and hangs = ref 0 and restarts = ref 0 in
  let failures = ref [] in
  let run_indices indices =
    let values, (rep : Pool.report) = runner ~indices in
    Array.iteri (fun pos i -> results.(i) <- Some values.(pos)) indices;
    computed := !computed + Array.length indices;
    crashes := !crashes + rep.Pool.crashes;
    hangs := !hangs + rep.Pool.hangs;
    restarts := !restarts + rep.Pool.restarts;
    failures := !failures @ rep.Pool.failures
  in
  (match path with
  | None ->
      (* No checkpointing: one supervised batch, maximum parallelism. *)
      run_indices (Array.of_list !pending)
  | Some p ->
      let rec blocks = function
        | [] -> ()
        | remaining ->
            (match abort_after with
            | Some a when !computed >= a ->
                raise (Interrupted { path = p; completed_now = !computed })
            | _ -> ());
            let rec take k acc = function
              | xs when k = 0 -> (List.rev acc, xs)
              | [] -> (List.rev acc, [])
              | x :: xs -> take (k - 1) (x :: acc) xs
            in
            let batch, rest = take block [] remaining in
            run_indices (Array.of_list batch);
            save_snapshot ();
            blocks rest
      in
      blocks !pending;
      (match abort_after with
      | Some a when !computed >= a && !computed > 0 ->
          raise (Interrupted { path = p; completed_now = !computed })
      | _ -> ()));
  let values =
    Array.map (function Some v -> v | None -> assert false) results
  in
  ( values,
    {
      resumed = !resumed;
      computed = !computed;
      saves = !saves;
      discarded = !discarded;
      crashes = !crashes;
      hangs = !hangs;
      restarts = !restarts;
      failures = !failures;
    } )

let sweep ?path ?signature ?resume ?block ?abort_after ?domains ?restart_budget
    ?deadline ~encode ~decode ~rng ~n task =
  sweep_core ?path ?signature ?resume ?block ?abort_after ~encode ~decode ~n
    ~runner:(fun ~indices ->
      Pool.run_supervised_on ?domains ?restart_budget ?deadline ~rng ~indices
        task)
    ()

let sweep_batched ?path ?signature ?resume ?block ?abort_after ?domains ?chunk
    ?restart_budget ?deadline ~arena ~encode ~decode ~rng ~n task =
  sweep_core ?path ?signature ?resume ?block ?abort_after ~encode ~decode ~n
    ~runner:(fun ~indices ->
      Pool.run_supervised_batched_on ?domains ?chunk ?restart_budget ?deadline
        ~arena ~rng ~indices task)
    ()

(* Micro-token accounting: the level is stored premultiplied by [rate_den],
   so a refill of (now - last) ticks adds exactly (now - last) * rate_num
   micro-tokens with no rounding, and a take subtracts rate_den. *)

type t = {
  cap_micro : int;
  rate_num : int;
  rate_den : int;
  mutable level : int; (* micro-tokens, in [0, cap_micro] *)
  mutable last : int;  (* tick the level is current at *)
}

let create ?initial ~capacity ~rate_num ~rate_den () =
  if capacity < 1 then invalid_arg "Token_bucket.create: capacity must be >= 1";
  if rate_num < 0 then invalid_arg "Token_bucket.create: rate_num must be >= 0";
  if rate_den < 1 then invalid_arg "Token_bucket.create: rate_den must be >= 1";
  let initial = match initial with None -> capacity | Some i -> i in
  if initial < 0 || initial > capacity then
    invalid_arg "Token_bucket.create: initial must be in [0, capacity]";
  {
    cap_micro = capacity * rate_den;
    rate_num;
    rate_den;
    level = initial * rate_den;
    last = 0;
  }

let advance t ~now =
  if now < t.last then
    invalid_arg "Token_bucket: the virtual clock must not move backwards";
  if now > t.last then begin
    t.level <- min t.cap_micro (t.level + ((now - t.last) * t.rate_num));
    t.last <- now
  end

let try_take t ~now =
  advance t ~now;
  if t.level >= t.rate_den then begin
    t.level <- t.level - t.rate_den;
    true
  end
  else false

let tokens t ~now =
  advance t ~now;
  t.level / t.rate_den

let capacity t = t.cap_micro / t.rate_den

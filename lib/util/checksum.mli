(** CRC-32 message checksums for the fault-injection layer.

    Lossy channels can corrupt messages in flight; receivers detect this by
    framing every canonical encoding with a CRC-32 (IEEE 802.3, reflected
    polynomial 0xEDB88320). A CRC with a multi-term generator polynomial
    detects {e every} single-bit error and all burst errors up to 32 bits —
    the guarantee the qcheck property test exercises bit by bit. *)

val crc32 : string -> int
(** CRC-32 of the whole string, in [0, 2^32). [crc32 "123456789" =
    0xCBF43926] (the standard check value). *)

val bits : int
(** Canonical size of a checksum field: 32. *)

(** {2 Checksummed frames}

    The canonical framing used everywhere a byte string must survive an
    unreliable medium — sketch deliveries over lossy channels
    ({!Dcs_graph.Serialize} re-exports these under the same names) and
    {!Checkpoint} snapshots on disk. The header carries the payload
    length and CRC-32, so the receiver rejects truncation (length
    mismatch) and every single-bit flip anywhere in the frame (header
    included: a damaged header fails to parse or to match). *)

val frame : string -> string
(** [frame payload] is ["DCS1 <len> <crc32-hex>\n" ^ payload]. *)

val unframe : string -> (string, string) result
(** Payload if the frame is intact, otherwise a diagnostic ([Error]).
    Length and checksum failures carry the body's byte offset within the
    frame plus the expected-vs-actual evidence (promised vs. found length;
    header CRC vs. CRC actually computed over the body), so a caller
    quarantining a damaged record can report {e where} and {e how} it
    failed, not just that it did. *)

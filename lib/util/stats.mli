(** Small statistics toolkit used by tests and the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 when n < 2. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], linear interpolation on the sorted
    copy. On a singleton array every quantile is the lone element. Raises
    [Invalid_argument] on an empty array and on [q] outside [0,1]
    (including NaN) — a silent clamp would hide caller bugs. *)

val median : float array -> float

val min_max : float array -> float * float

val success_rate : bool array -> float
(** Fraction of [true] entries. *)

val binomial_confidence_99 : trials:int -> float
(** Half-width of a 99% normal-approximation confidence interval for a
    success-rate estimate over [trials] Bernoulli trials (worst case p=1/2):
    2.576 * sqrt(0.25/trials). *)

val log2 : float -> float

val linear_regression : (float * float) array -> float * float
(** [linear_regression pts] returns [(slope, intercept)] of the least-squares
    line. Used for log-log slope estimation in scaling experiments. Requires
    at least two points with distinct x. *)

val loglog_slope : (float * float) array -> float
(** Slope of log y against log x; all coordinates must be positive. *)

val histogram : bins:int -> float array -> (float * int) array
(** Equal-width histogram: [(left_edge, count)] per bin. Raises
    [Invalid_argument] when [bins <= 0]; the empty input yields the empty
    histogram [[||]] (there is no data range to split into bins). *)

val bucket_bars : ?width:int -> int array -> string array
(** Proportional ['#'] bars for bucket counts, longest bar = [width]
    (default 24) marks, nonzero counts always at least one mark. Shared by
    {!histogram} consumers and the {!Dcs_obs.Report} histogram tables so
    every bucket rendering in the repo looks the same. Raises
    [Invalid_argument] on a nonpositive [width] or a negative count. *)

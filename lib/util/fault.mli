(** Deterministic, seed-driven fault injection.

    The paper's protocols run over an idealized medium: sketches arrive
    intact and every local query is answered, correctly. This module is the
    adversarial medium — message drops, bit corruptions, query timeouts and
    lying answers, each fired independently per event at a configurable
    rate — implemented so that faulty runs stay exactly as reproducible as
    clean ones:

    - every injector owns a private {!Prng} stream ({!create} forks it off
      the caller's generator), so fault decisions never perturb the
      algorithm's own randomness;
    - a rate of 0 short-circuits before touching the stream, so a policy
      of all-zero rates consumes nothing and a wrapped run is bit-identical
      to the unwrapped one;
    - {!split} derives indexed child injectors the same way {!Prng.split}
      derives child streams, so per-trial or per-shard fault sequences are
      pure functions of (master seed, index) — independent of scheduling
      and of [DCS_DOMAINS].

    Counters record every fault actually injected, for the robustness
    overhead tables of experiment E16. *)

type policy = {
  drop_rate : float;     (** probability a message delivery is dropped *)
  corrupt_rate : float;  (** probability a delivered message is bit-flipped *)
  timeout_rate : float;  (** probability a query times out (no answer) *)
  lie_rate : float;      (** probability a query answer is wrong *)
}

val no_faults : policy
(** All rates zero. *)

val policy :
  ?drop:float -> ?corrupt:float -> ?timeout:float -> ?lie:float -> unit -> policy
(** Missing rates default to 0; each rate must lie in [0, 1]. *)

type t

val create : policy -> Prng.t -> t
(** [create p rng] forks a private fault stream off [rng] (advancing
    [rng]), with fresh counters. *)

val disabled : t
(** The canonical inactive injector: [no_faults] rates, never draws, never
    counts. Safe to share (even across domains) precisely because it is
    inert. *)

val split : t -> int -> t
(** [split t i] is the [i]-th child injector: same policy, stream
    [Prng.split] from [t]'s (without advancing it), fresh counters. *)

val policy_of : t -> policy

val active : t -> bool
(** Whether any rate is positive. *)

(** {2 Event draws}

    Each returns whether the fault fires, drawing from the private stream
    only when the corresponding rate is positive, and bumping the matching
    counter when it fires. *)

val drops_message : t -> bool
val corrupts_message : t -> bool
val times_out : t -> bool
val lies : t -> bool

val draw_int : t -> int -> int
(** Uniform in [0, n) from the fault stream — used to pick corrupted bit
    positions and fabricated answers; requires [n > 0]. *)

(** {2 Accounting} *)

type counts = {
  drops : int;
  corruptions : int;
  timeouts : int;
  lies : int;
}

val counts : t -> counts

val total_injected : t -> int
(** Sum of all four counters. *)

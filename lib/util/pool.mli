(** Domain-based parallel trial engine (stdlib [Domain] only, OCaml >= 5).

    Every Monte Carlo experiment in this repo is a loop of independent
    trials; this module fans such loops out over domains while keeping the
    results {e bit-identical} for every domain count:

    - each task [i] computes a pure function of its index (callers derive
      per-task randomness with [Prng.split parent i]);
    - results land in slot [i] of the output array regardless of which
      domain ran the task;
    - reductions (e.g. {!parallel_init_sum}) are performed sequentially in
      index order after the join, so float non-associativity cannot leak
      scheduling into the outcome.

    The domain count defaults to the [DCS_DOMAINS] environment variable
    when set ([Domain.recommended_domain_count ()] otherwise); a count of 1
    runs the plain sequential loop in the calling domain with no spawns. *)

val env_var : string
(** ["DCS_DOMAINS"]. *)

val domain_count : unit -> int
(** The effective default domain count: [DCS_DOMAINS] if set and
    non-empty (must parse as a positive integer, else
    [Invalid_argument]), otherwise — including when set to the empty
    string — [Domain.recommended_domain_count ()]. *)

val parallel_init : ?domains:int -> n:int -> (int -> 'a) -> 'a array
(** [parallel_init ~n f] is [Array.init n f] computed on [domains] domains
    (default {!domain_count}), with indices 0..n-1 fanned out in [domains]
    contiguous chunks over [Domain.spawn]. [f] must be safe to run
    concurrently for distinct indices (no shared mutable state). If any
    task raises, the first exception (lowest chunk) is re-raised in the
    caller after all domains have been joined — no result is silently
    dropped and no domain is left running. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] with the same fan-out,
    ordering, and exception contract as {!parallel_init}. *)

val parallel_init_sum : ?domains:int -> n:int -> (int -> float) -> float
(** [parallel_init_sum ~n f] is the sum of [f i] for [i] in 0..n-1: the
    [f i] are evaluated in parallel, then accumulated left-to-right in
    index order, so the result is bit-identical for every domain count. *)

(** Domain-based parallel trial engine (stdlib [Domain] only, OCaml >= 5).

    Every Monte Carlo experiment in this repo is a loop of independent
    trials; this module fans such loops out over domains while keeping the
    results {e bit-identical} for every domain count:

    - each task [i] computes a pure function of its index (callers derive
      per-task randomness with [Prng.split parent i]);
    - results land in slot [i] of the output array regardless of which
      domain ran the task;
    - reductions (e.g. {!parallel_init_sum}) are performed sequentially in
      index order after the join, so float non-associativity cannot leak
      scheduling into the outcome.

    The domain count defaults to the [DCS_DOMAINS] environment variable
    when set ([Domain.recommended_domain_count ()] otherwise); a count of 1
    runs the plain sequential loop in the calling domain with no spawns.

    {!run_supervised} adds a supervision layer for long sweeps: per-task
    crash isolation (a worker exception fails one task, not the batch),
    cooperative per-task deadlines, and deterministic re-execution of
    failed tasks on fresh domains from their own [Prng.split] streams,
    bounded by a restart budget before a task is declared {!Poisoned}.

    The engine meters itself into {!Dcs_obs_core.Metrics} ([pool.tasks],
    [pool.crashes], [pool.restarts], ... — counts of logical events only,
    never anything domain-count dependent) and brackets runs and per-domain
    chunks in {!Dcs_obs_core.Trace} spans. Supervised attempts run inside
    {!Dcs_obs_core.Metrics.in_attempt}, so a crashed-and-retried task's own
    increments commit exactly once. *)

val env_var : string
(** ["DCS_DOMAINS"]. *)

val domain_count : unit -> int
(** The effective default domain count: [DCS_DOMAINS] if set and
    non-empty (must parse as a positive integer, else
    [Invalid_argument]), otherwise — including when set to the empty
    string — [Domain.recommended_domain_count ()]. *)

exception Task_failed of { index : int; exn : exn; backtrace : string }
(** How a worker exception reaches the caller of the {e unsupervised}
    entry points: tagged with the index of the task that died and the
    backtrace captured at the failure site (non-empty when
    [Printexc.record_backtrace] is on), instead of a bare re-raise that
    loses which trial was running. Nested pools preserve the innermost
    tag, so the index always names the task closest to the failure. *)

val parallel_init : ?domains:int -> n:int -> (int -> 'a) -> 'a array
(** [parallel_init ~n f] is [Array.init n f] computed on [domains] domains
    (default {!domain_count}), with indices 0..n-1 fanned out in [domains]
    contiguous chunks over [Domain.spawn]. [f] must be safe to run
    concurrently for distinct indices (no shared mutable state). If any
    task raises, the first failure (lowest failing index) is re-raised in
    the caller as {!Task_failed} after all domains have been joined — no
    result is silently dropped and no domain is left running. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] with the same fan-out,
    ordering, and exception contract as {!parallel_init}. *)

val parallel_init_sum : ?domains:int -> n:int -> (int -> float) -> float
(** [parallel_init_sum ~n f] is the sum of [f i] for [i] in 0..n-1: the
    [f i] are evaluated in parallel, then accumulated left-to-right in
    index order, so the result is bit-identical for every domain count. *)

(** {2 Chunked batches with per-domain arenas}

    The per-task overheads that make a naive fan-out {e lose} throughput
    as domains grow (BENCH_005's E10: 0.43x at 2 domains, 0.14x at 4 on a
    single core) are spawn/sync cost and, above all, per-task allocation —
    every minor collection is a stop-the-world rendezvous of {e all}
    domains, so allocation-heavy tasks serialize on the GC however many
    domains run. {!run_batched} attacks both: tasks are grouped into
    fixed-size chunks that worker domains pull from a shared cursor (one
    spawn per {e domain}, one atomic fetch per {e chunk}, nothing per
    task), and each domain builds one [arena] of scratch buffers and
    reuses it for every task it runs, so a task written against the arena
    allocates (almost) nothing. *)

val run_batched :
  ?domains:int ->
  ?chunk:int ->
  arena:(unit -> 'arena) ->
  n:int ->
  ('arena -> int -> 'a) ->
  'a array
(** [run_batched ~arena ~n f] is [Array.init n (fun i -> f a i)] where
    each worker domain gets its own [a = arena ()], built once and reused
    across all tasks that domain runs. [f] must treat the arena as
    uninitialized scratch (no task may depend on what a previous task left
    in it) and must be a pure function of [i] given that — then the result
    is bit-identical for every [domains] and [chunk] setting, exactly like
    {!parallel_init}.

    [chunk] is the number of consecutive tasks dispatched per queue pull
    (default [ceil n/domains]); chunk {e contents} depend only on [chunk],
    never on the domain count. If tasks raise, every non-failing task
    still runs, and after all domains are joined the failure with the
    lowest task index is re-raised as {!Task_failed}. Meters
    [pool.batched_calls] and [pool.tasks]. *)

(** {2 Supervised execution}

    [run_supervised ~rng ~n task] runs [n] tasks like {!parallel_init},
    but each task attempt is individually isolated: an exception (or a
    cooperative deadline overrun) fails {e that task's attempt} only, and
    the task is re-executed in a later round on a freshly spawned domain,
    up to [restart_budget] re-executions, after which it is {!Poisoned}.

    Determinism: task [i]'s {!ctx.rng} is [Prng.split (Prng.split rng i) 0]
    — the {e same} stream on every attempt, so a successful re-execution
    returns exactly the value the first execution would have, and results
    are bit-identical at every domain count, restart pattern, and resume
    point. {!ctx.attempt_rng} is [Prng.split (Prng.split rng i) (attempt+1)]
    — a {e fresh} stream per attempt, for anything that should vary across
    restarts (the chaos harness draws its injected faults from it, so a
    crashy attempt can be followed by a clean one). [rng] is never
    advanced; pass a frozen master (e.g. from [Prng.fork]).

    Deadlines are {e cooperative}: a task observes its deadline through
    {!guard}/{!cancelled} and is treated as hung when it raises
    {!Cancelled}. OCaml domains cannot be preempted, so a task that never
    polls and never returns cannot be recovered; a completed attempt's
    value is always accepted, late or not (anything else would let wall
    clock into the results). *)

type ctx = {
  index : int;            (** task index, as seen by the caller *)
  attempt : int;          (** 0 on first execution, +1 per restart *)
  rng : Prng.t;           (** task stream — identical on every attempt *)
  attempt_rng : Prng.t;   (** per-attempt stream — fresh on every attempt *)
  deadline : float option;(** seconds allotted to this attempt *)
  started : float;        (** [Unix.gettimeofday] at attempt start *)
}

exception Cancelled of { index : int; attempt : int }
(** Raised by {!guard} when the attempt has outlived its deadline; the
    supervisor records the attempt as hung and schedules a re-execution. *)

val cancelled : ctx -> bool
(** Whether this attempt is past its deadline ([false] when none is set). *)

val guard : ctx -> unit
(** Cancellation point: raises {!Cancelled} iff [cancelled ctx]. Long
    tasks should call it inside their hot loops. *)

type failure = {
  failed_index : int;
  failed_attempt : int;
  stream_fingerprint : int64;
      (** {!Prng.fingerprint} of the attempt stream at attempt start — the
          exact randomness the failing attempt was running on, for replay *)
  hung : bool;            (** deadline overrun, as opposed to a crash *)
  error : string;         (** [Printexc.to_string] of the crash, or
                              ["deadline exceeded"] *)
  backtrace : string;     (** captured at the failure site; [""] unless
                              [Printexc.record_backtrace] is on *)
}

val describe_failure : failure -> string
(** One-line human rendering: task, attempt, stream fingerprint, cause. *)

type report = {
  tasks : int;            (** tasks submitted *)
  crashes : int;          (** attempts that raised *)
  hangs : int;            (** attempts cancelled past their deadline *)
  restarts : int;         (** re-executions scheduled (= crashes + hangs
                              unless a task was poisoned) *)
  rounds : int;           (** execution rounds (1 = no failures) *)
  failures : failure list;(** chronological: by round, then task order *)
}

exception Poisoned of { index : int; attempts : int; last : failure }
(** A task failed on its initial execution {e and} on every one of its
    [restart_budget] re-executions. Raised in the caller after the final
    round (all other tasks have completed by then). *)

val run_supervised :
  ?domains:int ->
  ?restart_budget:int ->
  ?deadline:float ->
  rng:Prng.t ->
  n:int ->
  (ctx -> 'a) ->
  'a array * report
(** Runs tasks 0..n-1 under supervision. [restart_budget] (default 2) is
    the number of re-executions allowed per task beyond the first; a task
    still failing past it raises {!Poisoned}. [deadline] (seconds, default
    none) bounds each attempt cooperatively. With a crash-free, hang-free
    task function the result array equals the one a plain
    {!parallel_init} of [fun i -> task (ctx of i)] would produce, in one
    round, with an empty failure list. *)

val run_supervised_on :
  ?domains:int ->
  ?restart_budget:int ->
  ?deadline:float ->
  rng:Prng.t ->
  indices:int array ->
  (ctx -> 'a) ->
  'a array * report
(** Like {!run_supervised} but over an explicit (distinct, nonnegative)
    index set: slot [p] of the result corresponds to [indices.(p)], and
    task streams are split by the {e real} index — so running a subset
    (e.g. the trials a checkpoint is missing) yields bit-for-bit the
    values a full run would have produced at those indices. This is the
    primitive {!Checkpoint.sweep} resumes on. *)

val run_supervised_batched :
  ?domains:int ->
  ?chunk:int ->
  ?restart_budget:int ->
  ?deadline:float ->
  arena:(unit -> 'arena) ->
  rng:Prng.t ->
  n:int ->
  ('arena -> ctx -> 'a) ->
  'a array * report
(** {!run_supervised} with {!run_batched}'s chunked scheduling and
    per-domain arenas: each round's still-pending attempts are pulled in
    [chunk]-sized batches by worker domains that build one [arena] each
    (fresh domains — and fresh arenas — per round, preserving crash
    isolation). The per-task streams are {e exactly} {!run_supervised}'s
    ([ctx.rng = split (split rng i) 0], [ctx.attempt_rng =
    split (split rng i) (attempt+1)]), so for a task function that ignores
    its arena, results, report and metric increments are bit-identical to
    the unbatched supervisor at every [domains] x [chunk] combination. *)

val run_supervised_batched_on :
  ?domains:int ->
  ?chunk:int ->
  ?restart_budget:int ->
  ?deadline:float ->
  arena:(unit -> 'arena) ->
  rng:Prng.t ->
  indices:int array ->
  ('arena -> ctx -> 'a) ->
  'a array * report
(** {!run_supervised_batched} over an explicit index set, with
    {!run_supervised_on}'s slot/stream contract: task streams are split by
    the real index, so a resumed subset reproduces a full run's values bit
    for bit. This is the primitive {!Checkpoint.sweep_batched} resumes
    on. *)

type 'a outcome = {
  value : 'a option;
  attempts : int;
  backoff_units : int;
}

let with_budget ~budget f =
  if budget < 1 then invalid_arg "Retry.with_budget: budget must be >= 1";
  let rec go attempt backoff =
    match f ~attempt with
    | Some _ as v -> { value = v; attempts = attempt + 1; backoff_units = backoff }
    | None ->
        if attempt + 1 >= budget then
          { value = None; attempts = attempt + 1; backoff_units = backoff }
        else go (attempt + 1) (backoff + (1 lsl attempt))
  in
  go 0 0

let majority ~k f =
  if k < 1 then invalid_arg "Retry.majority: k must be >= 1";
  (* First-seen order; k is small (typically 1 or 3), so an assoc list is
     plenty and keeps ties deterministic. *)
  let tally = ref [] in
  for i = 0 to k - 1 do
    match f i with
    | None -> ()
    | Some v -> (
        match List.find_opt (fun (v', _) -> v' = v) !tally with
        | Some _ ->
            tally :=
              List.map (fun (v', c) -> if v' = v then (v', c + 1) else (v', c)) !tally
        | None -> tally := !tally @ [ (v, 1) ])
  done;
  List.fold_left
    (fun best (v, c) ->
      match best with Some (_, bc) when bc >= c -> best | _ -> Some (v, c))
    None !tally

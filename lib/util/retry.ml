type 'a outcome = {
  value : 'a option;
  attempts : int;
  backoff_units : int;
}

let with_budget ~budget f =
  if budget < 1 then invalid_arg "Retry.with_budget: budget must be >= 1";
  let rec go attempt backoff =
    match f ~attempt with
    | Some _ as v -> { value = v; attempts = attempt + 1; backoff_units = backoff }
    | None ->
        if attempt + 1 >= budget then
          { value = None; attempts = attempt + 1; backoff_units = backoff }
        else go (attempt + 1) (backoff + (1 lsl attempt))
  in
  go 0 0

(* min cap (base * 2^a) without overflow: once the doubling clears the cap
   the clamp is exact, so stop multiplying there. *)
let clamped_exponential ~base ~cap attempt =
  let rec go v a = if v >= cap || a = 0 then min v cap else go (2 * v) (a - 1) in
  go base attempt

let jittered_wait ~rng ~base ~cap ~attempt =
  if base < 1 then invalid_arg "Retry.jittered_wait: base must be >= 1";
  if cap < 1 then invalid_arg "Retry.jittered_wait: cap must be >= 1";
  if attempt < 0 then invalid_arg "Retry.jittered_wait: attempt must be >= 0";
  let hi = clamped_exponential ~base ~cap attempt in
  1 + Prng.int (Prng.split rng attempt) hi

let with_jittered_backoff ~budget ?(base = 1) ?(cap = 64) ~rng f =
  if budget < 1 then invalid_arg "Retry.with_jittered_backoff: budget must be >= 1";
  if base < 1 then invalid_arg "Retry.with_jittered_backoff: base must be >= 1";
  if cap < 1 then invalid_arg "Retry.with_jittered_backoff: cap must be >= 1";
  let rec go attempt backoff =
    match f ~attempt with
    | Some _ as v -> { value = v; attempts = attempt + 1; backoff_units = backoff }
    | None ->
        if attempt + 1 >= budget then
          { value = None; attempts = attempt + 1; backoff_units = backoff }
        else go (attempt + 1) (backoff + jittered_wait ~rng ~base ~cap ~attempt)
  in
  go 0 0

let majority ~k f =
  if k < 1 then invalid_arg "Retry.majority: k must be >= 1";
  (* First-seen order; k is small (typically 1 or 3), so an assoc list is
     plenty and keeps ties deterministic. *)
  let tally = ref [] in
  for i = 0 to k - 1 do
    match f i with
    | None -> ()
    | Some v -> (
        match List.find_opt (fun (v', _) -> v' = v) !tally with
        | Some _ ->
            tally :=
              List.map (fun (v', c) -> if v' = v then (v', c + 1) else (v', c)) !tally
        | None -> tally := !tally @ [ (v, 1) ])
  done;
  List.fold_left
    (fun best (v, c) ->
      match best with Some (_, bc) when bc >= c -> best | _ -> Some (v, c))
    None !tally

(** Aligned plain-text tables for the benchmark harness.

    The benches print paper-style result tables to stdout; this module keeps
    the formatting in one place so every experiment renders consistently. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption row and fixed column headers. *)

val add_row : t -> string list -> unit
(** Rows must match the column count. *)

val add_rule : t -> unit
(** Horizontal separator between row groups. *)

val render : t -> string

val print : t -> unit
(** [render] followed by a trailing newline on stdout. When capture is on
    ({!set_capture}), the table is also recorded for a later JSON dump. *)

(** {2 Capture / machine-readable export}

    The bench harness's [--json] flag records every printed table and dumps
    the run as structured JSON, so benchmark trajectories can be diffed by
    tools instead of eyeballs. *)

val set_capture : bool -> unit
(** Start ([true]) or stop-and-clear ([false]) recording printed tables. *)

val captured : unit -> t list
(** Tables recorded so far, in print order. *)

val captured_count : unit -> int

val to_json : t -> string
(** [{"title":..., "columns":[...], "rows":[[...], ...]}]; separator rules
    are presentation only and are omitted. *)

(** Cell formatting helpers. *)

val fint : int -> string
val ffloat : ?digits:int -> float -> string
val fpct : float -> string
(** Percentage with one decimal, e.g. [fpct 0.953 = "95.3%"]. *)

val fsci : float -> string
(** Scientific-ish compact float, e.g. "1.23e+06". *)

val fbool : bool -> string
(** "yes" / "no". *)

type policy = {
  drop_rate : float;
  corrupt_rate : float;
  timeout_rate : float;
  lie_rate : float;
}

let no_faults =
  { drop_rate = 0.0; corrupt_rate = 0.0; timeout_rate = 0.0; lie_rate = 0.0 }

let check_rate name r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.policy: %s rate must be in [0, 1]" name)

let policy ?(drop = 0.0) ?(corrupt = 0.0) ?(timeout = 0.0) ?(lie = 0.0) () =
  check_rate "drop" drop;
  check_rate "corrupt" corrupt;
  check_rate "timeout" timeout;
  check_rate "lie" lie;
  { drop_rate = drop; corrupt_rate = corrupt; timeout_rate = timeout; lie_rate = lie }

type t = {
  policy : policy;
  stream : Prng.t;
  mutable drops : int;
  mutable corruptions : int;
  mutable timeouts : int;
  mutable lies : int;
}

let make policy stream =
  { policy; stream; drops = 0; corruptions = 0; timeouts = 0; lies = 0 }

let create policy rng = make policy (Prng.fork rng)

(* Inert by construction: every rate is 0, so no event ever reaches the
   stream or a counter — sharing the single value is safe. *)
let disabled = make no_faults (Prng.create 0)

let split t i = make t.policy (Prng.split t.stream i)

let policy_of t = t.policy

let active t =
  t.policy.drop_rate > 0.0 || t.policy.corrupt_rate > 0.0
  || t.policy.timeout_rate > 0.0 || t.policy.lie_rate > 0.0

(* A zero rate must not consume from the stream: that is what makes a
   fault-wrapped run with [no_faults] bit-identical to the unwrapped run. *)
let fire t rate bump =
  rate > 0.0
  && begin
       let hit = rate >= 1.0 || Prng.bernoulli t.stream rate in
       if hit then bump ();
       hit
     end

let drops_message t =
  fire t t.policy.drop_rate (fun () -> t.drops <- t.drops + 1)

let corrupts_message t =
  fire t t.policy.corrupt_rate (fun () -> t.corruptions <- t.corruptions + 1)

let times_out t =
  fire t t.policy.timeout_rate (fun () -> t.timeouts <- t.timeouts + 1)

let lies t = fire t t.policy.lie_rate (fun () -> t.lies <- t.lies + 1)

let draw_int t n = Prng.int t.stream n

type counts = {
  drops : int;
  corruptions : int;
  timeouts : int;
  lies : int;
}

let counts (t : t) =
  { drops = t.drops; corruptions = t.corruptions; timeouts = t.timeouts; lies = t.lies }

let total_injected (t : t) = t.drops + t.corruptions + t.timeouts + t.lies

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Stats.quantile: q must lie in [0, 1]";
  let s = Array.copy xs in
  Array.sort compare s;
  if n = 1 then s.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (s.(lo) *. (1.0 -. frac)) +. (s.(hi) *. frac)
  end

let median xs = quantile xs 0.5

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let success_rate bs =
  let n = Array.length bs in
  if n = 0 then 0.0
  else begin
    let c = Array.fold_left (fun a b -> if b then a + 1 else a) 0 bs in
    float_of_int c /. float_of_int n
  end

let binomial_confidence_99 ~trials =
  if trials <= 0 then 1.0 else 2.576 *. sqrt (0.25 /. float_of_int trials)

let log2 x = log x /. log 2.0

let linear_regression pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_regression: need >= 2 points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    pts;
  let nf = float_of_int n in
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_regression: degenerate x";
  let slope = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. nf in
  (slope, intercept)

let loglog_slope pts =
  let logged =
    Array.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then invalid_arg "Stats.loglog_slope: nonpositive";
        (log x, log y))
      pts
  in
  fst (linear_regression logged)

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then [||]
  else begin
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = min (bins - 1) (int_of_float ((x -. lo) /. width)) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
  end

let bucket_bars ?(width = 24) counts =
  if width < 1 then invalid_arg "Stats.bucket_bars: width must be positive";
  let most = Array.fold_left max 0 counts in
  Array.map
    (fun c ->
      if c < 0 then invalid_arg "Stats.bucket_bars: negative count";
      if most = 0 then ""
      else begin
        (* Nonzero counts always get at least one mark. *)
        let len = c * width / most in
        String.make (if c > 0 then max 1 len else 0) '#'
      end)
    counts

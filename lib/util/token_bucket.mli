(** Deterministic token-bucket rate limiter over a virtual clock.

    The serving layer ({!Dcs_serve.Serve}) admits requests against a budget
    that refills continuously: a bucket holds up to [capacity] tokens,
    gains [rate_num / rate_den] tokens per virtual tick, and a request is
    admitted iff a whole token can be taken at its arrival tick. Everything
    is integer arithmetic on micro-tokens (token * [rate_den]), so the
    admission decisions are a pure function of the arrival tick sequence —
    no floats to drift, no wall clock — and replay bit for bit.

    Time only moves forward: queries and takes must be issued at
    nondecreasing ticks ([Invalid_argument] otherwise), which is exactly the
    order an event loop produces. *)

type t

val create :
  ?initial:int -> capacity:int -> rate_num:int -> rate_den:int -> unit -> t
(** A bucket holding [initial] tokens (default: full) that refills at
    [rate_num / rate_den] tokens per tick, clamped to [capacity]. Requires
    [capacity >= 1], [rate_num >= 0], [rate_den >= 1],
    [0 <= initial <= capacity]. The clock starts at tick 0. *)

val try_take : t -> now:int -> bool
(** Advance the bucket to tick [now] (refilling), then take one token if a
    whole one is available. [true] iff the take succeeded. Requires [now]
    to be >= the last tick seen. *)

val tokens : t -> now:int -> int
(** Whole tokens available at tick [now] (advances the clock like
    {!try_take}, takes nothing). *)

val capacity : t -> int

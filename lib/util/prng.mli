(** Deterministic, splittable pseudo-random number generator.

    All randomized components of the library take an explicit [Prng.t] so
    that every experiment is reproducible from a single seed. The generator
    is SplitMix64 (Steele, Lea, Flood; JDK 8 reference constants): fast,
    64-bit state, passes BigCrush, and supports O(1) splitting so that
    parallel sub-experiments draw from statistically independent streams. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val fork : t -> t
(** [fork g] advances [g] and returns a generator whose future outputs are
    independent of [g]'s (distinct gamma-derived stream). Use when a single
    sequential stream hands off a sub-stream and keeps going. *)

val split : t -> int -> t
(** [split g i] derives the [i]-th child stream of [g] without advancing
    [g]: a pure function of [g]'s current state and the task index
    [i >= 0]. Children for distinct indices are pairwise independent
    (distinct SplitMix64 streams), and the same parent state and index
    always yield the same child — this is what makes parallel trial fan-out
    ({!Pool}) bit-identical for every [DCS_DOMAINS] setting: freeze a parent
    with {!fork}, then give task [i] the stream [split parent i]. *)

val fingerprint : t -> int64
(** A pure hash of the generator's current position that does {e not}
    advance the stream: equal fingerprints mean equal future outputs.
    Used by the supervision layer ({!Pool.run_supervised}) to name the
    exact stream a crashed or hung task was running on, so a failure can
    be replayed in isolation. *)

val mix64 : int64 -> int64
(** The SplitMix64 finalizer: a fast bijective 64-bit mixer. Exposed so
    content fingerprints elsewhere in the library (e.g.
    {!Dcs_graph.Csr.fingerprint}, the serving layer's sketch-cache key) can
    chain the exact mixer {!fingerprint} is built from, instead of
    inventing a second hash. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int g n] is uniform in [0, n); requires [n > 0]. Unbiased (rejection). *)

val float : t -> float -> float
(** [float g x] is uniform in [0, x). Uses 53 random mantissa bits. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val binomial : t -> n:int -> p:float -> int
(** [binomial g ~n ~p] counts successes among [n] independent
    [bernoulli g p] coins — exact for every (n, p), by explicit flips, so
    the draw count depends only on [n]. [p <= 0] gives 0 and [p >= 1]
    gives [n] without consuming the stream. Requires [n >= 0]. Used for
    binomial weight resampling in the connectivity-sampled sparsifiers
    (an integer edge weight w kept as Binomial(w, p)/p). *)

val sign : t -> int
(** Uniform in {-1, +1}. *)

val gaussian : t -> float
(** Standard normal via Box–Muller (no caching, two draws per call). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> k:int -> n:int -> int array
(** [sample_without_replacement g ~k ~n] returns [k] distinct values drawn
    uniformly from [0, n), in random order. Requires [0 <= k <= n]. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform permutation of 0..n-1. *)

(* Bitwise (table-free) reflected CRC-32; message sizes here are small
   enough that the 8-iteration inner loop is not worth a lookup table. *)

let crc32 s =
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun c ->
      crc := !crc lxor Char.code c;
      for _ = 1 to 8 do
        if !crc land 1 = 1 then crc := (!crc lsr 1) lxor 0xEDB88320
        else crc := !crc lsr 1
      done)
    s;
  !crc lxor 0xFFFFFFFF

let bits = 32

(* --- checksummed frames --- *)

let frame payload =
  Printf.sprintf "DCS1 %d %08x\n%s" (String.length payload) (crc32 payload)
    payload

let unframe s =
  match String.index_opt s '\n' with
  | None -> Error "frame: missing header terminator"
  | Some nl -> (
      let header = String.sub s 0 nl in
      let body = String.sub s (nl + 1) (String.length s - nl - 1) in
      match String.split_on_char ' ' header with
      | [ "DCS1"; len; crc ] -> (
          match int_of_string_opt len with
          | Some len ->
              if String.length body <> len then
                Error
                  (Printf.sprintf
                     "frame: length mismatch (body at byte offset %d: header \
                      promises %d bytes, found %d)"
                     (nl + 1) len (String.length body))
                (* Compare against the canonical rendering, not the parsed
                   value: hex parsing is case-insensitive, so a bit flip
                   turning 'a' into 'A' would otherwise slip through. *)
              else if Printf.sprintf "%08x" (crc32 body) <> crc then
                Error
                  (Printf.sprintf
                     "frame: checksum mismatch (body at byte offset %d, %d \
                      bytes: expected crc %s, actual %08x)"
                     (nl + 1) len crc (crc32 body))
              else Ok body
          | None -> Error "frame: unparsable header fields")
      | _ -> Error "frame: bad magic")

(* Bitwise (table-free) reflected CRC-32; message sizes here are small
   enough that the 8-iteration inner loop is not worth a lookup table. *)

let crc32 s =
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun c ->
      crc := !crc lxor Char.code c;
      for _ = 1 to 8 do
        if !crc land 1 = 1 then crc := (!crc lsr 1) lxor 0xEDB88320
        else crc := !crc lsr 1
      done)
    s;
  !crc lxor 0xFFFFFFFF

let bits = 32

(* SplitMix64. State is a single 64-bit counter advanced by a per-stream odd
   "gamma"; output is a bijective finalizer of the state. Splitting derives a
   new gamma from the parent stream, which keeps child streams independent. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Gamma values must be odd; mix_gamma also guards against gammas with too
   few bit transitions (as in the reference implementation). *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L in
  let transitions = Int64.logxor z (Int64.shift_right_logical z 1) in
  let popcount x =
    let c = ref 0 in
    for i = 0 to 63 do
      if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr c
    done;
    !c
  in
  if popcount transitions < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let copy t = { state = t.state; gamma = t.gamma }

let next_state t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix64 (next_state t)

let fork t =
  let s = bits64 t in
  let g = mix_gamma (bits64 t) in
  { state = s; gamma = g }

(* Indexed split: a pure function of the parent's current (state, gamma) and
   the task index, so a batch of tasks can derive their streams from one
   frozen parent in any order — the foundation of the Pool determinism
   guarantee (results independent of domain count and scheduling). Distinct
   indices give distinct pre-mix states (golden_gamma is odd, so
   (i+1)·golden_gamma is injective mod 2^64), and mix64 is a bijection. *)
let split t i =
  if i < 0 then invalid_arg "Prng.split: index must be nonnegative";
  let z = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  let s = mix64 (Int64.logxor z t.gamma) in
  let g = mix_gamma (mix64 z) in
  { state = s; gamma = g }

(* Diagnostic identity of the stream's current position: a pure hash of
   (state, gamma) that does not advance the stream. Two generators report
   the same fingerprint iff they would produce the same future outputs, so
   a supervisor can name the exact stream a crashed task was running on. *)
let fingerprint t = mix64 (Int64.logxor (mix64 t.state) t.gamma)

let bool t = Int64.logand (bits64 t) 1L = 1L

let sign t = if bool t then 1 else -1

(* Uniform int in [0, n) by rejection on the top 62 bits (OCaml ints are 63
   bits; we keep everything nonnegative). *)
let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.shift_right_logical Int64.minus_one 2 in
  let rec go () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod n in
    (* reject to avoid modulo bias *)
    if r - v > (Int64.to_int (Int64.logand mask Int64.max_int)) - n + 1 then go () else v
  in
  go ()

let float t x =
  let bits53 = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  x *. (float_of_int bits53 /. 9007199254740992.0 (* 2^53 *))

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

(* Explicit coin flips rather than inversion or rejection: exact for every
   (n, p), O(n) draws, and the draw count depends only on n — so a stream
   that resamples an integer edge weight consumes a deterministic number of
   variates regardless of p, which keeps samplers bit-stable when only the
   probability schedule changes. The weights this serves are small
   multiplicities, so O(n) is fine. *)
let binomial t ~n ~p =
  if n < 0 then invalid_arg "Prng.binomial: n must be nonnegative";
  if p <= 0.0 then 0
  else if p >= 1.0 then n
  else begin
    let c = ref 0 in
    for _ = 1 to n do
      if float t 1.0 < p then incr c
    done;
    !c
  end

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let sample_without_replacement t ~k ~n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Partial Fisher–Yates on a lazily materialized identity map: O(k) space. *)
  let swapped = Hashtbl.create (2 * k) in
  let get i = Option.value (Hashtbl.find_opt swapped i) ~default:i in
  Array.init k (fun i ->
      let j = i + int t (n - i) in
      let vi = get i and vj = get j in
      Hashtbl.replace swapped j vi;
      Hashtbl.replace swapped i vj;
      vj)

type row = Cells of string list | Rule

(* Display width = number of UTF-8 code points (close enough for the Greek
   letters and math symbols the benches use; no combining marks here). *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

type t = { title : string; columns : string list; mutable rows : row list }

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.columns in
  let widths = Array.of_list (List.map display_width t.columns) in
  List.iter
    (function
      | Rule -> ()
      | Cells cs ->
          List.iteri (fun i c -> widths.(i) <- max widths.(i) (display_width c)) cs)
    rows;
  let buf = Buffer.create 1024 in
  let pad i s =
    let w = widths.(i) in
    let missing = w - display_width s in
    (* Right-align numeric-looking cells, left-align text. *)
    let numeric =
      String.length s > 0
      && (match s.[0] with '0' .. '9' | '-' | '+' | '.' -> true | _ -> false)
    in
    if missing <= 0 then s
    else if numeric then String.make missing ' ' ^ s
    else s ^ String.make missing ' '
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (3 * (ncols - 1))
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make total_width '=');
  Buffer.add_char buf '\n';
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf " | ";
      Buffer.add_string buf (pad i c))
    t.columns;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Rule ->
          Buffer.add_string buf (String.make total_width '-');
          Buffer.add_char buf '\n'
      | Cells cs ->
          List.iteri
            (fun i c ->
              if i > 0 then Buffer.add_string buf " | ";
              Buffer.add_string buf (pad i c))
            cs;
          Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* --- capture (for machine-readable dumps of a bench run) --- *)

let capturing = ref false
let captured_rev : t list ref = ref []

let set_capture b =
  capturing := b;
  if not b then captured_rev := []

let captured () = List.rev !captured_rev
let captured_count () = List.length !captured_rev

let print t =
  if !capturing then captured_rev := t :: !captured_rev;
  print_string (render t);
  print_newline ()

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let cells cs = "[" ^ String.concat "," (List.map str cs) ^ "]" in
  let rows =
    List.filter_map (function Rule -> None | Cells cs -> Some (cells cs))
      (List.rev t.rows)
  in
  Printf.sprintf "{\"title\":%s,\"columns\":%s,\"rows\":[%s]}" (str t.title)
    (cells t.columns)
    (String.concat "," rows)

let fint = string_of_int

let ffloat ?(digits = 3) x = Printf.sprintf "%.*f" digits x

let fpct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let fsci x = Printf.sprintf "%.2e" x

let fbool b = if b then "yes" else "no"

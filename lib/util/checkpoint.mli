(** Crash-safe checkpoint/resume for long trial sweeps.

    A checkpoint is a snapshot of every completed trial of a sweep,
    written {e atomically} (temp file + rename, so a reader sees the old
    snapshot or the new one, never a torn write) inside a CRC-32
    {!Checksum.frame} (so any single-bit corruption or truncation is
    rejected at load instead of resurrecting garbage results). Snapshots
    carry a caller-chosen {e signature} string — bake the experiment
    name, seed, and parameters into it, and a checkpoint from a different
    configuration is rejected rather than silently resumed.

    {!sweep} combines this with {!Pool.run_supervised}: trials already in
    the snapshot are restored, the rest run supervised (crash isolation,
    deadlines, restart budget), and a fresh snapshot is written after
    every block. Because trial [i]'s stream is split from the master by
    its {e index} (see {!Pool.run_supervised_on}), an interrupted sweep
    resumed from its checkpoint produces output bit-identical to an
    uninterrupted run — at any [DCS_DOMAINS], with any interruption
    point, even after the checkpoint file itself is corrupted (the
    snapshot is discarded and the trials recomputed). *)

type record = { index : int; payload : string }

val save : path:string -> signature:string -> record list -> unit
(** Atomically replaces the snapshot at [path] ([path ^ ".tmp"] is the
    scratch file). Record indices must be nonnegative and strictly
    increasing ([Invalid_argument] otherwise). *)

val load :
  path:string -> signature:string -> (record list, string) result
(** The snapshot's records, or a diagnostic: missing/unreadable file,
    frame damage (any bit flip or truncation), malformed body, or
    signature mismatch. Never raises on bad file contents. Frame-damage
    diagnostics are forensic, not just a bare invalid-snapshot signal:
    a checksum failure reports the body's byte offset and the
    expected-vs-actual CRC-32, truncation reports promised-vs-found
    lengths (see {!Checksum.unframe}), so quarantine reports name where
    and how the snapshot went bad. *)

(** {2 Resumable supervised sweeps} *)

exception Interrupted of { path : string; completed_now : int }
(** Raised by {!sweep} when [abort_after] fires: the snapshot on disk
    holds every trial completed so far ([completed_now] of them newly
    computed this run). Used by the chaos harness and the determinism
    gate to simulate a killed process at a deterministic point. *)

type sweep_report = {
  resumed : int;           (** trials restored from the snapshot *)
  computed : int;          (** trials (re)computed this run *)
  saves : int;             (** snapshots written *)
  discarded : string option;
      (** why a present snapshot was rejected (corruption, signature
          mismatch, undecodable payload), if it was *)
  crashes : int;           (** summed over blocks, from {!Pool.report} *)
  hangs : int;
  restarts : int;
  failures : Pool.failure list;
}

val sweep :
  ?path:string ->
  ?signature:string ->
  ?resume:bool ->
  ?block:int ->
  ?abort_after:int ->
  ?domains:int ->
  ?restart_budget:int ->
  ?deadline:float ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  rng:Prng.t ->
  n:int ->
  (Pool.ctx -> 'a) ->
  'a array * sweep_report
(** [sweep ~encode ~decode ~rng ~n task] is
    [Pool.run_supervised ~rng ~n task] plus persistence:

    - with [path] set and [resume] (default [true]), a valid snapshot at
      [path] seeds the result array ([decode] returning [None] on any
      record discards the whole snapshot — generations never mix);
      with [~resume:false] an existing snapshot is deleted first;
    - remaining trials run supervised in blocks of [block] (default 16),
      a fresh snapshot written after each block;
    - [abort_after] simulates a kill: once that many trials have been
      newly computed (and checkpointed), {!Interrupted} is raised;
    - without [path], everything runs in one supervised batch and nothing
      touches the filesystem.

    [signature] (default [""]) must match the snapshot's. The result is
    bit-identical however the run was split across interruptions. *)

val sweep_batched :
  ?path:string ->
  ?signature:string ->
  ?resume:bool ->
  ?block:int ->
  ?abort_after:int ->
  ?domains:int ->
  ?chunk:int ->
  ?restart_budget:int ->
  ?deadline:float ->
  arena:(unit -> 'arena) ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  rng:Prng.t ->
  n:int ->
  ('arena -> Pool.ctx -> 'a) ->
  'a array * sweep_report
(** {!sweep} running its trials on {!Pool.run_supervised_batched_on}
    (chunked scheduling, one scratch arena per worker domain) instead of
    the per-task supervisor. Task streams are split by real index either
    way, so for a task that treats its arena as scratch the results — and
    the snapshots on disk — are byte-identical to {!sweep}'s at every
    [domains] x [chunk] x interruption combination. *)

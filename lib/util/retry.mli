(** Bounded retry with (simulated) exponential backoff, and majority
    voting — the two recovery mechanisms the fault-tolerant protocol layers
    share.

    There is no wall clock in these simulations, so backoff is virtual:
    a failed attempt [a] (0-based) charges [2^a] backoff units before the
    next try, and the total is reported so experiments can compare recovery
    latency across fault rates. The attempt count {e never} exceeds the
    budget — a property test enforces this. *)

type 'a outcome = {
  value : 'a option;       (** first successful answer, if any *)
  attempts : int;          (** calls made: in [1, budget] *)
  backoff_units : int;     (** Σ 2^a over failed attempts that were retried *)
}

val with_budget : budget:int -> (attempt:int -> 'a option) -> 'a outcome
(** [with_budget ~budget f] calls [f ~attempt:0], [f ~attempt:1], … until
    [f] returns [Some _] or [budget] calls have been made. Requires
    [budget >= 1]. *)

val majority : k:int -> (int -> 'a option) -> ('a * int) option
(** [majority ~k f] collects [f 0 .. f (k-1)] ([None]s abstain) and returns
    the most frequent answer with its vote count (first-seen wins ties,
    polymorphic equality); [None] when every voter abstained. Requires
    [k >= 1]. *)

(** Bounded retry with (simulated) exponential backoff, and majority
    voting — the two recovery mechanisms the fault-tolerant protocol layers
    share.

    There is no wall clock in these simulations, so backoff is virtual:
    a failed attempt [a] (0-based) charges [2^a] backoff units before the
    next try, and the total is reported so experiments can compare recovery
    latency across fault rates. The attempt count {e never} exceeds the
    budget — a property test enforces this. *)

type 'a outcome = {
  value : 'a option;       (** first successful answer, if any *)
  attempts : int;          (** calls made: in [1, budget] *)
  backoff_units : int;     (** Σ 2^a over failed attempts that were retried *)
}

val with_budget : budget:int -> (attempt:int -> 'a option) -> 'a outcome
(** [with_budget ~budget f] calls [f ~attempt:0], [f ~attempt:1], … until
    [f] returns [Some _] or [budget] calls have been made. Requires
    [budget >= 1]. *)

val majority : k:int -> (int -> 'a option) -> ('a * int) option
(** [majority ~k f] collects [f 0 .. f (k-1)] ([None]s abstain) and returns
    the most frequent answer with its vote count (first-seen wins ties,
    polymorphic equality); [None] when every voter abstained. Requires
    [k >= 1]. *)

(** {2 Capped jittered exponential backoff}

    {!with_budget}'s schedule is the bare textbook one: attempt [a] waits
    exactly [2^a] units, unbounded. A serving layer wants two refinements
    (AWS "full jitter" style): a {e cap} so a long outage cannot park a
    request behind an exponentially huge wait, and {e jitter} so a burst of
    requests that failed together does not retry in lockstep and fail
    together again. Jitter here is deterministic: the wait before retrying
    failed attempt [a] is drawn from [Prng.split rng a] — a pure function of
    the caller's stream position and the attempt number — so runs replay
    bit for bit and never depend on scheduling. *)

val jittered_wait : rng:Prng.t -> base:int -> cap:int -> attempt:int -> int
(** The wait charged after failed attempt [a] (0-based): uniform in
    [1, min cap (base * 2^a)], drawn from [Prng.split rng a] without
    advancing [rng]. [base >= 1], [cap >= 1]; the exponential is clamped at
    [cap] before the draw, so the wait never exceeds [cap]. *)

val with_jittered_backoff :
  budget:int ->
  ?base:int ->
  ?cap:int ->
  rng:Prng.t ->
  (attempt:int -> 'a option) ->
  'a outcome
(** Like {!with_budget} — same attempt contract, same [attempts <= budget]
    guarantee — but each failed-and-retried attempt [a] charges
    {!jittered_wait} units instead of [2^a]: [backoff_units] is their sum
    and therefore never exceeds [(budget - 1) * cap]. [base] defaults to 1,
    [cap] to 64. [rng] is not advanced (pass a frozen per-request stream);
    equal stream positions give equal schedules. *)

module Ugraph = Dcs_graph.Ugraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut

(* Classic minimum-cut-phase formulation: repeatedly run a maximum-adjacency
   ordering, record the cut-of-the-phase (last vertex added versus the rest),
   then merge the last two vertices. Weights live in a dense matrix; [group]
   tracks which original vertices each super-vertex absorbed so the witness
   side can be reported. *)

let mincut g =
  let n = Ugraph.n g in
  if n < 2 then invalid_arg "Stoer_wagner.mincut: need at least 2 vertices";
  let w = Array.make_matrix n n 0.0 in
  (* Dense init off the frozen arc arrays; each undirected edge appears as
     two opposite arcs, filling both triangles in one pass. *)
  let csr = Csr.of_ugraph g in
  for u = 0 to n - 1 do
    Csr.iter_out csr u (fun v x -> w.(u).(v) <- w.(u).(v) +. x)
  done;
  let group = Array.init n (fun v -> [ v ]) in
  let active = Array.make n true in
  let best_value = ref infinity in
  let best_side = ref [] in
  let remaining = ref n in
  while !remaining > 1 do
    (* Maximum adjacency search over active vertices. *)
    let in_a = Array.make n false in
    let conn = Array.make n 0.0 in
    let prev = ref (-1) in
    let last = ref (-1) in
    for _step = 1 to !remaining do
      (* Select the most tightly connected unadded active vertex. *)
      let sel = ref (-1) in
      for v = 0 to n - 1 do
        if active.(v) && not in_a.(v) then
          if !sel < 0 || conn.(v) > conn.(!sel) then sel := v
      done;
      let v = !sel in
      in_a.(v) <- true;
      prev := !last;
      last := v;
      for u = 0 to n - 1 do
        if active.(u) && not in_a.(u) then conn.(u) <- conn.(u) +. w.(v).(u)
      done
    done;
    let s = !last and t = !prev in
    (* Cut of the phase: group(last) versus everything else. *)
    let phase_value = ref 0.0 in
    for u = 0 to n - 1 do
      if active.(u) && u <> s then phase_value := !phase_value +. w.(s).(u)
    done;
    if !phase_value < !best_value then begin
      best_value := !phase_value;
      best_side := group.(s)
    end;
    (* Merge s into t. *)
    for u = 0 to n - 1 do
      if active.(u) && u <> s && u <> t then begin
        w.(t).(u) <- w.(t).(u) +. w.(s).(u);
        w.(u).(t) <- w.(u).(t) +. w.(u).(s)
      end
    done;
    group.(t) <- group.(s) @ group.(t);
    active.(s) <- false;
    decr remaining
  done;
  (!best_value, Cut.of_indices ~n !best_side)

let mincut_value g = fst (mincut g)

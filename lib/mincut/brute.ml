module Cut = Dcs_graph.Cut
module Csr = Dcs_graph.Csr

(* All 2^(n-1) masks (vertex 0 pinned to S, covering every cut up to
   complement) stream through [Csr.cut_many] in fixed-size blocks: the
   side matrices and output slots are allocated once and refilled per
   block, and the frozen view carries Bigarray weight mirrors so the
   kernel's inner loop reads unboxed flat buffers. [cut_many] performs
   exactly [cut_weight]'s float additions in the same order, so values —
   and hence the strict-< argmin over masks in order — are byte-identical
   to the per-cut loop this replaces. *)
let block = 256

let side_of_mask ~n mask s =
  s.(0) <- true;
  for v = 1 to n - 1 do
    s.(v) <- (mask lsr (v - 1)) land 1 = 1
  done

let enumerate ~n ~directed csr =
  if n < 2 || n > 24 then invalid_arg "Brute.mincut: need 2 <= n <= 24";
  let csr = Csr.with_bigarray_weights csr in
  let total = 1 lsl (n - 1) in
  let full = total - 1 in
  (* the one improper mask: S = V *)
  let b = min block total in
  let sides = Array.init b (fun _ -> Array.make n false) in
  let comp = if directed then Array.init b (fun _ -> Array.make n false) else [||] in
  let fwd = Array.make b 0.0 in
  let bwd = Array.make b 0.0 in
  let best = ref infinity in
  let best_mask = ref (-1) in
  let start = ref 0 in
  while !start < total do
    let len = min b (total - !start) in
    for j = 0 to len - 1 do
      let mask = !start + j in
      side_of_mask ~n mask sides.(j);
      if directed then
        for v = 0 to n - 1 do
          comp.(j).(v) <- not sides.(j).(v)
        done
    done;
    ignore (Csr.cut_many ~into:fwd csr (Array.sub sides 0 len));
    if directed then ignore (Csr.cut_many ~into:bwd csr (Array.sub comp 0 len));
    for j = 0 to len - 1 do
      let mask = !start + j in
      if mask <> full then begin
        let v = if directed then Float.min fwd.(j) bwd.(j) else fwd.(j) in
        if v < !best then begin
          best := v;
          best_mask := mask
        end
      end
    done;
    start := !start + len
  done;
  if !best_mask < 0 then invalid_arg "Brute.mincut: no proper cut (n < 2?)";
  let mask = !best_mask in
  (!best, Cut.of_mem ~n (fun v -> v = 0 || (mask lsr (v - 1)) land 1 = 1))

(* Both entry points freeze the graph once and evaluate all 2^(n-1) cuts
   off the flat arrays. The directed value of a cut is w(S, V\S); taking
   the min with the complement's value matches the undirected convention
   used by the oracle's callers, exactly as the unbatched version did. *)
let mincut_ugraph g =
  enumerate ~n:(Dcs_graph.Ugraph.n g) ~directed:false (Csr.of_ugraph g)

let mincut_digraph g =
  enumerate ~n:(Dcs_graph.Digraph.n g) ~directed:true (Csr.of_digraph g)

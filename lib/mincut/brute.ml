module Cut = Dcs_graph.Cut
module Csr = Dcs_graph.Csr

let enumerate ~n value =
  if n < 2 || n > 24 then invalid_arg "Brute.mincut: need 2 <= n <= 24";
  let best = ref infinity in
  let best_cut = ref None in
  (* Vertex 0 pinned to S: covers every cut up to complement; the directed
     caller evaluates both orientations explicitly. *)
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let mem v = v = 0 || (mask lsr (v - 1)) land 1 = 1 in
    let c = Cut.of_mem ~n mem in
    if Cut.is_proper c then begin
      let v = value c in
      if v < !best then begin
        best := v;
        best_cut := Some c
      end
    end
  done;
  match !best_cut with
  | Some c -> (!best, c)
  | None -> invalid_arg "Brute.mincut: no proper cut (n < 2?)"

(* Both entry points freeze the graph once and evaluate all 2^(n-1) cuts
   off the flat arrays. *)
let mincut_ugraph g =
  let csr = Csr.of_ugraph g in
  enumerate ~n:(Dcs_graph.Ugraph.n g) (fun c -> Csr.cut_value csr c)

let mincut_digraph g =
  let csr = Csr.of_digraph g in
  enumerate ~n:(Dcs_graph.Digraph.n g) (fun c ->
      let fwd = Csr.cut_value csr c in
      let bwd = Csr.cut_value csr (Cut.complement c) in
      Float.min fwd bwd)

(** Karger's randomized contraction for global minimum cut, plus the
    near-minimum-cut enumeration the distributed pipeline needs.

    The paper's distributed-min-cut motivation (Section 1) relies on the
    fact that at most n^O(C) cuts are within a factor C of the minimum; the
    coordinator finds them by repeated contraction and then refines with
    for-each queries. [candidate_cuts] implements that enumeration. *)

val run_once : Dcs_util.Prng.t -> Dcs_graph.Ugraph.t -> float * Dcs_graph.Cut.t
(** One contraction run: contract weighted-random edges until two
    super-vertices remain; returns that cut. Always an upper bound on the
    minimum cut. Requires n >= 2 and a connected graph. *)

val mincut :
  ?domains:int ->
  ?chunk:int ->
  Dcs_util.Prng.t ->
  trials:int ->
  Dcs_graph.Ugraph.t ->
  float * Dcs_graph.Cut.t
(** Best cut over [trials] independent runs. Runs execute on the chunked
    pool ({!Dcs_util.Pool.run_batched}) over [domains] domains (default
    [Pool.domain_count ()], i.e. [DCS_DOMAINS]) pulling [chunk]-sized
    batches, with one reusable scratch arena (edge clocks, sort
    permutation, union-find state) per domain; per-run [Prng.split]
    streams and an in-order reduction make the result bit-identical for
    every domain and chunk count. *)

val candidate_cuts :
  ?domains:int ->
  ?chunk:int ->
  Dcs_util.Prng.t ->
  trials:int ->
  factor:float ->
  Dcs_graph.Ugraph.t ->
  (float * Dcs_graph.Cut.t) list
(** Distinct cuts discovered across [trials] runs whose value is at most
    [factor] times the best value seen, sorted by value (cuts and their
    complements are identified). Same parallel execution and determinism
    guarantee as {!mincut}. *)

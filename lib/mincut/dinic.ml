module Digraph = Dcs_graph.Digraph
module Ugraph = Dcs_graph.Ugraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut

(* Residual network in CSR form. Arcs come in pairs — arc [a] and its
   reverse [a lxor 1] — and each vertex's arc ids occupy one contiguous
   slice [off.(u) .. off.(u+1)-1] of [arcs], so the BFS/DFS scans walk flat
   arrays instead of chasing a linked list. Networks are built from a
   frozen [Csr] view of the source graph, which also makes the arc order
   (and hence the augmenting-path order) canonical rather than an artifact
   of hashtable history. *)

type t = {
  n : int;
  off : int array;           (* vertex -> first position in [arcs] *)
  arcs : int array;          (* position -> arc id *)
  head : int array;          (* arc -> destination *)
  cap : float array;         (* residual capacities, mutated by maxflow *)
  cap0 : float array;        (* original capacities, for reset *)
  level : int array;
  iter : int array;          (* vertex -> current position during a phase *)
}

let eps = 1e-12

let build n arc_list =
  let m = List.length arc_list in
  let head = Array.make (2 * m) 0 in
  let cap = Array.make (2 * m) 0.0 in
  let off = Array.make (n + 1) 0 in
  List.iter
    (fun (u, v, _) ->
      off.(u + 1) <- off.(u + 1) + 1;
      off.(v + 1) <- off.(v + 1) + 1)
    arc_list;
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done;
  let arcs = Array.make (2 * m) 0 in
  let cur = Array.sub off 0 (max 1 n) in
  let put u a =
    let i = cur.(u) in
    cur.(u) <- i + 1;
    arcs.(i) <- a
  in
  List.iteri
    (fun k (u, v, c) ->
      let a = 2 * k and b = (2 * k) + 1 in
      head.(a) <- v;
      cap.(a) <- c;
      put u a;
      head.(b) <- u;
      cap.(b) <- 0.0;
      put v b)
    arc_list;
  {
    n;
    off;
    arcs;
    head;
    cap;
    cap0 = Array.copy cap;
    level = Array.make n (-1);
    iter = Array.make n 0;
  }

(* Arcs of a frozen view in ascending (tail, head) order. *)
let arcs_of_csr ?cap csr =
  let acc = ref [] in
  for u = Csr.n csr - 1 downto 0 do
    let row = ref [] in
    Csr.iter_out csr u (fun v w ->
        row := (u, v, Option.value cap ~default:w) :: !row);
    acc := List.rev_append !row !acc
  done;
  !acc

let of_csr csr = build (Csr.n csr) (arcs_of_csr csr)

let of_digraph g =
  let csr = Csr.of_digraph g in
  build (Digraph.n g) (arcs_of_csr csr)

let of_ugraph g =
  (* The symmetric CSR view already stores each undirected edge as a pair
     of opposite arcs of the full capacity, which models undirected flow
     exactly. *)
  let csr = Csr.of_ugraph g in
  build (Ugraph.n g) (arcs_of_csr csr)

let reset t = Array.blit t.cap0 0 t.cap 0 (Array.length t.cap)

let bfs t s =
  Array.fill t.level 0 t.n (-1);
  let q = Queue.create () in
  t.level.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for p = t.off.(u) to t.off.(u + 1) - 1 do
      let a = t.arcs.(p) in
      let v = t.head.(a) in
      if t.cap.(a) > eps && t.level.(v) < 0 then begin
        t.level.(v) <- t.level.(u) + 1;
        Queue.add v q
      end
    done
  done

let rec dfs t u sink pushed =
  if u = sink then pushed
  else begin
    let result = ref 0.0 in
    while !result = 0.0 && t.iter.(u) < t.off.(u + 1) do
      let p = t.iter.(u) in
      let a = t.arcs.(p) in
      let v = t.head.(a) in
      if t.cap.(a) > eps && t.level.(v) = t.level.(u) + 1 then begin
        let d = dfs t v sink (Float.min pushed t.cap.(a)) in
        if d > eps then begin
          t.cap.(a) <- t.cap.(a) -. d;
          t.cap.(a lxor 1) <- t.cap.(a lxor 1) +. d;
          result := d
        end
        else t.iter.(u) <- p + 1
      end
      else t.iter.(u) <- p + 1
    done;
    !result
  end

(* [limit] caps the flow: augmentation stops as soon as [limit] units have
   been routed (each DFS pushes at most the remaining headroom, so the
   returned value never overshoots). The result is the exact max-flow
   whenever it is below [limit], and exactly [limit] otherwise — which is
   all a capped connectivity query or a running-minimum scan needs, at a
   fraction of the phases a saturating flow would pay on well-connected
   pairs. *)
let maxflow ?(limit = infinity) t ~s ~t:sink =
  if s = sink then invalid_arg "Dinic.maxflow: s = t";
  reset t;
  let flow = ref 0.0 in
  let continue = ref (limit > eps) in
  while !continue do
    bfs t s;
    if t.level.(sink) < 0 then continue := false
    else begin
      Array.blit t.off 0 t.iter 0 t.n;
      let rec augment () =
        let headroom = limit -. !flow in
        if headroom > eps then begin
          let f = dfs t s sink headroom in
          if f > eps then begin
            flow := !flow +. f;
            augment ()
          end
        end
      in
      augment ();
      if limit -. !flow <= eps then continue := false
    end
  done;
  Float.min !flow limit

let mincut_side t ~s ~t:sink =
  let f = maxflow t ~s ~t:sink in
  (* Vertices reachable from s in the residual graph. *)
  bfs t s;
  let side = Cut.of_mem ~n:t.n (fun v -> t.level.(v) >= 0) in
  (f, side)

(* One residual network serves all n-1 source-fixed max-flow runs
   ([maxflow] starts from [reset], an O(m) blit — never a rebuild), and
   every run is capped at the running minimum: a flow that reaches the
   current best cannot lower it, so the run stops there. The running
   minimum starts at the minimum weighted degree (the cheapest singleton
   cut, a trivial upper bound), which already truncates the very first
   flows on dense graphs; a graph that turns out disconnected drives the
   minimum to 0 and skips the remaining runs outright. *)
let edge_connectivity g =
  let n = Ugraph.n g in
  if n < 2 then invalid_arg "Dinic.edge_connectivity: need >= 2 vertices";
  let net = of_ugraph g in
  let wdeg = Array.make n 0.0 in
  Ugraph.iter_edges g (fun u v w ->
      wdeg.(u) <- wdeg.(u) +. w;
      wdeg.(v) <- wdeg.(v) +. w);
  let best = ref wdeg.(0) in
  for v = 1 to n - 1 do
    best := Float.min !best wdeg.(v)
  done;
  let v = ref 1 in
  while !v < n && !best > eps do
    best := Float.min !best (maxflow ~limit:!best net ~s:0 ~t:!v);
    incr v
  done;
  if !best <= eps then 0.0 else !best

let edge_disjoint_paths g ~s ~t:sink =
  let csr = Csr.of_ugraph g in
  let net = build (Ugraph.n g) (arcs_of_csr ~cap:1.0 csr) in
  int_of_float (Float.round (maxflow net ~s ~t:sink))

module Ugraph = Dcs_graph.Ugraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut
module Prng = Dcs_util.Prng

(* Working representation: a dense weighted quotient graph. [groups.(i)] is
   the set of original vertices absorbed by super-vertex i; the active
   super-vertices are 0..r-1 and contraction swaps the merged vertex with
   the last active one, so every level is O(r²). *)
type quotient = {
  mutable r : int;
  w : float array array;
  groups : int list array;
  total : float array;  (* incident weight per super-vertex *)
}

(* Dense init off the frozen arc arrays: each undirected edge is stored as
   two opposite arcs, so one pass over the out-rows fills both matrix
   triangles and the incident weights. *)
let quotient_of_csr csr =
  let n = Csr.n csr in
  let w = Array.make_matrix n n 0.0 in
  let total = Array.make n 0.0 in
  for u = 0 to n - 1 do
    Csr.iter_out csr u (fun v x ->
        w.(u).(v) <- w.(u).(v) +. x;
        total.(u) <- total.(u) +. x)
  done;
  { r = n; w; groups = Array.init n (fun v -> [ v ]); total }

let copy q =
  {
    r = q.r;
    w = Array.map Array.copy q.w;
    groups = Array.copy q.groups;
    total = Array.copy q.total;
  }

(* Merge super-vertex j into i, then move the last active vertex into j's
   slot. *)
let merge q i j =
  assert (i <> j && i < q.r && j < q.r);
  q.total.(i) <- q.total.(i) +. q.total.(j) -. (2.0 *. q.w.(i).(j));
  for x = 0 to q.r - 1 do
    if x <> i && x <> j then begin
      q.w.(i).(x) <- q.w.(i).(x) +. q.w.(j).(x);
      q.w.(x).(i) <- q.w.(i).(x)
    end
  done;
  q.w.(i).(j) <- 0.0;
  q.w.(j).(i) <- 0.0;
  q.groups.(i) <- q.groups.(j) @ q.groups.(i);
  let last = q.r - 1 in
  if j <> last then begin
    for x = 0 to q.r - 1 do
      q.w.(j).(x) <- q.w.(last).(x);
      q.w.(x).(j) <- q.w.(j).(x)
    done;
    q.w.(j).(j) <- 0.0;
    (* fix i's row against the moved vertex *)
    q.groups.(j) <- q.groups.(last);
    q.total.(j) <- q.total.(last)
  end;
  q.r <- q.r - 1

(* Pick a random edge with probability proportional to weight. *)
let random_edge rng q =
  let sum = ref 0.0 in
  for i = 0 to q.r - 1 do
    for j = i + 1 to q.r - 1 do
      sum := !sum +. q.w.(i).(j)
    done
  done;
  if !sum <= 0.0 then None
  else begin
    let target = Prng.float rng !sum in
    let acc = ref 0.0 in
    let found = ref None in
    (try
       for i = 0 to q.r - 1 do
         for j = i + 1 to q.r - 1 do
           acc := !acc +. q.w.(i).(j);
           if !acc >= target && q.w.(i).(j) > 0.0 then begin
             found := Some (i, j);
             raise Exit
           end
         done
       done
     with Exit -> ());
    !found
  end

let contract_to rng q target =
  while q.r > target do
    match random_edge rng q with
    | Some (i, j) -> merge q i j
    | None -> invalid_arg "Karger_stein: graph disconnected"
  done

(* Exact minimum cut of a small quotient by enumeration. *)
let brute_quotient q =
  let best = ref infinity in
  let best_mask = ref 0 in
  for mask = 0 to (1 lsl (q.r - 1)) - 1 do
    (* vertex r-1 pinned outside S; skip empty S *)
    if mask <> 0 then begin
      let value = ref 0.0 in
      for i = 0 to q.r - 1 do
        for j = i + 1 to q.r - 1 do
          let side x = x < q.r - 1 && (mask lsr x) land 1 = 1 in
          if side i <> side j then value := !value +. q.w.(i).(j)
        done
      done;
      if !value < !best then begin
        best := !value;
        best_mask := mask
      end
    end
  done;
  let side = Array.make q.r false in
  for x = 0 to q.r - 2 do
    if (!best_mask lsr x) land 1 = 1 then side.(x) <- true
  done;
  (!best, side)

let rec recurse rng q =
  if q.r <= 6 then brute_quotient q
  else begin
    let target = 1 + int_of_float (Float.ceil (float_of_int q.r /. sqrt 2.0)) in
    let attempt () =
      let q' = copy q in
      contract_to rng q' target;
      let v, side' = recurse rng q' in
      (* Lift the side back: original ids on the true side. *)
      let members = Hashtbl.create 16 in
      Array.iteri
        (fun i s -> if s then List.iter (fun o -> Hashtbl.replace members o ()) q'.groups.(i))
        side';
      (v, members)
    in
    let v1, m1 = attempt () in
    let v2, m2 = attempt () in
    let v, members = if v1 <= v2 then (v1, m1) else (v2, m2) in
    (* Re-express as a side over q's super-vertices. *)
    let side = Array.make q.r false in
    for i = 0 to q.r - 1 do
      match q.groups.(i) with
      | o :: _ -> side.(i) <- Hashtbl.mem members o
      | [] -> ()
    done;
    (v, side)
  end

(* One run off a prebuilt base quotient. [recurse] never mutates its
   argument (each attempt works on a [copy]), so the base doubles as a
   per-domain arena: built once per worker domain and shared by every run
   that domain executes, saving the O(n²) dense rebuild per run. *)
let run_once_quotient rng ~n csr base =
  if n < 2 then invalid_arg "Karger_stein.run_once: need >= 2 vertices";
  let _, side = recurse rng base in
  let cut =
    Cut.of_mem ~n (fun v ->
        (* find v's super-vertex *)
        let rec find i = if i >= base.r then false
          else if List.mem v base.groups.(i) then side.(i)
          else find (i + 1)
        in
        find 0)
  in
  let cut = if Cut.is_proper cut then cut else Cut.singleton ~n 0 in
  (Csr.cut_value csr cut, cut)

let run_once rng g =
  let csr = Csr.of_ugraph g in
  run_once_quotient rng ~n:(Ugraph.n g) csr (quotient_of_csr csr)

let mincut ?domains ?chunk ?runs rng g =
  let n = Ugraph.n g in
  let runs =
    match runs with
    | Some r -> max 1 r
    | None ->
        let l = int_of_float (Float.ceil (Dcs_util.Stats.log2 (float_of_int (max 2 n)))) in
        (l * l) + 1
  in
  (* Independent recursive runs fan out over domains through the chunked
     pool, each domain recursing off one shared base quotient; run [t]'s
     stream is a pure function of (master, t) and the min is taken in run
     order, so the answer is bit-identical for every domain count. *)
  let master = Prng.fork rng in
  let csr = Csr.of_ugraph g in
  let results =
    Dcs_util.Pool.run_batched ?domains ?chunk
      ~arena:(fun () -> quotient_of_csr csr)
      ~n:runs
      (fun base t -> run_once_quotient (Prng.split master t) ~n csr base)
  in
  let best = ref results.(0) in
  for t = 1 to runs - 1 do
    let v, _ = results.(t) in
    if v < fst !best then best := results.(t)
  done;
  !best

(** Dinic's maximum-flow algorithm (float capacities).

    Used for s–t minimum cuts, for certifying edge connectivity, and for the
    2γ-edge-connectivity case checks of the paper's Figures 3–6 (Lemma 5.5's
    proof enumerates pairs u, v and exhibits 2γ edge-disjoint paths; max-flow
    certifies their existence). *)

type t

val of_digraph : Dcs_graph.Digraph.t -> t
(** Capacities are the edge weights. *)

val of_ugraph : Dcs_graph.Ugraph.t -> t
(** Each undirected edge becomes a pair of opposite arcs of that capacity,
    which models undirected flow exactly. *)

val of_csr : Dcs_graph.Csr.t -> t
(** Residual network straight from a frozen view — the same network
    [of_digraph]/[of_ugraph] build, without re-freezing. A symmetric CSR
    (from {!Dcs_graph.Csr.of_ugraph}) models undirected flow; arc order is
    the view's canonical row order. Build once per graph and reuse it: a
    {!maxflow} call resets the previous flow with one O(m) blit, so a
    batch of connectivity queries pays one construction total. *)

val maxflow : ?limit:float -> t -> s:int -> t:int -> float
(** Resets any previous flow before running. [limit] (default [infinity])
    stops augmenting once that much flow has been routed: the result is
    the exact max-flow when it is below [limit] and exactly [limit]
    otherwise — the cheap form of a capped connectivity query
    (min(λ(s,t), limit)) and of a running-minimum scan. *)

val mincut_side : t -> s:int -> t:int -> float * Dcs_graph.Cut.t
(** Max-flow value together with the source side of a minimum s–t cut
    (vertices reachable from [s] in the final residual network). *)

val edge_connectivity : Dcs_graph.Ugraph.t -> float
(** Global edge connectivity: min over t <> 0 of maxflow(0, t). Exact for
    weighted undirected graphs; O(n) max-flow runs on {e one} residual
    network (reset between runs, never rebuilt), each capped at the
    running minimum — seeded with the minimum weighted degree, the
    trivial singleton-cut upper bound — so runs on well-connected sinks
    stop early. Requires n >= 2; returns 0 when disconnected (remaining
    runs are skipped once the minimum hits 0). *)

val edge_disjoint_paths : Dcs_graph.Ugraph.t -> s:int -> t:int -> int
(** Max number of edge-disjoint s-t paths in an unweighted view of the graph
    (capacities clamped to 1). *)

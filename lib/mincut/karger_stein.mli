(** Karger–Stein recursive contraction.

    One recursive run succeeds with probability Ω(1/log n) (versus Ω(1/n²)
    for plain contraction), so a handful of runs reliably finds the global
    minimum cut. Used by the distributed coordinator when candidate
    enumeration needs to be cheap on large merged sparsifiers, and as an
    independent randomized check against Stoer–Wagner in the tests. *)

val run_once : Dcs_util.Prng.t -> Dcs_graph.Ugraph.t -> float * Dcs_graph.Cut.t
(** One recursive contraction; an upper bound on the minimum cut. Requires
    a connected graph with n >= 2. *)

val mincut :
  ?domains:int ->
  ?chunk:int ->
  ?runs:int ->
  Dcs_util.Prng.t ->
  Dcs_graph.Ugraph.t ->
  float * Dcs_graph.Cut.t
(** Best of [runs] independent runs (default: ceil(log2 n)² + 1), executed
    on the chunked pool ({!Dcs_util.Pool.run_batched}) over [domains]
    domains (default [Pool.domain_count ()]) in [chunk]-sized batches;
    each worker domain builds the dense base quotient once and recurses
    off it for every run it executes. Per-run [Prng.split] streams keep
    the result bit-identical for every domain and chunk count. *)

module Ugraph = Dcs_graph.Ugraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut
module Prng = Dcs_util.Prng

(* Per-domain scratch for one contraction run: edge clocks, the index
   permutation that sorts them, and union-find state. Sized once per
   worker domain and reused across every run that domain executes, so a
   run allocates only its result cut — per-run allocation is what made
   multi-domain fan-out collapse on the minor-GC rendezvous (BENCH_005's
   E10), so the hot loop stays out of the allocator entirely. *)
type scratch = {
  times : float array;
  order : int array;
  parent : int array;
  rank : int array;
}

let make_scratch ~edges:m ~vertices:n =
  {
    times = Array.make (max 1 m) 0.0;
    order = Array.make (max 1 m) 0;
    parent = Array.make (max 1 n) 0;
    rank = Array.make (max 1 n) 0;
  }

(* Weighted contraction via exponential clocks: give edge e an arrival time
   Exp(w_e) = -ln(U)/w_e and contract edges in arrival order until two
   super-vertices remain. The first-arrival process picks each next edge
   with probability proportional to its weight among live edges, so this is
   exactly weighted Karger contraction, in O(m log m) per run.

   The RNG stream is a function of [Ugraph.edges g] order — [eu]/[ev]/[ew]
   are that edge list flattened, and clocks are drawn in slot order — so
   the clock assignment is unchanged from the pre-arena implementation;
   only the final cut evaluation goes through the frozen CSR view ([csr],
   shared read-only across repetitions and domains). *)
let run_once_scratch rng ~eu ~ev ~ew ~n csr s =
  if n < 2 then invalid_arg "Karger.run_once: need >= 2 vertices";
  let m = Array.length eu in
  if m = 0 then invalid_arg "Karger.run_once: graph disconnected (no edges)";
  for e = 0 to m - 1 do
    let u01 =
      let rec nonzero () =
        let x = Prng.float rng 1.0 in
        if x = 0.0 then nonzero () else x
      in
      nonzero ()
    in
    s.times.(e) <- -.log u01 /. ew.(e);
    s.order.(e) <- e
  done;
  Array.sort (fun a b -> compare s.times.(a) s.times.(b)) s.order;
  for v = 0 to n - 1 do
    s.parent.(v) <- v;
    s.rank.(v) <- 0
  done;
  let classes = ref n in
  let rec find x =
    let p = s.parent.(x) in
    if p = x then x
    else begin
      let r = find p in
      s.parent.(x) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then begin
      decr classes;
      if s.rank.(ra) < s.rank.(rb) then s.parent.(ra) <- rb
      else if s.rank.(ra) > s.rank.(rb) then s.parent.(rb) <- ra
      else begin
        s.parent.(rb) <- ra;
        s.rank.(ra) <- s.rank.(ra) + 1
      end
    end
  in
  let i = ref 0 in
  while !classes > 2 && !i < m do
    let e = s.order.(!i) in
    incr i;
    union eu.(e) ev.(e)
  done;
  if !classes > 2 then
    invalid_arg "Karger.run_once: graph disconnected (ran out of edges)";
  let rep = find 0 in
  let cut = Cut.of_mem ~n (fun v -> find v = rep) in
  (Csr.cut_value csr cut, cut)

let flatten_edges g =
  let edges = Array.of_list (Ugraph.edges g) in
  let eu = Array.map (fun (u, _, _) -> u) edges in
  let ev = Array.map (fun (_, v, _) -> v) edges in
  let ew = Array.map (fun (_, _, w) -> w) edges in
  (eu, ev, ew)

let run_once rng g =
  let n = Ugraph.n g in
  let eu, ev, ew = flatten_edges g in
  let s = make_scratch ~edges:(Array.length eu) ~vertices:n in
  run_once_scratch rng ~eu ~ev ~ew ~n (Csr.of_ugraph g) s

(* Contraction runs are independent, so they fan out over domains through
   the chunked pool: run [t] draws from the pure child stream
   [split master t] (the shared inputs are only read), each worker domain
   reuses one {!scratch}, and the winner is picked sequentially in run
   order — first strictly-smaller value wins, exactly as the sequential
   loop did. *)
let parallel_runs ?domains ?chunk rng ~trials g =
  let master = Prng.fork rng in
  let csr = Csr.of_ugraph g in
  let n = Ugraph.n g in
  let eu, ev, ew = flatten_edges g in
  let m = Array.length eu in
  Dcs_util.Pool.run_batched ?domains ?chunk
    ~arena:(fun () -> make_scratch ~edges:m ~vertices:n)
    ~n:trials
    (fun s t -> run_once_scratch (Prng.split master t) ~eu ~ev ~ew ~n csr s)

let mincut ?domains ?chunk rng ~trials g =
  if trials < 1 then invalid_arg "Karger.mincut: trials >= 1";
  let runs = parallel_runs ?domains ?chunk rng ~trials g in
  let best = ref runs.(0) in
  for t = 1 to trials - 1 do
    let v, _ = runs.(t) in
    if v < fst !best then best := runs.(t)
  done;
  !best

(* Canonical key for a cut up to complementation: the side containing
   vertex 0, rendered as its sorted vertex list. *)
let cut_key c =
  let c = if Cut.mem c 0 then c else Cut.complement c in
  String.concat "," (List.map string_of_int (Cut.to_list c))

let candidate_cuts ?domains ?chunk rng ~trials ~factor g =
  if factor < 1.0 then invalid_arg "Karger.candidate_cuts: factor >= 1";
  let runs = parallel_runs ?domains ?chunk rng ~trials g in
  let seen : (string, float * Cut.t) Hashtbl.t = Hashtbl.create 64 in
  let best = ref infinity in
  Array.iter
    (fun (v, c) ->
      best := Float.min !best v;
      let key = cut_key c in
      if not (Hashtbl.mem seen key) then Hashtbl.add seen key (v, c))
    runs;
  Hashtbl.fold
    (fun _ (v, c) acc -> if v <= (factor *. !best) +. 1e-9 then (v, c) :: acc else acc)
    seen []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

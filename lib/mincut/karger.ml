module Ugraph = Dcs_graph.Ugraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut
module Prng = Dcs_util.Prng

(* Union-find with path compression. *)
module Uf = struct
  type t = { parent : int array; rank : int array; mutable classes : int }

  let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

  let rec find t x =
    let p = t.parent.(x) in
    if p = x then x
    else begin
      let r = find t p in
      t.parent.(x) <- r;
      r
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then begin
      t.classes <- t.classes - 1;
      if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
      else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
      else begin
        t.parent.(rb) <- ra;
        t.rank.(ra) <- t.rank.(ra) + 1
      end
    end
end

(* Weighted contraction via exponential clocks: give edge e an arrival time
   Exp(w_e) = -ln(U)/w_e and contract edges in arrival order until two
   super-vertices remain. The first-arrival process picks each next edge
   with probability proportional to its weight among live edges, so this is
   exactly weighted Karger contraction, in O(m log m) per run.

   The RNG stream is a function of [Ugraph.edges g] order, so the clock
   assignment stays on the hashtable edge list; only the final cut
   evaluation goes through the frozen CSR view ([csr], shared read-only
   across repetitions and domains). *)
let run_once_frozen rng g csr =
  let n = Ugraph.n g in
  if n < 2 then invalid_arg "Karger.run_once: need >= 2 vertices";
  let edges = Array.of_list (Ugraph.edges g) in
  if Array.length edges = 0 then
    invalid_arg "Karger.run_once: graph disconnected (no edges)";
  let clocked =
    Array.map
      (fun (u, v, w) ->
        let u01 =
          let rec nonzero () =
            let x = Prng.float rng 1.0 in
            if x = 0.0 then nonzero () else x
          in
          nonzero ()
        in
        (-.log u01 /. w, u, v))
      edges
  in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) clocked;
  let uf = Uf.create n in
  let i = ref 0 in
  while uf.Uf.classes > 2 && !i < Array.length clocked do
    let _, u, v = clocked.(!i) in
    incr i;
    Uf.union uf u v
  done;
  if uf.Uf.classes > 2 then
    invalid_arg "Karger.run_once: graph disconnected (ran out of edges)";
  let rep = Uf.find uf 0 in
  let cut = Cut.of_mem ~n (fun v -> Uf.find uf v = rep) in
  (Csr.cut_value csr cut, cut)

let run_once rng g = run_once_frozen rng g (Csr.of_ugraph g)

(* Contraction runs are independent, so they fan out over domains: run [t]
   draws from the pure child stream [split master t] (the graph is only
   read), and the winner is picked sequentially in run order — first
   strictly-smaller value wins, exactly as the sequential loop did. *)
let parallel_runs ?domains rng ~trials g =
  let master = Prng.fork rng in
  let csr = Csr.of_ugraph g in
  Dcs_util.Pool.parallel_init ?domains ~n:trials (fun t ->
      run_once_frozen (Prng.split master t) g csr)

let mincut ?domains rng ~trials g =
  if trials < 1 then invalid_arg "Karger.mincut: trials >= 1";
  let runs = parallel_runs ?domains rng ~trials g in
  let best = ref runs.(0) in
  for t = 1 to trials - 1 do
    let v, _ = runs.(t) in
    if v < fst !best then best := runs.(t)
  done;
  !best

(* Canonical key for a cut up to complementation: the side containing
   vertex 0, rendered as its sorted vertex list. *)
let cut_key c =
  let c = if Cut.mem c 0 then c else Cut.complement c in
  String.concat "," (List.map string_of_int (Cut.to_list c))

let candidate_cuts ?domains rng ~trials ~factor g =
  if factor < 1.0 then invalid_arg "Karger.candidate_cuts: factor >= 1";
  let runs = parallel_runs ?domains rng ~trials g in
  let seen : (string, float * Cut.t) Hashtbl.t = Hashtbl.create 64 in
  let best = ref infinity in
  Array.iter
    (fun (v, c) ->
      best := Float.min !best v;
      let key = cut_key c in
      if not (Hashtbl.mem seen key) then Hashtbl.add seen key (v, c))
    runs;
  Hashtbl.fold
    (fun _ (v, c) acc -> if v <= (factor *. !best) +. 1e-9 then (v, c) :: acc else acc)
    seen []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

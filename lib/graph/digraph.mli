(** Weighted directed graphs on vertices 0..n-1.

    The representation favors the access patterns of this library: cut-value
    computation (iterate all out-edges of one side), per-pair weight lookup
    (decoders subtracting fixed backward weights), and incremental
    construction by encoders and samplers. Parallel edges are merged by
    accumulating weights; weights are nonnegative floats. *)

type t

val create : int -> t
(** [create n] is the empty graph on [n] vertices. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of distinct directed edges with nonzero weight. *)

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] adds [w] to the weight of edge (u, v). Requires
    [u <> v], [w >= 0], and valid vertex ids. Adding weight 0 is a no-op. *)

val set_edge : t -> int -> int -> float -> unit
(** Overwrite the weight of (u, v); weight 0 removes the edge. *)

val weight : t -> int -> int -> float
(** Weight of (u, v), 0 if absent. *)

val mem_edge : t -> int -> int -> bool

val iter_out : t -> int -> (int -> float -> unit) -> unit
(** Iterate over out-neighbors of a vertex with edge weights. *)

val iter_in : t -> int -> (int -> float -> unit) -> unit

val unsafe_weight : t -> int -> int -> float
(** {!weight} without the two bounds checks. For hot loops whose vertex ids
    are validated once at entry (decoders probing k·(1/ε²) pairs per
    decode); out-of-range ids raise [Invalid_argument] from the array
    access at best. *)

val unsafe_iter_out : t -> int -> (int -> float -> unit) -> unit
(** {!iter_out} without the bounds check. *)

val unsafe_iter_in : t -> int -> (int -> float -> unit) -> unit
(** {!iter_in} without the bounds check. *)

val fold_out : t -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val out_weight : t -> int -> float
(** Total weight of edges leaving a vertex. *)

val in_weight : t -> int -> float

val iter_edges : t -> (int -> int -> float -> unit) -> unit
(** Iterate every directed edge once. *)

val fold_edges : (int -> int -> float -> 'a -> 'a) -> t -> 'a -> 'a

val edges : t -> (int * int * float) list
(** All edges; order unspecified. *)

val total_weight : t -> float

val of_edges : int -> (int * int * float) list -> t

val copy : t -> t

val reverse : t -> t
(** Graph with every edge direction flipped. *)

val map_weights : t -> (int -> int -> float -> float) -> t
(** Fresh graph with re-mapped weights; mapping to 0 drops the edge. *)

val cut_weight : t -> (int -> bool) -> float
(** [cut_weight g mem] is w(S, V\S) for S = \{v | mem v\}: total weight of
    edges from S to its complement. O(sum of out-degrees of S). *)

val cut_weight_into : t -> (int -> bool) -> float
(** w(V\S, S): total weight entering S. *)

val symmetrize : t -> t
(** Undirected projection as a digraph: weight of (u,v) and (v,u) both become
    w(u,v) + w(v,u). *)

val equal : t -> t -> bool
(** Same vertex count and identical edge weights (exact float equality). *)

val pp : Format.formatter -> t -> unit

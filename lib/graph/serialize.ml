let output_generic out n iter =
  Buffer.add_string out (string_of_int n);
  Buffer.add_char out '\n';
  iter (fun u v w -> Buffer.add_string out (Printf.sprintf "%d %d %.17g\n" u v w))

let parse_string s =
  let sc = Scanf.Scanning.from_string s in
  let n = Scanf.bscanf sc " %d" (fun n -> n) in
  let edges = ref [] in
  (try
     while true do
       Scanf.bscanf sc " %d %d %f" (fun u v w -> edges := (u, v, w) :: !edges)
     done
   with Scanf.Scan_failure _ | End_of_file -> ());
  (n, List.rev !edges)

let ugraph_to_string g =
  let out = Buffer.create 256 in
  output_generic out (Ugraph.n g) (fun f -> Ugraph.iter_edges g f);
  Buffer.contents out

let ugraph_of_string s =
  let n, edges = parse_string s in
  Ugraph.of_edges n edges

let digraph_to_string g =
  let out = Buffer.create 256 in
  output_generic out (Digraph.n g) (fun f -> Digraph.iter_edges g f);
  Buffer.contents out

let digraph_of_string s =
  let n, edges = parse_string s in
  Digraph.of_edges n edges

let output_ugraph oc g = output_string oc (ugraph_to_string g)
let output_digraph oc g = output_string oc (digraph_to_string g)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let input_ugraph ic = ugraph_of_string (read_all ic)
let input_digraph ic = digraph_of_string (read_all ic)

(* --- checksummed frames ---

   The frame format lives in Dcs_util.Checksum so that util-level code
   (Checkpoint snapshots) shares the exact framing the lossy channels use;
   these aliases keep the historical entry points. *)

let frame = Dcs_util.Checksum.frame
let unframe = Dcs_util.Checksum.unframe

let parse_frame of_string s =
  match unframe s with
  | Error _ as e -> e
  | Ok body -> (
      (* The checksum already vouches for the bytes; parse failures here
         mean the sender framed a non-graph payload. *)
      try Ok (of_string body) with _ -> Error "frame: payload is not a graph")

let ugraph_to_frame g = frame (ugraph_to_string g)
let ugraph_of_frame s = parse_frame ugraph_of_string s
let digraph_to_frame g = frame (digraph_to_string g)
let digraph_of_frame s = parse_frame digraph_of_string s

(** Plain-text graph (de)serialization.

    Format — one header line with the vertex count, then one edge per line:
    {v
    <n>
    <u> <v> <w>
    ...
    v}
    Weights round-trip exactly (printed with 17 significant digits). Used
    by the [dcut] CLI and handy for fixtures. *)

val ugraph_to_string : Ugraph.t -> string
val ugraph_of_string : string -> Ugraph.t
val digraph_to_string : Digraph.t -> string
val digraph_of_string : string -> Digraph.t

val output_ugraph : out_channel -> Ugraph.t -> unit
val input_ugraph : in_channel -> Ugraph.t
val output_digraph : out_channel -> Digraph.t -> unit
val input_digraph : in_channel -> Digraph.t

(** {2 Checksummed frames}

    Self-checking envelope for messages sent over lossy channels
    ({!Dcs_comm.Channel.transmit}): a header line
    [DCS1 <payload-length> <crc32-hex>] followed by the payload. CRC-32
    detects every single-bit flip anywhere in the frame (header included:
    a damaged header fails to parse or disagrees with the payload), so a
    receiver can always distinguish a corrupted delivery from a clean one
    and ask for a retransmission. *)

val frame : string -> string

val unframe : string -> (string, string) result
(** Payload if the frame is intact, otherwise a diagnostic ([Error]). *)

val ugraph_to_frame : Ugraph.t -> string
(** [frame] of [ugraph_to_string]. *)

val ugraph_of_frame : string -> (Ugraph.t, string) result
(** Verifies the checksum, then parses. *)

val digraph_to_frame : Digraph.t -> string
val digraph_of_frame : string -> (Digraph.t, string) result

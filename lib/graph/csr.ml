(* Frozen compressed-sparse-row view of a graph: flat arrays, no hashing.

   Built once from a mutable [Digraph]/[Ugraph] and then read-only, so a
   sketch or solver freezes its graph a single time and answers every
   subsequent cut query off contiguous memory. Rows are sorted by
   destination, which makes iteration order (and therefore float summation
   order) independent of hashtable history, and lets [weight] binary-search
   a row. Both arc directions are stored; [reverse] is a field swap. *)

module Metrics = Dcs_obs_core.Metrics

(* Registry funnel (E19 cross-checks these): one [builds] per freeze, one
   [cut_full] per from-scratch cut evaluation, one [cut_delta] per O(degree)
   incremental update. All pure call counts — byte-identical across
   DCS_DOMAINS. *)
let m_builds = Metrics.counter "csr.builds"
let m_cut_full = Metrics.counter "csr.cut_full"
let m_cut_delta = Metrics.counter "csr.cut_delta"

(* Kernel invocations (not per-cut/per-flip work — that stays in cut_full /
   cut_delta so routing a caller through a batched kernel leaves its logical
   counters unchanged). Call sites must use fixed batch sizes, never
   domain-count-derived ones, to keep these deterministic. *)
let m_cut_many = Metrics.counter "csr.cut_many_calls"
let m_flip_sweep = Metrics.counter "csr.flip_sweep_calls"

(* Streaming overlay funnel: one [delta_cuts] per cut evaluated through a
   delta overlay (on top of the [cut_full] its base scan counts), one
   [compactions] per overlay merged back into a frozen view. *)
let m_delta_cut = Metrics.counter "csr.delta_cuts"
let m_compactions = Metrics.counter "csr.compactions"

type f64_1 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  arcs : int;
  out_off : int array;  (* length n+1; arcs leaving u at out_off.(u) .. *)
  out_dst : int array;
  out_w : float array;
  in_off : int array;   (* the same arcs, grouped by head *)
  in_src : int array;
  in_w : float array;
  (* Optional Bigarray mirrors of the two weight arrays (same doubles, same
     order), attached by [with_bigarray_weights] before any fan-out so no
     domain ever races on them. The batched kernels read weights from the
     mirror when present; values are bit-identical either way. *)
  big : (f64_1 * f64_1) option;
}

let n t = t.n
let m t = t.arcs

let check_vertex t u name =
  if u < 0 || u >= t.n then
    invalid_arg (Printf.sprintf "Csr.%s: vertex %d" name u)

(* Sort each row in place by endpoint. Rows come from merged hashtables, so
   endpoints within a row are distinct and the sorted order is canonical. *)
let sort_rows nv off dst w =
  for u = 0 to nv - 1 do
    let lo = off.(u) in
    let len = off.(u + 1) - lo in
    if len > 1 then begin
      let row = Array.init len (fun i -> (dst.(lo + i), w.(lo + i))) in
      Array.sort (fun (a, _) (b, _) -> compare a b) row;
      Array.iteri
        (fun i (d, x) ->
          dst.(lo + i) <- d;
          w.(lo + i) <- x)
        row
    end
  done

let prefix_sums off nv =
  for i = 0 to nv - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done

let of_digraph g =
  Metrics.inc m_builds;
  let nv = Digraph.n g in
  let out_off = Array.make (nv + 1) 0 in
  let in_off = Array.make (nv + 1) 0 in
  Digraph.iter_edges g (fun u v _ ->
      out_off.(u + 1) <- out_off.(u + 1) + 1;
      in_off.(v + 1) <- in_off.(v + 1) + 1);
  prefix_sums out_off nv;
  prefix_sums in_off nv;
  let arcs = out_off.(nv) in
  let out_dst = Array.make arcs 0 and out_w = Array.make arcs 0.0 in
  let in_src = Array.make arcs 0 and in_w = Array.make arcs 0.0 in
  let ocur = Array.sub out_off 0 (max 1 nv) in
  let icur = Array.sub in_off 0 (max 1 nv) in
  Digraph.iter_edges g (fun u v w ->
      let i = ocur.(u) in
      ocur.(u) <- i + 1;
      out_dst.(i) <- v;
      out_w.(i) <- w;
      let j = icur.(v) in
      icur.(v) <- j + 1;
      in_src.(j) <- u;
      in_w.(j) <- w);
  sort_rows nv out_off out_dst out_w;
  sort_rows nv in_off in_src in_w;
  { n = nv; arcs; out_off; out_dst; out_w; in_off; in_src; in_w; big = None }

let of_ugraph g =
  Metrics.inc m_builds;
  let nv = Ugraph.n g in
  let off = Array.make (nv + 1) 0 in
  Ugraph.iter_edges g (fun u v _ ->
      off.(u + 1) <- off.(u + 1) + 1;
      off.(v + 1) <- off.(v + 1) + 1);
  prefix_sums off nv;
  let arcs = off.(nv) in
  let dst = Array.make arcs 0 and w = Array.make arcs 0.0 in
  let cur = Array.sub off 0 (max 1 nv) in
  let put u v x =
    let i = cur.(u) in
    cur.(u) <- i + 1;
    dst.(i) <- v;
    w.(i) <- x
  in
  Ugraph.iter_edges g (fun u v x ->
      put u v x;
      put v u x);
  sort_rows nv off dst w;
  (* Symmetric: the in-direction is the same physical arrays. *)
  { n = nv; arcs; out_off = off; out_dst = dst; out_w = w;
    in_off = off; in_src = dst; in_w = w; big = None }

(* Content fingerprint: chain the SplitMix64 finalizer (Prng.mix64 — the
   same mixer Prng.fingerprint is built from) over n and the out-direction
   offset/endpoint/weight arrays. Rows are endpoint-sorted at freeze, so
   the fold order is canonical: two freezes of equal graphs collide by
   construction, whatever hashtable history produced them. The in-direction
   is determined by the out-direction, and the Bigarray mirrors hold the
   same doubles, so neither joins the fold. *)
let fingerprint t =
  let mix = Dcs_util.Prng.mix64 in
  let h = ref (mix (Int64.of_int t.n)) in
  let fold_int v = h := mix (Int64.logxor !h (Int64.of_int v)) in
  let fold_float v = h := mix (Int64.logxor !h (Int64.bits_of_float v)) in
  Array.iter fold_int t.out_off;
  for i = 0 to t.arcs - 1 do
    fold_int t.out_dst.(i);
    fold_float t.out_w.(i)
  done;
  !h

let reverse t =
  {
    t with
    out_off = t.in_off;
    out_dst = t.in_src;
    out_w = t.in_w;
    in_off = t.out_off;
    in_src = t.out_dst;
    in_w = t.out_w;
    big = Option.map (fun (o, i) -> (i, o)) t.big;
  }

let with_bigarray_weights t =
  match t.big with
  | Some _ -> t
  | None ->
      let mirror (w : float array) : f64_1 =
        let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout t.arcs in
        Array.iteri (fun i x -> Bigarray.Array1.unsafe_set b i x) w;
        b
      in
      { t with big = Some (mirror t.out_w, mirror t.in_w) }

let has_bigarray_weights t = t.big <> None

let out_degree t u =
  check_vertex t u "out_degree";
  t.out_off.(u + 1) - t.out_off.(u)

let in_degree t v =
  check_vertex t v "in_degree";
  t.in_off.(v + 1) - t.in_off.(v)

let iter_out t u f =
  check_vertex t u "iter_out";
  for i = t.out_off.(u) to t.out_off.(u + 1) - 1 do
    f t.out_dst.(i) t.out_w.(i)
  done

let iter_in t v f =
  check_vertex t v "iter_in";
  for i = t.in_off.(v) to t.in_off.(v + 1) - 1 do
    f t.in_src.(i) t.in_w.(i)
  done

let weight t u v =
  check_vertex t u "weight";
  check_vertex t v "weight";
  let lo = ref t.out_off.(u) and hi = ref (t.out_off.(u + 1) - 1) in
  let found = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let d = t.out_dst.(mid) in
    if d = v then begin
      found := t.out_w.(mid);
      lo := !hi + 1
    end
    else if d < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mem_edge t u v = weight t u v > 0.0

let total_weight t =
  let acc = ref 0.0 in
  for i = 0 to t.arcs - 1 do
    acc := !acc +. t.out_w.(i)
  done;
  !acc

let cut_weight t mem =
  Metrics.inc m_cut_full;
  let off = t.out_off and dst = t.out_dst and w = t.out_w in
  let acc = ref 0.0 in
  for u = 0 to t.n - 1 do
    if mem u then
      for i = off.(u) to off.(u + 1) - 1 do
        if not (mem (Array.unsafe_get dst i)) then
          acc := !acc +. Array.unsafe_get w i
      done
  done;
  !acc

let cut_weight_into t mem =
  Metrics.inc m_cut_full;
  let off = t.in_off and src = t.in_src and w = t.in_w in
  let acc = ref 0.0 in
  for v = 0 to t.n - 1 do
    if mem v then
      for i = off.(v) to off.(v + 1) - 1 do
        if not (mem (Array.unsafe_get src i)) then
          acc := !acc +. Array.unsafe_get w i
      done
  done;
  !acc

let cut_value t c =
  if Cut.n c <> t.n then invalid_arg "Csr.cut_value: size mismatch";
  cut_weight t (Cut.mem c)

let cut_delta t side x =
  if x < 0 || x >= t.n || Array.length side <> t.n then
    invalid_arg "Csr.cut_delta";
  Metrics.inc m_cut_delta;
  let d = ref 0.0 in
  for i = t.out_off.(x) to t.out_off.(x + 1) - 1 do
    if not (Array.unsafe_get side (Array.unsafe_get t.out_dst i)) then
      d := !d +. Array.unsafe_get t.out_w i
  done;
  for i = t.in_off.(x) to t.in_off.(x + 1) - 1 do
    if Array.unsafe_get side (Array.unsafe_get t.in_src i) then
      d := !d -. Array.unsafe_get t.in_w i
  done;
  if side.(x) then -. !d else !d

(* --- batched kernels ---

   Both kernels perform exactly the float operations of their per-call
   counterparts, in the same order: [cut_many] adds each cut's crossing
   weights in (source asc, row asc) order like [cut_weight], and
   [flip_sweep] accumulates per-flip deltas computed with [cut_delta]'s
   formula. Results are therefore byte-identical to the unbatched paths —
   the batching only removes per-call dispatch, closure and metering
   overhead from the inner loops. *)

let cut_many ?into t sides =
  let mcuts = Array.length sides in
  Array.iter
    (fun s ->
      if Array.length s <> t.n then
        invalid_arg "Csr.cut_many: side length mismatch")
    sides;
  let out =
    match into with
    | Some a when Array.length a >= mcuts -> a
    | Some _ -> invalid_arg "Csr.cut_many: into too short"
    | None -> Array.make mcuts 0.0
  in
  Metrics.inc ~by:mcuts m_cut_full;
  Metrics.inc m_cut_many;
  for m = 0 to mcuts - 1 do
    Array.unsafe_set out m 0.0
  done;
  if mcuts > 0 then begin
    let off = t.out_off and dst = t.out_dst in
    (match t.big with
    | Some (bw, _) ->
        for u = 0 to t.n - 1 do
          for i = off.(u) to off.(u + 1) - 1 do
            let v = Array.unsafe_get dst i in
            let w = Bigarray.Array1.unsafe_get bw i in
            for m = 0 to mcuts - 1 do
              let s = Array.unsafe_get sides m in
              if Array.unsafe_get s u && not (Array.unsafe_get s v) then
                Array.unsafe_set out m (Array.unsafe_get out m +. w)
            done
          done
        done
    | None ->
        let w = t.out_w in
        for u = 0 to t.n - 1 do
          for i = off.(u) to off.(u + 1) - 1 do
            let v = Array.unsafe_get dst i in
            let x = Array.unsafe_get w i in
            for m = 0 to mcuts - 1 do
              let s = Array.unsafe_get sides m in
              if Array.unsafe_get s u && not (Array.unsafe_get s v) then
                Array.unsafe_set out m (Array.unsafe_get out m +. x)
            done
          done
        done)
  end;
  out

let flip_sweep ?(off = 0) ?len t ~side ~init ~flips ~vals =
  let len = match len with Some l -> l | None -> Array.length flips - off in
  if off < 0 || len < 0 || off + len > Array.length flips then
    invalid_arg "Csr.flip_sweep: bad off/len";
  if Array.length vals < len then invalid_arg "Csr.flip_sweep: vals too short";
  if Array.length side <> t.n then
    invalid_arg "Csr.flip_sweep: side length mismatch";
  for j = off to off + len - 1 do
    let x = flips.(j) in
    if x < 0 || x >= t.n then invalid_arg "Csr.flip_sweep: vertex out of range"
  done;
  Metrics.inc ~by:len m_cut_delta;
  Metrics.inc m_flip_sweep;
  let out_off = t.out_off and out_dst = t.out_dst in
  let in_off = t.in_off and in_src = t.in_src in
  let cur = ref init in
  (match t.big with
  | Some (bow, biw) ->
      for j = 0 to len - 1 do
        let x = Array.unsafe_get flips (off + j) in
        let d = ref 0.0 in
        for i = Array.unsafe_get out_off x to Array.unsafe_get out_off (x + 1) - 1
        do
          if not (Array.unsafe_get side (Array.unsafe_get out_dst i)) then
            d := !d +. Bigarray.Array1.unsafe_get bow i
        done;
        for i = Array.unsafe_get in_off x to Array.unsafe_get in_off (x + 1) - 1
        do
          if Array.unsafe_get side (Array.unsafe_get in_src i) then
            d := !d -. Bigarray.Array1.unsafe_get biw i
        done;
        let delta = if Array.unsafe_get side x then -. !d else !d in
        cur := !cur +. delta;
        Array.unsafe_set side x (not (Array.unsafe_get side x));
        Array.unsafe_set vals j !cur
      done
  | None ->
      let out_w = t.out_w and in_w = t.in_w in
      for j = 0 to len - 1 do
        let x = Array.unsafe_get flips (off + j) in
        let d = ref 0.0 in
        for i = Array.unsafe_get out_off x to Array.unsafe_get out_off (x + 1) - 1
        do
          if not (Array.unsafe_get side (Array.unsafe_get out_dst i)) then
            d := !d +. Array.unsafe_get out_w i
        done;
        for i = Array.unsafe_get in_off x to Array.unsafe_get in_off (x + 1) - 1
        do
          if Array.unsafe_get side (Array.unsafe_get in_src i) then
            d := !d -. Array.unsafe_get in_w i
        done;
        let delta = if Array.unsafe_get side x then -. !d else !d in
        cur := !cur +. delta;
        Array.unsafe_set side x (not (Array.unsafe_get side x));
        Array.unsafe_set vals j !cur
      done);
  !cur

(* --- canonical thaw --- *)

(* Rebuild a mutable Digraph by walking the frozen rows in (source asc,
   endpoint asc) order. The insertion history is thus a pure function of
   the frozen content, so downstream consumers that depend on hashtable
   history (encoders, samplers before canonicalization) see the same
   digraph whatever history produced [t]. A symmetric view from
   [of_ugraph] yields both opposite arcs, faithfully. *)
let to_digraph t =
  let g = Digraph.create t.n in
  for u = 0 to t.n - 1 do
    for i = t.out_off.(u) to t.out_off.(u + 1) - 1 do
      Digraph.add_edge g u t.out_dst.(i) t.out_w.(i)
    done
  done;
  g

(* --- delta overlays: mutation without re-freezing ---

   A [delta] is a frozen base plus a hashtable of signed weight adjustments
   keyed by arc. Cut evaluation pays one base scan plus O(overlay) — the
   streaming hot path between compactions. All float work is ordered
   canonically (base in row order, overlay in ascending (u, v) key order),
   so values are a pure function of (base content, overlay content); with
   integer/dyadic weights the accumulated adjustments cancel exactly and
   [compact] reproduces the fingerprint a from-scratch freeze would give. *)

type delta = {
  base : t;
  tbl : (int, float) Hashtbl.t; (* key u*n+v -> accumulated adjustment *)
}

let delta_of base = { base; tbl = Hashtbl.create 64 }
let delta_base d = d.base
let delta_pairs d = Hashtbl.length d.tbl

let delta_add d u v dw =
  check_vertex d.base u "delta_add";
  check_vertex d.base v "delta_add";
  if u = v then invalid_arg "Csr.delta_add: self-loop";
  if dw <> 0.0 then begin
    let key = (u * d.base.n) + v in
    let cur = Option.value (Hashtbl.find_opt d.tbl key) ~default:0.0 in
    let next = cur +. dw in
    if next = 0.0 then Hashtbl.remove d.tbl key
    else Hashtbl.replace d.tbl key next
  end

let delta_weight d u v =
  let base = weight d.base u v in
  match Hashtbl.find_opt d.tbl ((u * d.base.n) + v) with
  | None -> base
  | Some dw -> base +. dw

(* Overlay keys in ascending order: the one canonical iteration the float
   sums below depend on. *)
let delta_sorted_keys d =
  let keys = Array.make (Hashtbl.length d.tbl) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun k _ ->
      keys.(!i) <- k;
      incr i)
    d.tbl;
  Array.sort compare keys;
  keys

let delta_cut_weight d mem =
  Metrics.inc m_delta_cut;
  let acc = ref (cut_weight d.base mem) in
  let n = d.base.n in
  Array.iter
    (fun key ->
      let u = key / n and v = key mod n in
      if mem u && not (mem v) then acc := !acc +. Hashtbl.find d.tbl key)
    (delta_sorted_keys d);
  !acc

let delta_cut_value d c =
  if Cut.n c <> d.base.n then invalid_arg "Csr.delta_cut_value: size mismatch";
  delta_cut_weight d (Cut.mem c)

let compact d =
  Metrics.inc m_compactions;
  let g = to_digraph d.base in
  let n = d.base.n in
  Array.iter
    (fun key ->
      let u = key / n and v = key mod n in
      let merged = Digraph.weight g u v +. Hashtbl.find d.tbl key in
      if merged < 0.0 then
        invalid_arg
          (Printf.sprintf "Csr.compact: arc (%d, %d) merges to negative weight"
             u v);
      Digraph.set_edge g u v merged)
    (delta_sorted_keys d);
  of_digraph g

(* Adjacency is a hashtable per vertex, for both directions: the right
   shape for *construction* — encoders, samplers and contraction build
   graphs edge by edge with O(1) merge of parallel edges. Read-heavy code
   (decoders, min-cut solvers, sketch queries) should freeze the finished
   graph into a [Csr.t] and query that instead; the hashtables stay the
   mutable build-side representation. *)

type t = {
  nv : int;
  out_adj : (int, float) Hashtbl.t array;
  in_adj : (int, float) Hashtbl.t array;
  mutable edge_count : int;
}

let create nv =
  if nv < 0 then invalid_arg "Digraph.create: negative size";
  {
    nv;
    out_adj = Array.init nv (fun _ -> Hashtbl.create 4);
    in_adj = Array.init nv (fun _ -> Hashtbl.create 4);
    edge_count = 0;
  }

let n g = g.nv
let m g = g.edge_count

let check_vertex g u name =
  if u < 0 || u >= g.nv then invalid_arg (Printf.sprintf "Digraph.%s: vertex %d" name u)

let unsafe_weight g u v =
  Option.value (Hashtbl.find_opt g.out_adj.(u) v) ~default:0.0

let weight g u v =
  check_vertex g u "weight";
  check_vertex g v "weight";
  unsafe_weight g u v

let mem_edge g u v = weight g u v > 0.0

let set_edge g u v w =
  check_vertex g u "set_edge";
  check_vertex g v "set_edge";
  if u = v then invalid_arg "Digraph.set_edge: self-loop";
  if w < 0.0 then invalid_arg "Digraph.set_edge: negative weight";
  let existed = Hashtbl.mem g.out_adj.(u) v in
  if w = 0.0 then begin
    if existed then begin
      Hashtbl.remove g.out_adj.(u) v;
      Hashtbl.remove g.in_adj.(v) u;
      g.edge_count <- g.edge_count - 1
    end
  end
  else begin
    Hashtbl.replace g.out_adj.(u) v w;
    Hashtbl.replace g.in_adj.(v) u w;
    if not existed then g.edge_count <- g.edge_count + 1
  end

let add_edge g u v w =
  if w < 0.0 then invalid_arg "Digraph.add_edge: negative weight";
  if w > 0.0 then set_edge g u v (weight g u v +. w)

let unsafe_iter_out g u f = Hashtbl.iter f g.out_adj.(u)
let unsafe_iter_in g v f = Hashtbl.iter f g.in_adj.(v)

let iter_out g u f =
  check_vertex g u "iter_out";
  unsafe_iter_out g u f

let iter_in g v f =
  check_vertex g v "iter_in";
  unsafe_iter_in g v f

let fold_out g u f init =
  check_vertex g u "fold_out";
  Hashtbl.fold (fun v w acc -> f acc v w) g.out_adj.(u) init

let out_degree g u =
  check_vertex g u "out_degree";
  Hashtbl.length g.out_adj.(u)

let in_degree g v =
  check_vertex g v "in_degree";
  Hashtbl.length g.in_adj.(v)

let out_weight g u = fold_out g u (fun acc _ w -> acc +. w) 0.0

let in_weight g v =
  check_vertex g v "in_weight";
  Hashtbl.fold (fun _ w acc -> acc +. w) g.in_adj.(v) 0.0

let iter_edges g f =
  for u = 0 to g.nv - 1 do
    Hashtbl.iter (fun v w -> f u v w) g.out_adj.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges g (fun u v w -> acc := f u v w !acc);
  !acc

let edges g = fold_edges (fun u v w acc -> (u, v, w) :: acc) g []

let total_weight g = fold_edges (fun _ _ w acc -> acc +. w) g 0.0

let of_edges nv es =
  let g = create nv in
  List.iter (fun (u, v, w) -> add_edge g u v w) es;
  g

let copy g =
  let h = create g.nv in
  iter_edges g (fun u v w -> set_edge h u v w);
  h

let reverse g =
  let h = create g.nv in
  iter_edges g (fun u v w -> set_edge h v u w);
  h

let map_weights g f =
  let h = create g.nv in
  iter_edges g (fun u v w ->
      let w' = f u v w in
      if w' > 0.0 then set_edge h u v w');
  h

let cut_weight g mem =
  let acc = ref 0.0 in
  for u = 0 to g.nv - 1 do
    if mem u then
      Hashtbl.iter (fun v w -> if not (mem v) then acc := !acc +. w) g.out_adj.(u)
  done;
  !acc

let cut_weight_into g mem =
  let acc = ref 0.0 in
  for v = 0 to g.nv - 1 do
    if mem v then
      Hashtbl.iter (fun u w -> if not (mem u) then acc := !acc +. w) g.in_adj.(v)
  done;
  !acc

let symmetrize g =
  let h = create g.nv in
  iter_edges g (fun u v w ->
      add_edge h u v w;
      add_edge h v u w);
  h

let equal a b =
  n a = n b
  && m a = m b
  && fold_edges (fun u v w acc -> acc && weight b u v = w) a true

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph n=%d m=%d@," (n g) (m g);
  iter_edges g (fun u v w -> Format.fprintf ppf "  %d -> %d  %g@," u v w);
  Format.fprintf ppf "@]"

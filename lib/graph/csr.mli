(** Frozen compressed-sparse-row graphs: the hot-path representation.

    A [Csr.t] is an immutable snapshot of a {!Digraph} or {!Ugraph} as flat
    offset/endpoint/weight arrays, in both arc directions. Freezing costs
    one pass over the edges plus a per-row sort; afterwards cut evaluation
    is a contiguous scan and single-vertex cut updates are O(degree) via
    {!cut_delta} — the workhorse of the Section 4 subset-enumeration
    decoder and of every solver that evaluates many cuts of one graph.

    Rows are sorted by endpoint, so iteration order — and hence float
    summation order — is canonical: two CSR views of equal graphs give
    byte-identical cut values, regardless of the hashtable history of the
    source. The structure is read-only and safe to share across domains.

    Builds and cut evaluations are metered in the {!Dcs_obs_core.Metrics}
    registry as [csr.builds], [csr.cut_full] and [csr.cut_delta]. *)

type t

val of_digraph : Digraph.t -> t
(** Freeze a directed graph. O(n + m log m). *)

val of_ugraph : Ugraph.t -> t
(** Freeze an undirected graph as its symmetric directed view: each
    undirected edge becomes two opposite arcs of the same weight, and both
    directions share one arc array. Directed cut values of the result equal
    the undirected cut values of the source. *)

val n : t -> int
val m : t -> int
(** Number of stored arcs (for [of_ugraph], twice the undirected edge
    count). *)

val reverse : t -> t
(** Every arc flipped. O(1): swaps the two stored directions. *)

val weight : t -> int -> int -> float
(** Weight of arc (u, v), 0 if absent. Binary search: O(log degree). *)

val mem_edge : t -> int -> int -> bool

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_out : t -> int -> (int -> float -> unit) -> unit
(** Out-neighbors in increasing vertex order. *)

val iter_in : t -> int -> (int -> float -> unit) -> unit
(** In-neighbors (sources) in increasing vertex order. *)

val total_weight : t -> float
(** Sum of all stored arc weights. *)

val cut_weight : t -> (int -> bool) -> float
(** [cut_weight t mem] is w(S, V\S) for S = \{v | mem v\}, summed in row
    order. *)

val cut_weight_into : t -> (int -> bool) -> float
(** w(V\S, S): total weight entering S. *)

val cut_value : t -> Cut.t -> float
(** {!cut_weight} of a {!Cut.t} side; checks the size. *)

val cut_delta : t -> bool array -> int -> float
(** [cut_delta t side x] is the change to [cut_weight t (fun v -> side.(v))]
    if vertex [x] switched sides — the caller flips [side.(x)] afterwards
    and adds the returned delta to its running cut value. O(degree of x).
    With weights whose sums are exact in floating point (integers, dyadic
    rationals), a chain of deltas reproduces the from-scratch value bit for
    bit. *)

(** Frozen compressed-sparse-row graphs: the hot-path representation.

    A [Csr.t] is an immutable snapshot of a {!Digraph} or {!Ugraph} as flat
    offset/endpoint/weight arrays, in both arc directions. Freezing costs
    one pass over the edges plus a per-row sort; afterwards cut evaluation
    is a contiguous scan and single-vertex cut updates are O(degree) via
    {!cut_delta} — the workhorse of the Section 4 subset-enumeration
    decoder and of every solver that evaluates many cuts of one graph.

    Rows are sorted by endpoint, so iteration order — and hence float
    summation order — is canonical: two CSR views of equal graphs give
    byte-identical cut values, regardless of the hashtable history of the
    source. The structure is read-only and safe to share across domains.

    Builds and cut evaluations are metered in the {!Dcs_obs_core.Metrics}
    registry as [csr.builds], [csr.cut_full] and [csr.cut_delta]. *)

type t

val of_digraph : Digraph.t -> t
(** Freeze a directed graph. O(n + m log m). *)

val of_ugraph : Ugraph.t -> t
(** Freeze an undirected graph as its symmetric directed view: each
    undirected edge becomes two opposite arcs of the same weight, and both
    directions share one arc array. Directed cut values of the result equal
    the undirected cut values of the source. *)

val n : t -> int
val m : t -> int
(** Number of stored arcs (for [of_ugraph], twice the undirected edge
    count). *)

val reverse : t -> t
(** Every arc flipped. O(1): swaps the two stored directions. *)

val fingerprint : t -> int64
(** Pure content hash of the frozen graph (vertex count, offsets, sorted
    endpoints, weights) chained through {!Dcs_util.Prng.mix64} — the
    finalizer {!Dcs_util.Prng.fingerprint} uses for stream identities.
    Two freezes of equal graphs always agree (rows are canonically
    sorted), so the value works as a cache key: the serving layer's sketch
    cache is keyed by it. O(n + m); call once and keep it. *)

val weight : t -> int -> int -> float
(** Weight of arc (u, v), 0 if absent. Binary search: O(log degree). *)

val mem_edge : t -> int -> int -> bool

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val iter_out : t -> int -> (int -> float -> unit) -> unit
(** Out-neighbors in increasing vertex order. *)

val iter_in : t -> int -> (int -> float -> unit) -> unit
(** In-neighbors (sources) in increasing vertex order. *)

val total_weight : t -> float
(** Sum of all stored arc weights. *)

val cut_weight : t -> (int -> bool) -> float
(** [cut_weight t mem] is w(S, V\S) for S = \{v | mem v\}, summed in row
    order. *)

val cut_weight_into : t -> (int -> bool) -> float
(** w(V\S, S): total weight entering S. *)

val cut_value : t -> Cut.t -> float
(** {!cut_weight} of a {!Cut.t} side; checks the size. *)

val cut_delta : t -> bool array -> int -> float
(** [cut_delta t side x] is the change to [cut_weight t (fun v -> side.(v))]
    if vertex [x] switched sides — the caller flips [side.(x)] afterwards
    and adds the returned delta to its running cut value. O(degree of x).
    With weights whose sums are exact in floating point (integers, dyadic
    rationals), a chain of deltas reproduces the from-scratch value bit for
    bit. *)

(** {2 Batched kernels}

    Dense sweeps over the flat arrays that evaluate many cuts (or many
    single-vertex flips) per call. They perform exactly the float
    operations of {!cut_weight} / {!cut_delta}, in the same order, so
    their results are byte-identical to the per-call paths — batching only
    strips per-call dispatch, closures and metering from the inner loops.
    These are the kernels the batched trial pool
    ({!Dcs_util.Pool.run_batched}) feeds with per-domain scratch arrays. *)

val cut_many : ?into:float array -> t -> bool array array -> float array
(** [cut_many t sides] evaluates [Array.length sides] cuts in one sweep
    over the out-arc arrays: slot [m] of the result is
    [cut_weight t (fun v -> sides.(m).(v))]. Every side must have length
    [n t]; duplicate sides are fine (each slot is accumulated
    independently). [?into] reuses a caller-owned output array (length at
    least the batch size; only the first batch-size slots are written) so a
    sweep in a hot loop allocates nothing. Counts one [csr.cut_full] per
    cut and one [csr.cut_many_calls] per call. *)

val flip_sweep :
  ?off:int ->
  ?len:int ->
  t ->
  side:bool array ->
  init:float ->
  flips:int array ->
  vals:float array ->
  float
(** [flip_sweep t ~side ~init ~flips ~vals] applies the single-vertex flips
    [flips.(off) .. flips.(off+len-1)] (default: the whole array) to
    [side] in order, maintaining a running cut value seeded with [init]
    (the caller's [cut_weight] of the starting side): after each flip the
    running value is stored in the corresponding slot of [vals]
    (0-indexed from the start of this call), and the final value is
    returned. Equivalent to — and bit-identical with — a loop of
    {!cut_delta} + manual flip + accumulate; [side] is mutated in place.
    A vertex may appear many times (each occurrence toggles it again).
    Counts [len] [csr.cut_delta]s and one [csr.flip_sweep_calls]. *)

(** {2 Canonical thaw and delta overlays}

    The streaming layer's middle ground between "re-freeze on every edge
    mutation" (O(n + m) each) and "never freeze" (losing the canonical
    hot-path arrays): a {!delta} overlays signed weight adjustments on a
    frozen base, answers cuts at one base scan plus O(overlay) extra, and
    is merged back into a fresh frozen view by {!compact} once it grows
    past the caller's threshold. All overlay float work happens in
    ascending arc order, so every value is a pure function of content —
    two overlays reaching the same graph by different mutation histories
    agree bit for bit whenever the weights sum exactly (integers, dyadic
    rationals), and [compact] then reproduces the fingerprint of a
    from-scratch freeze. Metered as [csr.delta_cuts] / [csr.compactions]. *)

val to_digraph : t -> Digraph.t
(** Thaw back to a mutable {!Digraph}, inserting arcs in (source asc,
    endpoint asc) row order — a canonical insertion history, so any
    downstream consumer sensitive to construction order sees the same
    digraph whatever history produced [t]. A symmetric {!of_ugraph} view
    thaws to both opposite arcs. *)

type delta
(** A frozen base plus an unfrozen overlay of signed weight adjustments. *)

val delta_of : t -> delta
(** Empty overlay on [t]. The base is shared, not copied. *)

val delta_base : delta -> t
val delta_pairs : delta -> int
(** Distinct arcs currently adjusted — the overlay's memory footprint and
    the quantity compaction thresholds watch. Adjustments that cancel back
    to exactly 0 leave the overlay (so insert-then-delete churn does not
    grow it). *)

val delta_add : delta -> int -> int -> float -> unit
(** [delta_add d u v dw] accumulates [dw] onto arc (u, v) (negative to
    delete weight). Bounds-checked; self-loops rejected. The overlay may
    hold transiently negative adjustments (a deletion of a base arc); only
    {!compact} insists the merged weights are nonnegative. *)

val delta_weight : delta -> int -> int -> float
(** Base weight plus adjustment. *)

val delta_cut_weight : delta -> (int -> bool) -> float
(** {!cut_weight} of the adjusted graph: base scan in row order plus
    overlay corrections in ascending arc order. *)

val delta_cut_value : delta -> Cut.t -> float
(** {!delta_cut_weight} of a {!Cut.t} side; checks the size. *)

val compact : delta -> t
(** Merge the overlay into a fresh frozen view (thaw base canonically,
    apply adjustments in ascending arc order, re-freeze). Raises
    [Invalid_argument] if any arc merges to a negative weight — the
    overlay was promising deletions the base never had. *)

val with_bigarray_weights : t -> t
(** A view of the same graph whose batched kernels read arc weights from
    [Bigarray.Array1] (float64, C layout) mirrors instead of the boxed
    float arrays — same doubles in the same order, so every result is
    bit-identical; the mirrors are plain flat unboxed buffers that the
    runtime never scans or moves. Build it once before a fan-out and share
    the result: the mirror is attached eagerly, so the value is as
    read-only (and domain-safe) as the original. Idempotent. *)

val has_bigarray_weights : t -> bool

module Ugraph = Dcs_graph.Ugraph
module Digraph = Dcs_graph.Digraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut
module Prng = Dcs_util.Prng
module Karger = Dcs_mincut.Karger
module Karger_stein = Dcs_mincut.Karger_stein
module Stoer_wagner = Dcs_mincut.Stoer_wagner
module Dinic = Dcs_mincut.Dinic
module Connectivity = Dcs_sketch.Connectivity
module Importance = Dcs_sketch.Importance
module Directed_sparsifier = Dcs_sketch.Directed_sparsifier
module Metrics = Dcs_obs_core.Metrics

(* Sparsify-then-solve (Cen–Li–Nanongkai et al., partial sparsification):
   run the minimum-cut solver on a connectivity-sampled sparsifier H —
   whose edge count is governed by the sampling rate ρ, not the source
   density — then *certify* the returned cut against the original graph:
   recompute its exact weight over the frozen CSR view and accept only if
   H's value for it is within the sparsifier's ε promise. On acceptance
   the answer is repaired to the exact weight (the cut is real; only its
   H-value was approximate); on violation — or when sampling left H
   unsolvable, e.g. disconnected — fall back to the dense solver on the
   original graph, so the fast path can never make the answer *wrong*,
   only certification make it slow. *)

let m_solves = Metrics.counter "partial.solves"
let m_certified = Metrics.counter "partial.certified"
let m_fallbacks = Metrics.counter "partial.fallbacks"

type solver =
  | Karger of { trials : int }
  | Karger_stein of { runs : int option }
  | Stoer_wagner

type stats = {
  m_full : int;
  m_sparse : int;
  conn : Connectivity.stats;
  sparse_value : float;
  certified : bool;
  fell_back : bool;
}

type result = { value : float; cut : Dcs_graph.Cut.t; stats : stats }

(* Undirected sampling rate: connectivity sampling of undirected graphs
   needs only the Benczúr–Karger-shaped O(log n/ε²) rate (no balance
   factor) — sampling by exact local connectivity at this rate preserves
   all cuts within (1 ± ε) w.h.p. (Fung–Hariharan–Harvey–Panigrahi). *)
let rho_ugraph ?(c = 2.0) ~eps ~n () =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Partial_mincut: eps in (0,1)";
  c *. log (float_of_int (max 2 n)) /. (eps *. eps)

let sparsify ?c ?rho:rho_opt ?cap ?domains ?chunk ?flow_budget ?connectivity
    rng ~eps g =
  let n = Ugraph.n g in
  let rho =
    match rho_opt with
    | Some r ->
        if r <= 0.0 then invalid_arg "Partial_mincut: rho must be positive";
        r
    | None -> rho_ugraph ?c ~eps ~n ()
  in
  let conn =
    match connectivity with
    | Some conn -> conn
    | None ->
        (* Estimates saturate at the cap and p = ρ/λ̂, so the cap must
           exceed ρ for any edge to be dropped; the default lets keep
           probabilities fall to 1/16. *)
        let cap = match cap with Some k -> k | None -> 16.0 *. rho in
        Connectivity.estimate_ugraph ?domains ?chunk ?flow_budget ~cap g
  in
  let master = Prng.fork rng in
  let h = Ugraph.create n in
  Array.iteri
    (fun i (u, v, w) ->
      let lam = Connectivity.lambda_at conn i in
      let p = if lam <= 0.0 then 1.0 else rho /. lam in
      match Importance.binomial_keep (Prng.split master i) ~p ~w with
      | Some w' -> Ugraph.add_edge h u v w'
      | None -> ())
    (Connectivity.edges conn);
  (h, conn)

let solve_dense ?domains ?chunk rng ~solver g =
  match solver with
  | Karger { trials } -> Karger.mincut ?domains ?chunk rng ~trials g
  | Karger_stein { runs } -> Karger_stein.mincut ?domains ?chunk ?runs rng g
  | Stoer_wagner -> Stoer_wagner.mincut g

(* |w_G(S) - w_H(S)| <= ε·w_G(S): exactly the per-cut promise the
   sparsifier makes, checked on the one cut that matters. *)
let certifies ~eps ~exact ~sparse =
  Float.abs (exact -. sparse) <= (eps *. exact) +. 1e-9

let mincut ?domains ?chunk ?c ?rho ?cap ?flow_budget ?connectivity ?csr rng
    ~eps ~solver g =
  Metrics.inc m_solves;
  let csr = match csr with Some c -> c | None -> Csr.of_ugraph g in
  let h, conn =
    sparsify ?c ?rho ?cap ?domains ?chunk ?flow_budget ?connectivity rng ~eps g
  in
  let sparse_rng = Prng.fork rng in
  let fallback_rng = Prng.fork rng in
  let stats ~sparse_value ~certified ~fell_back =
    {
      m_full = Ugraph.m g;
      m_sparse = Ugraph.m h;
      conn = Connectivity.stats conn;
      sparse_value;
      certified;
      fell_back;
    }
  in
  let fall_back ~sparse_value =
    Metrics.inc m_fallbacks;
    let value, cut = solve_dense ?domains ?chunk fallback_rng ~solver g in
    { value; cut; stats = stats ~sparse_value ~certified:false ~fell_back:true }
  in
  match solve_dense ?domains ?chunk sparse_rng ~solver h with
  | exception Invalid_argument _ ->
      (* Sampling can disconnect H (binomial zero on a weak edge); the
         dense path answers. *)
      fall_back ~sparse_value:nan
  | sparse_value, cut ->
      let exact = Csr.cut_value csr cut in
      if certifies ~eps ~exact ~sparse:sparse_value then begin
        Metrics.inc m_certified;
        {
          value = exact;
          cut;
          stats = stats ~sparse_value ~certified:true ~fell_back:false;
        }
      end
      else fall_back ~sparse_value

let st_mincut ?c ?rho:rho_opt ?cap ?domains ?chunk ?flow_budget ?connectivity
    rng ~eps ~beta ~s ~t:sink g =
  Metrics.inc m_solves;
  let n = Digraph.n g in
  if s = sink then invalid_arg "Partial_mincut.st_mincut: s = t";
  let csr = Csr.of_digraph g in
  let rho =
    match rho_opt with
    | Some r -> r
    | None -> Directed_sparsifier.rho ?c ~eps ~beta ~n ()
  in
  let conn =
    match connectivity with
    | Some conn -> conn
    | None ->
        let cap = match cap with Some k -> k | None -> 16.0 *. rho in
        Connectivity.estimate_digraph ?domains ?chunk ?flow_budget ~csr ~beta
          ~cap g
  in
  let h =
    Directed_sparsifier.connectivity_sparsify ~rho ~connectivity:conn rng ~eps
      ~beta g
  in
  let stats ~sparse_value ~certified ~fell_back =
    {
      m_full = Digraph.m g;
      m_sparse = Digraph.m h;
      conn = Connectivity.stats conn;
      sparse_value;
      certified;
      fell_back;
    }
  in
  let sparse_value, side = Dinic.mincut_side (Dinic.of_digraph h) ~s ~t:sink in
  let exact = Csr.cut_weight csr (Cut.mem side) in
  if certifies ~eps ~exact ~sparse:sparse_value then begin
    Metrics.inc m_certified;
    {
      value = exact;
      cut = side;
      stats = stats ~sparse_value ~certified:true ~fell_back:false;
    }
  end
  else begin
    Metrics.inc m_fallbacks;
    let value, cut = Dinic.mincut_side (Dinic.of_csr csr) ~s ~t:sink in
    { value; cut; stats = stats ~sparse_value ~certified:false ~fell_back:true }
  end

(** Sparsify-then-solve minimum cuts with certification and repair.

    The partial-sparsification recipe of Cen–Li–Nanongkai et al.
    ({i Minimum Cuts in Directed Graphs via Partial Sparsification}): run
    the solver on a connectivity-sampled sparsifier H — edge count
    governed by the sampling rate ρ, not the source density — then
    {e certify} the returned cut against the original graph: its exact
    weight is recomputed over the frozen CSR view, and the sparse answer
    is accepted only if H's value for that cut is within the
    sparsifier's ε promise. On acceptance the reported value is the
    {e exact} weight (repair); on violation, or when sampling left H
    unsolvable (e.g. disconnected), the dense solver reruns on the
    original graph — the fast path can make the answer slower, never
    wrong. Accepted answers are (1+ε)-approximate minimum cuts with the
    sparsifier's success probability. Metered as [partial.solves],
    [partial.certified], [partial.fallbacks]. *)

type solver =
  | Karger of { trials : int }
  | Karger_stein of { runs : int option }  (** [None]: the solver default *)
  | Stoer_wagner

type stats = {
  m_full : int;  (** edges of the input graph *)
  m_sparse : int;  (** edges of the sparsifier actually solved *)
  conn : Dcs_sketch.Connectivity.stats;  (** how λ̂ tiers resolved (prefilters/flows) *)
  sparse_value : float;  (** the cut's value in H ([nan] if H unsolvable) *)
  certified : bool;
  fell_back : bool;
}

type result = { value : float; cut : Dcs_graph.Cut.t; stats : stats }
(** [value] is always an exact cut weight of the {e original} graph for
    [cut] — repaired on the sparse path, native on the dense path. *)

val rho_ugraph : ?c:float -> eps:float -> n:int -> unit -> float
(** Undirected sampling rate c·ln n/ε² (default [c] = 2): sampling by
    local connectivity at this rate preserves all cuts within (1 ± ε)
    w.h.p. (Fung–Hariharan–Harvey–Panigrahi shape — no balance factor
    needed undirected). *)

val sparsify :
  ?c:float ->
  ?rho:float ->
  ?cap:float ->
  ?domains:int ->
  ?chunk:int ->
  ?flow_budget:int ->
  ?connectivity:Dcs_sketch.Connectivity.t ->
  Dcs_util.Prng.t ->
  eps:float ->
  Dcs_graph.Ugraph.t ->
  Dcs_graph.Ugraph.t * Dcs_sketch.Connectivity.t
(** Connectivity-sampled undirected sparsifier: p = min(1, ρ/λ̂) with λ̂
    from {!Connectivity.estimate_ugraph}, binomial weight resampling,
    one [Prng.split] stream per edge in canonical order (byte-identical
    for every domain count). Returns the sparsifier and the estimates it
    sampled from. [rho] overrides {!rho_ugraph}; [cap] is the estimation
    ceiling (default 16·ρ — it must exceed ρ for anything to be
    dropped, since estimates saturate there and p = ρ/λ̂);
    [connectivity] reuses estimates (must be from this graph). *)

val mincut :
  ?domains:int ->
  ?chunk:int ->
  ?c:float ->
  ?rho:float ->
  ?cap:float ->
  ?flow_budget:int ->
  ?connectivity:Dcs_sketch.Connectivity.t ->
  ?csr:Dcs_graph.Csr.t ->
  Dcs_util.Prng.t ->
  eps:float ->
  solver:solver ->
  Dcs_graph.Ugraph.t ->
  result
(** Global minimum cut through {!sparsify} + [solver] + certify/repair.
    [csr] reuses an existing frozen view of the input graph for
    certification (it must match [g]); omitted, one is frozen here.
    Note Stoer–Wagner's O(n³) does not shrink with the edge count — pair
    it with this driver for certification value, not speed; the
    contraction solvers (Karger, Karger–Stein) are the fast path. *)

val st_mincut :
  ?c:float ->
  ?rho:float ->
  ?cap:float ->
  ?domains:int ->
  ?chunk:int ->
  ?flow_budget:int ->
  ?connectivity:Dcs_sketch.Connectivity.t ->
  Dcs_util.Prng.t ->
  eps:float ->
  beta:float ->
  s:int ->
  t:int ->
  Dcs_graph.Digraph.t ->
  result
(** Directed s–t minimum cut: Dinic on a
    {!Directed_sparsifier.connectivity_sparsify} sparsifier (the CLNPSQ
    use case), certified against the original digraph's frozen view and
    repaired to the exact directed weight; dense Dinic on violation.
    [beta] is the graph's cut-balance promise, as everywhere in the
    directed samplers. *)

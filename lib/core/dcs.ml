(** Directed cut sparsification and distributed min-cut — lower bounds and
    matching algorithms.

    This is the umbrella module: one alias per sub-library, grouped the way
    the paper is. Reproduction of "Tight Lower Bounds for Directed Cut
    Sparsification and Distributed Min-Cut" (PODS 2024).

    {1 Substrates}

    - {!Prng}, {!Pool}, {!Stats}, {!Bits}, {!Table} — determinism, the
      parallel trial engine, statistics, and bit-level size accounting.
    - {!Fault}, {!Retry}, {!Checksum} — the deterministic fault-injection
      layer: seed-driven drop/corrupt/timeout/lie policies, bounded
      retry-with-backoff and majority voting, CRC-32 message framing.
    - {!Checkpoint} — crash-safe, CRC-framed checkpoint/resume for
      supervised trial sweeps (atomic snapshots, corruption rejection).
    - {!Hadamard}, {!Pm_vector}, {!Decode_matrix} — the Lemma 3.2 machinery.
    - {!Digraph}, {!Ugraph}, {!Csr}, {!Cut}, {!Balance}, {!Generators},
      {!Traversal} — graphs and cuts ({!Csr} is the frozen flat-array view
      the hot paths query).
    - {!Stoer_wagner}, {!Karger}, {!Dinic}, {!Brute} — exact and randomized
      minimum cuts.
    - {!Bitstring}, {!Channel}, {!Index_game}, {!Gap_hamming}, {!Two_sum} —
      the communication problems behind each lower bound.

    {1 Cut sketches (Definitions 2.2 / 2.3 and upper bounds)}

    - {!Sketch} — the sketch interface the reductions consume.
    - {!Exact_sketch}, {!Noisy_oracle} — reference points.
    - {!Strength}, {!Importance}, {!Benczur_karger}, {!Foreach_sampler},
      {!Directed_sparsifier} — sampling-based sketches.
    - {!Connectivity} — batched local edge-connectivity estimation
      (tiered lower bounds: weight, NI strength, common-neighbour,
      capped Dinic flows on a reusable residual network), feeding
      {!Directed_sparsifier.connectivity_sparsify} and
      {!Partial_mincut} — sparsify-then-solve minimum cuts with
      certify/repair against the original graph.

    {1 The paper's lower bounds}

    - {!Foreach_lb} — Section 3 / Theorem 1.1.
    - {!Forall_lb} — Section 4 / Theorem 1.2.
    - {!Oracle}, {!Gxy}, {!Verify_guess}, {!Estimator} — Section 5 /
      Theorems 1.3 and 5.7.

    {1 Distributed min-cut}

    - {!Partition}, {!Coordinator} — the ACK+16 pipeline from the
      introduction.

    {1 Streaming ingest}

    - {!L0_sampler}, {!Agm_sketch} — classic turnstile primitives.
    - {!Wal}, {!Stream_sketch} — crash-consistent insert/delete edge
      streams: CRC-framed write-ahead logging with typed quarantine of
      damaged records, checkpoint-compacted recovery that reproduces the
      pre-kill sketch state bit for bit, and incremental maintenance of
      the for-each machinery atop {!Csr} delta overlays.

    {1 Serving}

    - {!Traffic}, {!Serve} — [dcutd]'s long-lived cut-query serving layer:
      deterministic open-loop traffic, admission control ({!Token_bucket},
      bounded queue with typed shedding), a
      {!Csr.fingerprint}-keyed sketch cache, jittered-backoff oracle
      retries and circuit-breaking to a degraded (wider-[eps]) mode.

    {1 Scheduling}

    - {!Sched} — experiments as typed stage DAGs: level-parallel execution
      over {!Pool.run_supervised_batched} and a content-addressed artifact
      store (in-memory LRU spilling through {!Checkpoint}), so shared
      generate/freeze/sketch prefixes compute once and warm reruns are
      byte-identical to cold ones. *)

(** The observability substrate: {!Obs.Metrics} (per-domain sharded
    counters, gauges and exponential-bucket histograms with a deterministic
    merge), {!Obs.Trace} (spans with Chrome trace export, [DCS_TRACE]),
    {!Obs.Report} (the registry rendered as text tables and JSON snapshots,
    [DCS_METRICS]). Every layer below funnels its accounting here; E18
    cross-checks the registry against the bespoke meters. *)
module Obs = struct
  module Metrics = Dcs_obs_core.Metrics
  module Trace = Dcs_obs_core.Trace
  module Report = Dcs_obs.Report
end

module Prng = Dcs_util.Prng
module Pool = Dcs_util.Pool
module Stats = Dcs_util.Stats
module Bits = Dcs_util.Bits
module Table = Dcs_util.Table
module Message = Dcs_util.Message
module Fault = Dcs_util.Fault
module Retry = Dcs_util.Retry
module Token_bucket = Dcs_util.Token_bucket
module Checksum = Dcs_util.Checksum
module Checkpoint = Dcs_util.Checkpoint

module Hadamard = Dcs_linalg.Hadamard
module Pm_vector = Dcs_linalg.Pm_vector
module Decode_matrix = Dcs_linalg.Decode_matrix

module Digraph = Dcs_graph.Digraph
module Ugraph = Dcs_graph.Ugraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut
module Balance = Dcs_graph.Balance
module Generators = Dcs_graph.Generators
module Traversal = Dcs_graph.Traversal
module Eulerian = Dcs_graph.Eulerian
module Serialize = Dcs_graph.Serialize

module Stoer_wagner = Dcs_mincut.Stoer_wagner
module Karger = Dcs_mincut.Karger
module Karger_stein = Dcs_mincut.Karger_stein
module Gomory_hu = Dcs_mincut.Gomory_hu
module Dinic = Dcs_mincut.Dinic
module Brute = Dcs_mincut.Brute

module Bitstring = Dcs_comm.Bitstring
module Channel = Dcs_comm.Channel
module Index_game = Dcs_comm.Index_game
module Gap_hamming = Dcs_comm.Gap_hamming
module Two_sum = Dcs_comm.Two_sum

module Sketch = Dcs_sketch.Sketch
module Exact_sketch = Dcs_sketch.Exact_sketch
module Noisy_oracle = Dcs_sketch.Noisy_oracle
module Strength = Dcs_sketch.Strength
module Importance = Dcs_sketch.Importance
module Benczur_karger = Dcs_sketch.Benczur_karger
module Foreach_sampler = Dcs_sketch.Foreach_sampler
module Directed_sparsifier = Dcs_sketch.Directed_sparsifier
module Connectivity = Dcs_sketch.Connectivity
module Imbalance_sketch = Dcs_sketch.Imbalance_sketch

module Partial_mincut = Dcs_solve.Partial_mincut

module Layout = Dcs_lower.Layout
module Foreach_lb = Dcs_lower.Foreach_lb
module Forall_lb = Dcs_lower.Forall_lb
module Naive_foreach = Dcs_lower.Naive_foreach

module Oracle = Dcs_localquery.Oracle
module Faulty_oracle = Dcs_localquery.Faulty_oracle
module Gxy = Dcs_localquery.Gxy
module Verify_guess = Dcs_localquery.Verify_guess
module Estimator = Dcs_localquery.Estimator
module Reduction = Dcs_localquery.Reduction

module Laplacian = Dcs_spectral.Laplacian
module Resistance = Dcs_spectral.Resistance
module Spectral_sparsifier = Dcs_spectral.Spectral_sparsifier

module L0_sampler = Dcs_stream.L0_sampler
module Agm_sketch = Dcs_stream.Agm_sketch
module Wal = Dcs_stream.Wal
module Stream_sketch = Dcs_stream.Stream_sketch

module Partition = Dcs_distributed.Partition
module Coordinator = Dcs_distributed.Coordinator

module Traffic = Dcs_serve.Traffic
module Serve = Dcs_serve.Serve

(** The experiment scheduler: typed stage DAGs over {!Pool} with a
    content-addressed artifact cache spilling through {!Checkpoint}.
    E23 enforces its warm-vs-cold byte identity and cache-hit floor. *)
module Sched = Dcs_sched.Sched

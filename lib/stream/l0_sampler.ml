module Prng = Dcs_util.Prng

(* Mersenne prime modulus: products of two residues fit in OCaml's native
   63-bit integers. *)
let p = 2147483647 (* 2^31 - 1 *)

let mulmod a b = a * b mod p
let addmod a b = (a + b) mod p

let powmod base e =
  let rec go acc base e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mulmod acc base) (mulmod base base) (e lsr 1)
    else go acc (mulmod base base) (e lsr 1)
  in
  go 1 (base mod p) e

type hashes = {
  universe : int;
  levels : int;
  a : int array;  (* per-level hash multipliers *)
  b : int array;  (* per-level hash offsets *)
  q : int;        (* fingerprint base *)
  nonneg : bool;  (* multiplicities are promised nonnegative *)
}

exception Below_zero of { index : int; count : int }

let () =
  Printexc.register_printer (function
    | Below_zero { index; count } ->
        Some
          (Printf.sprintf
             "L0_sampler.Below_zero (coordinate %d at multiplicity %d)" index
             count)
    | _ -> None)

type t = {
  h : hashes;
  count : int array;        (* per level: Σ c_i over surviving i *)
  index_sum : int array;    (* per level: Σ c_i · i *)
  fingerprint : int array;  (* per level: Σ c_i · q^i mod p *)
}

let make_hashes ?(nonnegative = false) rng ~universe =
  if universe <= 0 then invalid_arg "L0_sampler: universe must be positive";
  let levels = 2 + int_of_float (Dcs_util.Stats.log2 (float_of_int universe)) in
  {
    universe;
    levels;
    a = Array.init levels (fun _ -> 1 + Prng.int rng (p - 1));
    b = Array.init levels (fun _ -> Prng.int rng p);
    q = 2 + Prng.int rng (p - 3);
    nonneg = nonnegative;
  }

let of_hashes h =
  {
    h;
    count = Array.make h.levels 0;
    index_sum = Array.make h.levels 0;
    fingerprint = Array.make h.levels 0;
  }

let create_family ?nonnegative rng ~universe ~count =
  if count < 1 then invalid_arg "L0_sampler.create_family: count";
  let h = make_hashes ?nonnegative rng ~universe in
  Array.init count (fun _ -> of_hashes h)

let create ?nonnegative rng ~universe =
  (create_family ?nonnegative rng ~universe ~count:1).(0)

let nonnegative s = s.h.nonneg

(* Level j keeps index i with probability 2^-j. *)
let kept h j i = j = 0 || ((h.a.(j) * i) + h.b.(j)) mod p land ((1 lsl j) - 1) = 0

let update s i delta =
  if i < 0 || i >= s.h.universe then invalid_arg "L0_sampler.update: index";
  (* Level 0 keeps every index, so count.(0) is the exact sum of all
     multiplicities: driving it negative proves some coordinate went below
     zero. Checked before any level mutates, so a rejected deletion leaves
     the sampler state untouched instead of poisoned. *)
  if s.h.nonneg && delta < 0 && s.count.(0) + delta < 0 then
    raise (Below_zero { index = i; count = s.count.(0) + delta });
  if delta <> 0 then begin
    let fp_term =
      let d = ((delta mod p) + p) mod p in
      mulmod d (powmod s.h.q i)
    in
    for j = 0 to s.h.levels - 1 do
      if kept s.h j i then begin
        s.count.(j) <- s.count.(j) + delta;
        s.index_sum.(j) <- s.index_sum.(j) + (delta * i);
        s.fingerprint.(j) <- addmod s.fingerprint.(j) fp_term
      end
    done
  end

let same_family a b = a.h == b.h

let merge_into ~dst src =
  if not (same_family dst src) then
    invalid_arg "L0_sampler.merge_into: sketches from different families";
  if dst.h.nonneg && dst.count.(0) + src.count.(0) < 0 then
    raise (Below_zero { index = -1; count = dst.count.(0) + src.count.(0) });
  for j = 0 to dst.h.levels - 1 do
    dst.count.(j) <- dst.count.(j) + src.count.(j);
    dst.index_sum.(j) <- dst.index_sum.(j) + src.index_sum.(j);
    dst.fingerprint.(j) <- addmod dst.fingerprint.(j) src.fingerprint.(j)
  done

let copy s =
  {
    h = s.h;
    count = Array.copy s.count;
    index_sum = Array.copy s.index_sum;
    fingerprint = Array.copy s.fingerprint;
  }

(* A level is a verified singleton when (count, index_sum, fingerprint) are
   consistent with the vector restricted to that level being c·e_i. *)
let singleton_at s j =
  let c = s.count.(j) in
  if c = 0 then None
  else if s.index_sum.(j) mod c <> 0 then None
  else begin
    let i = s.index_sum.(j) / c in
    if i < 0 || i >= s.h.universe then None
    else if not (kept s.h j i) then None
    else begin
      let expected = mulmod (((c mod p) + p) mod p) (powmod s.h.q i) in
      if expected = s.fingerprint.(j) then Some (i, c) else None
    end
  end

let query s =
  (* Prefer the sparsest (highest) level that verifies. A verified
     singleton carries an exact multiplicity, so in nonnegative mode a
     negative one is proof (to fingerprint confidence) that a deletion
     slipped past the level-0 total check — surface it rather than skip. *)
  let rec go j = if j < 0 then None
    else
      match singleton_at s j with
      | Some (i, c) when s.h.nonneg && c < 0 ->
          raise (Below_zero { index = i; count = c })
      | Some r -> Some r
      | None -> go (j - 1)
  in
  go (s.h.levels - 1)

let is_zero s =
  Array.for_all (fun c -> c = 0) s.count
  && Array.for_all (fun f -> f = 0) s.fingerprint

let size_bits s = 3 * 64 * s.h.levels

(* Content digest of the mutable state, chained through the same SplitMix64
   finalizer as Csr.fingerprint. The hash family is excluded on purpose:
   two samplers rebuilt from the same seed share hashes by construction,
   and recovery equality ("replay reproduced this exact state") is a claim
   about the counters, not the (immutable) hashes. *)
let digest s =
  let mix = Prng.mix64 in
  let h = ref (mix (Int64.of_int s.h.levels)) in
  let fold v = h := mix (Int64.logxor !h (Int64.of_int v)) in
  Array.iter fold s.count;
  Array.iter fold s.index_sum;
  Array.iter fold s.fingerprint;
  !h

module Checksum = Dcs_util.Checksum
module Fault = Dcs_util.Fault
module Metrics = Dcs_obs_core.Metrics

(* Registry funnel (E22 cross-checks these against replay reports): all
   pure event counts, bumped from the single ingest thread, so snapshots
   are byte-identical at every DCS_DOMAINS. *)
let m_appends = Metrics.counter "stream.wal_appends"
let m_offered = Metrics.counter "stream.wal_offered"
let m_applied = Metrics.counter "stream.wal_applied"
let m_duplicates = Metrics.counter "stream.wal_duplicates"
let m_stale = Metrics.counter "stream.wal_stale"
let m_quarantined = Metrics.counter "stream.wal_quarantined"
let m_torn = Metrics.counter "stream.wal_torn"
let m_corrupt = Metrics.counter "stream.wal_corrupt"
let m_gaps = Metrics.counter "stream.wal_gaps"
let m_bad_ops = Metrics.counter "stream.wal_bad_ops"

type op = Insert | Delete

type record = { seq : int; op : op; u : int; v : int; w : float }

let magic = "DCSW1"

let op_char = function Insert -> 'I' | Delete -> 'D'

(* The CRC covers exactly this canonical body; the weight travels as a
   lossless hexadecimal float ("%h"), so decode·encode is the identity on
   the doubles as well as the text. *)
let body r =
  Printf.sprintf "%d %c %d %d %h" r.seq (op_char r.op) r.u r.v r.w

let encode r = Printf.sprintf "%s %08x %s\n" magic (Checksum.crc32 (body r)) (body r)

let decode line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt line ' ' with
  | None -> fail "record: missing fields"
  | Some sp1 -> (
      if String.sub line 0 sp1 <> magic then fail "record: bad magic"
      else
        match String.index_from_opt line (sp1 + 1) ' ' with
        | None -> fail "record: missing body"
        | Some sp2 ->
            let crc = String.sub line (sp1 + 1) (sp2 - sp1 - 1) in
            let b = String.sub line (sp2 + 1) (String.length line - sp2 - 1) in
            (* Canonical-rendering comparison, as in Checksum.unframe: hex
               parsing is case-insensitive, so a bit flip in the CRC field
               itself must not slip through. *)
            if Printf.sprintf "%08x" (Checksum.crc32 b) <> crc then
              fail "record: crc mismatch (expected %s, actual %08x)" crc
                (Checksum.crc32 b)
            else
              (match String.split_on_char ' ' b with
              | [ seq; opf; u; v; w ] -> (
                  match
                    ( int_of_string_opt seq,
                      opf,
                      int_of_string_opt u,
                      int_of_string_opt v,
                      float_of_string_opt w )
                  with
                  | Some seq, ("I" | "D"), Some u, Some v, Some w ->
                      let op = if opf = "I" then Insert else Delete in
                      let r = { seq; op; u; v; w } in
                      if seq < 1 then fail "record: sequence %d < 1" seq
                      else if u < 0 || v < 0 then
                        fail "record: negative vertex"
                      else if not (Float.is_finite w) || w <= 0.0 then
                        fail "record: weight must be positive and finite"
                      else if encode r <> line ^ "\n" then
                        fail "record: non-canonical rendering"
                      else Ok r
                  | _ -> fail "record: unparsable fields")
              | _ -> fail "record: wrong field count"))

(* --- scanning --- *)

type damage =
  | Corrupt of { line : int; offset : int; reason : string }
  | Torn of { offset : int; bytes : int }

type scan = { records : record list; damaged : damage list; units : int }

let scan_string s =
  let len = String.length s in
  let records = ref [] and damaged = ref [] in
  let units = ref 0 in
  let pos = ref 0 and line_no = ref 0 in
  let continue = ref true in
  while !continue do
    match String.index_from_opt s !pos '\n' with
    | Some nl ->
        incr units;
        (match decode (String.sub s !pos (nl - !pos)) with
        | Ok r -> records := r :: !records
        | Error reason ->
            damaged := Corrupt { line = !line_no; offset = !pos; reason } :: !damaged);
        pos := nl + 1;
        incr line_no
    | None ->
        if !pos < len then begin
          incr units;
          damaged := Torn { offset = !pos; bytes = len - !pos } :: !damaged
        end;
        continue := false
  done;
  { records = List.rev !records; damaged = List.rev !damaged; units = !units }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file ~path =
  if not (Sys.file_exists path) then
    Ok { records = []; damaged = []; units = 0 }
  else
    match read_file path with
    | raw -> Ok (scan_string raw)
    | exception Sys_error e -> Error ("wal: " ^ e)

(* --- replay --- *)

type quarantine =
  | Damaged of damage
  | Gap of { seq : int; expected : int }
  | Bad_op of { record : record; reason : string }

type replay_report = {
  offered : int;
  applied : int;
  duplicates : int;
  stale : int;
  quarantined : quarantine list;
  last_seq : int;
}

let pp_quarantine = function
  | Damaged (Corrupt { line; offset; reason }) ->
      Printf.sprintf "corrupt record (line %d, byte offset %d): %s" line offset
        reason
  | Damaged (Torn { offset; bytes }) ->
      Printf.sprintf "torn tail (%d bytes at offset %d)" bytes offset
  | Gap { seq; expected } ->
      Printf.sprintf "gap: seq %d arrived while %d is still missing" seq
        expected
  | Bad_op { record; reason } ->
      Printf.sprintf "rejected op (seq %d): %s" record.seq reason

let replay ~base_seq ~apply scan =
  let applied = ref 0 and duplicates = ref 0 and stale = ref 0 in
  let quarantined = ref [] in
  let expected = ref (base_seq + 1) in
  let gap_found = ref false in
  let ordered = List.stable_sort (fun a b -> compare a.seq b.seq) scan.records in
  List.iter
    (fun r ->
      if !gap_found then
        quarantined := Gap { seq = r.seq; expected = !expected } :: !quarantined
      else if r.seq <= base_seq then incr stale
      else if r.seq < !expected then incr duplicates
      else if r.seq = !expected then begin
        (match apply r with
        | Ok () -> incr applied
        | Error reason ->
            quarantined := Bad_op { record = r; reason } :: !quarantined);
        (* A rejected op still consumes its sequence slot: the writer
           durably assigned it, so later records do not depend on it. *)
        incr expected
      end
      else begin
        gap_found := true;
        quarantined := Gap { seq = r.seq; expected = !expected } :: !quarantined
      end)
    ordered;
  List.iter
    (fun d ->
      (match d with
      | Corrupt _ -> Metrics.inc m_corrupt
      | Torn _ -> Metrics.inc m_torn);
      quarantined := Damaged d :: !quarantined)
    scan.damaged;
  let quarantined = List.rev !quarantined in
  let gaps =
    List.length (List.filter (function Gap _ -> true | _ -> false) quarantined)
  in
  let bad_ops =
    List.length
      (List.filter (function Bad_op _ -> true | _ -> false) quarantined)
  in
  Metrics.inc ~by:scan.units m_offered;
  Metrics.inc ~by:!applied m_applied;
  Metrics.inc ~by:!duplicates m_duplicates;
  Metrics.inc ~by:!stale m_stale;
  Metrics.inc ~by:(List.length quarantined) m_quarantined;
  Metrics.inc ~by:gaps m_gaps;
  Metrics.inc ~by:bad_ops m_bad_ops;
  {
    offered = scan.units;
    applied = !applied;
    duplicates = !duplicates;
    stale = !stale;
    quarantined;
    last_seq = !expected - 1;
  }

(* --- writer --- *)

type writer = { path : string; oc : out_channel; mutable next : int }

let create_writer ?(truncate = false) ~path ~next_seq () =
  if next_seq < 1 then invalid_arg "Wal.create_writer: next_seq must be >= 1";
  let flags =
    [ Open_wronly; Open_creat; Open_binary ]
    @ if truncate then [ Open_trunc ] else [ Open_append ]
  in
  { path; oc = open_out_gen flags 0o644 path; next = next_seq }

let append t op ~u ~v ~w =
  if u < 0 || v < 0 then invalid_arg "Wal.append: negative vertex";
  if not (Float.is_finite w) || w <= 0.0 then
    invalid_arg "Wal.append: weight must be positive and finite";
  let r = { seq = t.next; op; u; v; w } in
  output_string t.oc (encode r);
  (* Flushed whole: a kill between appends leaves only complete records,
     and a kill mid-append tears at the tail — never in the middle. *)
  flush t.oc;
  t.next <- t.next + 1;
  Metrics.inc m_appends;
  r

let next_seq t = t.next
let writer_path t = t.path
let close_writer t = close_out_noerr t.oc

(* --- deterministic damage --- *)

module Adversary = struct
  type injections = {
    dropped : int;
    corrupted : int;
    duplicated : int;
    reordered : int;
  }

  (* Flip one bit of a line, never touching the trailing newline and never
     producing one: damage must stay confined to its own frame so the
     scan-level accounting of the chaos battery stays exact. *)
  let flip_bit f line =
    let payload_bytes = String.length line - 1 in
    let k = Fault.draw_int f (payload_bytes * 8) in
    let i = k / 8 and b = k mod 8 in
    let bytes = Bytes.of_string line in
    let flipped bit = Char.chr (Char.code line.[i] lxor (1 lsl bit)) in
    let c = if flipped b = '\n' then flipped ((b + 1) mod 8) else flipped b in
    Bytes.set bytes i c;
    Bytes.to_string bytes

  let mangle f records =
    let buf = Buffer.create 1024 in
    let dropped = ref 0 and corrupted = ref 0 in
    let duplicated = ref 0 and reordered = ref 0 in
    let delayed = ref None in
    let add = Buffer.add_string buf in
    List.iter
      (fun r ->
        if Fault.drops_message f then incr dropped
        else begin
          let line = encode r in
          let line =
            if Fault.corrupts_message f then begin
              incr corrupted;
              flip_bit f line
            end
            else line
          in
          let dup = Fault.lies f in
          if dup then incr duplicated;
          let delay = Fault.times_out f in
          match !delayed with
          | Some held ->
              (* Flush the held line after this one: the adjacent reorder. *)
              add line;
              if dup then add line;
              add held;
              delayed := None
          | None ->
              if delay && not dup then begin
                incr reordered;
                delayed := Some line
              end
              else begin
                add line;
                if dup then add line
              end
        end)
      records;
    (match !delayed with Some held -> add held | None -> ());
    ( Buffer.contents buf,
      {
        dropped = !dropped;
        corrupted = !corrupted;
        duplicated = !duplicated;
        reordered = !reordered;
      } )

  let tear s ~at =
    if at < 0 then invalid_arg "Wal.Adversary.tear: negative offset";
    String.sub s 0 (min at (String.length s))
end

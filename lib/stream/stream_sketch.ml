module Prng = Dcs_util.Prng
module Checkpoint = Dcs_util.Checkpoint
module Metrics = Dcs_obs_core.Metrics
module Digraph = Dcs_graph.Digraph
module Ugraph = Dcs_graph.Ugraph
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut
module Sketch = Dcs_sketch.Sketch
module Exact_sketch = Dcs_sketch.Exact_sketch
module Imbalance_sketch = Dcs_sketch.Imbalance_sketch

(* stream.* registry funnel. Everything here is a pure count of logical
   events on the (single-threaded) ingest path, so snapshots are
   byte-identical at every DCS_DOMAINS. *)
let m_inserts = Metrics.counter "stream.inserts"
let m_deletes = Metrics.counter "stream.deletes"
let m_rejects = Metrics.counter "stream.rejects"
let m_compactions = Metrics.counter "stream.compactions"
let m_cut_queries = Metrics.counter "stream.cut_queries"
let m_checkpoint_saves = Metrics.counter "stream.checkpoint_saves"
let m_recoveries = Metrics.counter "stream.recoveries"

type refreeze = Rebuild | Delta_buffer of { compact_threshold : int }

type reject =
  | Out_of_range of { u : int; v : int; n : int }
  | Self_loop of int
  | Bad_weight of float
  | Below_zero of { u : int; v : int; have : float; requested : float }

let pp_reject = function
  | Out_of_range { u; v; n } ->
      Printf.sprintf "arc (%d, %d) out of range for n=%d" u v n
  | Self_loop u -> Printf.sprintf "self-loop on vertex %d" u
  | Bad_weight w -> Printf.sprintf "weight %h not positive and finite" w
  | Below_zero { u; v; have; requested } ->
      Printf.sprintf "deleting %h from arc (%d, %d) holding only %h" requested
        u v have

exception Rejected of reject

let () =
  Printexc.register_printer (function
    | Rejected r -> Some ("Stream_sketch.Rejected: " ^ pp_reject r)
    | _ -> None)

(* Support samplers per state: enough independent ℓ₀ copies that a
   for-each seed edge query succeeds with good constant probability. *)
let default_copies = 8

type t = {
  n : int;
  seed : int;
  refreeze : refreeze;
  copies : int;
  mutable delta : Csr.delta;  (* frozen base + unfrozen overlay *)
  mutable frozen : Csr.t option;  (* memoized canonical freeze *)
  imb : float array;  (* out-weight minus in-weight, per vertex *)
  support : L0_sampler.t array;  (* ±1 on arc-presence toggles *)
  mutable applied_seq : int;  (* WAL slots folded in (applied or consumed) *)
  mutable arcs : int;  (* live arcs *)
}

let empty_base n = Csr.of_digraph (Digraph.create n)

let create ?(refreeze = Rebuild) ?(copies = default_copies) ~n ~seed () =
  if n < 1 then invalid_arg "Stream_sketch.create: n must be positive";
  (match refreeze with
  | Delta_buffer { compact_threshold } when compact_threshold < 1 ->
      invalid_arg "Stream_sketch.create: compact_threshold must be positive"
  | _ -> ());
  (* The sampler hash family is a pure function of (seed, n, copies), so a
     recovered state rebuilt from the same triple is sampler-compatible
     with — and, being linear, byte-equal in state to — the lost one. *)
  let rng = Prng.create seed in
  {
    n;
    seed;
    refreeze;
    copies;
    delta = Csr.delta_of (empty_base n);
    frozen = None;
    imb = Array.make n 0.0;
    support =
      L0_sampler.create_family ~nonnegative:true rng ~universe:(n * n)
        ~count:copies;
    applied_seq = 0;
    arcs = 0;
  }

let n t = t.n
let seed t = t.seed
let refreeze_policy t = t.refreeze
let applied_seq t = t.applied_seq
let arcs t = t.arcs
let delta_pairs t = Csr.delta_pairs t.delta
let edge_weight t u v = Csr.delta_weight t.delta u v
let imbalances t = Array.copy t.imb

let compact_now t =
  Metrics.inc m_compactions;
  let base = Csr.compact t.delta in
  t.delta <- Csr.delta_of base;
  t.frozen <- Some base;
  base

let frozen t =
  match t.frozen with
  | Some c -> c
  | None ->
      if Csr.delta_pairs t.delta = 0 then begin
        let base = Csr.delta_base t.delta in
        t.frozen <- Some base;
        base
      end
      else compact_now t

let fingerprint t = Csr.fingerprint (frozen t)

let cut_weight t mem =
  Metrics.inc m_cut_queries;
  (* Hot path: never forces a freeze — one base scan plus O(overlay). *)
  if Csr.delta_pairs t.delta = 0 then Csr.cut_weight (Csr.delta_base t.delta) mem
  else Csr.delta_cut_weight t.delta mem

let cut_value t c =
  if Cut.n c <> t.n then invalid_arg "Stream_sketch.cut_value: size mismatch";
  cut_weight t (Cut.mem c)

let check t ~op ~u ~v ~w =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    Some (Out_of_range { u; v; n = t.n })
  else if u = v then Some (Self_loop u)
  else if not (Float.is_finite w) || w <= 0.0 then Some (Bad_weight w)
  else
    match op with
    | Wal.Insert -> None
    | Wal.Delete ->
        let have = edge_weight t u v in
        if have < w then Some (Below_zero { u; v; have; requested = w })
        else None

(* The one mutation point. Presence toggles drive the support samplers:
   +1 when an arc's weight leaves zero, -1 when it returns exactly to
   zero. With weights whose sums are exact in floating point (integers,
   dyadic rationals — the convention all enforced batteries use), the
   toggle decisions are exact and the sampler state is a linear function
   of the net arc multiset, which is what makes snapshot-restore + replay
   reproduce it byte for byte. *)
let mutate t ~op ~u ~v ~w =
  let before = edge_weight t u v in
  let signed = match op with Wal.Insert -> w | Wal.Delete -> -.w in
  Csr.delta_add t.delta u v signed;
  let after = before +. signed in
  t.imb.(u) <- t.imb.(u) +. signed;
  t.imb.(v) <- t.imb.(v) -. signed;
  let idx = (u * t.n) + v in
  if before = 0.0 && after > 0.0 then begin
    Array.iter (fun s -> L0_sampler.update s idx 1) t.support;
    t.arcs <- t.arcs + 1
  end
  else if before > 0.0 && after = 0.0 then begin
    Array.iter (fun s -> L0_sampler.update s idx (-1)) t.support;
    t.arcs <- t.arcs - 1
  end;
  t.frozen <- None

let apply_unchecked t ~op ~u ~v ~w =
  mutate t ~op ~u ~v ~w;
  (match op with
  | Wal.Insert -> Metrics.inc m_inserts
  | Wal.Delete -> Metrics.inc m_deletes);
  match t.refreeze with
  | Rebuild -> ignore (compact_now t)
  | Delta_buffer { compact_threshold } ->
      (* Forced compaction under memory pressure: the overlay never holds
         more than the threshold's worth of adjusted arcs. *)
      if Csr.delta_pairs t.delta > compact_threshold then
        ignore (compact_now t)

let apply t ~op ~u ~v ~w =
  match check t ~op ~u ~v ~w with
  | Some r ->
      Metrics.inc m_rejects;
      Error (pp_reject r)
  | None ->
      apply_unchecked t ~op ~u ~v ~w;
      Ok ()

let insert t ~u ~v ~w =
  match check t ~op:Wal.Insert ~u ~v ~w with
  | Some r ->
      Metrics.inc m_rejects;
      raise (Rejected r)
  | None -> apply_unchecked t ~op:Wal.Insert ~u ~v ~w

let delete t ~u ~v ~w =
  match check t ~op:Wal.Delete ~u ~v ~w with
  | Some r ->
      Metrics.inc m_rejects;
      raise (Rejected r)
  | None -> apply_unchecked t ~op:Wal.Delete ~u ~v ~w

let sample_arc t =
  let rec go i =
    if i >= t.copies then None
    else
      match L0_sampler.query t.support.(i) with
      | Some (idx, _) -> Some (idx / t.n, idx mod t.n)
      | None -> go (i + 1)
  in
  go 0

(* --- derived sketches: always from the canonical frozen view, so a
   streamed state and a batch build of the same graph hand the identical
   content (and construction history) to the samplers. --- *)

let to_digraph t = Csr.to_digraph (frozen t)

let exact_sketch t = Exact_sketch.create (to_digraph t)

let imbalance_sketch ?c t rng ~eps ~beta =
  Imbalance_sketch.of_imbalances ?c rng ~eps ~beta ~imb:(Array.copy t.imb)
    (Ugraph.of_digraph (to_digraph t))

(* --- state digest --- *)

let digest t =
  let mix = Prng.mix64 in
  let h = ref (mix (Int64.of_int t.applied_seq)) in
  let fold i64 = h := mix (Int64.logxor !h i64) in
  fold (Csr.fingerprint (if Csr.delta_pairs t.delta = 0 then Csr.delta_base t.delta else Csr.compact t.delta));
  Array.iter (fun x -> fold (Int64.bits_of_float x)) t.imb;
  Array.iter (fun s -> fold (L0_sampler.digest s)) t.support;
  fold (Int64.of_int t.arcs);
  !h

(* --- checkpoint-compacted snapshots --- *)

let signature t =
  Printf.sprintf "stream-sketch v1 n=%d seed=%d copies=%d" t.n t.seed t.copies

let encode_edges csr =
  let buf = Buffer.create 4096 in
  for u = 0 to Csr.n csr - 1 do
    Csr.iter_out csr u (fun v w ->
        Buffer.add_string buf (Printf.sprintf "%d %d %h\n" u v w))
  done;
  Buffer.contents buf

let checkpoint t ~path =
  let base = frozen t in
  Checkpoint.save ~path ~signature:(signature t)
    [
      { Checkpoint.index = 0; payload = string_of_int t.applied_seq };
      { Checkpoint.index = 1; payload = encode_edges base };
    ];
  Metrics.inc m_checkpoint_saves

exception Restore_failed of string

let restore_snapshot t ~path =
  if not (Sys.file_exists path) then 0
  else
    match Checkpoint.load ~path ~signature:(signature t) with
    | Error e -> raise (Restore_failed e)
    | Ok [ { Checkpoint.index = 0; payload = seq }; { index = 1; payload = edges } ] ->
        let applied_seq =
          match int_of_string_opt seq with
          | Some s when s >= 0 -> s
          | _ -> raise (Restore_failed "checkpoint: unparsable applied_seq")
        in
        (* Raw mutations: snapshot edges are prior state, not stream
           events — they must not bump the insert counters or trigger a
           compaction per edge. One compaction at the end re-freezes the
           restored content canonically. *)
        String.split_on_char '\n' edges
        |> List.iter (fun line ->
               if line <> "" then
                 match String.split_on_char ' ' line with
                 | [ u; v; w ] -> (
                     match
                       ( int_of_string_opt u,
                         int_of_string_opt v,
                         float_of_string_opt w )
                     with
                     | Some u, Some v, Some w when u >= 0 && u < t.n && v >= 0
                                                   && v < t.n && u <> v
                                                   && Float.is_finite w
                                                   && w > 0.0 ->
                         mutate t ~op:Wal.Insert ~u ~v ~w
                     | _ -> raise (Restore_failed "checkpoint: unparsable edge"))
                 | _ -> raise (Restore_failed "checkpoint: bad edge line"));
        if Csr.delta_pairs t.delta > 0 then ignore (compact_now t);
        t.applied_seq <- applied_seq;
        applied_seq
    | Ok _ -> raise (Restore_failed "checkpoint: unexpected record shape")

type recovery = {
  state : t;
  report : Wal.replay_report;
  snapshot_seq : int;  (* floor restored from the snapshot (0 if none) *)
}

let recover ?refreeze ?copies ~n ~seed ~snapshot ~wal () =
  let t = create ?refreeze ?copies ~n ~seed () in
  match restore_snapshot t ~path:snapshot with
  | exception Restore_failed e -> Error e
  | snapshot_seq -> (
      match Wal.scan_file ~path:wal with
      | Error e -> Error e
      | Ok scan ->
          let report =
            Wal.replay ~base_seq:snapshot_seq
              ~apply:(fun r -> apply t ~op:r.Wal.op ~u:r.Wal.u ~v:r.Wal.v ~w:r.Wal.w)
              scan
          in
          t.applied_seq <- report.Wal.last_seq;
          Metrics.inc m_recoveries;
          Ok { state = t; report; snapshot_seq })

(* --- WAL-backed live ingest --- *)

type journal = {
  state : t;
  mutable writer : Wal.writer;
  snapshot_path : string;
  wal_path : string;
  every : int;
  mutable since_checkpoint : int;
}

let journal_paths ~dir = (Filename.concat dir "snapshot.ckpt", Filename.concat dir "wal.log")

let journal_checkpoint j =
  checkpoint j.state ~path:j.snapshot_path;
  (* The snapshot now covers every logged record: the log is redundant and
     restarts from empty, with the sequence numbering continuing. *)
  Wal.close_writer j.writer;
  j.writer <-
    Wal.create_writer ~truncate:true ~path:j.wal_path
      ~next_seq:(j.state.applied_seq + 1) ();
  j.since_checkpoint <- 0

let open_journal ?refreeze ?copies ?(checkpoint_every = 0) ~dir ~n ~seed () =
  if checkpoint_every < 0 then
    invalid_arg "Stream_sketch.open_journal: negative checkpoint_every";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let snapshot_path, wal_path = journal_paths ~dir in
  match recover ?refreeze ?copies ~n ~seed ~snapshot:snapshot_path ~wal:wal_path () with
  | Error e -> Error e
  | Ok { state; report; _ } ->
      (* Fold the surviving replay into a fresh snapshot and truncate the
         log: a torn or damaged tail must not sit in front of new appends,
         and recovery is the natural compaction point. *)
      let j =
        {
          state;
          writer =
            Wal.create_writer ~truncate:false ~path:wal_path
              ~next_seq:(state.applied_seq + 1) ();
          snapshot_path;
          wal_path;
          every = checkpoint_every;
          since_checkpoint = 0;
        }
      in
      journal_checkpoint j;
      Ok (j, report)

let journal_state j = j.state

let journal_apply j op ~u ~v ~w =
  (* Write-ahead: the record is durable (and its sequence slot consumed)
     before the state mutates, so a kill at any boundary replays cleanly
     and a rejected op is visible in the log's accounting, never lost. *)
  let r = Wal.append j.writer op ~u ~v ~w in
  let result = apply j.state ~op ~u ~v ~w in
  j.state.applied_seq <- r.Wal.seq;
  (match result with
  | Ok () ->
      j.since_checkpoint <- j.since_checkpoint + 1;
      if j.every > 0 && j.since_checkpoint >= j.every then journal_checkpoint j
  | Error _ -> ());
  result

let journal_insert j ~u ~v ~w = journal_apply j Wal.Insert ~u ~v ~w
let journal_delete j ~u ~v ~w = journal_apply j Wal.Delete ~u ~v ~w

let close_journal j = Wal.close_writer j.writer

(** Crash-consistent streaming sketch state over insert/delete edge
    streams.

    A [Stream_sketch.t] maintains, incrementally and in bounded memory,
    everything the static pipeline would build from scratch:

    - the graph itself as a frozen {!Dcs_graph.Csr} base plus an unfrozen
      delta overlay, re-frozen under a configurable {!refreeze} policy
      ([Rebuild] after every mutation, or [Delta_buffer] with a forced
      compaction threshold bounding the overlay under memory pressure);
    - the per-vertex imbalance array of {!Dcs_sketch.Imbalance_sketch},
      updated in O(1) per mutation;
    - a family of nonnegative {!L0_sampler}s over arc-presence indicators
      (±1 on presence toggles), the seed-edge source for for-each
      sketching of the live graph.

    Everything observable is canonical — cut values, fingerprints and
    derived sketches are pure functions of (seed, graph content), never of
    the mutation history that produced it — so a streamed state and a
    batch build of the final graph agree bit for bit (with the repo's
    integer/dyadic weight convention making every float sum exact).

    Durability composes {!Wal} (one flushed record per mutation) with
    {!Dcs_util.Checkpoint}-compacted snapshots: {!recover} restores the
    last snapshot and replays the log's surviving suffix, reproducing the
    exact pre-kill state ({!digest}-verified in the E22 chaos battery) at
    any record-boundary kill, with every damaged/duplicated/reordered
    record accounted for in the {!Wal.replay_report}. The [stream.*]
    registry counters meter the whole layer. *)

type refreeze =
  | Rebuild  (** compact after every mutation: overlay always empty *)
  | Delta_buffer of { compact_threshold : int }
      (** accumulate mutations in the overlay, forcing a compaction
          whenever more than [compact_threshold] arcs are adjusted *)

(** Typed rejection reasons: the streaming analogue of the sampler's
    below-zero guard. Checked {e before} any state mutates. *)
type reject =
  | Out_of_range of { u : int; v : int; n : int }
  | Self_loop of int
  | Bad_weight of float
  | Below_zero of { u : int; v : int; have : float; requested : float }

val pp_reject : reject -> string

exception Rejected of reject

type t

val create : ?refreeze:refreeze -> ?copies:int -> n:int -> seed:int -> unit -> t
(** Empty state on [n] vertices. [seed] determines the sampler hash
    family (a pure function of [(seed, n, copies)], so recovery rebuilds
    a compatible family); [copies] (default 8) is the number of ℓ₀
    support samplers. Default policy is [Rebuild]. *)

val n : t -> int
val seed : t -> int
val refreeze_policy : t -> refreeze
val arcs : t -> int
(** Live arcs (exact, maintained by presence toggles). *)

val delta_pairs : t -> int
(** Arcs currently adjusted in the overlay (0 under [Rebuild]); never
    exceeds a [Delta_buffer] policy's threshold after a mutation
    returns. *)

val applied_seq : t -> int
(** Highest WAL sequence slot folded into this state. *)

val insert : t -> u:int -> v:int -> w:float -> unit
(** Add weight [w > 0] to arc (u, v). Raises {!Rejected}. *)

val delete : t -> u:int -> v:int -> w:float -> unit
(** Subtract [w]; deleting below zero raises
    [Rejected (Below_zero _)] with the held-vs-requested evidence,
    leaving the state untouched. *)

val apply : t -> op:Wal.op -> u:int -> v:int -> w:float -> (unit, string) result
(** {!insert}/{!delete} in result form — the shape {!Wal.replay} wants;
    rejections are reported, metered ([stream.rejects]), and mutate
    nothing. *)

val edge_weight : t -> int -> int -> float
val imbalances : t -> float array
(** Copy of the per-vertex imbalance array (out-weight − in-weight). *)

val cut_weight : t -> (int -> bool) -> float
(** Directed cut value of the live graph. Never forces a re-freeze: one
    scan of the frozen base plus O(overlay) corrections, metered as
    [stream.cut_queries]. Canonical summation order, so the value equals
    the one a fresh freeze would give, bit for bit (exact-sum weights). *)

val cut_value : t -> Dcs_graph.Cut.t -> float

val frozen : t -> Dcs_graph.Csr.t
(** The canonical frozen view of the current content, compacting the
    overlay into a new base first if needed (memoized until the next
    mutation). *)

val fingerprint : t -> int64
(** {!Dcs_graph.Csr.fingerprint} of {!frozen} — the serving layer's cache
    key for the live graph. *)

val to_digraph : t -> Dcs_graph.Digraph.t
(** Canonical thaw of {!frozen}. *)

val sample_arc : t -> (int * int) option
(** An arc from the live support, via the first ℓ₀ copy whose query
    verifies. [None] when the graph is empty (or all copies fail, which
    has probability exponentially small in [copies]). *)

val exact_sketch : t -> Dcs_sketch.Sketch.t
(** Exact graph-valued sketch of the live graph — identical (same
    decisions, same size) to batch-building it on the final graph, which
    is what the E3/E4 streamed-vs-batch reruns enforce. *)

val imbalance_sketch :
  ?c:float -> t -> Dcs_util.Prng.t -> eps:float -> beta:float ->
  Dcs_sketch.Sketch.t
(** For-each sketch via {!Dcs_sketch.Imbalance_sketch.of_imbalances},
    fed by the incrementally-maintained imbalances and the canonical
    projection — bit-identical to a batch build from the same PRNG. *)

val digest : t -> int64
(** One-word digest of the whole sketch state: canonical graph
    fingerprint, imbalances, sampler counters and applied sequence,
    chained through {!Dcs_util.Prng.mix64}. Recovery is correct iff the
    digest equals the uninterrupted run's — the check E22 enforces at
    every record-boundary kill. Does not mutate the state. *)

(** {2 Durability} *)

val checkpoint : t -> path:string -> unit
(** Compact and persist the state (canonical edge list + applied
    sequence) atomically via {!Dcs_util.Checkpoint.save}; metered as
    [stream.checkpoint_saves]. *)

type recovery = {
  state : t;
  report : Wal.replay_report;
  snapshot_seq : int;  (** sequence floor restored from the snapshot *)
}

val recover :
  ?refreeze:refreeze ->
  ?copies:int ->
  n:int ->
  seed:int ->
  snapshot:string ->
  wal:string ->
  unit ->
  (recovery, string) result
(** Rebuild the state: restore the snapshot at [snapshot] (missing file =
    empty state), then {!Wal.replay} the log at [wal] on top. [Error]
    only for an unusable snapshot (its diagnostics carry byte offset and
    expected-vs-actual CRC, via {!Dcs_util.Checkpoint.load}) or an
    unreadable log — damaged log {e contents} are quarantined in the
    report instead. Metered as [stream.recoveries]. *)

(** {2 WAL-backed live ingest}

    A [journal] bundles the state with its write-ahead log: every
    mutation is flushed to the log {e before} it is applied, so a kill at
    any point loses at most the in-flight record, and {!open_journal}
    always recovers the exact surviving state. Snapshots compact the log
    every [checkpoint_every] applied records (plus once at every open, so
    a damaged tail never sits in front of fresh appends). *)

type journal

val open_journal :
  ?refreeze:refreeze ->
  ?copies:int ->
  ?checkpoint_every:int ->
  dir:string ->
  n:int ->
  seed:int ->
  unit ->
  (journal * Wal.replay_report, string) result
(** Open (creating [dir] if needed) and recover whatever state the
    directory holds — [dir/snapshot.ckpt] plus [dir/wal.log]; the report
    says what the log replay found. [checkpoint_every = 0] (default)
    means only open-time snapshots. *)

val journal_state : journal -> t
val journal_insert : journal -> u:int -> v:int -> w:float -> (unit, string) result
val journal_delete : journal -> u:int -> v:int -> w:float -> (unit, string) result
(** Log (write-ahead, flushed whole), then apply. A rejected op stays in
    the log — its sequence slot is consumed and accounted — but mutates
    nothing. *)

val journal_checkpoint : journal -> unit
(** Force a compaction snapshot now and truncate the log. *)

val close_journal : journal -> unit

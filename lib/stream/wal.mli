(** Write-ahead log for edge-mutation streams.

    One record per graph mutation, framed as a single line

    {v DCSW1 <crc32-hex> <seq> <op> <u> <v> <weight-hex>\n v}

    where the CRC-32 ({!Dcs_util.Checksum.crc32}) covers the canonical
    rendering of everything after it, [seq] is a monotone sequence number
    assigned by the writer, [op] is [I] (insert / add weight) or [D]
    (delete / subtract weight), and the weight travels as a lossless
    hexadecimal float. Line framing makes the log self-resynchronizing: a
    damaged record costs exactly the bytes up to the next newline, and a
    write torn mid-record at the tail (the only place a crashed writer can
    tear, since every append is flushed whole) is recognized as such
    rather than as corruption.

    Replay is idempotent and order-insensitive by sequence number:
    duplicated records are counted and skipped, reordered records are
    re-sorted and applied in sequence order, records at or below the
    snapshot's floor are stale, and records that cannot be applied — CRC
    or parse damage, a sequence gap left by a lost record, or an operation
    the state rejects — are {e quarantined with a typed reason, never
    silently dropped}. The books must always balance:

    {v applied + duplicates + stale + |quarantined| = offered v}

    which experiment E22 cross-checks against the [stream.wal_*] counters
    in the {!Dcs_obs_core.Metrics} registry.

    The {!Adversary} submodule drives damage deterministically through
    {!Dcs_util.Fault} policies (drop → lost record, corrupt → bit flip,
    lie → duplicated record, timeout → delayed/reordered record), so the
    chaos batteries are pure functions of (seed, policy, stream). *)

type op = Insert | Delete

type record = { seq : int; op : op; u : int; v : int; w : float }
(** A logged mutation: add ([Insert]) or subtract ([Delete]) weight [w]
    on arc ([u], [v]). [w] must be positive and finite; [seq] >= 1. *)

val encode : record -> string
(** The record's one-line wire form, trailing newline included. *)

val decode : string -> (record, string) result
(** Parse one line (without its newline). Rejects, with a diagnostic
    carrying the expected-vs-actual evidence: bad magic, field-count or
    integer/float parse failures, CRC mismatch, and any non-canonical
    rendering (a record that re-encodes differently than it arrived),
    so [decode] accepts exactly the image of {!encode}. *)

(** {2 Scanning a log} *)

type damage =
  | Corrupt of { line : int; offset : int; reason : string }
      (** Line [line] (0-based) at byte [offset] failed {!decode}. *)
  | Torn of { offset : int; bytes : int }
      (** [bytes] trailing bytes at [offset] lack a newline: a write torn
          mid-record by a crash. *)

type scan = {
  records : record list;  (** intact records, in file order *)
  damaged : damage list;  (** in file order *)
  units : int;  (** framed units seen: lines + torn tail — the [offered]
                    denominator downstream accounting must balance against *)
}

val scan_string : string -> scan
val scan_file : path:string -> (scan, string) result
(** [Error] only for filesystem read failures — damaged contents are
    data, not errors. A missing file scans as empty (a writer that never
    appended is indistinguishable from one that never existed). *)

(** {2 Replay} *)

type quarantine =
  | Damaged of damage
  | Gap of { seq : int; expected : int }
      (** The record's predecessor never arrived (lost or damaged): [seq]
          cannot be applied in order when [expected] is still missing.
          Replay halts at the first hole — later records may depend on the
          missing one — and quarantines everything after it. *)
  | Bad_op of { record : record; reason : string }
      (** The state rejected the operation (vertex out of range, self
          loop, deletion below zero, ...). The sequence slot is consumed;
          replay continues. *)

type replay_report = {
  offered : int;        (** framed units scanned *)
  applied : int;
  duplicates : int;     (** intact re-deliveries of an applied seq *)
  stale : int;          (** seq <= the snapshot floor *)
  quarantined : quarantine list;
  last_seq : int;       (** highest contiguously applied (or consumed)
                            seq; the writer resumes at [last_seq + 1] *)
}

val replay :
  base_seq:int ->
  apply:(record -> (unit, string) result) ->
  scan ->
  replay_report
(** Apply a scan on top of a snapshot holding everything up to and
    including [base_seq]. Records are sorted by [seq] and applied in
    order through [apply]; the report satisfies
    [applied + duplicates + stale + List.length quarantined = offered].
    Bumps the [stream.wal_*] registry counters. *)

val pp_quarantine : quarantine -> string

(** {2 Writing} *)

type writer

val create_writer : ?truncate:bool -> path:string -> next_seq:int -> unit -> writer
(** Open [path] for appending (creating it if missing; [~truncate:true]
    discards existing contents first — used after a compaction made the
    log redundant). The next appended record gets sequence [next_seq]. *)

val append : writer -> op -> u:int -> v:int -> w:float -> record
(** Write one record and flush it whole, so a kill between appends always
    lands on a record boundary; assigns and returns the next sequence.
    Bumps [stream.wal_appends]. *)

val next_seq : writer -> int
val writer_path : writer -> string
val close_writer : writer -> unit

(** {2 Deterministic damage} *)

module Adversary : sig
  type injections = {
    dropped : int;
    corrupted : int;
    duplicated : int;
    reordered : int;
  }

  val mangle : Dcs_util.Fault.t -> record list -> string * injections
  (** Serialize the records while injecting faults drawn from the policy,
      one independent decision chain per record (drop, then corrupt, then
      duplicate, then delay): drops omit the line entirely (a future
      gap), corruption flips one deterministically-chosen bit inside the
      line (never the newline, and never into one, so damage stays
      confined to its own frame), duplication re-emits the line
      immediately, and a delay holds the line back until after its
      successor (adjacent reorder). A zero-rate policy consumes nothing
      and returns the clean serialization. *)

  val tear : string -> at:int -> string
  (** Truncate a serialized log at byte [at] — the torn-write simulator
      E22 sweeps over every byte position of. *)
end

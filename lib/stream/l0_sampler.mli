(** ℓ₀-samplers: linear sketches that recover one coordinate from the
    support of a dynamically-updated vector.

    The sketch maintains, for geometrically-sampled sub-universes
    (level j keeps each index with probability 2^-j), the triple
    (count, index-sum, fingerprint). When a level's surviving sub-vector is
    exactly 1-sparse, the coordinate is (index-sum / count) and the
    fingerprint validates it; some level is 1-sparse with constant
    probability whenever the vector is nonzero. The structure is *linear*:
    sketches of two vectors can be merged by addition, which is what lets
    the AGM connectivity sketch sum vertex sketches over a component and
    obtain a sketch of its outgoing edges (internal edges cancel).

    Supports insert/delete (±1 updates), as in turnstile graph streams. *)

type t

exception Below_zero of { index : int; count : int }
(** A deletion (or merge) drove a multiplicity below zero in a sketch
    created with [~nonnegative:true]. [index] is the coordinate implicated
    ([-1] for a merge, where no single coordinate is to blame) and [count]
    the offending negative total/multiplicity. Raised {e before} the
    sketch mutates, so the state is left unpoisoned. *)

val create : ?nonnegative:bool -> Dcs_util.Prng.t -> universe:int -> t
(** Sketch over vectors indexed by 0..universe-1. The given PRNG seeds the
    hash functions; two sketches can only be merged if they were created
    from the same seed stream position (use [create_family]).

    With [~nonnegative:true] (default [false]) the sketch promises its
    multiplicities never go negative — the mode for support-indicator
    vectors such as edge-presence streams — and deletions that would break
    the promise raise {!Below_zero} instead of silently poisoning the
    linear state. Detection is two-layered: exact at update time whenever
    the level-0 total (which keeps every index) would go negative, and at
    query time when a verified singleton surfaces a negative multiplicity
    that the aggregate total masked. *)

val create_family :
  ?nonnegative:bool -> Dcs_util.Prng.t -> universe:int -> count:int -> t array
(** [count] sketches sharing hash functions (mergeable with one another),
    each with independent level hashes... see [merge]. All sketches in the
    family use the same hashes, so family members are pairwise mergeable. *)

val nonnegative : t -> bool
(** Whether the sketch was created with the nonnegative promise. *)

val update : t -> int -> int -> unit
(** [update s i delta] adds [delta] to coordinate [i]. Raises
    {!Below_zero} (before mutating) when a nonnegative sketch's exact
    level-0 total would go negative. *)

val merge_into : dst:t -> t -> unit
(** Pointwise addition; sketches must come from the same family. On
    nonnegative sketches, raises {!Below_zero} (before mutating [dst])
    when the merged level-0 total would go negative. *)

val copy : t -> t

val query : t -> (int * int) option
(** [Some (i, c)] with high constant probability when the vector is
    nonzero: a support coordinate and its value. [None] when the vector
    appears to be zero or no level is currently 1-sparse. On nonnegative
    sketches, a verified singleton with negative multiplicity raises
    {!Below_zero} — proof a deletion slipped past the update-time total
    check — instead of being returned or skipped. *)

val is_zero : t -> bool
(** True iff every level is empty (exact for the zero vector; a nonzero
    vector is declared zero only on hash collisions that cancel, which the
    fingerprints make vanishingly unlikely). *)

val size_bits : t -> int
(** Honest serialized size: 3 machine words per level. *)

val digest : t -> int64
(** Content digest of the mutable counters (count / index-sum /
    fingerprint per level), chained through {!Dcs_util.Prng.mix64}. Two
    samplers built from the same hash family hold equal state iff their
    digests agree — the recovery check the streaming layer's
    kill-at-any-boundary battery rests on. *)

type t = { mutable bits : int; mutable rounds : int }

let create () = { bits = 0; rounds = 0 }

let send t ~bits =
  if bits < 0 then invalid_arg "Channel.send: negative bits";
  t.bits <- t.bits + bits;
  t.rounds <- t.rounds + 1

let exchange = send

let total_bits t = t.bits
let rounds t = t.rounds

module Fault = Dcs_util.Fault

type lossy = {
  fault : Fault.t;
  first : t;
  retrans : t;
  mutable delivered : int;
  mutable dropped : int;
  mutable corrupted : int;
}

type delivery = Received of string | Dropped

let create_lossy fault =
  {
    fault;
    first = create ();
    retrans = create ();
    delivered = 0;
    dropped = 0;
    corrupted = 0;
  }

let flip_one_bit fault payload =
  let b = Bytes.of_string payload in
  let pos = Fault.draw_int fault (8 * Bytes.length b) in
  let byte = pos / 8 and bit = pos mod 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  Bytes.to_string b

let transmit l ?(retransmission = false) ~bits payload =
  send (if retransmission then l.retrans else l.first) ~bits;
  if Fault.drops_message l.fault then begin
    l.dropped <- l.dropped + 1;
    Dropped
  end
  else begin
    l.delivered <- l.delivered + 1;
    if payload <> "" && Fault.corrupts_message l.fault then begin
      l.corrupted <- l.corrupted + 1;
      Received (flip_one_bit l.fault payload)
    end
    else Received payload
  end

let first_send_bits l = total_bits l.first
let retransmit_bits l = total_bits l.retrans
let deliveries l = l.delivered
let lossy_drops l = l.dropped
let lossy_corruptions l = l.corrupted

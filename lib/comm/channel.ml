module Metrics = Dcs_obs_core.Metrics

(* Registry-backed mirrors of the per-channel meters: every bit recorded on
   any channel instance also lands here, so E18 can cross-check the global
   accounting against the per-instance sums — they must agree exactly. *)
let m_bits = Metrics.counter "channel.bits"
let m_messages = Metrics.counter "channel.messages"
let m_first_send_bits = Metrics.counter "channel.first_send_bits"
let m_retransmit_bits = Metrics.counter "channel.retransmit_bits"
let m_deliveries = Metrics.counter "channel.deliveries"
let m_drops = Metrics.counter "channel.drops"
let m_corruptions = Metrics.counter "channel.corruptions_injected"
let m_gave_up = Metrics.counter "channel.gave_up"

type t = { mutable bits : int; mutable rounds : int }

let create () = { bits = 0; rounds = 0 }

let send t ~bits =
  if bits < 0 then invalid_arg "Channel.send: negative bits";
  t.bits <- t.bits + bits;
  t.rounds <- t.rounds + 1;
  Metrics.inc ~by:bits m_bits;
  Metrics.inc m_messages

let exchange = send

let total_bits t = t.bits
let rounds t = t.rounds

module Fault = Dcs_util.Fault

type lossy = {
  fault : Fault.t;
  first : t;
  retrans : t;
  mutable delivered : int;
  mutable dropped : int;
  mutable corrupted : int;
}

type delivery = Received of string | Dropped

let create_lossy fault =
  {
    fault;
    first = create ();
    retrans = create ();
    delivered = 0;
    dropped = 0;
    corrupted = 0;
  }

let flip_one_bit fault payload =
  let b = Bytes.of_string payload in
  let pos = Fault.draw_int fault (8 * Bytes.length b) in
  let byte = pos / 8 and bit = pos mod 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  Bytes.to_string b

let transmit l ?(retransmission = false) ~bits payload =
  send (if retransmission then l.retrans else l.first) ~bits;
  Metrics.inc ~by:bits
    (if retransmission then m_retransmit_bits else m_first_send_bits);
  if Fault.drops_message l.fault then begin
    l.dropped <- l.dropped + 1;
    Metrics.inc m_drops;
    Dropped
  end
  else begin
    l.delivered <- l.delivered + 1;
    Metrics.inc m_deliveries;
    if payload <> "" && Fault.corrupts_message l.fault then begin
      l.corrupted <- l.corrupted + 1;
      Metrics.inc m_corruptions;
      Received (flip_one_bit l.fault payload)
    end
    else Received payload
  end

type give_up = { transmissions : int; gu_drops : int; gu_corruptions : int }

let transmit_reliable l ?(verify = fun _ -> true) ~max_retransmissions ~bits
    payload =
  if max_retransmissions < 0 then
    invalid_arg "Channel.transmit_reliable: max_retransmissions must be >= 0";
  let rec go attempt drops corruptions =
    if attempt > max_retransmissions then begin
      Metrics.inc m_gave_up;
      Error
        {
          transmissions = max_retransmissions + 1;
          gu_drops = drops;
          gu_corruptions = corruptions;
        }
    end
    else
      match transmit l ~retransmission:(attempt > 0) ~bits payload with
      | Dropped -> go (attempt + 1) (drops + 1) corruptions
      | Received s ->
          if verify s then Ok s else go (attempt + 1) drops (corruptions + 1)
  in
  go 0 0 0

let first_send_bits l = total_bits l.first
let retransmit_bits l = total_bits l.retrans
let deliveries l = l.delivered
let lossy_drops l = l.dropped
let lossy_corruptions l = l.corrupted

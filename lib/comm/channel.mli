(** One-way communication channel with bit metering.

    Every lower-bound reduction in the paper is a one-way protocol: Alice
    encodes her input into a message (a cut sketch, or simulated query
    answers) and Bob decodes. The channel records how many bits crossed so
    experiments can compare the measured message size against the
    information that was provably transferred (the decoded string). *)

type t

val create : unit -> t

val send : t -> bits:int -> unit
(** Record a message of [bits] bits from Alice to Bob. *)

val exchange : t -> bits:int -> unit
(** Record an interactive exchange (used by the Lemma 5.6 query simulation,
    where each local query costs at most 2 bits). *)

val total_bits : t -> int

val rounds : t -> int
(** Number of [send]/[exchange] events. *)

(** {2 Lossy channels}

    A lossy channel is a metered channel over an adversarial medium: each
    transmission may be dropped (the receiver sees nothing) or silently
    corrupted (one bit of the payload is flipped — the receiver only finds
    out if the payload carries its own checksum, cf.
    {!Dcs_graph.Serialize.unframe}). Fault decisions come from a
    {!Dcs_util.Fault.t}, so runs are reproducible; with
    {!Dcs_util.Fault.disabled} every transmission is delivered verbatim and
    the metering is identical to a plain channel.

    First sends and retransmissions are metered on separate counters so
    experiments can report retransmission overhead against the paper's
    first-send lower bounds. *)

type lossy

type delivery =
  | Received of string  (** possibly corrupted — verify the checksum *)
  | Dropped

val create_lossy : Dcs_util.Fault.t -> lossy

val transmit : lossy -> ?retransmission:bool -> bits:int -> string -> delivery
(** [transmit l ~bits payload] meters [bits] (the canonical encoded size of
    the message, checksum included) on the first-send or retransmission
    counter, then subjects [payload] to the fault policy. An empty payload
    can be dropped but never corrupted (there is nothing to flip). *)

val first_send_bits : lossy -> int
val retransmit_bits : lossy -> int

val deliveries : lossy -> int
(** Transmissions that returned [Received _]. *)

val lossy_drops : lossy -> int
val lossy_corruptions : lossy -> int

(** {2 Bounded reliable delivery}

    The retransmission loops layered on {!transmit} (the coordinator's
    sketch deliveries, the serving layer's request frames) each hand-rolled
    their give-up logic — and a loop with no bound would retry a dead link
    forever. {!transmit_reliable} is the canonical bounded loop: first send
    plus at most [max_retransmissions] re-sends, each delivery checked by
    [verify] (give it the CRC check, e.g.
    [fun s -> Result.is_ok (Dcs_util.Checksum.unframe s)]), and giving up
    is a {e typed} outcome carrying the loss accounting — never an
    unbounded spin, never a silent drop. Give-ups are metered on the
    [channel.gave_up] registry counter. *)

type give_up = {
  transmissions : int;        (** sends made: [1 + max_retransmissions] *)
  gu_drops : int;             (** of them, dropped in flight *)
  gu_corruptions : int;       (** of them, delivered but failing [verify] *)
}

val transmit_reliable :
  lossy ->
  ?verify:(string -> bool) ->
  max_retransmissions:int ->
  bits:int ->
  string ->
  (string, give_up) result
(** [transmit_reliable l ~max_retransmissions ~bits payload] transmits
    [payload] (metering [bits] per send, first-send vs retransmission
    counters as in {!transmit}) until a delivery passes [verify] (default:
    accept anything delivered) or [max_retransmissions >= 0] re-sends have
    been spent. [Ok] carries the delivered (possibly corrupted — [verify]
    accepted it) payload; [Error] means the bounded loop gave up. With
    {!Dcs_util.Fault.disabled} the first send always succeeds. *)

(** One-way communication channel with bit metering.

    Every lower-bound reduction in the paper is a one-way protocol: Alice
    encodes her input into a message (a cut sketch, or simulated query
    answers) and Bob decodes. The channel records how many bits crossed so
    experiments can compare the measured message size against the
    information that was provably transferred (the decoded string). *)

type t

val create : unit -> t

val send : t -> bits:int -> unit
(** Record a message of [bits] bits from Alice to Bob. *)

val exchange : t -> bits:int -> unit
(** Record an interactive exchange (used by the Lemma 5.6 query simulation,
    where each local query costs at most 2 bits). *)

val total_bits : t -> int

val rounds : t -> int
(** Number of [send]/[exchange] events. *)

(** {2 Lossy channels}

    A lossy channel is a metered channel over an adversarial medium: each
    transmission may be dropped (the receiver sees nothing) or silently
    corrupted (one bit of the payload is flipped — the receiver only finds
    out if the payload carries its own checksum, cf.
    {!Dcs_graph.Serialize.unframe}). Fault decisions come from a
    {!Dcs_util.Fault.t}, so runs are reproducible; with
    {!Dcs_util.Fault.disabled} every transmission is delivered verbatim and
    the metering is identical to a plain channel.

    First sends and retransmissions are metered on separate counters so
    experiments can report retransmission overhead against the paper's
    first-send lower bounds. *)

type lossy

type delivery =
  | Received of string  (** possibly corrupted — verify the checksum *)
  | Dropped

val create_lossy : Dcs_util.Fault.t -> lossy

val transmit : lossy -> ?retransmission:bool -> bits:int -> string -> delivery
(** [transmit l ~bits payload] meters [bits] (the canonical encoded size of
    the message, checksum included) on the first-send or retransmission
    counter, then subjects [payload] to the fault policy. An empty payload
    can be dropped but never corrupted (there is nothing to flip). *)

val first_send_bits : lossy -> int
val retransmit_bits : lossy -> int

val deliveries : lossy -> int
(** Transmissions that returned [Received _]. *)

val lossy_drops : lossy -> int
val lossy_corruptions : lossy -> int

(* Rendering for the global metrics registry: text tables via Dcs.Table,
   machine-readable JSON snapshots, and the span hot-path table. *)

module Metrics = Dcs_obs_core.Metrics
module Trace = Dcs_obs_core.Trace
module Table = Dcs_util.Table
module Stats = Dcs_util.Stats

let env_var = "DCS_METRICS"

(* --- text rendering --- *)

let scalar_rows snap =
  List.filter_map
    (function
      | name, Metrics.Counter_v v -> Some [ name; "counter"; Table.fint v ]
      | name, Metrics.Gauge_v v -> Some [ name; "gauge"; Table.fint v ]
      | _, Metrics.Histogram_v _ -> None)
    snap

let histogram_rows snap =
  (* One row per nonzero bucket, bars scaled per histogram with the shared
     Stats bucket renderer. *)
  List.concat_map
    (function
      | name, Metrics.Histogram_v h when h.Metrics.count > 0 ->
          let nonzero =
            List.filter
              (fun (_, c) -> c > 0)
              (Array.to_list (Array.mapi (fun b c -> (b, c)) h.Metrics.bucket_counts))
          in
          let bars =
            Stats.bucket_bars (Array.of_list (List.map snd nonzero))
          in
          let buckets = Array.length h.Metrics.bucket_counts in
          let mean = float_of_int h.Metrics.sum /. float_of_int h.Metrics.count in
          List.mapi
            (fun i (b, c) ->
              [
                (if i = 0 then
                   Printf.sprintf "%s (n=%d, sum=%d, mean=%.1f)" name
                     h.Metrics.count h.Metrics.sum mean
                 else "");
                Metrics.bucket_label ~buckets b;
                Table.fint c;
                bars.(i);
              ])
            nonzero
      | _ -> [])
    snap

let render () =
  let snap = Metrics.snapshot () in
  let buf = Buffer.create 1024 in
  let scalars = scalar_rows snap in
  let t = Table.create ~title:"metrics registry" ~columns:[ "metric"; "kind"; "value" ] in
  if scalars = [] then Table.add_row t [ "(none)"; ""; "" ]
  else List.iter (Table.add_row t) scalars;
  Buffer.add_string buf (Table.render t);
  let hrows = histogram_rows snap in
  if hrows <> [] then begin
    Buffer.add_char buf '\n';
    let h =
      Table.create ~title:"histograms (exponential buckets)"
        ~columns:[ "histogram"; "bucket"; "count"; "" ]
    in
    List.iter (Table.add_row h) hrows;
    Buffer.add_string buf (Table.render h)
  end;
  Buffer.contents buf

let print () = print_string (render ())

let span_table ?(top = 12) () =
  let t =
    Table.create ~title:"hot paths: top spans by self time (wall clock)"
      ~columns:[ "span"; "count"; "total ms"; "self ms"; "self %" ]
  in
  let stats = Trace.stats () in
  let total_self = List.fold_left (fun a s -> a +. s.Trace.self_s) 0.0 stats in
  let rec take n = function
    | s :: tl when n > 0 ->
        Table.add_row t
          [
            s.Trace.name;
            Table.fint s.Trace.count;
            Table.ffloat ~digits:2 (1e3 *. s.Trace.total_s);
            Table.ffloat ~digits:2 (1e3 *. s.Trace.self_s);
            Table.fpct
              (if total_self > 0.0 then s.Trace.self_s /. total_self else 0.0);
          ];
        take (n - 1) tl
    | _ -> ()
  in
  take top stats;
  t

(* --- JSON snapshot (metrics only: no wall clock, deterministic) --- *)

let snapshot_json () =
  let esc = Trace.json_escape in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\n\"%s\":" (esc name));
      match v with
      | Metrics.Counter_v c ->
          Buffer.add_string buf (Printf.sprintf "{\"type\":\"counter\",\"value\":%d}" c)
      | Metrics.Gauge_v g ->
          Buffer.add_string buf (Printf.sprintf "{\"type\":\"gauge\",\"value\":%d}" g)
      | Metrics.Histogram_v h ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"histogram\",\"count\":%d,\"sum\":%d,\"buckets\":[%s]}"
               h.Metrics.count h.Metrics.sum
               (String.concat ","
                  (Array.to_list (Array.map string_of_int h.Metrics.bucket_counts)))))
    (Metrics.snapshot ());
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* DCS_METRICS=1 prints the text report to stderr at the end of a run;
   DCS_METRICS=<path> writes the deterministic JSON snapshot there (what
   bin/check_determinism.sh diffs across DCS_DOMAINS). *)
let dump_env () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some raw -> (
      match String.trim raw with
      | "" | "0" -> ()
      | "1" | "stderr" -> prerr_string (render ())
      | path ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              output_string oc (snapshot_json ())))

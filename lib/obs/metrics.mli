(** Per-domain sharded metrics: counters, gauges, exponential-bucket
    histograms.

    Metrics are process-global and named; {!counter}/{!gauge}/{!histogram}
    are get-or-create, so any layer can reach for ["oracle.edge_queries"]
    without plumbing a handle through every call site. Each metric is
    sharded over a fixed number of atomic cells indexed by the bumping
    domain, so increments from a {!Dcs_util.Pool} fan-out are never lost
    and rarely contend; a {!snapshot} merges the shards and sorts by name,
    making the result a pure function of the logical events — bit-identical
    for every [DCS_DOMAINS] setting as long as the instrumented run itself
    is deterministic. Snapshots carry counts only, never wall-clock, so
    they belong in determinism gates ([bin/check_determinism.sh] diffs
    them); timing lives in {!Trace}. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get-or-create. Raises [Invalid_argument] if the name is already
    registered as a different kind. *)

val gauge : string -> gauge

val histogram : ?buckets:int -> string -> histogram
(** Exponential buckets (default 24): bucket 0 counts values <= 0, bucket
    [i >= 1] counts values in [2^(i-1), 2^i), the last bucket absorbs the
    overflow. Raises [Invalid_argument] on fewer than 2 buckets, or if the
    name exists with a different bucket count. *)

val inc : ?by:int -> counter -> unit
(** Add [by] (default 1, must be >= 0) to the calling domain's shard. *)

val set : gauge -> int -> unit
(** Plain store (single cell, no sharding): last set wins. Only
    deterministic when the sets themselves are; typically written once from
    the main domain (configuration, sizes). Bypasses attempt journals. *)

val add : gauge -> int -> unit
(** Sharded signed accumulate (e.g. a high-water delta). *)

val observe : histogram -> int -> unit
(** Count the value into its bucket and accumulate it into the sum cell. *)

val in_attempt : (unit -> 'a) -> 'a
(** [in_attempt f] journals every increment the {e calling domain} makes
    during [f] and applies the journal only if [f] returns normally; on an
    exception the journal is dropped and the exception re-raised. This is
    how {!Dcs_util.Pool.run_supervised} makes a crashed-and-retried task
    count exactly once in the merged snapshot. Nests: an inner commit folds
    into the enclosing journal, so an outer discard rolls back the whole
    subtree. Gauge {!set}s and increments made by domains spawned inside
    [f] bypass the journal. *)

(** {2 Reading} *)

val counter_value : counter -> int
(** Merged (all-shard) value. *)

val gauge_value : gauge -> int

type histogram_value = {
  count : int;             (** total observations *)
  sum : int;               (** sum of observed values *)
  bucket_counts : int array;
}

val histogram_value : histogram -> histogram_value

val bucket_lo : int -> int
(** Inclusive left edge of bucket [b] ([0] for the zero bucket). *)

val bucket_label : buckets:int -> int -> string
(** Human label for bucket [b], e.g. ["0"], ["4-7"], ["4194304+"]. *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of histogram_value

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every cell of every metric; registrations survive. Meant for
    experiment harnesses that want per-run deltas from a clean slate. *)

(** Rendering for the observability registry.

    {!Metrics} collects, {!Trace} times; this module turns both into
    output: aligned text tables (via {!Dcs_util.Table}), a deterministic
    machine-readable JSON snapshot of the metrics registry, and the span
    hot-path table the E18 profiling experiment prints.

    The JSON snapshot contains counts only (no wall clock, sorted names),
    so it is byte-identical across [DCS_DOMAINS] whenever the instrumented
    run is deterministic — [bin/check_determinism.sh] relies on this. *)

val env_var : string
(** ["DCS_METRICS"]. [1] (or [stderr]) prints the text report to stderr at
    the end of a bench/dcut run; any other non-empty value is a path the
    JSON snapshot is written to. *)

val render : unit -> string
(** Text tables: one for counters and gauges, one for histogram buckets
    (bars rendered with {!Dcs_util.Stats.bucket_bars}). *)

val print : unit -> unit
(** [render] to stdout. *)

val span_table : ?top:int -> unit -> Dcs_util.Table.t
(** Top spans by self time from {!Trace.stats} (default 12 rows). Wall
    clock: for humans, never for determinism diffs. *)

val snapshot_json : unit -> string
(** The metrics registry as JSON, sorted by name:
    [{"name":{"type":"counter","value":n}, ...}]. *)

val dump_env : unit -> unit
(** Honor [DCS_METRICS] (see {!env_var}); no-op when unset. Called by the
    bench harness and [dcut] at the end of a run. *)

(* Per-domain sharded metrics with a deterministic merge.

   Every cell is an [int Atomic.t]; a bump lands in the shard indexed by the
   bumping domain's id, so concurrent increments from a Pool fan-out never
   contend on one cache line and never lose updates. A snapshot sums the
   shards per cell and sorts metrics by name, so the merged view is a pure
   function of the multiset of logical events — independent of scheduling
   and of DCS_DOMAINS. Counts only, no wall clock: snapshots belong in
   determinism gates. *)

let shard_count = 16 (* power of two: domain ids are masked in *)

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(* Histogram layout: [buckets] exponential buckets followed by one sum cell.
   Bucket 0 holds values <= 0; bucket i (i >= 1) holds [2^(i-1), 2^i), with
   the last bucket absorbing the overflow. *)
type t = {
  id : int;
  name : string;
  kind : kind;
  buckets : int; (* 0 unless kind = Histogram *)
  width : int; (* cells per shard *)
  cells : int Atomic.t array array; (* shard -> cell *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let by_id : (int, t) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let next_id = ref 0

type counter = t
type gauge = t
type histogram = t

let default_buckets = 24

let make ~name ~kind ~buckets =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m ->
      if m.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %S already registered as a %s" name
             (kind_name m.kind));
      if kind = Histogram && m.buckets <> buckets then
        invalid_arg
          (Printf.sprintf "Metrics: histogram %S already has %d buckets" name
             m.buckets);
      m
  | None ->
      let width = match kind with Histogram -> buckets + 1 | _ -> 1 in
      let m =
        {
          id = !next_id;
          name;
          kind;
          buckets;
          width;
          cells =
            Array.init shard_count (fun _ ->
                Array.init width (fun _ -> Atomic.make 0));
        }
      in
      incr next_id;
      Hashtbl.replace registry name m;
      Hashtbl.replace by_id m.id m;
      m

let counter name = make ~name ~kind:Counter ~buckets:0
let gauge name = make ~name ~kind:Gauge ~buckets:0

let histogram ?(buckets = default_buckets) name =
  if buckets < 2 then invalid_arg "Metrics.histogram: need >= 2 buckets";
  make ~name ~kind:Histogram ~buckets

let shard_of_domain () = (Domain.self () :> int) land (shard_count - 1)

(* --- attempt transactions ---

   A supervised task attempt (Pool.run_supervised) may crash or overrun its
   deadline and be re-executed; if its increments landed directly, a
   crashed-and-retried task would count twice. [in_attempt] buffers the
   calling domain's increments in a domain-local journal and applies them
   only when the attempt returns — a discarded attempt leaves no trace, so
   a retried task counts exactly once in the merged snapshot. Gauge [set]s
   bypass the journal (there is no meaningful delta to replay). Increments
   made by domains the attempt itself spawns are not buffered. *)

type journal = (int, int array) Hashtbl.t

let txn_key : journal option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let bump m cell delta =
  match !(Domain.DLS.get txn_key) with
  | Some j ->
      let deltas =
        match Hashtbl.find_opt j m.id with
        | Some d -> d
        | None ->
            let d = Array.make m.width 0 in
            Hashtbl.replace j m.id d;
            d
      in
      deltas.(cell) <- deltas.(cell) + delta
  | None ->
      ignore (Atomic.fetch_and_add m.cells.(shard_of_domain ()).(cell) delta)

let commit (j : journal) =
  let shard = shard_of_domain () in
  Hashtbl.iter
    (fun id deltas ->
      let m = Hashtbl.find by_id id in
      Array.iteri
        (fun cell d ->
          if d <> 0 then ignore (Atomic.fetch_and_add m.cells.(shard).(cell) d))
        deltas)
    j

let in_attempt f =
  let slot = Domain.DLS.get txn_key in
  let saved = !slot in
  let j : journal = Hashtbl.create 16 in
  slot := Some j;
  match f () with
  | v ->
      slot := saved;
      (* Nested attempts fold into their parent so an outer discard still
         rolls the whole subtree back. *)
      (match saved with
      | None -> commit j
      | Some outer ->
          Hashtbl.iter
            (fun id deltas ->
              match Hashtbl.find_opt outer id with
              | Some d -> Array.iteri (fun c x -> d.(c) <- d.(c) + x) deltas
              | None -> Hashtbl.replace outer id (Array.copy deltas))
            j);
      v
  | exception e ->
      slot := saved;
      raise e

(* --- bumps --- *)

let inc ?(by = 1) m =
  if by < 0 then invalid_arg "Metrics.inc: counters are monotone";
  if by > 0 then bump m 0 by

let set m v =
  (* last-set-wins on the domain's own shard would not merge deterministically;
     a gauge is a single cell written in place, outside any journal. *)
  Atomic.set m.cells.(0).(0) v

let add m delta = bump m 0 delta

let bucket_of m v =
  if v <= 0 then 0
  else begin
    let rec floor_log2 acc v = if v <= 1 then acc else floor_log2 (acc + 1) (v lsr 1) in
    min (m.buckets - 1) (1 + floor_log2 0 v)
  end

let observe m v =
  bump m (bucket_of m v) 1;
  bump m m.buckets v

(* --- reading --- *)

let cell_total m cell =
  Array.fold_left (fun acc shard -> acc + Atomic.get shard.(cell)) 0 m.cells

let counter_value m = cell_total m 0
let gauge_value m = cell_total m 0

type histogram_value = { count : int; sum : int; bucket_counts : int array }

let histogram_value m =
  let bucket_counts = Array.init m.buckets (fun b -> cell_total m b) in
  {
    count = Array.fold_left ( + ) 0 bucket_counts;
    sum = cell_total m m.buckets;
    bucket_counts;
  }

(* Left edge of bucket [b] (inclusive); bucket 0 is the zero bucket. *)
let bucket_lo b = if b <= 0 then 0 else 1 lsl (b - 1)

let bucket_label ~buckets b =
  if b = 0 then "0"
  else if b = buckets - 1 then Printf.sprintf "%d+" (bucket_lo b)
  else Printf.sprintf "%d-%d" (bucket_lo b) ((1 lsl b) - 1)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of histogram_value

type snapshot = (string * value) list

let all_metrics () =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) @@ fun () ->
  Hashtbl.fold (fun _ m acc -> m :: acc) registry []

let snapshot () : snapshot =
  all_metrics ()
  |> List.map (fun m ->
         let v =
           match m.kind with
           | Counter -> Counter_v (counter_value m)
           | Gauge -> Gauge_v (gauge_value m)
           | Histogram -> Histogram_v (histogram_value m)
         in
         (m.name, v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  List.iter
    (fun m ->
      Array.iter (fun shard -> Array.iter (fun c -> Atomic.set c 0) shard)
        m.cells)
    (all_metrics ())

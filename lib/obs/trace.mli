(** Lightweight span tracing with Chrome trace-event export.

    A span brackets a region of interest ({!with_span}); while tracing is
    {e off} — the default — a span is a single atomic load and a closure
    call, cheap enough to leave in encode/decode hot paths. While on, each
    span records its wall-clock duration into a per-domain aggregation
    table (merged by {!stats}: count, total, and self time = total minus
    time spent in child spans), and, when the [DCS_TRACE] environment
    variable names a file, a complete Chrome trace event. Load the file at
    [chrome://tracing] or [https://ui.perfetto.dev].

    Tracing is wall-clock by nature, so nothing here feeds
    {!Metrics.snapshot}: determinism gates diff metrics, never traces.

    Aggregation happens per domain with no locking on the hot path; call
    {!stats}/{!write_chrome} only at quiescent points (after pool joins),
    as the benches do. *)

val env_var : string
(** ["DCS_TRACE"]. Setting it to a path enables tracing for the whole
    process and writes the Chrome trace there at exit. *)

val enabled : unit -> bool

val enable : unit -> unit
(** Turn span aggregation on programmatically (E18 does this to build its
    hot-path table without requiring the env var). Chrome events are still
    only written when [DCS_TRACE] is set. *)

val disable : unit -> unit

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. Exception-safe: the span is
    closed (and charged to its parent) however [f] exits. [args] become the
    Chrome event's [args] object. *)

type stat = {
  name : string;
  count : int;
  total_s : float;  (** total wall-clock seconds inside this span *)
  self_s : float;   (** total minus time inside child spans *)
}

val stats : unit -> stat list
(** Merged across domains, sorted by self time (descending). *)

val reset : unit -> unit
(** Drop all aggregated stats and buffered events. *)

val export_path : string option
(** The [DCS_TRACE] value at startup, if any. *)

val write_chrome : out_channel -> unit
(** Dump buffered events as Chrome trace JSON (only buffered when
    [DCS_TRACE] is set). *)

val json_escape : string -> string
(** JSON string-body escaping (shared with {!Report}'s emitters). *)

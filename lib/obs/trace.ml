(* Lightweight spans with Chrome trace-event export.

   Disabled (the default) a span is one atomic load and a closure call —
   cheap enough to leave in encode/decode hot paths. Enabled, each span
   records wall-clock duration into a per-domain aggregation table (count,
   total, child time — self time is total minus children) and, when
   DCS_TRACE names a file, appends a complete ("ph":"X") Chrome trace
   event. Wall clock never reaches Metrics snapshots: timing is reported
   only here. *)

let env_var = "DCS_TRACE"

let active = Atomic.make false

(* Events are exported with timestamps relative to module load so the
   Chrome timeline starts near zero. *)
let t0 = Unix.gettimeofday ()

let export_path =
  match Sys.getenv_opt env_var with
  | Some p when String.trim p <> "" -> Some (String.trim p)
  | _ -> None

let enabled () = Atomic.get active
let enable () = Atomic.set active true
let disable () = Atomic.set active false

type event = {
  ev_name : string;
  ev_ts : float; (* seconds since t0 *)
  ev_dur : float; (* seconds *)
  ev_tid : int;
  ev_args : (string * string) list;
}

type srec = { mutable count : int; mutable total : float; mutable child : float }

type frame = { f_name : string; f_start : float; mutable f_child : float }

(* One state per domain that ever opened a span while tracing was on; all
   states are registered globally so [stats]/[write_chrome] can merge them
   after the pool joins (merging while worker domains are still tracing is
   racy — callers aggregate at quiescent points). *)
type dstate = {
  tid : int;
  mutable stack : frame list;
  table : (string, srec) Hashtbl.t;
  mutable events : event list; (* newest first *)
}

let reg_lock = Mutex.create ()
let states : dstate list ref = ref []

let dstate_key : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          tid = (Domain.self () :> int);
          stack = [];
          table = Hashtbl.create 32;
          events = [];
        }
      in
      Mutex.lock reg_lock;
      states := st :: !states;
      Mutex.unlock reg_lock;
      st)

let record st name start dur ~child args =
  let r =
    match Hashtbl.find_opt st.table name with
    | Some r -> r
    | None ->
        let r = { count = 0; total = 0.0; child = 0.0 } in
        Hashtbl.replace st.table name r;
        r
  in
  r.count <- r.count + 1;
  r.total <- r.total +. dur;
  r.child <- r.child +. child;
  if export_path <> None then
    st.events <-
      { ev_name = name; ev_ts = start -. t0; ev_dur = dur; ev_tid = st.tid;
        ev_args = args }
      :: st.events

let with_span ?(args = []) name f =
  if not (Atomic.get active) then f ()
  else begin
    let st = Domain.DLS.get dstate_key in
    let fr = { f_name = name; f_start = Unix.gettimeofday (); f_child = 0.0 } in
    st.stack <- fr :: st.stack;
    let finish () =
      let now = Unix.gettimeofday () in
      let dur = now -. fr.f_start in
      (match st.stack with
      | top :: rest when top == fr -> st.stack <- rest
      | _ -> st.stack <- List.filter (fun g -> g != fr) st.stack);
      record st name fr.f_start dur ~child:fr.f_child args;
      match st.stack with
      | parent :: _ -> parent.f_child <- parent.f_child +. dur
      | [] -> ()
    in
    Fun.protect ~finally:finish f
  end

type stat = { name : string; count : int; total_s : float; self_s : float }

let all_states () =
  Mutex.lock reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_lock) @@ fun () -> !states

let stats () =
  let merged : (string, srec) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun st ->
      Hashtbl.iter
        (fun name (r : srec) ->
          match Hashtbl.find_opt merged name with
          | Some m ->
              m.count <- m.count + r.count;
              m.total <- m.total +. r.total;
              m.child <- m.child +. r.child
          | None ->
              Hashtbl.replace merged name
                { count = r.count; total = r.total; child = r.child })
        st.table)
    (all_states ());
  Hashtbl.fold
    (fun name (r : srec) acc ->
      { name; count = r.count; total_s = r.total;
        self_s = Float.max 0.0 (r.total -. r.child) }
      :: acc)
    merged []
  |> List.sort (fun a b ->
         match compare b.self_s a.self_s with
         | 0 -> String.compare a.name b.name
         | c -> c)

let reset () =
  List.iter
    (fun st ->
      Hashtbl.reset st.table;
      st.events <- [])
    (all_states ())

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_chrome oc =
  let events =
    List.concat_map (fun st -> st.events) (all_states ())
    |> List.sort (fun a b -> compare a.ev_ts b.ev_ts)
  in
  output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
        (json_escape e.ev_name) (e.ev_ts *. 1e6) (e.ev_dur *. 1e6) e.ev_tid
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
              e.ev_args)))
    events;
  output_string oc "\n]}\n"

(* DCS_TRACE=<path> turns tracing on for the whole process and dumps the
   Chrome file at exit. *)
let () =
  match export_path with
  | None -> ()
  | Some path ->
      enable ();
      at_exit (fun () ->
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              write_chrome oc))

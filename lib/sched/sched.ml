(* DAG experiment scheduler with a content-addressed artifact store.
   See sched.mli for the model and the determinism contract. *)

module Metrics = Dcs_obs_core.Metrics
module Trace = Dcs_obs_core.Trace
module Prng = Dcs_util.Prng
module Pool = Dcs_util.Pool
module Checkpoint = Dcs_util.Checkpoint
module Checksum = Dcs_util.Checksum

let c_dag_runs = Metrics.counter "sched.dag_runs"
let c_offered = Metrics.counter "sched.stages_offered"
let c_hits = Metrics.counter "sched.cache_hits"
let c_runs = Metrics.counter "sched.stage_runs"

module Store = struct
  let c_puts = Metrics.counter "sched.store_puts"
  let c_spills = Metrics.counter "sched.store_spills"
  let c_mem_hits = Metrics.counter "sched.store_mem_hits"
  let c_disk_hits = Metrics.counter "sched.store_disk_hits"
  let c_misses = Metrics.counter "sched.store_misses"
  let c_evictions = Metrics.counter "sched.store_evictions"
  let c_corrupt = Metrics.counter "sched.store_corrupt_rejected"

  type entry = { bytes : string; mutable tick : int }

  type t = {
    tbl : (string, entry) Hashtbl.t;
    mutable clock : int;
    mutable bytes_in_mem : int;
    cap : int;
    dir : string option;
  }

  let rec mkdir_p d =
    if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
    else begin
      mkdir_p (Filename.dirname d);
      try Sys.mkdir d 0o777
      with Sys_error _ when Sys.file_exists d -> ()
    end

  let create ?(mem_capacity_bytes = 256 * 1024 * 1024) ?dir () =
    if mem_capacity_bytes < 0 then
      invalid_arg "Sched.Store.create: negative memory capacity";
    Option.iter mkdir_p dir;
    { tbl = Hashtbl.create 64; clock = 0; bytes_in_mem = 0;
      cap = mem_capacity_bytes; dir }

  (* Chained SplitMix64 finalizer over the bytes (8 bytes per step, the
     tail and the length folded in last) plus the payload's CRC-32: 96
     bits rendered as 24 hex chars, filename-safe. The same mixer every
     other fingerprint in the library chains ([Prng.mix64]). *)
  let content_hash s =
    let len = String.length s in
    let h = ref 0x9e3779b97f4a7c15L in
    let i = ref 0 in
    while !i + 8 <= len do
      h := Prng.mix64 (Int64.logxor !h (String.get_int64_le s !i));
      i := !i + 8
    done;
    let tail = ref 0L in
    let shift = ref 0 in
    while !i < len do
      tail :=
        Int64.logor !tail
          (Int64.shift_left (Int64.of_int (Char.code s.[!i])) !shift);
      shift := !shift + 8;
      incr i
    done;
    h := Prng.mix64 (Int64.logxor !h !tail);
    h := Prng.mix64 (Int64.logxor !h (Int64.of_int len));
    Printf.sprintf "%016Lx%08x" !h (Checksum.crc32 s)

  let action_key ~name ~version ~fingerprint ~inputs =
    let buf = Buffer.create 128 in
    let field s = Buffer.add_string buf s; Buffer.add_char buf '\x00' in
    field name;
    field version;
    field (Printf.sprintf "%016Lx" fingerprint);
    List.iter field inputs;
    content_hash (Buffer.contents buf)

  let touch t e =
    t.clock <- t.clock + 1;
    e.tick <- t.clock

  (* Drop least-recently-used entries until the memory tier fits; the
     most recent entry always survives, even when it alone exceeds the
     capacity. *)
  let evict t =
    while t.bytes_in_mem > t.cap && Hashtbl.length t.tbl > 1 do
      let victim = ref None in
      Hashtbl.iter
        (fun k e ->
          match !victim with
          | Some (_, ve) when ve.tick <= e.tick -> ()
          | _ -> victim := Some (k, e))
        t.tbl;
      match !victim with
      | None -> ()
      | Some (k, e) ->
        Hashtbl.remove t.tbl k;
        t.bytes_in_mem <- t.bytes_in_mem - String.length e.bytes;
        Metrics.inc c_evictions
    done

  let artifact_path t key =
    match t.dir with
    | None -> invalid_arg "Sched.Store.artifact_path: store has no disk tier"
    | Some d -> Filename.concat d (key ^ ".art")

  let insert t key bytes =
    let e = { bytes; tick = 0 } in
    touch t e;
    Hashtbl.add t.tbl key e;
    t.bytes_in_mem <- t.bytes_in_mem + String.length bytes;
    evict t

  let put t key bytes =
    Metrics.inc c_puts;
    match Hashtbl.find_opt t.tbl key with
    | Some e -> touch t e
    | None ->
      (match t.dir with
       | Some _ ->
         Checkpoint.save ~path:(artifact_path t key) ~signature:key
           [ { Checkpoint.index = 0; payload = bytes } ];
         Metrics.inc c_spills
       | None -> ());
      insert t key bytes

  let find t key =
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      touch t e;
      Metrics.inc c_mem_hits;
      Some e.bytes
    | None ->
      (match t.dir with
       | None ->
         Metrics.inc c_misses;
         None
       | Some _ ->
         let path = artifact_path t key in
         if not (Sys.file_exists path) then begin
           Metrics.inc c_misses;
           None
         end
         else begin
           match Checkpoint.load ~path ~signature:key with
           | Ok [ { Checkpoint.index = 0; payload } ] ->
             Metrics.inc c_disk_hits;
             insert t key payload;
             Some payload
           | Ok _ | Error _ ->
             (* Damaged, truncated, torn or foreign: reject, recompute.
                The fresh put repairs the file. *)
             Metrics.inc c_corrupt;
             None
         end)

  let entries t = Hashtbl.length t.tbl
  let mem_bytes t = t.bytes_in_mem
  let dir t = t.dir
end

type 'a codec = { encode : 'a -> string; decode : string -> 'a option }

let marshal_codec () =
  { encode = (fun v -> Marshal.to_string v []);
    decode =
      (fun s ->
        match Marshal.from_string s 0 with
        | v -> Some v
        | exception _ -> None) }

let string_codec = { encode = (fun s -> s); decode = (fun s -> Some s) }

type mode = Pooled | Serial

type result_rec = {
  r_bytes : string;
  r_hash : string;
  r_key : string;
  r_cached : bool;
}

type boxed = {
  b_id : int;
  b_name : string;
  b_version : string;
  b_fp : int64;
  b_mode : mode;
  b_deps : int array;
  b_run : unit -> string;
  mutable b_result : result_rec option;
}

type t = {
  dag_id : int;
  dag_store : Store.t;
  mutable nodes_rev : boxed list;
  mutable n_nodes : int;
  identities : (string * string * int64, unit) Hashtbl.t;
  mutable dag_ran : bool;
}

type 'a node = {
  nd_dag : int;
  nd_name : string;
  nd_codec : 'a codec;
  nd_boxed : boxed;
  mutable nd_memo : 'a option;
}

type packed = { p_dag : int; p_id : int }

let dag_counter = ref 0

let create ?store () =
  let dag_store = match store with Some s -> s | None -> Store.create () in
  incr dag_counter;
  { dag_id = !dag_counter; dag_store; nodes_rev = []; n_nodes = 0;
    identities = Hashtbl.create 64; dag_ran = false }

let store dag = dag.dag_store
let size dag = dag.n_nodes
let dep node = { p_dag = node.nd_dag; p_id = node.nd_boxed.b_id }

let stage dag ~name ?(version = "v1") ?(fingerprint = 0L) ?(mode = Pooled)
    ~codec ~deps thunk =
  if dag.dag_ran then invalid_arg "Sched.stage: DAG has already run";
  if name = "" then invalid_arg "Sched.stage: empty stage name";
  let identity = (name, version, fingerprint) in
  if Hashtbl.mem dag.identities identity then
    invalid_arg
      (Printf.sprintf
         "Sched.stage: duplicate stage %S (version %S) — share the node \
          instead of redeclaring it"
         name version);
  Hashtbl.add dag.identities identity ();
  let b_deps =
    Array.of_list
      (List.map
         (fun p ->
           if p.p_dag <> dag.dag_id then
             invalid_arg
               (Printf.sprintf
                  "Sched.stage: %S depends on a node from a different DAG"
                  name);
           p.p_id)
         deps)
  in
  let boxed =
    { b_id = dag.n_nodes; b_name = name; b_version = version;
      b_fp = fingerprint; b_mode = mode; b_deps;
      b_run = (fun () -> codec.encode (thunk ())); b_result = None }
  in
  dag.nodes_rev <- boxed :: dag.nodes_rev;
  dag.n_nodes <- dag.n_nodes + 1;
  { nd_dag = dag.dag_id; nd_name = name; nd_codec = codec;
    nd_boxed = boxed; nd_memo = None }

let check_dag fname dag node =
  if node.nd_dag <> dag.dag_id then
    invalid_arg (fname ^ ": node belongs to a different DAG")

let value dag node =
  check_dag "Sched.value" dag node;
  match node.nd_memo with
  | Some v -> v
  | None ->
    (match node.nd_boxed.b_result with
     | None ->
       failwith
         (Printf.sprintf
            "Sched.value: stage %S has not been computed — declare it in \
             deps, or run the DAG first"
            node.nd_name)
     | Some r ->
       (match node.nd_codec.decode r.r_bytes with
        | Some v ->
          node.nd_memo <- Some v;
          v
        | None ->
          failwith
            (Printf.sprintf
               "Sched.value: artifact of stage %S does not decode"
               node.nd_name)))

let result_of fname dag node =
  check_dag fname dag node;
  match node.nd_boxed.b_result with
  | Some r -> r
  | None ->
    failwith
      (Printf.sprintf "%s: stage %S has not been computed" fname node.nd_name)

let from_cache dag node = (result_of "Sched.from_cache" dag node).r_cached
let artifact_bytes dag node = (result_of "Sched.artifact_bytes" dag node).r_bytes
let key_of dag node = (result_of "Sched.key_of" dag node).r_key

type report = {
  stages : int;
  offered : int;
  hits : int;
  ran : int;
  pooled_ran : int;
  serial_ran : int;
  levels : int;
}

let run ?domains dag =
  if dag.dag_ran then invalid_arg "Sched.run: DAG has already run";
  dag.dag_ran <- true;
  Metrics.inc c_dag_runs;
  let nodes = Array.of_list (List.rev dag.nodes_rev) in
  let n = Array.length nodes in
  (* Declaration order is a topological order (deps must pre-exist);
     level = longest path from a source, so a level's members have all
     their inputs completed and are mutually independent. *)
  let level = Array.make n 0 in
  Array.iteri
    (fun i b ->
      level.(i) <-
        1 + Array.fold_left (fun acc d -> max acc level.(d)) (-1) b.b_deps)
    nodes;
  let max_level = Array.fold_left max (-1) level in
  let offered = ref 0 and hits = ref 0 and ran_count = ref 0 in
  let pooled_ran = ref 0 and serial_ran = ref 0 in
  let key_of_boxed b =
    let inputs =
      Array.to_list
        (Array.map
           (fun d ->
             match nodes.(d).b_result with
             | Some r -> r.r_hash
             | None -> assert false)
           b.b_deps)
    in
    Store.action_key ~name:b.b_name ~version:b.b_version ~fingerprint:b.b_fp
      ~inputs
  in
  let complete ~cached b key bytes =
    if cached then begin
      Metrics.inc c_hits;
      incr hits
    end
    else begin
      Metrics.inc c_runs;
      incr ran_count;
      Store.put dag.dag_store key bytes
    end;
    b.b_result <-
      Some { r_bytes = bytes; r_hash = Store.content_hash bytes;
             r_key = key; r_cached = cached }
  in
  Trace.with_span "sched.run" (fun () ->
      for l = 0 to max_level do
        let members = ref [] in
        for i = n - 1 downto 0 do
          if level.(i) = l then members := i :: !members
        done;
        (* Probe the store for the whole level first, then run only the
           misses: pooled members fan out together, serial members follow
           one by one in this domain once the pool has joined. *)
        let pending =
          List.filter_map
            (fun i ->
              let b = nodes.(i) in
              let key = key_of_boxed b in
              Metrics.inc c_offered;
              incr offered;
              match Store.find dag.dag_store key with
              | Some bytes ->
                complete ~cached:true b key bytes;
                None
              | None -> Some (b, key))
            !members
        in
        let pooled = List.filter (fun (b, _) -> b.b_mode = Pooled) pending in
        let serial = List.filter (fun (b, _) -> b.b_mode = Serial) pending in
        (match pooled with
         | [] -> ()
         | _ ->
           let arr = Array.of_list pooled in
           let results, _pool_report =
             Pool.run_supervised_batched ?domains ~arena:(fun () -> ())
               ~rng:(Prng.create 0x5ced) ~n:(Array.length arr)
               (fun () ctx ->
                 let b, _ = arr.(ctx.Pool.index) in
                 Trace.with_span ("sched.stage:" ^ b.b_name) b.b_run)
           in
           Array.iteri
             (fun p bytes ->
               let b, key = arr.(p) in
               complete ~cached:false b key bytes;
               incr pooled_ran)
             results);
        List.iter
          (fun (b, key) ->
            let bytes = Trace.with_span ("sched.stage:" ^ b.b_name) b.b_run in
            complete ~cached:false b key bytes;
            incr serial_ran)
          serial
      done);
  { stages = n; offered = !offered; hits = !hits; ran = !ran_count;
    pooled_ran = !pooled_ran; serial_ran = !serial_ran;
    levels = max_level + 1 }

(** DAG experiment scheduler with content-addressed artifact caching.

    Experiments declare typed {e stages} (generate-graph → freeze → sketch
    → decode → report) as vertices of a dependency DAG with explicit data
    edges; {!run} executes the DAG level by level (declaration order is a
    topological order by construction — a stage can only depend on nodes
    that already exist), fanning each level's independent stages across
    domains through {!Dcs_util.Pool.run_supervised_batched}, and memoizes
    every stage output in a content-addressed {!Store}.

    A stage's cache key is a digest over (stage name, code version tag,
    input artifact hashes, PRNG fingerprint) — see {!Store.action_key} —
    so a stage re-runs exactly when its identity, its code version, the
    {e bytes} of any input artifact, or its randomness changes, and two
    experiments that declare the same prefix (same instances, same freeze)
    share one computation.

    Determinism contract: a stage function must be a pure function of its
    declared dependencies (plus its own PRNG, rebuilt from a seed inside
    the thunk so re-execution after a crash replays the same stream), must
    never print to stdout (reports render from {!value} after {!run}; a
    cached warm run is then byte-identical to a cold one), and must not
    read undeclared stage outputs. Under that contract artifacts, values
    and the resulting report bytes are bit-identical for every
    [DCS_DOMAINS] setting and every cache state (cold, warm, spilled,
    damaged-and-recomputed).

    Everything is metered into {!Dcs_obs_core.Metrics}: the scheduler
    maintains [sched.stages_offered = sched.stage_runs + sched.cache_hits]
    as a structural invariant (E23 enforces it against the registry), and
    the store meters its tiers separately ([sched.store_mem_hits],
    [sched.store_disk_hits], [sched.store_spills], [sched.store_evictions],
    [sched.store_corrupt_rejected], [sched.store_misses]). *)

(** {2 Content-addressed artifact store}

    Two tiers: an in-memory LRU of raw artifact bytes (capacity in bytes,
    least-recently-used entry evicted first) and an optional write-through
    disk tier. With [dir] set, every {!put} also persists the artifact
    through {!Dcs_util.Checkpoint.save} — an atomic temp-file+rename write
    inside a CRC-32 frame, signature-bound to the artifact key — so a
    cache populated by one process warms the next, torn writes are never
    visible, and any bit flip or truncation of a spilled artifact is
    rejected at load ({!find} returns [None] and the stage recomputes;
    damage can never produce a wrong cache hit). *)
module Store : sig
  type t

  val create : ?mem_capacity_bytes:int -> ?dir:string -> unit -> t
  (** [mem_capacity_bytes] defaults to 256 MiB. [dir] (created if missing)
      enables the write-through disk tier. The store is used from the
      scheduling domain only; it is not itself thread-safe. *)

  val content_hash : string -> string
  (** Hex digest of artifact bytes (chained {!Dcs_util.Prng.mix64} over
      the bytes plus a CRC-32): the {e content address} used as the input
      hash of every dependent stage's key. *)

  val action_key :
    name:string -> version:string -> fingerprint:int64 ->
    inputs:string list -> string
  (** The cache key of one stage execution: a digest over the stage name,
      its code version tag, its PRNG fingerprint and the content hashes of
      its inputs, in order. Filename-safe hex. *)

  val find : t -> string -> string option
  (** Memory tier first (refreshes recency), then disk; a disk hit is
      promoted into memory. A damaged disk artifact (CRC/length/signature
      failure) counts into [sched.store_corrupt_rejected] and returns
      [None] — never stale or torn bytes. *)

  val put : t -> string -> string -> unit
  (** Insert (idempotent on an existing key). Writes through to disk when
      the store has a [dir] — recomputing a stage over a damaged artifact
      repairs the file — then evicts least-recently-used entries until the
      memory tier fits its capacity. *)

  val entries : t -> int
  val mem_bytes : t -> int
  val dir : t -> string option

  val artifact_path : t -> string -> string
  (** Where a key's artifact lives on disk ([Invalid_argument] without a
      [dir]). Exposed for the damage suites, which flip bits in it. *)
end

(** {2 Typed stages} *)

type 'a codec = {
  encode : 'a -> string;
  decode : string -> 'a option;  (** [None] on any undecodable input *)
}

val marshal_codec : unit -> 'a codec
(** [Marshal]-based codec for plain-data artifacts (graphs, instances,
    stat records — no closures, no custom blocks beyond Bigarray).
    Corruption of artifacts at rest is caught by the store's CRC frame
    before bytes ever reach [decode]; the [decode] side additionally maps
    any [Marshal] failure to [None] as defense in depth. *)

val string_codec : string codec
(** Identity codec for stages whose natural artifact is already bytes. *)

type t
(** A DAG under construction (then executed at most once by {!run}). *)

type 'a node
(** Handle to one stage's typed output. *)

type packed
(** A type-erased dependency edge (see {!dep}). *)

type mode =
  | Pooled  (** default: fanned across domains with the level's peers *)
  | Serial
      (** run alone in the scheduling domain after the level's pooled
          stages have joined — for stages that measure wall clock, drive
          their own [Pool] fan-outs at explicit domain counts, or probe
          global metric deltas that concurrent stages would pollute *)

val create : ?store:Store.t -> unit -> t
(** Fresh DAG. Without [store], a private in-memory store is created. *)

val store : t -> Store.t
val size : t -> int

val dep : 'a node -> packed

val stage :
  t ->
  name:string ->
  ?version:string ->
  ?fingerprint:int64 ->
  ?mode:mode ->
  codec:'a codec ->
  deps:packed list ->
  (unit -> 'a) ->
  'a node
(** Declares one stage. [name]+[version] (default ["v1"])+[fingerprint]
    (default [0L]; pass {!Dcs_util.Prng.fingerprint} of the stage's seed
    stream when it draws randomness) must be unique within the DAG —
    redeclaration raises [Invalid_argument], so two call sites that want
    to share a stage must share the node (the bench pipelines memoize
    their constructors). The thunk reads dependency values with {!value};
    every node it reads must appear in [deps], or scheduling and cache
    keys are wrong (reading an undeclared same-level output fails the
    stage deterministically). *)

val value : t -> 'a node -> 'a
(** The stage's decoded output: inside a thunk for declared dependencies,
    or anywhere after {!run}. Decodes once and memoizes. Fails if the
    stage has not been computed yet or its artifact does not decode. *)

val from_cache : t -> 'a node -> bool
(** After {!run}: whether the output came out of the store rather than a
    fresh execution. *)

val artifact_bytes : t -> 'a node -> string
(** After {!run}: the raw encoded artifact (for byte-identity tests). *)

val key_of : t -> 'a node -> string
(** After {!run}: the stage's cache key (for the damage suites). *)

type report = {
  stages : int;   (** vertices in the DAG *)
  offered : int;  (** stages considered ([= stages]) *)
  hits : int;     (** outputs served from the store *)
  ran : int;      (** stages executed ([offered = hits + ran]) *)
  pooled_ran : int;
  serial_ran : int;
  levels : int;   (** wavefronts executed *)
}

val run : ?domains:int -> t -> report
(** Executes the DAG: stages are grouped into levels by longest path from
    a source; each level first probes the store for every member's key,
    then runs the missing [Pooled] members across [domains] (default
    [Pool.domain_count ()], i.e. [DCS_DOMAINS]) under the supervised
    batched pool (crash isolation + deterministic re-execution), then the
    missing [Serial] members one by one in the calling domain. Completed
    outputs are {!Store.put} before the next level's keys are derived.
    Runs at most once per DAG ([Invalid_argument] on a second call). *)

(** Deterministic open-loop synthetic traffic for the serving layer.

    A trace is a sequence of cut-query requests with nondecreasing virtual
    arrival ticks, generated from a single {!Dcs_util.Prng} stream — the
    same seed always yields the same trace, byte for byte, so a served run
    is as replayable as any other experiment in this repo. Open-loop means
    arrivals never wait for the server: a slow or degraded server faces the
    same offered load, which is what makes overload (and the admission
    control that answers it) observable at all.

    The load shape has the three knobs a serving benchmark needs:

    - {b hot-key skew}: a request targets one of [hot_keys] hot graphs with
      probability [hot_fraction], a uniformly random cold graph otherwise —
      the regime a fingerprint-keyed sketch cache is built for;
    - {b bursts}: every [burst_every] ticks the arrival rate multiplies by
      [burst_factor] for [burst_len] ticks (inter-arrival gaps divide), the
      overload battery for admission control;
    - {b deadlines}: every request carries a per-request completion budget
      in ticks. *)

type config = {
  keys : int;          (** distinct graph keys addressable by the trace *)
  hot_keys : int;      (** size of the hot set (keys [0 .. hot_keys-1]) *)
  hot_fraction : float;(** probability a request targets the hot set *)
  mean_gap : int;      (** steady-state mean inter-arrival gap, ticks *)
  burst_every : int;   (** tick period of burst onsets; 0 disables bursts *)
  burst_len : int;     (** burst duration, ticks *)
  burst_factor : int;  (** arrival-rate multiplier inside a burst *)
  deadline : int;      (** per-request completion budget, ticks *)
}

val default : config
(** 64 keys, 8 hot at 95%, mean gap 8, a 10x burst of 250 ticks every
    2000, deadline 4000. *)

val validate : config -> unit
(** [Invalid_argument] unless [1 <= hot_keys <= keys],
    [hot_fraction] is in [0, 1] (and [hot_keys < keys] when it is < 1),
    [mean_gap >= 1], [burst_factor >= 1], [burst_every >= 0],
    [burst_len >= 0] and [deadline >= 1]. *)

type request = {
  seq : int;       (** position in the trace: 0, 1, ... *)
  arrival : int;   (** arrival tick; nondecreasing along the trace *)
  key : int;       (** graph key in [0, keys) *)
  cut_seed : int;  (** seed deriving the queried cut of that graph *)
  deadline : int;  (** ticks allotted from arrival to completion *)
}

val in_burst : config -> int -> bool
(** Whether a tick falls inside a burst window. *)

val generate : Dcs_util.Prng.t -> config -> n:int -> request array
(** [generate rng cfg ~n] draws an [n]-request trace from a fork of [rng]
    (advancing [rng] once): gaps are uniform on [0, 2 * gap_mean] (so the
    configured mean is exact in expectation), where [gap_mean] is
    [mean_gap] outside bursts and [max 1 (mean_gap / burst_factor)]
    inside. *)

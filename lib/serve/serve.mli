(** [dcutd]'s engine: a long-lived, overload-tolerant cut-query serving
    layer with admission control and graceful degradation.

    The server owns a catalog of frozen {!Dcs_graph.Csr} graphs and answers
    batched cut-value queries against them. Time is {e virtual} — a tick
    counter advanced by configured per-operation costs — so throughput,
    latency and every admission decision are pure functions of (trace,
    config, seed): byte-identical at every [DCS_DOMAINS] setting, which is
    what lets the determinism gate diff a million-request serving run.
    Wall clock never enters a result.

    {b The cardinal rule: rejected ≠ dropped.} Every offered request gets
    exactly one response — an answer, or a {e typed} rejection saying who
    refused it and why. [run] enforces structurally that
    [answered + shed + deadline_rejections = offered], and the same
    accounting is mirrored in the [serve.*] metrics registry.

    The life of a request:

    + {b wire}: requests arriving on the same tick travel in one CRC-framed
      message over a lossy {!Dcs_comm.Channel}, delivered by the bounded
      {!Dcs_comm.Channel.transmit_reliable} loop — a frame that exhausts its
      retransmissions rejects its whole batch with the give-up accounting
      attached;
    + {b admission}: a token bucket ({!Dcs_util.Token_bucket}) rate-limits
      at the arrival tick, then a bounded FIFO queue admits or sheds per
      the configured {!shed_policy};
    + {b service}: batches are pulled from the queue and executed on
      {!Dcs_util.Pool.run_supervised_batched}. The sketch cache — keyed by
      {!Dcs_graph.Csr.fingerprint} — is consulted in the control plane; a
      miss charges the sketch (re)build cost. Oracle timeouts (seeded
      {!Dcs_util.Fault}) are retried with capped jittered exponential
      backoff ({!Dcs_util.Retry.with_jittered_backoff}), backoff ticks
      charged to that request's completion time;
    + {b degradation}: a circuit breaker watches the fault rate and queue
      depth over sliding windows; when either trips, the server switches to
      a degraded mode — coarser sketch, wider [eps], cheaper ticks, no
      oracle — and every degraded answer {e says so} and still lands within
      its advertised [eps]. Recovery needs a streak of healthy windows
      (hysteresis), so the breaker cannot flap on one good batch;
    + {b deadlines}: a request past its deadline — whether it expired in the
      queue or finished too late — gets a typed [Deadline_exceeded] with its
      lateness, never a silent drop. *)

(** Who gets shed when an admission-control limit is hit. *)
type shed_policy =
  | Reject_newest  (** shed the arriving request (default) *)
  | Reject_oldest  (** shed the head of the queue to admit the arrival *)

type overload_cause =
  | Queue_full    (** the bounded admission queue was at [queue_depth] *)
  | Rate_limited  (** the token bucket was empty at the arrival tick *)
  | Wire_give_up of Dcs_comm.Channel.give_up
      (** the request's frame exhausted [max_retransmissions] *)

type rejection =
  | Overloaded of overload_cause
      (** shed by admission control, never executed *)
  | Deadline_exceeded of { lateness : int }
      (** completed (or expired) [lateness] ticks past the deadline *)

type reply = {
  value : float;    (** quantized cut value *)
  eps : float;      (** advertised accuracy: |value - exact| <= eps * exact *)
  degraded : bool;  (** served in degraded mode (or oracle-exhausted) *)
  latency : int;    (** completion tick - arrival tick *)
  cache_hit : bool; (** sketch cache hit (no rebuild charged) *)
}

type response = Answered of reply | Rejected of rejection

(** Circuit-breaker thresholds. The breaker trips — entering degraded
    mode — when a [window]-request sliding window's oracle fault rate
    reaches [trip_fault_rate], or the queue depth reaches [trip_queue].
    It recovers only after [recovery_windows] {e consecutive} healthy
    windows (fault rate at most half the trip rate and queue at most half
    [trip_queue]) — the hysteresis that keeps one clean batch from
    flapping the breaker open and shut. *)
type breaker_config = {
  window : int;
  trip_fault_rate : float;
  trip_queue : int;
  recovery_windows : int;
}

type config = {
  queue_depth : int;        (** admission queue bound ([DCS_QUEUE_DEPTH]) *)
  shed_policy : shed_policy;(** who is shed on overflow ([DCS_SHED_POLICY]) *)
  batch : int;              (** max requests pulled per service batch *)
  pool_threshold : int;     (** batches at least this big fan out on
                                {!Dcs_util.Pool.run_supervised_batched};
                                smaller ones execute inline on the control
                                domain (bit-identical either way — slots
                                are pure functions of the trace seq) *)
  bucket_capacity : int;    (** token-bucket burst capacity, tokens *)
  rate_num : int;           (** bucket refill: [rate_num / rate_den] ... *)
  rate_den : int;           (** ... tokens per tick *)
  eps_full : float;         (** advertised accuracy at full fidelity *)
  eps_degraded : float;     (** advertised accuracy in degraded mode *)
  cost_full : int;          (** ticks per full-fidelity evaluation *)
  cost_degraded : int;      (** ticks per degraded evaluation *)
  cost_build : int;         (** ticks to (re)build a cache-missed sketch *)
  batch_overhead : int;     (** ticks per service batch (dispatch cost) *)
  cache_capacity : int;     (** sketch-cache entries before LRU eviction *)
  retry_budget : int;       (** oracle attempts per request, >= 1 *)
  backoff_base : int;       (** jittered-backoff base, ticks *)
  backoff_cap : int;        (** jittered-backoff cap, ticks *)
  max_retransmissions : int;(** wire re-sends before a frame gives up *)
  breaker : breaker_config;
  oracle : Dcs_util.Fault.policy;  (** timeout injection on the oracle *)
  wire : Dcs_util.Fault.policy;    (** drop/corrupt injection on frames *)
}

val default_config : config
(** Fault-free, calm-capacity defaults: queue 512 / [Reject_newest],
    batch 32 (pool threshold 8), bucket 256 at 1/2 token per tick, eps
    0.05 full / 0.25
    degraded, costs 6/2/12 + overhead 2, cache 16, retry budget 4 with
    backoff 1..16, 4 retransmissions, breaker (64, 0.5, 384, 3). *)

val queue_depth_env : string
(** ["DCS_QUEUE_DEPTH"]. *)

val shed_policy_env : string
(** ["DCS_SHED_POLICY"]: ["newest"] or ["oldest"] (case-insensitive). *)

val config_of_env : config -> config
(** Overlay the two admission knobs from the environment, when set and
    non-empty: [DCS_QUEUE_DEPTH] (positive integer) and [DCS_SHED_POLICY].
    Anything unparseable raises [Invalid_argument]. *)

val validate : config -> unit
(** [Invalid_argument] on nonsensical bounds (non-positive depths, batch,
    budgets, rates or window; [eps] outside (0, 1]; [eps_degraded <
    eps_full]; negative costs or retransmissions). *)

type t

val create : ?domains:int -> config -> graphs:Dcs_graph.Csr.t array -> rng:Dcs_util.Prng.t -> t
(** [create cfg ~graphs ~rng] builds a server over a non-empty catalog;
    requests address graphs by index (the trace's [key]) and the sketch
    cache is keyed by each graph's {!Dcs_graph.Csr.fingerprint}, computed
    once here. [rng] seeds (by forking, in a fixed order) the oracle and
    wire fault injectors, the retry jitter, and the pool master — equal
    seeds give byte-identical servers. [domains] overrides the pool's
    domain count (default: [DCS_DOMAINS] / recommended). *)

val degraded : t -> bool
(** Whether the breaker is currently open (serving degraded). *)

val update_graph : t -> key:int -> Dcs_graph.Csr.t -> unit
(** Swap catalog slot [key] for a re-frozen graph — the live-mutation hook
    the streaming layer ([Stream_sketch]) calls after ingesting edge
    updates. The slot's fingerprint is recomputed, and when the content
    actually changed the stale sketch-cache entry (keyed by the {e old}
    fingerprint) is removed, metered as [serve.cache_invalidations] — so a
    cached sketch can never answer for content it no longer matches, while
    an update that leaves the graph bit-identical keeps the cache warm.
    Control-plane only; [Invalid_argument] if [key] is outside the
    catalog. *)

val run : t -> Traffic.request array -> response array
(** Serve a trace to completion; slot [i] responds to request [i]. The
    trace must have nondecreasing arrivals, keys within the catalog, and
    arrivals no earlier than the server's clock (the clock persists across
    [run]s — the server is long-lived). Deterministic: equal (server seed,
    config, trace) give byte-identical response arrays at every
    [DCS_DOMAINS]. *)

(** Cumulative accounting since [create]. Invariants, [run]-enforced:
    [offered = answered + shed + deadline_rejections] and
    [shed = queue_full + rate_limited + wire_rejections]. *)
type stats = {
  offered : int;
  answered : int;            (** of them, [degraded_answers] were degraded *)
  degraded_answers : int;
  shed : int;                (** typed admission rejections, never executed *)
  queue_full : int;
  rate_limited : int;
  wire_rejections : int;     (** requests on frames that gave up *)
  deadline_rejections : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_invalidations : int; (** stale entries removed by [update_graph] *)
  oracle_retries : int;      (** oracle attempts beyond each first *)
  oracle_exhausted : int;    (** retry budgets spent: degraded fallback *)
  backoff_ticks : int;
  breaker_trips : int;
  breaker_recoveries : int;
  batches : int;
  queue_peak : int;
  clock : int;               (** current virtual tick *)
}

val stats : t -> stats

module Prng = Dcs_util.Prng

type config = {
  keys : int;
  hot_keys : int;
  hot_fraction : float;
  mean_gap : int;
  burst_every : int;
  burst_len : int;
  burst_factor : int;
  deadline : int;
}

let default =
  {
    keys = 64;
    hot_keys = 8;
    hot_fraction = 0.95;
    mean_gap = 8;
    burst_every = 2000;
    burst_len = 250;
    burst_factor = 10;
    deadline = 4000;
  }

let validate cfg =
  if cfg.keys < 1 then invalid_arg "Traffic: keys must be >= 1";
  if cfg.hot_keys < 1 || cfg.hot_keys > cfg.keys then
    invalid_arg "Traffic: hot_keys must be in [1, keys]";
  if not (cfg.hot_fraction >= 0. && cfg.hot_fraction <= 1.) then
    invalid_arg "Traffic: hot_fraction must be in [0, 1]";
  if cfg.hot_fraction < 1. && cfg.hot_keys >= cfg.keys then
    invalid_arg "Traffic: hot_fraction < 1 needs a nonempty cold set";
  if cfg.mean_gap < 1 then invalid_arg "Traffic: mean_gap must be >= 1";
  if cfg.burst_factor < 1 then invalid_arg "Traffic: burst_factor must be >= 1";
  if cfg.burst_every < 0 then invalid_arg "Traffic: burst_every must be >= 0";
  if cfg.burst_len < 0 then invalid_arg "Traffic: burst_len must be >= 0";
  if cfg.deadline < 1 then invalid_arg "Traffic: deadline must be >= 1"

type request = {
  seq : int;
  arrival : int;
  key : int;
  cut_seed : int;
  deadline : int;
}

let in_burst cfg tick =
  cfg.burst_every > 0 && cfg.burst_len > 0 && tick mod cfg.burst_every < cfg.burst_len

(* Seeds must stay positive ints on every platform; 30 bits is plenty of
   distinct cuts and keeps traces identical across word sizes. *)
let seed_bound = 1 lsl 30

let generate rng cfg ~n =
  validate cfg;
  if n < 0 then invalid_arg "Traffic.generate: n must be >= 0";
  let r = Prng.fork rng in
  let clock = ref 0 in
  Array.init n (fun seq ->
      let gap_mean =
        if in_burst cfg !clock then max 1 (cfg.mean_gap / cfg.burst_factor)
        else cfg.mean_gap
      in
      clock := !clock + Prng.int r ((2 * gap_mean) + 1);
      let key =
        if cfg.hot_fraction >= 1. || Prng.bernoulli r cfg.hot_fraction then
          Prng.int r cfg.hot_keys
        else cfg.hot_keys + Prng.int r (cfg.keys - cfg.hot_keys)
      in
      let cut_seed = Prng.int r seed_bound in
      { seq; arrival = !clock; key; cut_seed; deadline = cfg.deadline })

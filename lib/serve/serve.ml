module Prng = Dcs_util.Prng
module Fault = Dcs_util.Fault
module Retry = Dcs_util.Retry
module Pool = Dcs_util.Pool
module Token_bucket = Dcs_util.Token_bucket
module Checksum = Dcs_util.Checksum
module Metrics = Dcs_obs_core.Metrics
module Csr = Dcs_graph.Csr
module Cut = Dcs_graph.Cut
module Channel = Dcs_comm.Channel

type shed_policy = Reject_newest | Reject_oldest

type overload_cause =
  | Queue_full
  | Rate_limited
  | Wire_give_up of Channel.give_up

type rejection =
  | Overloaded of overload_cause
  | Deadline_exceeded of { lateness : int }

type reply = {
  value : float;
  eps : float;
  degraded : bool;
  latency : int;
  cache_hit : bool;
}

type response = Answered of reply | Rejected of rejection

type breaker_config = {
  window : int;
  trip_fault_rate : float;
  trip_queue : int;
  recovery_windows : int;
}

type config = {
  queue_depth : int;
  shed_policy : shed_policy;
  batch : int;
  pool_threshold : int;
  bucket_capacity : int;
  rate_num : int;
  rate_den : int;
  eps_full : float;
  eps_degraded : float;
  cost_full : int;
  cost_degraded : int;
  cost_build : int;
  batch_overhead : int;
  cache_capacity : int;
  retry_budget : int;
  backoff_base : int;
  backoff_cap : int;
  max_retransmissions : int;
  breaker : breaker_config;
  oracle : Fault.policy;
  wire : Fault.policy;
}

let default_config =
  {
    queue_depth = 512;
    shed_policy = Reject_newest;
    batch = 32;
    pool_threshold = 8;
    bucket_capacity = 256;
    rate_num = 1;
    rate_den = 2;
    eps_full = 0.05;
    eps_degraded = 0.25;
    cost_full = 6;
    cost_degraded = 2;
    cost_build = 12;
    batch_overhead = 2;
    cache_capacity = 16;
    retry_budget = 4;
    backoff_base = 1;
    backoff_cap = 16;
    max_retransmissions = 4;
    breaker =
      { window = 64; trip_fault_rate = 0.5; trip_queue = 384; recovery_windows = 3 };
    oracle = Fault.no_faults;
    wire = Fault.no_faults;
  }

let queue_depth_env = "DCS_QUEUE_DEPTH"
let shed_policy_env = "DCS_SHED_POLICY"

let config_of_env cfg =
  let cfg =
    match Sys.getenv_opt queue_depth_env with
    | None | Some "" -> cfg
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some d when d >= 1 -> { cfg with queue_depth = d }
        | _ ->
            invalid_arg
              (Printf.sprintf "Serve: %s must be a positive integer, got %S"
                 queue_depth_env s))
  in
  match Sys.getenv_opt shed_policy_env with
  | None | Some "" -> cfg
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "newest" | "reject_newest" -> { cfg with shed_policy = Reject_newest }
      | "oldest" | "reject_oldest" -> { cfg with shed_policy = Reject_oldest }
      | _ ->
          invalid_arg
            (Printf.sprintf "Serve: %s must be \"newest\" or \"oldest\", got %S"
               shed_policy_env s))

let validate cfg =
  let pos name v = if v < 1 then invalid_arg ("Serve: " ^ name ^ " must be >= 1") in
  let nonneg name v =
    if v < 0 then invalid_arg ("Serve: " ^ name ^ " must be >= 0")
  in
  pos "queue_depth" cfg.queue_depth;
  pos "batch" cfg.batch;
  pos "pool_threshold" cfg.pool_threshold;
  pos "bucket_capacity" cfg.bucket_capacity;
  pos "rate_num" cfg.rate_num;
  pos "rate_den" cfg.rate_den;
  let eps name e =
    if not (e > 0. && e <= 1.) then
      invalid_arg ("Serve: " ^ name ^ " must be in (0, 1]")
  in
  eps "eps_full" cfg.eps_full;
  eps "eps_degraded" cfg.eps_degraded;
  if cfg.eps_degraded < cfg.eps_full then
    invalid_arg "Serve: eps_degraded must be >= eps_full";
  nonneg "cost_full" cfg.cost_full;
  nonneg "cost_degraded" cfg.cost_degraded;
  nonneg "cost_build" cfg.cost_build;
  nonneg "batch_overhead" cfg.batch_overhead;
  pos "cache_capacity" cfg.cache_capacity;
  pos "retry_budget" cfg.retry_budget;
  pos "backoff_base" cfg.backoff_base;
  pos "backoff_cap" cfg.backoff_cap;
  nonneg "max_retransmissions" cfg.max_retransmissions;
  pos "breaker.window" cfg.breaker.window;
  if not (cfg.breaker.trip_fault_rate >= 0. && cfg.breaker.trip_fault_rate <= 1.)
  then invalid_arg "Serve: breaker.trip_fault_rate must be in [0, 1]";
  pos "breaker.trip_queue" cfg.breaker.trip_queue;
  pos "breaker.recovery_windows" cfg.breaker.recovery_windows

(* serve.* registry meters; snapshots of these are what the determinism
   gate diffs across DCS_DOMAINS. *)
let m_offered = Metrics.counter "serve.offered"
let m_answered = Metrics.counter "serve.answered"
let m_degraded_answers = Metrics.counter "serve.answered_degraded"
let m_shed = Metrics.counter "serve.shed"
let m_queue_full = Metrics.counter "serve.queue_full"
let m_rate_limited = Metrics.counter "serve.rate_limited"
let m_wire_rejections = Metrics.counter "serve.wire_rejections"
let m_deadline = Metrics.counter "serve.deadline_exceeded"
let m_cache_hits = Metrics.counter "serve.cache_hits"
let m_cache_misses = Metrics.counter "serve.cache_misses"
let m_cache_evictions = Metrics.counter "serve.cache_evictions"
let m_cache_invalidations = Metrics.counter "serve.cache_invalidations"
let m_oracle_retries = Metrics.counter "serve.oracle_retries"
let m_oracle_exhausted = Metrics.counter "serve.oracle_exhausted"
let m_backoff = Metrics.counter "serve.backoff_ticks"
let m_breaker_trips = Metrics.counter "serve.breaker_trips"
let m_breaker_recoveries = Metrics.counter "serve.breaker_recoveries"
let m_batches = Metrics.counter "serve.batches"
let m_latency = Metrics.histogram "serve.latency_ticks"

type mode = Full | Degraded

type cache_entry = { graph : Csr.t; mutable last_use : int }

type stats = {
  offered : int;
  answered : int;
  degraded_answers : int;
  shed : int;
  queue_full : int;
  rate_limited : int;
  wire_rejections : int;
  deadline_rejections : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_invalidations : int;
  oracle_retries : int;
  oracle_exhausted : int;
  backoff_ticks : int;
  breaker_trips : int;
  breaker_recoveries : int;
  batches : int;
  queue_peak : int;
  clock : int;
}

type t = {
  cfg : config;
  domains : int option;
  graphs : Csr.t array;
  fps : int64 array;
  cache : (int64, cache_entry) Hashtbl.t;
  mutable cache_ops : int;
  bucket : Token_bucket.t;
  wire : Channel.lossy;
  oracle : Fault.t;
  jitter_master : Prng.t;
  pool_master : Prng.t;
  mutable clock : int;
  mutable mode : mode;
  mutable win_seen : int;
  mutable win_faulted : int;
  mutable healthy_streak : int;
  (* cumulative accounting *)
  mutable s_offered : int;
  mutable s_answered : int;
  mutable s_degraded : int;
  mutable s_queue_full : int;
  mutable s_rate_limited : int;
  mutable s_wire : int;
  mutable s_deadline : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_evictions : int;
  mutable s_invalidations : int;
  mutable s_retries : int;
  mutable s_exhausted : int;
  mutable s_backoff : int;
  mutable s_trips : int;
  mutable s_recoveries : int;
  mutable s_batches : int;
  mutable s_queue_peak : int;
}

let create ?domains cfg ~graphs ~rng =
  validate cfg;
  if Array.length graphs = 0 then invalid_arg "Serve.create: empty catalog";
  (* Fixed fork order: oracle, wire, jitter, pool — part of the seed
     contract. *)
  let oracle = Fault.create cfg.oracle rng in
  let wire = Channel.create_lossy (Fault.create cfg.wire rng) in
  let jitter_master = Prng.fork rng in
  let pool_master = Prng.fork rng in
  {
    cfg;
    domains;
    graphs;
    fps = Array.map Csr.fingerprint graphs;
    cache = Hashtbl.create 64;
    cache_ops = 0;
    bucket =
      Token_bucket.create ~capacity:cfg.bucket_capacity ~rate_num:cfg.rate_num
        ~rate_den:cfg.rate_den ();
    wire;
    oracle;
    jitter_master;
    pool_master;
    clock = 0;
    mode = Full;
    win_seen = 0;
    win_faulted = 0;
    healthy_streak = 0;
    s_offered = 0;
    s_answered = 0;
    s_degraded = 0;
    s_queue_full = 0;
    s_rate_limited = 0;
    s_wire = 0;
    s_deadline = 0;
    s_hits = 0;
    s_misses = 0;
    s_evictions = 0;
    s_invalidations = 0;
    s_retries = 0;
    s_exhausted = 0;
    s_backoff = 0;
    s_trips = 0;
    s_recoveries = 0;
    s_batches = 0;
    s_queue_peak = 0;
  }

let degraded t = t.mode = Degraded

(* Live catalog mutation: the streaming layer re-freezes a graph and swaps
   it in here. Invalidation is keyed exactly like lookup — by fingerprint —
   so a stale sketch entry can never answer for the new content; if the
   content is unchanged (equal fingerprint) the cached sketch stays warm.
   Control-plane only, like every other cache touch. *)
let update_graph t ~key csr =
  if key < 0 || key >= Array.length t.graphs then
    invalid_arg "Serve.update_graph: key outside the catalog";
  let old_fp = t.fps.(key) in
  let fp = Csr.fingerprint csr in
  t.graphs.(key) <- csr;
  t.fps.(key) <- fp;
  if not (Int64.equal fp old_fp) then begin
    Hashtbl.remove t.cache old_fp;
    t.s_invalidations <- t.s_invalidations + 1;
    Metrics.inc m_cache_invalidations
  end

(* Sketch-cache lookup by graph fingerprint, control-plane only (never
   touched from pool tasks). Returns whether it was a hit; a miss installs
   the entry, evicting the least-recently-used one at capacity. *)
let cache_lookup t fp key =
  t.cache_ops <- t.cache_ops + 1;
  match Hashtbl.find_opt t.cache fp with
  | Some e ->
      e.last_use <- t.cache_ops;
      t.s_hits <- t.s_hits + 1;
      Metrics.inc m_cache_hits;
      true
  | None ->
      t.s_misses <- t.s_misses + 1;
      Metrics.inc m_cache_misses;
      if Hashtbl.length t.cache >= t.cfg.cache_capacity then begin
        (* last_use values are distinct, so the LRU victim is unique and
           the scan order cannot leak into the outcome. *)
        let victim = ref Int64.zero and oldest = ref max_int in
        Hashtbl.iter
          (fun k e -> if e.last_use < !oldest then (victim := k; oldest := e.last_use))
          t.cache;
        Hashtbl.remove t.cache !victim;
        t.s_evictions <- t.s_evictions + 1;
        Metrics.inc m_cache_evictions
      end;
      Hashtbl.add t.cache fp { graph = t.graphs.(key); last_use = t.cache_ops };
      false

(* Snap a value to the nearest power of (1 + eps): the quantized answer is
   within a factor (1 + eps)^(1/2) of exact, i.e. relative error < eps/2 —
   comfortably inside the advertised eps. This is the honest "sketch" model
   for serving accuracy: degraded mode quantizes coarser. *)
let quantize ~eps v =
  if v <= 0. then 0.
  else (1. +. eps) ** Float.round (log v /. log (1. +. eps))

type comp = {
  c_value : float;
  c_eps : float;
  c_degraded : bool;
  c_cost : int;
  c_retries : int;
  c_exhausted : bool;
  c_backoff : int;
  c_hit : bool;
}

let frame_of_group group =
  let b = Buffer.create (32 * Array.length group) in
  Array.iter
    (fun (r : Traffic.request) ->
      Buffer.add_string b
        (Printf.sprintf "%d %d %d %d %d\n" r.seq r.arrival r.key r.cut_seed
           r.deadline))
    group;
  Checksum.frame (Buffer.contents b)

let verify_frame s = Result.is_ok (Checksum.unframe s)

let trip t =
  t.mode <- Degraded;
  t.healthy_streak <- 0;
  t.win_seen <- 0;
  t.win_faulted <- 0;
  t.s_trips <- t.s_trips + 1;
  Metrics.inc m_breaker_trips

let recover t =
  t.mode <- Full;
  t.healthy_streak <- 0;
  t.s_recoveries <- t.s_recoveries + 1;
  Metrics.inc m_breaker_recoveries

let run t (reqs : Traffic.request array) =
  let cfg = t.cfg in
  let n = Array.length reqs in
  for i = 0 to n - 1 do
    if reqs.(i).Traffic.key < 0 || reqs.(i).Traffic.key >= Array.length t.graphs
    then invalid_arg "Serve.run: request key outside the catalog";
    if i > 0 && reqs.(i).Traffic.arrival < reqs.(i - 1).Traffic.arrival then
      invalid_arg "Serve.run: arrivals must be nondecreasing"
  done;
  if n > 0 && reqs.(0).Traffic.arrival < t.clock then
    invalid_arg "Serve.run: trace starts before the server clock";
  t.s_offered <- t.s_offered + n;
  Metrics.inc ~by:n m_offered;
  let resp : response option array = Array.make n None in
  let respond pos r =
    assert (resp.(pos) = None);
    resp.(pos) <- Some r
  in
  let reject pos rej =
    (match rej with
    | Overloaded cause ->
        Metrics.inc m_shed;
        (match cause with
        | Queue_full ->
            t.s_queue_full <- t.s_queue_full + 1;
            Metrics.inc m_queue_full
        | Rate_limited ->
            t.s_rate_limited <- t.s_rate_limited + 1;
            Metrics.inc m_rate_limited
        | Wire_give_up _ ->
            t.s_wire <- t.s_wire + 1;
            Metrics.inc m_wire_rejections)
    | Deadline_exceeded _ ->
        t.s_deadline <- t.s_deadline + 1;
        Metrics.inc m_deadline);
    respond pos (Rejected rej)
  in
  let queue : int Queue.t = Queue.create () in
  let qi = ref 0 in
  let note_depth () =
    let d = Queue.length queue in
    if d > t.s_queue_peak then t.s_queue_peak <- d
  in
  (* Ingest every arrival due at the current clock: same-tick groups share
     one CRC frame over the lossy wire, then each surviving request faces
     the token bucket and the bounded queue. *)
  let ingest_due () =
    while !qi < n && reqs.(!qi).Traffic.arrival <= t.clock do
      let start = !qi in
      let a = reqs.(start).Traffic.arrival in
      while !qi < n && reqs.(!qi).Traffic.arrival = a do incr qi done;
      let group = Array.sub reqs start (!qi - start) in
      let framed = frame_of_group group in
      match
        Channel.transmit_reliable t.wire ~verify:verify_frame
          ~max_retransmissions:cfg.max_retransmissions
          ~bits:(8 * String.length framed)
          framed
      with
      | Error gu ->
          Array.iteri
            (fun k _ -> reject (start + k) (Overloaded (Wire_give_up gu)))
            group
      | Ok _ ->
          Array.iteri
            (fun k (r : Traffic.request) ->
              let pos = start + k in
              if not (Token_bucket.try_take t.bucket ~now:r.arrival) then
                reject pos (Overloaded Rate_limited)
              else if Queue.length queue < cfg.queue_depth then
                Queue.push pos queue
              else
                match cfg.shed_policy with
                | Reject_newest -> reject pos (Overloaded Queue_full)
                | Reject_oldest ->
                    let old = Queue.pop queue in
                    reject old (Overloaded Queue_full);
                    Queue.push pos queue)
            group;
          note_depth ()
    done;
    if t.mode = Full && Queue.length queue >= cfg.breaker.trip_queue then trip t
  in
  let breaker_after_batch () =
    if t.win_seen >= cfg.breaker.window then begin
      let rate = float_of_int t.win_faulted /. float_of_int t.win_seen in
      (match t.mode with
      | Full -> if rate >= cfg.breaker.trip_fault_rate then trip t
      | Degraded ->
          let healthy =
            rate <= cfg.breaker.trip_fault_rate /. 2.
            && Queue.length queue <= cfg.breaker.trip_queue / 2
          in
          if healthy then begin
            t.healthy_streak <- t.healthy_streak + 1;
            if t.healthy_streak >= cfg.breaker.recovery_windows then recover t
          end
          else t.healthy_streak <- 0);
      t.win_seen <- 0;
      t.win_faulted <- 0
    end
  in
  let serve_batch () =
    let b = min cfg.batch (Queue.length queue) in
    let picked = Array.init b (fun _ -> Queue.pop queue) in
    (* Requests that already outlived their deadline in the queue are
       rejected without burning compute. *)
    let live =
      Array.of_list
        (List.filter
           (fun pos ->
             let r = reqs.(pos) in
             let wait = t.clock - r.Traffic.arrival in
             if wait > r.Traffic.deadline then begin
               reject pos
                 (Deadline_exceeded { lateness = wait - r.Traffic.deadline });
               false
             end
             else true)
           (Array.to_list picked))
    in
    if Array.length live > 0 then begin
      let mode = t.mode in
      (* Control-plane cache resolution: pool tasks never mutate the
         cache, so DCS_DOMAINS cannot reorder hits and misses. *)
      let prepared =
        Array.map
          (fun pos ->
            let r = reqs.(pos) in
            let hit = cache_lookup t t.fps.(r.Traffic.key) r.Traffic.key in
            (pos, r, t.graphs.(r.Traffic.key), hit))
          live
      in
      let batch_rng = Prng.split t.pool_master t.s_batches in
      t.s_batches <- t.s_batches + 1;
      Metrics.inc m_batches;
      (* Each slot is a pure function of the trace seq (fault and jitter
         streams are split by it), so the inline fast path below the
         dispatch threshold computes bit for bit what the pool would. *)
      let compute_one p =
        let _, r, g, hit = prepared.(p) in
            let exact =
              Csr.cut_value g (Cut.random (Prng.create r.Traffic.cut_seed) ~n:(Csr.n g))
            in
            let build = if hit then 0 else cfg.cost_build in
            match mode with
            | Degraded ->
                {
                  c_value = quantize ~eps:cfg.eps_degraded exact;
                  c_eps = cfg.eps_degraded;
                  c_degraded = true;
                  c_cost = cfg.cost_degraded + build;
                  c_retries = 0;
                  c_exhausted = false;
                  c_backoff = 0;
                  c_hit = hit;
                }
            | Full -> (
                (* Per-request injector and jitter streams are split by the
                   trace seq, so retries replay identically at any domain
                   count or batch composition. *)
                let inj = Fault.split t.oracle r.Traffic.seq in
                let jrng = Prng.split t.jitter_master r.Traffic.seq in
                let o =
                  Retry.with_jittered_backoff ~budget:cfg.retry_budget
                    ~base:cfg.backoff_base ~cap:cfg.backoff_cap ~rng:jrng
                    (fun ~attempt:_ -> if Fault.times_out inj then None else Some ())
                in
                let retries = o.Retry.attempts - 1 in
                match o.Retry.value with
                | Some () ->
                    {
                      c_value = quantize ~eps:cfg.eps_full exact;
                      c_eps = cfg.eps_full;
                      c_degraded = false;
                      c_cost = cfg.cost_full + o.Retry.backoff_units + build;
                      c_retries = retries;
                      c_exhausted = false;
                      c_backoff = o.Retry.backoff_units;
                      c_hit = hit;
                    }
                | None ->
                    {
                      c_value = quantize ~eps:cfg.eps_degraded exact;
                      c_eps = cfg.eps_degraded;
                      c_degraded = true;
                      c_cost = cfg.cost_degraded + o.Retry.backoff_units + build;
                      c_retries = retries;
                      c_exhausted = true;
                      c_backoff = o.Retry.backoff_units;
                      c_hit = hit;
                    })
      in
      let results =
        if Array.length prepared < cfg.pool_threshold then
          Array.init (Array.length prepared) compute_one
        else
          fst
            (Pool.run_supervised_batched ?domains:t.domains
               ~arena:(fun () -> ())
               ~rng:batch_rng ~n:(Array.length prepared)
               (fun () ctx -> compute_one ctx.Pool.index))
      in
      (* Completion times: batch dispatch overhead, then requests finish in
         batch order, each charging its own cost (compute + backoff +
         rebuild). *)
      let tserv = ref (t.clock + cfg.batch_overhead) in
      Array.iteri
        (fun p (pos, (r : Traffic.request), _, _) ->
          let c = results.(p) in
          tserv := !tserv + c.c_cost;
          t.win_seen <- t.win_seen + 1;
          if c.c_retries > 0 || c.c_exhausted then
            t.win_faulted <- t.win_faulted + 1;
          if c.c_retries > 0 then begin
            t.s_retries <- t.s_retries + c.c_retries;
            Metrics.inc ~by:c.c_retries m_oracle_retries
          end;
          if c.c_exhausted then begin
            t.s_exhausted <- t.s_exhausted + 1;
            Metrics.inc m_oracle_exhausted
          end;
          if c.c_backoff > 0 then begin
            t.s_backoff <- t.s_backoff + c.c_backoff;
            Metrics.inc ~by:c.c_backoff m_backoff
          end;
          let latency = !tserv - r.arrival in
          if latency > r.deadline then
            reject pos (Deadline_exceeded { lateness = latency - r.deadline })
          else begin
            t.s_answered <- t.s_answered + 1;
            Metrics.inc m_answered;
            if c.c_degraded then begin
              t.s_degraded <- t.s_degraded + 1;
              Metrics.inc m_degraded_answers
            end;
            Metrics.observe m_latency latency;
            respond pos
              (Answered
                 {
                   value = c.c_value;
                   eps = c.c_eps;
                   degraded = c.c_degraded;
                   latency;
                   cache_hit = c.c_hit;
                 })
          end)
        prepared;
      t.clock <- !tserv;
      breaker_after_batch ()
    end
  in
  while !qi < n || not (Queue.is_empty queue) do
    if Queue.is_empty queue && !qi < n && reqs.(!qi).Traffic.arrival > t.clock
    then t.clock <- reqs.(!qi).Traffic.arrival;
    ingest_due ();
    if not (Queue.is_empty queue) then serve_batch ()
  done;
  (* Zero silent drops, structurally: every slot answered exactly once. *)
  Array.map
    (function
      | Some r -> r
      | None -> failwith "Serve.run: request left without a response")
    resp

let stats t =
  {
    offered = t.s_offered;
    answered = t.s_answered;
    degraded_answers = t.s_degraded;
    shed = t.s_queue_full + t.s_rate_limited + t.s_wire;
    queue_full = t.s_queue_full;
    rate_limited = t.s_rate_limited;
    wire_rejections = t.s_wire;
    deadline_rejections = t.s_deadline;
    cache_hits = t.s_hits;
    cache_misses = t.s_misses;
    cache_evictions = t.s_evictions;
    cache_invalidations = t.s_invalidations;
    oracle_retries = t.s_retries;
    oracle_exhausted = t.s_exhausted;
    backoff_ticks = t.s_backoff;
    breaker_trips = t.s_trips;
    breaker_recoveries = t.s_recoveries;
    batches = t.s_batches;
    queue_peak = t.s_queue_peak;
    clock = t.clock;
  }

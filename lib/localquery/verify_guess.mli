(** VERIFY-GUESS (Lemma 5.8, after BGMP21), implemented by cut-preserving
    edge sampling.

    Given the degree vector D and a guess t for the minimum cut, sample
    every edge slot (vertex, neighbor-index) independently with probability
    p/2 where p = min(1, c₀·ln n / (ε²·t)), reweight sampled edges by 1/p
    (each edge has two slots, so it is kept with expected multiplicity p),
    and compute the exact minimum cut of the sample. By Karger's sampling
    theorem, if t <= k all cuts are preserved within (1 ± ε) w.h.p., so the
    sample's minimum cut estimates k; if t >= Θ(ln n/ε²)·k the minimum cut
    is so under-sampled that its sampled value falls below the acceptance
    threshold (possibly disconnecting the sample). The decision rule is
    accept iff estimate >= threshold·t.

    Query cost: Binomial(2m, p/2) edge queries — Õ(ε⁻²·m/t) in expectation,
    exactly Lemma 5.8's bound. Degree queries are not issued here: D is an
    input, as in the paper's VERIFY-GUESS(D, t, ε) signature. *)

type outcome = {
  accepted : bool;
  estimate : float;       (** scaled minimum cut of the sample *)
  edge_queries : int;     (** queries issued by this call *)
  sample_edges : int;     (** distinct edges in the sample *)
  p : float;              (** sampling rate used *)
}

val run :
  ?c0:float ->
  ?threshold:float ->
  ?faulty:Faulty_oracle.t ->
  Dcs_util.Prng.t ->
  Oracle.t ->
  degrees:int array ->
  t:float ->
  eps:float ->
  outcome
(** Defaults: [c0] = 2.0 (the paper's 2000 is a worst-case constant;
    EXPERIMENTS.md records the scaling), [threshold] = 0.5. When p reaches
    1 the whole graph is read (2m edge queries) and the estimate is exact.

    When [faulty] is given (it must wrap the same [oracle]), every edge
    query goes through the fault layer's retry-and-vote recovery; retries
    and votes hit the underlying meters, and [edge_queries] still counts
    {e logical} queries (the metered physical count is on the oracle).
    May raise {!Faulty_oracle.Exhausted}. With an inactive injector the
    run is bit-identical to the unwrapped one. *)

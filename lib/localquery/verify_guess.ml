module Prng = Dcs_util.Prng
module Ugraph = Dcs_graph.Ugraph

type outcome = {
  accepted : bool;
  estimate : float;
  edge_queries : int;
  sample_edges : int;
  p : float;
}

let run ?(c0 = 2.0) ?(threshold = 0.5) ?faulty rng oracle ~degrees ~t ~eps =
  if t <= 0.0 then invalid_arg "Verify_guess.run: t > 0";
  if eps <= 0.0 || eps > 1.0 then invalid_arg "Verify_guess.run: eps in (0,1]";
  Dcs_obs_core.Trace.with_span "verify_guess.run" @@ fun () ->
  let n = Oracle.n oracle in
  if Array.length degrees <> n then invalid_arg "Verify_guess.run: degrees length";
  let ith_neighbor =
    match faulty with
    | None -> Oracle.ith_neighbor oracle
    | Some f ->
        if Faulty_oracle.oracle f != oracle then
          invalid_arg "Verify_guess.run: faulty wrapper must wrap the given oracle";
        Faulty_oracle.ith_neighbor f
  in
  let p = Float.min 1.0 (c0 *. log (float_of_int (max 2 n)) /. (eps *. eps *. t)) in
  let slot_p = if p >= 1.0 then 1.0 else p /. 2.0 in
  let h = Ugraph.create n in
  let queries = ref 0 in
  for u = 0 to n - 1 do
    for i = 0 to degrees.(u) - 1 do
      if slot_p >= 1.0 || Prng.bernoulli rng slot_p then begin
        incr queries;
        match ith_neighbor u i with
        | Some v when v <> u ->
            (* Full read keeps original unit weight; a sampled slot carries
               weight 1/p so each edge's expected sampled weight is 1. A
               full read visits each edge from both endpoints, so halve.
               (A lying oracle can answer [u] itself; a self-loop is
               observably absurd, so it is discarded like a ⊥.) *)
            let w = if p >= 1.0 then 0.5 else 1.0 /. p in
            Ugraph.add_edge h u v w
        | Some _ | None -> ()
      end
    done
  done;
  let estimate =
    if Ugraph.m h = 0 then 0.0
    else if not (Dcs_graph.Traversal.is_connected h) then 0.0
    else if n < 2 then 0.0
    else Dcs_mincut.Stoer_wagner.mincut_value h
  in
  {
    accepted = estimate >= threshold *. t;
    estimate;
    edge_queries = !queries;
    sample_edges = Ugraph.m h;
    p;
  }

module Prng = Dcs_util.Prng
module Metrics = Dcs_obs_core.Metrics
module Trace = Dcs_obs_core.Trace

let m_runs = Metrics.counter "estimator.runs"
let m_search_calls = Metrics.counter "estimator.search_calls"

type mode = Original | Modified

type result = {
  estimate : float;
  accepted : bool;
  degree_queries : int;
  edge_queries : int;
  total_queries : int;
  comm_bits : int;
  search_calls : int;
}

let estimate ?(c0 = 2.0) ?(beta0 = 0.5) ?(c_margin = 4.0) ?faulty rng oracle ~eps
    ~mode =
  if eps <= 0.0 || eps > 1.0 then invalid_arg "Estimator.estimate: eps in (0,1]";
  Trace.with_span "estimator.estimate" @@ fun () ->
  Metrics.inc m_runs;
  (match faulty with
  | Some f when Faulty_oracle.oracle f != oracle ->
      invalid_arg "Estimator.estimate: faulty wrapper must wrap the given oracle"
  | _ -> ());
  Oracle.reset oracle;
  let n = Oracle.n oracle in
  let query_degree =
    match faulty with
    | None -> Oracle.degree oracle
    | Some f -> Faulty_oracle.degree f
  in
  let degrees = Array.init n (fun u -> query_degree u) in
  let min_degree = Array.fold_left min max_int degrees in
  (* k <= min degree: the singleton cut. Start the halving there. *)
  let search_eps = match mode with Original -> eps | Modified -> beta0 in
  let search_calls = ref 0 in
  let rec search t =
    if t < 1.0 then (* degenerate: accept the smallest guess *) 1.0
    else begin
      incr search_calls;
      let o = Verify_guess.run ~c0 ?faulty rng oracle ~degrees ~t ~eps:search_eps in
      if o.Verify_guess.accepted then t else search (t /. 2.0)
    end
  in
  let t_accepted = search (float_of_int (max 1 min_degree)) in
  (* Safety margin before the confirming call: the accept could have
     happened anywhere below the reject threshold κ·k of the search
     accuracy. κ = Θ(ln n)/accuracy²; the ε-dependence is what separates
     the two modes. *)
  let margin =
    match mode with
    | Modified -> c_margin
    | Original -> c_margin /. (eps *. eps)
  in
  let t_final = Float.max 1.0 (t_accepted /. margin) in
  let final = Verify_guess.run ~c0 ?faulty rng oracle ~degrees ~t:t_final ~eps in
  Metrics.inc ~by:!search_calls m_search_calls;
  let stats = Oracle.stats oracle in
  {
    estimate = final.Verify_guess.estimate;
    accepted = final.Verify_guess.accepted;
    degree_queries = stats.Oracle.degree_queries;
    edge_queries = stats.Oracle.edge_queries;
    total_queries = Oracle.total_queries oracle;
    comm_bits = Oracle.comm_bits oracle;
    search_calls = !search_calls;
  }

(** The local query model of Section 5 (RSW18/ER18/BGMP21).

    The vertex set is known; the edge set is accessible only through three
    query types, each metered:

    - degree query: degree of a vertex;
    - edge (neighbor) query: the i-th neighbor of a vertex, or ⊥ when i
      exceeds its degree (the i-th neighbor ordering is fixed: increasing
      vertex id);
    - adjacency (pair) query: whether (u, v) is an edge.

    Besides raw query counts, the oracle tracks the communication cost of
    the Lemma 5.6 simulation: when the graph is a G_{x,y} construction
    split between Alice and Bob, a degree query costs 0 bits (all degrees
    are known to be √N) and edge/adjacency queries cost 2 bits each. *)

type t

val create : ?memoize:bool -> Dcs_graph.Ugraph.t -> t
(** Weights are ignored; the oracle exposes the simple unweighted graph.
    With [memoize] (default false) a repeated identical query is free:
    this models an algorithm that remembers answers, and enforces the
    min\{m, ·\} ceiling of Theorem 1.3 (no algorithm needs to pay more
    than reading the whole graph). *)

val n : t -> int

val degree : t -> int -> int

val ith_neighbor : t -> int -> int -> int option
(** [ith_neighbor o u i] with 0-based [i]; [None] when [i >= degree u].
    Counts as one edge query either way. A negative [i] is a malformed
    query, not a ⊥ answer: it raises [Invalid_argument] without touching
    the meters. *)

val adjacent : t -> int -> int -> bool

type stats = {
  degree_queries : int;
  edge_queries : int;
  adjacency_queries : int;
}

val stats : t -> stats

val total_queries : t -> int

val comm_bits : t -> int
(** 2·(edge + adjacency queries): the Lemma 5.6 accounting. *)

val reset : t -> unit

val edge_count : t -> int
(** m, for experiment bookkeeping — not a query (does not touch meters). *)

module Ugraph = Dcs_graph.Ugraph
module Metrics = Dcs_obs_core.Metrics

(* Registry mirrors of the per-oracle meters: bumped exactly when a query
   is paid for (memoized repeats stay free), so the registry total always
   equals the sum of [total_queries] over all oracle instances — E18
   asserts this. *)
let m_degree = Metrics.counter "oracle.degree_queries"
let m_edge = Metrics.counter "oracle.edge_queries"
let m_adjacency = Metrics.counter "oracle.adjacency_queries"

type t = {
  graph : Ugraph.t;
  neighbors : int array array;  (* sorted adjacency, fixes the i-th ordering *)
  memoize : bool;
  seen_degree : (int * int, unit) Hashtbl.t;
  seen_edge : (int * int, unit) Hashtbl.t;
  seen_adj : (int * int, unit) Hashtbl.t;
  mutable degree_q : int;
  mutable edge_q : int;
  mutable adj_q : int;
}

let create ?(memoize = false) g =
  {
    graph = g;
    neighbors = Array.init (Ugraph.n g) (fun u -> Ugraph.neighbor_array g u);
    memoize;
    seen_degree = Hashtbl.create 64;
    seen_edge = Hashtbl.create 256;
    seen_adj = Hashtbl.create 64;
    degree_q = 0;
    edge_q = 0;
    adj_q = 0;
  }

(* Under memoization a repeated query is answered from the algorithm's own
   notes and costs nothing; only first-time queries hit the meter. *)
let pay_once t table key bump =
  if t.memoize then begin
    if not (Hashtbl.mem table key) then begin
      Hashtbl.replace table key ();
      bump ()
    end
  end
  else bump ()

let n t = Ugraph.n t.graph

let check_vertex t u =
  if u < 0 || u >= n t then invalid_arg "Oracle: vertex out of range"

let degree t u =
  check_vertex t u;
  pay_once t t.seen_degree (u, u) (fun () ->
      t.degree_q <- t.degree_q + 1;
      Metrics.inc m_degree);
  Array.length t.neighbors.(u)

let ith_neighbor t u i =
  check_vertex t u;
  if i < 0 then invalid_arg "Oracle.ith_neighbor: negative index";
  pay_once t t.seen_edge (u, i) (fun () ->
      t.edge_q <- t.edge_q + 1;
      Metrics.inc m_edge);
  if i < Array.length t.neighbors.(u) then Some t.neighbors.(u).(i) else None

let adjacent t u v =
  check_vertex t u;
  check_vertex t v;
  let key = if u < v then (u, v) else (v, u) in
  pay_once t t.seen_adj key (fun () ->
      t.adj_q <- t.adj_q + 1;
      Metrics.inc m_adjacency);
  Ugraph.mem_edge t.graph u v

type stats = {
  degree_queries : int;
  edge_queries : int;
  adjacency_queries : int;
}

let stats t =
  { degree_queries = t.degree_q; edge_queries = t.edge_q; adjacency_queries = t.adj_q }

let total_queries t = t.degree_q + t.edge_q + t.adj_q

let comm_bits t = 2 * (t.edge_q + t.adj_q)

let reset t =
  t.degree_q <- 0;
  t.edge_q <- 0;
  t.adj_q <- 0;
  Hashtbl.reset t.seen_degree;
  Hashtbl.reset t.seen_edge;
  Hashtbl.reset t.seen_adj

let edge_count t = Ugraph.m t.graph

module Fault = Dcs_util.Fault
module Retry = Dcs_util.Retry
module Metrics = Dcs_obs_core.Metrics

let m_retries = Metrics.counter "oracle.retries"
let m_votes = Metrics.counter "oracle.votes_cast"
let m_retry_hist = Metrics.histogram ~buckets:8 "oracle.retry_attempts"
let m_vote_hist = Metrics.histogram ~buckets:8 "oracle.votes_per_query"

type t = {
  oracle : Oracle.t;
  fault : Fault.t;
  retry_budget : int;
  vote_k : int;
  mutable retries : int;
  mutable votes_cast : int;
  mutable backoff_units : int;
}

exception Exhausted of string

let create ?(retry_budget = 8) ?vote_k fault oracle =
  if retry_budget < 1 then
    invalid_arg "Faulty_oracle.create: retry_budget must be >= 1";
  let vote_k =
    match vote_k with
    | Some k ->
        if k < 1 then invalid_arg "Faulty_oracle.create: vote_k must be >= 1";
        k
    | None -> if (Fault.policy_of fault).Fault.lie_rate > 0.0 then 3 else 1
  in
  { oracle; fault; retry_budget; vote_k; retries = 0; votes_cast = 0; backoff_units = 0 }

let oracle t = t.oracle
let n t = Oracle.n t.oracle

(* One vote: retry [attempt] up to the budget on timeouts. [attempt] must
   issue the real (metered) query first and only then consult the fault
   stream — a timed-out query was still paid for. *)
let vote t attempt =
  let out = Retry.with_budget ~budget:t.retry_budget (fun ~attempt:_ -> attempt ()) in
  t.retries <- t.retries + (out.Retry.attempts - 1);
  t.backoff_units <- t.backoff_units + out.Retry.backoff_units;
  Metrics.inc ~by:(out.Retry.attempts - 1) m_retries;
  Metrics.observe m_retry_hist out.Retry.attempts;
  out.Retry.value

(* Majority over [vote_k] votes; a vote whose every retry timed out
   abstains, and a query where all votes abstain is a hard failure. *)
let robust t ~name attempt =
  let votes_before = t.votes_cast in
  let winner =
    Retry.majority ~k:t.vote_k (fun _ ->
        t.votes_cast <- t.votes_cast + 1;
        Metrics.inc m_votes;
        vote t attempt)
  in
  Metrics.observe m_vote_hist (t.votes_cast - votes_before);
  match winner with
  | Some (v, _) -> v
  | None ->
      raise
        (Exhausted
           (Printf.sprintf
              "Faulty_oracle.%s: all %d vote(s) exhausted their retry budget of %d"
              name t.vote_k t.retry_budget))

(* Fabricated answers draw from the fault stream, never the caller's rng,
   and are guaranteed wrong (when the domain has room to be wrong). *)

let lie_degree t honest =
  let n = n t in
  if n < 2 then honest
  else
    let r = Fault.draw_int t.fault (n - 1) in
    if r >= honest then r + 1 else r

let lie_neighbor t honest =
  let n = n t in
  match honest with
  | None -> Some (Fault.draw_int t.fault n)
  | Some v ->
      (* n wrong answers: the n-1 other vertices, or ⊥. *)
      let r = Fault.draw_int t.fault n in
      if r = v then None else Some r

let degree t u =
  robust t ~name:"degree" (fun () ->
      let d = Oracle.degree t.oracle u in
      if Fault.times_out t.fault then None
      else if Fault.lies t.fault then Some (lie_degree t d)
      else Some d)

let ith_neighbor t u i =
  robust t ~name:"ith_neighbor" (fun () ->
      let a = Oracle.ith_neighbor t.oracle u i in
      if Fault.times_out t.fault then None
      else if Fault.lies t.fault then Some (lie_neighbor t a)
      else Some a)

let adjacent t u v =
  robust t ~name:"adjacent" (fun () ->
      let a = Oracle.adjacent t.oracle u v in
      if Fault.times_out t.fault then None
      else if Fault.lies t.fault then Some (not a)
      else Some a)

type stats = {
  retries : int;
  votes_cast : int;
  backoff_units : int;
}

let stats (t : t) =
  { retries = t.retries; votes_cast = t.votes_cast; backoff_units = t.backoff_units }

(** Global min-cut estimation in the local query model (BGMP21, with the
    Theorem 5.7 modification).

    Both variants run the same guess-halving search: start from an upper
    bound on k (the minimum degree, obtained with n degree queries), call
    VERIFY-GUESS, halve on reject. They differ in the accuracy of the
    search calls and hence in the safety margin the final call must absorb:

    - [Original]: every call runs at the target accuracy ε; the reject
      guarantee of VERIFY-GUESS(·, ·, ε) only kicks in at κ(ε) = Θ(ln n/ε²)
      times the true k, so the final confirming call runs at guess
      t/κ(ε) — total Õ(m/(ε⁴·k)) queries.
    - [Modified] (Theorem 5.7): search calls run at a fixed constant β₀;
      the margin shrinks to κ(β₀) = Θ(ln n), and only the single final call
      runs at accuracy ε — total Õ(m/(ε²·k)).

    Margins are exposed as constants (c_margin, default 4.0): the modified
    final guess is t/c_margin and the original one is t·ε²... precisely
    t/(c_margin/ε²), reproducing the two κ regimes with the ln n factor
    dropped at laptop scale (recorded in EXPERIMENTS.md). *)

type mode = Original | Modified

type result = {
  estimate : float;
  accepted : bool;            (** whether the final VERIFY-GUESS accepted *)
  degree_queries : int;
  edge_queries : int;
  total_queries : int;
  comm_bits : int;            (** Lemma 5.6 accounting from the oracle *)
  search_calls : int;         (** VERIFY-GUESS invocations during search *)
}

val estimate :
  ?c0:float ->
  ?beta0:float ->
  ?c_margin:float ->
  ?faulty:Faulty_oracle.t ->
  Dcs_util.Prng.t ->
  Oracle.t ->
  eps:float ->
  mode:mode ->
  result
(** Resets the oracle meters before starting, so the reported counts are
    exactly this run's. Defaults: [c0] = 2.0 (VERIFY-GUESS oversampling),
    [beta0] = 0.5 (search accuracy in [Modified] mode), [c_margin] = 4.0.

    When [faulty] is given (it must wrap the same [oracle]), degree and
    edge queries go through its retry-and-vote recovery; every retry and
    vote is charged to the oracle's meters, so the reported counts measure
    the true robustness overhead against the Theorem 5.7 budget. May raise
    {!Faulty_oracle.Exhausted} when a query outlives its retry budget.
    With an inactive injector the run is bit-identical to the unwrapped
    one — same estimate, same metered counts. *)

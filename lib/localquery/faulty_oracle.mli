(** Fault-injecting wrapper around the local query {!Oracle}.

    Models the BGMP21 algorithm running against a flaky oracle: a query can
    {e time out} (the answer never arrives — but the query was issued, so
    it is still charged to the meters) or {e lie} (a wrong answer arrives,
    indistinguishable from a true one). Recovery is layered per logical
    query:

    - timeouts: bounded retry with exponential backoff ({!Dcs_util.Retry}),
      at most [retry_budget] attempts; when every attempt of every vote
      times out, {!Exhausted} is raised;
    - lies: [vote_k]-way majority vote — the query is repeated [vote_k]
      times (each repeat metered) and the most frequent answer wins.

    Every underlying attempt goes through the wrapped {!Oracle}, so retries
    and votes are charged to its query/communication meters exactly — this
    is what experiment E16 measures as the robustness overhead factor
    against the Õ(m/(ε²k)) budget of Theorem 5.7. Use an {e unmemoized}
    oracle under a nonzero timeout rate: a timed-out answer was never
    received, so it must not populate the algorithm's memo table (the
    memoizing oracle cannot distinguish the two).

    With an inactive fault injector and [vote_k = 1], every wrapped query
    issues exactly one underlying query and returns its honest answer:
    the wrapped run is bit-identical to the unwrapped one. *)

type t

exception Exhausted of string

val create :
  ?retry_budget:int -> ?vote_k:int -> Dcs_util.Fault.t -> Oracle.t -> t
(** [retry_budget] (default 8) is the maximum attempts per vote; [vote_k]
    defaults to 1 when the policy's lie rate is 0 and 3 otherwise. Both
    must be >= 1. *)

val oracle : t -> Oracle.t

val n : t -> int

(** {2 Robust queries} — same semantics as {!Oracle}'s, after recovery. *)

val degree : t -> int -> int
val ith_neighbor : t -> int -> int -> int option
val adjacent : t -> int -> int -> bool

(** {2 Recovery accounting} (fault counters live on the injector) *)

type stats = {
  retries : int;        (** extra attempts forced by timeouts *)
  votes_cast : int;     (** total attempts across majority votes *)
  backoff_units : int;  (** Σ 2^attempt simulated backoff waits *)
}

val stats : t -> stats

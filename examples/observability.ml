(* The observability subsystem, end to end: counters/histograms that
   survive parallel fan-outs and crashed-and-retried tasks, spans with a
   hot-path table, and the deterministic registry snapshot.

   Run with: dune exec examples/observability.exe
   For a Chrome trace (open at https://ui.perfetto.dev):
     DCS_TRACE=/tmp/dcut.trace dune exec examples/observability.exe *)

open Dcs
module M = Obs.Metrics

let () =
  Obs.Trace.enable ();

  (* 1. Instrument your own code: metrics are global and get-or-create, so
     no handles need plumbing. *)
  let trials = M.counter "demo.trials" in
  let sizes = M.histogram ~buckets:10 "demo.sample_edges" in

  (* 2. Run instrumented work through the parallel engine. Counters are
     sharded per domain: nothing is lost, whatever DCS_DOMAINS says. *)
  let rng = Prng.create 2024 in
  let results =
    Pool.parallel_init ~n:24 (fun i ->
        Obs.Trace.with_span "demo.trial" @@ fun () ->
        M.inc trials;
        let rng = Prng.split rng i in
        let g = Generators.erdos_renyi_connected rng ~n:48 ~p:0.2 in
        let h = Benczur_karger.sparsify rng ~eps:0.5 g in
        M.observe sizes (Ugraph.m h);
        Stoer_wagner.mincut_value h)
  in
  Printf.printf "ran %d sparsify+mincut trials (mean sparsified cut %.2f)\n"
    (Array.length results)
    (Stats.mean results);

  (* 3. A crashed task's increments are journaled and discarded; only the
     successful retry commits. The counter ends at exactly +8. *)
  let attempts = M.counter "demo.supervised_tasks" in
  let _, rep =
    Pool.run_supervised ~rng:(Prng.create 7) ~n:8 (fun ctx ->
        M.inc attempts;
        if ctx.Pool.attempt = 0 && ctx.Pool.index = 3 then failwith "flaky";
        ctx.Pool.index)
  in
  Printf.printf
    "supervised sweep: %d crash(es), %d restart(s), counter says %d tasks\n"
    rep.Pool.crashes rep.Pool.restarts
    (M.counter_value attempts);

  (* 4. The registry, rendered. The same tables print to stderr when any
     dcut/bench run gets DCS_METRICS=1; a path writes the JSON snapshot
     that bin/check_determinism.sh byte-diffs across domain counts. *)
  print_newline ();
  Obs.Report.print ();
  Table.print (Obs.Report.span_table ~top:6 ())

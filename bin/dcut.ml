(* dcut — command-line driver for the library.

   Subcommands:
     gen        generate a random graph and print it
     mincut     exact / randomized global minimum cut
     balance    balance diagnostics of a directed graph
     sparsify   Benczúr–Karger or directed sparsification
     encode     Section 3: encode a message into a balanced digraph
     decode     Section 3: decode it back from cut queries
     allpairs   all-pairs minimum cuts (Gomory-Hu tree)
     resistance effective resistances
     localquery estimate a min cut through the metered local-query oracle
     connectivity dynamic connectivity over an insert/delete stream
     distributed run the distributed min-cut pipeline

   Graphs are exchanged as whitespace-separated edge lists:
     <n>
     <u> <v> <w>
     ... *)

open Cmdliner
open Dcs

(* --- graph (de)serialization (library format, Dcs_graph.Serialize) --- *)

let output_digraph oc g = Dcs_graph.Serialize.output_digraph oc g
let output_ugraph oc g = Dcs_graph.Serialize.output_ugraph oc g

let with_input path f =
  match path with
  | "-" -> f stdin
  | p ->
      let ic = open_in p in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let with_output path f =
  match path with
  | "-" -> f stdout
  | p ->
      let oc = open_out p in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let read_digraph ic = Dcs_graph.Serialize.input_digraph ic
let read_ugraph ic = Dcs_graph.Serialize.input_ugraph ic

(* --- common args --- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the observability registry (counters, gauges, histograms) to \
           stderr after the run. The DCS_METRICS environment variable is \
           honored either way.")

(* Every subcommand funnels its exit code through here so [--metrics] and
   the DCS_METRICS env var behave identically across the whole CLI. *)
let finish metrics code =
  if metrics then prerr_string (Obs.Report.render ());
  Obs.Report.dump_env ();
  code

let input_arg =
  Arg.(
    value & opt string "-"
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input edge list ('-' = stdin).")

let output_arg =
  Arg.(
    value & opt string "-"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file ('-' = stdout).")

(* --- gen --- *)

let gen_cmd =
  let family =
    Arg.(
      value
      & opt (enum [ ("er", `Er); ("balanced", `Balanced); ("planted", `Planted); ("gxy", `Gxy) ]) `Er
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:"Graph family: er | balanced | planted | gxy.")
  in
  let n_arg = Arg.(value & opt int 64 & info [ "n" ] ~doc:"Vertex count.") in
  let p_arg = Arg.(value & opt float 0.2 & info [ "p" ] ~doc:"Edge probability.") in
  let beta_arg = Arg.(value & opt float 2.0 & info [ "beta" ] ~doc:"Balance β.") in
  let k_arg = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Planted min-cut size.") in
  let run metrics seed family n p beta k out =
    let rng = Prng.create seed in
    with_output out (fun oc ->
        match family with
        | `Er -> output_ugraph oc (Generators.erdos_renyi_connected rng ~n ~p)
        | `Balanced ->
            output_digraph oc
              (Generators.balanced_digraph rng ~n ~p ~beta ~max_weight:10.0)
        | `Planted ->
            output_ugraph oc (Generators.planted_mincut rng ~block:(n / 2) ~k ~p_inner:p)
        | `Gxy ->
            let l = int_of_float (Float.round (sqrt (float_of_int n))) in
            let x = Bitstring.random rng (l * l)
            and y = Bitstring.random rng (l * l) in
            output_ugraph oc (Gxy.build ~x ~y));
    finish metrics 0
  in
  let term =
    Term.(
      const run $ metrics_arg $ seed_arg $ family $ n_arg $ p_arg $ beta_arg
      $ k_arg $ output_arg)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a random graph as an edge list.") term

(* --- mincut --- *)

let mincut_cmd =
  let algo =
    Arg.(
      value
      & opt (enum [ ("stoer-wagner", `Sw); ("karger", `Karger); ("both", `Both) ]) `Both
      & info [ "algo" ] ~doc:"Algorithm: stoer-wagner | karger | both.")
  in
  let trials = Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Karger trials.") in
  let run metrics seed algo trials input =
    let g = with_input input read_ugraph in
    let rng = Prng.create seed in
    (match algo with
    | `Sw | `Both ->
        let v, c = Stoer_wagner.mincut g in
        Printf.printf "stoer-wagner: %.6g  (side %d vertices)\n" v (Cut.cardinal c)
    | `Karger -> ());
    (match algo with
    | `Karger | `Both ->
        let v, c = Karger.mincut rng ~trials g in
        Printf.printf "karger(%d):   %.6g  (side %d vertices)\n" trials v
          (Cut.cardinal c)
    | `Sw -> ());
    finish metrics 0
  in
  let term = Term.(const run $ metrics_arg $ seed_arg $ algo $ trials $ input_arg) in
  Cmd.v (Cmd.info "mincut" ~doc:"Global minimum cut of an undirected graph.") term

(* --- balance --- *)

let balance_cmd =
  let trials = Arg.(value & opt int 500 & info [ "trials" ] ~doc:"Sampled cuts.") in
  let run metrics seed trials input =
    let g = with_input input read_digraph in
    let rng = Prng.create seed in
    Printf.printf "n=%d m=%d strongly-connected=%b\n" (Digraph.n g) (Digraph.m g)
      (Traversal.is_strongly_connected g);
    Printf.printf "edgewise upper bound: %.6g\n" (Balance.edgewise_upper_bound g);
    Printf.printf "sampled lower bound:  %.6g\n"
      (Balance.sampled_lower_bound rng ~trials g);
    if Digraph.n g <= 20 then
      Printf.printf "exact balance:        %.6g\n" (Balance.exact g);
    finish metrics 0
  in
  let term = Term.(const run $ metrics_arg $ seed_arg $ trials $ input_arg) in
  Cmd.v (Cmd.info "balance" ~doc:"β-balance diagnostics of a digraph.") term

(* --- sparsify --- *)

let sparsify_cmd =
  let eps = Arg.(value & opt float 0.3 & info [ "eps" ] ~doc:"Accuracy ε.") in
  let beta =
    Arg.(
      value & opt (some float) None
      & info [ "beta" ] ~doc:"Treat input as a β-balanced digraph (directed mode).")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("forall", `Forall); ("foreach", `Foreach) ]) `Forall
      & info [ "mode" ] ~doc:"Guarantee: forall | foreach.")
  in
  let run metrics seed eps beta mode input output =
    let rng = Prng.create seed in
    (match beta with
    | None ->
        let g = with_input input read_ugraph in
        let h =
          match mode with
          | `Forall -> Benczur_karger.sparsify rng ~eps g
          | `Foreach -> Foreach_sampler.sparsify rng ~eps g
        in
        Printf.eprintf "kept %d of %d edges\n" (Ugraph.m h) (Ugraph.m g);
        with_output output (fun oc -> output_ugraph oc h)
    | Some beta ->
        let g = with_input input read_digraph in
        let h =
          match mode with
          | `Forall -> Directed_sparsifier.forall_sparsify rng ~eps ~beta g
          | `Foreach -> Directed_sparsifier.foreach_sparsify rng ~eps ~beta g
        in
        Printf.eprintf "kept %d of %d edges\n" (Digraph.m h) (Digraph.m g);
        with_output output (fun oc -> output_digraph oc h));
    finish metrics 0
  in
  let term =
    Term.(
      const run $ metrics_arg $ seed_arg $ eps $ beta $ mode $ input_arg
      $ output_arg)
  in
  Cmd.v (Cmd.info "sparsify" ~doc:"Cut sparsification (undirected or directed).") term

(* --- encode / decode (Section 3) --- *)

let bits_of_string = Dcs_util.Message.to_signs
let string_of_bits bits nbytes =
  Dcs_util.Message.of_signs (Array.sub bits 0 (8 * nbytes))

let msg_arg =
  Arg.(
    required & opt (some string) None
    & info [ "message" ] ~docv:"TEXT" ~doc:"Message to encode / expected length.")

let inv_eps_arg =
  Arg.(value & opt int 8 & info [ "inv-eps" ] ~doc:"1/ε (a power of two).")

let beta_int_arg =
  Arg.(value & opt int 1 & info [ "beta" ] ~doc:"β (a perfect square).")

let n_for_message ~beta ~inv_eps bits =
  (* Smallest valid n whose capacity covers the payload. *)
  let block = int_of_float (sqrt (float_of_int beta)) * inv_eps in
  let rec go chains =
    let n = chains * block in
    let p = Foreach_lb.make_params ~beta ~inv_eps n in
    if Foreach_lb.bits_capacity p >= bits then p else go (chains + 1)
  in
  go 2

let encode_cmd =
  let run metrics seed message beta inv_eps output =
    let payload = bits_of_string message in
    let p = n_for_message ~beta ~inv_eps (Array.length payload) in
    let rng = Prng.create seed in
    let s =
      Array.init (Foreach_lb.bits_capacity p) (fun i ->
          if i < Array.length payload then payload.(i) else Prng.sign rng)
    in
    let inst = Foreach_lb.encode p ~s in
    Printf.eprintf "encoded %d bits into n=%d digraph (m=%d, balance <= %.1f)\n"
      (Array.length payload) p.Foreach_lb.n
      (Digraph.m inst.Foreach_lb.graph)
      (Balance.edgewise_upper_bound inst.Foreach_lb.graph);
    with_output output (fun oc -> output_digraph oc inst.Foreach_lb.graph);
    finish metrics 0
  in
  let term =
    Term.(
      const run $ metrics_arg $ seed_arg $ msg_arg $ beta_int_arg $ inv_eps_arg
      $ output_arg)
  in
  Cmd.v
    (Cmd.info "encode"
       ~doc:"Encode a text message into a balanced digraph (Theorem 1.1).")
    term

let decode_cmd =
  let len_arg =
    Arg.(
      required & opt (some int) None
      & info [ "bytes" ] ~docv:"N" ~doc:"Number of message bytes to recover.")
  in
  let noise_arg =
    Arg.(
      value & opt float 0.0
      & info [ "noise" ] ~doc:"Answer cut queries with (1±NOISE) error.")
  in
  let run metrics seed len beta inv_eps noise input =
    let g = with_input input read_digraph in
    let p =
      let block = int_of_float (sqrt (float_of_int beta)) * inv_eps in
      Foreach_lb.make_params ~beta ~inv_eps (Digraph.n g / block * block)
    in
    let rng = Prng.create seed in
    let sk =
      if noise > 0.0 then Noisy_oracle.create rng ~eps:noise g
      else Exact_sketch.create g
    in
    let bits =
      Array.init (len * 8) (fun q ->
          (Foreach_lb.decode_bit p ~query:sk.Sketch.query q).Foreach_lb.decoded)
    in
    print_endline (String.escaped (string_of_bits bits len));
    finish metrics 0
  in
  let term =
    Term.(
      const run $ metrics_arg $ seed_arg $ len_arg $ beta_int_arg $ inv_eps_arg
      $ noise_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "decode" ~doc:"Recover a message from cut queries (Theorem 1.1).")
    term

(* --- allpairs (Gomory–Hu) --- *)

let allpairs_cmd =
  let run metrics input =
    let g = with_input input read_ugraph in
    let t = Gomory_hu.build g in
    Printf.printf "gomory-hu tree (child -- parent : min-cut value):\n";
    List.iter
      (fun (c, p, f) -> Printf.printf "  %d -- %d : %.6g\n" c p f)
      (List.sort compare (Gomory_hu.tree_edges t));
    let v, side = Gomory_hu.global_min_cut t in
    Printf.printf "global min cut: %.6g (side %d vertices)\n" v (Cut.cardinal side);
    finish metrics 0
  in
  let term = Term.(const run $ metrics_arg $ input_arg) in
  Cmd.v
    (Cmd.info "allpairs" ~doc:"All-pairs minimum cuts via a Gomory–Hu tree.")
    term

(* --- resistance --- *)

let resistance_cmd =
  let pair =
    Arg.(
      value & opt (some (pair int int)) None
      & info [ "pair" ] ~docv:"U,V" ~doc:"Report R(u,v) for one pair only.")
  in
  let run metrics input pair =
    let g = with_input input read_ugraph in
    (match pair with
    | Some (u, v) -> Printf.printf "R(%d,%d) = %.6g\n" u v (Resistance.pair g u v)
    | None ->
        let rs = Resistance.all_edges g in
        Ugraph.iter_edges g (fun u v w ->
            Printf.printf "%d -- %d  w=%.6g  R=%.6g\n" u v w
              (Hashtbl.find rs (min u v, max u v)));
        Printf.printf "foster sum (= n-1 when connected): %.6g\n"
          (Resistance.foster_sum g));
    finish metrics 0
  in
  let term = Term.(const run $ metrics_arg $ input_arg $ pair) in
  Cmd.v
    (Cmd.info "resistance" ~doc:"Effective resistances (spectral importance).")
    term

(* --- localquery --- *)

let localquery_cmd =
  let eps = Arg.(value & opt float 0.5 & info [ "eps" ] ~doc:"Accuracy ε.") in
  let mode =
    Arg.(
      value
      & opt (enum [ ("modified", Estimator.Modified); ("original", Estimator.Original) ])
          Estimator.Modified
      & info [ "mode" ] ~doc:"Schedule: modified (Thm 5.7) | original.")
  in
  let run metrics seed eps mode input =
    let g = with_input input read_ugraph in
    let rng = Prng.create seed in
    let o = Oracle.create ~memoize:true g in
    let r = Estimator.estimate ~c0:1.0 rng o ~eps ~mode in
    Printf.printf "estimate: %.6g\n" r.Estimator.estimate;
    Printf.printf "queries:  %d (degree %d, edge %d) of %d slots\n"
      r.Estimator.total_queries r.Estimator.degree_queries r.Estimator.edge_queries
      ((2 * Ugraph.m g) + Ugraph.n g);
    Printf.printf "comm bits (Lemma 5.6): %d\n" r.Estimator.comm_bits;
    finish metrics 0
  in
  let term = Term.(const run $ metrics_arg $ seed_arg $ eps $ mode $ input_arg) in
  Cmd.v
    (Cmd.info "localquery" ~doc:"Min-cut estimation via metered local queries.")
    term

(* --- connectivity (AGM turnstile stream) --- *)

let connectivity_cmd =
  let n_arg =
    Arg.(
      required & opt (some int) None
      & info [ "n" ] ~docv:"N" ~doc:"Vertex count (the stream's universe).")
  in
  let copies = Arg.(value & opt int 6 & info [ "copies" ] ~doc:"Sampler redundancy.") in
  let run metrics seed n copies input =
    (* Stream format: one op per line, "+ u v" inserts, "- u v" deletes. *)
    let rng = Prng.create seed in
    let sk = Agm_sketch.create ~copies rng ~n in
    let ops = ref 0 in
    with_input input (fun ic ->
        try
          while true do
            match String.split_on_char ' ' (String.trim (input_line ic)) with
            | [ "+"; u; v ] ->
                Agm_sketch.add_edge sk (int_of_string u) (int_of_string v);
                incr ops
            | [ "-"; u; v ] ->
                Agm_sketch.remove_edge sk (int_of_string u) (int_of_string v);
                incr ops
            | [] | [ "" ] -> ()
            | _ -> failwith "expected '+ u v' or '- u v'"
          done
        with End_of_file -> ());
    Printf.printf "processed %d stream operations into %d sketch bits\n" !ops
      (Agm_sketch.size_bits sk);
    let forest = Agm_sketch.spanning_forest sk in
    let comps = Agm_sketch.components_after_forest sk forest in
    let distinct = Array.fold_left max (-1) comps + 1 in
    Printf.printf "spanning forest: %d edges; components (w.h.p.): %d; connected: %b\n"
      (List.length forest) distinct
      (List.length forest = n - 1);
    finish metrics 0
  in
  let term = Term.(const run $ metrics_arg $ seed_arg $ n_arg $ copies $ input_arg) in
  Cmd.v
    (Cmd.info "connectivity"
       ~doc:"Dynamic connectivity over an insert/delete edge stream (AGM sketch).")
    term

(* --- distributed --- *)

let distributed_cmd =
  let eps = Arg.(value & opt float 0.25 & info [ "eps" ] ~doc:"Accuracy ε.") in
  let servers = Arg.(value & opt int 4 & info [ "servers" ] ~doc:"Server count.") in
  let run metrics seed eps servers input =
    let g = with_input input read_ugraph in
    let rng = Prng.create seed in
    let shards = Partition.random rng ~servers g in
    let r = Coordinator.min_cut rng (Coordinator.default_config ~eps) shards in
    Printf.printf "estimate: %.6g (from %d candidates)\n" r.Coordinator.estimate
      r.Coordinator.candidates;
    Printf.printf "communication: pipeline %d bits (coarse %d + foreach %d)\n"
      r.Coordinator.total_bits r.Coordinator.forall_bits r.Coordinator.foreach_bits;
    Printf.printf "baselines:     ship-all %d bits, forall@eps %d bits\n"
      r.Coordinator.naive_bits r.Coordinator.fullacc_forall_bits;
    finish metrics 0
  in
  let term = Term.(const run $ metrics_arg $ seed_arg $ eps $ servers $ input_arg) in
  Cmd.v (Cmd.info "distributed" ~doc:"Distributed min-cut pipeline.") term

let () =
  let doc = "directed cut sparsification & distributed min-cut toolkit" in
  let info = Cmd.info "dcut" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        gen_cmd; mincut_cmd; balance_cmd; sparsify_cmd; encode_cmd; decode_cmd;
        allpairs_cmd; resistance_cmd; localquery_cmd; connectivity_cmd;
        distributed_cmd;
      ]
  in
  exit (Cmd.eval' group)

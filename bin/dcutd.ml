(* dcutd — the cut-query serving daemon, driven to completion over a
   deterministic synthetic trace.

   Builds a catalog of random weighted graphs, generates an open-loop
   trace (seeded arrivals, hot-key skew, optional bursts), and serves it
   through the admission-controlled [Serve] engine: token-bucket rate
   limiting, a bounded queue with explicit shedding, a fingerprint-keyed
   sketch cache, jittered-backoff oracle retries and circuit-breaking to a
   degraded (wider-eps) mode. Everything after the seed is deterministic —
   latency and throughput are virtual ticks, so two invocations with the
   same flags print byte-identical reports at any DCS_DOMAINS.

   The admission knobs honor the DCS_QUEUE_DEPTH and DCS_SHED_POLICY
   environment variables; the flags below override them. *)

open Cmdliner
open Dcs

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the observability registry to stderr after the run. The \
           DCS_METRICS environment variable is honored either way.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let requests_arg =
  Arg.(
    value & opt int 100_000
    & info [ "requests" ] ~docv:"N" ~doc:"Trace length (queries to replay).")

let keys_arg =
  Arg.(value & opt int 64 & info [ "keys" ] ~doc:"Graphs in the catalog.")

let hot_arg =
  Arg.(
    value & opt float 0.95
    & info [ "hot-fraction" ] ~doc:"Probability a request targets the hot set.")

let gap_arg =
  Arg.(
    value & opt int 8
    & info [ "mean-gap" ] ~doc:"Mean inter-arrival gap, virtual ticks.")

let burst_every_arg =
  Arg.(
    value & opt int 0
    & info [ "burst-every" ] ~docv:"TICKS"
        ~doc:"Tick period of burst onsets (0 disables bursts).")

let burst_len_arg =
  Arg.(value & opt int 250 & info [ "burst-len" ] ~doc:"Burst duration, ticks.")

let burst_factor_arg =
  Arg.(
    value & opt int 10
    & info [ "burst-factor" ] ~doc:"Arrival-rate multiplier inside a burst.")

let deadline_arg =
  Arg.(
    value & opt int 4000
    & info [ "deadline" ] ~doc:"Per-request completion budget, ticks.")

let queue_depth_arg =
  Arg.(
    value & opt (some int) None
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:"Admission queue bound (overrides $(b,DCS_QUEUE_DEPTH)).")

let shed_policy_arg =
  Arg.(
    value
    & opt (some (enum [ ("newest", Serve.Reject_newest); ("oldest", Serve.Reject_oldest) ])) None
    & info [ "shed-policy" ] ~docv:"WHO"
        ~doc:
          "Who is shed on queue overflow: newest | oldest (overrides \
           $(b,DCS_SHED_POLICY)).")

let oracle_timeout_arg =
  Arg.(
    value & opt float 0.0
    & info [ "oracle-timeout" ] ~docv:"RATE"
        ~doc:"Oracle timeout injection rate (retried with jittered backoff).")

let drop_arg =
  Arg.(
    value & opt float 0.0
    & info [ "wire-drop" ] ~docv:"RATE" ~doc:"Request-frame drop rate.")

let corrupt_arg =
  Arg.(
    value & opt float 0.0
    & info [ "wire-corrupt" ] ~docv:"RATE" ~doc:"Request-frame corruption rate.")

let retries_arg =
  Arg.(
    value & opt int 4
    & info [ "retries" ] ~docv:"N" ~doc:"Oracle attempts per request (>= 1).")

let retransmissions_arg =
  Arg.(
    value & opt int 4
    & info [ "retransmissions" ] ~docv:"N"
        ~doc:"Wire re-sends before a frame gives up.")

let percentile sorted p =
  let len = Array.length sorted in
  if len = 0 then 0 else sorted.((len - 1) * p / 100)

let serve metrics seed requests keys hot_fraction mean_gap burst_every
    burst_len burst_factor deadline queue_depth shed_policy oracle_timeout
    drop corrupt retries retransmissions =
  let rng = Prng.create seed in
  let catalog_rng = Prng.fork rng in
  let graphs =
    Array.init keys (fun i ->
        let r = Prng.split catalog_rng i in
        let g0 = Generators.erdos_renyi_connected r ~n:48 ~p:0.12 in
        Csr.of_ugraph (Generators.random_multigraph_weights r g0 ~max_weight:8))
  in
  let traffic =
    {
      Traffic.keys;
      Traffic.hot_keys = max 1 (keys / 8);
      Traffic.hot_fraction = hot_fraction;
      Traffic.mean_gap = mean_gap;
      Traffic.burst_every = burst_every;
      Traffic.burst_len = burst_len;
      Traffic.burst_factor = burst_factor;
      Traffic.deadline = deadline;
    }
  in
  let cfg = Serve.config_of_env Serve.default_config in
  let cfg =
    {
      cfg with
      Serve.queue_depth =
        (match queue_depth with Some d -> d | None -> cfg.Serve.queue_depth);
      Serve.shed_policy =
        (match shed_policy with Some p -> p | None -> cfg.Serve.shed_policy);
      Serve.oracle = Fault.policy ~timeout:oracle_timeout ();
      Serve.wire = Fault.policy ~drop ~corrupt ();
      Serve.retry_budget = retries;
      Serve.max_retransmissions = retransmissions;
    }
  in
  let reqs = Traffic.generate (Prng.fork rng) traffic ~n:requests in
  let srv = Serve.create cfg ~graphs ~rng:(Prng.fork rng) in
  let responses = Serve.run srv reqs in
  let s = Serve.stats srv in
  let lats =
    Array.of_list
      (List.filter_map
         (function Serve.Answered a -> Some a.Serve.latency | _ -> None)
         (Array.to_list responses))
  in
  Array.sort compare lats;
  Printf.printf "offered   %d\n" s.Serve.offered;
  Printf.printf "answered  %d (%d degraded)\n" s.Serve.answered
    s.Serve.degraded_answers;
  Printf.printf "shed      %d (queue %d, rate %d, wire %d)\n" s.Serve.shed
    s.Serve.queue_full s.Serve.rate_limited s.Serve.wire_rejections;
  Printf.printf "late      %d\n" s.Serve.deadline_rejections;
  Printf.printf "cache     %d hits / %d misses / %d evictions\n"
    s.Serve.cache_hits s.Serve.cache_misses s.Serve.cache_evictions;
  Printf.printf "oracle    %d retries, %d exhausted, %d backoff ticks\n"
    s.Serve.oracle_retries s.Serve.oracle_exhausted s.Serve.backoff_ticks;
  Printf.printf "breaker   %d trips, %d recoveries (degraded now: %b)\n"
    s.Serve.breaker_trips s.Serve.breaker_recoveries (Serve.degraded srv);
  Printf.printf "latency   p50 %d  p99 %d ticks\n" (percentile lats 50)
    (percentile lats 99);
  Printf.printf "clock     %d ticks (%d req/ktick), queue peak %d\n"
    s.Serve.clock
    (s.Serve.offered * 1000 / max 1 s.Serve.clock)
    s.Serve.queue_peak;
  if metrics then prerr_string (Obs.Report.render ());
  Obs.Report.dump_env ();
  if s.Serve.answered + s.Serve.shed + s.Serve.deadline_rejections
     <> s.Serve.offered
  then begin
    Printf.eprintf "accounting violation: a request was silently dropped\n";
    1
  end
  else 0

let () =
  let term =
    Term.(
      const serve $ metrics_arg $ seed_arg $ requests_arg $ keys_arg $ hot_arg
      $ gap_arg $ burst_every_arg $ burst_len_arg $ burst_factor_arg
      $ deadline_arg $ queue_depth_arg $ shed_policy_arg $ oracle_timeout_arg
      $ drop_arg $ corrupt_arg $ retries_arg $ retransmissions_arg)
  in
  let info =
    Cmd.info "dcutd" ~version:"1.0.0"
      ~doc:
        "overload-tolerant cut-query serving daemon (deterministic synthetic \
         traffic)"
  in
  exit (Cmd.eval' (Cmd.v info term))

#!/bin/sh
# Determinism gate for the parallel trial engine: the whole test suite must
# pass, and the experiment tables must be byte-identical, with DCS_DOMAINS=1
# (sequential fallback) and DCS_DOMAINS=4 (parallel fan-out). Any divergence
# means per-trial seed-splitting leaked scheduling into a result.
#
# Usage: bin/check_determinism.sh [experiment ids...]   (default: E3 E4 E16)
#
# E16 is in the default set because it exercises the fault-injection layer:
# its drop/corruption/timeout/lie draws must come out of the split streams
# identically however the trials are scheduled.
set -eu

cd "$(dirname "$0")/.."
experiments="${*:-E3 E4 E16}"

echo "== building =="
dune build bench/main.exe test/main.exe

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Strip the wall-clock footers ("[E3 done in 1.2s]" and the total): timing
# is the one thing allowed to differ between runs.
run_bench () {
    # shellcheck disable=SC2086
    DCS_DOMAINS="$1" dune exec --no-build bench/main.exe -- --only $experiments \
        | grep -v ' done in '
}

echo "== experiments ($experiments) with DCS_DOMAINS=1 =="
run_bench 1 > "$tmpdir/domains1.out"
echo "== experiments ($experiments) with DCS_DOMAINS=4 =="
run_bench 4 > "$tmpdir/domains4.out"

if ! diff -u "$tmpdir/domains1.out" "$tmpdir/domains4.out"; then
    echo "FAIL: experiment output diverges between DCS_DOMAINS=1 and 4" >&2
    exit 1
fi
echo "experiment tables byte-identical across domain counts"

echo "== test suite with DCS_DOMAINS=1 =="
DCS_DOMAINS=1 dune exec --no-build test/main.exe
echo "== test suite with DCS_DOMAINS=4 =="
DCS_DOMAINS=4 dune exec --no-build test/main.exe

echo "OK: suite green and tables identical under DCS_DOMAINS=1 and 4"

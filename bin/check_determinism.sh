#!/bin/sh
# Determinism gate for the parallel trial engine: the whole test suite must
# pass, and the experiment tables must be byte-identical at DCS_DOMAINS=1
# (sequential fallback), 2 and 4 (parallel fan-out). Any divergence means
# per-trial seed-splitting leaked scheduling into a result.
#
# Usage: bin/check_determinism.sh [experiment ids...]
#                                 (default: E3 E4 E16 E17 E19 E20 E21 E22 E23 E24)
#
# Experiments are diffed ONE AT A TIME so the first divergence fails fast
# and names the experiment (a combined run could only say "something in the
# battery differs" after paying for all of it).
#
# E19 is in the default set because it drives both graph representations —
# the hashtable adjacency and the frozen CSR arrays — through the same
# decodes and cut evaluations: its agreement flags and csr.* counter checks
# must come out identical at every domain count (wall-clock figures go to
# stderr and never enter the diff).
#
# E20 is in the default set because it drives the chunked pool and the
# batched CSR kernels (cut_many / flip_sweep) through the decode battery, a
# k = 28 enumerate and a Karger sweep at explicit domain counts 1/2/4
# *inside* the experiment; the gate re-runs it under each DCS_DOMAINS value
# to prove the ambient domain count leaks into nothing.
#
# E21 is in the default set because it replays a million-request serving
# trace through dcutd's engine — token-bucket admission, bounded-queue
# shedding, wire give-ups, jittered oracle retries, circuit-breaker
# degradation — under five scenarios. Virtual time keeps every latency and
# shed decision a pure function of (trace, config, seed), so the whole
# throughput x p50/p99 x shed-rate table must be byte-identical at every
# DCS_DOMAINS value.
#
# E16 is in the default set because it exercises the fault-injection layer:
# its drop/corruption/timeout/lie draws must come out of the split streams
# identically however the trials are scheduled. E17 is the chaos harness —
# supervised restarts, checkpoint corruption recovery and stragglers all
# have to produce the same tables at every domain count.
#
# E22 is in the default set because it is the streaming chaos battery:
# WAL recovery digests, adversarial replay accounting, the streamed-vs-
# batch E3/E4 decode reruns and the live-mutation serving table must all
# come out byte-identical at every domain count.
#
# E23 is in the default set because it is the scheduler's own contract: it
# replays the merged E3/E4/E19/E20 stage DAG cold and warm against one
# artifact store (stdout must be byte-identical, warm hit rate >= 50%,
# sched.* registry = scheduler reports) and walks the disk tier through a
# bit-flip/recompute/repair cycle — all of it must come out identical at
# every DCS_DOMAINS value, since the artifact bytes are the cache keys.
# The gate additionally runs a cross-process --sched-cache cycle below: a
# cold E3+E4+E24 run fills a cache directory at DCS_DOMAINS=1 and warm
# reruns at 1, 2 and 4 must reproduce the cold stdout byte for byte from
# disk.
#
# E24 is in the default set because it is the sparsify-then-solve pipeline:
# connectivity estimation fans capped max-flows across the worker pool, the
# sampler draws one Prng.split stream per edge, and the speed stage re-runs
# the whole sparse pipeline at explicit domain counts 1/2/4 inside the
# experiment — its tables (and the >= 3x floor it enforces on every cold
# run) must be byte-identical at every ambient DCS_DOMAINS value. Wall
# clock goes to stderr. It also joins the --sched-cache cycle below: its
# quality floors are re-verified in the report closure, so a warm run must
# still pass them from cached artifacts alone.
#
# The gate also runs a kill-then-resume cycle on E16 (the checkpoint-aware
# sweep) at DCS_DOMAINS=1, 2 and 4: the run is interrupted by --abort-after
# (exit 3, snapshots on disk), restarted with --resume, and the combined
# stdout must be byte-identical to an uninterrupted run's. E22 gets the
# same treatment through its WAL-backed journal (DCS_STREAM_DIR /
# DCS_STREAM_KILL): the journaled ingest is killed at a record boundary
# mid-stream (exit 3), reopened in the same directory — snapshot restore
# plus WAL replay — and the finished run's stdout must be byte-identical
# to an uninterrupted run's.
#
# Finally it runs E18 (the instrumented profiling pass) with DCS_METRICS
# pointing at a snapshot file, at DCS_DOMAINS=1, 2 and 4, and diffs the
# metrics JSON: the Obs.Metrics registry carries counts only (no wall
# clock), so the sharded counters must merge to byte-identical snapshots at
# every domain count. E18's stdout contains a wall-clock hot-path table and
# trace files are timing by definition, so neither joins the diff — only
# the metrics snapshot does.
set -eu

cd "$(dirname "$0")/.."
experiments="${*:-E3 E4 E16 E17 E19 E20 E21 E22 E23 E24}"
domain_counts="1 2 4"

echo "== building (bench, tests, @batched, @serve, @stream, @sched, @sparsolve suites) =="
dune build bench/main.exe test/main.exe @batched @serve @stream @sched @sparsolve

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Strip the wall-clock footers ("[E3 done in 1.2s]" and the total): timing
# is the one thing allowed to differ between runs.
run_bench () {
    DCS_DOMAINS="$1" dune exec --no-build bench/main.exe -- --only "$2" \
        | grep -v ' done in '
}

echo "== experiment-by-experiment diff at DCS_DOMAINS=$domain_counts =="
for exp in $experiments; do
    ref="$tmpdir/${exp}_d1.out"
    run_bench 1 "$exp" > "$ref"
    for d in 2 4; do
        out="$tmpdir/${exp}_d$d.out"
        run_bench "$d" "$exp" > "$out"
        if ! diff -u "$ref" "$out"; then
            echo "FAIL: $exp output diverges between DCS_DOMAINS=1 and $d" >&2
            exit 1
        fi
    done
    echo "  $exp: byte-identical at DCS_DOMAINS=$domain_counts"
done
echo "experiment tables byte-identical across domain counts"

echo "== scheduler disk-cache cycle (E3+E4+E24, --sched-cache) =="
sched_cache="$tmpdir/sched_cache"
DCS_DOMAINS=1 dune exec --no-build bench/main.exe -- --only E3 E4 E24 \
    --sched-cache "$sched_cache" 2> /dev/null \
    | grep -v ' done in ' > "$tmpdir/sched_cold.out"
for d in 1 2 4; do
    # Warm rerun out of the spilled artifacts, in a fresh process at each
    # domain count: stdout must match the cold run byte for byte, and the
    # scheduler summary (stderr) must report zero stage runs (E24's
    # quality/speed floors are still re-checked from the cached artifacts).
    DCS_DOMAINS="$d" dune exec --no-build bench/main.exe -- --only E3 E4 E24 \
        --sched-cache "$sched_cache" 2> "$tmpdir/sched_warm_d$d.err" \
        | grep -v ' done in ' > "$tmpdir/sched_warm_d$d.out"
    if ! diff -u "$tmpdir/sched_cold.out" "$tmpdir/sched_warm_d$d.out"; then
        echo "FAIL: warm --sched-cache run diverges from cold at DCS_DOMAINS=$d" >&2
        exit 1
    fi
    if ! grep -q ' 0 ran ' "$tmpdir/sched_warm_d$d.err"; then
        echo "FAIL: warm --sched-cache run recomputed stages at DCS_DOMAINS=$d" >&2
        grep '\[sched:' "$tmpdir/sched_warm_d$d.err" >&2 || true
        exit 1
    fi
    echo "  DCS_DOMAINS=$d: warm run all-hits, byte-identical to cold"
done
echo "scheduler disk cache byte-identical cold vs warm at DCS_DOMAINS=1, 2 and 4"

echo "== kill-then-resume cycle (E16, --abort-after 30) =="
DCS_DOMAINS=1 dune exec --no-build bench/main.exe -- --only E16 \
    | grep -v ' done in ' > "$tmpdir/resume_ref.out"
for d in 1 2 4; do
    ckpt="$tmpdir/ckpt_d$d"
    # Phase 1: simulated kill. Exit status 3 means "interrupted with the
    # snapshot flushed"; anything else is a failure of the abort plumbing.
    status=0
    DCS_DOMAINS="$d" dune exec --no-build bench/main.exe -- --only E16 \
        --checkpoint "$ckpt" --abort-after 30 \
        > /dev/null 2> /dev/null || status=$?
    if [ "$status" -ne 3 ]; then
        echo "FAIL: --abort-after exited with $status (want 3) at DCS_DOMAINS=$d" >&2
        exit 1
    fi
    # Phase 2: resume from the snapshots; stdout must match the
    # uninterrupted reference byte for byte.
    DCS_DOMAINS="$d" dune exec --no-build bench/main.exe -- --only E16 \
        --checkpoint "$ckpt" --resume 2> /dev/null \
        | grep -v ' done in ' > "$tmpdir/resumed_d$d.out"
    if ! diff -u "$tmpdir/resume_ref.out" "$tmpdir/resumed_d$d.out"; then
        echo "FAIL: resumed run diverges from uninterrupted run at DCS_DOMAINS=$d" >&2
        exit 1
    fi
    echo "  DCS_DOMAINS=$d: interrupted (exit 3), resumed, byte-identical"
done
echo "kill-then-resume cycle byte-identical at DCS_DOMAINS=1, 2 and 4"

echo "== WAL kill-then-replay cycle (E22, DCS_STREAM_KILL=20) =="
DCS_DOMAINS=1 DCS_STREAM_DIR="$tmpdir/wal_ref" \
    dune exec --no-build bench/main.exe -- --only E22 2> /dev/null \
    | grep -v ' done in ' > "$tmpdir/wal_ref.out"
for d in 1 2 4; do
    wal="$tmpdir/wal_d$d"
    # Phase 1: kill the journaled ingest after 20 fresh records. Exit 3
    # means "interrupted at a record boundary, WAL flushed"; anything
    # else is a failure of the crash plumbing.
    status=0
    DCS_DOMAINS="$d" DCS_STREAM_DIR="$wal" DCS_STREAM_KILL=20 \
        dune exec --no-build bench/main.exe -- --only E22 \
        > /dev/null 2> /dev/null || status=$?
    if [ "$status" -ne 3 ]; then
        echo "FAIL: DCS_STREAM_KILL exited with $status (want 3) at DCS_DOMAINS=$d" >&2
        exit 1
    fi
    # Phase 2: reopen the same journal directory — snapshot restore plus
    # WAL replay — and finish the stream; stdout must match the
    # uninterrupted reference byte for byte.
    DCS_DOMAINS="$d" DCS_STREAM_DIR="$wal" \
        dune exec --no-build bench/main.exe -- --only E22 2> /dev/null \
        | grep -v ' done in ' > "$tmpdir/wal_resumed_d$d.out"
    if ! diff -u "$tmpdir/wal_ref.out" "$tmpdir/wal_resumed_d$d.out"; then
        echo "FAIL: WAL-replayed run diverges from uninterrupted run at DCS_DOMAINS=$d" >&2
        exit 1
    fi
    echo "  DCS_DOMAINS=$d: killed at a record boundary (exit 3), replayed, byte-identical"
done
echo "WAL kill-then-replay cycle byte-identical at DCS_DOMAINS=1, 2 and 4"

echo "== metrics snapshots (E18, DCS_METRICS) =="
for d in 1 2 4; do
    DCS_DOMAINS="$d" DCS_METRICS="$tmpdir/metrics_d$d.json" \
        dune exec --no-build bench/main.exe -- --only E18 \
        > /dev/null 2> /dev/null
done
for d in 2 4; do
    if ! diff -u "$tmpdir/metrics_d1.json" "$tmpdir/metrics_d$d.json"; then
        echo "FAIL: E18 metrics snapshot diverges between DCS_DOMAINS=1 and $d" >&2
        exit 1
    fi
done
echo "E18 metrics snapshots byte-identical at DCS_DOMAINS=1, 2 and 4"

echo "== batched kernel suite (@batched) with DCS_DOMAINS=1 and 4 =="
DCS_DOMAINS=1 dune exec --no-build test/batched/main_batched.exe > /dev/null
DCS_DOMAINS=4 dune exec --no-build test/batched/main_batched.exe > /dev/null
echo "batched kernel suite green at DCS_DOMAINS=1 and 4"

echo "== scheduler suite (@sched) with DCS_DOMAINS=1 and 4 =="
DCS_DOMAINS=1 dune exec --no-build test/sched/main_sched.exe > /dev/null
DCS_DOMAINS=4 dune exec --no-build test/sched/main_sched.exe > /dev/null
echo "scheduler suite green at DCS_DOMAINS=1 and 4"

echo "== sparsify-then-solve suite (@sparsolve) with DCS_DOMAINS=1 and 4 =="
DCS_DOMAINS=1 dune exec --no-build test/sparsolve/main_sparsolve.exe > /dev/null
DCS_DOMAINS=4 dune exec --no-build test/sparsolve/main_sparsolve.exe > /dev/null
echo "sparsify-then-solve suite green at DCS_DOMAINS=1 and 4"

echo "== serving-layer suite (@serve) with DCS_DOMAINS=1 and 4 =="
DCS_DOMAINS=1 dune exec --no-build test/serve/main_serve.exe > /dev/null
DCS_DOMAINS=4 dune exec --no-build test/serve/main_serve.exe > /dev/null
echo "serving-layer suite green at DCS_DOMAINS=1 and 4"

echo "== streaming suite (@stream) with DCS_DOMAINS=1 and 4 =="
DCS_DOMAINS=1 dune exec --no-build test/stream/main_stream.exe > /dev/null
DCS_DOMAINS=4 dune exec --no-build test/stream/main_stream.exe > /dev/null
echo "streaming suite green at DCS_DOMAINS=1 and 4"

echo "== test suite with DCS_DOMAINS=1 =="
DCS_DOMAINS=1 dune exec --no-build test/main.exe
echo "== test suite with DCS_DOMAINS=4 =="
DCS_DOMAINS=4 dune exec --no-build test/main.exe

echo "OK: suites green, tables identical per experiment, kill/resume identical, metrics snapshots identical under DCS_DOMAINS=1, 2 and 4"

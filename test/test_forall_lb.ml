open Dcs
module F = Forall_lb

let check_float = Alcotest.(check (float 1e-9))

let small_params () = F.make_params ~beta:2 ~inv_eps_sq:8 32
(* block k = 16, chains = 2, strings per pair = 32, h = 32. *)

(* --- parameters and addressing --- *)

let test_params_derived () =
  let p = small_params () in
  Alcotest.(check int) "block" 16 (F.block_size p);
  Alcotest.(check int) "strings/pair" 32 (F.strings_per_pair p);
  Alcotest.(check int) "h" 32 (F.total_strings p);
  Alcotest.(check int) "bits" 256 (F.bits_capacity p);
  check_float "balance bound" 4.0 (F.balance_upper_bound p)

let test_params_validation () =
  Alcotest.check_raises "d multiple of 4"
    (Invalid_argument "Forall_lb: 1/eps^2 must be a positive multiple of 4")
    (fun () -> ignore (F.make_params ~beta:2 ~inv_eps_sq:6 24));
  Alcotest.check_raises "n multiple of block"
    (Invalid_argument
       "Forall_lb: n (20) must be a multiple of block 16 with at least 2 blocks")
    (fun () -> ignore (F.make_params ~beta:2 ~inv_eps_sq:8 20))

let test_address_roundtrip () =
  let p = small_params () in
  for g = 0 to F.total_strings p - 1 do
    let a = F.address_of_string_index p g in
    Alcotest.(check int) "roundtrip" g (F.string_index_of_address p a);
    Alcotest.(check bool) "ranges" true
      (a.F.pair = 0 && a.F.i >= 0 && a.F.i < 16 && a.F.j >= 0 && a.F.j < 2)
  done

(* --- encoding --- *)

let random_inst seed p =
  let rng = Prng.create seed in
  F.random_instance rng p

let test_encode_graph_shape () =
  let p = small_params () in
  let inst = random_inst 1 p in
  Alcotest.(check int) "n" 32 (Digraph.n inst.F.graph);
  (* forward 16*16 + backward 16*16 for the single pair *)
  Alcotest.(check int) "m" 512 (Digraph.m inst.F.graph)

let test_encode_weights () =
  let p = small_params () in
  let inst = random_inst 2 p in
  Digraph.iter_edges inst.F.graph (fun u v w ->
      if u < 16 && v >= 16 then
        Alcotest.(check bool) "forward in {1,2}" true (w = 1.0 || w = 2.0)
      else if u >= 16 && v < 16 then check_float "backward 1/beta" 0.5 w
      else Alcotest.fail "edge crosses nonadjacent blocks")

let test_encode_forward_matches_strings () =
  let p = small_params () in
  let inst = random_inst 3 p in
  (* Weight of (l_i, v-th of R_j) is s_{i,j}(v) + 1. *)
  for i = 0 to 15 do
    for j = 0 to 1 do
      let s = inst.F.gh.Gap_hamming.strings.(F.string_index_of_address p { pair = 0; i; j }) in
      for v = 0 to 7 do
        let expected = if s.(v) then 2.0 else 1.0 in
        check_float "weight encodes bit" expected
          (Digraph.weight inst.F.graph i (16 + (j * 8) + v))
      done
    done
  done

let test_encode_balance () =
  let p = small_params () in
  let inst = random_inst 4 p in
  Alcotest.(check bool) "2β-balanced edgewise" true
    (Balance.edgewise_upper_bound inst.F.graph <= 4.0 +. 1e-9)

let test_encode_strongly_connected () =
  let p = small_params () in
  let inst = random_inst 5 p in
  Alcotest.(check bool) "strongly connected" true
    (Traversal.is_strongly_connected inst.F.graph)

(* --- query cuts and fixed backward weights --- *)

let test_fixed_backward_matches_skeleton () =
  let p = small_params () in
  let lay = F.layout p in
  let skeleton = Layout.backward_skeleton lay ~weight:0.5 in
  let rng = Prng.create 6 in
  let t = Bitstring.random_weight rng ~n:8 ~weight:4 in
  List.iter
    (fun (j, u_size) ->
      let a = { F.pair = 0; i = 3; j } in
      (* arbitrary U of the right size *)
      let u_mem o = o < u_size in
      let s = F.query_cut p a ~u_mem ~t in
      check_float
        (Printf.sprintf "j=%d u=%d" j u_size)
        (F.fixed_backward_weight p a ~u_size)
        (Cut.value skeleton s))
    [ (0, 8); (1, 8); (0, 1); (1, 1) ]

let test_estimate_w_ut_exact () =
  let p = small_params () in
  let inst = random_inst 7 p in
  let sk = Exact_sketch.create inst.F.graph in
  let rng = Prng.create 8 in
  let t = Bitstring.random_weight rng ~n:8 ~weight:4 in
  let a = { F.pair = 0; i = 0; j = 1 } in
  let u_mem o = o mod 2 = 0 in
  let est = F.estimate_w_ut p ~query:sk.Sketch.query a ~u_mem ~t in
  (* direct w(U, T) *)
  let direct = ref 0.0 in
  for i = 0 to 15 do
    if u_mem i then
      for v = 0 to 7 do
        if t.(v) then
          direct := !direct +. Digraph.weight inst.F.graph i (16 + 8 + v)
      done
  done;
  check_float "estimate = w(U,T)" !direct est

(* --- decoding --- *)

let test_decode_enumerate_exact_high_success () =
  let rng = Prng.create 9 in
  let p = small_params () in
  let st =
    F.run_trials rng p
      ~sketch_of:(fun _ inst -> Exact_sketch.create inst.F.graph)
      ~decoder:`Enumerate ~trials:30
  in
  Alcotest.(check bool) "success >= 2/3" true (st.F.success_rate >= 0.67)

let test_decode_topk_exact_high_success () =
  let rng = Prng.create 10 in
  let p = small_params () in
  let st =
    F.run_trials rng p
      ~sketch_of:(fun _ inst -> Exact_sketch.create inst.F.graph)
      ~decoder:`Topk ~trials:40
  in
  Alcotest.(check bool) "success >= 2/3" true (st.F.success_rate >= 0.67)

let test_decode_single_query_exact () =
  (* With an exact oracle even the one-query decoder works. *)
  let rng = Prng.create 11 in
  let p = small_params () in
  let st =
    F.run_trials rng p
      ~sketch_of:(fun _ inst -> Exact_sketch.create inst.F.graph)
      ~decoder:`Single ~trials:40
  in
  Alcotest.(check bool) "success = 1 with exact oracle" true (st.F.success_rate >= 0.99)

let test_single_query_collapses_before_enumerate () =
  (* The paper's Section 4 narrative: at noise where the one-query decoder
     is near chance, the Lemma 4.4 enumeration still succeeds. *)
  let rng = Prng.create 12 in
  let p = small_params () in
  let noise = 0.05 in
  let single =
    F.run_trials rng p
      ~sketch_of:(fun r inst ->
        Noisy_oracle.create ~mode:Noisy_oracle.Random r ~eps:noise inst.F.graph)
      ~decoder:`Single ~trials:120
  in
  let enum =
    F.run_trials rng p
      ~sketch_of:(fun r inst ->
        Noisy_oracle.create ~mode:Noisy_oracle.Random r ~eps:noise inst.F.graph)
      ~decoder:`Enumerate ~trials:60
  in
  Alcotest.(check bool) "single near chance" true (single.F.success_rate < 0.8);
  Alcotest.(check bool) "enumerate still strong" true (enum.F.success_rate >= 0.85);
  Alcotest.(check bool) "separation" true
    (enum.F.success_rate >= single.F.success_rate +. 0.1)

let test_decode_enumerate_guard () =
  let p = F.make_params ~beta:4 ~inv_eps_sq:8 64 in
  (* k = 32 > 20 *)
  let rng = Prng.create 13 in
  let inst = F.random_instance rng p in
  let sk = Exact_sketch.create inst.F.graph in
  Alcotest.check_raises "k too large"
    (Invalid_argument "Forall_lb.decode_enumerate: k too large (> 20)") (fun () ->
      ignore
        (F.decode_enumerate p ~query:sk.Sketch.query inst.F.target
           ~t:inst.F.gh.Gap_hamming.t))

let test_decode_enumerate_csr_matches_query_path () =
  (* The incremental CSR walk and the per-subset query path visit subsets in
     the same order with the same tie-break; on the dyadic encoder weights
     both float summation orders are exact, so decisions agree bit for bit. *)
  let p = small_params () in
  for seed = 20 to 29 do
    let inst = random_inst seed p in
    let g = inst.F.graph in
    let t = inst.F.gh.Gap_hamming.t in
    let query s = Cut.value g s in
    let via_query = F.decode_enumerate p ~query inst.F.target ~t in
    let via_csr = F.decode_enumerate ~graph:g p ~query inst.F.target ~t in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d decisions agree" seed)
      true (via_query = via_csr)
  done

let test_decode_enumerate_accepts_k24 () =
  (* k = 24 sat behind the old k > 20 guard; the CSR path walks its
     C(24,12) subsets incrementally. *)
  let p = F.make_params ~beta:2 ~inv_eps_sq:12 48 in
  Alcotest.(check int) "block" 24 (F.block_size p);
  let inst = random_inst 30 p in
  let d =
    F.decode_enumerate ~graph:inst.F.graph p
      ~query:(fun s -> Cut.value inst.F.graph s)
      inst.F.target ~t:inst.F.gh.Gap_hamming.t
  in
  Alcotest.(check bool) "exact sketch decodes correctly" true
    (d = F.correct_decision inst)

let test_decode_enumerate_csr_guard () =
  (* Even the CSR path has a ceiling. k = 32 > enumerate_guard = 28. *)
  Alcotest.(check int) "guard" 28 F.enumerate_guard;
  let p = F.make_params ~beta:4 ~inv_eps_sq:8 64 in
  let inst = random_inst 31 p in
  Alcotest.check_raises "k too large for csr"
    (Invalid_argument "Forall_lb.decode_enumerate: k too large (> 28)") (fun () ->
      ignore
        (F.decode_enumerate ~graph:inst.F.graph p
           ~query:(fun s -> Cut.value inst.F.graph s)
           inst.F.target ~t:inst.F.gh.Gap_hamming.t))

let test_topk_q_half_size () =
  let p = small_params () in
  let inst = random_inst 14 p in
  let q =
    F.topk_q_set p ~sketch_graph:inst.F.graph inst.F.target
      ~t:inst.F.gh.Gap_hamming.t
  in
  let size = Array.fold_left (fun a b -> if b then a + 1 else a) 0 q in
  Alcotest.(check int) "|Q| = k/2" 8 size

let test_lemma43_stats_reasonable () =
  (* With c small, E[|L_high|] and E[|L_low|] are close to a constant
     fraction of k; check they are nonzero on average and bounded by k. *)
  let rng = Prng.create 15 in
  let p = small_params () in
  let total_high = ref 0 and total_low = ref 0 in
  let trials = 40 in
  for _ = 1 to trials do
    let inst = F.random_instance rng p in
    let h, l = F.lemma43_stats inst in
    Alcotest.(check bool) "bounded" true (h + l <= F.block_size p);
    total_high := !total_high + h;
    total_low := !total_low + l
  done;
  Alcotest.(check bool) "some highs" true (!total_high > trials);
  Alcotest.(check bool) "some lows" true (!total_low > trials)

let test_codec_bits () =
  let p = small_params () in
  let bits = F.codec_bits p in
  Alcotest.(check bool) "~ h/eps^2" true
    (bits >= F.bits_capacity p && bits <= F.bits_capacity p + 200)

let test_codec_sketch_exact () =
  let p = small_params () in
  let inst = random_inst 16 p in
  let sk = F.codec_sketch inst in
  let rng = Prng.create 17 in
  for _ = 1 to 10 do
    let c = Cut.random rng ~n:32 in
    check_float "codec exact" (Cut.value inst.F.graph c) (sk.Sketch.query c)
  done

let test_correct_decision_mapping () =
  let p = small_params () in
  let inst = random_inst 18 p in
  let d = F.correct_decision inst in
  if inst.F.gh.Gap_hamming.high then
    Alcotest.(check bool) "high" true (d = F.Delta_high)
  else Alcotest.(check bool) "low" true (d = F.Delta_low)

(* --- the full Lemma 4.1 reduction through the codec --- *)

let test_gap_hamming_protocol_via_codec () =
  (* Alice's message = the instance codec (h/ε² bits); Bob decides the
     planted Hamming gap from it — the Theorem 1.2 reduction end-to-end. *)
  let rng = Prng.create 77 in
  let p = small_params () in
  let st =
    F.run_trials rng p
      ~sketch_of:(fun _ inst -> F.codec_sketch inst)
      ~decoder:`Topk ~trials:60
  in
  Alcotest.(check bool) "success >= 2/3" true (st.F.success_rate >= 0.67);
  Alcotest.(check bool) "message ~ h/eps^2 bits" true
    (st.F.mean_sketch_bits >= float_of_int (F.bits_capacity p))

(* qcheck: the top-k Q maximizes the additive score over half-size subsets
   (Lemma 4.4's argmax property for additive sketches): its total w(Q, T)
   on the true graph is at least that of any random half-size subset. *)
let prop_topk_maximizes_score =
  QCheck.Test.make ~name:"§4 top-k Q maximizes w(U,T)" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let p = F.make_params ~beta:1 ~inv_eps_sq:16 32 in
      let inst = F.random_instance rng p in
      let t = inst.F.gh.Gap_hamming.t in
      let a = inst.F.target in
      let q = F.topk_q_set p ~sketch_graph:inst.F.graph a ~t in
      let score mem =
        let acc = ref 0.0 in
        for i = 0 to 15 do
          if mem i then
            for v = 0 to 15 do
              if t.(v) then
                acc := !acc +. Digraph.weight inst.F.graph i (16 + (a.F.j * 16) + v)
            done
        done;
        !acc
      in
      let random_half = Cut.random_of_size rng ~n:16 ~k:8 in
      score (fun i -> q.(i)) >= score (Cut.mem random_half) -. 1e-9)

let suite =
  [
    Alcotest.test_case "params: derived" `Quick test_params_derived;
    Alcotest.test_case "params: validation" `Quick test_params_validation;
    Alcotest.test_case "address: roundtrip" `Quick test_address_roundtrip;
    Alcotest.test_case "encode: shape" `Quick test_encode_graph_shape;
    Alcotest.test_case "encode: weights" `Quick test_encode_weights;
    Alcotest.test_case "encode: strings -> weights" `Quick test_encode_forward_matches_strings;
    Alcotest.test_case "encode: balance" `Quick test_encode_balance;
    Alcotest.test_case "encode: strongly connected" `Quick test_encode_strongly_connected;
    Alcotest.test_case "fixed backward = skeleton" `Quick test_fixed_backward_matches_skeleton;
    Alcotest.test_case "estimate w(U,T) exact" `Quick test_estimate_w_ut_exact;
    Alcotest.test_case "decode: enumerate (exact)" `Quick test_decode_enumerate_exact_high_success;
    Alcotest.test_case "decode: topk (exact)" `Quick test_decode_topk_exact_high_success;
    Alcotest.test_case "decode: single query (exact)" `Quick test_decode_single_query_exact;
    Alcotest.test_case "single vs enumerate separation" `Quick test_single_query_collapses_before_enumerate;
    Alcotest.test_case "decode: enumerate guard" `Quick test_decode_enumerate_guard;
    Alcotest.test_case "decode: csr = query path" `Quick test_decode_enumerate_csr_matches_query_path;
    Alcotest.test_case "decode: accepts k = 24" `Quick test_decode_enumerate_accepts_k24;
    Alcotest.test_case "decode: csr guard" `Quick test_decode_enumerate_csr_guard;
    Alcotest.test_case "topk: |Q| = k/2" `Quick test_topk_q_half_size;
    Alcotest.test_case "lemma 4.3 statistics" `Quick test_lemma43_stats_reasonable;
    Alcotest.test_case "codec: bits" `Quick test_codec_bits;
    Alcotest.test_case "codec: exact" `Quick test_codec_sketch_exact;
    Alcotest.test_case "correct decision mapping" `Quick test_correct_decision_mapping;
    Alcotest.test_case "gap-hamming protocol via codec (Lemma 4.1)" `Quick test_gap_hamming_protocol_via_codec;
    QCheck_alcotest.to_alcotest prop_topk_maximizes_score;
  ]

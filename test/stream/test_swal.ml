(* The write-ahead log: the codec accepts exactly the image of encode,
   every single-bit flip and every torn byte position is detected (never
   silently applied), replay is idempotent and order-insensitive with
   halt-at-first-gap semantics, and the adversary's books always balance:
   applied + duplicates + stale + |quarantined| = offered. *)

open Dcs

let record seq op u v w = { Wal.seq; op; u; v; w }

let records_of_n k =
  List.init k (fun i ->
      let op = if i mod 3 = 2 then Wal.Delete else Wal.Insert in
      record (i + 1) op (i mod 7) ((i + 1) mod 7) (float_of_int ((i mod 4) + 1)))

let serialize rs = String.concat "" (List.map Wal.encode rs)

(* Replay into a pure accumulator: the apply function accepts everything,
   so the report shape depends only on the log's structure. *)
let replay_accept ?(base_seq = 0) scan =
  let applied = ref [] in
  let report =
    Wal.replay ~base_seq
      ~apply:(fun r ->
        applied := r :: !applied;
        Ok ())
      scan
  in
  (report, List.rev !applied)

let check_conservation report =
  Alcotest.(check int) "applied + dup + stale + |quarantined| = offered"
    report.Wal.offered
    (report.Wal.applied + report.Wal.duplicates + report.Wal.stale
    + List.length report.Wal.quarantined)

(* --- codec --- *)

let test_roundtrip () =
  List.iter
    (fun r ->
      let line = Wal.encode r in
      Alcotest.(check bool) "ends with newline" true
        (line.[String.length line - 1] = '\n');
      match Wal.decode (String.sub line 0 (String.length line - 1)) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error e -> Alcotest.fail ("decode failed: " ^ e))
    [
      record 1 Wal.Insert 0 1 1.0;
      record 2 Wal.Delete 5 3 0.5;
      record 1000000 Wal.Insert 123 456 3.0;
      record 7 Wal.Insert 2 9 0.1;
    ]

let test_decode_rejects () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Wal.decode s)) in
  bad "";
  bad "garbage";
  bad "DCSW2 00000000 1 I 0 1 0x1p+0";
  let good = record 3 Wal.Insert 1 2 2.0 in
  let line = Wal.encode good in
  let line = String.sub line 0 (String.length line - 1) in
  bad (line ^ " extra");
  bad (String.uppercase_ascii line);
  (* A forged record with the right shape but the wrong checksum. *)
  bad "DCSW1 deadbeef 3 I 1 2 0x1p+1"

let test_decode_rejects_bad_fields () =
  (* Re-frame bodies with correct CRCs so only the semantic check fires. *)
  let framed body = Printf.sprintf "DCSW1 %08x %s" (Checksum.crc32 body) body in
  let bad name body =
    Alcotest.(check bool) name true (Result.is_error (Wal.decode (framed body)))
  in
  bad "seq zero" "0 I 0 1 0x1p+0";
  bad "negative vertex" "1 I -1 1 0x1p+0";
  bad "bad op" "1 X 0 1 0x1p+0";
  bad "zero weight" "1 I 0 1 0x0p+0";
  bad "negative weight" "1 I 0 1 -0x1p+0";
  bad "nan weight" "1 I 0 1 nan";
  bad "inf weight" "1 I 0 1 infinity";
  bad "field count" "1 I 0 1";
  (* Same record, non-canonical rendering: decimal weight, padded seq. *)
  bad "non-canonical weight" "1 I 0 1 1.0";
  bad "non-canonical seq" "01 I 0 1 0x1p+0"

let test_every_bit_flip_detected () =
  let r = record 42 Wal.Insert 3 5 2.0 in
  let line = Wal.encode r in
  let payload = String.length line - 1 in
  for i = 0 to payload - 1 do
    for b = 0 to 7 do
      let bytes = Bytes.of_string line in
      Bytes.set bytes i (Char.chr (Char.code line.[i] lxor (1 lsl b)));
      let flipped = Bytes.to_string bytes in
      if not (String.contains (String.sub flipped 0 payload) '\n') then
        match Wal.decode (String.sub flipped 0 payload) with
        | Ok r' ->
            if r' <> r then
              Alcotest.fail
                (Printf.sprintf "bit %d of byte %d yielded a different record"
                   b i)
        | Error _ -> ()
    done
  done

(* --- scanning --- *)

let test_scan_clean () =
  let rs = records_of_n 10 in
  let scan = Wal.scan_string (serialize rs) in
  Alcotest.(check int) "units" 10 scan.Wal.units;
  Alcotest.(check int) "records" 10 (List.length scan.Wal.records);
  Alcotest.(check int) "damaged" 0 (List.length scan.Wal.damaged);
  Alcotest.(check bool) "in order" true (scan.Wal.records = rs)

let test_scan_empty () =
  let scan = Wal.scan_string "" in
  Alcotest.(check int) "units" 0 scan.Wal.units;
  Alcotest.(check int) "records" 0 (List.length scan.Wal.records)

let test_scan_resyncs_after_damage () =
  let rs = records_of_n 3 in
  let raw =
    match rs with
    | [ a; b; c ] -> Wal.encode a ^ "this line is noise\n" ^ Wal.encode b ^ Wal.encode c
    | _ -> assert false
  in
  let scan = Wal.scan_string raw in
  Alcotest.(check int) "units" 4 scan.Wal.units;
  Alcotest.(check int) "records survive around damage" 3
    (List.length scan.Wal.records);
  match scan.Wal.damaged with
  | [ Wal.Corrupt { line = 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly one corrupt line at index 1"

let test_torn_tail_every_byte () =
  let rs = records_of_n 4 in
  let raw = serialize rs in
  let lens = List.map (fun r -> String.length (Wal.encode r)) rs in
  for at = 0 to String.length raw do
    let torn = Wal.Adversary.tear raw ~at in
    let scan = Wal.scan_string torn in
    (* How many whole records does a cut at [at] preserve? *)
    let rec whole acc = function
      | l :: tl when acc + l <= at -> 1 + whole (acc + l) tl
      | _ -> 0
    in
    let complete = whole 0 lens in
    let partial = if at > List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < complete) lens) then 1 else 0 in
    Alcotest.(check int)
      (Printf.sprintf "records at tear %d" at)
      complete
      (List.length scan.Wal.records);
    Alcotest.(check int)
      (Printf.sprintf "units at tear %d" at)
      (complete + partial) scan.Wal.units;
    match scan.Wal.damaged with
    | [] -> Alcotest.(check int) "no damage means clean cut" 0 partial
    | [ Wal.Torn { bytes; _ } ] ->
        Alcotest.(check int) "torn unit" 1 partial;
        Alcotest.(check bool) "torn bytes positive" true (bytes > 0)
    | _ -> Alcotest.fail "a tear damages at most the tail"
  done

(* --- replay --- *)

let test_replay_clean () =
  let rs = records_of_n 12 in
  let report, applied = replay_accept (Wal.scan_string (serialize rs)) in
  Alcotest.(check int) "applied" 12 report.Wal.applied;
  Alcotest.(check int) "last_seq" 12 report.Wal.last_seq;
  Alcotest.(check int) "nothing quarantined" 0 (List.length report.Wal.quarantined);
  Alcotest.(check bool) "in order" true (applied = rs);
  check_conservation report

let test_replay_dedup_and_reorder () =
  let rs = records_of_n 6 in
  let shuffled =
    match rs with
    | [ a; b; c; d; e; f ] -> [ b; a; c; c; e; d; f; a ]
    | _ -> assert false
  in
  let report, applied = replay_accept (Wal.scan_string (serialize shuffled)) in
  Alcotest.(check int) "applied once each" 6 report.Wal.applied;
  Alcotest.(check int) "duplicates" 2 report.Wal.duplicates;
  Alcotest.(check int) "last_seq" 6 report.Wal.last_seq;
  Alcotest.(check bool) "sequence order restored" true (applied = rs);
  check_conservation report

let test_replay_stale_below_snapshot () =
  let rs = records_of_n 8 in
  let report, applied = replay_accept ~base_seq:5 (Wal.scan_string (serialize rs)) in
  Alcotest.(check int) "stale" 5 report.Wal.stale;
  Alcotest.(check int) "applied" 3 report.Wal.applied;
  Alcotest.(check int) "last_seq" 8 report.Wal.last_seq;
  Alcotest.(check bool) "only the suffix applied" true
    (List.map (fun r -> r.Wal.seq) applied = [ 6; 7; 8 ]);
  check_conservation report

let test_replay_halts_at_gap () =
  let rs = records_of_n 9 in
  let with_hole = List.filter (fun r -> r.Wal.seq <> 4) rs in
  let report, _ = replay_accept (Wal.scan_string (serialize with_hole)) in
  Alcotest.(check int) "applied up to the hole" 3 report.Wal.applied;
  Alcotest.(check int) "last_seq stops before the hole" 3 report.Wal.last_seq;
  Alcotest.(check int) "everything after is quarantined" 5
    (List.length report.Wal.quarantined);
  List.iter
    (function
      | Wal.Gap { expected = 4; _ } -> ()
      | q -> Alcotest.fail ("expected a gap at 4, got " ^ Wal.pp_quarantine q))
    report.Wal.quarantined;
  check_conservation report

let test_replay_bad_op_consumes_slot () =
  let rs = records_of_n 5 in
  let poison = 3 in
  let applied = ref [] in
  let report =
    Wal.replay ~base_seq:0
      ~apply:(fun r ->
        if r.Wal.seq = poison then Error "rejected by the state"
        else begin
          applied := r.Wal.seq :: !applied;
          Ok ()
        end)
      (Wal.scan_string (serialize rs))
  in
  Alcotest.(check int) "applied" 4 report.Wal.applied;
  Alcotest.(check int) "last_seq covers the consumed slot" 5 report.Wal.last_seq;
  (match report.Wal.quarantined with
  | [ Wal.Bad_op { record; _ } ] ->
      Alcotest.(check int) "poisoned seq" poison record.Wal.seq
  | _ -> Alcotest.fail "expected exactly one Bad_op");
  Alcotest.(check bool) "later records still applied" true
    (List.rev !applied = [ 1; 2; 4; 5 ]);
  check_conservation report

let test_replay_damaged_quarantined () =
  let rs = records_of_n 4 in
  let raw = serialize rs ^ "partial tail without newline" in
  let report, _ = replay_accept (Wal.scan_string raw) in
  Alcotest.(check int) "offered counts the tail" 5 report.Wal.offered;
  (match report.Wal.quarantined with
  | [ Wal.Damaged (Wal.Torn _) ] -> ()
  | _ -> Alcotest.fail "expected the torn tail quarantined");
  check_conservation report

(* --- writer --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "dcs_wal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_writer_roundtrip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create_writer ~path ~next_seq:1 () in
      let appended =
        List.map
          (fun i ->
            Wal.append w (if i mod 2 = 0 then Wal.Insert else Wal.Delete)
              ~u:i ~v:(i + 1) ~w:1.0)
          [ 0; 1; 2; 3 ]
      in
      Alcotest.(check int) "next_seq advanced" 5 (Wal.next_seq w);
      Wal.close_writer w;
      (* Appending re-opens where the log left off. *)
      let w2 = Wal.create_writer ~path ~next_seq:5 () in
      let r5 = Wal.append w2 Wal.Insert ~u:9 ~v:8 ~w:2.0 in
      Wal.close_writer w2;
      match Wal.scan_file ~path with
      | Error e -> Alcotest.fail e
      | Ok scan ->
          Alcotest.(check int) "all records scanned" 5 (List.length scan.Wal.records);
          Alcotest.(check bool) "identical" true
            (scan.Wal.records = appended @ [ r5 ]))

let test_writer_truncate () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let w = Wal.create_writer ~path ~next_seq:1 () in
      ignore (Wal.append w Wal.Insert ~u:0 ~v:1 ~w:1.0);
      Wal.close_writer w;
      let w = Wal.create_writer ~truncate:true ~path ~next_seq:8 () in
      let r = Wal.append w Wal.Insert ~u:2 ~v:3 ~w:1.0 in
      Wal.close_writer w;
      Alcotest.(check int) "numbering continues across truncation" 8 r.Wal.seq;
      match Wal.scan_file ~path with
      | Error e -> Alcotest.fail e
      | Ok scan ->
          Alcotest.(check int) "only the new record" 1 (List.length scan.Wal.records))

let test_scan_missing_file () =
  match Wal.scan_file ~path:"/nonexistent/dcs/wal.log" with
  | Ok scan -> Alcotest.(check int) "missing scans empty" 0 scan.Wal.units
  | Error e -> Alcotest.fail e

(* --- adversary --- *)

let qcheck_adversary_conservation =
  QCheck.Test.make ~count:60
    ~name:"mangled logs: applied + dup + stale + |quarantined| = offered"
    QCheck.(
      quad (int_range 0 40) (int_bound 10_000) (int_bound 3) (int_bound 3))
    (fun (k, seed, c10, d10) ->
      let rs = records_of_n k in
      let policy =
        Fault.policy
          ~drop:(float_of_int d10 /. 10.)
          ~corrupt:(float_of_int c10 /. 10.)
          ~timeout:0.2 ~lie:0.2 ()
      in
      let f = Fault.create policy (Prng.create seed) in
      let raw, inj = Wal.Adversary.mangle f rs in
      let scan = Wal.scan_string raw in
      (* Whole lines in, whole lines out: units are exactly the surviving
         emissions, and corruption never splits or merges frames. *)
      let emitted = k - inj.Wal.Adversary.dropped + inj.Wal.Adversary.duplicated in
      if scan.Wal.units <> emitted then
        QCheck.Test.fail_reportf "units %d <> emitted %d" scan.Wal.units emitted;
      let report, _ = replay_accept scan in
      check_conservation report;
      (* Damage is blamed on injected corruption alone: every flip is
         caught (CRC-32 detects all single-bit errors), and a corrupted
         record that was also duplicated damages both of its emissions. *)
      let damaged = List.length scan.Wal.damaged in
      inj.Wal.Adversary.corrupted <= damaged
      && damaged <= inj.Wal.Adversary.corrupted + inj.Wal.Adversary.duplicated)

let qcheck_zero_rate_adversary_is_identity =
  QCheck.Test.make ~count:30 ~name:"zero-rate adversary is the identity"
    QCheck.(pair (int_range 0 30) (int_bound 10_000))
    (fun (k, seed) ->
      let rs = records_of_n k in
      let f = Fault.create Fault.no_faults (Prng.create seed) in
      let raw, inj = Wal.Adversary.mangle f rs in
      raw = serialize rs
      && inj.Wal.Adversary.dropped = 0
      && inj.Wal.Adversary.corrupted = 0
      && inj.Wal.Adversary.duplicated = 0
      && inj.Wal.Adversary.reordered = 0)

let suite =
  [
    Alcotest.test_case "encode/decode roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "decode rejects malformed lines" `Quick test_decode_rejects;
    Alcotest.test_case "decode rejects bad fields" `Quick
      test_decode_rejects_bad_fields;
    Alcotest.test_case "every single-bit flip is detected" `Quick
      test_every_bit_flip_detected;
    Alcotest.test_case "scan: clean log" `Quick test_scan_clean;
    Alcotest.test_case "scan: empty log" `Quick test_scan_empty;
    Alcotest.test_case "scan: resyncs after a damaged line" `Quick
      test_scan_resyncs_after_damage;
    Alcotest.test_case "scan: torn tail at every byte" `Quick
      test_torn_tail_every_byte;
    Alcotest.test_case "replay: clean" `Quick test_replay_clean;
    Alcotest.test_case "replay: dedup and reorder" `Quick
      test_replay_dedup_and_reorder;
    Alcotest.test_case "replay: stale below the snapshot floor" `Quick
      test_replay_stale_below_snapshot;
    Alcotest.test_case "replay: halts at the first gap" `Quick
      test_replay_halts_at_gap;
    Alcotest.test_case "replay: a rejected op consumes its slot" `Quick
      test_replay_bad_op_consumes_slot;
    Alcotest.test_case "replay: damage is quarantined, never dropped" `Quick
      test_replay_damaged_quarantined;
    Alcotest.test_case "writer: append, reopen, scan" `Quick test_writer_roundtrip;
    Alcotest.test_case "writer: truncate keeps numbering" `Quick
      test_writer_truncate;
    Alcotest.test_case "scan: missing file is empty" `Quick test_scan_missing_file;
    QCheck_alcotest.to_alcotest qcheck_adversary_conservation;
    QCheck_alcotest.to_alcotest qcheck_zero_rate_adversary_is_identity;
  ]

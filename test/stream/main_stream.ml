let () =
  Alcotest.run "dcs-stream"
    [
      ("wal", Test_swal.suite);
      ("stream_sketch", Test_sstream.suite);
    ]

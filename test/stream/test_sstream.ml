(* The streaming sketch state: streamed ingest is indistinguishable —
   bit for bit — from batch-building the final graph; re-freeze policy
   changes performance, never content; rejected operations mutate
   nothing; and snapshot + WAL recovery reproduces the exact pre-kill
   state at every record boundary and every torn byte. *)

open Dcs

let n = 9

(* Interpret an arbitrary integer triple list as a *valid* op sequence:
   a deterministic shadow of per-arc weights decides whether each step
   inserts or deletes, so generated streams exercise both without ever
   tripping the below-zero guard (tested separately). All weights are
   small integers — the exact-float-sum convention every enforced
   battery uses. *)
let ops_of_spec spec =
  let weights = Hashtbl.create 64 in
  let get u v = Option.value ~default:0.0 (Hashtbl.find_opt weights (u, v)) in
  List.map
    (fun (a, b, c) ->
      let u = abs a mod n in
      let v0 = abs b mod n in
      let v = if v0 = u then (v0 + 1) mod n else v0 in
      let w = float_of_int ((abs c mod 3) + 1) in
      let op =
        if abs c mod 4 = 0 && get u v >= w then Wal.Delete else Wal.Insert
      in
      let signed = match op with Wal.Insert -> w | Wal.Delete -> -.w in
      Hashtbl.replace weights (u, v) (get u v +. signed);
      (op, u, v, w))
    spec

let final_digraph ops =
  let weights = Hashtbl.create 64 in
  let get u v = Option.value ~default:0.0 (Hashtbl.find_opt weights (u, v)) in
  List.iter
    (fun (op, u, v, w) ->
      let signed = match op with Wal.Insert -> w | Wal.Delete -> -.w in
      Hashtbl.replace weights (u, v) (get u v +. signed))
    ops;
  let g = Digraph.create n in
  Hashtbl.iter (fun (u, v) w -> if w > 0.0 then Digraph.add_edge g u v w) weights;
  g

let push t op ~u ~v ~w =
  match op with
  | Wal.Insert -> Stream_sketch.insert t ~u ~v ~w
  | Wal.Delete -> Stream_sketch.delete t ~u ~v ~w

let feed ?refreeze ops =
  let t = Stream_sketch.create ?refreeze ~n ~seed:42 () in
  List.iter (fun (op, u, v, w) -> push t op ~u ~v ~w) ops;
  t

(* A healthy mix of inserts, deletes and full cancellations. *)
let demo_spec =
  [
    (0, 1, 1); (1, 2, 2); (2, 3, 0); (0, 1, 4); (3, 4, 1); (1, 2, 4);
    (4, 5, 2); (0, 1, 0); (5, 6, 3); (2, 3, 4); (6, 7, 1); (0, 1, 8);
    (7, 8, 2); (1, 0, 1); (8, 0, 3); (3, 4, 0); (2, 1, 2); (5, 4, 1);
  ]

let cuts_of seed k =
  let rng = Prng.create seed in
  List.init k (fun _ -> Cut.random rng ~n)

(* --- streamed vs batch --- *)

let test_streamed_equals_batch_graph () =
  let ops = ops_of_spec demo_spec in
  let t = feed ops in
  let batch = Csr.of_digraph (final_digraph ops) in
  Alcotest.(check int64) "fingerprints agree" (Csr.fingerprint batch)
    (Stream_sketch.fingerprint t);
  List.iter
    (fun cut ->
      Alcotest.(check (float 0.0)) "cut values agree bit for bit"
        (Csr.cut_value batch cut)
        (Stream_sketch.cut_value t cut))
    (cuts_of 77 24)

let test_streamed_equals_batch_sketches () =
  let ops = ops_of_spec demo_spec in
  let t = feed ops in
  let g = final_digraph ops in
  let streamed = Stream_sketch.exact_sketch t in
  let batch = Exact_sketch.create (Csr.to_digraph (Csr.of_digraph g)) in
  Alcotest.(check int) "exact sketch sizes agree" batch.Sketch.size_bits
    streamed.Sketch.size_bits;
  let s_imb = Stream_sketch.imbalance_sketch t (Prng.create 9) ~eps:0.2 ~beta:2.0 in
  let b_imb = Imbalance_sketch.create (Prng.create 9) ~eps:0.2 ~beta:2.0 g in
  Alcotest.(check int) "imbalance sketch sizes agree" b_imb.Sketch.size_bits
    s_imb.Sketch.size_bits;
  List.iter
    (fun cut ->
      Alcotest.(check (float 0.0)) "exact sketch queries agree"
        (batch.Sketch.query cut) (streamed.Sketch.query cut);
      Alcotest.(check (float 0.0)) "imbalance sketch queries agree bit for bit"
        (b_imb.Sketch.query cut) (s_imb.Sketch.query cut))
    (cuts_of 78 16)

let test_imbalances_maintained () =
  let ops = ops_of_spec demo_spec in
  let t = feed ops in
  let expected = Imbalance_sketch.imbalances (final_digraph ops) in
  Alcotest.(check bool) "incremental imbalances exact" true
    (Stream_sketch.imbalances t = expected)

(* --- re-freeze policy: a performance knob, never a content knob --- *)

let policies =
  [
    ("rebuild", Stream_sketch.Rebuild);
    ("delta-1", Stream_sketch.Delta_buffer { compact_threshold = 1 });
    ("delta-4", Stream_sketch.Delta_buffer { compact_threshold = 4 });
    ("delta-64", Stream_sketch.Delta_buffer { compact_threshold = 64 });
  ]

let test_policy_invariance () =
  let ops = ops_of_spec demo_spec in
  let reference = Stream_sketch.digest (feed ~refreeze:Stream_sketch.Rebuild ops) in
  List.iter
    (fun (name, refreeze) ->
      let t = feed ~refreeze ops in
      Alcotest.(check bool)
        (Printf.sprintf "digest under %s" name)
        true
        (Int64.equal reference (Stream_sketch.digest t)))
    policies

let test_delta_threshold_respected () =
  let threshold = 3 in
  let t =
    Stream_sketch.create
      ~refreeze:(Stream_sketch.Delta_buffer { compact_threshold = threshold })
      ~n ~seed:42 ()
  in
  List.iter
    (fun (op, u, v, w) ->
      push t op ~u ~v ~w;
      Alcotest.(check bool) "overlay bounded" true
        (Stream_sketch.delta_pairs t <= threshold))
    (ops_of_spec demo_spec)

(* --- rejection --- *)

let test_rejects_leave_state_untouched () =
  let t = feed (ops_of_spec demo_spec) in
  let before = Stream_sketch.digest t in
  let expect_reject name f =
    (match f () with
    | exception Stream_sketch.Rejected _ -> ()
    | () -> Alcotest.fail (name ^ ": expected a rejection"));
    Alcotest.(check bool) (name ^ ": state untouched") true
      (Int64.equal before (Stream_sketch.digest t))
  in
  expect_reject "below zero" (fun () ->
      Stream_sketch.delete t ~u:0 ~v:1 ~w:1e9);
  expect_reject "out of range" (fun () ->
      Stream_sketch.insert t ~u:0 ~v:n ~w:1.0);
  expect_reject "self loop" (fun () -> Stream_sketch.insert t ~u:3 ~v:3 ~w:1.0);
  expect_reject "bad weight" (fun () ->
      Stream_sketch.insert t ~u:0 ~v:1 ~w:Float.nan);
  expect_reject "zero weight" (fun () -> Stream_sketch.insert t ~u:0 ~v:1 ~w:0.0)

let test_apply_reports_rejects () =
  let t = Stream_sketch.create ~n ~seed:1 () in
  (match Stream_sketch.apply t ~op:Wal.Delete ~u:0 ~v:1 ~w:1.0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "deleting from empty must fail");
  Alcotest.(check int) "nothing applied" 0 (Stream_sketch.arcs t)

(* --- support sampling --- *)

let test_sample_arc_live () =
  let ops = ops_of_spec demo_spec in
  let t = feed ops in
  let g = final_digraph ops in
  (match Stream_sketch.sample_arc t with
  | Some (u, v) ->
      Alcotest.(check bool) "sampled arc is live" true (Digraph.mem_edge g u v)
  | None -> Alcotest.fail "nonempty support must sample");
  (* Delete everything: the samplers must collapse back to zero. *)
  Digraph.iter_edges g (fun u v w -> Stream_sketch.delete t ~u ~v ~w);
  Alcotest.(check int) "no arcs" 0 (Stream_sketch.arcs t);
  Alcotest.(check (option (pair int int))) "empty support" None
    (Stream_sketch.sample_arc t)

(* --- durability --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "dcs_stream" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun g -> Sys.remove (Filename.concat dir g)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let journal_with dir ops =
  match Stream_sketch.open_journal ~dir ~n ~seed:42 () with
  | Error e -> Alcotest.fail e
  | Ok (j, _) ->
      List.iter
        (fun (op, u, v, w) ->
          let r =
            match op with
            | Wal.Insert -> Stream_sketch.journal_insert j ~u ~v ~w
            | Wal.Delete -> Stream_sketch.journal_delete j ~u ~v ~w
          in
          match r with Ok () -> () | Error e -> Alcotest.fail e)
        ops;
      j

let take k l = List.filteri (fun i _ -> i < k) l

let test_checkpoint_restore () =
  with_temp_dir (fun dir ->
      let snapshot = Filename.concat dir "snap.ckpt" in
      let ops = ops_of_spec demo_spec in
      let t = feed ops in
      Stream_sketch.checkpoint t ~path:snapshot;
      match
        Stream_sketch.recover ~n ~seed:42 ~snapshot
          ~wal:(Filename.concat dir "absent.log") ()
      with
      | Error e -> Alcotest.fail e
      | Ok { state; report; snapshot_seq } ->
          Alcotest.(check int) "nothing replayed" 0 report.Wal.offered;
          Alcotest.(check int) "floor" 0 snapshot_seq;
          Alcotest.(check bool) "restored state is byte-identical" true
            (Int64.equal (Stream_sketch.digest t) (Stream_sketch.digest state)))

let test_kill_at_every_record_boundary () =
  let ops = ops_of_spec demo_spec in
  let k = List.length ops in
  (* Reference digests: digest after i ops of one uninterrupted journal. *)
  let reference = Array.make (k + 1) Int64.zero in
  with_temp_dir (fun dir ->
      match Stream_sketch.open_journal ~dir ~n ~seed:42 () with
      | Error e -> Alcotest.fail e
      | Ok (j, _) ->
          reference.(0) <- Stream_sketch.digest (Stream_sketch.journal_state j);
          List.iteri
            (fun i (op, u, v, w) ->
              (match
                 match op with
                 | Wal.Insert -> Stream_sketch.journal_insert j ~u ~v ~w
                 | Wal.Delete -> Stream_sketch.journal_delete j ~u ~v ~w
               with
              | Ok () -> ()
              | Error e -> Alcotest.fail e);
              reference.(i + 1) <-
                Stream_sketch.digest (Stream_sketch.journal_state j))
            ops;
          Stream_sketch.close_journal j);
  (* Kill after every prefix: a journal stopped dead after i records
     (every append is flushed whole, so closing without a checkpoint is
     exactly a boundary kill) must recover to reference.(i). *)
  for i = 0 to k do
    with_temp_dir (fun dir ->
        let j = journal_with dir (take i ops) in
        Stream_sketch.close_journal j;
        match Stream_sketch.open_journal ~dir ~n ~seed:42 () with
        | Error e -> Alcotest.fail e
        | Ok (j2, report) ->
            Alcotest.(check int)
              (Printf.sprintf "kill at %d: replay applied" i)
              i report.Wal.applied;
            Alcotest.(check int) "no quarantine on a clean kill" 0
              (List.length report.Wal.quarantined);
            Alcotest.(check bool)
              (Printf.sprintf "kill at %d: digest reproduced" i)
              true
              (Int64.equal reference.(i)
                 (Stream_sketch.digest (Stream_sketch.journal_state j2)));
            Stream_sketch.close_journal j2)
  done

let test_torn_write_recovery () =
  let ops = ops_of_spec demo_spec in
  let k = List.length ops in
  with_temp_dir (fun dir ->
      (* A full log, then a tear at an awkward byte: recovery lands on the
         last intact boundary, reports the torn tail, and fresh appends
         after the recovery checkpoint are clean. *)
      let j = journal_with dir ops in
      Stream_sketch.close_journal j;
      let _, wal_path = (Filename.concat dir "snapshot.ckpt", Filename.concat dir "wal.log") in
      let raw = read_file wal_path in
      (* Tear mid-way through the last record. *)
      let at = String.length raw - 3 in
      write_file wal_path (Wal.Adversary.tear raw ~at);
      match Stream_sketch.open_journal ~dir ~n ~seed:42 () with
      | Error e -> Alcotest.fail e
      | Ok (j2, report) ->
          Alcotest.(check int) "one record lost to the tear" (k - 1)
            report.Wal.applied;
          (match report.Wal.quarantined with
          | [ Wal.Damaged (Wal.Torn _) ] -> ()
          | _ -> Alcotest.fail "expected exactly the torn tail quarantined");
          (* The recovered journal keeps working: the open-time checkpoint
             cleared the damaged tail out of the log's future. *)
          (match Stream_sketch.journal_insert j2 ~u:0 ~v:1 ~w:1.0 with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          Stream_sketch.close_journal j2;
          match Stream_sketch.open_journal ~dir ~n ~seed:42 () with
          | Error e -> Alcotest.fail e
          | Ok (j3, report3) ->
              Alcotest.(check int) "clean replay after recovery" 1
                report3.Wal.applied;
              Alcotest.(check int) "no residual quarantine" 0
                (List.length report3.Wal.quarantined);
              Stream_sketch.close_journal j3)

let test_periodic_checkpoint_compacts () =
  with_temp_dir (fun dir ->
      match Stream_sketch.open_journal ~checkpoint_every:4 ~dir ~n ~seed:42 () with
      | Error e -> Alcotest.fail e
      | Ok (j, _) ->
          let ops = ops_of_spec demo_spec in
          List.iter
            (fun (op, u, v, w) ->
              match
                match op with
                | Wal.Insert -> Stream_sketch.journal_insert j ~u ~v ~w
                | Wal.Delete -> Stream_sketch.journal_delete j ~u ~v ~w
              with
              | Ok () -> ()
              | Error e -> Alcotest.fail e)
            ops;
          let digest = Stream_sketch.digest (Stream_sketch.journal_state j) in
          Stream_sketch.close_journal j;
          (* The log only holds the tail since the last auto-checkpoint. *)
          (match Wal.scan_file ~path:(Filename.concat dir "wal.log") with
          | Error e -> Alcotest.fail e
          | Ok scan ->
              Alcotest.(check bool) "log compacted" true (scan.Wal.units < 4));
          match Stream_sketch.open_journal ~dir ~n ~seed:42 () with
          | Error e -> Alcotest.fail e
          | Ok (j2, _) ->
              Alcotest.(check bool) "compacted recovery byte-identical" true
                (Int64.equal digest
                   (Stream_sketch.digest (Stream_sketch.journal_state j2)));
              Stream_sketch.close_journal j2)

(* --- properties --- *)

let spec_gen =
  QCheck.(list_of_size (Gen.int_range 0 60) (triple small_nat small_nat small_nat))

let qcheck_streamed_equals_batch =
  QCheck.Test.make ~count:60
    ~name:"any insert/delete stream decodes identically to the batch build"
    spec_gen
    (fun spec ->
      let ops = ops_of_spec spec in
      let t = feed ops in
      let batch = Csr.of_digraph (final_digraph ops) in
      Int64.equal (Stream_sketch.fingerprint t) (Csr.fingerprint batch)
      && List.for_all
           (fun cut -> Csr.cut_value batch cut = Stream_sketch.cut_value t cut)
           (cuts_of 101 8))

let qcheck_policy_is_content_invisible =
  QCheck.Test.make ~count:40 ~name:"re-freeze policy never changes content"
    QCheck.(pair spec_gen (int_range 1 16))
    (fun (spec, threshold) ->
      let ops = ops_of_spec spec in
      let a = feed ~refreeze:Stream_sketch.Rebuild ops in
      let b =
        feed
          ~refreeze:(Stream_sketch.Delta_buffer { compact_threshold = threshold })
          ops
      in
      Int64.equal (Stream_sketch.digest a) (Stream_sketch.digest b))

let qcheck_kill_recover =
  QCheck.Test.make ~count:25
    ~name:"kill at any boundary: recovery reproduces the exact state"
    QCheck.(pair spec_gen (int_bound 1000))
    (fun (spec, cut) ->
      let ops = ops_of_spec spec in
      let i = if ops = [] then 0 else cut mod (List.length ops + 1) in
      let prefix = take i ops in
      with_temp_dir (fun dir ->
          let j = journal_with dir prefix in
          let expected = Stream_sketch.digest (Stream_sketch.journal_state j) in
          Stream_sketch.close_journal j;
          match Stream_sketch.open_journal ~dir ~n ~seed:42 () with
          | Error e -> QCheck.Test.fail_report e
          | Ok (j2, report) ->
              let got = Stream_sketch.digest (Stream_sketch.journal_state j2) in
              Stream_sketch.close_journal j2;
              report.Wal.applied = i && Int64.equal expected got))

let suite =
  [
    Alcotest.test_case "streamed = batch: graph and cuts" `Quick
      test_streamed_equals_batch_graph;
    Alcotest.test_case "streamed = batch: derived sketches" `Quick
      test_streamed_equals_batch_sketches;
    Alcotest.test_case "imbalances maintained exactly" `Quick
      test_imbalances_maintained;
    Alcotest.test_case "re-freeze policy invariance" `Quick test_policy_invariance;
    Alcotest.test_case "delta overlay bounded by threshold" `Quick
      test_delta_threshold_respected;
    Alcotest.test_case "rejections leave the state untouched" `Quick
      test_rejects_leave_state_untouched;
    Alcotest.test_case "apply reports rejects" `Quick test_apply_reports_rejects;
    Alcotest.test_case "support sampling follows the live graph" `Quick
      test_sample_arc_live;
    Alcotest.test_case "checkpoint restore is byte-identical" `Quick
      test_checkpoint_restore;
    Alcotest.test_case "kill at every record boundary" `Quick
      test_kill_at_every_record_boundary;
    Alcotest.test_case "torn write recovery" `Quick test_torn_write_recovery;
    Alcotest.test_case "periodic checkpoints compact the log" `Quick
      test_periodic_checkpoint_compacts;
    QCheck_alcotest.to_alcotest qcheck_streamed_equals_batch;
    QCheck_alcotest.to_alcotest qcheck_policy_is_content_invisible;
    QCheck_alcotest.to_alcotest qcheck_kill_recover;
  ]

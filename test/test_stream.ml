open Dcs

(* --- L0 sampler --- *)

let test_l0_zero () =
  let rng = Prng.create 1 in
  let s = L0_sampler.create rng ~universe:100 in
  Alcotest.(check bool) "zero" true (L0_sampler.is_zero s);
  Alcotest.(check (option (pair int int))) "query none" None (L0_sampler.query s)

let test_l0_singleton () =
  let rng = Prng.create 2 in
  let s = L0_sampler.create rng ~universe:100 in
  L0_sampler.update s 42 1;
  Alcotest.(check (option (pair int int))) "recovers" (Some (42, 1)) (L0_sampler.query s)

let test_l0_insert_delete_cancels () =
  let rng = Prng.create 3 in
  let s = L0_sampler.create rng ~universe:100 in
  L0_sampler.update s 17 1;
  L0_sampler.update s 23 1;
  L0_sampler.update s 17 (-1);
  L0_sampler.update s 23 (-1);
  Alcotest.(check bool) "back to zero" true (L0_sampler.is_zero s)

let test_l0_query_returns_support () =
  let rng = Prng.create 4 in
  let hits = ref 0 and total = ref 0 in
  for seed = 1 to 60 do
    let s = L0_sampler.create (Prng.create (seed * 17)) ~universe:1000 in
    let support = Prng.sample_without_replacement rng ~k:20 ~n:1000 in
    Array.iter (fun i -> L0_sampler.update s i 1) support;
    incr total;
    match L0_sampler.query s with
    | Some (i, c) ->
        Alcotest.(check bool) "value 1" true (c = 1);
        Alcotest.(check bool) "in support" true (Array.exists (( = ) i) support);
        incr hits
    | None -> ()
  done;
  (* constant success probability; 60 trials should mostly succeed *)
  Alcotest.(check bool) "decodes most of the time" true
    (float_of_int !hits /. float_of_int !total >= 0.6)

let test_l0_negative_values () =
  let rng = Prng.create 5 in
  let s = L0_sampler.create rng ~universe:50 in
  L0_sampler.update s 7 (-3);
  Alcotest.(check (option (pair int int))) "negative" (Some (7, -3)) (L0_sampler.query s)

let test_l0_nonnegative_guard () =
  let rng = Prng.create 50 in
  let s = L0_sampler.create ~nonnegative:true rng ~universe:50 in
  Alcotest.(check bool) "mode recorded" true (L0_sampler.nonnegative s);
  L0_sampler.update s 7 2;
  L0_sampler.update s 7 (-1);
  (* Driving the exact level-0 total below zero raises *before* any level
     mutates: the sketch is left unpoisoned and still usable. *)
  let before = L0_sampler.digest s in
  (match L0_sampler.update s 7 (-2) with
  | exception L0_sampler.Below_zero { index; count } ->
      Alcotest.(check int) "offending coordinate" 7 index;
      Alcotest.(check int) "offending total" (-1) count
  | () -> Alcotest.fail "below-zero deletion must raise");
  Alcotest.(check bool) "state unpoisoned" true
    (Int64.equal before (L0_sampler.digest s));
  L0_sampler.update s 7 (-1);
  Alcotest.(check bool) "legal deletions still work" true (L0_sampler.is_zero s)

let test_l0_nonnegative_query_guard () =
  (* A deletion the aggregate total masks: e5 - e3 has level-0 total 0, so
     the update-time check passes. Whenever a level then isolates the
     poisoned coordinate, query must raise — never return (or silently
     skip) a negative multiplicity. *)
  let raised = ref 0 in
  for seed = 1 to 40 do
    let s =
      L0_sampler.create ~nonnegative:true (Prng.create (seed * 31)) ~universe:32
    in
    L0_sampler.update s 5 1;
    L0_sampler.update s 3 (-1);
    match L0_sampler.query s with
    | exception L0_sampler.Below_zero { index; count } ->
        Alcotest.(check int) "poisoned coordinate" 3 index;
        Alcotest.(check int) "its multiplicity" (-1) count;
        incr raised
    | Some (i, c) ->
        Alcotest.(check bool) "never a negative multiplicity" true (c > 0);
        Alcotest.(check int) "only the live coordinate" 5 i
    | None -> ()
  done;
  Alcotest.(check bool) "the query guard fires across seeds" true (!raised > 0)

let prop_l0_nonnegative_guard =
  QCheck.Test.make ~count:80 ~name:"l0: nonnegative guard is exact at level 0"
    QCheck.(
      pair (int_bound 10_000)
        (list_of_size (Gen.int_range 1 40) (pair small_nat (int_range (-2) 3))))
    (fun (seed, steps) ->
      let u = 16 in
      let s = L0_sampler.create ~nonnegative:true (Prng.create seed) ~universe:u in
      let counts = Array.make u 0 in
      let total () = Array.fold_left ( + ) 0 counts in
      List.for_all
        (fun (i0, d) ->
          let i = i0 mod u in
          if d >= 0 || total () + d >= 0 then begin
            (* Within the aggregate promise: must not raise. *)
            L0_sampler.update s i d;
            counts.(i) <- counts.(i) + d;
            true
          end
          else
            (* Beyond it: must raise, mutating nothing. *)
            let before = L0_sampler.digest s in
            match L0_sampler.update s i d with
            | exception L0_sampler.Below_zero _ ->
                Int64.equal before (L0_sampler.digest s)
            | () -> false)
        steps)

let test_l0_merge_linear () =
  let rng = Prng.create 6 in
  let fam = L0_sampler.create_family rng ~universe:100 ~count:2 in
  L0_sampler.update fam.(0) 10 1;
  L0_sampler.update fam.(0) 20 1;
  L0_sampler.update fam.(1) 10 (-1);
  (* merged = e_20 *)
  let acc = L0_sampler.copy fam.(0) in
  L0_sampler.merge_into ~dst:acc fam.(1);
  Alcotest.(check (option (pair int int))) "merge cancels" (Some (20, 1))
    (L0_sampler.query acc)

let test_l0_merge_family_check () =
  let rng = Prng.create 7 in
  let a = L0_sampler.create rng ~universe:10 in
  let b = L0_sampler.create rng ~universe:10 in
  Alcotest.check_raises "different families"
    (Invalid_argument "L0_sampler.merge_into: sketches from different families")
    (fun () -> L0_sampler.merge_into ~dst:a b)

let test_l0_size_bits () =
  let rng = Prng.create 8 in
  let s = L0_sampler.create rng ~universe:1024 in
  Alcotest.(check bool) "polylog size" true
    (L0_sampler.size_bits s > 0 && L0_sampler.size_bits s < 5000)

(* --- AGM sketch --- *)

let test_agm_edge_index_injective () =
  let seen = Hashtbl.create 64 in
  for u = 0 to 7 do
    for v = u + 1 to 7 do
      let idx = Agm_sketch.edge_index ~n:8 u v in
      Alcotest.(check bool) "fresh" false (Hashtbl.mem seen idx);
      Hashtbl.replace seen idx ();
      Alcotest.(check int) "symmetric" idx (Agm_sketch.edge_index ~n:8 v u)
    done
  done

let test_agm_connected_path () =
  let rng = Prng.create 9 in
  let sk = Agm_sketch.create ~copies:5 rng ~n:10 in
  for v = 0 to 8 do
    Agm_sketch.add_edge sk v (v + 1)
  done;
  Alcotest.(check bool) "path connected" true (Agm_sketch.connected sk)

let test_agm_disconnected () =
  let rng = Prng.create 10 in
  let sk = Agm_sketch.create ~copies:5 rng ~n:6 in
  Agm_sketch.add_edge sk 0 1;
  Agm_sketch.add_edge sk 1 2;
  Agm_sketch.add_edge sk 3 4;
  let forest = Agm_sketch.spanning_forest sk in
  Alcotest.(check bool) "at most 3 forest edges" true (List.length forest <= 3);
  let comps = Agm_sketch.components_after_forest sk forest in
  (* vertex 5 isolated: labels of 0-2, 3-4, 5 all distinct (w.h.p. forest
     is complete within true components) *)
  Alcotest.(check bool) "separates 2 and 3" true (comps.(2) <> comps.(3));
  Alcotest.(check bool) "separates 4 and 5" true (comps.(4) <> comps.(5))

let test_agm_deletion_stream () =
  let rng = Prng.create 11 in
  let sk = Agm_sketch.create ~copies:5 rng ~n:8 in
  (* build a cycle, then delete one edge: still connected *)
  for v = 0 to 7 do
    Agm_sketch.add_edge sk v ((v + 1) mod 8)
  done;
  Agm_sketch.remove_edge sk 3 4;
  Alcotest.(check bool) "cycle minus edge connected" true (Agm_sketch.connected sk);
  (* deleting a second edge disconnects *)
  let sk2 = Agm_sketch.create ~copies:5 rng ~n:8 in
  for v = 0 to 7 do
    Agm_sketch.add_edge sk2 v ((v + 1) mod 8)
  done;
  Agm_sketch.remove_edge sk2 3 4;
  Agm_sketch.remove_edge sk2 7 0;
  let forest = Agm_sketch.spanning_forest sk2 in
  Alcotest.(check bool) "two components" true (List.length forest <= 6)

let test_agm_forest_edges_are_real () =
  let rng = Prng.create 12 in
  let g = Generators.erdos_renyi_connected rng ~n:20 ~p:0.15 in
  let sk = Agm_sketch.create ~copies:6 rng ~n:20 in
  Ugraph.iter_edges g (fun u v _ -> Agm_sketch.add_edge sk u v);
  let forest = Agm_sketch.spanning_forest sk in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "edge exists in graph" true (Ugraph.mem_edge g u v))
    forest;
  (* forest is acyclic by construction of the union-find merge *)
  Alcotest.(check bool) "spanning" true (List.length forest = 19)

let test_agm_matches_bfs_connectivity () =
  let rng = Prng.create 13 in
  let ok = ref 0 in
  let trials = 15 in
  for seed = 1 to trials do
    let grng = Prng.create (seed * 101) in
    let g = Generators.erdos_renyi grng ~n:14 ~p:0.12 in
    let sk = Agm_sketch.create ~copies:6 rng ~n:14 in
    Ugraph.iter_edges g (fun u v _ -> Agm_sketch.add_edge sk u v);
    let truth = Dcs_graph.Traversal.is_connected g in
    let sketched = Agm_sketch.connected sk in
    (* sketch can only under-connect (decode failure), never over-connect *)
    if sketched then Alcotest.(check bool) "no false connectivity" true truth;
    if sketched = truth then incr ok
  done;
  Alcotest.(check bool) "mostly agrees" true
    (float_of_int !ok /. float_of_int trials >= 0.8)

let test_agm_size_scaling () =
  let rng = Prng.create 14 in
  let small = Agm_sketch.create rng ~n:16 in
  let large = Agm_sketch.create rng ~n:64 in
  let s = Agm_sketch.size_bits small and l = Agm_sketch.size_bits large in
  Alcotest.(check bool) "grows" true (l > s);
  (* O(n polylog): going 16 -> 64 should grow far less than the n² of an
     explicit edge set over a dense graph *)
  Alcotest.(check bool) "subquadratic growth" true
    (float_of_int l /. float_of_int s < 16.0)

let prop_l0_linearity =
  QCheck.Test.make ~name:"l0 sketches are linear (sum = sketch of sum)" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Dcs.Prng.create seed in
      let fam = Dcs.L0_sampler.create_family rng ~universe:200 ~count:3 in
      (* same random vector split arbitrarily across two sketches *)
      let whole = fam.(0) and part_a = fam.(1) and part_b = fam.(2) in
      for _ = 1 to 15 do
        let i = Dcs.Prng.int rng 200 in
        let d = Dcs.Prng.sign rng in
        Dcs.L0_sampler.update whole i d;
        if Dcs.Prng.bool rng then Dcs.L0_sampler.update part_a i d
        else Dcs.L0_sampler.update part_b i d
      done;
      let merged = Dcs.L0_sampler.copy part_a in
      Dcs.L0_sampler.merge_into ~dst:merged part_b;
      (* identical hash family + identical vector => identical sketch state,
         hence identical query answers *)
      Dcs.L0_sampler.query merged = Dcs.L0_sampler.query whole)

let suite =
  [
    Alcotest.test_case "l0: zero" `Quick test_l0_zero;
    Alcotest.test_case "l0: singleton" `Quick test_l0_singleton;
    Alcotest.test_case "l0: insert/delete" `Quick test_l0_insert_delete_cancels;
    Alcotest.test_case "l0: support recovery" `Quick test_l0_query_returns_support;
    Alcotest.test_case "l0: negative values" `Quick test_l0_negative_values;
    Alcotest.test_case "l0: nonnegative update guard" `Quick
      test_l0_nonnegative_guard;
    Alcotest.test_case "l0: nonnegative query guard" `Quick
      test_l0_nonnegative_query_guard;
    Alcotest.test_case "l0: merge linearity" `Quick test_l0_merge_linear;
    Alcotest.test_case "l0: family check" `Quick test_l0_merge_family_check;
    Alcotest.test_case "l0: size" `Quick test_l0_size_bits;
    Alcotest.test_case "agm: edge index" `Quick test_agm_edge_index_injective;
    Alcotest.test_case "agm: path connected" `Quick test_agm_connected_path;
    Alcotest.test_case "agm: disconnected" `Quick test_agm_disconnected;
    Alcotest.test_case "agm: deletion stream" `Quick test_agm_deletion_stream;
    Alcotest.test_case "agm: forest edges real" `Quick test_agm_forest_edges_are_real;
    Alcotest.test_case "agm: matches bfs" `Quick test_agm_matches_bfs_connectivity;
    Alcotest.test_case "agm: size scaling" `Quick test_agm_size_scaling;
    QCheck_alcotest.to_alcotest prop_l0_linearity;
    QCheck_alcotest.to_alcotest prop_l0_nonnegative_guard;
  ]

(* Cross-solver equivalence: every global min-cut algorithm in the library
   is an independent implementation of the same quantity, so on random
   weighted graphs they must all agree — Dinic (min over s-t max-flows),
   Stoer-Wagner, Gomory-Hu (lightest tree edge), and brute-force
   enumeration exactly; Karger and Karger-Stein with probability checked
   over seeds. Any solver drifting from the pack fails here with the seed
   that exposes it. *)

open Dcs

let check_float = Alcotest.(check (float 1e-9))

(* Random connected graph with integer weights in 1..max_weight; n small
   enough for Brute. *)
let random_weighted_graph rng ~n ~p ~max_weight =
  let g = Generators.erdos_renyi_connected rng ~n ~p in
  Generators.random_multigraph_weights rng g ~max_weight

(* Global min cut via Dinic: the minimum cut separates vertex 0 from some
   other vertex, so it is the min over t <> 0 of the 0-t max-flow. *)
let dinic_global_mincut g =
  let net = Dinic.of_ugraph g in
  let best = ref infinity and side = ref None in
  for t = 1 to Ugraph.n g - 1 do
    let f, s = Dinic.mincut_side net ~s:0 ~t in
    if f < !best then begin
      best := f;
      side := Some s
    end
  done;
  (!best, Option.get !side)

let test_exact_solvers_agree () =
  let rng = Prng.create 101 in
  for trial = 1 to 20 do
    let n = 6 + Prng.int rng 5 in
    let g = random_weighted_graph rng ~n ~p:0.35 ~max_weight:6 in
    let ctx = Printf.sprintf "trial %d (n=%d)" trial n in
    let bf, _ = Brute.mincut_ugraph g in
    let sw, sw_cut = Stoer_wagner.mincut g in
    let dv, d_cut = dinic_global_mincut g in
    let ghv, gh_cut = Gomory_hu.global_min_cut (Gomory_hu.build g) in
    check_float (ctx ^ ": stoer-wagner = brute") bf sw;
    check_float (ctx ^ ": dinic = brute") bf dv;
    check_float (ctx ^ ": gomory-hu = brute") bf ghv;
    (* Every witness actually achieves the claimed value on g. *)
    check_float (ctx ^ ": sw witness") sw (Ugraph.cut_value g sw_cut);
    check_float (ctx ^ ": dinic witness") dv (Ugraph.cut_value g d_cut);
    check_float (ctx ^ ": gomory-hu witness") ghv (Ugraph.cut_value g gh_cut)
  done

let test_randomized_solvers_agree_whp () =
  (* Karger (150 trials) and Karger-Stein (default runs) each find the true
     minimum with high probability on these sizes; across 12 seeds demand
     near-perfect agreement and never a value below the truth. *)
  let rng = Prng.create 202 in
  let seeds = 12 in
  let karger_hits = ref 0 and ks_hits = ref 0 in
  for seed = 1 to seeds do
    let g = random_weighted_graph rng ~n:12 ~p:0.3 ~max_weight:5 in
    let truth, _ = Brute.mincut_ugraph g in
    let kv, kc = Karger.mincut (Prng.create (1000 + seed)) ~trials:150 g in
    let ksv, ksc = Karger_stein.mincut (Prng.create (2000 + seed)) g in
    let ctx = Printf.sprintf "seed %d" seed in
    Alcotest.(check bool) (ctx ^ ": karger upper bound") true (kv >= truth -. 1e-9);
    Alcotest.(check bool) (ctx ^ ": ks upper bound") true (ksv >= truth -. 1e-9);
    check_float (ctx ^ ": karger witness") kv (Ugraph.cut_value g kc);
    check_float (ctx ^ ": ks witness") ksv (Ugraph.cut_value g ksc);
    if Float.abs (kv -. truth) < 1e-9 then incr karger_hits;
    if Float.abs (ksv -. truth) < 1e-9 then incr ks_hits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "karger agreement %d/%d" !karger_hits seeds)
    true
    (!karger_hits >= seeds - 1);
  Alcotest.(check bool)
    (Printf.sprintf "karger-stein agreement %d/%d" !ks_hits seeds)
    true
    (!ks_hits >= seeds - 1)

let test_structured_families () =
  (* Families with known min cuts: all solvers, closed-form answer. *)
  let families =
    [
      ("cycle n=9", Generators.cycle ~n:9, 2.0);
      ("complete n=7", Generators.complete ~n:7, 6.0);
      ("hypercube d=3", Generators.hypercube ~dim:3, 3.0);
      ("grid 3x4", Generators.grid ~rows:3 ~cols:4, 2.0);
    ]
  in
  List.iter
    (fun (name, g, expected) ->
      check_float (name ^ ": stoer-wagner") expected (Stoer_wagner.mincut_value g);
      check_float (name ^ ": dinic") expected (fst (dinic_global_mincut g));
      check_float (name ^ ": gomory-hu") expected
        (fst (Gomory_hu.global_min_cut (Gomory_hu.build g)));
      check_float (name ^ ": brute") expected (fst (Brute.mincut_ugraph g));
      let kv, _ = Karger.mincut (Prng.create 77) ~trials:200 g in
      check_float (name ^ ": karger") expected kv)
    families

(* qcheck: the four exact solvers agree on arbitrary random weighted
   graphs (seed-driven shrinkable instances, complementing the fixed-seed
   loop above). *)
let prop_exact_agreement =
  QCheck.Test.make ~name:"exact global min-cut solvers agree" ~count:30
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = random_weighted_graph rng ~n:8 ~p:0.4 ~max_weight:4 in
      let bf, _ = Brute.mincut_ugraph g in
      let sw = Stoer_wagner.mincut_value g in
      let dv, _ = dinic_global_mincut g in
      let ghv, _ = Gomory_hu.global_min_cut (Gomory_hu.build g) in
      Float.abs (sw -. bf) < 1e-9
      && Float.abs (dv -. bf) < 1e-9
      && Float.abs (ghv -. bf) < 1e-9)

(* qcheck: a Karger candidate enumeration at factor >= 1 always contains a
   witness of the exact minimum when the trial budget is generous. *)
let prop_karger_candidates_contain_minimum =
  QCheck.Test.make ~name:"karger candidates contain the minimum" ~count:15
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = random_weighted_graph rng ~n:9 ~p:0.4 ~max_weight:3 in
      let truth, _ = Brute.mincut_ugraph g in
      let cands = Karger.candidate_cuts (Prng.create (seed + 1)) ~trials:200 ~factor:1.5 g in
      List.exists (fun (v, _) -> Float.abs (v -. truth) < 1e-9) cands)

let suite =
  [
    Alcotest.test_case "agreement: exact solvers, random graphs" `Quick
      test_exact_solvers_agree;
    Alcotest.test_case "agreement: randomized solvers whp" `Quick
      test_randomized_solvers_agree_whp;
    Alcotest.test_case "agreement: structured families" `Quick
      test_structured_families;
    QCheck_alcotest.to_alcotest prop_exact_agreement;
    QCheck_alcotest.to_alcotest prop_karger_candidates_contain_minimum;
  ]

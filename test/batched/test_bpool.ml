(* Randomized stress battery for the chunked pool: [run_batched] and
   [run_supervised_batched] must produce byte-identical outputs, reports
   and Obs counter increments at every domains x chunk combination —
   including under seed-driven crash and hang injection on the supervised
   path — and the per-task PRNG stream assignment is pinned with golden
   fingerprints so a scheduler change can never silently remap task
   randomness. *)

open Dcs
module M = Obs.Metrics

let domain_counts = [ 1; 2; 4 ]

let counter_deltas names f =
  let counters = List.map M.counter names in
  let before = List.map M.counter_value counters in
  let r = f () in
  (r, List.map2 (fun c b -> M.counter_value c - b) counters before)

(* --- run_batched vs the sequential baseline --- *)

let test_run_batched_matches_sequential () =
  let f _arena i = (i * 37) + (i mod 11) in
  let n = 97 in
  let expected = Array.init n (f ()) in
  List.iter
    (fun d ->
      List.iter
        (fun chunk ->
          let label =
            Printf.sprintf "domains=%d chunk=%s" d
              (match chunk with None -> "auto" | Some c -> string_of_int c)
          in
          let out, deltas =
            counter_deltas [ "pool.tasks"; "pool.batched_calls" ] (fun () ->
                Pool.run_batched ~domains:d ?chunk ~arena:(fun () -> ()) ~n f)
          in
          Alcotest.(check (array int)) label expected out;
          Alcotest.(check (list int))
            (label ^ " counters")
            [ n; 1 ] deltas)
        [ None; Some 1; Some 7; Some 64; Some 1000 ])
    domain_counts

let test_run_batched_edge_sizes () =
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "n=0 domains=%d" d)
        [||]
        (Pool.run_batched ~domains:d ~arena:(fun () -> ()) ~n:0 (fun () i -> i));
      Alcotest.(check (array int))
        (Printf.sprintf "n=1 domains=%d" d)
        [| 0 |]
        (Pool.run_batched ~domains:d ~arena:(fun () -> ()) ~n:1 (fun () i -> i)))
    domain_counts

let test_run_batched_arena_per_domain () =
  (* With domains=1 a single arena serves every task; the arena is genuinely
     reused (the counter inside it survives across tasks). *)
  let out =
    Pool.run_batched ~domains:1 ~chunk:3
      ~arena:(fun () -> ref 0)
      ~n:10
      (fun a _ ->
        incr a;
        !a)
  in
  Alcotest.(check (array int)) "one arena, reused" (Array.init 10 (fun i -> i + 1)) out

let test_run_batched_failure_lowest_index () =
  List.iter
    (fun d ->
      let ran = Array.make 12 false in
      (try
         ignore
           (Pool.run_batched ~domains:d ~chunk:2 ~arena:(fun () -> ()) ~n:12
              (fun () i ->
                ran.(i) <- true;
                if i = 5 || i = 9 then failwith "boom";
                i))
       with
      | Pool.Task_failed { index; _ } ->
          Alcotest.(check int) (Printf.sprintf "lowest index, domains=%d" d) 5 index);
      Alcotest.(check bool)
        (Printf.sprintf "all tasks still ran, domains=%d" d)
        true
        (Array.for_all (fun x -> x) ran))
    domain_counts

(* random chunk sizes x domains: outputs and counters equal the d=1 run *)
let prop_run_batched_random_chunks =
  QCheck.Test.make ~name:"run_batched: random chunks x domains, byte-identical"
    ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = Prng.int rng 60 in
      let master = Prng.fork (Prng.create (seed + 1)) in
      let f _ i = Prng.bits64 (Prng.split master i) in
      let reference = Array.init n (fun i -> f () i) in
      List.for_all
        (fun d ->
          let chunk = 1 + Prng.int rng 20 in
          let out, deltas =
            counter_deltas [ "pool.tasks" ] (fun () ->
                Pool.run_batched ~domains:d ~chunk ~arena:(fun () -> ()) ~n f)
          in
          out = reference && deltas = [ n ])
        domain_counts)

(* --- supervised batched vs unbatched, with fault injection --- *)

(* Deterministic crash/hang injection in the E17 style: decisions come
   from a Fault injector on the attempt stream, so attempt 0 of a doomed
   task fails and the retry (a different stream) almost surely passes —
   and the whole schedule is a pure function of (seed, index, attempt),
   identical between the batched and unbatched supervisors. *)
let faulty_task ~drop ~timeout ctx =
  let inj = Fault.create (Fault.policy ~drop ~timeout ()) ctx.Pool.attempt_rng in
  if Fault.drops_message inj then failwith "injected crash";
  if Fault.times_out inj then
    raise (Pool.Cancelled { index = ctx.Pool.index; attempt = ctx.Pool.attempt });
  Prng.bits64 ctx.Pool.rng

let strip_backtraces (r : Pool.report) =
  {
    r with
    Pool.failures =
      List.map (fun f -> { f with Pool.backtrace = "" }) r.Pool.failures;
  }

let supervised_counters =
  [
    "pool.supervised_tasks";
    "pool.supervised_rounds";
    "pool.crashes";
    "pool.hangs";
    "pool.restarts";
    "pool.poisoned";
  ]

(* A run either completes or deterministically poisons a task (5 doomed
   attempts in a row); both outcomes must be byte-identical between the
   batched and unbatched supervisors, so capture rather than propagate. *)
let capture f =
  match f () with
  | vals, rep -> Ok (vals, strip_backtraces rep)
  | exception Pool.Poisoned { index; attempts; last } ->
      Error (index, attempts, { last with Pool.backtrace = "" })

let prop_supervised_batched_matches_unbatched =
  QCheck.Test.make
    ~name:"run_supervised_batched = run_supervised under crash/hang injection"
    ~count:12
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 1 + Prng.int rng 40 in
      let drop = 0.2 and timeout = 0.1 in
      let task ctx = faulty_task ~drop ~timeout ctx in
      let reference, ref_deltas =
        counter_deltas supervised_counters (fun () ->
            capture (fun () ->
                Pool.run_supervised ~domains:1 ~restart_budget:4
                  ~rng:(Prng.create (seed + 7))
                  ~n task))
      in
      List.for_all
        (fun d ->
          let chunk = 1 + Prng.int rng 16 in
          let outcome, deltas =
            counter_deltas supervised_counters (fun () ->
                capture (fun () ->
                    Pool.run_supervised_batched ~domains:d ~chunk
                      ~restart_budget:4
                      ~arena:(fun () -> ())
                      ~rng:(Prng.create (seed + 7))
                      ~n
                      (fun () ctx -> task ctx)))
          in
          outcome = reference && deltas = ref_deltas)
        domain_counts)

let test_supervised_batched_arena_reuse () =
  (* An arena-using supervised task: results must still be the pure
     per-index values because the task treats the arena as scratch. *)
  let rng = Prng.create 99 in
  let vals, rep =
    Pool.run_supervised_batched ~domains:2 ~chunk:4
      ~arena:(fun () -> Buffer.create 64)
      ~rng ~n:23
      (fun buf ctx ->
        Buffer.clear buf;
        Buffer.add_string buf (Int64.to_string (Prng.bits64 ctx.Pool.rng));
        Buffer.contents buf)
  in
  let expect, _ =
    Pool.run_supervised ~domains:1 ~rng:(Prng.create 99) ~n:23 (fun ctx ->
        Int64.to_string (Prng.bits64 ctx.Pool.rng))
  in
  Alcotest.(check (array string)) "values" expect vals;
  Alcotest.(check int) "one round" 1 rep.Pool.rounds

(* --- golden PRNG stream assignment --- *)

(* The contract the whole determinism story hangs on: task [i] of a
   supervised run draws from split (split rng i) 0, and the batched
   scheduler must assign exactly the same streams. Pinned as literal
   fingerprints (seed 424242) so a Prng or scheduler change that remaps
   streams fails loudly, not statistically. *)
let golden_seed = 424242

let golden_task_fingerprints =
  [|
    4022009148950501940L;
    -9208893063261210934L;
    -3628241341576673609L;
    -948643652448662171L;
    7421033266413380588L;
    -3139248666169537219L;
    8830448652253338010L;
    -8262500261759339232L;
  |]

let test_golden_stream_assignment () =
  let n = Array.length golden_task_fingerprints in
  (* the spec, computed directly *)
  let direct =
    let master = Prng.create golden_seed in
    Array.init n (fun i -> Prng.fingerprint (Prng.split (Prng.split master i) 0))
  in
  Alcotest.(check (array int64)) "spec = golden" golden_task_fingerprints direct;
  List.iter
    (fun d ->
      List.iter
        (fun chunk ->
          let label = Printf.sprintf "domains=%d chunk=%d" d chunk in
          let batched, _ =
            Pool.run_supervised_batched ~domains:d ~chunk
              ~arena:(fun () -> ())
              ~rng:(Prng.create golden_seed) ~n
              (fun () ctx -> Prng.fingerprint ctx.Pool.rng)
          in
          Alcotest.(check (array int64))
            (label ^ " supervised ctx.rng")
            golden_task_fingerprints batched)
        [ 1; 3; 8 ])
    domain_counts

let test_golden_streams_match_unbatched_pool () =
  (* run_batched leaves splitting to the caller (as every solver does:
     split master t); the schedule must not perturb it. *)
  let n = 16 in
  let master = Prng.create golden_seed in
  let expect =
    Pool.parallel_init ~domains:1 ~n (fun i ->
        Prng.fingerprint (Prng.split master i))
  in
  List.iter
    (fun d ->
      let got =
        Pool.run_batched ~domains:d ~chunk:5 ~arena:(fun () -> ()) ~n
          (fun () i -> Prng.fingerprint (Prng.split master i))
      in
      Alcotest.(check (array int64))
        (Printf.sprintf "domains=%d" d)
        expect got)
    domain_counts

let suite =
  [
    Alcotest.test_case "run_batched = sequential (chunk grid)" `Quick
      test_run_batched_matches_sequential;
    Alcotest.test_case "run_batched: edge sizes" `Quick test_run_batched_edge_sizes;
    Alcotest.test_case "run_batched: arena reuse" `Quick
      test_run_batched_arena_per_domain;
    Alcotest.test_case "run_batched: lowest-index failure" `Quick
      test_run_batched_failure_lowest_index;
    Alcotest.test_case "supervised batched: arena reuse" `Quick
      test_supervised_batched_arena_reuse;
    Alcotest.test_case "golden stream assignment" `Quick
      test_golden_stream_assignment;
    Alcotest.test_case "golden streams: run_batched" `Quick
      test_golden_streams_match_unbatched_pool;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_run_batched_random_chunks; prop_supervised_batched_matches_unbatched ]

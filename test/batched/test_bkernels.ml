(* Randomized equivalence battery for the batched CSR kernels: [cut_many]
   must equal a per-cut [cut_weight] loop and [flip_sweep] a per-flip
   [cut_delta] loop, bit for bit — on random digraphs, random batches
   (empty, singleton, duplicated), both weight backends, and reused
   output buffers. All comparisons are exact float equality: the kernels
   are specified to perform the same operations in the same order, not to
   be merely close. *)

open Dcs
module M = Obs.Metrics

let random_int_digraph rng ~n ~p ~max_weight =
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Prng.float rng 1.0 < p then
        Digraph.add_edge g u v (float_of_int (1 + Prng.int rng max_weight))
    done
  done;
  g

let random_csr rng ~n =
  let g = random_int_digraph rng ~n ~p:0.35 ~max_weight:8 in
  let c = Csr.of_digraph g in
  if Prng.bool rng then Csr.with_bigarray_weights c else c

(* --- cut_many --- *)

let prop_cut_many_matches_cut_weight =
  QCheck.Test.make ~name:"cut_many = per-cut cut_weight (both backends)"
    ~count:80
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 14 in
      let c = random_csr rng ~n in
      let batch = Prng.int rng 8 in
      let sides =
        Array.init batch (fun _ -> Array.init n (fun _ -> Prng.bool rng))
      in
      (* duplicate cuts in one batch must accumulate independently *)
      if batch >= 2 then sides.(batch - 1) <- Array.copy sides.(0);
      let out = Csr.cut_many c sides in
      Array.length out = batch
      && Array.for_all (fun x -> x)
           (Array.init batch (fun m ->
                out.(m) = Csr.cut_weight c (fun v -> sides.(m).(v)))))

let prop_cut_many_backends_agree =
  QCheck.Test.make ~name:"cut_many: bigarray backend byte-identical"
    ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 14 in
      let g = random_int_digraph rng ~n ~p:0.4 ~max_weight:8 in
      let c = Csr.of_digraph g in
      let cb = Csr.with_bigarray_weights c in
      let batch = 1 + Prng.int rng 6 in
      let sides =
        Array.init batch (fun _ -> Array.init n (fun _ -> Prng.bool rng))
      in
      Csr.cut_many c sides = Csr.cut_many cb sides)

let test_cut_many_edge_cases () =
  let g = Digraph.of_edges 3 [ (0, 1, 2.0); (1, 2, 4.0); (2, 0, 8.0) ] in
  let c = Csr.of_digraph g in
  Alcotest.(check (array (float 0.0))) "empty batch" [||] (Csr.cut_many c [||]);
  let singleton v = Array.init 3 (fun u -> u = v) in
  let sides =
    [| Array.make 3 false; Array.make 3 true; singleton 0; singleton 1 |]
  in
  Alcotest.(check (array (float 0.0)))
    "empty / full / singleton sides"
    [| 0.0; 0.0; 2.0; 4.0 |]
    (Csr.cut_many c sides)

let test_cut_many_into () =
  let g = Digraph.of_edges 3 [ (0, 1, 2.0); (1, 2, 4.0) ] in
  let c = Csr.of_digraph g in
  let into = Array.make 5 (-1.0) in
  let sides = [| [| true; false; false |]; [| true; true; false |] |] in
  let out = Csr.cut_many ~into c sides in
  Alcotest.(check bool) "returns the caller's buffer" true (out == into);
  Alcotest.(check (float 0.0)) "slot 0" 2.0 into.(0);
  Alcotest.(check (float 0.0)) "slot 1" 4.0 into.(1);
  Alcotest.(check (float 0.0)) "slots past the batch untouched" (-1.0) into.(2)

let test_cut_many_validation () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.0) ] in
  let c = Csr.of_digraph g in
  Alcotest.check_raises "side length"
    (Invalid_argument "Csr.cut_many: side length mismatch") (fun () ->
      ignore (Csr.cut_many c [| Array.make 2 false |]));
  Alcotest.check_raises "into too short"
    (Invalid_argument "Csr.cut_many: into too short") (fun () ->
      ignore
        (Csr.cut_many ~into:(Array.make 1 0.0) c
           [| Array.make 3 false; Array.make 3 false |]))

let test_cut_many_counters () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.0) ] in
  let c = Csr.of_digraph g in
  let full = M.counter "csr.cut_full" in
  let calls = M.counter "csr.cut_many_calls" in
  let f0 = M.counter_value full and c0 = M.counter_value calls in
  ignore (Csr.cut_many c (Array.init 5 (fun _ -> Array.make 3 false)));
  Alcotest.(check int) "one cut_full per cut" 5 (M.counter_value full - f0);
  Alcotest.(check int) "one cut_many call" 1 (M.counter_value calls - c0)

(* --- flip_sweep --- *)

let prop_flip_sweep_matches_cut_delta =
  QCheck.Test.make ~name:"flip_sweep = per-flip cut_delta loop" ~count:80
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 14 in
      let c = random_csr rng ~n in
      let len = Prng.int rng 41 in
      (* duplicates are the norm: each occurrence toggles again *)
      let flips = Array.init len (fun _ -> Prng.int rng n) in
      let side0 = Array.init n (fun _ -> Prng.bool rng) in
      let init = Csr.cut_weight c (fun v -> side0.(v)) in
      (* reference: the one-flip-at-a-time loop *)
      let side_a = Array.copy side0 in
      let cur = ref init in
      let expect =
        Array.map
          (fun x ->
            cur := !cur +. Csr.cut_delta c side_a x;
            side_a.(x) <- not side_a.(x);
            !cur)
          flips
      in
      let side_b = Array.copy side0 in
      let vals = Array.make (max 1 len) nan in
      let final = Csr.flip_sweep c ~side:side_b ~init ~flips ~vals in
      final = (if len = 0 then init else expect.(len - 1))
      && Array.for_all (fun ok -> ok)
           (Array.init len (fun j -> vals.(j) = expect.(j)))
      && side_b = side_a)

let prop_flip_sweep_window =
  QCheck.Test.make ~name:"flip_sweep ?off ?len applies exactly the window"
    ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 10 in
      let c = random_csr rng ~n in
      let total = 1 + Prng.int rng 30 in
      let flips = Array.init total (fun _ -> Prng.int rng n) in
      let off = Prng.int rng total in
      let len = Prng.int rng (total - off + 1) in
      let side0 = Array.init n (fun _ -> Prng.bool rng) in
      let init = Csr.cut_weight c (fun v -> side0.(v)) in
      let side_a = Array.copy side0 in
      let cur = ref init in
      for j = off to off + len - 1 do
        cur := !cur +. Csr.cut_delta c side_a flips.(j);
        side_a.(flips.(j)) <- not side_a.(flips.(j))
      done;
      let side_b = Array.copy side0 in
      let vals = Array.make (max 1 len) nan in
      let final = Csr.flip_sweep ~off ~len c ~side:side_b ~init ~flips ~vals in
      final = !cur && side_b = side_a)

let test_flip_sweep_validation () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.0) ] in
  let c = Csr.of_digraph g in
  let side = Array.make 3 false in
  Alcotest.check_raises "bad off/len"
    (Invalid_argument "Csr.flip_sweep: bad off/len") (fun () ->
      ignore
        (Csr.flip_sweep ~off:1 ~len:2 c ~side ~init:0.0 ~flips:[| 0; 1 |]
           ~vals:(Array.make 2 0.0)));
  Alcotest.check_raises "vals too short"
    (Invalid_argument "Csr.flip_sweep: vals too short") (fun () ->
      ignore
        (Csr.flip_sweep c ~side ~init:0.0 ~flips:[| 0; 1 |]
           ~vals:(Array.make 1 0.0)));
  Alcotest.check_raises "vertex out of range"
    (Invalid_argument "Csr.flip_sweep: vertex out of range") (fun () ->
      ignore
        (Csr.flip_sweep c ~side ~init:0.0 ~flips:[| 3 |]
           ~vals:(Array.make 1 0.0)));
  Alcotest.check_raises "side length"
    (Invalid_argument "Csr.flip_sweep: side length mismatch") (fun () ->
      ignore
        (Csr.flip_sweep c ~side:(Array.make 2 false) ~init:0.0 ~flips:[| 0 |]
           ~vals:(Array.make 1 0.0)))

let test_flip_sweep_counters () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.0) ] in
  let c = Csr.of_digraph g in
  let delta = M.counter "csr.cut_delta" in
  let calls = M.counter "csr.flip_sweep_calls" in
  let d0 = M.counter_value delta and c0 = M.counter_value calls in
  ignore
    (Csr.flip_sweep c ~side:(Array.make 3 false) ~init:0.0
       ~flips:[| 0; 1; 0 |] ~vals:(Array.make 3 0.0));
  Alcotest.(check int) "one cut_delta per flip" 3 (M.counter_value delta - d0);
  Alcotest.(check int) "one flip_sweep call" 1 (M.counter_value calls - c0)

(* --- bigarray mirrors --- *)

let test_bigarray_weights_flags () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.5); (1, 2, 2.5) ] in
  let c = Csr.of_digraph g in
  Alcotest.(check bool) "fresh csr: no mirror" false (Csr.has_bigarray_weights c);
  let cb = Csr.with_bigarray_weights c in
  Alcotest.(check bool) "mirror attached" true (Csr.has_bigarray_weights cb);
  Alcotest.(check bool) "idempotent" true (Csr.with_bigarray_weights cb == cb);
  Alcotest.(check bool) "reverse keeps mirror" true
    (Csr.has_bigarray_weights (Csr.reverse cb))

let prop_bigarray_reverse_agrees =
  QCheck.Test.make ~name:"reverse of mirrored csr: kernels still agree"
    ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 10 in
      let g = random_int_digraph rng ~n ~p:0.4 ~max_weight:8 in
      let r = Csr.reverse (Csr.with_bigarray_weights (Csr.of_digraph g)) in
      let plain = Csr.reverse (Csr.of_digraph g) in
      let sides = Array.init 3 (fun _ -> Array.init n (fun _ -> Prng.bool rng)) in
      Csr.cut_many r sides = Csr.cut_many plain sides)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cut_many_matches_cut_weight;
      prop_cut_many_backends_agree;
      prop_flip_sweep_matches_cut_delta;
      prop_flip_sweep_window;
      prop_bigarray_reverse_agrees;
    ]
  @ [
      Alcotest.test_case "cut_many: edge cases" `Quick test_cut_many_edge_cases;
      Alcotest.test_case "cut_many: into reuse" `Quick test_cut_many_into;
      Alcotest.test_case "cut_many: validation" `Quick test_cut_many_validation;
      Alcotest.test_case "cut_many: counters" `Quick test_cut_many_counters;
      Alcotest.test_case "flip_sweep: validation" `Quick
        test_flip_sweep_validation;
      Alcotest.test_case "flip_sweep: counters" `Quick test_flip_sweep_counters;
      Alcotest.test_case "bigarray: flags" `Quick test_bigarray_weights_flags;
    ]

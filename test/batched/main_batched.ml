let () =
  Alcotest.run "dcs-batched"
    [
      ("kernels", Test_bkernels.suite);
      ("pool-batched", Test_bpool.suite);
      ("routing", Test_brouting.suite);
      ("checkpoint-batched", Test_bcheckpoint.suite);
    ]

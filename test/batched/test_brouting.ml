(* The solvers routed through the batched kernels must be byte-identical
   to their specification paths: Forall_lb's block-buffered flip_sweep
   decoder vs the one-query-per-subset enumeration, Brute's cut_many
   mask blocks vs a naive per-cut loop, and the Karger family across
   domains x chunks. Also pins the lifted enumerate guard. *)

open Dcs
module F = Forall_lb

let small_params () = F.make_params ~beta:2 ~inv_eps_sq:8 32
(* block k = 16, chains = 2. *)

let random_inst seed p = F.random_instance (Prng.create seed) p

let test_decode_frozen_matches_query_path () =
  let p = small_params () in
  let scratch = F.decode_scratch p in
  for seed = 50 to 59 do
    let inst = random_inst seed p in
    let g = inst.F.graph in
    let t = inst.F.gh.Gap_hamming.t in
    let by_query =
      F.decode_enumerate p ~query:(fun s -> Cut.value g s) inst.F.target ~t
    in
    let csr = Csr.of_digraph g in
    let fresh = F.decode_enumerate_frozen p csr inst.F.target ~t in
    let reused = F.decode_enumerate_frozen ~scratch p csr inst.F.target ~t in
    let big =
      F.decode_enumerate_frozen ~scratch p
        (Csr.with_bigarray_weights csr)
        inst.F.target ~t
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: frozen = query path" seed)
      true (fresh = by_query);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: scratch reuse is stateless" seed)
      true (reused = by_query);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: bigarray backend agrees" seed)
      true (big = by_query)
  done

let test_enumerate_guard_lifted () =
  Alcotest.(check int) "guard past 26" 28 F.enumerate_guard;
  Alcotest.(check int) "query guard unchanged" 20 F.enumerate_query_guard;
  (* k = 28 params are now constructible and pass the guard check (the
     k = 28 decode itself runs in E20; here we keep k <= 16). *)
  let p28 = F.make_params ~beta:1 ~inv_eps_sq:28 56 in
  Alcotest.(check int) "k = 28" 28 (F.block_size p28);
  (* k = 32 still refuses *)
  let p32 = F.make_params ~beta:4 ~inv_eps_sq:8 64 in
  let inst = random_inst 60 p32 in
  Alcotest.check_raises "k = 32 refused"
    (Invalid_argument "Forall_lb.decode_enumerate: k too large (> 28)")
    (fun () ->
      ignore
        (F.decode_enumerate_frozen p32
           (Csr.of_digraph inst.F.graph)
           inst.F.target ~t:inst.F.gh.Gap_hamming.t))

let test_decode_scratch_params_check () =
  let p = small_params () in
  let other = F.make_params ~beta:2 ~inv_eps_sq:8 64 in
  let inst = random_inst 61 p in
  Alcotest.check_raises "scratch from other params"
    (Invalid_argument "Forall_lb.decode_enumerate: scratch built for other params")
    (fun () ->
      ignore
        (F.decode_enumerate_frozen ~scratch:(F.decode_scratch other) p
           (Csr.of_digraph inst.F.graph)
           inst.F.target ~t:inst.F.gh.Gap_hamming.t))

let test_run_trials_domain_chunk_invariant () =
  let p = small_params () in
  let run d chunk =
    F.run_trials ~domains:d ?chunk (Prng.create 62) p
      ~sketch_of:(fun _ inst -> Exact_sketch.create inst.F.graph)
      ~decoder:`Enumerate ~trials:10
  in
  let reference = run 1 None in
  List.iter
    (fun (d, chunk) ->
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d chunk=%s" d
           (match chunk with None -> "auto" | Some c -> string_of_int c))
        true
        (run d chunk = reference))
    [ (1, Some 1); (2, None); (2, Some 3); (4, None); (4, Some 2) ]

(* --- Brute through cut_many --- *)

let naive_mincut_ugraph g =
  let n = Ugraph.n g in
  let best = ref infinity and best_mask = ref (-1) in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let mem v = v = 0 || (mask lsr (v - 1)) land 1 = 1 in
    let c = Cut.of_mem ~n mem in
    if Cut.is_proper c then begin
      let v = Ugraph.cut_value g c in
      if v < !best then begin
        best := v;
        best_mask := mask
      end
    end
  done;
  (!best, !best_mask)

let prop_brute_matches_naive =
  QCheck.Test.make ~name:"Brute (cut_many blocks) = naive per-cut argmin"
    ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 8 in
      let g0 = Generators.erdos_renyi_connected rng ~n ~p:0.5 in
      let g = Generators.random_multigraph_weights rng g0 ~max_weight:7 in
      let v, c = Brute.mincut_ugraph g in
      let nv, nmask = naive_mincut_ugraph g in
      v = nv
      && Cut.equal c
           (Cut.of_mem ~n (fun x -> x = 0 || (nmask lsr (x - 1)) land 1 = 1)))

let test_brute_digraph_still_agrees_with_directed_values () =
  (* spot check vs hand-computed directed min over both orientations *)
  let g = Digraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 3.0); (2, 0, 5.0) ] in
  let v, _ = Brute.mincut_digraph g in
  Alcotest.(check (float 0.0)) "directed brute value" 1.0 v

(* --- Karger family across chunks --- *)

let test_karger_chunk_invariant () =
  let g = Generators.erdos_renyi_connected (Prng.create 70) ~n:30 ~p:0.2 in
  let run d chunk = Karger.mincut ~domains:d ?chunk (Prng.create 71) ~trials:20 g in
  let v1, c1 = run 1 None in
  List.iter
    (fun (d, chunk) ->
      let v, c = run d chunk in
      Alcotest.(check (float 0.0)) (Printf.sprintf "value d=%d" d) v1 v;
      Alcotest.(check bool) (Printf.sprintf "cut d=%d" d) true (Cut.equal c1 c))
    [ (1, Some 1); (2, Some 3); (4, Some 1); (4, Some 64) ]

let test_karger_stein_chunk_invariant () =
  let g = Generators.erdos_renyi_connected (Prng.create 72) ~n:20 ~p:0.3 in
  let run d chunk = Karger_stein.mincut ~domains:d ?chunk ~runs:5 (Prng.create 73) g in
  let v1, c1 = run 1 None in
  List.iter
    (fun (d, chunk) ->
      let v, c = run d chunk in
      Alcotest.(check (float 0.0)) (Printf.sprintf "value d=%d" d) v1 v;
      Alcotest.(check bool) (Printf.sprintf "cut d=%d" d) true (Cut.equal c1 c))
    [ (2, Some 2); (4, Some 1) ]

let suite =
  [
    Alcotest.test_case "forall: frozen decoder = query path" `Quick
      test_decode_frozen_matches_query_path;
    Alcotest.test_case "forall: guard lifted to 28" `Quick
      test_enumerate_guard_lifted;
    Alcotest.test_case "forall: scratch params check" `Quick
      test_decode_scratch_params_check;
    Alcotest.test_case "forall: run_trials domain/chunk invariant" `Quick
      test_run_trials_domain_chunk_invariant;
    Alcotest.test_case "brute: digraph spot check" `Quick
      test_brute_digraph_still_agrees_with_directed_values;
    Alcotest.test_case "karger: chunk invariant" `Quick test_karger_chunk_invariant;
    Alcotest.test_case "karger-stein: chunk invariant" `Quick
      test_karger_stein_chunk_invariant;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_brute_matches_naive ]

(* Checkpoint/resume over the *batched* supervised pool.

   test/test_checkpoint.ml already proves kill-then-resume is bit-exact
   for the per-task supervisor; here the same contract is pinned for
   [Checkpoint.sweep_batched] — chunked scheduling, per-domain arenas —
   which is what the serving layer and E20/E21 actually run on. The
   sweeps are killed at block boundaries (the only places a real kill can
   land between snapshots), resumed at a {e different} domains x chunk
   setting, and must still reproduce the unbatched clean run byte for
   byte, with every trial computed exactly once across the two halves
   (checked against the [pool.supervised_tasks] Obs counter). *)

open Dcs

let with_tmp f =
  let path = Filename.temp_file "dcs_bckpt_test" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* The same lossless trial as the unbatched checkpoint tests: two draws
   off the per-index task stream, so any scheduling difference shows. *)
let trial ctx =
  let rng = ctx.Pool.rng in
  (Prng.bits64 rng, Prng.bits64 rng)

let encode (a, b) = Printf.sprintf "%Lx %Lx" a b

let decode s =
  try Scanf.sscanf s "%Lx %Lx" (fun a b -> Some (a, b))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let n = 23
let seed = 907
let domains_grid = [ 1; 2; 4 ]
let chunk_grid = [ 1; 3; 8 ]

(* The reference answer comes from the *unbatched* sweep: batching and
   interruption must both be invisible. *)
let expected =
  lazy (fst (Checkpoint.sweep ~encode ~decode ~rng:(Prng.create seed) ~n trial))

let supervised_tasks () =
  Obs.Metrics.counter_value (Obs.Metrics.counter "pool.supervised_tasks")

let test_batched_matches_unbatched () =
  List.iter
    (fun domains ->
      List.iter
        (fun chunk ->
          let vals, rep =
            Checkpoint.sweep_batched ~domains ~chunk
              ~arena:(fun () -> ())
              ~encode ~decode ~rng:(Prng.create seed) ~n
              (fun () ctx -> trial ctx)
          in
          Alcotest.(check int)
            (Printf.sprintf "d=%d c=%d all computed" domains chunk)
            n rep.Checkpoint.computed;
          Alcotest.(check bool)
            (Printf.sprintf "d=%d c=%d batched = unbatched" domains chunk)
            true
            (vals = Lazy.force expected))
        chunk_grid)
    domains_grid

let test_batched_snapshots_match_unbatched () =
  (* Not just the results: the snapshot bytes on disk are the same file
     an unbatched sweep would have written, so either flavor can resume
     the other's checkpoint. *)
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  with_tmp (fun path_a ->
      with_tmp (fun path_b ->
          let _ =
            Checkpoint.sweep ~path:path_a ~signature:"snap" ~resume:false
              ~block:6 ~encode ~decode ~rng:(Prng.create seed) ~n trial
          in
          let _ =
            Checkpoint.sweep_batched ~path:path_b ~signature:"snap"
              ~resume:false ~block:6 ~domains:4 ~chunk:3
              ~arena:(fun () -> ())
              ~encode ~decode ~rng:(Prng.create seed) ~n
              (fun () ctx -> trial ctx)
          in
          Alcotest.(check string) "snapshot bytes identical" (read path_a)
            (read path_b)))

let test_kill_at_block_boundary_resume_identical () =
  (* Kill exactly at block boundaries (the snapshot points), resume at a
     different domains x chunk setting, demand bit-equality with the
     clean unbatched run — for every boundary of a 5-block sweep. *)
  let block = 5 in
  List.iter
    (fun abort_after ->
      with_tmp (fun path ->
          let before = supervised_tasks () in
          (match
             Checkpoint.sweep_batched ~path ~signature:"kill" ~resume:false
               ~block ~abort_after ~domains:4 ~chunk:2
               ~arena:(fun () -> ())
               ~encode ~decode ~rng:(Prng.create seed) ~n
               (fun () ctx -> trial ctx)
           with
          | _ -> Alcotest.fail "abort_after should interrupt"
          | exception Checkpoint.Interrupted { completed_now; _ } ->
              Alcotest.(check int)
                (Printf.sprintf "killed at the %d-trial boundary" abort_after)
                abort_after completed_now);
          let vals, rep =
            Checkpoint.sweep_batched ~path ~signature:"kill" ~block ~domains:2
              ~chunk:7
              ~arena:(fun () -> ())
              ~encode ~decode ~rng:(Prng.create seed) ~n
              (fun () ctx -> trial ctx)
          in
          Alcotest.(check int) "checkpointed trials restored" abort_after
            rep.Checkpoint.resumed;
          Alcotest.(check int) "only the rest recomputed" (n - abort_after)
            rep.Checkpoint.computed;
          Alcotest.(check bool) "kill + resume bit-identical" true
            (vals = Lazy.force expected);
          (* Exactly-once accounting: across the kill and the resume,
             every trial was submitted to the pool exactly once — the
             restored ones were never resubmitted. *)
          Alcotest.(check int) "each trial supervised exactly once" n
            (supervised_tasks () - before)))
    [ block; 2 * block; 3 * block; 4 * block ]

let test_kill_resume_with_crashes_exactly_once () =
  (* Crash injection on first attempts + a kill + a cross-setting resume:
     results still bit-identical, and restarts show up on the restart
     counters — never as duplicate supervised submissions. *)
  let crashy () ctx =
    if ctx.Pool.attempt = 0 && ctx.Pool.index mod 5 = 2 then failwith "flaky";
    trial ctx
  in
  with_tmp (fun path ->
      let before = supervised_tasks () in
      (match
         Checkpoint.sweep_batched ~path ~signature:"crashy" ~resume:false
           ~block:4 ~abort_after:8 ~domains:3 ~chunk:2
           ~arena:(fun () -> ())
           ~encode ~decode ~rng:(Prng.create seed) ~n crashy
       with
      | _ -> Alcotest.fail "abort_after should interrupt"
      | exception Checkpoint.Interrupted { completed_now; _ } ->
          Alcotest.(check int) "killed at a block boundary" 8 completed_now);
      let vals, rep =
        Checkpoint.sweep_batched ~path ~signature:"crashy" ~block:4 ~domains:1
          ~chunk:9
          ~arena:(fun () -> ())
          ~encode ~decode ~rng:(Prng.create seed) ~n crashy
      in
      Alcotest.(check int) "restored" 8 rep.Checkpoint.resumed;
      Alcotest.(check bool) "crashes recovered in the resume" true
        (rep.Checkpoint.crashes > 0 && rep.Checkpoint.restarts > 0);
      Alcotest.(check bool) "crashy kill + resume bit-identical" true
        (vals = Lazy.force expected);
      Alcotest.(check int) "exactly-once despite restarts" n
        (supervised_tasks () - before))

let test_arena_scratch_does_not_leak_into_snapshots () =
  (* An arena-mutating trial: per-domain scratch must not perturb the
     checkpointed payloads at any setting. *)
  let scratchy acc ctx =
    acc := !acc + ctx.Pool.index;
    trial ctx
  in
  List.iter
    (fun domains ->
      let vals, _ =
        Checkpoint.sweep_batched ~domains ~chunk:3
          ~arena:(fun () -> ref 0)
          ~encode ~decode ~rng:(Prng.create seed) ~n scratchy
      in
      Alcotest.(check bool)
        (Printf.sprintf "d=%d arena scratch invisible" domains)
        true
        (vals = Lazy.force expected))
    domains_grid

let suite =
  [
    Alcotest.test_case "bcheckpoint: batched sweep = unbatched sweep" `Quick
      test_batched_matches_unbatched;
    Alcotest.test_case "bcheckpoint: snapshot bytes identical" `Quick
      test_batched_snapshots_match_unbatched;
    Alcotest.test_case "bcheckpoint: kill at every block boundary + resume"
      `Quick test_kill_at_block_boundary_resume_identical;
    Alcotest.test_case "bcheckpoint: crashes + kill + resume exactly once"
      `Quick test_kill_resume_with_crashes_exactly_once;
    Alcotest.test_case "bcheckpoint: arena scratch invisible" `Quick
      test_arena_scratch_does_not_leak_into_snapshots;
  ]

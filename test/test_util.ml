open Dcs

let check_float = Alcotest.(check (float 1e-9))

(* --- Prng --- *)

let test_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds differ" true (!same < 4)

let test_fork_independence () =
  let g = Prng.create 7 in
  let child = Prng.fork g in
  let xs = Array.init 32 (fun _ -> Prng.bits64 g) in
  let ys = Array.init 32 (fun _ -> Prng.bits64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_int_range () =
  let g = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_uniformity () =
  let g = Prng.create 99 in
  let counts = Array.make 8 0 in
  let trials = 16000 in
  for _ = 1 to trials do
    let v = Prng.int g 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      (* expected 2000; 5 sigma ~ 210 *)
      Alcotest.(check bool) "roughly uniform" true (abs (c - 2000) < 300))
    counts

let test_float_range () =
  let g = Prng.create 13 in
  for _ = 1 to 1000 do
    let v = Prng.float g 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bernoulli_bias () =
  let g = Prng.create 21 in
  let hits = ref 0 in
  let trials = 20000 in
  for _ = 1 to trials do
    if Prng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "bernoulli(0.3)" true (Float.abs (rate -. 0.3) < 0.02)

let test_bernoulli_extremes () =
  let g = Prng.create 2 in
  Alcotest.(check bool) "p=0" false (Prng.bernoulli g 0.0);
  Alcotest.(check bool) "p=1" true (Prng.bernoulli g 1.0)

let test_binomial_extremes () =
  let g = Prng.create 3 in
  Alcotest.(check int) "p=0" 0 (Prng.binomial g ~n:9 ~p:0.0);
  Alcotest.(check int) "p=1" 9 (Prng.binomial g ~n:9 ~p:1.0);
  Alcotest.(check int) "n=0" 0 (Prng.binomial g ~n:0 ~p:0.5);
  Alcotest.check_raises "n<0"
    (Invalid_argument "Prng.binomial: n must be nonnegative") (fun () ->
      ignore (Prng.binomial g ~n:(-1) ~p:0.5))

let test_binomial_expectation () =
  let g = Prng.create 23 in
  let n = 20 and p = 0.35 and trials = 20000 in
  let acc = ref 0 in
  for _ = 1 to trials do
    acc := !acc + Prng.binomial g ~n ~p
  done;
  let mean = float_of_int !acc /. float_of_int trials in
  let expected = float_of_int n *. p in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near np=%g" mean expected)
    true
    (Float.abs (mean -. expected) /. expected < 0.02)

let test_binomial_split_deterministic () =
  (* Per-index split streams replay the same draws: the contract the
     per-edge resamplers rely on for scheduling independence. *)
  let master = Prng.create 41 in
  let draw () =
    List.init 50 (fun i -> Prng.binomial (Prng.split master i) ~n:10 ~p:0.4)
  in
  Alcotest.(check bool) "split streams replay" true (draw () = draw ())

let test_sign () =
  let g = Prng.create 77 in
  let pos = ref 0 in
  for _ = 1 to 1000 do
    let s = Prng.sign g in
    Alcotest.(check bool) "sign is ±1" true (s = 1 || s = -1);
    if s = 1 then incr pos
  done;
  Alcotest.(check bool) "signs balanced" true (abs (!pos - 500) < 80)

let test_gaussian_moments () =
  let g = Prng.create 31 in
  let xs = Array.init 20000 (fun _ -> Prng.gaussian g) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs (Stats.mean xs) < 0.05);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (Stats.variance xs -. 1.0) < 0.1)

let test_shuffle_permutes () =
  let g = Prng.create 4 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let g = Prng.create 8 in
  for _ = 1 to 50 do
    let s = Prng.sample_without_replacement g ~k:10 ~n:30 in
    Alcotest.(check int) "size" 10 (Array.length s);
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun v ->
        Alcotest.(check bool) "range" true (v >= 0 && v < 30);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl v);
        Hashtbl.replace tbl v ())
      s
  done

let test_sample_full () =
  let g = Prng.create 9 in
  let s = Prng.sample_without_replacement g ~k:12 ~n:12 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "all of [0,12)" (Array.init 12 (fun i -> i)) sorted

let test_permutation_uniform_position () =
  let g = Prng.create 17 in
  (* P(perm.(0) = 0) should be ~ 1/6 for n = 6. *)
  let hits = ref 0 in
  let trials = 12000 in
  for _ = 1 to trials do
    let p = Prng.permutation g 6 in
    if p.(0) = 0 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "P ~ 1/6" true (Float.abs (rate -. (1.0 /. 6.0)) < 0.02)

(* --- Stats --- *)

let test_mean_variance () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" (5.0 /. 3.0) (Stats.variance xs);
  check_float "empty mean" 0.0 (Stats.mean [||]);
  check_float "singleton variance" 0.0 (Stats.variance [| 5.0 |])

let test_quantiles () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.median xs);
  check_float "q0" 1.0 (Stats.quantile xs 0.0);
  check_float "q1" 4.0 (Stats.quantile xs 1.0)

let test_quantile_edges () =
  (* every quantile of a singleton is the value itself *)
  check_float "singleton q0.37" 5.0 (Stats.quantile [| 5.0 |] 0.37);
  let raises q =
    try
      ignore (Stats.quantile [| 1.0; 2.0 |] q);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "q < 0 raises" true (raises (-0.01));
  Alcotest.(check bool) "q > 1 raises" true (raises 1.01);
  Alcotest.(check bool) "nan raises" true (raises Float.nan)

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_success_rate () =
  check_float "3/4" 0.75 (Stats.success_rate [| true; true; true; false |]);
  check_float "empty" 0.0 (Stats.success_rate [||])

let test_linear_regression () =
  let slope, intercept =
    Stats.linear_regression [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |]
  in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept

let test_loglog_slope () =
  (* y = 5 x^3 *)
  let pts = Array.init 5 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 5.0 *. (x ** 3.0)))
  in
  let s = Stats.loglog_slope pts in
  Alcotest.(check bool) "slope ~ 3" true (Float.abs (s -. 3.0) < 1e-6)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.0; 0.1; 0.9; 1.0 |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  Alcotest.(check int) "left count" 2 (snd h.(0));
  Alcotest.(check int) "right count" 2 (snd h.(1))

let test_histogram_edges () =
  Alcotest.(check int) "empty input -> no bins" 0
    (Array.length (Stats.histogram ~bins:4 [||]));
  Alcotest.(check bool) "bins <= 0 raises" true
    (try
       ignore (Stats.histogram ~bins:0 [| 1.0 |]);
       false
     with Invalid_argument _ -> true);
  (* all-equal samples land in a single degenerate bin *)
  let h = Stats.histogram ~bins:3 [| 2.0; 2.0; 2.0 |] in
  Alcotest.(check int) "total count preserved" 3
    (Array.fold_left (fun acc (_, c) -> acc + c) 0 h)

let test_bucket_bars () =
  let bars = Stats.bucket_bars ~width:8 [| 0; 4; 8; 1 |] in
  Alcotest.(check string) "zero count -> empty bar" "" bars.(0);
  Alcotest.(check string) "half" "####" bars.(1);
  Alcotest.(check string) "max fills the width" "########" bars.(2);
  Alcotest.(check string) "tiny count still visible" "#" bars.(3);
  Alcotest.(check (array string)) "all-zero counts" [| ""; "" |]
    (Stats.bucket_bars [| 0; 0 |])

(* --- Bits --- *)

let test_bits_counter () =
  let c = Bits.create () in
  Bits.add c 10;
  Bits.write_bool c true;
  Bits.write_float c 3.14;
  Alcotest.(check int) "total" 75 (Bits.total c);
  Alcotest.(check int) "bytes" 10 (Bits.total_bytes c)

let test_bits_for_range () =
  Alcotest.(check int) "1 value" 0 (Bits.bits_for_range 1);
  Alcotest.(check int) "2 values" 1 (Bits.bits_for_range 2);
  Alcotest.(check int) "3 values" 2 (Bits.bits_for_range 3);
  Alcotest.(check int) "256 values" 8 (Bits.bits_for_range 256);
  Alcotest.(check int) "257 values" 9 (Bits.bits_for_range 257)

let test_gamma_size () =
  Alcotest.(check int) "gamma 1" 1 (Bits.gamma_size 1);
  Alcotest.(check int) "gamma 2" 3 (Bits.gamma_size 2);
  Alcotest.(check int) "gamma 4" 5 (Bits.gamma_size 4);
  Alcotest.(check int) "gamma 7" 5 (Bits.gamma_size 7)

let test_write_fixed_validates () =
  let c = Bits.create () in
  Bits.write_fixed c ~width:4 15;
  Alcotest.check_raises "too large" (Invalid_argument "Bits.write_fixed: value out of range")
    (fun () -> Bits.write_fixed c ~width:4 16)

(* qcheck: the size helpers agree exactly with what the counter records. *)
let prop_gamma_write_matches_size =
  QCheck.Test.make ~name:"write_gamma records gamma_size bits" ~count:100
    QCheck.(int_range 1 1000000)
    (fun v ->
      let c = Bits.create () in
      Bits.write_gamma c v;
      let direct = Bits.total c in
      let c' = Bits.create () in
      Bits.write_nonneg c' (v - 1);
      direct = Bits.gamma_size v && Bits.total c' = Bits.gamma_size v)

(* qcheck: bits_for_range n is the exact ceil(log2 n): n values fit at that
   width (write_fixed accepts n-1) and, for widths > 0, half the range does
   not suffice. *)
let prop_bits_for_range_tight =
  QCheck.Test.make ~name:"bits_for_range is tight" ~count:100
    QCheck.(int_range 1 2000000)
    (fun n ->
      let w = Bits.bits_for_range n in
      let c = Bits.create () in
      Bits.write_fixed c ~width:w (n - 1);
      Bits.total c = w && (1 lsl w) >= n && (w = 0 || (1 lsl (w - 1)) < n))

(* qcheck: counter totals are additive over any sequence of writes. *)
let prop_bits_counter_additive =
  QCheck.Test.make ~name:"bits counter is additive" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 20) (int_range 1 500))
    (fun vs ->
      let c = Bits.create () in
      List.iter (fun v -> Bits.write_gamma c v) vs;
      Bits.write_float c 1.5;
      Bits.total c
      = List.fold_left (fun acc v -> acc + Bits.gamma_size v) 64 vs
      && Bits.total_bytes c = (Bits.total c + 7) / 8)

(* qcheck: every cell written into a Table comes back verbatim in render,
   and the integer formatter round-trips through the rendered text. *)
let prop_table_cells_render_roundtrip =
  QCheck.Test.make ~name:"table cells round-trip through render" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 6) small_nat)
    (fun row ->
      let cells = List.map Table.fint row in
      let t = Table.create ~title:"t" ~columns:(List.map (fun _ -> "c") cells) in
      Table.add_row t cells;
      let rendered = Table.render t in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      List.for_all2
        (fun cell v -> contains rendered cell && int_of_string cell = v)
        cells row)

(* --- Message --- *)

let test_message_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (Message.of_signs (Message.to_signs s)))
    [ ""; "a"; "PODS24"; "hello world"; "\x00\xff\x80" ]

let test_message_signs_shape () =
  let bits = Message.to_signs "A" (* 0x41 = 01000001 *) in
  Alcotest.(check (array int)) "bit pattern"
    [| -1; 1; -1; -1; -1; -1; -1; 1 |] bits

let test_message_bad_length () =
  Alcotest.check_raises "length"
    (Invalid_argument "Message.of_signs: length not a multiple of 8") (fun () ->
      ignore (Message.of_signs [| 1; 1; 1 |]))

(* --- Table --- *)

let test_table_renders () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rule t;
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 4 = "demo");
  Alcotest.(check bool) "has row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "333 | 2 " || String.length l > 0))

let test_table_row_mismatch () =
  let t = Table.create ~title:"x" ~columns:[ "a" ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_formats () =
  Alcotest.(check string) "pct" "95.3%" (Table.fpct 0.953);
  Alcotest.(check string) "int" "42" (Table.fint 42);
  Alcotest.(check string) "float" "1.500" (Table.ffloat 1.5);
  Alcotest.(check string) "bool" "yes" (Table.fbool true)

(* --- Token_bucket --- *)

let test_bucket_burst_then_starve () =
  (* Full bucket: the burst drains capacity, then refill gates admission. *)
  let b = Token_bucket.create ~capacity:4 ~rate_num:1 ~rate_den:2 () in
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "burst take %d" i) true
      (Token_bucket.try_take b ~now:0)
  done;
  Alcotest.(check bool) "empty at tick 0" false (Token_bucket.try_take b ~now:0);
  (* 1/2 token per tick: tick 1 has half a token, tick 2 a whole one. *)
  Alcotest.(check bool) "half token refused" false (Token_bucket.try_take b ~now:1);
  Alcotest.(check bool) "whole token admitted" true (Token_bucket.try_take b ~now:2);
  Alcotest.(check bool) "and spent" false (Token_bucket.try_take b ~now:2)

let test_bucket_clamps_at_capacity () =
  let b = Token_bucket.create ~initial:0 ~capacity:3 ~rate_num:1 ~rate_den:1 () in
  (* A long idle stretch cannot bank more than [capacity] tokens. *)
  Alcotest.(check int) "clamped" 3 (Token_bucket.tokens b ~now:1_000);
  Alcotest.(check int) "capacity" 3 (Token_bucket.capacity b);
  for i = 1 to 3 do
    Alcotest.(check bool) (Printf.sprintf "take %d" i) true
      (Token_bucket.try_take b ~now:1_000)
  done;
  Alcotest.(check bool) "no fourth" false (Token_bucket.try_take b ~now:1_000)

let test_bucket_validates () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Token_bucket.create: capacity must be >= 1") (fun () ->
      ignore (Token_bucket.create ~capacity:0 ~rate_num:1 ~rate_den:1 ()));
  Alcotest.check_raises "initial"
    (Invalid_argument "Token_bucket.create: initial must be in [0, capacity]")
    (fun () ->
      ignore
        (Token_bucket.create ~initial:5 ~capacity:4 ~rate_num:1 ~rate_den:1 ()));
  let b = Token_bucket.create ~capacity:1 ~rate_num:1 ~rate_den:1 () in
  ignore (Token_bucket.try_take b ~now:10);
  Alcotest.check_raises "monotone clock"
    (Invalid_argument "Token_bucket: the virtual clock must not move backwards")
    (fun () -> ignore (Token_bucket.try_take b ~now:9))

(* Admissions over any nondecreasing arrival sequence never exceed
   initial + elapsed * rate, and an admission implies a token existed. *)
let prop_bucket_never_overspends =
  QCheck.Test.make ~name:"token bucket never admits beyond its refill"
    ~count:200
    QCheck.(
      pair
        (pair (int_range 1 8) (pair (int_range 0 3) (int_range 1 4)))
        (small_list (int_range 0 5)))
    (fun ((capacity, (rate_num, rate_den)), gaps) ->
      let b = Token_bucket.create ~capacity ~rate_num ~rate_den () in
      let now = ref 0 and admitted = ref 0 in
      List.iter
        (fun gap ->
          now := !now + gap;
          if Token_bucket.try_take b ~now:!now then incr admitted)
        gaps;
      (* capacity head start plus what the refill could have produced. *)
      !admitted <= capacity + ((!now * rate_num) / rate_den))

let suite =
  [
    Alcotest.test_case "prng: determinism" `Quick test_determinism;
    Alcotest.test_case "prng: seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "prng: fork independence" `Quick test_fork_independence;
    Alcotest.test_case "prng: int range" `Quick test_int_range;
    Alcotest.test_case "prng: int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "prng: float range" `Quick test_float_range;
    Alcotest.test_case "prng: bernoulli bias" `Quick test_bernoulli_bias;
    Alcotest.test_case "prng: bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "prng: binomial extremes" `Quick test_binomial_extremes;
    Alcotest.test_case "prng: binomial expectation" `Quick test_binomial_expectation;
    Alcotest.test_case "prng: binomial split determinism" `Quick test_binomial_split_deterministic;
    Alcotest.test_case "prng: sign" `Quick test_sign;
    Alcotest.test_case "prng: gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "prng: shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "prng: sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "prng: sample full range" `Quick test_sample_full;
    Alcotest.test_case "prng: permutation uniform" `Quick test_permutation_uniform_position;
    Alcotest.test_case "stats: mean/variance" `Quick test_mean_variance;
    Alcotest.test_case "stats: quantiles" `Quick test_quantiles;
    Alcotest.test_case "stats: quantile edge cases" `Quick test_quantile_edges;
    Alcotest.test_case "stats: min/max" `Quick test_min_max;
    Alcotest.test_case "stats: success rate" `Quick test_success_rate;
    Alcotest.test_case "stats: linear regression" `Quick test_linear_regression;
    Alcotest.test_case "stats: loglog slope" `Quick test_loglog_slope;
    Alcotest.test_case "stats: histogram" `Quick test_histogram;
    Alcotest.test_case "stats: histogram edge cases" `Quick test_histogram_edges;
    Alcotest.test_case "stats: bucket bars" `Quick test_bucket_bars;
    Alcotest.test_case "bits: counter" `Quick test_bits_counter;
    Alcotest.test_case "bits: bits_for_range" `Quick test_bits_for_range;
    Alcotest.test_case "bits: gamma size" `Quick test_gamma_size;
    Alcotest.test_case "bits: write_fixed validates" `Quick test_write_fixed_validates;
    Alcotest.test_case "message: roundtrip" `Quick test_message_roundtrip;
    Alcotest.test_case "message: bit pattern" `Quick test_message_signs_shape;
    Alcotest.test_case "message: bad length" `Quick test_message_bad_length;
    Alcotest.test_case "table: renders" `Quick test_table_renders;
    Alcotest.test_case "table: row mismatch" `Quick test_table_row_mismatch;
    Alcotest.test_case "table: cell formats" `Quick test_table_formats;
    Alcotest.test_case "bucket: burst then starve" `Quick test_bucket_burst_then_starve;
    Alcotest.test_case "bucket: clamps at capacity" `Quick test_bucket_clamps_at_capacity;
    Alcotest.test_case "bucket: validates" `Quick test_bucket_validates;
    QCheck_alcotest.to_alcotest prop_bucket_never_overspends;
    QCheck_alcotest.to_alcotest prop_gamma_write_matches_size;
    QCheck_alcotest.to_alcotest prop_bits_for_range_tight;
    QCheck_alcotest.to_alcotest prop_bits_counter_additive;
    QCheck_alcotest.to_alcotest prop_table_cells_render_roundtrip;
  ]

let () =
  Alcotest.run "dcs-serve"
    [
      ("traffic", Test_straffic.suite);
      ("serve", Test_sserve.suite);
    ]

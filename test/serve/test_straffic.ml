(* Traffic generator: deterministic open-loop traces with the documented
   shape — nondecreasing arrivals, sequential seqs, in-range keys, hot-key
   skew, and denser arrivals inside burst windows. *)

open Dcs

let base =
  {
    Traffic.keys = 16;
    Traffic.hot_keys = 4;
    Traffic.hot_fraction = 0.9;
    Traffic.mean_gap = 8;
    Traffic.burst_every = 0;
    Traffic.burst_len = 0;
    Traffic.burst_factor = 1;
    Traffic.deadline = 500;
  }

let test_generate_deterministic () =
  let a = Traffic.generate (Prng.create 77) base ~n:500 in
  let b = Traffic.generate (Prng.create 77) base ~n:500 in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  let c = Traffic.generate (Prng.create 78) base ~n:500 in
  Alcotest.(check bool) "different seed, different trace" true (a <> c)

let test_generate_shape () =
  let reqs = Traffic.generate (Prng.create 3) base ~n:1_000 in
  Alcotest.(check int) "length" 1_000 (Array.length reqs);
  Array.iteri
    (fun i r ->
      Alcotest.(check int) "seq is the position" i r.Traffic.seq;
      Alcotest.(check bool) "key in range" true
        (r.Traffic.key >= 0 && r.Traffic.key < base.Traffic.keys);
      Alcotest.(check int) "deadline carried" base.Traffic.deadline
        r.Traffic.deadline;
      if i > 0 then
        Alcotest.(check bool) "arrivals nondecreasing" true
          (r.Traffic.arrival >= reqs.(i - 1).Traffic.arrival))
    reqs

let test_hot_key_skew () =
  let reqs = Traffic.generate (Prng.create 9) base ~n:4_000 in
  let hot =
    Array.fold_left
      (fun acc r -> if r.Traffic.key < base.Traffic.hot_keys then acc + 1 else acc)
      0 reqs
  in
  (* 90% nominal: anything in [80%, 98%] over 4000 draws is fine. *)
  Alcotest.(check bool)
    (Printf.sprintf "hot share %d/4000 near 0.9" hot)
    true
    (hot > 3_200 && hot < 3_920);
  (* hot_fraction 1.0 pins every key into the hot set. *)
  let all_hot =
    Traffic.generate (Prng.create 9)
      { base with Traffic.hot_fraction = 1.0 }
      ~n:500
  in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "only hot keys" true
        (r.Traffic.key < base.Traffic.hot_keys))
    all_hot

let test_bursts_densify_arrivals () =
  let cfg =
    {
      base with
      Traffic.burst_every = 1_000;
      Traffic.burst_len = 200;
      Traffic.burst_factor = 8;
    }
  in
  let reqs = Traffic.generate (Prng.create 4) cfg ~n:20_000 in
  (* Mean inter-arrival gap measured separately inside and outside burst
     windows: the burst side must be several times denser. *)
  let sum_in = ref 0 and n_in = ref 0 and sum_out = ref 0 and n_out = ref 0 in
  for i = 1 to Array.length reqs - 1 do
    let gap = reqs.(i).Traffic.arrival - reqs.(i - 1).Traffic.arrival in
    if Traffic.in_burst cfg reqs.(i).Traffic.arrival then begin
      sum_in := !sum_in + gap;
      incr n_in
    end
    else begin
      sum_out := !sum_out + gap;
      incr n_out
    end
  done;
  Alcotest.(check bool) "both regimes sampled" true (!n_in > 100 && !n_out > 100);
  let mean_in = float !sum_in /. float !n_in
  and mean_out = float !sum_out /. float !n_out in
  Alcotest.(check bool)
    (Printf.sprintf "burst gap %.2f well under steady %.2f" mean_in mean_out)
    true
    (mean_in *. 3. < mean_out)

let test_validate_rejects () =
  let bad msg cfg =
    Alcotest.(check bool) msg true
      (try
         Traffic.validate cfg;
         false
       with Invalid_argument _ -> true)
  in
  bad "hot_keys > keys" { base with Traffic.hot_keys = 17 };
  bad "hot_keys < 1" { base with Traffic.hot_keys = 0 };
  bad "hot_fraction > 1" { base with Traffic.hot_fraction = 1.5 };
  bad "mean_gap < 1" { base with Traffic.mean_gap = 0 };
  bad "burst_factor < 1" { base with Traffic.burst_factor = 0 };
  bad "deadline < 1" { base with Traffic.deadline = 0 };
  Traffic.validate base;
  Traffic.validate Traffic.default

let suite =
  [
    Alcotest.test_case "traffic: generate deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "traffic: trace shape" `Quick test_generate_shape;
    Alcotest.test_case "traffic: hot-key skew" `Quick test_hot_key_skew;
    Alcotest.test_case "traffic: bursts densify arrivals" `Quick
      test_bursts_densify_arrivals;
    Alcotest.test_case "traffic: validate rejects" `Quick test_validate_rejects;
  ]

(* The serving engine: every admission-control path produces a typed
   response (never a silent drop), degradation honors its advertised eps,
   the breaker trips and recovers with hysteresis, and the whole thing is
   byte-identical across DCS_DOMAINS. *)

open Dcs

let catalog seed ~keys =
  let master = Prng.create seed in
  Array.init keys (fun i ->
      let r = Prng.split master i in
      let g0 = Generators.erdos_renyi_connected r ~n:16 ~p:0.3 in
      Csr.of_ugraph (Generators.random_multigraph_weights r g0 ~max_weight:6))

let graphs = lazy (catalog 501 ~keys:8)

(* A hand-built trace: [specs] is a list of (arrival, key) pairs. *)
let trace ?(deadline = 1_000_000) specs =
  Array.of_list
    (List.mapi
       (fun seq (arrival, key) ->
         {
           Traffic.seq;
           Traffic.arrival;
           Traffic.key;
           Traffic.cut_seed = 7_000 + (13 * seq);
           Traffic.deadline;
         })
       specs)

let exact_value g cut_seed =
  let cut = Cut.random (Prng.create cut_seed) ~n:(Csr.n g) in
  Csr.cut_value g cut

(* Every answered reply must land within its own advertised eps. *)
let check_accuracy gs reqs responses =
  Array.iteri
    (fun i -> function
      | Serve.Answered a ->
          let exact = exact_value gs.(reqs.(i).Traffic.key) reqs.(i).Traffic.cut_seed in
          Alcotest.(check bool)
            (Printf.sprintf "seq %d within eps %.2f" i a.Serve.eps)
            true
            (Float.abs (a.Serve.value -. exact) <= (a.Serve.eps *. exact) +. 1e-9)
      | Serve.Rejected _ -> ())
    responses

let check_accounting responses (s : Serve.stats) =
  let answered = ref 0 and shed = ref 0 and late = ref 0 in
  Array.iter
    (function
      | Serve.Answered _ -> incr answered
      | Serve.Rejected (Serve.Overloaded _) -> incr shed
      | Serve.Rejected (Serve.Deadline_exceeded _) -> incr late)
    responses;
  Alcotest.(check int) "answered responses = stats" s.Serve.answered !answered;
  Alcotest.(check int) "shed responses = stats" s.Serve.shed !shed;
  Alcotest.(check int) "late responses = stats" s.Serve.deadline_rejections !late;
  Alcotest.(check int) "offered fully accounted" s.Serve.offered
    (!answered + !shed + !late);
  Alcotest.(check int) "shed decomposition" s.Serve.shed
    (s.Serve.queue_full + s.Serve.rate_limited + s.Serve.wire_rejections)

(* --- calm path --- *)

let test_calm_all_answered () =
  let gs = Lazy.force graphs in
  let reqs = trace (List.init 64 (fun i -> (i * 20, i mod 4))) in
  let srv = Serve.create Serve.default_config ~graphs:gs ~rng:(Prng.create 1) in
  let responses = Serve.run srv reqs in
  let s = Serve.stats srv in
  Alcotest.(check int) "one response per request" 64 (Array.length responses);
  Alcotest.(check int) "all answered" 64 s.Serve.answered;
  Alcotest.(check int) "nothing degraded" 0 s.Serve.degraded_answers;
  Array.iter
    (function
      | Serve.Answered a ->
          Alcotest.(check bool) "full-fidelity eps" true
            (a.Serve.eps = Serve.default_config.Serve.eps_full);
          Alcotest.(check bool) "not flagged degraded" false a.Serve.degraded;
          Alcotest.(check bool) "positive latency" true (a.Serve.latency > 0)
      | Serve.Rejected _ -> Alcotest.fail "calm trace rejected a request")
    responses;
  check_accuracy gs reqs responses;
  check_accounting responses s;
  (* 4 distinct keys, capacity 16: first touch per key misses, rest hit. *)
  Alcotest.(check int) "one miss per key" 4 s.Serve.cache_misses;
  Alcotest.(check int) "the rest hit" 60 s.Serve.cache_hits;
  Alcotest.(check int) "no evictions" 0 s.Serve.cache_evictions

let test_cache_thrash_evicts () =
  let gs = Lazy.force graphs in
  (* Round-robin over 8 keys with room for 2: every lookup misses. *)
  let reqs = trace (List.init 64 (fun i -> (i * 20, i mod 8))) in
  let cfg = { Serve.default_config with Serve.cache_capacity = 2 } in
  let srv = Serve.create cfg ~graphs:gs ~rng:(Prng.create 2) in
  let responses = Serve.run srv reqs in
  let s = Serve.stats srv in
  check_accounting responses s;
  Alcotest.(check int) "every lookup misses" 64 s.Serve.cache_misses;
  Alcotest.(check bool) "evictions happened" true (s.Serve.cache_evictions > 0);
  Alcotest.(check int) "lookups = computed requests" s.Serve.answered
    (s.Serve.cache_hits + s.Serve.cache_misses)

let test_update_graph_invalidates () =
  let gs = Array.copy (Lazy.force graphs) in
  let srv = Serve.create Serve.default_config ~graphs:gs ~rng:(Prng.create 11) in
  (* Warm the cache on key 0. *)
  let reqs1 = trace (List.init 8 (fun i -> (i * 50, 0))) in
  let responses1 = Serve.run srv reqs1 in
  let s1 = Serve.stats srv in
  Alcotest.(check int) "warm: one miss" 1 s1.Serve.cache_misses;
  Alcotest.(check int) "nothing invalidated yet" 0 s1.Serve.cache_invalidations;
  (* Mutate key 0 through the streaming layer: rebuild it as an edge
     stream, ingest a new arc, and swap the re-frozen view into the live
     catalog. *)
  let t = Stream_sketch.create ~n:(Csr.n gs.(0)) ~seed:7 () in
  Digraph.iter_edges (Csr.to_digraph gs.(0)) (fun u v w ->
      Stream_sketch.insert t ~u ~v ~w);
  Stream_sketch.insert t ~u:0 ~v:1 ~w:5.0;
  Serve.update_graph srv ~key:0 (Stream_sketch.frozen t);
  gs.(0) <- Stream_sketch.frozen t;
  let s2 = Serve.stats srv in
  Alcotest.(check int) "stale sketch invalidated" 1 s2.Serve.cache_invalidations;
  (* The next run re-misses once (the stale entry is gone) and serves the
     NEW content — accuracy is checked against the updated graph. *)
  let base = s2.Serve.clock + 1 in
  let reqs2 = trace (List.init 8 (fun i -> (base + (i * 50), 0))) in
  let responses = Serve.run srv reqs2 in
  let s3 = Serve.stats srv in
  Alcotest.(check int) "one fresh miss after invalidation" 2 s3.Serve.cache_misses;
  check_accuracy gs reqs2 responses;
  check_accounting (Array.append responses1 responses) s3;
  (* Re-installing identical content is invisible: the fingerprint is
     unchanged, so the warm cache entry survives. *)
  Serve.update_graph srv ~key:0 gs.(0);
  Alcotest.(check int) "no-op update does not invalidate" 1
    (Serve.stats srv).Serve.cache_invalidations;
  Alcotest.(check bool) "key outside the catalog rejected" true
    (try
       Serve.update_graph srv ~key:99 gs.(0);
       false
     with Invalid_argument _ -> true)

(* --- admission control --- *)

let overflow_cfg =
  {
    Serve.default_config with
    Serve.queue_depth = 4;
    Serve.batch = 4;
    Serve.bucket_capacity = 64;
    Serve.rate_num = 1;
    Serve.rate_den = 1;
  }

let queue_full_seqs responses =
  let shed = ref [] in
  Array.iteri
    (fun i -> function
      | Serve.Rejected (Serve.Overloaded Serve.Queue_full) -> shed := i :: !shed
      | _ -> ())
    responses;
  List.rev !shed

let test_shed_newest_exact () =
  let gs = Lazy.force graphs in
  (* 16 simultaneous arrivals into a depth-4 queue: seqs 0-3 are admitted,
     every later arrival is the newest and is shed. *)
  let reqs = trace (List.init 16 (fun i -> (0, i mod 4))) in
  let srv = Serve.create overflow_cfg ~graphs:gs ~rng:(Prng.create 3) in
  let responses = Serve.run srv reqs in
  let s = Serve.stats srv in
  check_accounting responses s;
  Alcotest.(check (list int)) "arrivals 4..15 shed"
    (List.init 12 (fun i -> i + 4))
    (queue_full_seqs responses);
  Alcotest.(check int) "the four oldest answered" 4 s.Serve.answered

let test_shed_oldest_exact () =
  let gs = Lazy.force graphs in
  (* Same offered load, opposite policy: each arrival displaces the head,
     so the last 4 arrivals survive and seqs 0-11 are shed. *)
  let reqs = trace (List.init 16 (fun i -> (0, i mod 4))) in
  let cfg = { overflow_cfg with Serve.shed_policy = Serve.Reject_oldest } in
  let srv = Serve.create cfg ~graphs:gs ~rng:(Prng.create 3) in
  let responses = Serve.run srv reqs in
  let s = Serve.stats srv in
  check_accounting responses s;
  Alcotest.(check (list int)) "arrivals 0..11 shed"
    (List.init 12 Fun.id)
    (queue_full_seqs responses);
  Alcotest.(check int) "the four newest answered" 4 s.Serve.answered;
  Alcotest.(check int) "queue peak = depth" 4 s.Serve.queue_peak

let test_rate_limiting () =
  let gs = Lazy.force graphs in
  (* One-token bucket refilling a token per 1000 ticks: of ten arrivals in
     ten ticks, only the first is admitted. *)
  let reqs = trace (List.init 10 (fun i -> (i, 0))) in
  let cfg =
    {
      Serve.default_config with
      Serve.bucket_capacity = 1;
      Serve.rate_num = 1;
      Serve.rate_den = 1_000;
    }
  in
  let srv = Serve.create cfg ~graphs:gs ~rng:(Prng.create 4) in
  let responses = Serve.run srv reqs in
  let s = Serve.stats srv in
  check_accounting responses s;
  Alcotest.(check int) "one admitted" 1 s.Serve.answered;
  Alcotest.(check int) "nine rate-limited" 9 s.Serve.rate_limited;
  Array.iteri
    (fun i -> function
      | Serve.Rejected (Serve.Overloaded Serve.Rate_limited) ->
          Alcotest.(check bool) "only later arrivals limited" true (i > 0)
      | Serve.Answered _ ->
          Alcotest.(check int) "the first arrival got through" 0 i
      | Serve.Rejected _ -> Alcotest.failf "unexpected rejection at seq %d" i)
    responses

let test_deadline_exceeded_typed () =
  let gs = Lazy.force graphs in
  (* Service costs 6 + 2 overhead ticks against a 1-tick budget: every
     request completes, late, and says by how much. *)
  let reqs = trace ~deadline:1 (List.init 8 (fun i -> (i * 500, i mod 4))) in
  let srv = Serve.create Serve.default_config ~graphs:gs ~rng:(Prng.create 5) in
  let responses = Serve.run srv reqs in
  let s = Serve.stats srv in
  check_accounting responses s;
  Alcotest.(check int) "all late" 8 s.Serve.deadline_rejections;
  Array.iter
    (function
      | Serve.Rejected (Serve.Deadline_exceeded { lateness }) ->
          Alcotest.(check bool) "positive lateness" true (lateness > 0)
      | _ -> Alcotest.fail "expected Deadline_exceeded")
    responses

let test_wire_give_up_rejects_frame () =
  let gs = Lazy.force graphs in
  (* A dead wire: every frame exhausts its retransmissions and its whole
     group is rejected with the give-up accounting attached. *)
  let reqs = trace (List.init 12 (fun i -> (i * 100, i mod 4))) in
  let cfg =
    {
      Serve.default_config with
      Serve.wire = Fault.policy ~drop:1.0 ();
      Serve.max_retransmissions = 2;
    }
  in
  let srv = Serve.create cfg ~graphs:gs ~rng:(Prng.create 6) in
  let responses = Serve.run srv reqs in
  let s = Serve.stats srv in
  check_accounting responses s;
  Alcotest.(check int) "everything rejected on the wire" 12
    s.Serve.wire_rejections;
  Array.iter
    (function
      | Serve.Rejected (Serve.Overloaded (Serve.Wire_give_up gu)) ->
          Alcotest.(check int) "bounded transmissions" 3 gu.Channel.transmissions
      | _ -> Alcotest.fail "expected Wire_give_up")
    responses

(* --- degradation --- *)

let test_breaker_trips_and_recovers () =
  let gs = Lazy.force graphs in
  (* An always-timing-out oracle: full-fidelity requests exhaust their
     retries, the breaker trips, degraded mode (no oracle) produces healthy
     windows, the breaker recovers after the hysteresis streak — and the
     cycle repeats. *)
  let reqs = trace (List.init 400 (fun i -> (i * 50, i mod 4))) in
  let cfg =
    {
      Serve.default_config with
      Serve.oracle = Fault.policy ~timeout:1.0 ();
      Serve.retry_budget = 2;
      Serve.breaker =
        {
          Serve.window = 8;
          Serve.trip_fault_rate = 0.5;
          Serve.trip_queue = 512;
          Serve.recovery_windows = 2;
        };
    }
  in
  let srv = Serve.create cfg ~graphs:gs ~rng:(Prng.create 7) in
  let responses = Serve.run srv reqs in
  let s = Serve.stats srv in
  check_accounting responses s;
  check_accuracy gs reqs responses;
  Alcotest.(check bool) "breaker tripped more than once" true
    (s.Serve.breaker_trips >= 2);
  Alcotest.(check bool) "and recovered in between" true
    (s.Serve.breaker_recoveries >= 1);
  Alcotest.(check bool) "hysteresis: trips lead recoveries" true
    (s.Serve.breaker_trips >= s.Serve.breaker_recoveries);
  Alcotest.(check bool) "retries were spent" true
    (s.Serve.oracle_retries > 0 && s.Serve.oracle_exhausted > 0);
  Alcotest.(check bool) "backoff was charged" true (s.Serve.backoff_ticks > 0);
  Alcotest.(check bool) "degraded answers produced" true
    (s.Serve.degraded_answers > 0);
  (* Every degraded answer advertises the wide eps; with a dead oracle
     every answer is degraded one way (breaker) or the other (exhausted). *)
  Array.iter
    (function
      | Serve.Answered a ->
          Alcotest.(check bool) "flagged degraded" true a.Serve.degraded;
          Alcotest.(check (float 1e-12)) "advertises eps_degraded"
            cfg.Serve.eps_degraded a.Serve.eps
      | Serve.Rejected _ -> Alcotest.fail "no rejections expected here")
    responses

(* --- long-lived server --- *)

let test_clock_persists_across_runs () =
  let gs = Lazy.force graphs in
  let srv = Serve.create Serve.default_config ~graphs:gs ~rng:(Prng.create 8) in
  let r1 = Serve.run srv (trace (List.init 8 (fun i -> (i * 30, 0)))) in
  let clock1 = (Serve.stats srv).Serve.clock in
  Alcotest.(check bool) "clock advanced" true (clock1 > 0);
  (* A second trace may not start before the persisted clock... *)
  Alcotest.(check bool) "stale arrivals rejected" true
    (try
       ignore (Serve.run srv (trace [ (0, 0) ]));
       false
     with Invalid_argument _ -> true);
  (* ... but one at/after it continues the same accounting. *)
  let r2 = Serve.run srv (trace [ (clock1, 1); (clock1 + 10, 2) ]) in
  let s = Serve.stats srv in
  Alcotest.(check int) "offered accumulates" 10 s.Serve.offered;
  Alcotest.(check int) "answered accumulates" 10 s.Serve.answered;
  Alcotest.(check int) "runs answer independently"
    (Array.length r1 + Array.length r2)
    10

let test_run_validates_trace () =
  let gs = Lazy.force graphs in
  let srv = Serve.create Serve.default_config ~graphs:gs ~rng:(Prng.create 9) in
  Alcotest.(check bool) "key outside catalog" true
    (try
       ignore (Serve.run srv (trace [ (0, 99) ]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "decreasing arrivals" true
    (try
       ignore (Serve.run srv (trace [ (10, 0); (5, 0) ]));
       false
     with Invalid_argument _ -> true)

(* --- config plumbing --- *)

let test_config_of_env () =
  let with_env k v f =
    let old = Sys.getenv_opt k in
    Unix.putenv k v;
    Fun.protect
      ~finally:(fun () -> Unix.putenv k (Option.value old ~default:""))
      f
  in
  with_env Serve.queue_depth_env "77" (fun () ->
      with_env Serve.shed_policy_env "OLDEST" (fun () ->
          let cfg = Serve.config_of_env Serve.default_config in
          Alcotest.(check int) "depth from env" 77 cfg.Serve.queue_depth;
          Alcotest.(check bool) "policy from env" true
            (cfg.Serve.shed_policy = Serve.Reject_oldest)));
  with_env Serve.queue_depth_env "" (fun () ->
      let cfg = Serve.config_of_env Serve.default_config in
      Alcotest.(check int) "empty means default"
        Serve.default_config.Serve.queue_depth cfg.Serve.queue_depth);
  with_env Serve.queue_depth_env "-3" (fun () ->
      Alcotest.(check bool) "bad depth rejected" true
        (try
           ignore (Serve.config_of_env Serve.default_config);
           false
         with Invalid_argument _ -> true));
  with_env Serve.shed_policy_env "sideways" (fun () ->
      Alcotest.(check bool) "bad policy rejected" true
        (try
           ignore (Serve.config_of_env Serve.default_config);
           false
         with Invalid_argument _ -> true))

let test_validate_rejects () =
  let bad msg cfg =
    Alcotest.(check bool) msg true
      (try
         Serve.validate cfg;
         false
       with Invalid_argument _ -> true)
  in
  bad "queue_depth" { Serve.default_config with Serve.queue_depth = 0 };
  bad "eps order"
    { Serve.default_config with Serve.eps_full = 0.5; Serve.eps_degraded = 0.1 };
  bad "eps range" { Serve.default_config with Serve.eps_full = 1.5 };
  bad "retry budget" { Serve.default_config with Serve.retry_budget = 0 };
  bad "retransmissions"
    { Serve.default_config with Serve.max_retransmissions = -1 };
  bad "trip rate"
    {
      Serve.default_config with
      Serve.breaker =
        { Serve.default_config.Serve.breaker with Serve.trip_fault_rate = 1.5 };
    };
  Serve.validate Serve.default_config

(* --- determinism across DCS_DOMAINS --- *)

let test_cross_domain_identical () =
  let gs = Lazy.force graphs in
  (* A stressed trace (bursty arrivals, faulty oracle, flaky wire, small
     queue, pool dispatch forced on) must be byte-identical at 1/2/4
     domains: responses and every counter. *)
  let traffic =
    {
      Traffic.keys = 8;
      Traffic.hot_keys = 2;
      Traffic.hot_fraction = 0.8;
      Traffic.mean_gap = 4;
      Traffic.burst_every = 500;
      Traffic.burst_len = 150;
      Traffic.burst_factor = 8;
      Traffic.deadline = 60;
    }
  in
  let reqs = Traffic.generate (Prng.create 44) traffic ~n:3_000 in
  let cfg =
    {
      Serve.default_config with
      Serve.queue_depth = 16;
      Serve.batch = 8;
      Serve.pool_threshold = 1;
      Serve.oracle = Fault.policy ~timeout:0.3 ();
      Serve.wire = Fault.policy ~drop:0.05 ~corrupt:0.05 ();
    }
  in
  let run domains =
    let srv = Serve.create ~domains cfg ~graphs:gs ~rng:(Prng.create 45) in
    let responses = Serve.run srv reqs in
    (responses, Serve.stats srv)
  in
  let r1, s1 = run 1 in
  check_accounting r1 s1;
  Alcotest.(check bool)
    (Printf.sprintf "answers exercised (%d)" s1.Serve.answered)
    true (s1.Serve.answered > 0);
  Alcotest.(check bool)
    (Printf.sprintf "shedding exercised (%d)" s1.Serve.shed)
    true (s1.Serve.shed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "deadlines exercised (%d)" s1.Serve.deadline_rejections)
    true
    (s1.Serve.deadline_rejections > 0);
  List.iter
    (fun domains ->
      let rd, sd = run domains in
      Alcotest.(check bool)
        (Printf.sprintf "responses identical at %d domains" domains)
        true (rd = r1);
      Alcotest.(check bool)
        (Printf.sprintf "stats identical at %d domains" domains)
        true (sd = s1))
    [ 2; 4 ]

(* --- qcheck: the cardinal rule under arbitrary load --- *)

let prop_no_silent_drops =
  QCheck.Test.make
    ~name:"serve: answered + shed + late = offered for arbitrary load"
    ~count:40
    QCheck.(
      quad (int_range 0 60) (int_range 1 6) (int_range 1 1_000)
        (int_range 1 10_000))
    (fun (n, queue_depth, deadline, seed) ->
      let gs = Lazy.force graphs in
      let traffic =
        {
          Traffic.keys = 8;
          Traffic.hot_keys = 2;
          Traffic.hot_fraction = 0.7;
          Traffic.mean_gap = 3;
          Traffic.burst_every = 0;
          Traffic.burst_len = 0;
          Traffic.burst_factor = 1;
          Traffic.deadline = deadline;
        }
      in
      let reqs = Traffic.generate (Prng.create seed) traffic ~n in
      let cfg =
        {
          Serve.default_config with
          Serve.queue_depth;
          Serve.batch = 4;
          Serve.bucket_capacity = 8;
          Serve.oracle = Fault.policy ~timeout:0.4 ();
          Serve.wire = Fault.policy ~drop:0.1 ();
          Serve.max_retransmissions = 1;
        }
      in
      let srv = Serve.create cfg ~graphs:gs ~rng:(Prng.create (seed + 1)) in
      let responses = Serve.run srv reqs in
      let s = Serve.stats srv in
      let answered = ref 0 and shed = ref 0 and late = ref 0 in
      Array.iter
        (function
          | Serve.Answered _ -> incr answered
          | Serve.Rejected (Serve.Overloaded _) -> incr shed
          | Serve.Rejected (Serve.Deadline_exceeded _) -> incr late)
        responses;
      Array.length responses = n
      && !answered + !shed + !late = n
      && s.Serve.answered = !answered
      && s.Serve.shed = !shed
      && s.Serve.deadline_rejections = !late
      && s.Serve.shed
         = s.Serve.queue_full + s.Serve.rate_limited + s.Serve.wire_rejections)

let suite =
  [
    Alcotest.test_case "serve: calm trace all answered" `Quick
      test_calm_all_answered;
    Alcotest.test_case "serve: cache thrash evicts" `Quick
      test_cache_thrash_evicts;
    Alcotest.test_case "serve: live update invalidates the cache" `Quick
      test_update_graph_invalidates;
    Alcotest.test_case "serve: shed newest (exact seqs)" `Quick
      test_shed_newest_exact;
    Alcotest.test_case "serve: shed oldest (exact seqs)" `Quick
      test_shed_oldest_exact;
    Alcotest.test_case "serve: rate limiting" `Quick test_rate_limiting;
    Alcotest.test_case "serve: deadline exceeded typed" `Quick
      test_deadline_exceeded_typed;
    Alcotest.test_case "serve: wire give-up rejects frame" `Quick
      test_wire_give_up_rejects_frame;
    Alcotest.test_case "serve: breaker trips and recovers" `Quick
      test_breaker_trips_and_recovers;
    Alcotest.test_case "serve: clock persists across runs" `Quick
      test_clock_persists_across_runs;
    Alcotest.test_case "serve: run validates trace" `Quick
      test_run_validates_trace;
    Alcotest.test_case "serve: config from environment" `Quick
      test_config_of_env;
    Alcotest.test_case "serve: validate rejects" `Quick test_validate_rejects;
    Alcotest.test_case "serve: cross-domain identical" `Quick
      test_cross_domain_identical;
    QCheck_alcotest.to_alcotest prop_no_silent_drops;
  ]

(* Certify/repair semantics of Dcs.Partial_mincut: the reported value is
   always an exact cut weight of the original graph; certification
   accepts only within the eps promise; violation falls back to the
   dense solver and reproduces its answer exactly. *)

open Dcs

let planted ~block ~k seed =
  Generators.planted_mincut (Prng.create seed) ~block ~k ~p_inner:0.5

(* On the planted instance the sparse path finds the planted cut, whose
   H-weight is exact (p = 1 on cross edges): certification passes and
   the repaired value equals the dense answer. *)
let test_certified_equals_dense () =
  let g = planted ~block:40 ~k:3 21 in
  let exact, _ = Stoer_wagner.mincut g in
  Alcotest.(check (float 1e-9)) "planted min cut" 3.0 exact;
  let r =
    Partial_mincut.mincut ~rho:8.0 ~cap:128.0 ~flow_budget:64 (Prng.create 2)
      ~eps:0.3
      ~solver:(Partial_mincut.Karger { trials = 64 })
      g
  in
  Alcotest.(check (float 1e-9)) "value = dense" exact r.Partial_mincut.value;
  Alcotest.(check bool) "certified" true r.Partial_mincut.stats.Partial_mincut.certified;
  Alcotest.(check bool) "no fallback" false r.Partial_mincut.stats.Partial_mincut.fell_back;
  Alcotest.(check bool)
    "solved fewer edges" true
    (r.Partial_mincut.stats.Partial_mincut.m_sparse
    < r.Partial_mincut.stats.Partial_mincut.m_full);
  Alcotest.(check (float 1e-9))
    "value is the cut's exact weight" r.Partial_mincut.value
    (Ugraph.cut_value g r.Partial_mincut.cut)

(* rho = 0.05 with cap 1 guts the sparsifier; the certifier must reject
   it and the dense rerun must reproduce Stoer-Wagner exactly. *)
let test_forced_fallback_repairs () =
  let g = planted ~block:40 ~k:3 23 in
  let exact, _ = Stoer_wagner.mincut g in
  let r =
    Partial_mincut.mincut ~rho:0.05 ~cap:1.0 (Prng.create 4) ~eps:0.3
      ~solver:Partial_mincut.Stoer_wagner g
  in
  Alcotest.(check bool) "fell back" true r.Partial_mincut.stats.Partial_mincut.fell_back;
  Alcotest.(check bool) "not certified" false r.Partial_mincut.stats.Partial_mincut.certified;
  Alcotest.(check (float 1e-9)) "fallback = dense" exact r.Partial_mincut.value

(* Every solver through the same driver agrees up to the (1+eps) promise
   and never reports below the minimum (the value is a real cut weight). *)
let test_solver_routing_sound () =
  let g = planted ~block:40 ~k:3 29 in
  let exact, _ = Stoer_wagner.mincut g in
  List.iter
    (fun solver ->
      let r =
        Partial_mincut.mincut ~rho:8.0 ~cap:128.0 ~flow_budget:64
          (Prng.create 6) ~eps:0.3 ~solver g
      in
      Alcotest.(check bool)
        "never below the min cut" true
        (r.Partial_mincut.value >= exact -. 1e-9))
    [
      Partial_mincut.Karger { trials = 64 };
      Partial_mincut.Karger_stein { runs = Some 1 };
      Partial_mincut.Stoer_wagner;
    ]

(* rho >= cap keeps every edge (p = 1): H = G, so the directed s-t
   driver's sparse value equals the dense flow and certification is a
   tautology — the cleanest end-to-end check of the repair invariant. *)
let test_st_identity_certifies () =
  let g =
    Generators.balanced_digraph (Prng.create 31) ~n:60 ~p:0.3 ~beta:2.0
      ~max_weight:4.0
  in
  let dense = Dinic.maxflow (Dinic.of_digraph g) ~s:0 ~t:59 in
  let r =
    Partial_mincut.st_mincut ~rho:50.0 ~cap:50.0 (Prng.create 8) ~eps:0.3
      ~beta:2.0 ~s:0 ~t:59 g
  in
  Alcotest.(check (float 1e-6)) "sparse = dense flow" dense r.Partial_mincut.value;
  Alcotest.(check bool) "certified" true r.Partial_mincut.stats.Partial_mincut.certified;
  Alcotest.(check int)
    "H = G edge count" (Digraph.m g)
    r.Partial_mincut.stats.Partial_mincut.m_sparse

let suite =
  [
    Alcotest.test_case "certified equals dense on planted" `Quick
      test_certified_equals_dense;
    Alcotest.test_case "forced fallback repairs exactly" `Quick
      test_forced_fallback_repairs;
    Alcotest.test_case "solver routing sound" `Quick test_solver_routing_sound;
    Alcotest.test_case "s-t identity certifies" `Quick test_st_identity_certifies;
  ]

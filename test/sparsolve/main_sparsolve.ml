let () =
  Alcotest.run "dcs-sparsolve"
    [ ("sampling", Test_psample.suite); ("solve", Test_psolve.suite) ]

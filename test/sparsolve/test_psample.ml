(* Connectivity-sampled sparsifiers: the p = min(1, rho/lambda-hat)
   contract in isolation — identity when the cap pins every probability
   at 1, byte-determinism across reruns and domain counts, and exact
   preservation of weak planted edges. *)

open Dcs

let ugraph seed ~n ~p ~max_weight =
  let rng = Prng.create seed in
  let g0 = Generators.erdos_renyi_connected rng ~n ~p in
  Generators.random_multigraph_weights rng g0 ~max_weight

(* cap <= rho pins p = rho/lambda-hat >= 1 everywhere: the sparsifier is
   the identity (binomial_keep at p = 1 keeps the exact weight). *)
let test_identity_when_cap_leq_rho () =
  let g = ugraph 7 ~n:40 ~p:0.3 ~max_weight:5 in
  let h, conn =
    Partial_mincut.sparsify ~rho:10.0 ~cap:10.0 (Prng.create 1) ~eps:0.5 g
  in
  Alcotest.(check bool) "identity" true (Ugraph.equal g h);
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        "lambda-hat <= cap" true
        (Connectivity.lambda_at conn i <= 10.0 +. 1e-9))
    (Connectivity.edges conn)

let test_sparsify_deterministic () =
  let g = ugraph 11 ~n:60 ~p:0.4 ~max_weight:6 in
  let h1, _ = Partial_mincut.sparsify ~rho:6.0 (Prng.create 42) ~eps:0.5 g in
  let h2, _ = Partial_mincut.sparsify ~rho:6.0 (Prng.create 42) ~eps:0.5 g in
  Alcotest.(check bool) "same sparsifier" true (Ugraph.equal h1 h2);
  Alcotest.(check bool) "strictly sparser" true (Ugraph.m h1 < Ugraph.m g)

(* Estimates — and therefore the sampled graph — are a pure function of
   graph content, independent of the worker-domain count. *)
let test_domain_count_identity () =
  let g = ugraph 13 ~n:60 ~p:0.4 ~max_weight:6 in
  let lambdas domains =
    let conn =
      Connectivity.estimate_ugraph ~domains ~flow_budget:16 ~cap:64.0 g
    in
    Array.mapi (fun i _ -> Connectivity.lambda_at conn i)
      (Connectivity.edges conn)
  in
  let l1 = lambdas 1 in
  List.iter
    (fun d ->
      Alcotest.(check (array (float 0.0))) "lambda across domains" l1 (lambdas d))
    [ 2; 4 ];
  let sparse domains =
    let conn =
      Connectivity.estimate_ugraph ~domains ~flow_budget:16 ~cap:64.0 g
    in
    fst
      (Partial_mincut.sparsify ~rho:6.0 ~connectivity:conn (Prng.create 5)
         ~eps:0.5 g)
  in
  Alcotest.(check bool) "H across domains" true (Ugraph.equal (sparse 1) (sparse 2))

(* Planted two-block instance: the k cross edges have true local
   connectivity k < rho, so lambda-hat <= k pins p = 1 and the planted
   cut survives sampling with its weight exact. *)
let test_planted_cut_kept_exactly () =
  let block = 30 and k = 3 in
  let g = Generators.planted_mincut (Prng.create 3) ~block ~k ~p_inner:0.5 in
  let h, conn =
    Partial_mincut.sparsify ~rho:8.0 ~cap:128.0 ~flow_budget:64
      (Prng.create 9) ~eps:0.5 g
  in
  let planted u = u < block in
  Alcotest.(check (float 1e-9))
    "planted cut exact in H" (float_of_int k) (Ugraph.cut_weight h planted);
  Connectivity.iter conn (fun u v _ lam ->
      if planted u <> planted v then
        Alcotest.(check bool)
          "cross lambda-hat <= k" true
          (lam <= float_of_int k +. 1e-9))

let test_rho_validation () =
  let g = ugraph 17 ~n:10 ~p:0.5 ~max_weight:3 in
  Alcotest.check_raises "rho = 0" (Invalid_argument "Partial_mincut: rho must be positive")
    (fun () -> ignore (Partial_mincut.sparsify ~rho:0.0 (Prng.create 1) ~eps:0.5 g));
  Alcotest.check_raises "eps out of range"
    (Invalid_argument "Partial_mincut: eps in (0,1)") (fun () ->
      ignore (Partial_mincut.rho_ugraph ~eps:1.5 ~n:10 ()))

let suite =
  [
    Alcotest.test_case "cap <= rho is the identity" `Quick
      test_identity_when_cap_leq_rho;
    Alcotest.test_case "sparsify is deterministic" `Quick
      test_sparsify_deterministic;
    Alcotest.test_case "identical across domain counts" `Quick
      test_domain_count_identity;
    Alcotest.test_case "planted cut kept exactly" `Quick
      test_planted_cut_kept_exactly;
    Alcotest.test_case "parameter validation" `Quick test_rho_validation;
  ]

open Dcs

let check_float = Alcotest.(check (float 1e-9))

let planted seed =
  let rng = Prng.create seed in
  Dcs_graph.Generators.planted_mincut rng ~block:40 ~k:5 ~p_inner:0.4

(* --- Partition --- *)

let test_partition_random_union_roundtrip () =
  let rng = Prng.create 1 in
  let g = planted 2 in
  let shards = Partition.random rng ~servers:4 g in
  Alcotest.(check int) "4 shards" 4 (Array.length shards);
  let merged = Partition.union (Ugraph.n g) shards in
  Alcotest.(check bool) "union restores graph" true (Ugraph.equal g merged)

let test_partition_hash_deterministic () =
  let g = planted 3 in
  let a = Partition.by_hash ~servers:3 g in
  let b = Partition.by_hash ~servers:3 g in
  Array.iteri
    (fun i shard -> Alcotest.(check bool) "same shard" true (Ugraph.equal shard b.(i)))
    a

let test_partition_edges_disjoint () =
  let rng = Prng.create 4 in
  let g = planted 5 in
  let shards = Partition.random rng ~servers:3 g in
  let total = Array.fold_left (fun acc s -> acc + Ugraph.m s) 0 shards in
  Alcotest.(check int) "edge counts add up" (Ugraph.m g) total;
  Ugraph.iter_edges g (fun u v _ ->
      let owners =
        Array.fold_left
          (fun acc s -> if Ugraph.mem_edge s u v then acc + 1 else acc)
          0 shards
      in
      Alcotest.(check int) "exactly one owner" 1 owners)

let test_partition_single_server () =
  let rng = Prng.create 6 in
  let g = planted 7 in
  let shards = Partition.random rng ~servers:1 g in
  Alcotest.(check bool) "identity" true (Ugraph.equal g shards.(0))

(* --- Coordinator --- *)

let test_coordinator_recovers_mincut () =
  let rng = Prng.create 8 in
  let g = planted 9 in
  let exact = Stoer_wagner.mincut_value g in
  let shards = Partition.random rng ~servers:4 g in
  let cfg = Coordinator.default_config ~eps:0.2 in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check bool) "estimate close to exact" true
    (Float.abs (r.Coordinator.estimate -. exact) <= (0.3 *. exact) +. 1e-9);
  (* The returned witness cut should be near-minimum on the true graph. *)
  let true_val = Ugraph.cut_value g r.Coordinator.cut in
  Alcotest.(check bool) "witness near-minimum" true (true_val <= 1.5 *. exact)

let test_coordinator_bits_accounting () =
  let rng = Prng.create 10 in
  let g = planted 11 in
  let shards = Partition.random rng ~servers:2 g in
  let cfg = Coordinator.default_config ~eps:0.25 in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check int) "total = forall + foreach"
    (r.Coordinator.forall_bits + r.Coordinator.foreach_bits)
    r.Coordinator.total_bits;
  Alcotest.(check bool) "positive" true (r.Coordinator.total_bits > 0);
  Alcotest.(check bool) "naive positive" true (r.Coordinator.naive_bits > 0)

let test_coordinator_candidates_nonempty () =
  let rng = Prng.create 12 in
  let g = planted 13 in
  let shards = Partition.random rng ~servers:3 g in
  let cfg = { (Coordinator.default_config ~eps:0.3) with Coordinator.karger_trials = 80 } in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check bool) "at least one candidate" true (r.Coordinator.candidates >= 1)

let test_coordinator_single_shard_matches () =
  (* One server holding everything: the pipeline reduces to sparsify+karger. *)
  let rng = Prng.create 14 in
  let g = planted 15 in
  let exact = Stoer_wagner.mincut_value g in
  let cfg = Coordinator.default_config ~eps:0.2 in
  let r = Coordinator.min_cut rng cfg [| g |] in
  Alcotest.(check bool) "close" true
    (Float.abs (r.Coordinator.estimate -. exact) <= (0.3 *. exact) +. 1e-9)

let test_coordinator_empty_shard_tolerated () =
  let rng = Prng.create 16 in
  let g = planted 17 in
  let shards = [| g; Ugraph.create (Ugraph.n g) |] in
  let cfg = Coordinator.default_config ~eps:0.25 in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check bool) "still works" true (r.Coordinator.estimate > 0.0)

let test_coordinator_weighted_graph () =
  let rng = Prng.create 18 in
  let base = Dcs_graph.Generators.complete ~n:30 in
  let g = Dcs_graph.Generators.random_multigraph_weights rng base ~max_weight:10 in
  let exact = Stoer_wagner.mincut_value g in
  let shards = Partition.random rng ~servers:3 g in
  let cfg = Coordinator.default_config ~eps:0.2 in
  let r = Coordinator.min_cut rng cfg shards in
  Alcotest.(check bool) "weighted close" true
    (Float.abs (r.Coordinator.estimate -. exact) <= (0.35 *. exact) +. 1e-9)

(* --- Config validation --- *)

let test_coordinator_validate () =
  let cfg = Coordinator.default_config ~eps:0.3 in
  Coordinator.validate cfg;
  let raises msg bad =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        Coordinator.validate bad)
  in
  raises "Coordinator: eps must be in (0, 1)" { cfg with Coordinator.eps = 0.0 };
  raises "Coordinator: eps must be in (0, 1)" { cfg with Coordinator.eps = 1.0 };
  raises "Coordinator: eps_coarse must be positive"
    { cfg with Coordinator.eps_coarse = 0.0 };
  raises "Coordinator: karger_trials must be >= 1"
    { cfg with Coordinator.karger_trials = 0 };
  raises "Coordinator: candidate_factor must be >= 1.0"
    { cfg with Coordinator.candidate_factor = 0.9 };
  (* Both entry points validate before doing any work. *)
  let g = planted 30 in
  let shards = Partition.random (Prng.create 31) ~servers:2 g in
  Alcotest.check_raises "min_cut validates"
    (Invalid_argument "Coordinator: karger_trials must be >= 1") (fun () ->
      ignore
        (Coordinator.min_cut (Prng.create 32)
           { cfg with Coordinator.karger_trials = -3 }
           shards))

(* --- Fault-tolerant pipeline --- *)

let test_robust_disabled_matches_min_cut () =
  (* Same seed, fault injection disabled: the robust pipeline must be
     bit-identical to the idealized one — estimates AND metered bits. *)
  let g = planted 33 in
  let shards = Partition.random (Prng.create 34) ~servers:3 g in
  let cfg = Coordinator.default_config ~eps:0.3 in
  let plain = Coordinator.min_cut (Prng.create 35) cfg shards in
  let robust = Coordinator.min_cut_robust (Prng.create 35) cfg ~fault:Fault.disabled shards in
  Alcotest.(check bool) "base result identical" true (plain = robust.Coordinator.base);
  let rep = robust.Coordinator.report in
  Alcotest.(check int) "no retransmissions" 0 rep.Coordinator.retransmissions;
  Alcotest.(check int) "no retransmit bits" 0 rep.Coordinator.retransmit_bits;
  Alcotest.(check bool) "not degraded" false rep.Coordinator.degraded;
  Alcotest.(check (float 1e-9)) "eps unchanged" cfg.Coordinator.eps
    rep.Coordinator.eps_effective

let test_robust_recovers_under_drops () =
  (* Moderate loss: retransmission should recover every sketch and the
     estimate should stay close — robustness pays bits, not accuracy. *)
  let g = planted 36 in
  let exact = Stoer_wagner.mincut_value g in
  let rng = Prng.create 37 in
  let shards = Partition.random rng ~servers:3 g in
  let cfg = Coordinator.default_config ~eps:0.3 in
  let fault = Fault.create (Fault.policy ~drop:0.2 ~corrupt:0.1 ()) rng in
  let r = Coordinator.min_cut_robust rng cfg ~fault shards in
  let rep = r.Coordinator.report in
  Alcotest.(check bool) "faults were injected" true
    (rep.Coordinator.drops_seen + rep.Coordinator.corruptions_detected > 0);
  Alcotest.(check bool) "recovered by retransmission" true
    (rep.Coordinator.retransmissions > 0);
  Alcotest.(check int) "nothing lost" 0
    (rep.Coordinator.coarse_lost + rep.Coordinator.fine_lost);
  Alcotest.(check bool) "retransmit bits metered" true
    (rep.Coordinator.retransmit_bits > 0);
  Alcotest.(check bool) "estimate still close" true
    (Float.abs (r.Coordinator.base.Coordinator.estimate -. exact)
     <= (0.5 *. exact) +. 1e-9)

let test_robust_degrades_past_budget () =
  (* retry_budget 0 under heavy loss: some sketches are abandoned and the
     coordinator degrades instead of failing, widening its error bound. *)
  let g = planted 38 in
  let rng = Prng.create 39 in
  let shards = Partition.random rng ~servers:4 g in
  let cfg = Coordinator.default_config ~eps:0.3 in
  let fault = Fault.create (Fault.policy ~drop:0.6 ()) rng in
  let r = Coordinator.min_cut_robust ~retry_budget:0 rng cfg ~fault shards in
  let rep = r.Coordinator.report in
  Alcotest.(check bool) "sketches lost" true
    (rep.Coordinator.coarse_lost + rep.Coordinator.fine_lost > 0);
  Alcotest.(check bool) "degraded flagged" true rep.Coordinator.degraded;
  Alcotest.(check bool) "no retries allowed" true (rep.Coordinator.retransmissions = 0);
  if rep.Coordinator.fine_lost > 0 then
    Alcotest.(check bool) "error bound widened" true
      (rep.Coordinator.eps_effective > cfg.Coordinator.eps);
  Alcotest.(check bool) "still produced an estimate" true
    (r.Coordinator.base.Coordinator.estimate > 0.0)

let test_robust_stragglers_never_lose_data () =
  (* Timeout-only faults: every straggling sketch triggers a speculative
     re-request but its late copy is kept as a fallback, so nothing is
     lost, nothing degrades, and the estimate is bit-identical to a clean
     run with the same pipeline stream. *)
  let g = planted 40 in
  let shards = Partition.random (Prng.create 41) ~servers:3 g in
  let cfg = Coordinator.default_config ~eps:0.3 in
  let run fault = Coordinator.min_cut_robust (Prng.create 42) cfg ~fault shards in
  let clean = run (Fault.create Fault.no_faults (Prng.create 43)) in
  let r = run (Fault.create (Fault.policy ~timeout:0.5 ()) (Prng.create 43)) in
  let rep = r.Coordinator.report in
  Alcotest.(check bool) "stragglers observed" true (rep.Coordinator.stragglers > 0);
  Alcotest.(check bool) "speculative re-requests fired" true
    (rep.Coordinator.speculative_retransmissions > 0);
  Alcotest.(check bool) "speculation pays retransmit bits" true
    (rep.Coordinator.retransmit_bits > 0);
  Alcotest.(check int) "nothing lost" 0
    (rep.Coordinator.coarse_lost + rep.Coordinator.fine_lost);
  Alcotest.(check bool) "not degraded" false rep.Coordinator.degraded;
  Alcotest.(check bool) "base result bit-identical to clean run" true
    (r.Coordinator.base = clean.Coordinator.base)

let test_robust_all_stragglers_fall_back_to_late_copy () =
  (* timeout = 1: every delivery of every attempt overruns the deadline,
     so the retry budget runs dry and the coordinator falls back to the
     late copies — the pipeline still completes, undegraded. *)
  let g = planted 44 in
  let shards = Partition.random (Prng.create 45) ~servers:3 g in
  let cfg = Coordinator.default_config ~eps:0.3 in
  let run fault = Coordinator.min_cut_robust (Prng.create 46) cfg ~fault shards in
  let clean = run (Fault.create Fault.no_faults (Prng.create 47)) in
  let r = run (Fault.create (Fault.policy ~timeout:1.0 ()) (Prng.create 47)) in
  let rep = r.Coordinator.report in
  (* 3 coarse + 3 fine sketches, each straggling on all (budget+1 = 5)
     attempts; the speculative re-requests stop at the budget. *)
  Alcotest.(check int) "every attempt straggled" 30 rep.Coordinator.stragglers;
  Alcotest.(check int) "speculation bounded by budget" 24
    rep.Coordinator.speculative_retransmissions;
  Alcotest.(check int) "late copies save every sketch" 0
    (rep.Coordinator.coarse_lost + rep.Coordinator.fine_lost);
  Alcotest.(check bool) "not degraded" false rep.Coordinator.degraded;
  Alcotest.(check bool) "estimate unchanged" true
    (r.Coordinator.base = clean.Coordinator.base)

let test_robust_drop_only_reports_no_stragglers () =
  (* Drop faults must not leak into the straggler counters: the two
     recovery paths are metered separately. *)
  let g = planted 48 in
  let shards = Partition.random (Prng.create 49) ~servers:3 g in
  let cfg = Coordinator.default_config ~eps:0.3 in
  let fault = Fault.create (Fault.policy ~drop:0.3 ()) (Prng.create 50) in
  let r = Coordinator.min_cut_robust (Prng.create 51) cfg ~fault shards in
  let rep = r.Coordinator.report in
  Alcotest.(check bool) "drops actually recovered" true
    (rep.Coordinator.retransmissions > 0);
  Alcotest.(check int) "no stragglers counted" 0 rep.Coordinator.stragglers;
  Alcotest.(check int) "no speculative re-requests" 0
    rep.Coordinator.speculative_retransmissions

(* qcheck: the refined estimate never undercuts the true minimum cut by
   more than the sketch error (the candidate is a real cut, whose true
   value is >= mincut; the for-each estimate is within ~eps of it). *)
let prop_estimate_lower_bounded =
  QCheck.Test.make ~name:"distributed estimate >= (1-2eps)·mincut" ~count:8
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = planted (seed + 1000) in
      let exact = Stoer_wagner.mincut_value g in
      let shards = Partition.random rng ~servers:3 g in
      let cfg = Coordinator.default_config ~eps:0.2 in
      let r = Coordinator.min_cut rng cfg shards in
      r.Coordinator.estimate >= (1.0 -. 0.4) *. exact)

let suite =
  [
    Alcotest.test_case "partition: random roundtrip" `Quick test_partition_random_union_roundtrip;
    Alcotest.test_case "partition: hash deterministic" `Quick test_partition_hash_deterministic;
    Alcotest.test_case "partition: edges disjoint" `Quick test_partition_edges_disjoint;
    Alcotest.test_case "partition: single server" `Quick test_partition_single_server;
    Alcotest.test_case "coordinator: recovers mincut" `Quick test_coordinator_recovers_mincut;
    Alcotest.test_case "coordinator: bits accounting" `Quick test_coordinator_bits_accounting;
    Alcotest.test_case "coordinator: candidates" `Quick test_coordinator_candidates_nonempty;
    Alcotest.test_case "coordinator: single shard" `Quick test_coordinator_single_shard_matches;
    Alcotest.test_case "coordinator: empty shard" `Quick test_coordinator_empty_shard_tolerated;
    Alcotest.test_case "coordinator: weighted" `Quick test_coordinator_weighted_graph;
    Alcotest.test_case "coordinator: validates config" `Quick test_coordinator_validate;
    Alcotest.test_case "robust: disabled = min_cut" `Quick test_robust_disabled_matches_min_cut;
    Alcotest.test_case "robust: recovers under drops" `Quick test_robust_recovers_under_drops;
    Alcotest.test_case "robust: degrades past budget" `Quick test_robust_degrades_past_budget;
    Alcotest.test_case "robust: stragglers never lose data" `Quick test_robust_stragglers_never_lose_data;
    Alcotest.test_case "robust: all-straggler late-copy fallback" `Quick test_robust_all_stragglers_fall_back_to_late_copy;
    Alcotest.test_case "robust: drop-only leaves straggler meters zero" `Quick test_robust_drop_only_reports_no_stragglers;
    QCheck_alcotest.to_alcotest prop_estimate_lower_bounded;
  ]

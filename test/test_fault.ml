open Dcs

(* --- Checksum --- *)

let test_crc32_check_value () =
  (* The standard CRC-32 check value (reflected, poly 0xEDB88320). *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Checksum.crc32 "123456789");
  Alcotest.(check int) "empty" 0 (Checksum.crc32 "");
  Alcotest.(check int) "32 bits" 32 Checksum.bits

let test_frame_roundtrip () =
  let payload = "hello, lossy world\nwith a second line" in
  match Serialize.unframe (Serialize.frame payload) with
  | Ok p -> Alcotest.(check string) "payload back" payload p
  | Error e -> Alcotest.failf "unframe rejected a clean frame: %s" e

let test_frame_rejects_garbage () =
  let bad s =
    match Serialize.unframe s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "no header newline";
  bad "DCS0 5 00000000\nhello";
  bad "DCS1 5\nhello";
  bad "DCS1 x 00000000\nhello";
  bad "DCS1 4 00000000\nhello";
  (* right length, wrong crc *)
  bad "DCS1 5 00000000\nhello"

(* --- Fault --- *)

let test_fault_policy_validates () =
  Alcotest.check_raises "rate > 1"
    (Invalid_argument "Fault.policy: drop rate must be in [0, 1]") (fun () ->
      ignore (Fault.policy ~drop:1.5 ()));
  Alcotest.check_raises "rate < 0"
    (Invalid_argument "Fault.policy: lie rate must be in [0, 1]") (fun () ->
      ignore (Fault.policy ~lie:(-0.1) ()))

let test_fault_disabled_inert () =
  let f = Fault.disabled in
  Alcotest.(check bool) "not active" false (Fault.active f);
  for _ = 1 to 100 do
    Alcotest.(check bool) "never drops" false (Fault.drops_message f);
    Alcotest.(check bool) "never corrupts" false (Fault.corrupts_message f);
    Alcotest.(check bool) "never times out" false (Fault.times_out f);
    Alcotest.(check bool) "never lies" false (Fault.lies f)
  done;
  Alcotest.(check int) "nothing injected" 0 (Fault.total_injected f)

let test_fault_rate_one_always_fires () =
  let rng = Prng.create 1 in
  let f = Fault.create (Fault.policy ~drop:1.0 ~timeout:1.0 ()) rng in
  Alcotest.(check bool) "active" true (Fault.active f);
  for _ = 1 to 20 do
    Alcotest.(check bool) "drops" true (Fault.drops_message f);
    Alcotest.(check bool) "times out" true (Fault.times_out f);
    Alcotest.(check bool) "never corrupts" false (Fault.corrupts_message f)
  done;
  let c = Fault.counts f in
  Alcotest.(check int) "20 drops" 20 c.Fault.drops;
  Alcotest.(check int) "20 timeouts" 20 c.Fault.timeouts;
  Alcotest.(check int) "0 corruptions" 0 c.Fault.corruptions;
  Alcotest.(check int) "total" 40 (Fault.total_injected f)

let test_fault_split_deterministic () =
  let events f = Array.init 200 (fun _ -> Fault.drops_message f) in
  let mk seed =
    Fault.create (Fault.policy ~drop:0.3 ()) (Prng.create seed)
  in
  let a = events (Fault.split (mk 7) 4) in
  let b = events (Fault.split (mk 7) 4) in
  Alcotest.(check bool) "same index, same events" true (a = b);
  let c = events (Fault.split (mk 7) 5) in
  Alcotest.(check bool) "different index, different events" true (a <> c)

let test_fault_intermediate_rate_counts () =
  let rng = Prng.create 2 in
  let f = Fault.create (Fault.policy ~corrupt:0.5 ()) rng in
  let fired = ref 0 in
  for _ = 1 to 1000 do
    if Fault.corrupts_message f then incr fired
  done;
  Alcotest.(check int) "counter matches observations" !fired
    (Fault.counts f).Fault.corruptions;
  Alcotest.(check bool) "roughly half" true (!fired > 400 && !fired < 600)

(* --- Retry --- *)

let test_retry_first_try () =
  let out = Retry.with_budget ~budget:5 (fun ~attempt:_ -> Some 42) in
  Alcotest.(check (option int)) "value" (Some 42) out.Retry.value;
  Alcotest.(check int) "one attempt" 1 out.Retry.attempts;
  Alcotest.(check int) "no backoff" 0 out.Retry.backoff_units

let test_retry_backoff_arithmetic () =
  (* Succeeds on the 4th call (attempt 3): failed attempts 0,1,2 were each
     retried, so backoff = 2^0 + 2^1 + 2^2 = 7. *)
  let out =
    Retry.with_budget ~budget:8 (fun ~attempt ->
        if attempt >= 3 then Some attempt else None)
  in
  Alcotest.(check (option int)) "value" (Some 3) out.Retry.value;
  Alcotest.(check int) "attempts" 4 out.Retry.attempts;
  Alcotest.(check int) "backoff 7" 7 out.Retry.backoff_units

let test_retry_exhausts_budget () =
  let calls = ref 0 in
  let out =
    Retry.with_budget ~budget:4 (fun ~attempt:_ ->
        incr calls;
        None)
  in
  Alcotest.(check (option int)) "no value" None out.Retry.value;
  Alcotest.(check int) "budget calls" 4 !calls;
  Alcotest.(check int) "attempts = budget" 4 out.Retry.attempts;
  (* The last failure is final, not retried: 2^0 + 2^1 + 2^2. *)
  Alcotest.(check int) "backoff" 7 out.Retry.backoff_units;
  Alcotest.check_raises "budget >= 1"
    (Invalid_argument "Retry.with_budget: budget must be >= 1") (fun () ->
      ignore (Retry.with_budget ~budget:0 (fun ~attempt:_ -> Some ())))

let test_jittered_wait_bounds () =
  let rng = Prng.create 11 in
  (* attempt 0 waits in [1, base]; the exponential clamps at cap. *)
  for attempt = 0 to 12 do
    let w = Retry.jittered_wait ~rng ~base:2 ~cap:10 ~attempt in
    let hi = min 10 (2 * (1 lsl attempt)) in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d wait %d in [1, %d]" attempt w hi)
      true
      (w >= 1 && w <= hi)
  done;
  (* rng is not advanced: the same stream position replays the schedule. *)
  let a = Retry.jittered_wait ~rng ~base:1 ~cap:64 ~attempt:5 in
  let b = Retry.jittered_wait ~rng ~base:1 ~cap:64 ~attempt:5 in
  Alcotest.(check int) "pure per (stream, attempt)" a b

let test_jittered_backoff_schedule () =
  let rng = Prng.create 12 in
  (* Success on the first call: no waits at all. *)
  let out = Retry.with_jittered_backoff ~budget:5 ~rng (fun ~attempt:_ -> Some 1) in
  Alcotest.(check int) "no backoff" 0 out.Retry.backoff_units;
  (* All failures: exactly the sum of the per-attempt jittered waits for
     the retried attempts (the final failure is not retried). *)
  let out = Retry.with_jittered_backoff ~budget:4 ~base:2 ~cap:8 ~rng (fun ~attempt:_ -> None) in
  let expected = ref 0 in
  for a = 0 to 2 do
    expected := !expected + Retry.jittered_wait ~rng ~base:2 ~cap:8 ~attempt:a
  done;
  Alcotest.(check (option unit)) "no value" None out.Retry.value;
  Alcotest.(check int) "attempts = budget" 4 out.Retry.attempts;
  Alcotest.(check int) "backoff = replayed waits" !expected out.Retry.backoff_units;
  Alcotest.check_raises "budget >= 1"
    (Invalid_argument "Retry.with_jittered_backoff: budget must be >= 1")
    (fun () ->
      ignore
        (Retry.with_jittered_backoff ~budget:0 ~rng (fun ~attempt:_ -> Some ())))

let test_majority_recovers_truth () =
  (* 2 honest votes out of 3 beat one lie. *)
  let votes = [| Some 9; Some 4; Some 9 |] in
  (match Retry.majority ~k:3 (fun i -> votes.(i)) with
  | Some (v, c) ->
      Alcotest.(check int) "winner" 9 v;
      Alcotest.(check int) "votes" 2 c
  | None -> Alcotest.fail "majority abstained");
  (* Abstentions don't vote; a lone answer among Nones wins. *)
  (match Retry.majority ~k:3 (fun i -> if i = 1 then Some 5 else None) with
  | Some (v, c) ->
      Alcotest.(check int) "lone answer" 5 v;
      Alcotest.(check int) "one vote" 1 c
  | None -> Alcotest.fail "lone answer lost");
  Alcotest.(check bool) "all abstain" true
    (Retry.majority ~k:4 (fun _ -> None) = None)

let test_majority_tie_first_seen () =
  let votes = [| Some 1; Some 2; Some 2; Some 1 |] in
  match Retry.majority ~k:4 (fun i -> votes.(i)) with
  | Some (v, _) -> Alcotest.(check int) "first-seen wins" 1 v
  | None -> Alcotest.fail "tie abstained"

(* --- Lossy channel --- *)

let test_lossy_no_faults_transparent () =
  let l = Channel.create_lossy Fault.disabled in
  for i = 1 to 10 do
    match Channel.transmit l ~bits:100 "payload" with
    | Channel.Received p ->
        Alcotest.(check string) "verbatim" "payload" p;
        Alcotest.(check int) "first-send metered" (100 * i)
          (Channel.first_send_bits l)
    | Channel.Dropped -> Alcotest.fail "dropped without faults"
  done;
  Alcotest.(check int) "no retransmissions" 0 (Channel.retransmit_bits l);
  Alcotest.(check int) "all delivered" 10 (Channel.deliveries l)

let test_lossy_drop_rate_one () =
  let rng = Prng.create 3 in
  let l = Channel.create_lossy (Fault.create (Fault.policy ~drop:1.0 ()) rng) in
  for _ = 1 to 5 do
    Alcotest.(check bool) "dropped" true
      (Channel.transmit l ~bits:64 "x" = Channel.Dropped)
  done;
  Alcotest.(check int) "drops counted" 5 (Channel.lossy_drops l);
  Alcotest.(check int) "bits still paid" (5 * 64) (Channel.first_send_bits l);
  Alcotest.(check int) "nothing delivered" 0 (Channel.deliveries l)

let test_lossy_corrupt_flips_one_bit () =
  let rng = Prng.create 4 in
  let l =
    Channel.create_lossy (Fault.create (Fault.policy ~corrupt:1.0 ()) rng)
  in
  let payload = "abcdefgh" in
  (match Channel.transmit l ~bits:64 payload with
  | Channel.Received p ->
      Alcotest.(check bool) "differs" true (p <> payload);
      Alcotest.(check int) "same length" (String.length payload) (String.length p);
      let flipped = ref 0 in
      String.iteri
        (fun i c ->
          let x = Char.code c lxor Char.code payload.[i] in
          let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
          flipped := !flipped + popcount x)
        p;
      Alcotest.(check int) "exactly one bit" 1 !flipped
  | Channel.Dropped -> Alcotest.fail "corruption is not a drop");
  (* An empty payload has nothing to flip. *)
  (match Channel.transmit l ~bits:0 "" with
  | Channel.Received p -> Alcotest.(check string) "empty survives" "" p
  | Channel.Dropped -> Alcotest.fail "empty payload dropped");
  Alcotest.(check int) "one corruption" 1 (Channel.lossy_corruptions l)

let test_lossy_retransmission_metered_separately () =
  let l = Channel.create_lossy Fault.disabled in
  ignore (Channel.transmit l ~bits:100 "a");
  ignore (Channel.transmit l ~retransmission:true ~bits:100 "a");
  ignore (Channel.transmit l ~retransmission:true ~bits:100 "a");
  Alcotest.(check int) "first-send" 100 (Channel.first_send_bits l);
  Alcotest.(check int) "retransmit" 200 (Channel.retransmit_bits l)

(* --- transmit_reliable: the bounded retransmission loop --- *)

let gave_up_counter () = Obs.Metrics.counter "channel.gave_up"

let test_reliable_clean_first_try () =
  let before = Obs.Metrics.counter_value (gave_up_counter ()) in
  let l = Channel.create_lossy Fault.disabled in
  (match Channel.transmit_reliable l ~max_retransmissions:3 ~bits:80 "frame" with
  | Ok p -> Alcotest.(check string) "delivered verbatim" "frame" p
  | Error _ -> Alcotest.fail "gave up without faults");
  Alcotest.(check int) "one send" 80 (Channel.first_send_bits l);
  Alcotest.(check int) "no retransmissions" 0 (Channel.retransmit_bits l);
  Alcotest.(check int) "gave_up not bumped" before
    (Obs.Metrics.counter_value (gave_up_counter ()))

let test_reliable_gives_up_typed () =
  let before = Obs.Metrics.counter_value (gave_up_counter ()) in
  let rng = Prng.create 21 in
  let l = Channel.create_lossy (Fault.create (Fault.policy ~drop:1.0 ()) rng) in
  (match Channel.transmit_reliable l ~max_retransmissions:3 ~bits:64 "x" with
  | Ok _ -> Alcotest.fail "delivered through a dead link"
  | Error gu ->
      Alcotest.(check int) "first send + 3 re-sends" 4 gu.Channel.transmissions;
      Alcotest.(check int) "all dropped" 4 gu.Channel.gu_drops;
      Alcotest.(check int) "none corrupted" 0 gu.Channel.gu_corruptions);
  Alcotest.(check int) "first-send metered once" 64 (Channel.first_send_bits l);
  Alcotest.(check int) "re-sends metered" (3 * 64) (Channel.retransmit_bits l);
  Alcotest.(check int) "channel.gave_up bumped once" (before + 1)
    (Obs.Metrics.counter_value (gave_up_counter ()));
  Alcotest.check_raises "bound must be nonnegative"
    (Invalid_argument
       "Channel.transmit_reliable: max_retransmissions must be >= 0") (fun () ->
      ignore (Channel.transmit_reliable l ~max_retransmissions:(-1) ~bits:1 "x"))

let test_reliable_verify_rejects_corruption () =
  let rng = Prng.create 22 in
  let l =
    Channel.create_lossy (Fault.create (Fault.policy ~corrupt:1.0 ()) rng)
  in
  let framed = Checksum.frame "payload" in
  (* Every delivery is corrupted and the CRC check refuses each one. *)
  (match
     Channel.transmit_reliable l
       ~verify:(fun s -> Result.is_ok (Checksum.unframe s))
       ~max_retransmissions:2
       ~bits:(8 * String.length framed)
       framed
   with
  | Ok _ -> Alcotest.fail "verify accepted a corrupted frame"
  | Error gu ->
      Alcotest.(check int) "transmissions" 3 gu.Channel.transmissions;
      Alcotest.(check int) "all failed verify" 3 gu.Channel.gu_corruptions);
  (* Without verify, a corrupted delivery is accepted as-is. *)
  match Channel.transmit_reliable l ~max_retransmissions:2 ~bits:8 "abc" with
  | Ok p -> Alcotest.(check bool) "corrupted accepted" true (p <> "abc")
  | Error _ -> Alcotest.fail "unverified delivery refused"

let test_reliable_max_zero_single_shot () =
  let rng = Prng.create 23 in
  (* drop 0.5: with zero retransmissions each call is a single coin flip. *)
  let l = Channel.create_lossy (Fault.create (Fault.policy ~drop:0.5 ()) rng) in
  let oks = ref 0 and give_ups = ref 0 in
  for _ = 1 to 200 do
    match Channel.transmit_reliable l ~max_retransmissions:0 ~bits:8 "b" with
    | Ok _ -> incr oks
    | Error gu ->
        Alcotest.(check int) "single transmission" 1 gu.Channel.transmissions;
        incr give_ups
  done;
  Alcotest.(check int) "every call resolved" 200 (!oks + !give_ups);
  Alcotest.(check int) "no retransmit bits" 0 (Channel.retransmit_bits l);
  Alcotest.(check bool) "both outcomes occur" true (!oks > 0 && !give_ups > 0)

(* --- qcheck properties (ISSUE satellite: single-bit detection, budget) --- *)

let flip_bit s i =
  let b = Bytes.of_string s in
  let byte = i / 8 and bit = i mod 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  Bytes.to_string b

(* CRC-32 detects every single-bit flip anywhere in a framed graph
   encoding — a header flip breaks the parse or the recorded length/crc,
   a body flip breaks the checksum. *)
let prop_frame_detects_every_single_bit_flip =
  QCheck.Test.make ~name:"frame detects every single-bit flip (ugraph + digraph)"
    ~count:12
    QCheck.(pair (int_range 2 7) small_nat)
    (fun (n, seed) ->
      let rng = Prng.create (seed + 1) in
      let g = Generators.erdos_renyi_connected rng ~n ~p:0.5 in
      let dg = Generators.random_digraph rng ~n ~p:0.5 ~max_weight:4.0 in
      let check_frame frame decode_ok =
        let bits = 8 * String.length frame in
        decode_ok frame
        &&
        let ok = ref true in
        for i = 0 to bits - 1 do
          if decode_ok (flip_bit frame i) then ok := false
        done;
        !ok
      in
      check_frame
        (Serialize.ugraph_to_frame g)
        (fun s ->
          match Serialize.ugraph_of_frame s with
          | Ok g' -> Ugraph.equal g g'
          | Error _ -> false)
      && check_frame
           (Serialize.digraph_to_frame dg)
           (fun s ->
             match Serialize.digraph_of_frame s with
             | Ok d' -> Digraph.equal dg d'
             | Error _ -> false))

(* Retry never exceeds its budget, whatever the failure pattern. *)
let prop_retry_within_budget =
  QCheck.Test.make ~name:"retry attempts never exceed the budget" ~count:200
    QCheck.(pair (int_range 1 10) (int_range 0 15))
    (fun (budget, first_success) ->
      let calls = ref 0 in
      let out =
        Retry.with_budget ~budget (fun ~attempt ->
            incr calls;
            if attempt >= first_success then Some attempt else None)
      in
      !calls <= budget
      && out.Retry.attempts = !calls
      && (out.Retry.value <> None) = (first_success < budget))

(* Jittered backoff: same budget guarantee, plus the wait-sum cap. *)
let prop_jittered_backoff_within_budgets =
  QCheck.Test.make
    ~name:"jittered backoff never exceeds attempt or backoff budgets"
    ~count:200
    QCheck.(
      quad (int_range 1 8) (int_range 0 12) (int_range 1 4) (int_range 1 32))
    (fun (budget, first_success, base, cap) ->
      let rng = Prng.create (budget + (31 * first_success) + (977 * cap)) in
      let calls = ref 0 in
      let out =
        Retry.with_jittered_backoff ~budget ~base ~cap ~rng (fun ~attempt ->
            incr calls;
            if attempt >= first_success then Some attempt else None)
      in
      !calls <= budget
      && out.Retry.attempts = !calls
      && (out.Retry.value <> None) = (first_success < budget)
      && out.Retry.backoff_units >= 0
      && out.Retry.backoff_units <= (budget - 1) * cap)

(* Bounded reliable delivery: bounded sends, and every loss accounted. *)
let prop_transmit_reliable_bounded =
  QCheck.Test.make
    ~name:"transmit_reliable sends at most 1 + max_retransmissions"
    ~count:200
    QCheck.(
      quad (int_range 0 5) (float_range 0.0 1.0) (float_range 0.0 1.0)
        (int_range 0 1_000_000))
    (fun (max_retransmissions, drop, corrupt, seed) ->
      let rng = Prng.create seed in
      let l =
        Channel.create_lossy (Fault.create (Fault.policy ~drop ~corrupt ()) rng)
      in
      let framed = Checksum.frame "prop payload" in
      match
        Channel.transmit_reliable l
          ~verify:(fun s -> Result.is_ok (Checksum.unframe s))
          ~max_retransmissions
          ~bits:(8 * String.length framed)
          framed
      with
      | Ok p -> Result.is_ok (Checksum.unframe p)
      | Error gu ->
          gu.Channel.transmissions = max_retransmissions + 1
          && gu.Channel.gu_drops + gu.Channel.gu_corruptions
             = gu.Channel.transmissions)

let suite =
  [
    Alcotest.test_case "checksum: crc32 check value" `Quick test_crc32_check_value;
    Alcotest.test_case "frame: roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame: rejects garbage" `Quick test_frame_rejects_garbage;
    Alcotest.test_case "fault: policy validates" `Quick test_fault_policy_validates;
    Alcotest.test_case "fault: disabled is inert" `Quick test_fault_disabled_inert;
    Alcotest.test_case "fault: rate 1 always fires" `Quick test_fault_rate_one_always_fires;
    Alcotest.test_case "fault: split deterministic" `Quick test_fault_split_deterministic;
    Alcotest.test_case "fault: counters match events" `Quick test_fault_intermediate_rate_counts;
    Alcotest.test_case "retry: first try" `Quick test_retry_first_try;
    Alcotest.test_case "retry: backoff arithmetic" `Quick test_retry_backoff_arithmetic;
    Alcotest.test_case "retry: exhausts budget" `Quick test_retry_exhausts_budget;
    Alcotest.test_case "retry: jittered wait bounds" `Quick test_jittered_wait_bounds;
    Alcotest.test_case "retry: jittered backoff schedule" `Quick test_jittered_backoff_schedule;
    Alcotest.test_case "majority: recovers truth" `Quick test_majority_recovers_truth;
    Alcotest.test_case "majority: tie first-seen" `Quick test_majority_tie_first_seen;
    Alcotest.test_case "lossy: no faults transparent" `Quick test_lossy_no_faults_transparent;
    Alcotest.test_case "lossy: drop rate 1" `Quick test_lossy_drop_rate_one;
    Alcotest.test_case "lossy: corrupt flips one bit" `Quick test_lossy_corrupt_flips_one_bit;
    Alcotest.test_case "lossy: retransmission metered" `Quick test_lossy_retransmission_metered_separately;
    Alcotest.test_case "reliable: clean first try" `Quick test_reliable_clean_first_try;
    Alcotest.test_case "reliable: typed give-up" `Quick test_reliable_gives_up_typed;
    Alcotest.test_case "reliable: verify rejects corruption" `Quick test_reliable_verify_rejects_corruption;
    Alcotest.test_case "reliable: zero bound single shot" `Quick test_reliable_max_zero_single_shot;
    QCheck_alcotest.to_alcotest prop_frame_detects_every_single_bit_flip;
    QCheck_alcotest.to_alcotest prop_retry_within_budget;
    QCheck_alcotest.to_alcotest prop_jittered_backoff_within_budgets;
    QCheck_alcotest.to_alcotest prop_transmit_reliable_bounded;
  ]

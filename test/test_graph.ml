open Dcs

let check_float = Alcotest.(check (float 1e-9))

(* --- Digraph --- *)

let test_digraph_basic () =
  let g = Digraph.create 4 in
  Alcotest.(check int) "n" 4 (Digraph.n g);
  Alcotest.(check int) "m empty" 0 (Digraph.m g);
  Digraph.add_edge g 0 1 2.0;
  Digraph.add_edge g 0 1 3.0;
  Alcotest.(check int) "m merged" 1 (Digraph.m g);
  check_float "accumulated" 5.0 (Digraph.weight g 0 1);
  check_float "absent" 0.0 (Digraph.weight g 1 0)

let test_digraph_set_remove () =
  let g = Digraph.create 3 in
  Digraph.set_edge g 0 1 2.0;
  Digraph.set_edge g 0 1 0.0;
  Alcotest.(check int) "removed" 0 (Digraph.m g);
  Alcotest.(check bool) "mem" false (Digraph.mem_edge g 0 1)

let test_digraph_rejects () =
  let g = Digraph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.set_edge: self-loop")
    (fun () -> Digraph.add_edge g 1 1 1.0);
  Alcotest.check_raises "negative" (Invalid_argument "Digraph.add_edge: negative weight")
    (fun () -> Digraph.add_edge g 0 1 (-1.0))

let test_digraph_degrees () =
  let g = Digraph.of_edges 4 [ (0, 1, 1.0); (0, 2, 2.0); (3, 0, 4.0) ] in
  Alcotest.(check int) "out deg" 2 (Digraph.out_degree g 0);
  Alcotest.(check int) "in deg" 1 (Digraph.in_degree g 0);
  check_float "out weight" 3.0 (Digraph.out_weight g 0);
  check_float "in weight" 4.0 (Digraph.in_weight g 0)

let test_digraph_reverse () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 2.0) ] in
  let r = Digraph.reverse g in
  check_float "reversed edge" 1.0 (Digraph.weight r 1 0);
  check_float "reversed edge 2" 2.0 (Digraph.weight r 2 1);
  Alcotest.(check bool) "double reverse" true (Digraph.equal g (Digraph.reverse r))

let test_digraph_copy_independent () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.0) ] in
  let h = Digraph.copy g in
  Digraph.add_edge h 1 2 1.0;
  Alcotest.(check int) "original unchanged" 1 (Digraph.m g);
  Alcotest.(check int) "copy changed" 2 (Digraph.m h)

let test_digraph_cut_weight () =
  (* 0 -> 1 (3), 1 -> 0 (1), 0 -> 2 (5), 2 -> 1 (7) *)
  let g = Digraph.of_edges 3 [ (0, 1, 3.0); (1, 0, 1.0); (0, 2, 5.0); (2, 1, 7.0) ] in
  let mem v = v = 0 in
  check_float "w(S, V-S)" 8.0 (Digraph.cut_weight g mem);
  check_float "w(V-S, S)" 1.0 (Digraph.cut_weight_into g mem)

let test_digraph_total_weight () =
  let g = Digraph.of_edges 3 [ (0, 1, 3.0); (1, 2, 4.0) ] in
  check_float "total" 7.0 (Digraph.total_weight g)

let test_digraph_map_weights () =
  let g = Digraph.of_edges 3 [ (0, 1, 3.0); (1, 2, 4.0) ] in
  let h = Digraph.map_weights g (fun _ _ w -> if w > 3.5 then w *. 2.0 else 0.0) in
  Alcotest.(check int) "dropped one" 1 (Digraph.m h);
  check_float "doubled" 8.0 (Digraph.weight h 1 2)

let test_digraph_symmetrize () =
  let g = Digraph.of_edges 2 [ (0, 1, 3.0); (1, 0, 1.0) ] in
  let s = Digraph.symmetrize g in
  check_float "sym forward" 4.0 (Digraph.weight s 0 1);
  check_float "sym backward" 4.0 (Digraph.weight s 1 0)

(* --- Ugraph --- *)

let test_ugraph_basic () =
  let g = Ugraph.create 4 in
  Ugraph.add_edge g 0 1 2.0;
  Ugraph.add_edge g 1 0 3.0;
  Alcotest.(check int) "merged" 1 (Ugraph.m g);
  check_float "symmetric weight" 5.0 (Ugraph.weight g 0 1);
  check_float "symmetric weight'" 5.0 (Ugraph.weight g 1 0)

let test_ugraph_degree () =
  let g = Ugraph.of_edges 4 [ (0, 1, 1.0); (0, 2, 2.0) ] in
  Alcotest.(check int) "degree" 2 (Ugraph.degree g 0);
  check_float "weighted degree" 3.0 (Ugraph.weighted_degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Ugraph.degree g 1)

let test_ugraph_iter_edges_once () =
  let g = Ugraph.of_edges 4 [ (0, 1, 1.0); (2, 1, 2.0); (3, 0, 3.0) ] in
  let count = ref 0 in
  Ugraph.iter_edges g (fun u v _ ->
      incr count;
      Alcotest.(check bool) "u < v" true (u < v));
  Alcotest.(check int) "each once" 3 !count

let test_ugraph_cut () =
  let g = Ugraph.of_edges 4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 4.0); (3, 0, 8.0) ] in
  let c = Cut.of_indices ~n:4 [ 0; 1 ] in
  check_float "cycle cut" 10.0 (Ugraph.cut_value g c)

let test_ugraph_digraph_roundtrip () =
  let g = Ugraph.of_edges 4 [ (0, 1, 1.5); (1, 2, 2.5) ] in
  let d = Ugraph.to_digraph g in
  Alcotest.(check int) "directed edges doubled" 4 (Digraph.m d);
  let back = Ugraph.of_digraph d in
  (* of_digraph adds both directions: weights double *)
  check_float "weights doubled" 3.0 (Ugraph.weight back 0 1)

let test_ugraph_cut_matches_digraph_cut () =
  let rng = Prng.create 42 in
  for _ = 1 to 20 do
    let g = Generators.erdos_renyi rng ~n:12 ~p:0.4 in
    let d = Ugraph.to_digraph g in
    let c = Cut.random rng ~n:12 in
    check_float "undirected = directed on symmetric"
      (Ugraph.cut_value g c) (Cut.value d c)
  done

let test_neighbor_array_sorted () =
  let g = Ugraph.of_edges 5 [ (2, 4, 1.0); (2, 0, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 3; 4 |] (Ugraph.neighbor_array g 2)

(* --- Csr (frozen graphs) --- *)

(* Random digraph with small integer weights: float sums are exact in any
   order, so CSR and hashtable traversals must agree bit for bit. *)
let random_int_digraph rng ~n ~p ~max_weight =
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Prng.float rng 1.0 < p then
        Digraph.add_edge g u v (float_of_int (1 + Prng.int rng max_weight))
    done
  done;
  g

let test_csr_basic () =
  let g = Digraph.of_edges 4 [ (0, 1, 2.0); (0, 3, 1.0); (2, 0, 4.0) ] in
  let c = Csr.of_digraph g in
  Alcotest.(check int) "n" 4 (Csr.n c);
  Alcotest.(check int) "m" 3 (Csr.m c);
  check_float "weight" 2.0 (Csr.weight c 0 1);
  check_float "absent" 0.0 (Csr.weight c 1 0);
  Alcotest.(check bool) "mem" true (Csr.mem_edge c 2 0);
  Alcotest.(check int) "out deg" 2 (Csr.out_degree c 0);
  Alcotest.(check int) "in deg" 1 (Csr.in_degree c 0);
  check_float "total" 7.0 (Csr.total_weight c)

let test_csr_iter_sorted () =
  let g = Digraph.of_edges 5 [ (2, 4, 1.0); (2, 0, 1.0); (2, 3, 1.0) ] in
  let c = Csr.of_digraph g in
  let seen = ref [] in
  Csr.iter_out c 2 (fun v _ -> seen := v :: !seen);
  Alcotest.(check (list int)) "ascending" [ 0; 3; 4 ] (List.rev !seen)

let test_csr_reverse () =
  let g = Digraph.of_edges 3 [ (0, 1, 3.0); (1, 0, 1.0); (2, 1, 5.0) ] in
  let c = Csr.of_digraph g in
  let r = Csr.reverse c in
  check_float "reversed edge" 3.0 (Csr.weight r 1 0);
  check_float "double reverse" (Csr.weight c 2 1) (Csr.weight (Csr.reverse r) 2 1);
  let mem v = v = 1 in
  check_float "reverse swaps cut directions"
    (Csr.cut_weight_into c mem) (Csr.cut_weight r mem)

let test_csr_cut_delta_hand () =
  (* 0 -> 1 (3), 1 -> 0 (1), 0 -> 2 (5), 2 -> 1 (7); S = {0}: cut = 8. *)
  let g = Digraph.of_edges 3 [ (0, 1, 3.0); (1, 0, 1.0); (0, 2, 5.0); (2, 1, 7.0) ] in
  let c = Csr.of_digraph g in
  let side = [| true; false; false |] in
  let cut = Csr.cut_weight c (fun v -> side.(v)) in
  check_float "seed cut" 8.0 cut;
  (* Flip 1 into S: new cut {0,1} -> out = 5 (0->2) + 0 + 7? no: edges
     leaving {0,1}: 0->2 (5). Entering: 2->1 (7). Forward cut = 5. *)
  let d = Csr.cut_delta c side 1 in
  side.(1) <- true;
  check_float "after flip in" 5.0 (cut +. d);
  let d2 = Csr.cut_delta c side 1 in
  side.(1) <- false;
  check_float "flip back restores" 8.0 (cut +. d +. d2)

let test_csr_validation () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.0) ] in
  let c = Csr.of_digraph g in
  Alcotest.check_raises "cut_value wrong n"
    (Invalid_argument "Csr.cut_value: size mismatch")
    (fun () -> ignore (Csr.cut_value c (Cut.of_indices ~n:4 [ 0 ])));
  Alcotest.check_raises "cut_delta bad vertex"
    (Invalid_argument "Csr.cut_delta")
    (fun () -> ignore (Csr.cut_delta c (Array.make 3 false) 3))

let prop_csr_matches_digraph =
  QCheck.Test.make ~name:"CSR view agrees with hashtable digraph" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 12 in
      let g = random_int_digraph rng ~n ~p:0.35 ~max_weight:8 in
      let c = Csr.of_digraph g in
      let mem =
        let s = Cut.random rng ~n in
        fun v -> Cut.mem s v
      in
      let u = Prng.int rng n and v = Prng.int rng n in
      Csr.n c = Digraph.n g
      && Csr.m c = Digraph.m g
      && Csr.total_weight c = Digraph.total_weight g
      && Csr.cut_weight c mem = Digraph.cut_weight g mem
      && Csr.cut_weight_into c mem = Digraph.cut_weight_into g mem
      && Csr.weight c u v = Digraph.weight g u v
      && Csr.out_degree c u = Digraph.out_degree g u
      && Csr.in_degree c u = Digraph.in_degree g u)

let prop_csr_reverse_matches_digraph_reverse =
  QCheck.Test.make ~name:"CSR reverse = digraph reverse" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 10 in
      let g = random_int_digraph rng ~n ~p:0.35 ~max_weight:8 in
      let cr = Csr.reverse (Csr.of_digraph g) in
      let gr = Digraph.reverse g in
      let mem =
        let s = Cut.random rng ~n in
        fun v -> Cut.mem s v
      in
      Csr.cut_weight cr mem = Digraph.cut_weight gr mem
      && Csr.total_weight cr = Digraph.total_weight gr)

let prop_csr_of_ugraph_cut_value =
  QCheck.Test.make ~name:"CSR of ugraph: cut values match" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 4 + Prng.int rng 12 in
      let g0 = Generators.erdos_renyi_connected rng ~n ~p:0.3 in
      let g = Generators.random_multigraph_weights rng g0 ~max_weight:9 in
      let c = Csr.of_ugraph g in
      let s = Cut.random rng ~n in
      Csr.cut_value c s = Ugraph.cut_value g s)

(* Incremental maintenance: after any flip sequence, seed + Σ deltas equals
   a from-scratch evaluation, bit for bit (integer weights). *)
let prop_csr_cut_delta_flip_sequence =
  QCheck.Test.make ~name:"CSR cut_delta tracks flips exactly" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 10 in
      let g = random_int_digraph rng ~n ~p:0.4 ~max_weight:8 in
      let c = Csr.of_digraph g in
      let side = Array.init n (fun _ -> Prng.bool rng) in
      let cur = ref (Csr.cut_weight c (fun v -> side.(v))) in
      let ok = ref true in
      for _ = 1 to 30 do
        let x = Prng.int rng n in
        cur := !cur +. Csr.cut_delta c side x;
        side.(x) <- not side.(x);
        if !cur <> Csr.cut_weight c (fun v -> side.(v)) then ok := false
      done;
      !ok)

(* --- Cut --- *)

let test_cut_construction () =
  let c = Cut.of_indices ~n:5 [ 1; 3 ] in
  Alcotest.(check int) "cardinal" 2 (Cut.cardinal c);
  Alcotest.(check bool) "mem 1" true (Cut.mem c 1);
  Alcotest.(check bool) "mem 0" false (Cut.mem c 0);
  Alcotest.(check (list int)) "to_list" [ 1; 3 ] (Cut.to_list c)

let test_cut_complement () =
  let c = Cut.of_indices ~n:4 [ 0 ] in
  let cc = Cut.complement c in
  Alcotest.(check (list int)) "complement" [ 1; 2; 3 ] (Cut.to_list cc);
  Alcotest.(check bool) "proper" true (Cut.is_proper c);
  Alcotest.(check bool) "full not proper" false
    (Cut.is_proper (Cut.of_indices ~n:3 [ 0; 1; 2 ]))

let test_cut_union () =
  let a = Cut.of_indices ~n:4 [ 0 ] and b = Cut.of_indices ~n:4 [ 2 ] in
  Alcotest.(check (list int)) "union" [ 0; 2 ] (Cut.to_list (Cut.union a b))

let test_cut_directed_values () =
  let g = Digraph.of_edges 3 [ (0, 1, 2.0); (1, 0, 5.0) ] in
  let c = Cut.singleton ~n:3 0 in
  check_float "forward" 2.0 (Cut.value g c);
  check_float "backward" 5.0 (Cut.value_rev g c)

let test_cut_random_of_size () =
  let rng = Prng.create 1 in
  for _ = 1 to 20 do
    let c = Cut.random_of_size rng ~n:10 ~k:4 in
    Alcotest.(check int) "size" 4 (Cut.cardinal c)
  done

let test_cut_random_proper () =
  let rng = Prng.create 2 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "proper" true (Cut.is_proper (Cut.random rng ~n:3))
  done

(* --- Balance --- *)

let test_balance_of_cut () =
  let g = Digraph.of_edges 2 [ (0, 1, 6.0); (1, 0, 2.0) ] in
  let c = Cut.singleton ~n:2 0 in
  check_float "ratio" 3.0 (Balance.of_cut g c);
  check_float "inverse ratio" (1.0 /. 3.0) (Balance.of_cut g (Cut.complement c))

let test_balance_exact_simple () =
  let g = Digraph.of_edges 2 [ (0, 1, 6.0); (1, 0, 2.0) ] in
  check_float "exact" 3.0 (Balance.exact g)

let test_balance_exact_cycle () =
  (* Directed triangle: each singleton cut has 1 out / 1 in -> balanced,
     but e.g. S = {0,1} also has 1/1. Perfectly 1-balanced. *)
  let g = Digraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0) ] in
  check_float "eulerian cycle is 1-balanced" 1.0 (Balance.exact g)

let test_balance_edgewise_bounds_exact () =
  let rng = Prng.create 9 in
  for _ = 1 to 10 do
    let g = Generators.balanced_digraph rng ~n:8 ~p:0.3 ~beta:4.0 ~max_weight:3.0 in
    let exact = Balance.exact g in
    let edgewise = Balance.edgewise_upper_bound g in
    Alcotest.(check bool) "exact <= edgewise" true (exact <= edgewise +. 1e-9);
    Alcotest.(check bool) "edgewise <= beta" true (edgewise <= 4.0 +. 1e-9)
  done

let test_balance_sampled_lower_bound () =
  let rng = Prng.create 10 in
  let g = Digraph.of_edges 2 [ (0, 1, 6.0); (1, 0, 2.0) ] in
  let lb = Balance.sampled_lower_bound rng ~trials:10 g in
  check_float "finds the 2-node cut" 3.0 lb

let test_balance_infinite () =
  let g = Digraph.of_edges 2 [ (0, 1, 1.0) ] in
  check_float "one-way edge" infinity (Balance.edgewise_upper_bound g)

(* --- Generators --- *)

let test_er_connected () =
  let rng = Prng.create 20 in
  for _ = 1 to 10 do
    let g = Generators.erdos_renyi_connected rng ~n:20 ~p:0.05 in
    Alcotest.(check bool) "connected" true (Traversal.is_connected g)
  done

let test_gnm_edge_count () =
  let rng = Prng.create 21 in
  let g = Generators.gnm rng ~n:10 ~m:15 in
  Alcotest.(check int) "m" 15 (Ugraph.m g)

let test_balanced_digraph_strongly_connected () =
  let rng = Prng.create 22 in
  let g = Generators.balanced_digraph rng ~n:12 ~p:0.1 ~beta:2.0 ~max_weight:1.0 in
  Alcotest.(check bool) "strongly connected" true (Traversal.is_strongly_connected g)

let test_complete_bipartite () =
  let g =
    Generators.complete_bipartite_digraph ~left:3 ~right:2
      ~fwd:(fun i j -> float_of_int ((i * 10) + j + 1))
      ~bwd:(fun _ _ -> 0.5)
  in
  Alcotest.(check int) "n" 5 (Digraph.n g);
  Alcotest.(check int) "m" 12 (Digraph.m g);
  check_float "fwd weight" 12.0 (Digraph.weight g 1 4);
  check_float "bwd weight" 0.5 (Digraph.weight g 4 1)

let test_planted_mincut () =
  let rng = Prng.create 23 in
  let g = Generators.planted_mincut rng ~block:12 ~k:3 ~p_inner:0.7 in
  Alcotest.(check int) "n" 24 (Ugraph.n g);
  let cross = Cut.of_mem ~n:24 (fun v -> v < 12) in
  check_float "cross cut = k" 3.0 (Ugraph.cut_value g cross)

let test_cycle_path_complete () =
  let c = Generators.cycle ~n:5 in
  Alcotest.(check int) "cycle m" 5 (Ugraph.m c);
  let p = Generators.path ~n:5 in
  Alcotest.(check int) "path m" 4 (Ugraph.m p);
  let k = Generators.complete ~n:5 in
  Alcotest.(check int) "complete m" 10 (Ugraph.m k)

let test_hypercube () =
  let g = Generators.hypercube ~dim:4 in
  Alcotest.(check int) "n" 16 (Ugraph.n g);
  Alcotest.(check int) "m" 32 (Ugraph.m g);
  for v = 0 to 15 do
    Alcotest.(check int) "regular" 4 (Ugraph.degree g v)
  done;
  (* Q_d has edge connectivity d. *)
  check_float "connectivity" 4.0 (Dcs_mincut.Dinic.edge_connectivity g)

let test_grid () =
  let g = Generators.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "n" 12 (Ugraph.n g);
  Alcotest.(check int) "m" 17 (Ugraph.m g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check int) "corner degree" 2 (Ugraph.degree g 0)

let test_preferential_attachment () =
  let rng = Prng.create 31 in
  let g = Generators.preferential_attachment rng ~n:60 ~m_per_node:3 in
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* hubs exist: max degree well above the attachment parameter *)
  let maxdeg = ref 0 in
  for v = 0 to 59 do
    maxdeg := max !maxdeg (Ugraph.degree g v)
  done;
  Alcotest.(check bool) "has a hub" true (!maxdeg >= 6)

let test_random_regular () =
  let rng = Prng.create 32 in
  let g = Generators.random_regular rng ~n:20 ~degree:4 in
  for v = 0 to 19 do
    Alcotest.(check int) "regular" 4 (Ugraph.degree g v)
  done

let test_random_regular_validation () =
  let rng = Prng.create 33 in
  Alcotest.check_raises "odd product"
    (Invalid_argument "Generators.random_regular: n * degree must be even")
    (fun () -> ignore (Generators.random_regular rng ~n:5 ~degree:3))

(* --- Eulerian / circulations --- *)

let test_circulation_detection () =
  let cycle3 = Digraph.of_edges 3 [ (0, 1, 2.0); (1, 2, 2.0); (2, 0, 2.0) ] in
  Alcotest.(check bool) "cycle is circulation" true (Eulerian.is_circulation cycle3);
  let path = Digraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0) ] in
  Alcotest.(check bool) "path is not" false (Eulerian.is_circulation path)

let test_random_circulation_balanced () =
  let rng = Prng.create 40 in
  for _ = 1 to 10 do
    let g = Eulerian.random_circulation rng ~n:10 ~cycles:5 ~max_weight:4.0 in
    Alcotest.(check bool) "is circulation" true (Eulerian.is_circulation g)
  done

let test_circulation_is_one_balanced () =
  (* Flow conservation: every cut has equal weight in both directions. *)
  let rng = Prng.create 41 in
  let g = Eulerian.random_circulation rng ~n:12 ~cycles:6 ~max_weight:3.0 in
  for _ = 1 to 30 do
    let c = Cut.random rng ~n:12 in
    check_float "w(S,S̄) = w(S̄,S)" (Cut.value g c) (Cut.value_rev g c)
  done

let test_make_circulation () =
  let rng = Prng.create 42 in
  for _ = 1 to 10 do
    let g = Generators.random_digraph rng ~n:9 ~p:0.3 ~max_weight:5.0 in
    let h = Eulerian.make_circulation g in
    Alcotest.(check bool) "balanced" true (Eulerian.is_circulation h);
    (* original edges preserved (weights only grow on the fixing cycle) *)
    Digraph.iter_edges g (fun u v w ->
        Alcotest.(check bool) "kept" true (Digraph.weight h u v >= w -. 1e-9))
  done

let test_make_circulation_idempotent_on_balanced () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0) ] in
  let h = Eulerian.make_circulation g in
  Alcotest.(check bool) "unchanged" true (Digraph.equal g h)

(* --- Traversal --- *)

let test_bfs_distances () =
  let g = Generators.path ~n:5 in
  let d = Traversal.bfs_ugraph g 0 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4 |] d

let test_bfs_unreachable () =
  let g = Ugraph.of_edges 4 [ (0, 1, 1.0) ] in
  let d = Traversal.bfs_ugraph g 0 in
  Alcotest.(check int) "unreachable" (-1) d.(3)

let test_components () =
  let g = Ugraph.of_edges 5 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check int) "3 components" 3 (Traversal.component_count g);
  Alcotest.(check bool) "not connected" false (Traversal.is_connected g)

let test_strong_connectivity () =
  let cycle = Digraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0); (2, 0, 1.0) ] in
  Alcotest.(check bool) "cycle strong" true (Traversal.is_strongly_connected cycle);
  let path = Digraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0) ] in
  Alcotest.(check bool) "path not strong" false (Traversal.is_strongly_connected path)

let test_spanning_forest () =
  let rng = Prng.create 30 in
  let g = Generators.erdos_renyi_connected rng ~n:15 ~p:0.2 in
  let f = Traversal.spanning_forest g in
  Alcotest.(check int) "n-1 edges" 14 (List.length f)

(* --- Serialize --- *)

let test_serialize_ugraph_roundtrip_small () =
  let g = Ugraph.of_edges 4 [ (0, 1, 1.5); (2, 3, 0.25) ] in
  let g' = Serialize.ugraph_of_string (Serialize.ugraph_to_string g) in
  Alcotest.(check bool) "equal" true (Ugraph.equal g g')

let test_serialize_digraph_roundtrip_small () =
  let g = Digraph.of_edges 3 [ (0, 1, 3.14159); (1, 0, 2.71828) ] in
  let g' = Serialize.digraph_of_string (Serialize.digraph_to_string g) in
  Alcotest.(check bool) "equal" true (Digraph.equal g g')

let test_serialize_empty_graph () =
  let g = Ugraph.create 5 in
  let g' = Serialize.ugraph_of_string (Serialize.ugraph_to_string g) in
  Alcotest.(check int) "n preserved" 5 (Ugraph.n g');
  Alcotest.(check int) "no edges" 0 (Ugraph.m g')

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialization round-trips exactly" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.random_digraph rng ~n:12 ~p:0.3 ~max_weight:5.0 in
      Digraph.equal g (Serialize.digraph_of_string (Serialize.digraph_to_string g)))

(* qcheck properties *)

let prop_cut_value_additive_over_disjoint_graphs =
  QCheck.Test.make ~name:"cut value additive over edge-disjoint union" ~count:50
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 10 in
      let g1 = Generators.random_digraph rng ~n ~p:0.3 ~max_weight:2.0 in
      let g2 = Generators.random_digraph rng ~n ~p:0.3 ~max_weight:2.0 in
      let merged = Digraph.copy g1 in
      Digraph.iter_edges g2 (fun u v w -> Digraph.add_edge merged u v w);
      let c = Cut.random rng ~n in
      Float.abs (Cut.value merged c -. (Cut.value g1 c +. Cut.value g2 c)) < 1e-6)

let prop_cut_fwd_plus_bwd_is_symmetrized =
  QCheck.Test.make ~name:"w(S,S̄) + w(S̄,S) = undirected cut of projection" ~count:50
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 9 in
      let g = Generators.random_digraph rng ~n ~p:0.4 ~max_weight:3.0 in
      let c = Cut.random rng ~n in
      let sym = Ugraph.of_digraph g in
      Float.abs (Cut.value g c +. Cut.value_rev g c -. Ugraph.cut_value sym c) < 1e-6)

let prop_symmetric_digraph_is_1_balanced =
  QCheck.Test.make ~name:"symmetric digraphs are exactly 1-balanced" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.random_digraph rng ~n:8 ~p:0.4 ~max_weight:3.0 in
      let s = Digraph.symmetrize g in
      Digraph.m s = 0 || Float.abs (Balance.exact s -. 1.0) < 1e-9)

let prop_cut_bounded_by_total_weight =
  QCheck.Test.make ~name:"w(S,S̄) + w(S̄,S) <= total weight" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.random_digraph rng ~n:10 ~p:0.4 ~max_weight:3.0 in
      let c = Cut.random rng ~n:10 in
      Cut.value g c +. Cut.value_rev g c <= Digraph.total_weight g +. 1e-9)

let prop_complement_involution =
  QCheck.Test.make ~name:"cut complement is an involution" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 14 in
      let c = Cut.random rng ~n in
      let cc = Cut.complement (Cut.complement c) in
      Cut.equal c cc
      && Cut.cardinal c + Cut.cardinal (Cut.complement c) = n
      && Cut.is_proper (Cut.complement c))

(* The crossing/internal partition identity: on any digraph,
   w(S,S̄) + w(S̄,S) + w(S,S) + w(S̄,S̄) = total weight. *)
let prop_cut_partition_identity =
  QCheck.Test.make ~name:"crossing + internal weight = total weight" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 9 in
      let g = Generators.random_digraph rng ~n ~p:0.4 ~max_weight:5.0 in
      let c = Cut.random rng ~n in
      let internal = ref 0.0 in
      Digraph.iter_edges g (fun u v w ->
          if Cut.mem c u = Cut.mem c v then internal := !internal +. w);
      Float.abs
        (Cut.value g c +. Cut.value_rev g c +. !internal
        -. Digraph.total_weight g)
      < 1e-9)

(* On the complete unit digraph the identity has a closed form: both
   directions carry exactly |S|·|S̄|, so the crossing weight is
   2|S|(n-|S|) = n(n-1) - |S|(|S|-1) - |S̄|(|S̄|-1), i.e. total weight
   minus the two internal cliques. *)
let prop_complete_digraph_crossing_closed_form =
  QCheck.Test.make ~name:"complete digraph: value + value_rev closed form"
    ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 8 in
      let g = Digraph.create n in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then Digraph.add_edge g u v 1.0
        done
      done;
      let c = Cut.random rng ~n in
      let k = Cut.cardinal c in
      let fk = float_of_int k and fr = float_of_int (n - k) in
      Float.abs (Cut.value g c -. (fk *. fr)) < 1e-9
      && Float.abs (Cut.value_rev g c -. (fk *. fr)) < 1e-9
      && Float.abs
           (Cut.value g c +. Cut.value_rev g c
           -. (Digraph.total_weight g
              -. (fk *. (fk -. 1.0))
              -. (fr *. (fr -. 1.0))))
         < 1e-9)

let prop_ugraph_serialize_roundtrip =
  QCheck.Test.make ~name:"ugraph serialization round-trips exactly" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g0 = Generators.erdos_renyi_connected rng ~n:11 ~p:0.3 in
      let g = Generators.random_multigraph_weights rng g0 ~max_weight:9 in
      Ugraph.equal g (Serialize.ugraph_of_string (Serialize.ugraph_to_string g)))

let prop_balance_of_complement_inverts =
  QCheck.Test.make ~name:"balance(S) * balance(S̄) = 1" ~count:50
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 8 in
      let g = Generators.balanced_digraph rng ~n ~p:0.3 ~beta:3.0 ~max_weight:2.0 in
      let c = Cut.random rng ~n in
      let b = Balance.of_cut g c and b' = Balance.of_cut g (Cut.complement c) in
      Float.abs ((b *. b') -. 1.0) < 1e-6)

let suite =
  [
    Alcotest.test_case "digraph: basics" `Quick test_digraph_basic;
    Alcotest.test_case "digraph: set/remove" `Quick test_digraph_set_remove;
    Alcotest.test_case "digraph: validation" `Quick test_digraph_rejects;
    Alcotest.test_case "digraph: degrees" `Quick test_digraph_degrees;
    Alcotest.test_case "digraph: reverse" `Quick test_digraph_reverse;
    Alcotest.test_case "digraph: copy independence" `Quick test_digraph_copy_independent;
    Alcotest.test_case "digraph: cut weights" `Quick test_digraph_cut_weight;
    Alcotest.test_case "digraph: total weight" `Quick test_digraph_total_weight;
    Alcotest.test_case "digraph: map weights" `Quick test_digraph_map_weights;
    Alcotest.test_case "digraph: symmetrize" `Quick test_digraph_symmetrize;
    Alcotest.test_case "ugraph: basics" `Quick test_ugraph_basic;
    Alcotest.test_case "ugraph: degree" `Quick test_ugraph_degree;
    Alcotest.test_case "ugraph: iter edges once" `Quick test_ugraph_iter_edges_once;
    Alcotest.test_case "ugraph: cut" `Quick test_ugraph_cut;
    Alcotest.test_case "ugraph: digraph roundtrip" `Quick test_ugraph_digraph_roundtrip;
    Alcotest.test_case "ugraph: cut matches symmetric digraph" `Quick test_ugraph_cut_matches_digraph_cut;
    Alcotest.test_case "ugraph: neighbor array sorted" `Quick test_neighbor_array_sorted;
    Alcotest.test_case "csr: basics" `Quick test_csr_basic;
    Alcotest.test_case "csr: rows sorted" `Quick test_csr_iter_sorted;
    Alcotest.test_case "csr: reverse" `Quick test_csr_reverse;
    Alcotest.test_case "csr: cut_delta hand example" `Quick test_csr_cut_delta_hand;
    Alcotest.test_case "csr: validation" `Quick test_csr_validation;
    Alcotest.test_case "cut: construction" `Quick test_cut_construction;
    Alcotest.test_case "cut: complement/proper" `Quick test_cut_complement;
    Alcotest.test_case "cut: union" `Quick test_cut_union;
    Alcotest.test_case "cut: directed values" `Quick test_cut_directed_values;
    Alcotest.test_case "cut: random of size" `Quick test_cut_random_of_size;
    Alcotest.test_case "cut: random proper" `Quick test_cut_random_proper;
    Alcotest.test_case "balance: of_cut" `Quick test_balance_of_cut;
    Alcotest.test_case "balance: exact 2-node" `Quick test_balance_exact_simple;
    Alcotest.test_case "balance: eulerian cycle" `Quick test_balance_exact_cycle;
    Alcotest.test_case "balance: edgewise bound" `Quick test_balance_edgewise_bounds_exact;
    Alcotest.test_case "balance: sampled lower bound" `Quick test_balance_sampled_lower_bound;
    Alcotest.test_case "balance: infinite" `Quick test_balance_infinite;
    Alcotest.test_case "generators: ER connected" `Quick test_er_connected;
    Alcotest.test_case "generators: gnm count" `Quick test_gnm_edge_count;
    Alcotest.test_case "generators: balanced strongly connected" `Quick test_balanced_digraph_strongly_connected;
    Alcotest.test_case "generators: complete bipartite" `Quick test_complete_bipartite;
    Alcotest.test_case "generators: planted mincut" `Quick test_planted_mincut;
    Alcotest.test_case "generators: cycle/path/complete" `Quick test_cycle_path_complete;
    Alcotest.test_case "generators: hypercube" `Quick test_hypercube;
    Alcotest.test_case "generators: grid" `Quick test_grid;
    Alcotest.test_case "generators: preferential attachment" `Quick test_preferential_attachment;
    Alcotest.test_case "generators: random regular" `Quick test_random_regular;
    Alcotest.test_case "generators: regular validation" `Quick test_random_regular_validation;
    Alcotest.test_case "eulerian: detection" `Quick test_circulation_detection;
    Alcotest.test_case "eulerian: random circulation" `Quick test_random_circulation_balanced;
    Alcotest.test_case "eulerian: 1-balanced cuts" `Quick test_circulation_is_one_balanced;
    Alcotest.test_case "eulerian: make circulation" `Quick test_make_circulation;
    Alcotest.test_case "eulerian: idempotent" `Quick test_make_circulation_idempotent_on_balanced;
    Alcotest.test_case "traversal: bfs distances" `Quick test_bfs_distances;
    Alcotest.test_case "traversal: unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "traversal: components" `Quick test_components;
    Alcotest.test_case "traversal: strong connectivity" `Quick test_strong_connectivity;
    Alcotest.test_case "traversal: spanning forest" `Quick test_spanning_forest;
    Alcotest.test_case "serialize: ugraph roundtrip" `Quick test_serialize_ugraph_roundtrip_small;
    Alcotest.test_case "serialize: digraph roundtrip" `Quick test_serialize_digraph_roundtrip_small;
    Alcotest.test_case "serialize: empty" `Quick test_serialize_empty_graph;
    QCheck_alcotest.to_alcotest prop_serialize_roundtrip;
    QCheck_alcotest.to_alcotest prop_complement_involution;
    QCheck_alcotest.to_alcotest prop_cut_partition_identity;
    QCheck_alcotest.to_alcotest prop_complete_digraph_crossing_closed_form;
    QCheck_alcotest.to_alcotest prop_ugraph_serialize_roundtrip;
    QCheck_alcotest.to_alcotest prop_cut_value_additive_over_disjoint_graphs;
    QCheck_alcotest.to_alcotest prop_cut_fwd_plus_bwd_is_symmetrized;
    QCheck_alcotest.to_alcotest prop_symmetric_digraph_is_1_balanced;
    QCheck_alcotest.to_alcotest prop_cut_bounded_by_total_weight;
    QCheck_alcotest.to_alcotest prop_balance_of_complement_inverts;
    QCheck_alcotest.to_alcotest prop_csr_matches_digraph;
    QCheck_alcotest.to_alcotest prop_csr_reverse_matches_digraph_reverse;
    QCheck_alcotest.to_alcotest prop_csr_of_ugraph_cut_value;
    QCheck_alcotest.to_alcotest prop_csr_cut_delta_flip_sequence;
  ]

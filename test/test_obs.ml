(* The observability subsystem's contract:

   (a) sharded counters lose no increments under Pool fan-outs, at every
   domain count, including the supervised engine where a crashed-and-
   retried task must count exactly once;
   (b) attempt journals commit on return, discard on exception, and nest;
   (c) histograms bucket exponentially with an exact sum;
   (d) snapshots are sorted, counts-only, and identical across domain
   counts — the property bin/check_determinism.sh diffs end to end.

   Metric names are global to the process, so every test uses its own
   [obs.test.*] names and asserts on deltas, never absolutes. *)

open Dcs
module M = Obs.Metrics

let domain_counts = [ 1; 2; 4 ]

(* --- counters, gauges, histograms: single-domain basics --- *)

let test_counter_basics () =
  let c = M.counter "obs.test.basic" in
  let before = M.counter_value c in
  M.inc c;
  M.inc ~by:41 c;
  Alcotest.(check int) "1 + 41" (before + 42) (M.counter_value c);
  Alcotest.(check bool) "get-or-create returns the same metric" true
    (M.counter_value (M.counter "obs.test.basic") = before + 42)

let test_kind_mismatch_raises () =
  ignore (M.counter "obs.test.kinded");
  Alcotest.(check bool) "counter reopened as gauge raises" true
    (try
       ignore (M.gauge "obs.test.kinded");
       false
     with Invalid_argument _ -> true)

let test_gauge () =
  let g = M.gauge "obs.test.gauge" in
  M.set g 7;
  Alcotest.(check int) "set" 7 (M.gauge_value g);
  M.set g 3;
  Alcotest.(check int) "last set wins" 3 (M.gauge_value g);
  M.add g (-5);
  Alcotest.(check int) "signed accumulate" (-2) (M.gauge_value g)

let test_histogram_buckets () =
  let h = M.histogram ~buckets:8 "obs.test.hist" in
  List.iter (fun v -> M.observe h v) [ 0; 1; 1; 3; 8; 1000 ];
  let v = M.histogram_value h in
  Alcotest.(check int) "count" 6 v.M.count;
  Alcotest.(check int) "sum" 1013 v.M.sum;
  Alcotest.(check int) "zero bucket" 1 v.M.bucket_counts.(0);
  Alcotest.(check int) "[1,2)" 2 v.M.bucket_counts.(1);
  Alcotest.(check int) "[2,4)" 1 v.M.bucket_counts.(2);
  Alcotest.(check int) "[8,16)" 1 v.M.bucket_counts.(4);
  (* 1000 >= 2^6 overflows into the last bucket of an 8-bucket histogram *)
  Alcotest.(check int) "overflow bucket" 1 v.M.bucket_counts.(7);
  Alcotest.(check string) "label" "4-7" (M.bucket_label ~buckets:8 3);
  Alcotest.(check bool) "buckets < 2 raises" true
    (try
       ignore (M.histogram ~buckets:1 "obs.test.hist-bad");
       false
     with Invalid_argument _ -> true)

(* --- no lost increments under the parallel engine --- *)

let test_no_lost_increments_parallel () =
  let c = M.counter "obs.test.parallel" in
  List.iter
    (fun d ->
      let before = M.counter_value c in
      let n = 211 in
      ignore
        (Pool.parallel_init ~domains:d ~n (fun i ->
             M.inc c;
             M.inc ~by:(i mod 3) c;
             i));
      let expected = ref 0 in
      for i = 0 to n - 1 do
        expected := !expected + 1 + (i mod 3)
      done;
      let expected = !expected in
      Alcotest.(check int)
        (Printf.sprintf "delta at domains=%d" d)
        expected
        (M.counter_value c - before))
    domain_counts

let prop_no_lost_increments =
  QCheck.Test.make ~name:"sharded counter sums all task increments" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 0 150))
    (fun (domains, n) ->
      let c = M.counter "obs.test.qcheck" in
      let before = M.counter_value c in
      ignore (Pool.parallel_init ~domains ~n (fun i -> M.inc ~by:(i + 1) c));
      M.counter_value c - before = n * (n + 1) / 2)

(* --- supervised engine: a crashed-and-retried task counts exactly once --- *)

let test_supervised_exactly_once () =
  let c = M.counter "obs.test.supervised" in
  let h = M.histogram ~buckets:6 "obs.test.supervised-hist" in
  List.iter
    (fun d ->
      let before = M.counter_value c in
      let hist_before = (M.histogram_value h).M.count in
      let n = 23 in
      let _, rep =
        Pool.run_supervised ~domains:d ~rng:(Prng.create 601) ~n (fun ctx ->
            M.inc c;
            M.observe h ctx.Pool.index;
            (* crash after bumping: the bump must not survive the attempt *)
            if ctx.Pool.attempt = 0 && ctx.Pool.index mod 5 = 4 then
              failwith "transient";
            ctx.Pool.index)
      in
      Alcotest.(check bool)
        (Printf.sprintf "crashes occurred at domains=%d" d)
        true (rep.Pool.crashes > 0);
      Alcotest.(check int)
        (Printf.sprintf "each task counted once at domains=%d" d)
        n
        (M.counter_value c - before);
      Alcotest.(check int)
        (Printf.sprintf "histogram observations once at domains=%d" d)
        n
        ((M.histogram_value h).M.count - hist_before))
    domain_counts

(* --- attempt journals --- *)

let test_in_attempt_commit_and_discard () =
  let c = M.counter "obs.test.txn" in
  let before = M.counter_value c in
  let v = M.in_attempt (fun () -> M.inc ~by:5 c; 99) in
  Alcotest.(check int) "value through" 99 v;
  Alcotest.(check int) "committed" (before + 5) (M.counter_value c);
  (try M.in_attempt (fun () -> M.inc ~by:100 c; failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "discarded on exception" (before + 5) (M.counter_value c)

let test_in_attempt_nests () =
  let c = M.counter "obs.test.txn-nest" in
  let before = M.counter_value c in
  (* inner commit folds into the outer journal, outer discard drops both *)
  (try
     M.in_attempt (fun () ->
         M.inc c;
         M.in_attempt (fun () -> M.inc ~by:10 c);
         failwith "outer")
   with Failure _ -> ());
  Alcotest.(check int) "outer discard rolls back inner commit" before
    (M.counter_value c);
  M.in_attempt (fun () ->
      M.inc c;
      M.in_attempt (fun () -> M.inc ~by:10 c));
  Alcotest.(check int) "both commit on clean return" (before + 11)
    (M.counter_value c)

(* --- snapshots --- *)

let test_snapshot_sorted_and_complete () =
  ignore (M.counter "obs.test.snap-b");
  ignore (M.counter "obs.test.snap-a");
  let names = List.map fst (M.snapshot ()) in
  Alcotest.(check bool) "sorted" true (names = List.sort compare names);
  Alcotest.(check bool) "registered metrics present" true
    (List.mem "obs.test.snap-a" names && List.mem "obs.test.snap-b" names)

let test_snapshot_identical_across_domains () =
  (* The same logical work at 1/2/4 domains must yield identical deltas for
     every metric it touches — the in-process version of the byte-diff that
     bin/check_determinism.sh performs on E18's DCS_METRICS JSON. *)
  let c = M.counter "obs.test.xdomains" in
  let h = M.histogram ~buckets:10 "obs.test.xdomains-hist" in
  let work d =
    let before_c = M.counter_value c in
    let before_h = M.histogram_value h in
    ignore
      (Pool.parallel_init ~domains:d ~n:97 (fun i ->
           M.inc ~by:(i land 7) c;
           M.observe h i));
    let after_h = M.histogram_value h in
    ( M.counter_value c - before_c,
      after_h.M.count - before_h.M.count,
      after_h.M.sum - before_h.M.sum,
      Array.init
        (Array.length after_h.M.bucket_counts)
        (fun b -> after_h.M.bucket_counts.(b) - before_h.M.bucket_counts.(b)) )
  in
  let reference = work 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "deltas at domains=%d equal single-domain run" d)
        true
        (work d = reference))
    [ 2; 4 ]

let test_report_json_deterministic () =
  ignore (M.counter "obs.test.json");
  let a = Obs.Report.snapshot_json () in
  let b = Obs.Report.snapshot_json () in
  Alcotest.(check string) "stable between calls" a b;
  Alcotest.(check bool) "mentions the metric" true
    (let sub = "\"obs.test.json\"" in
     let rec find i =
       i + String.length sub <= String.length a
       && (String.sub a i (String.length sub) = sub || find (i + 1))
     in
     find 0)

(* --- tracing --- *)

let test_trace_spans () =
  let was = Obs.Trace.enabled () in
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () -> if not was then Obs.Trace.disable ())
    (fun () ->
      Obs.Trace.reset ();
      Obs.Trace.with_span "obs.test.outer" (fun () ->
          Obs.Trace.with_span "obs.test.inner" (fun () -> Unix.sleepf 0.002));
      let stats = Obs.Trace.stats () in
      let find name = List.find (fun s -> s.Obs.Trace.name = name) stats in
      let outer = find "obs.test.outer" and inner = find "obs.test.inner" in
      Alcotest.(check int) "outer count" 1 outer.Obs.Trace.count;
      Alcotest.(check int) "inner count" 1 inner.Obs.Trace.count;
      Alcotest.(check bool) "inner time charged to inner's self" true
        (inner.Obs.Trace.self_s > 0.0);
      Alcotest.(check bool) "outer self excludes inner" true
        (outer.Obs.Trace.self_s <= outer.Obs.Trace.total_s -. inner.Obs.Trace.total_s +. 1e-9))

let test_trace_exception_safe () =
  let was = Obs.Trace.enabled () in
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () -> if not was then Obs.Trace.disable ())
    (fun () ->
      Obs.Trace.reset ();
      (try Obs.Trace.with_span "obs.test.raises" (fun () -> failwith "boom")
       with Failure _ -> ());
      (* the span closed despite the raise: a sibling span is not nested
         under a dangling parent, and the stats recorded the occurrence *)
      Obs.Trace.with_span "obs.test.sibling" (fun () -> ());
      let stats = Obs.Trace.stats () in
      let count name =
        match List.find_opt (fun s -> s.Obs.Trace.name = name) stats with
        | Some s -> s.Obs.Trace.count
        | None -> 0
      in
      Alcotest.(check int) "raised span recorded" 1 (count "obs.test.raises");
      Alcotest.(check int) "sibling recorded" 1 (count "obs.test.sibling"))

let test_trace_disabled_is_transparent () =
  let was = Obs.Trace.enabled () in
  Obs.Trace.disable ();
  Fun.protect
    ~finally:(fun () -> if was then Obs.Trace.enable ())
    (fun () ->
      Alcotest.(check int) "value passes through" 17
        (Obs.Trace.with_span "obs.test.off" (fun () -> 17)))

let suite =
  [
    Alcotest.test_case "metrics: counter basics" `Quick test_counter_basics;
    Alcotest.test_case "metrics: kind mismatch raises" `Quick test_kind_mismatch_raises;
    Alcotest.test_case "metrics: gauge" `Quick test_gauge;
    Alcotest.test_case "metrics: histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "metrics: no lost increments (parallel)" `Quick
      test_no_lost_increments_parallel;
    QCheck_alcotest.to_alcotest prop_no_lost_increments;
    Alcotest.test_case "metrics: supervised retry counts once" `Quick
      test_supervised_exactly_once;
    Alcotest.test_case "metrics: in_attempt commit/discard" `Quick
      test_in_attempt_commit_and_discard;
    Alcotest.test_case "metrics: in_attempt nests" `Quick test_in_attempt_nests;
    Alcotest.test_case "metrics: snapshot sorted" `Quick
      test_snapshot_sorted_and_complete;
    Alcotest.test_case "metrics: deltas domain-count independent" `Quick
      test_snapshot_identical_across_domains;
    Alcotest.test_case "report: json snapshot deterministic" `Quick
      test_report_json_deterministic;
    Alcotest.test_case "trace: span nesting and self time" `Quick test_trace_spans;
    Alcotest.test_case "trace: exception safe" `Quick test_trace_exception_safe;
    Alcotest.test_case "trace: disabled is transparent" `Quick
      test_trace_disabled_is_transparent;
  ]

open Dcs

let check_float = Alcotest.(check (float 1e-9))

(* --- Sketch interface / exact sketch --- *)

let test_exact_sketch_is_exact () =
  let rng = Prng.create 1 in
  let g = Generators.random_digraph rng ~n:10 ~p:0.4 ~max_weight:3.0 in
  let sk = Exact_sketch.create g in
  for _ = 1 to 20 do
    let c = Cut.random rng ~n:10 in
    check_float "exact" (Cut.value g c) (sk.Sketch.query c)
  done

let test_exact_sketch_size_positive () =
  let g = Digraph.of_edges 4 [ (0, 1, 1.0); (1, 2, 2.0) ] in
  let sk = Exact_sketch.create g in
  Alcotest.(check bool) "size > 2 * 64" true (sk.Sketch.size_bits > 128)

let test_exact_sketch_independent_of_mutation () =
  let g = Digraph.of_edges 3 [ (0, 1, 1.0) ] in
  let sk = Exact_sketch.create g in
  Digraph.add_edge g 1 2 5.0;
  let c = Cut.of_indices ~n:3 [ 0; 1 ] in
  check_float "copy isolated" 0.0 (sk.Sketch.query c)

let test_encoding_bits_monotone () =
  let small = Digraph.of_edges 4 [ (0, 1, 1.0) ] in
  let large = Digraph.of_edges 4 [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check bool) "more edges, more bits" true
    (Sketch.digraph_encoding_bits large > Sketch.digraph_encoding_bits small)

let test_relative_error () =
  let g = Digraph.of_edges 2 [ (0, 1, 10.0) ] in
  let sk =
    { Sketch.name = "test"; size_bits = 0; query = (fun _ -> 11.0); graph = None }
  in
  let c = Cut.singleton ~n:2 0 in
  check_float "10% error" 0.1 (Sketch.relative_error sk g c)

(* One test per branch of the zero-cut contract in the .mli. *)
let test_relative_error_zero_branches () =
  (* Graph with only the 1 -> 0 edge: the cut ({0}, {1}) has truth 0. *)
  let g = Digraph.of_edges 2 [ (1, 0, 10.0) ] in
  let zero_cut = Cut.singleton ~n:2 0 in
  let const v =
    { Sketch.name = "const"; size_bits = 0; query = (fun _ -> v); graph = None }
  in
  check_float "truth 0, estimate 0" 0.0 (Sketch.relative_error (const 0.0) g zero_cut);
  Alcotest.(check bool) "truth 0, estimate nonzero" true
    (Sketch.relative_error (const 0.5) g zero_cut = infinity);
  (* Even a sub-tolerance estimate of a zero cut is infinitely wrong. *)
  Alcotest.(check bool) "truth 0, tiny estimate" true
    (Sketch.relative_error (const 1e-15) g zero_cut = infinity);
  (* Truth nonzero: estimate 0 is the ordinary branch with error 1. *)
  let nonzero_cut = Cut.singleton ~n:2 1 in
  check_float "truth nonzero, estimate 0" 1.0
    (Sketch.relative_error (const 0.0) g nonzero_cut);
  check_float "ordinary branch" 0.2 (Sketch.relative_error (const 8.0) g nonzero_cut)

(* --- Noisy oracle --- *)

let test_noisy_oracle_bounds () =
  let rng = Prng.create 2 in
  let g = Generators.random_digraph rng ~n:8 ~p:0.5 ~max_weight:2.0 in
  List.iter
    (fun mode ->
      let sk = Noisy_oracle.create ~mode rng ~eps:0.1 g in
      for _ = 1 to 30 do
        let c = Cut.random rng ~n:8 in
        let truth = Cut.value g c in
        let est = sk.Sketch.query c in
        Alcotest.(check bool) "within (1±eps)" true
          (est >= (0.9 *. truth) -. 1e-9 && est <= (1.1 *. truth) +. 1e-9)
      done)
    [ Noisy_oracle.Random; Noisy_oracle.Adversarial ]

let test_noisy_oracle_deterministic_modes () =
  let rng = Prng.create 3 in
  let g = Digraph.of_edges 2 [ (0, 1, 10.0) ] in
  let c = Cut.singleton ~n:2 0 in
  let up = Noisy_oracle.create ~mode:Noisy_oracle.Deterministic_up rng ~eps:0.2 g in
  check_float "up" 12.0 (up.Sketch.query c);
  let down = Noisy_oracle.create ~mode:Noisy_oracle.Deterministic_down rng ~eps:0.2 g in
  check_float "down" 8.0 (down.Sketch.query c)

let test_noisy_oracle_zero_eps_exact () =
  let rng = Prng.create 4 in
  let g = Digraph.of_edges 2 [ (0, 1, 7.0) ] in
  let sk = Noisy_oracle.create rng ~eps:0.0 g in
  check_float "exact at eps 0" 7.0 (sk.Sketch.query (Cut.singleton ~n:2 0))

let test_noisy_oracle_zero_weight_cut () =
  (* A zero cut must come back as exactly 0 in every mode: multiplicative
     noise has nothing to scale, so no mode may fabricate weight. *)
  let rng = Prng.create 30 in
  (* Only the 1 -> 0 edge: the directed cut ({0}, {1}) is 0. *)
  let g = Digraph.of_edges 2 [ (1, 0, 10.0) ] in
  let zero_cut = Cut.singleton ~n:2 0 in
  List.iter
    (fun mode ->
      let sk = Noisy_oracle.create ~mode rng ~eps:0.9 g in
      for _ = 1 to 10 do
        check_float "zero cut stays zero" 0.0 (sk.Sketch.query zero_cut)
      done)
    [ Noisy_oracle.Random; Noisy_oracle.Adversarial;
      Noisy_oracle.Deterministic_up; Noisy_oracle.Deterministic_down ]

let test_noisy_oracle_extreme_noise () =
  (* eps = 0.99 is legal and the (1 ± eps) envelope still holds; answers
     stay strictly positive on nonzero cuts (the factor can't reach 0). *)
  let rng = Prng.create 31 in
  let g = Generators.random_digraph rng ~n:8 ~p:0.5 ~max_weight:2.0 in
  let sk = Noisy_oracle.create ~mode:Noisy_oracle.Adversarial rng ~eps:0.99 g in
  for _ = 1 to 50 do
    let c = Cut.random rng ~n:8 in
    let truth = Cut.value g c in
    let est = sk.Sketch.query c in
    Alcotest.(check bool) "within (1±0.99)" true
      (est >= (0.01 *. truth) -. 1e-9 && est <= (1.99 *. truth) +. 1e-9);
    if truth > 0.0 then
      Alcotest.(check bool) "never zeroed out" true (est > 0.0)
  done

let test_noisy_oracle_rejects_bad_eps () =
  let rng = Prng.create 32 in
  let g = Digraph.of_edges 2 [ (0, 1, 1.0) ] in
  let bad eps =
    Alcotest.check_raises "eps in [0,1)"
      (Invalid_argument "Noisy_oracle.create: eps in [0,1)") (fun () ->
        ignore (Noisy_oracle.create rng ~eps g))
  in
  bad 1.0;
  bad 1.5;
  bad (-0.01)

let test_frame_bits_are_encoding_plus_checksum () =
  let rng = Prng.create 33 in
  let g = Generators.erdos_renyi_connected rng ~n:12 ~p:0.3 in
  let dg = Generators.random_digraph rng ~n:9 ~p:0.4 ~max_weight:2.0 in
  Alcotest.(check int) "ugraph frame"
    (Sketch.ugraph_encoding_bits g + Checksum.bits)
    (Sketch.ugraph_frame_bits g);
  Alcotest.(check int) "digraph frame"
    (Sketch.digraph_encoding_bits dg + Checksum.bits)
    (Sketch.digraph_frame_bits dg);
  (* And the frame itself round-trips the graph. *)
  match Serialize.ugraph_of_frame (Serialize.ugraph_to_frame g) with
  | Ok g' -> Alcotest.(check bool) "roundtrip" true (Ugraph.equal g g')
  | Error e -> Alcotest.failf "clean frame rejected: %s" e

(* --- Strength (Nagamochi–Ibaraki) --- *)

let test_strength_tree_all_one () =
  let g = Generators.path ~n:6 in
  let s = Strength.compute g in
  Strength.fold
    (fun _ _ idx () -> Alcotest.(check int) "tree edges index 1" 1 idx)
    s ()

let test_strength_complete_graph () =
  let g = Generators.complete ~n:6 in
  let s = Strength.compute g in
  (* K6 is 5-edge-connected; every NI index must be <= 5 and the max must
     reach at least half of it. *)
  Alcotest.(check bool) "max index <= 5" true (Strength.max_index s <= 5);
  Alcotest.(check bool) "max index >= 2" true (Strength.max_index s >= 2);
  Alcotest.(check int) "min index 1" 1 (Strength.min_index s)

let test_strength_weighted_multiplicity () =
  (* Two nodes, weight 7 edge: the edge survives 7 forests. *)
  let g = Ugraph.of_edges 2 [ (0, 1, 7.0) ] in
  let s = Strength.compute g in
  Alcotest.(check int) "index = weight" 7 (Strength.index s 0 1)

let test_strength_not_found () =
  let g = Generators.path ~n:4 in
  let s = Strength.compute g in
  Alcotest.check_raises "non-edge"
    (Invalid_argument "Strength.index: (0, 3) is not an edge") (fun () ->
      ignore (Strength.index s 0 3))

let test_strength_fold_sorted () =
  let rng = Prng.create 31 in
  let g = Generators.erdos_renyi_connected rng ~n:12 ~p:0.4 in
  let last = ref (-1, -1) in
  Strength.fold
    (fun u v _ () ->
      Alcotest.(check bool) "ascending (u, v)" true ((u, v) > !last);
      last := (u, v))
    (Strength.compute g) ()

let test_strength_max_rounds_cap () =
  let g = Ugraph.of_edges 2 [ (0, 1, 100.0) ] in
  let s = Strength.compute ~max_rounds:10 g in
  Alcotest.(check int) "capped" 10 (Strength.index s 0 1);
  Alcotest.(check int) "rounds used" 10 (Strength.rounds_used s)

(* NI index lower-bounds local edge connectivity. *)
let prop_strength_below_connectivity =
  QCheck.Test.make ~name:"NI index <= local edge connectivity" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.erdos_renyi_connected rng ~n:10 ~p:0.35 in
      let s = Strength.compute g in
      Strength.fold
        (fun u v idx acc ->
          acc && idx <= Dinic.edge_disjoint_paths g ~s:u ~t:v)
        s true)

(* --- Connectivity estimation --- *)

(* Every tier of the estimator — weight, NI index, common-neighbour,
   capped flow — must stay below the Dinic-certified local connectivity
   (capped), on weighted graphs. *)
let prop_connectivity_estimates_sound =
  QCheck.Test.make ~name:"connectivity estimates <= min(lambda, cap)"
    ~count:20
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g0 = Generators.erdos_renyi_connected rng ~n:10 ~p:0.35 in
      let g = Generators.random_multigraph_weights rng g0 ~max_weight:4 in
      let cap = 6.0 in
      let conn = Connectivity.estimate_ugraph ~cap g in
      let net = Dinic.of_ugraph g in
      let s = Strength.compute g in
      let ok = ref true in
      Connectivity.iter conn (fun u v w lam ->
          let lambda = Dinic.maxflow net ~s:u ~t:v in
          (* estimate sound and at least the trivial weight bound *)
          if lam > Float.min lambda cap +. 1e-6 then ok := false;
          if lam +. 1e-6 < Float.min w cap then ok := false;
          (* NI index <= Dinic-certified λ(u,v), weighted *)
          if float_of_int (Strength.index s u v) > lambda +. 1e-6 then
            ok := false);
      !ok)

let test_connectivity_exact_when_uncapped () =
  (* With an unreachable cap and unlimited flows, the exact tier runs
     everywhere: estimates equal true local connectivities. *)
  let rng = Prng.create 8 in
  let g0 = Generators.erdos_renyi_connected rng ~n:9 ~p:0.4 in
  let g = Generators.random_multigraph_weights rng g0 ~max_weight:3 in
  let conn = Connectivity.estimate_ugraph ~cap:1e9 g in
  let net = Dinic.of_ugraph g in
  Connectivity.iter conn (fun u v _ lam ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "lambda(%d,%d)" u v)
        (Dinic.maxflow net ~s:u ~t:v)
        lam)

let test_connectivity_get_not_found () =
  let g = Ugraph.of_edges 3 [ (0, 1, 2.0); (1, 2, 1.0) ] in
  let conn = Connectivity.estimate_ugraph ~cap:4.0 g in
  Alcotest.check_raises "non-edge"
    (Invalid_argument "Connectivity.get: (0, 2) is not an edge") (fun () ->
      ignore (Connectivity.get conn 0 2))

(* --- Binomial weight resampling --- *)

let test_binomial_keep_identity () =
  (* p >= 1 keeps the edge at its exact weight without consuming the
     stream. *)
  let rng = Prng.create 9 in
  Alcotest.(check (option (float 0.0)))
    "p=1" (Some 7.0)
    (Importance.binomial_keep rng ~p:1.0 ~w:7.0);
  Alcotest.(check (option (float 0.0)))
    "p=0" None
    (Importance.binomial_keep rng ~p:0.0 ~w:7.0)

let test_binomial_keep_expectation () =
  (* E[resampled weight] = w: kept weight x/p with x ~ Bin(w, p). *)
  let rng = Prng.create 10 in
  let w = 12.0 and p = 0.3 and trials = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to trials do
    match Importance.binomial_keep rng ~p ~w with
    | Some w' -> acc := !acc +. w'
    | None -> ()
  done;
  let mean = !acc /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f within 2%% of %g" mean w)
    true
    (Float.abs (mean -. w) /. w < 0.02)

let test_binomial_keep_deterministic () =
  (* The same split stream replays the same decision — the per-edge
     determinism contract of the connectivity samplers. *)
  let master = Prng.create 11 in
  let draw () =
    List.init 64 (fun i ->
        Importance.binomial_keep (Prng.split master i) ~p:0.4 ~w:5.0)
  in
  Alcotest.(check bool) "split streams replay" true (draw () = draw ())

(* --- Importance sampling --- *)

let test_importance_keep_all () =
  let rng = Prng.create 5 in
  let g = Generators.erdos_renyi_connected rng ~n:12 ~p:0.3 in
  let h = Importance.sample_ugraph rng ~prob:(fun _ _ _ -> 1.0) g in
  Alcotest.(check bool) "identical" true (Ugraph.equal g h)

let test_importance_drop_all () =
  let rng = Prng.create 6 in
  let g = Generators.erdos_renyi_connected rng ~n:12 ~p:0.3 in
  let h = Importance.sample_ugraph rng ~prob:(fun _ _ _ -> 0.0) g in
  Alcotest.(check int) "empty" 0 (Ugraph.m h)

let test_importance_unbiased_cut () =
  let rng = Prng.create 7 in
  let g = Generators.complete ~n:14 in
  let c = Cut.of_mem ~n:14 (fun v -> v < 7) in
  let truth = Ugraph.cut_value g c in
  let trials = 300 in
  let acc = ref 0.0 in
  for _ = 1 to trials do
    let h = Importance.sample_ugraph rng ~prob:(fun _ _ _ -> 0.5) g in
    acc := !acc +. Ugraph.cut_value h c
  done;
  let mean = !acc /. float_of_int trials in
  Alcotest.(check bool) "unbiased within 5%" true
    (Float.abs (mean -. truth) /. truth < 0.05)

let test_importance_expected_edges () =
  let g = Generators.complete ~n:10 in
  Alcotest.(check (float 1e-9)) "expected edges"
    22.5
    (Importance.expected_edges_ugraph ~prob:(fun _ _ _ -> 0.5) g)

let test_importance_digraph_weights_scaled () =
  let rng = Prng.create 8 in
  let g = Digraph.of_edges 2 [ (0, 1, 4.0) ] in
  let h = Importance.sample_digraph rng ~prob:(fun _ _ _ -> 0.25) g in
  if Digraph.m h = 1 then check_float "reweighted" 16.0 (Digraph.weight h 0 1)

(* --- Benczúr–Karger --- *)

let test_bk_preserves_cuts () =
  let rng = Prng.create 9 in
  (* Weighted dense graph so sampling actually triggers. *)
  let g = Generators.random_multigraph_weights rng (Generators.complete ~n:40) ~max_weight:20 in
  let eps = 0.3 in
  let h = Benczur_karger.sparsify rng ~eps g in
  let worst = ref 0.0 in
  for _ = 1 to 40 do
    let c = Cut.random rng ~n:40 in
    let truth = Ugraph.cut_value g c in
    let est = Ugraph.cut_value h c in
    worst := Float.max !worst (Float.abs (est -. truth) /. truth)
  done;
  Alcotest.(check bool) "within eps on sampled cuts" true (!worst <= eps)

let test_bk_sparsifies_dense_weighted () =
  let rng = Prng.create 10 in
  let g = Generators.random_multigraph_weights rng (Generators.complete ~n:60) ~max_weight:50 in
  let h = Benczur_karger.sparsify rng ~eps:0.5 g in
  Alcotest.(check bool) "fewer edges" true (Ugraph.m h < Ugraph.m g)

let test_bk_sketch_size_matches_graph () =
  let rng = Prng.create 11 in
  let g = Generators.complete ~n:20 in
  let sk = Benczur_karger.sketch rng ~eps:0.4 g in
  Alcotest.(check bool) "graph-valued" true (sk.Sketch.graph <> None);
  Alcotest.(check bool) "positive size" true (sk.Sketch.size_bits > 0)

let test_bk_expected_edges_formula () =
  let g = Generators.complete ~n:20 in
  let e1 = Benczur_karger.expected_edges ~eps:0.2 g in
  let e2 = Benczur_karger.expected_edges ~eps:0.4 g in
  Alcotest.(check bool) "smaller eps, more edges" true (e1 >= e2)

(* --- For-each sampler --- *)

let test_foreach_sampler_cheaper_than_forall () =
  let rng = Prng.create 12 in
  let g = Generators.random_multigraph_weights rng (Generators.complete ~n:50) ~max_weight:40 in
  let fa = Benczur_karger.expected_edges ~eps:0.3 g in
  let fe = Foreach_sampler.expected_edges ~eps:0.3 g in
  (* For-each drops the ln n union-bound oversampling. *)
  Alcotest.(check bool) "for-each smaller" true (fe < fa)

let test_foreach_sampler_accuracy_on_fixed_cut () =
  let rng = Prng.create 13 in
  let g = Generators.random_multigraph_weights rng (Generators.complete ~n:30) ~max_weight:30 in
  let c = Cut.of_mem ~n:30 (fun v -> v < 15) in
  let truth = Ugraph.cut_value g c in
  let ok = ref 0 in
  let trials = 60 in
  for _ = 1 to trials do
    let h = Foreach_sampler.sparsify rng ~eps:0.25 g in
    if Float.abs (Ugraph.cut_value h c -. truth) /. truth <= 0.25 then incr ok
  done;
  (* For-each guarantee: each fixed cut within (1±O(eps)) w.p. >= 2/3. *)
  Alcotest.(check bool) "success >= 2/3" true
    (float_of_int !ok /. float_of_int trials >= 0.66)

(* --- Directed sparsifiers --- *)

let test_directed_forall_preserves_cuts () =
  let rng = Prng.create 14 in
  let g = Generators.balanced_digraph rng ~n:40 ~p:0.8 ~beta:2.0 ~max_weight:30.0 in
  let sk = Directed_sparsifier.forall_sketch rng ~eps:0.3 ~beta:2.0 g in
  let worst = ref 0.0 in
  for _ = 1 to 30 do
    let c = Cut.random rng ~n:40 in
    worst := Float.max !worst (Sketch.relative_error sk g c)
  done;
  Alcotest.(check bool) "within eps" true (!worst <= 0.3)

let test_directed_foreach_graph_valued () =
  let rng = Prng.create 15 in
  let g = Generators.balanced_digraph rng ~n:20 ~p:0.4 ~beta:4.0 ~max_weight:5.0 in
  let sk = Directed_sparsifier.foreach_sketch rng ~eps:0.3 ~beta:4.0 g in
  Alcotest.(check bool) "graph-valued" true (sk.Sketch.graph <> None)

let test_directed_rejects_bad_params () =
  let rng = Prng.create 16 in
  let g = Generators.balanced_digraph rng ~n:10 ~p:0.3 ~beta:2.0 ~max_weight:2.0 in
  Alcotest.check_raises "beta < 1" (Invalid_argument "Directed_sparsifier: beta >= 1")
    (fun () -> ignore (Directed_sparsifier.forall_sparsify rng ~eps:0.3 ~beta:0.5 g))

(* --- Imbalance decomposition --- *)

let test_imbalance_decomposition_exact () =
  (* (u(S) + Δ(S))/2 = w(S, V\S), identically, on arbitrary digraphs. *)
  let rng = Prng.create 20 in
  for _ = 1 to 20 do
    let g = Generators.random_digraph rng ~n:12 ~p:0.4 ~max_weight:5.0 in
    let c = Cut.random rng ~n:12 in
    check_float "identity" (Cut.value g c) (Imbalance_sketch.exact_decomposition g c)
  done

let test_imbalance_delta_additive () =
  let rng = Prng.create 21 in
  let g = Generators.random_digraph rng ~n:10 ~p:0.4 ~max_weight:3.0 in
  let imb = Imbalance_sketch.imbalances g in
  let a = Cut.of_indices ~n:10 [ 1; 3 ] and b = Cut.of_indices ~n:10 [ 5; 7; 9 ] in
  check_float "additive over disjoint unions"
    (Imbalance_sketch.delta imb (Cut.union a b))
    (Imbalance_sketch.delta imb a +. Imbalance_sketch.delta imb b)

let test_imbalance_sketch_eulerian_zero_delta () =
  (* β = 1 circulations: every imbalance is zero; directed sketching is
     exactly undirected sketching. *)
  let rng = Prng.create 22 in
  let g = Eulerian.random_circulation rng ~n:14 ~cycles:8 ~max_weight:4.0 in
  let imb = Imbalance_sketch.imbalances g in
  Array.iter (fun b -> check_float "zero imbalance" 0.0 b) imb;
  let sk = Imbalance_sketch.create rng ~eps:0.9 ~beta:1.0 g in
  Alcotest.(check bool) "sketch built" true (sk.Sketch.size_bits > 0)

let test_imbalance_sketch_accuracy () =
  let rng = Prng.create 23 in
  let beta = 2.0 in
  let g = Generators.balanced_digraph rng ~n:40 ~p:0.8 ~beta ~max_weight:30.0 in
  let eps = 0.6 in
  let ok = ref 0 in
  let trials = 40 in
  for _ = 1 to trials do
    let sk = Imbalance_sketch.create ~c:1.0 rng ~eps ~beta g in
    let c = Cut.random rng ~n:40 in
    let truth = Cut.value g c in
    if truth > 0.0 && Float.abs (sk.Sketch.query c -. truth) <= eps *. truth then
      incr ok
  done;
  (* for-each guarantee: each cut within (1±eps) with probability >= 2/3 *)
  Alcotest.(check bool) "for-each accuracy" true
    (float_of_int !ok /. float_of_int trials >= 0.67)

let test_imbalance_sketch_exact_sampler_exact_answers () =
  (* With eps_u so large the sampler keeps everything... instead force the
     projection to survive intact by sparse graph: answers become exact. *)
  let rng = Prng.create 24 in
  let g = Generators.balanced_digraph rng ~n:12 ~p:0.2 ~beta:4.0 ~max_weight:2.0 in
  let sk = Imbalance_sketch.create rng ~eps:0.9 ~beta:4.0 g in
  (* sparse graph: strengths ~1, sampler keeps all edges -> exact *)
  let c = Cut.random rng ~n:12 in
  check_float "exact when nothing sampled away" (Cut.value g c) (sk.Sketch.query c)

let prop_imbalance_identity =
  QCheck.Test.make ~name:"directed cut = (u(S) + Δ(S))/2" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.random_digraph rng ~n:9 ~p:0.5 ~max_weight:4.0 in
      let c = Cut.random rng ~n:9 in
      Float.abs (Cut.value g c -. Imbalance_sketch.exact_decomposition g c) < 1e-9)

let test_median_boost_improves_success () =
  let rng = Prng.create 17 in
  let u =
    Generators.random_multigraph_weights rng (Generators.complete ~n:24) ~max_weight:20
  in
  let c = Cut.of_mem ~n:24 (fun v -> v < 12) in
  let truth = Ugraph.cut_value u c in
  let eps = 0.3 in
  let single_ok = ref 0 and boosted_ok = ref 0 in
  let trials = 60 in
  for _ = 1 to trials do
    let mk () = Foreach_sampler.sketch ~c:1.0 rng ~eps u in
    let single = mk () in
    if Float.abs (single.Sketch.query c -. truth) <= eps *. truth then incr single_ok;
    let boosted = Sketch.median_boost [ mk (); mk (); mk (); mk (); mk () ] in
    if Float.abs (boosted.Sketch.query c -. truth) <= eps *. truth then incr boosted_ok
  done;
  Alcotest.(check bool) "median helps" true (!boosted_ok >= !single_ok);
  Alcotest.(check bool) "boosted strong" true
    (float_of_int !boosted_ok /. float_of_int trials >= 0.75)

let test_median_boost_size_is_sum () =
  let rng = Prng.create 18 in
  let g = Generators.random_digraph rng ~n:8 ~p:0.5 ~max_weight:2.0 in
  let parts = [ Exact_sketch.create g; Exact_sketch.create g; Exact_sketch.create g ] in
  let b = Sketch.median_boost parts in
  Alcotest.(check int) "sum of sizes"
    (3 * (List.hd parts).Sketch.size_bits)
    b.Sketch.size_bits

(* Unbiasedness of the directed sampler on a fixed directed cut. *)
let prop_directed_sampler_unbiased =
  QCheck.Test.make ~name:"directed sampler unbiased on fixed cut" ~count:10
    QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Generators.balanced_digraph rng ~n:16 ~p:0.5 ~beta:2.0 ~max_weight:10.0 in
      let c = Cut.random rng ~n:16 in
      let truth = Cut.value g c in
      let acc = ref 0.0 in
      let trials = 400 in
      for _ = 1 to trials do
        let h = Directed_sparsifier.foreach_sparsify ~c:2.0 rng ~eps:0.9 ~beta:2.0 g in
        acc := !acc +. Cut.value h c
      done;
      (* statistical tolerance: relative plus absolute slack *)
      Float.abs ((!acc /. float_of_int trials) -. truth) < (0.15 *. truth) +. 2.0)

let suite =
  [
    Alcotest.test_case "exact sketch: exact" `Quick test_exact_sketch_is_exact;
    Alcotest.test_case "exact sketch: size" `Quick test_exact_sketch_size_positive;
    Alcotest.test_case "exact sketch: isolation" `Quick test_exact_sketch_independent_of_mutation;
    Alcotest.test_case "sketch: encoding monotone" `Quick test_encoding_bits_monotone;
    Alcotest.test_case "sketch: relative error" `Quick test_relative_error;
    Alcotest.test_case "sketch: relative error zero branches" `Quick
      test_relative_error_zero_branches;
    Alcotest.test_case "noisy oracle: bounds" `Quick test_noisy_oracle_bounds;
    Alcotest.test_case "noisy oracle: deterministic" `Quick test_noisy_oracle_deterministic_modes;
    Alcotest.test_case "noisy oracle: eps 0" `Quick test_noisy_oracle_zero_eps_exact;
    Alcotest.test_case "noisy oracle: zero-weight cut" `Quick test_noisy_oracle_zero_weight_cut;
    Alcotest.test_case "noisy oracle: extreme noise" `Quick test_noisy_oracle_extreme_noise;
    Alcotest.test_case "noisy oracle: rejects bad eps" `Quick test_noisy_oracle_rejects_bad_eps;
    Alcotest.test_case "frame bits: encoding + checksum" `Quick test_frame_bits_are_encoding_plus_checksum;
    Alcotest.test_case "strength: tree" `Quick test_strength_tree_all_one;
    Alcotest.test_case "strength: complete graph" `Quick test_strength_complete_graph;
    Alcotest.test_case "strength: weighted multiplicity" `Quick test_strength_weighted_multiplicity;
    Alcotest.test_case "strength: not found" `Quick test_strength_not_found;
    Alcotest.test_case "strength: fold sorted" `Quick test_strength_fold_sorted;
    Alcotest.test_case "strength: max rounds cap" `Quick test_strength_max_rounds_cap;
    QCheck_alcotest.to_alcotest prop_strength_below_connectivity;
    QCheck_alcotest.to_alcotest prop_connectivity_estimates_sound;
    Alcotest.test_case "connectivity: exact when uncapped" `Quick test_connectivity_exact_when_uncapped;
    Alcotest.test_case "connectivity: get not found" `Quick test_connectivity_get_not_found;
    Alcotest.test_case "binomial keep: identity" `Quick test_binomial_keep_identity;
    Alcotest.test_case "binomial keep: expectation" `Quick test_binomial_keep_expectation;
    Alcotest.test_case "binomial keep: determinism" `Quick test_binomial_keep_deterministic;
    Alcotest.test_case "importance: keep all" `Quick test_importance_keep_all;
    Alcotest.test_case "importance: drop all" `Quick test_importance_drop_all;
    Alcotest.test_case "importance: unbiased" `Quick test_importance_unbiased_cut;
    Alcotest.test_case "importance: expected edges" `Quick test_importance_expected_edges;
    Alcotest.test_case "importance: reweighting" `Quick test_importance_digraph_weights_scaled;
    Alcotest.test_case "bk: preserves cuts" `Quick test_bk_preserves_cuts;
    Alcotest.test_case "bk: sparsifies dense weighted" `Quick test_bk_sparsifies_dense_weighted;
    Alcotest.test_case "bk: sketch shape" `Quick test_bk_sketch_size_matches_graph;
    Alcotest.test_case "bk: expected edges monotone" `Quick test_bk_expected_edges_formula;
    Alcotest.test_case "foreach sampler: cheaper than for-all" `Quick test_foreach_sampler_cheaper_than_forall;
    Alcotest.test_case "foreach sampler: per-cut accuracy" `Quick test_foreach_sampler_accuracy_on_fixed_cut;
    Alcotest.test_case "directed: for-all preserves cuts" `Quick test_directed_forall_preserves_cuts;
    Alcotest.test_case "directed: for-each graph-valued" `Quick test_directed_foreach_graph_valued;
    Alcotest.test_case "directed: param validation" `Quick test_directed_rejects_bad_params;
    Alcotest.test_case "imbalance: exact decomposition" `Quick test_imbalance_decomposition_exact;
    Alcotest.test_case "imbalance: delta additive" `Quick test_imbalance_delta_additive;
    Alcotest.test_case "imbalance: eulerian zero delta" `Quick test_imbalance_sketch_eulerian_zero_delta;
    Alcotest.test_case "imbalance: for-each accuracy" `Quick test_imbalance_sketch_accuracy;
    Alcotest.test_case "imbalance: exact on sparse" `Quick test_imbalance_sketch_exact_sampler_exact_answers;
    QCheck_alcotest.to_alcotest prop_imbalance_identity;
    Alcotest.test_case "median boost: improves success" `Quick test_median_boost_improves_success;
    Alcotest.test_case "median boost: size" `Quick test_median_boost_size_is_sum;
    QCheck_alcotest.to_alcotest prop_directed_sampler_unbiased;
  ]

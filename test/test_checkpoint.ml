(* Checkpoint layer: atomic snapshots survive round-trips bit-exactly,
   every kind of damage (bit flips, truncation, foreign signatures, stale
   generations) is rejected at load, and resumable sweeps reproduce the
   uninterrupted run's results byte-for-byte whatever happened to the
   snapshot in between. *)

open Dcs

let tmp_path () = Filename.temp_file "dcs_ckpt_test" ".ckpt"

let with_tmp f =
  let path = tmp_path () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let records_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (r1 : Checkpoint.record) (r2 : Checkpoint.record) ->
         r1.Checkpoint.index = r2.Checkpoint.index
         && r1.Checkpoint.payload = r2.Checkpoint.payload)
       a b

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- save/load round-trips --- *)

let test_roundtrip_basic () =
  with_tmp (fun path ->
      let records =
        [
          { Checkpoint.index = 0; payload = "alpha" };
          { Checkpoint.index = 3; payload = "" };
          { Checkpoint.index = 7; payload = "0x1.5bf0a8b145769p+1" };
        ]
      in
      Checkpoint.save ~path ~signature:"sig v1" records;
      match Checkpoint.load ~path ~signature:"sig v1" with
      | Ok got -> Alcotest.(check bool) "records round-trip" true (records_eq records got)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_roundtrip_binary_payloads () =
  (* Payloads with newlines, NULs and high bytes: the length-prefixed body
     format must carry them verbatim. *)
  with_tmp (fun path ->
      let records =
        [
          { Checkpoint.index = 1; payload = "line\nbreak\nand \000 nul" };
          { Checkpoint.index = 2; payload = String.init 64 (fun i -> Char.chr (255 - i)) };
        ]
      in
      Checkpoint.save ~path ~signature:"bin" records;
      match Checkpoint.load ~path ~signature:"bin" with
      | Ok got -> Alcotest.(check bool) "binary payloads intact" true (records_eq records got)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_save_overwrites_atomically () =
  with_tmp (fun path ->
      Checkpoint.save ~path ~signature:"s" [ { Checkpoint.index = 0; payload = "old" } ];
      Checkpoint.save ~path ~signature:"s" [ { Checkpoint.index = 0; payload = "new" } ];
      (match Checkpoint.load ~path ~signature:"s" with
      | Ok [ r ] -> Alcotest.(check string) "latest snapshot wins" "new" r.Checkpoint.payload
      | Ok rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs)
      | Error e -> Alcotest.failf "load failed: %s" e);
      Alcotest.(check bool)
        "no scratch file left behind" false
        (Sys.file_exists (path ^ ".tmp")))

let test_save_rejects_bad_indices () =
  with_tmp (fun path ->
      Alcotest.(check bool) "non-increasing indices rejected" true
        (try
           Checkpoint.save ~path ~signature:"s"
             [
               { Checkpoint.index = 3; payload = "a" };
               { Checkpoint.index = 3; payload = "b" };
             ];
           false
         with Invalid_argument _ -> true);
      Alcotest.(check bool) "negative index rejected" true
        (try
           Checkpoint.save ~path ~signature:"s" [ { Checkpoint.index = -1; payload = "a" } ];
           false
         with Invalid_argument _ -> true))

(* --- rejection at load --- *)

let test_load_missing_file () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "dcs_ckpt_nonexistent_xyz.ckpt" in
  match Checkpoint.load ~path ~signature:"s" with
  | Ok _ -> Alcotest.fail "loading a missing file should fail"
  | Error _ -> ()

let test_load_signature_mismatch () =
  with_tmp (fun path ->
      Checkpoint.save ~path ~signature:"seed=1 eps=0.3"
        [ { Checkpoint.index = 0; payload = "x" } ];
      match Checkpoint.load ~path ~signature:"seed=2 eps=0.3" with
      | Ok _ -> Alcotest.fail "foreign signature must be rejected"
      | Error e ->
          let contains_signature =
            let le = String.length e and lw = String.length "signature" in
            let rec scan i =
              i + lw <= le && (String.sub e i lw = "signature" || scan (i + 1))
            in
            scan 0
          in
          Alcotest.(check bool) "diagnostic mentions signature" true
            contains_signature)

let test_load_garbage_file () =
  with_tmp (fun path ->
      write_file path "not a checkpoint at all\n";
      match Checkpoint.load ~path ~signature:"s" with
      | Ok _ -> Alcotest.fail "garbage must be rejected"
      | Error _ -> ())

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.sub hay i ln = needle || scan (i + 1)) in
  scan 0

let test_load_forensic_diagnostics () =
  (* Rejection alone is not enough to debug a damaged snapshot in the
     field: the diagnostic must say where (byte offset) and what
     (expected-vs-actual CRC, promised-vs-found length). *)
  with_tmp (fun path ->
      Checkpoint.save ~path ~signature:"diag"
        [ { Checkpoint.index = 0; payload = "forensic payload" } ];
      let raw = read_file path in
      let b = Bytes.of_string raw in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x40));
      write_file path (Bytes.to_string b);
      (match Checkpoint.load ~path ~signature:"diag" with
      | Ok _ -> Alcotest.fail "flipped body byte must be rejected"
      | Error e ->
          Alcotest.(check bool) ("byte offset in: " ^ e) true
            (contains e "byte offset");
          Alcotest.(check bool) ("expected crc in: " ^ e) true
            (contains e "expected crc");
          Alcotest.(check bool) ("actual crc in: " ^ e) true (contains e "actual"));
      write_file path (String.sub raw 0 (String.length raw - 3));
      match Checkpoint.load ~path ~signature:"diag" with
      | Ok _ -> Alcotest.fail "truncated body must be rejected"
      | Error e ->
          Alcotest.(check bool) ("byte offset in: " ^ e) true
            (contains e "byte offset");
          Alcotest.(check bool) ("promised length in: " ^ e) true
            (contains e "promises");
          Alcotest.(check bool) ("found length in: " ^ e) true (contains e "found"))

(* --- qcheck properties: roundtrip identity, bit flips, truncation --- *)

let record_list_gen =
  (* Strictly increasing indices with arbitrary (possibly binary) payloads. *)
  QCheck.Gen.(
    let payload = string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40) in
    let* n = int_range 0 12 in
    let* gaps = list_repeat n (int_range 1 5) in
    let* payloads = list_repeat n payload in
    let _, idxs =
      List.fold_left (fun (acc, l) gap -> (acc + gap, (acc + gap) :: l)) (-1, []) gaps
    in
    return
      (List.map2
         (fun index payload -> { Checkpoint.index; payload })
         (List.rev idxs) payloads))

let record_list_arb =
  QCheck.make record_list_gen ~print:(fun rs ->
      String.concat ";"
        (List.map
           (fun (r : Checkpoint.record) ->
             Printf.sprintf "%d:%S" r.Checkpoint.index r.Checkpoint.payload)
           rs))

let prop_roundtrip_identity =
  QCheck.Test.make ~name:"checkpoint save/load is the identity" ~count:100
    record_list_arb (fun records ->
      with_tmp (fun path ->
          Checkpoint.save ~path ~signature:"prop" records;
          match Checkpoint.load ~path ~signature:"prop" with
          | Ok got -> records_eq records got
          | Error _ -> false))

let prop_single_bit_flip_rejected =
  QCheck.Test.make ~name:"any single-bit flip is rejected at load" ~count:100
    QCheck.(pair record_list_arb (pair small_nat small_nat))
    (fun (records, (byte_choice, bit)) ->
      with_tmp (fun path ->
          Checkpoint.save ~path ~signature:"prop" records;
          let raw = read_file path in
          let pos = byte_choice mod String.length raw in
          let b = Bytes.of_string raw in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (bit mod 8))));
          write_file path (Bytes.to_string b);
          match Checkpoint.load ~path ~signature:"prop" with
          | Ok _ -> false
          | Error _ -> true))

let prop_truncation_rejected =
  QCheck.Test.make ~name:"any truncation is rejected at load" ~count:100
    QCheck.(pair record_list_arb small_nat)
    (fun (records, cut_choice) ->
      with_tmp (fun path ->
          Checkpoint.save ~path ~signature:"prop" records;
          let raw = read_file path in
          (* Keep a strict prefix (possibly empty). *)
          let keep = cut_choice mod String.length raw in
          write_file path (String.sub raw 0 keep);
          match Checkpoint.load ~path ~signature:"prop" with
          | Ok _ -> false
          | Error _ -> true))

(* --- resumable sweeps --- *)

(* A deterministic trial: 2 draws off the task stream, encoded losslessly. *)
let trial ctx =
  let rng = ctx.Pool.rng in
  (Prng.bits64 rng, Prng.bits64 rng)

let encode (a, b) = Printf.sprintf "%Lx %Lx" a b

let decode s =
  try Scanf.sscanf s "%Lx %Lx" (fun a b -> Some (a, b))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let n = 19

let clean_run () =
  fst (Checkpoint.sweep ~encode ~decode ~rng:(Prng.create 401) ~n trial)

let test_sweep_interrupt_then_resume_identical () =
  with_tmp (fun path ->
      let expected = clean_run () in
      (match
         Checkpoint.sweep ~path ~signature:"s" ~resume:false ~block:4
           ~abort_after:6 ~encode ~decode ~rng:(Prng.create 401) ~n trial
       with
      | _ -> Alcotest.fail "abort_after should interrupt"
      | exception Checkpoint.Interrupted { completed_now; _ } ->
          Alcotest.(check int) "interrupted after two blocks" 8 completed_now);
      let vals, rep =
        Checkpoint.sweep ~path ~signature:"s" ~block:4 ~encode ~decode
          ~rng:(Prng.create 401) ~n trial
      in
      Alcotest.(check int) "trials restored from snapshot" 8 rep.Checkpoint.resumed;
      Alcotest.(check int) "only the rest recomputed" (n - 8) rep.Checkpoint.computed;
      Alcotest.(check bool) "resumed run bit-identical" true (vals = expected))

let test_sweep_corrupted_snapshot_recomputes_identical () =
  with_tmp (fun path ->
      let expected = clean_run () in
      let _ =
        Checkpoint.sweep ~path ~signature:"s" ~resume:false ~encode ~decode
          ~rng:(Prng.create 401) ~n trial
      in
      let raw = read_file path in
      let b = Bytes.of_string raw in
      let pos = Bytes.length b / 3 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
      write_file path (Bytes.to_string b);
      let vals, rep =
        Checkpoint.sweep ~path ~signature:"s" ~encode ~decode
          ~rng:(Prng.create 401) ~n trial
      in
      Alcotest.(check bool) "snapshot discarded" true (rep.Checkpoint.discarded <> None);
      Alcotest.(check int) "nothing resumed" 0 rep.Checkpoint.resumed;
      Alcotest.(check int) "everything recomputed" n rep.Checkpoint.computed;
      Alcotest.(check bool) "recomputed run bit-identical" true (vals = expected))

let test_sweep_undecodable_payload_discards_snapshot () =
  (* A snapshot whose payloads don't decode (e.g. written by an older
     encoding) must be discarded wholesale, not half-resumed. *)
  with_tmp (fun path ->
      let expected = clean_run () in
      Checkpoint.save ~path ~signature:"s"
        [
          { Checkpoint.index = 0; payload = "not hex at all" };
          { Checkpoint.index = 1; payload = "ffff eeee" };
        ];
      let vals, rep =
        Checkpoint.sweep ~path ~signature:"s" ~encode ~decode
          ~rng:(Prng.create 401) ~n trial
      in
      Alcotest.(check bool) "snapshot discarded" true (rep.Checkpoint.discarded <> None);
      Alcotest.(check int) "everything recomputed" n rep.Checkpoint.computed;
      Alcotest.(check bool) "results unaffected" true (vals = expected))

let test_sweep_out_of_range_index_discards_snapshot () =
  with_tmp (fun path ->
      let expected = clean_run () in
      Checkpoint.save ~path ~signature:"s"
        [ { Checkpoint.index = n + 5; payload = encode (1L, 2L) } ];
      let vals, rep =
        Checkpoint.sweep ~path ~signature:"s" ~encode ~decode
          ~rng:(Prng.create 401) ~n trial
      in
      Alcotest.(check bool) "snapshot discarded" true (rep.Checkpoint.discarded <> None);
      Alcotest.(check bool) "results unaffected" true (vals = expected))

let test_sweep_resume_false_starts_cold () =
  with_tmp (fun path ->
      let _ =
        Checkpoint.sweep ~path ~signature:"s" ~resume:false ~encode ~decode
          ~rng:(Prng.create 401) ~n trial
      in
      let _, rep =
        Checkpoint.sweep ~path ~signature:"s" ~resume:false ~encode ~decode
          ~rng:(Prng.create 401) ~n trial
      in
      Alcotest.(check int) "no trials resumed" 0 rep.Checkpoint.resumed;
      Alcotest.(check int) "all recomputed" n rep.Checkpoint.computed)

let test_sweep_supervision_composes_with_resume () =
  (* Crashing first attempts + an interrupt + a resume: the composition of
     every robustness layer still reproduces the clean run bit-for-bit. *)
  with_tmp (fun path ->
      let expected = clean_run () in
      let crashy ctx =
        if ctx.Pool.attempt = 0 && ctx.Pool.index mod 4 = 1 then failwith "flaky";
        trial ctx
      in
      (match
         Checkpoint.sweep ~path ~signature:"s" ~resume:false ~block:5
           ~abort_after:9 ~encode ~decode ~rng:(Prng.create 401) ~n crashy
       with
      | _ -> Alcotest.fail "abort_after should interrupt"
      | exception Checkpoint.Interrupted _ -> ());
      let vals, rep =
        Checkpoint.sweep ~path ~signature:"s" ~block:5 ~encode ~decode
          ~rng:(Prng.create 401) ~n crashy
      in
      Alcotest.(check bool) "some trials resumed" true (rep.Checkpoint.resumed > 0);
      Alcotest.(check bool) "crashes recovered" true (rep.Checkpoint.crashes > 0);
      Alcotest.(check bool) "supervised + resumed run bit-identical" true
        (vals = expected))

let suite =
  [
    Alcotest.test_case "checkpoint: save/load round-trip" `Quick test_roundtrip_basic;
    Alcotest.test_case "checkpoint: binary payloads intact" `Quick
      test_roundtrip_binary_payloads;
    Alcotest.test_case "checkpoint: overwrite is atomic, no scratch left" `Quick
      test_save_overwrites_atomically;
    Alcotest.test_case "checkpoint: bad indices rejected at save" `Quick
      test_save_rejects_bad_indices;
    Alcotest.test_case "checkpoint: missing file is an error" `Quick
      test_load_missing_file;
    Alcotest.test_case "checkpoint: signature mismatch rejected" `Quick
      test_load_signature_mismatch;
    Alcotest.test_case "checkpoint: load failures carry forensic diagnostics"
      `Quick test_load_forensic_diagnostics;
    Alcotest.test_case "checkpoint: garbage file rejected" `Quick
      test_load_garbage_file;
    QCheck_alcotest.to_alcotest prop_roundtrip_identity;
    QCheck_alcotest.to_alcotest prop_single_bit_flip_rejected;
    QCheck_alcotest.to_alcotest prop_truncation_rejected;
    Alcotest.test_case "sweep: interrupt + resume bit-identical" `Quick
      test_sweep_interrupt_then_resume_identical;
    Alcotest.test_case "sweep: corrupted snapshot recomputed identically" `Quick
      test_sweep_corrupted_snapshot_recomputes_identical;
    Alcotest.test_case "sweep: undecodable payloads discard snapshot" `Quick
      test_sweep_undecodable_payload_discards_snapshot;
    Alcotest.test_case "sweep: out-of-range index discards snapshot" `Quick
      test_sweep_out_of_range_index_discards_snapshot;
    Alcotest.test_case "sweep: resume:false starts cold" `Quick
      test_sweep_resume_false_starts_cold;
    Alcotest.test_case "sweep: supervision composes with resume" `Quick
      test_sweep_supervision_composes_with_resume;
  ]

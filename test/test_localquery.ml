open Dcs

let check_float = Alcotest.(check (float 1e-9))

(* --- Oracle --- *)

let triangle () = Ugraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0) ]

let test_oracle_degree () =
  let o = Oracle.create (triangle ()) in
  Alcotest.(check int) "degree" 2 (Oracle.degree o 0);
  Alcotest.(check int) "metered" 1 (Oracle.stats o).Oracle.degree_queries

let test_oracle_ith_neighbor () =
  let o = Oracle.create (triangle ()) in
  Alcotest.(check (option int)) "first neighbor" (Some 1) (Oracle.ith_neighbor o 0 0);
  Alcotest.(check (option int)) "second neighbor" (Some 2) (Oracle.ith_neighbor o 0 1);
  Alcotest.(check (option int)) "out of range" None (Oracle.ith_neighbor o 0 2);
  Alcotest.(check int) "3 edge queries" 3 (Oracle.stats o).Oracle.edge_queries

let test_oracle_adjacent () =
  let o = Oracle.create (triangle ()) in
  Alcotest.(check bool) "adjacent" true (Oracle.adjacent o 0 1);
  Alcotest.(check bool) "self" false (Oracle.adjacent o 0 0);
  Alcotest.(check int) "2 adjacency queries" 2 (Oracle.stats o).Oracle.adjacency_queries

let test_oracle_comm_bits () =
  let o = Oracle.create (triangle ()) in
  ignore (Oracle.degree o 0);
  ignore (Oracle.ith_neighbor o 0 0);
  ignore (Oracle.adjacent o 1 2);
  (* degree free, edge + adjacency cost 2 bits each (Lemma 5.6) *)
  Alcotest.(check int) "comm bits" 4 (Oracle.comm_bits o);
  Alcotest.(check int) "total queries" 3 (Oracle.total_queries o)

let test_oracle_reset () =
  let o = Oracle.create (triangle ()) in
  ignore (Oracle.degree o 0);
  Oracle.reset o;
  Alcotest.(check int) "reset" 0 (Oracle.total_queries o)

let test_oracle_memoization () =
  let o = Oracle.create ~memoize:true (triangle ()) in
  ignore (Oracle.ith_neighbor o 0 0);
  ignore (Oracle.ith_neighbor o 0 0);
  ignore (Oracle.ith_neighbor o 0 1);
  Alcotest.(check int) "repeat free" 2 (Oracle.stats o).Oracle.edge_queries;
  ignore (Oracle.adjacent o 0 1);
  ignore (Oracle.adjacent o 1 0);
  Alcotest.(check int) "symmetric pair memoized" 1 (Oracle.stats o).Oracle.adjacency_queries

let test_oracle_no_memoization_pays () =
  let o = Oracle.create (triangle ()) in
  ignore (Oracle.ith_neighbor o 0 0);
  ignore (Oracle.ith_neighbor o 0 0);
  Alcotest.(check int) "pays twice" 2 (Oracle.stats o).Oracle.edge_queries

(* --- Gxy (Figure 2 / Lemma 5.5) --- *)

let figure2_strings () =
  (* x = 000000100, y = 100010100 (paper's Figure 2). *)
  let of_string s =
    Array.init (String.length s) (fun i -> s.[i] = '1')
  in
  (of_string "000000100", of_string "100010100")

let test_gxy_figure2 () =
  let x, y = figure2_strings () in
  let g = Gxy.build ~x ~y in
  Alcotest.(check int) "n = 4l" 12 (Ugraph.n g);
  Alcotest.(check int) "m = 2N" 18 (Ugraph.m g);
  Alcotest.(check int) "INT" 1 (Bitstring.intersection_size x y);
  (* intersection at index 6 = (i=2, j=0): edges (a_2, b'_0), (b_2, a'_0) *)
  Alcotest.(check bool) "red edge 1" true
    (Ugraph.mem_edge g (Gxy.vertex ~side:3 Gxy.A 2) (Gxy.vertex ~side:3 Gxy.B' 0));
  Alcotest.(check bool) "red edge 2" true
    (Ugraph.mem_edge g (Gxy.vertex ~side:3 Gxy.B 2) (Gxy.vertex ~side:3 Gxy.A' 0));
  let mc, _ = Stoer_wagner.mincut g in
  check_float "mincut = 2 INT" 2.0 mc

let test_gxy_regular () =
  let rng = Prng.create 1 in
  let x = Bitstring.random rng 49 and y = Bitstring.random rng 49 in
  let g = Gxy.build ~x ~y in
  for v = 0 to (4 * 7) - 1 do
    Alcotest.(check int) "degree = sqrt N" 7 (Ugraph.degree g v)
  done

let test_gxy_classify_vertex_roundtrip () =
  let side = 5 in
  for v = 0 to (4 * side) - 1 do
    let cls, idx = Gxy.classify ~side v in
    Alcotest.(check int) "roundtrip" v (Gxy.vertex ~side cls idx)
  done

let test_gxy_witness_cut () =
  let rng = Prng.create 2 in
  let inst = Two_sum.generate rng ~t:8 ~len:32 ~alpha:2 ~frac_intersecting:0.2 in
  let x, y = Two_sum.concat_pair inst in
  let g = Gxy.build ~x ~y in
  let l = Gxy.side ~n:(Bitstring.length x) in
  let w = Ugraph.cut_value g (Gxy.witness_cut ~side:l) in
  check_float "witness = 2 INT" (float_of_int (2 * Bitstring.intersection_size x y)) w

let test_gxy_lemma55_random () =
  let rng = Prng.create 3 in
  for _ = 1 to 8 do
    let inst = Two_sum.generate rng ~t:16 ~len:16 ~alpha:1 ~frac_intersecting:0.15 in
    let x, y = Two_sum.concat_pair inst in
    match Gxy.predicted_mincut ~x ~y with
    | Some predicted ->
        let g = Gxy.build ~x ~y in
        let mc, _ = Stoer_wagner.mincut g in
        check_float "Lemma 5.5" (float_of_int predicted) mc
    | None -> ()
  done

let test_gxy_edge_disjoint_paths_cases () =
  (* The four case classes of Figures 3-6: every vertex pair admits at
     least 2γ edge-disjoint paths. *)
  let rng = Prng.create 4 in
  let inst = Two_sum.generate rng ~t:16 ~len:16 ~alpha:1 ~frac_intersecting:0.1 in
  let x, y = Two_sum.concat_pair inst in
  let g = Gxy.build ~x ~y in
  let gamma = Bitstring.intersection_size x y in
  let l = Gxy.side ~n:(Bitstring.length x) in
  if l >= 3 * gamma && gamma >= 1 then begin
    let pairs =
      [
        (Gxy.vertex ~side:l Gxy.A 0, Gxy.vertex ~side:l Gxy.A 1);   (* case 1 *)
        (Gxy.vertex ~side:l Gxy.A 0, Gxy.vertex ~side:l Gxy.A' 1);  (* case 2 *)
        (Gxy.vertex ~side:l Gxy.A 0, Gxy.vertex ~side:l Gxy.B' 2);  (* case 3 *)
        (Gxy.vertex ~side:l Gxy.A 0, Gxy.vertex ~side:l Gxy.B 3);   (* case 4 *)
      ]
    in
    List.iter
      (fun (u, v) ->
        Alcotest.(check bool) "2γ-connected pair" true
          (Dinic.edge_disjoint_paths g ~s:u ~t:v >= 2 * gamma))
      pairs
  end

let test_gxy_rejects_non_square () =
  let x = Bitstring.zeros 10 and y = Bitstring.zeros 10 in
  Alcotest.check_raises "not square"
    (Invalid_argument "Gxy: length must be a perfect square") (fun () ->
      ignore (Gxy.build ~x ~y))

(* --- Verify-guess --- *)

let planted seed =
  let rng = Prng.create seed in
  Dcs_graph.Generators.planted_mincut rng ~block:40 ~k:6 ~p_inner:0.5

let test_verify_guess_accepts_small_t () =
  let rng = Prng.create 5 in
  let g = planted 6 in
  let o = Oracle.create g in
  let degrees = Array.init (Ugraph.n g) (fun u -> Ugraph.degree g u) in
  let out = Verify_guess.run rng o ~degrees ~t:4.0 ~eps:0.5 in
  Alcotest.(check bool) "accepts t <= k" true out.Verify_guess.accepted;
  Alcotest.(check bool) "estimate near k" true
    (Float.abs (out.Verify_guess.estimate -. 6.0) <= 3.0)

let test_verify_guess_rejects_huge_t () =
  let rng = Prng.create 6 in
  let g = planted 7 in
  let o = Oracle.create g in
  let degrees = Array.init (Ugraph.n g) (fun u -> Ugraph.degree g u) in
  let out = Verify_guess.run rng o ~degrees ~t:5000.0 ~eps:0.5 in
  Alcotest.(check bool) "rejects t >> k" false out.Verify_guess.accepted

let test_verify_guess_query_scaling () =
  let rng = Prng.create 7 in
  let g = planted 8 in
  let o = Oracle.create g in
  let degrees = Array.init (Ugraph.n g) (fun u -> Ugraph.degree g u) in
  let q_small = (Verify_guess.run rng o ~degrees ~t:50.0 ~eps:1.0).Verify_guess.edge_queries in
  let q_large = (Verify_guess.run rng o ~degrees ~t:400.0 ~eps:1.0).Verify_guess.edge_queries in
  Alcotest.(check bool) "queries decrease with t" true (q_large < q_small)

let test_verify_guess_full_read_exact () =
  let rng = Prng.create 8 in
  let g = planted 9 in
  let o = Oracle.create g in
  let degrees = Array.init (Ugraph.n g) (fun u -> Ugraph.degree g u) in
  (* t = 1 forces p = 1: exact result. *)
  let out = Verify_guess.run rng o ~degrees ~t:1.0 ~eps:1.0 in
  check_float "p = 1" 1.0 out.Verify_guess.p;
  check_float "exact min cut" (Stoer_wagner.mincut_value g) out.Verify_guess.estimate

(* --- Estimator --- *)

let test_estimator_accuracy_modified () =
  let rng = Prng.create 9 in
  let g = planted 10 in
  let k = Stoer_wagner.mincut_value g in
  let o = Oracle.create ~memoize:true g in
  let r = Estimator.estimate rng o ~eps:0.5 ~mode:Estimator.Modified in
  Alcotest.(check bool) "within 50%" true
    (Float.abs (r.Estimator.estimate -. k) <= (0.5 *. k) +. 1e-9)

let test_estimator_accuracy_original () =
  let rng = Prng.create 10 in
  let g = planted 11 in
  let k = Stoer_wagner.mincut_value g in
  let o = Oracle.create ~memoize:true g in
  let r = Estimator.estimate rng o ~eps:0.5 ~mode:Estimator.Original in
  Alcotest.(check bool) "within 50%" true
    (Float.abs (r.Estimator.estimate -. k) <= (0.5 *. k) +. 1e-9)

let test_estimator_counts_degree_queries () =
  let rng = Prng.create 11 in
  let g = planted 12 in
  let o = Oracle.create ~memoize:true g in
  let r = Estimator.estimate rng o ~eps:1.0 ~mode:Estimator.Modified in
  Alcotest.(check int) "n degree queries" (Ugraph.n g) r.Estimator.degree_queries

let test_estimator_query_cap () =
  (* With memoization the total can never exceed degrees + all slots + ... *)
  let rng = Prng.create 12 in
  let g = planted 13 in
  let o = Oracle.create ~memoize:true g in
  let r = Estimator.estimate rng o ~eps:0.25 ~mode:Estimator.Original in
  let cap = Ugraph.n g + (2 * Ugraph.m g) in
  Alcotest.(check bool) "min{m, ...} ceiling" true (r.Estimator.total_queries <= cap)

let test_estimator_search_calls_logarithmic () =
  let rng = Prng.create 13 in
  let g = planted 14 in
  let o = Oracle.create ~memoize:true g in
  let r = Estimator.estimate rng o ~eps:1.0 ~mode:Estimator.Modified in
  (* min degree ~ 20; halving to ~k=6 takes <= ~6 calls *)
  Alcotest.(check bool) "few search calls" true (r.Estimator.search_calls <= 10)

let test_estimator_comm_bits_match () =
  let rng = Prng.create 14 in
  let g = planted 15 in
  let o = Oracle.create ~memoize:true g in
  let r = Estimator.estimate rng o ~eps:1.0 ~mode:Estimator.Modified in
  Alcotest.(check int) "2 bits per edge query" (2 * r.Estimator.edge_queries)
    r.Estimator.comm_bits

let test_verify_guess_middle_zone_sane () =
  (* k < t < κ·k: Lemma 5.8 promises nothing, but the implementation must
     still return a finite, nonnegative estimate and a coherent decision. *)
  let rng = Prng.create 18 in
  let g = planted 19 in
  let o = Oracle.create g in
  let degrees = Array.init (Ugraph.n g) (fun u -> Ugraph.degree g u) in
  List.iter
    (fun t ->
      let out = Verify_guess.run rng o ~degrees ~t ~eps:0.5 in
      Alcotest.(check bool) "finite estimate" true
        (Float.is_finite out.Verify_guess.estimate && out.Verify_guess.estimate >= 0.0);
      Alcotest.(check bool) "p in (0,1]" true
        (out.Verify_guess.p > 0.0 && out.Verify_guess.p <= 1.0))
    [ 10.0; 20.0; 40.0; 80.0 ]

(* --- the Lemma 5.6 reduction --- *)

let test_reduction_solves_two_sum () =
  let rng = Prng.create 15 in
  let inst = Two_sum.generate rng ~t:16 ~len:64 ~alpha:2 ~frac_intersecting:0.25 in
  let r = Reduction.solve_two_sum ~c0:1.0 rng inst ~eps:0.5 in
  (* additive error r·eps <= t·eps = 8 in the worst case; typically far less *)
  Alcotest.(check bool) "close to Σ DISJ" true (r.Reduction.additive_error <= 4.0);
  Alcotest.(check bool) "metered" true (r.Reduction.comm_bits > 0)

let test_reduction_rejects_bad_instances () =
  let rng = Prng.create 16 in
  (* massive intersection count violates √N >= 3·INT *)
  let inst = Two_sum.generate rng ~t:16 ~len:16 ~alpha:8 ~frac_intersecting:1.0 in
  Alcotest.check_raises "hypothesis checked"
    (Invalid_argument "Reduction.solve_two_sum: Lemma 5.5 hypothesis violated")
    (fun () -> ignore (Reduction.solve_two_sum rng inst ~eps:0.5))

let test_reduction_exact_at_full_read () =
  (* eps small enough forces a full read: the min cut is exact and the
     2-SUM answer is exactly Σ DISJ. *)
  let rng = Prng.create 17 in
  let inst = Two_sum.generate rng ~t:16 ~len:16 ~alpha:1 ~frac_intersecting:0.2 in
  let r = Reduction.solve_two_sum ~c0:50.0 rng inst ~eps:0.5 in
  Alcotest.(check (float 1e-9)) "exact" 0.0 r.Reduction.additive_error

(* qcheck: Lemma 5.5 on random promise instances. *)
(* --- Faulty oracle --- *)

let test_oracle_negative_index_raises () =
  (* Regression: a negative slot index is a caller bug, not query 0 — it
     must raise without touching the meters. *)
  let o = Oracle.create (triangle ()) in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Oracle.ith_neighbor: negative index") (fun () ->
      ignore (Oracle.ith_neighbor o 0 (-1)));
  Alcotest.(check int) "meters untouched" 0 (Oracle.total_queries o)

let test_faulty_oracle_disabled_bit_identical () =
  (* With Fault.disabled the wrapped estimator must be bit-identical to
     the unwrapped one: same estimate AND same metered query counts. *)
  let g = planted 20 in
  let run faulty_of =
    let rng = Prng.create 21 in
    let o = Oracle.create g in
    let r = Estimator.estimate ?faulty:(faulty_of o) rng o ~eps:0.5 ~mode:Estimator.Modified in
    (r.Estimator.estimate, r.Estimator.total_queries, r.Estimator.degree_queries,
     Oracle.comm_bits o)
  in
  let plain = run (fun _ -> None) in
  let fo = ref None in
  let wrapped =
    run (fun o ->
        let f = Faulty_oracle.create Fault.disabled o in
        fo := Some f;
        Some f)
  in
  Alcotest.(check bool) "identical (estimate, queries, bits)" true (plain = wrapped);
  let stats = Faulty_oracle.stats (Option.get !fo) in
  Alcotest.(check int) "no retries" 0 stats.Faulty_oracle.retries;
  Alcotest.(check int) "no backoff" 0 stats.Faulty_oracle.backoff_units

let test_faulty_oracle_timeout_exhausts () =
  (* Every query times out: the retry budget runs dry and the wrapper
     raises instead of silently answering. *)
  let rng = Prng.create 22 in
  let g = planted 23 in
  let o = Oracle.create g in
  let fault = Fault.create (Fault.policy ~timeout:1.0 ()) rng in
  let fo = Faulty_oracle.create ~retry_budget:3 fault o in
  (match Estimator.estimate ~faulty:fo rng o ~eps:1.0 ~mode:Estimator.Modified with
  | _ -> Alcotest.fail "estimator survived a fully dead oracle"
  | exception Faulty_oracle.Exhausted _ -> ());
  (* Timed-out queries were still issued and paid for. *)
  Alcotest.(check bool) "queries metered" true (Oracle.total_queries o > 0)

let test_faulty_oracle_wrapper_mismatch_rejected () =
  let g = planted 24 in
  let o = Oracle.create g in
  let other = Oracle.create g in
  let fo = Faulty_oracle.create Fault.disabled other in
  Alcotest.check_raises "wrapper must wrap the given oracle"
    (Invalid_argument "Estimator.estimate: faulty wrapper must wrap the given oracle")
    (fun () ->
      ignore (Estimator.estimate ~faulty:fo (Prng.create 0) o ~eps:1.0
                ~mode:Estimator.Modified))

let test_faulty_oracle_majority_vote_domain_independent () =
  (* The majority-vote estimator fans trials over domains; explicit domain
     counts (not the DCS_DOMAINS env) so the test pins 1 vs 4 regardless
     of environment. Results must be bit-identical. *)
  let g = planted 25 in
  let trial t =
    let rng = Prng.create (1000 + t) in
    let o = Oracle.create g in
    let fault = Fault.create (Fault.policy ~timeout:0.1 ~lie:0.05 ()) rng in
    let fo = Faulty_oracle.create fault o in
    match Estimator.estimate ~faulty:fo rng o ~eps:1.0 ~mode:Estimator.Modified with
    | r ->
        let s = Faulty_oracle.stats fo in
        (r.Estimator.estimate, r.Estimator.total_queries,
         s.Faulty_oracle.retries, s.Faulty_oracle.votes_cast)
    | exception Faulty_oracle.Exhausted _ -> (-1.0, 0, 0, 0)
  in
  let seq = Pool.parallel_init ~domains:1 ~n:6 trial in
  let par = Pool.parallel_init ~domains:4 ~n:6 trial in
  Alcotest.(check bool) "1 domain = 4 domains" true (seq = par);
  Alcotest.(check bool) "votes were cast" true
    (Array.exists (fun (_, _, _, v) -> v > 0) seq)

let test_verify_guess_exhausted_end_to_end () =
  (* A fully dead oracle under VERIFY-GUESS: Exhausted must surface to the
     caller (no silent acceptance/rejection), and the timed-out attempts
     were still issued, so the query meter is charged. *)
  let rng = Prng.create 26 in
  let g = planted 27 in
  let o = Oracle.create g in
  let degrees = Array.init (Ugraph.n g) (fun u -> Ugraph.degree g u) in
  let fault = Fault.create (Fault.policy ~timeout:1.0 ()) rng in
  let fo = Faulty_oracle.create ~retry_budget:3 fault o in
  (match Verify_guess.run ~faulty:fo rng o ~degrees ~t:4.0 ~eps:0.5 with
  | _ -> Alcotest.fail "verify-guess survived a fully dead oracle"
  | exception Faulty_oracle.Exhausted _ -> ());
  Alcotest.(check bool) "dead attempts still metered" true
    (Oracle.total_queries o > 0);
  Alcotest.(check bool) "retries recorded" true
    ((Faulty_oracle.stats fo).Faulty_oracle.retries > 0)

let test_verify_guess_timeout_recovery_bit_identical () =
  (* Timeouts below the exhaustion threshold: retries eventually deliver
     the true answer, so the decision and estimate are bit-identical to
     the fault-free run — only the oracle meters pay for the recovery. *)
  let g = planted 28 in
  let degrees_of o = Array.init (Oracle.n o) (fun u -> Oracle.degree o u) in
  let clean =
    let o = Oracle.create g in
    let out = Verify_guess.run (Prng.create 29) o ~degrees:(degrees_of o) ~t:4.0 ~eps:0.5 in
    (out.Verify_guess.accepted, out.Verify_guess.estimate, out.Verify_guess.edge_queries)
  in
  let o = Oracle.create g in
  let fault = Fault.create (Fault.policy ~timeout:0.3 ()) (Prng.create 30) in
  let fo = Faulty_oracle.create ~retry_budget:16 fault o in
  let degrees = degrees_of o in
  let physical_before = Oracle.total_queries o in
  let out = Verify_guess.run ~faulty:fo (Prng.create 29) o ~degrees ~t:4.0 ~eps:0.5 in
  Alcotest.(check bool) "outcome bit-identical under recovered timeouts" true
    (clean
    = (out.Verify_guess.accepted, out.Verify_guess.estimate, out.Verify_guess.edge_queries));
  let retries = (Faulty_oracle.stats fo).Faulty_oracle.retries in
  Alcotest.(check bool) "recovery forced retries" true (retries > 0);
  Alcotest.(check int) "every retry hit the meter"
    (out.Verify_guess.edge_queries + retries)
    (Oracle.total_queries o - physical_before)

let prop_lemma55 =
  QCheck.Test.make ~name:"Lemma 5.5: MINCUT = 2·INT" ~count:10
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let inst = Two_sum.generate rng ~t:16 ~len:16 ~alpha:1 ~frac_intersecting:0.12 in
      let x, y = Two_sum.concat_pair inst in
      match Gxy.predicted_mincut ~x ~y with
      | None -> true
      | Some predicted ->
          let g = Gxy.build ~x ~y in
          Float.abs (Stoer_wagner.mincut_value g -. float_of_int predicted) < 1e-9)

let suite =
  [
    Alcotest.test_case "oracle: degree" `Quick test_oracle_degree;
    Alcotest.test_case "oracle: ith neighbor" `Quick test_oracle_ith_neighbor;
    Alcotest.test_case "oracle: adjacent" `Quick test_oracle_adjacent;
    Alcotest.test_case "oracle: comm bits (Lemma 5.6)" `Quick test_oracle_comm_bits;
    Alcotest.test_case "oracle: reset" `Quick test_oracle_reset;
    Alcotest.test_case "oracle: memoization" `Quick test_oracle_memoization;
    Alcotest.test_case "oracle: no memoization pays" `Quick test_oracle_no_memoization_pays;
    Alcotest.test_case "gxy: Figure 2 instance" `Quick test_gxy_figure2;
    Alcotest.test_case "gxy: regular" `Quick test_gxy_regular;
    Alcotest.test_case "gxy: classify roundtrip" `Quick test_gxy_classify_vertex_roundtrip;
    Alcotest.test_case "gxy: witness cut" `Quick test_gxy_witness_cut;
    Alcotest.test_case "gxy: Lemma 5.5 random" `Quick test_gxy_lemma55_random;
    Alcotest.test_case "gxy: 2γ-connectivity (Figs 3-6)" `Quick test_gxy_edge_disjoint_paths_cases;
    Alcotest.test_case "gxy: rejects non-square" `Quick test_gxy_rejects_non_square;
    Alcotest.test_case "verify-guess: accepts small t" `Quick test_verify_guess_accepts_small_t;
    Alcotest.test_case "verify-guess: rejects huge t" `Quick test_verify_guess_rejects_huge_t;
    Alcotest.test_case "verify-guess: query scaling" `Quick test_verify_guess_query_scaling;
    Alcotest.test_case "verify-guess: full read exact" `Quick test_verify_guess_full_read_exact;
    Alcotest.test_case "estimator: modified accuracy" `Quick test_estimator_accuracy_modified;
    Alcotest.test_case "estimator: original accuracy" `Quick test_estimator_accuracy_original;
    Alcotest.test_case "estimator: degree queries" `Quick test_estimator_counts_degree_queries;
    Alcotest.test_case "estimator: query ceiling" `Quick test_estimator_query_cap;
    Alcotest.test_case "estimator: search calls" `Quick test_estimator_search_calls_logarithmic;
    Alcotest.test_case "estimator: comm bits" `Quick test_estimator_comm_bits_match;
    Alcotest.test_case "verify-guess: middle zone sane" `Quick test_verify_guess_middle_zone_sane;
    Alcotest.test_case "reduction: solves 2-SUM" `Quick test_reduction_solves_two_sum;
    Alcotest.test_case "reduction: hypothesis check" `Quick test_reduction_rejects_bad_instances;
    Alcotest.test_case "reduction: exact at full read" `Quick test_reduction_exact_at_full_read;
    Alcotest.test_case "oracle: negative index raises" `Quick test_oracle_negative_index_raises;
    Alcotest.test_case "faulty-oracle: disabled bit-identical" `Quick test_faulty_oracle_disabled_bit_identical;
    Alcotest.test_case "faulty-oracle: timeout exhausts" `Quick test_faulty_oracle_timeout_exhausts;
    Alcotest.test_case "faulty-oracle: wrapper mismatch" `Quick test_faulty_oracle_wrapper_mismatch_rejected;
    Alcotest.test_case "faulty-oracle: vote domain-independent" `Quick test_faulty_oracle_majority_vote_domain_independent;
    Alcotest.test_case "verify-guess: exhaustion reaches caller" `Quick test_verify_guess_exhausted_end_to_end;
    Alcotest.test_case "verify-guess: timeout recovery bit-identical" `Quick test_verify_guess_timeout_recovery_bit_identical;
    QCheck_alcotest.to_alcotest prop_lemma55;
  ]

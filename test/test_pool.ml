(* The parallel trial engine's regression net: (a) parallel == sequential
   for every domain count we care about, (b) seed-split streams are
   reproducible and pairwise non-colliding, (c) exceptions raised inside a
   domain propagate to the caller instead of hanging or vanishing. *)

open Dcs

let domain_counts = [ 1; 2; 4 ]

(* --- (a) parallel results equal sequential results --- *)

let test_parallel_init_matches_sequential () =
  let f i = (i * 31) + (i mod 7) in
  let expected = Array.init 103 f in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" d)
        expected
        (Pool.parallel_init ~domains:d ~n:103 f))
    domain_counts

let test_parallel_init_edge_sizes () =
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "n=0, domains=%d" d)
        [||]
        (Pool.parallel_init ~domains:d ~n:0 (fun i -> i));
      Alcotest.(check (array int))
        (Printf.sprintf "n=1, domains=%d" d)
        [| 0 |]
        (Pool.parallel_init ~domains:d ~n:1 (fun i -> i));
      (* more domains than tasks *)
      Alcotest.(check (array int))
        (Printf.sprintf "n=3, domains=%d" d)
        [| 0; 2; 4 |]
        (Pool.parallel_init ~domains:d ~n:3 (fun i -> 2 * i)))
    domain_counts

let test_parallel_map_matches_sequential () =
  let xs = Array.init 57 (fun i -> float_of_int i /. 3.0) in
  let f x = (x *. x) -. 1.5 in
  let expected = Array.map f xs in
  List.iter
    (fun d ->
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "domains=%d" d)
        expected
        (Pool.parallel_map ~domains:d f xs))
    domain_counts

let test_parallel_init_sum_bit_identical () =
  (* Terms of wildly different magnitudes: any reassociation of the float
     sum would show up as an inequality under exact comparison. *)
  let f i = Float.ldexp 1.0 ((i mod 40) - 20) +. (float_of_int i *. 1e-7) in
  let seq = ref 0.0 in
  for i = 0 to 999 do
    seq := !seq +. f i
  done;
  List.iter
    (fun d ->
      let par = Pool.parallel_init_sum ~domains:d ~n:1000 f in
      Alcotest.(check bool)
        (Printf.sprintf "exactly equal at domains=%d" d)
        true
        (Float.equal !seq par))
    domain_counts

(* The wired-through trial loops: the same seed must give byte-identical
   stats at every domain count. *)

let test_foreach_trials_domain_invariant () =
  let p = Foreach_lb.make_params ~beta:1 ~inv_eps:4 16 in
  let stats d =
    Foreach_lb.run_trials ~domains:d (Prng.create 42) p
      ~sketch_of:(fun _ inst -> Exact_sketch.create inst.Foreach_lb.graph)
      ~trials:6 ~bits_per_trial:10
  in
  let reference = stats 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "identical stats at domains=%d" d)
        true
        (stats d = reference))
    domain_counts

let test_forall_trials_domain_invariant () =
  let p = Forall_lb.make_params ~beta:1 ~inv_eps_sq:8 16 in
  let stats d =
    Forall_lb.run_trials ~domains:d (Prng.create 43) p
      ~sketch_of:(fun _ inst -> Exact_sketch.create inst.Forall_lb.graph)
      ~decoder:`Topk ~trials:8
  in
  let reference = stats 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "identical stats at domains=%d" d)
        true
        (stats d = reference))
    domain_counts

let test_karger_domain_invariant () =
  let g =
    Generators.erdos_renyi_connected (Prng.create 44) ~n:40 ~p:0.15
  in
  let run d = Karger.mincut ~domains:d (Prng.create 45) ~trials:24 g in
  let v1, c1 = run 1 in
  List.iter
    (fun d ->
      let v, c = run d in
      Alcotest.(check (float 0.0)) (Printf.sprintf "value, domains=%d" d) v1 v;
      Alcotest.(check bool)
        (Printf.sprintf "cut, domains=%d" d)
        true (Cut.equal c1 c))
    domain_counts;
  let cands d =
    Karger.candidate_cuts ~domains:d (Prng.create 46) ~trials:30 ~factor:2.0 g
    |> List.map (fun (v, c) -> (v, Cut.to_list c))
  in
  let reference = cands 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "candidates, domains=%d" d)
        true
        (cands d = reference))
    domain_counts

let test_karger_stein_domain_invariant () =
  let g =
    Generators.erdos_renyi_connected (Prng.create 47) ~n:24 ~p:0.25
  in
  let run d = Karger_stein.mincut ~domains:d ~runs:6 (Prng.create 48) g in
  let v1, c1 = run 1 in
  List.iter
    (fun d ->
      let v, c = run d in
      Alcotest.(check (float 0.0)) (Printf.sprintf "value, domains=%d" d) v1 v;
      Alcotest.(check bool)
        (Printf.sprintf "cut, domains=%d" d)
        true (Cut.equal c1 c))
    domain_counts

(* --- (b) seed-split streams: reproducible, parent-preserving, disjoint --- *)

let test_split_reproducible () =
  let draws g = Array.init 16 (fun _ -> Prng.bits64 g) in
  let parent = Prng.create 7 in
  let a = draws (Prng.split parent 5) in
  let b = draws (Prng.split parent 5) in
  Alcotest.(check (array int64)) "same index, same stream" a b

let test_split_pure_in_parent () =
  let a = Prng.create 11 and b = Prng.create 11 in
  for i = 0 to 9 do
    ignore (Prng.split a i)
  done;
  for _ = 1 to 50 do
    Alcotest.(check int64) "parent unchanged by split" (Prng.bits64 b)
      (Prng.bits64 a)
  done

let test_split_streams_pairwise_non_colliding () =
  let parent = Prng.create 13 in
  let children = 64 and draws = 8 in
  (* All (child, draw) outputs distinct: 512 values of 64 bits colliding
     would be a one-in-10^13 event for independent streams, and any
     systematic overlap between sibling streams lands here immediately. *)
  let seen = Hashtbl.create (children * draws) in
  for i = 0 to children - 1 do
    let g = Prng.split parent i in
    for _ = 1 to draws do
      let v = Prng.bits64 g in
      Alcotest.(check bool)
        (Printf.sprintf "no collision (child %d)" i)
        false (Hashtbl.mem seen v);
      Hashtbl.replace seen v ()
    done
  done

let test_split_differs_from_parent_continuation () =
  let parent = Prng.create 17 in
  let child = Prng.split parent 0 in
  let xs = Array.init 32 (fun _ -> Prng.bits64 parent) in
  let ys = Array.init 32 (fun _ -> Prng.bits64 child) in
  Alcotest.(check bool) "child is not the parent stream" true (xs <> ys)

let test_split_rejects_negative () =
  let g = Prng.create 19 in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.split: index must be nonnegative") (fun () ->
      ignore (Prng.split g (-1)))

(* --- (c) exception propagation --- *)

let test_exception_propagates () =
  (* Worker exceptions surface as Task_failed carrying the failing task's
     index and the original exception — not a bare re-raise. *)
  List.iter
    (fun d ->
      match
        Pool.parallel_init ~domains:d ~n:16 (fun i ->
            if i = 11 then failwith "boom" else i)
      with
      | _ -> Alcotest.failf "no exception at domains=%d" d
      | exception Pool.Task_failed { index; exn; _ } ->
          Alcotest.(check int)
            (Printf.sprintf "failing index at domains=%d" d)
            11 index;
          Alcotest.(check bool)
            (Printf.sprintf "original exn preserved at domains=%d" d)
            true
            (exn = Failure "boom"))
    domain_counts

let test_exception_reports_lowest_index () =
  (* Several failing tasks: the reported one is the lowest index, at every
     domain count — chunks are ascending and the caller prefers the
     earliest chunk's failure, so the abort point is deterministic. *)
  List.iter
    (fun d ->
      match
        Pool.parallel_init ~domains:d ~n:32 (fun i ->
            if i mod 7 = 5 then failwith "multi" else i)
      with
      | _ -> Alcotest.failf "no exception at domains=%d" d
      | exception Pool.Task_failed { index; _ } ->
          Alcotest.(check int)
            (Printf.sprintf "lowest failing index at domains=%d" d)
            5 index)
    domain_counts

let test_exception_joins_all_domains () =
  (* A failure in the calling domain's chunk must still join the spawned
     domains: every task outside the failing one has run (its side effect
     is visible) by the time the exception reaches the caller. With 16
     tasks on 4 domains the calling domain owns tasks 0-3, so failing at
     task 3 leaves the other 15 tasks complete. *)
  let hit = Array.make 16 0 in
  (try
     ignore
       (Pool.parallel_init ~domains:4 ~n:16 (fun i ->
            if i = 3 then failwith "early";
            hit.(i) <- 1;
            i))
   with Pool.Task_failed _ -> ());
  let finished = Array.fold_left ( + ) 0 hit in
  Alcotest.(check int) "all other tasks completed" 15 finished

let test_domain_count_positive () =
  Alcotest.(check bool) "at least one domain" true (Pool.domain_count () >= 1)

(* --- (d) supervised runs: crash/hang recovery, determinism, poisoning --- *)

(* The reference a supervised run must reproduce bit-for-bit: trial i's
   value is a pure function of the task stream split(split(master, i), 0),
   whatever the domain count, restart pattern or faults injected. *)
let reference_values ~seed n =
  let master = Prng.create seed in
  Array.init n (fun i ->
      let rng = Prng.split (Prng.split master i) 0 in
      Array.init 4 (fun _ -> Prng.bits64 rng))

let trial_value ctx =
  let rng = ctx.Pool.rng in
  Array.init 4 (fun _ -> Prng.bits64 rng)

let test_supervised_clean_matches_reference () =
  let n = 23 in
  let expected = reference_values ~seed:301 n in
  List.iter
    (fun d ->
      let vals, rep =
        Pool.run_supervised ~domains:d ~rng:(Prng.create 301) ~n trial_value
      in
      Alcotest.(check bool)
        (Printf.sprintf "values match streams at domains=%d" d)
        true (vals = expected);
      Alcotest.(check int) "no crashes" 0 rep.Pool.crashes;
      Alcotest.(check int) "no restarts" 0 rep.Pool.restarts;
      Alcotest.(check int) "one round" 1 rep.Pool.rounds)
    domain_counts

let test_supervised_crash_recovery_bit_identical () =
  (* Tasks 4, 9 and 14 crash on their first attempt (attempt-dependent
     failure, like a real transient fault); the supervisor re-executes them
     and the final results are bit-identical to the clean reference, at
     every domain count. *)
  let n = 17 in
  let expected = reference_values ~seed:302 n in
  List.iter
    (fun d ->
      let vals, rep =
        Pool.run_supervised ~domains:d ~rng:(Prng.create 302) ~n (fun ctx ->
            if ctx.Pool.attempt = 0 && ctx.Pool.index mod 5 = 4 then
              failwith "transient";
            trial_value ctx)
      in
      Alcotest.(check bool)
        (Printf.sprintf "recovered values bit-identical at domains=%d" d)
        true (vals = expected);
      Alcotest.(check int)
        (Printf.sprintf "crashes counted at domains=%d" d)
        3 rep.Pool.crashes;
      Alcotest.(check int)
        (Printf.sprintf "restarts counted at domains=%d" d)
        3 rep.Pool.restarts;
      Alcotest.(check int)
        (Printf.sprintf "two rounds at domains=%d" d)
        2 rep.Pool.rounds;
      Alcotest.(check int)
        (Printf.sprintf "failures reported at domains=%d" d)
        3
        (List.length rep.Pool.failures);
      List.iter
        (fun (f : Pool.failure) ->
          Alcotest.(check int)
            "failure recorded for a crashing index" 4
            (f.Pool.failed_index mod 5);
          Alcotest.(check bool) "crash, not hang" false f.Pool.hung)
        rep.Pool.failures)
    domain_counts

let test_supervised_repeated_crashes_within_budget () =
  (* A task that fails its first three attempts still completes when the
     budget allows, and the value is unchanged. *)
  let n = 6 in
  let expected = reference_values ~seed:303 n in
  let vals, rep =
    Pool.run_supervised ~restart_budget:3 ~rng:(Prng.create 303) ~n (fun ctx ->
        if ctx.Pool.index = 2 && ctx.Pool.attempt < 3 then failwith "stubborn";
        trial_value ctx)
  in
  Alcotest.(check bool) "value survives three restarts" true (vals = expected);
  Alcotest.(check int) "three crashes" 3 rep.Pool.crashes;
  Alcotest.(check int) "four rounds" 4 rep.Pool.rounds

let test_supervised_hang_recovery () =
  (* Task 3 "hangs" on its first attempt: it spins polling [guard] until
     the deadline cancels it. The supervisor re-runs it and the sweep
     completes bit-identically to the clean reference. *)
  let n = 8 in
  let expected = reference_values ~seed:304 n in
  let vals, rep =
    Pool.run_supervised ~deadline:0.01 ~rng:(Prng.create 304) ~n (fun ctx ->
        if ctx.Pool.index = 3 && ctx.Pool.attempt = 0 then
          while true do
            Pool.guard ctx
          done;
        trial_value ctx)
  in
  Alcotest.(check bool) "values bit-identical after hang" true (vals = expected);
  Alcotest.(check int) "one hang" 1 rep.Pool.hangs;
  Alcotest.(check int) "no crashes" 0 rep.Pool.crashes;
  (match rep.Pool.failures with
  | [ f ] ->
      Alcotest.(check int) "hung index" 3 f.Pool.failed_index;
      Alcotest.(check bool) "flagged as hang" true f.Pool.hung
  | fs -> Alcotest.failf "expected 1 failure, got %d" (List.length fs))

let test_supervised_poisoned () =
  (* A deterministic failure exhausts the restart budget and surfaces as
     Poisoned with the right index and attempt count. *)
  match
    Pool.run_supervised ~restart_budget:2 ~rng:(Prng.create 305) ~n:9
      (fun ctx ->
        if ctx.Pool.index = 7 then failwith "always";
        trial_value ctx)
  with
  | _ -> Alcotest.fail "expected Poisoned"
  | exception Pool.Poisoned { index; attempts; last } ->
      Alcotest.(check int) "poisoned index" 7 index;
      Alcotest.(check int) "budget+1 attempts" 3 attempts;
      Alcotest.(check int) "last failure index" 7 last.Pool.failed_index

let test_supervised_attempt_stream_fresh_per_attempt () =
  (* ctx.rng is the same stream on every attempt (values must not depend
     on the restart pattern); ctx.attempt_rng is fresh per attempt (so
     retry-dependent decisions can differ). Record both across a forced
     restart. *)
  let seen = Array.make 2 None in
  let _, _ =
    Pool.run_supervised ~rng:(Prng.create 306) ~n:1 (fun ctx ->
        let task_draw = Prng.bits64 ctx.Pool.rng in
        let attempt_draw = Prng.bits64 ctx.Pool.attempt_rng in
        seen.(ctx.Pool.attempt) <- Some (task_draw, attempt_draw);
        if ctx.Pool.attempt = 0 then failwith "once";
        [||])
  in
  match (seen.(0), seen.(1)) with
  | Some (t0, a0), Some (t1, a1) ->
      Alcotest.(check int64) "task stream identical across attempts" t0 t1;
      Alcotest.(check bool) "attempt stream fresh per attempt" true (a0 <> a1)
  | _ -> Alcotest.fail "both attempts should have recorded draws"

let test_supervised_indices_subset_matches_full_run () =
  (* Computing a subset of indices (what a checkpoint resume does) yields
     exactly the full run's values at those indices. *)
  let n = 15 in
  let expected = reference_values ~seed:307 n in
  let indices = [| 2; 3; 7; 11; 14 |] in
  let vals, _ =
    Pool.run_supervised_on ~rng:(Prng.create 307) ~indices trial_value
  in
  Array.iteri
    (fun slot idx ->
      Alcotest.(check bool)
        (Printf.sprintf "index %d matches full run" idx)
        true
        (vals.(slot) = expected.(idx)))
    indices

let test_fingerprint_pure_and_distinguishing () =
  let g = Prng.create 308 in
  let fp1 = Prng.fingerprint g in
  let fp2 = Prng.fingerprint g in
  Alcotest.(check int64) "fingerprint does not advance the stream" fp1 fp2;
  let before = Prng.bits64 (Prng.create 308) in
  let after = Prng.bits64 g in
  Alcotest.(check int64) "stream untouched by fingerprinting" before after;
  Alcotest.(check bool) "sibling streams fingerprint differently" true
    (Prng.fingerprint (Prng.split g 0) <> Prng.fingerprint (Prng.split g 1))

let suite =
  [
    Alcotest.test_case "pool: parallel_init = sequential" `Quick
      test_parallel_init_matches_sequential;
    Alcotest.test_case "pool: edge sizes" `Quick test_parallel_init_edge_sizes;
    Alcotest.test_case "pool: parallel_map = sequential" `Quick
      test_parallel_map_matches_sequential;
    Alcotest.test_case "pool: sum bit-identical across domains" `Quick
      test_parallel_init_sum_bit_identical;
    Alcotest.test_case "pool: foreach_lb trials domain-invariant" `Quick
      test_foreach_trials_domain_invariant;
    Alcotest.test_case "pool: forall_lb trials domain-invariant" `Quick
      test_forall_trials_domain_invariant;
    Alcotest.test_case "pool: karger domain-invariant" `Quick
      test_karger_domain_invariant;
    Alcotest.test_case "pool: karger-stein domain-invariant" `Quick
      test_karger_stein_domain_invariant;
    Alcotest.test_case "prng: split reproducible" `Quick test_split_reproducible;
    Alcotest.test_case "prng: split leaves parent untouched" `Quick
      test_split_pure_in_parent;
    Alcotest.test_case "prng: split streams non-colliding" `Quick
      test_split_streams_pairwise_non_colliding;
    Alcotest.test_case "prng: split differs from parent" `Quick
      test_split_differs_from_parent_continuation;
    Alcotest.test_case "prng: split rejects negative index" `Quick
      test_split_rejects_negative;
    Alcotest.test_case "pool: exceptions propagate as Task_failed" `Quick
      test_exception_propagates;
    Alcotest.test_case "pool: lowest failing index reported" `Quick
      test_exception_reports_lowest_index;
    Alcotest.test_case "pool: failing chunk still joins the rest" `Quick
      test_exception_joins_all_domains;
    Alcotest.test_case "pool: domain_count positive" `Quick
      test_domain_count_positive;
    Alcotest.test_case "supervise: clean run matches split streams" `Quick
      test_supervised_clean_matches_reference;
    Alcotest.test_case "supervise: crash recovery bit-identical" `Quick
      test_supervised_crash_recovery_bit_identical;
    Alcotest.test_case "supervise: repeated crashes within budget" `Quick
      test_supervised_repeated_crashes_within_budget;
    Alcotest.test_case "supervise: hang cancelled and re-run" `Quick
      test_supervised_hang_recovery;
    Alcotest.test_case "supervise: budget exhaustion poisons" `Quick
      test_supervised_poisoned;
    Alcotest.test_case "supervise: task stream stable, attempt stream fresh"
      `Quick test_supervised_attempt_stream_fresh_per_attempt;
    Alcotest.test_case "supervise: subset run matches full run" `Quick
      test_supervised_indices_subset_matches_full_run;
    Alcotest.test_case "prng: fingerprint pure and distinguishing" `Quick
      test_fingerprint_pure_and_distinguishing;
  ]

(* The parallel trial engine's regression net: (a) parallel == sequential
   for every domain count we care about, (b) seed-split streams are
   reproducible and pairwise non-colliding, (c) exceptions raised inside a
   domain propagate to the caller instead of hanging or vanishing. *)

open Dcs

let domain_counts = [ 1; 2; 4 ]

(* --- (a) parallel results equal sequential results --- *)

let test_parallel_init_matches_sequential () =
  let f i = (i * 31) + (i mod 7) in
  let expected = Array.init 103 f in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d" d)
        expected
        (Pool.parallel_init ~domains:d ~n:103 f))
    domain_counts

let test_parallel_init_edge_sizes () =
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "n=0, domains=%d" d)
        [||]
        (Pool.parallel_init ~domains:d ~n:0 (fun i -> i));
      Alcotest.(check (array int))
        (Printf.sprintf "n=1, domains=%d" d)
        [| 0 |]
        (Pool.parallel_init ~domains:d ~n:1 (fun i -> i));
      (* more domains than tasks *)
      Alcotest.(check (array int))
        (Printf.sprintf "n=3, domains=%d" d)
        [| 0; 2; 4 |]
        (Pool.parallel_init ~domains:d ~n:3 (fun i -> 2 * i)))
    domain_counts

let test_parallel_map_matches_sequential () =
  let xs = Array.init 57 (fun i -> float_of_int i /. 3.0) in
  let f x = (x *. x) -. 1.5 in
  let expected = Array.map f xs in
  List.iter
    (fun d ->
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "domains=%d" d)
        expected
        (Pool.parallel_map ~domains:d f xs))
    domain_counts

let test_parallel_init_sum_bit_identical () =
  (* Terms of wildly different magnitudes: any reassociation of the float
     sum would show up as an inequality under exact comparison. *)
  let f i = Float.ldexp 1.0 ((i mod 40) - 20) +. (float_of_int i *. 1e-7) in
  let seq = ref 0.0 in
  for i = 0 to 999 do
    seq := !seq +. f i
  done;
  List.iter
    (fun d ->
      let par = Pool.parallel_init_sum ~domains:d ~n:1000 f in
      Alcotest.(check bool)
        (Printf.sprintf "exactly equal at domains=%d" d)
        true
        (Float.equal !seq par))
    domain_counts

(* The wired-through trial loops: the same seed must give byte-identical
   stats at every domain count. *)

let test_foreach_trials_domain_invariant () =
  let p = Foreach_lb.make_params ~beta:1 ~inv_eps:4 16 in
  let stats d =
    Foreach_lb.run_trials ~domains:d (Prng.create 42) p
      ~sketch_of:(fun _ inst -> Exact_sketch.create inst.Foreach_lb.graph)
      ~trials:6 ~bits_per_trial:10
  in
  let reference = stats 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "identical stats at domains=%d" d)
        true
        (stats d = reference))
    domain_counts

let test_forall_trials_domain_invariant () =
  let p = Forall_lb.make_params ~beta:1 ~inv_eps_sq:8 16 in
  let stats d =
    Forall_lb.run_trials ~domains:d (Prng.create 43) p
      ~sketch_of:(fun _ inst -> Exact_sketch.create inst.Forall_lb.graph)
      ~decoder:`Topk ~trials:8
  in
  let reference = stats 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "identical stats at domains=%d" d)
        true
        (stats d = reference))
    domain_counts

let test_karger_domain_invariant () =
  let g =
    Generators.erdos_renyi_connected (Prng.create 44) ~n:40 ~p:0.15
  in
  let run d = Karger.mincut ~domains:d (Prng.create 45) ~trials:24 g in
  let v1, c1 = run 1 in
  List.iter
    (fun d ->
      let v, c = run d in
      Alcotest.(check (float 0.0)) (Printf.sprintf "value, domains=%d" d) v1 v;
      Alcotest.(check bool)
        (Printf.sprintf "cut, domains=%d" d)
        true (Cut.equal c1 c))
    domain_counts;
  let cands d =
    Karger.candidate_cuts ~domains:d (Prng.create 46) ~trials:30 ~factor:2.0 g
    |> List.map (fun (v, c) -> (v, Cut.to_list c))
  in
  let reference = cands 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "candidates, domains=%d" d)
        true
        (cands d = reference))
    domain_counts

let test_karger_stein_domain_invariant () =
  let g =
    Generators.erdos_renyi_connected (Prng.create 47) ~n:24 ~p:0.25
  in
  let run d = Karger_stein.mincut ~domains:d ~runs:6 (Prng.create 48) g in
  let v1, c1 = run 1 in
  List.iter
    (fun d ->
      let v, c = run d in
      Alcotest.(check (float 0.0)) (Printf.sprintf "value, domains=%d" d) v1 v;
      Alcotest.(check bool)
        (Printf.sprintf "cut, domains=%d" d)
        true (Cut.equal c1 c))
    domain_counts

(* --- (b) seed-split streams: reproducible, parent-preserving, disjoint --- *)

let test_split_reproducible () =
  let draws g = Array.init 16 (fun _ -> Prng.bits64 g) in
  let parent = Prng.create 7 in
  let a = draws (Prng.split parent 5) in
  let b = draws (Prng.split parent 5) in
  Alcotest.(check (array int64)) "same index, same stream" a b

let test_split_pure_in_parent () =
  let a = Prng.create 11 and b = Prng.create 11 in
  for i = 0 to 9 do
    ignore (Prng.split a i)
  done;
  for _ = 1 to 50 do
    Alcotest.(check int64) "parent unchanged by split" (Prng.bits64 b)
      (Prng.bits64 a)
  done

let test_split_streams_pairwise_non_colliding () =
  let parent = Prng.create 13 in
  let children = 64 and draws = 8 in
  (* All (child, draw) outputs distinct: 512 values of 64 bits colliding
     would be a one-in-10^13 event for independent streams, and any
     systematic overlap between sibling streams lands here immediately. *)
  let seen = Hashtbl.create (children * draws) in
  for i = 0 to children - 1 do
    let g = Prng.split parent i in
    for _ = 1 to draws do
      let v = Prng.bits64 g in
      Alcotest.(check bool)
        (Printf.sprintf "no collision (child %d)" i)
        false (Hashtbl.mem seen v);
      Hashtbl.replace seen v ()
    done
  done

let test_split_differs_from_parent_continuation () =
  let parent = Prng.create 17 in
  let child = Prng.split parent 0 in
  let xs = Array.init 32 (fun _ -> Prng.bits64 parent) in
  let ys = Array.init 32 (fun _ -> Prng.bits64 child) in
  Alcotest.(check bool) "child is not the parent stream" true (xs <> ys)

let test_split_rejects_negative () =
  let g = Prng.create 19 in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Prng.split: index must be nonnegative") (fun () ->
      ignore (Prng.split g (-1)))

(* --- (c) exception propagation --- *)

let test_exception_propagates () =
  List.iter
    (fun d ->
      Alcotest.check_raises
        (Printf.sprintf "raises at domains=%d" d)
        (Failure "boom") (fun () ->
          ignore
            (Pool.parallel_init ~domains:d ~n:16 (fun i ->
                 if i = 11 then failwith "boom" else i))))
    domain_counts

let test_exception_joins_all_domains () =
  (* A failure in the calling domain's chunk must still join the spawned
     domains: every task outside the failing one has run (its side effect
     is visible) by the time the exception reaches the caller. With 16
     tasks on 4 domains the calling domain owns tasks 0-3, so failing at
     task 3 leaves the other 15 tasks complete. *)
  let hit = Array.make 16 0 in
  (try
     ignore
       (Pool.parallel_init ~domains:4 ~n:16 (fun i ->
            if i = 3 then failwith "early";
            hit.(i) <- 1;
            i))
   with Failure _ -> ());
  let finished = Array.fold_left ( + ) 0 hit in
  Alcotest.(check int) "all other tasks completed" 15 finished

let test_domain_count_positive () =
  Alcotest.(check bool) "at least one domain" true (Pool.domain_count () >= 1)

let suite =
  [
    Alcotest.test_case "pool: parallel_init = sequential" `Quick
      test_parallel_init_matches_sequential;
    Alcotest.test_case "pool: edge sizes" `Quick test_parallel_init_edge_sizes;
    Alcotest.test_case "pool: parallel_map = sequential" `Quick
      test_parallel_map_matches_sequential;
    Alcotest.test_case "pool: sum bit-identical across domains" `Quick
      test_parallel_init_sum_bit_identical;
    Alcotest.test_case "pool: foreach_lb trials domain-invariant" `Quick
      test_foreach_trials_domain_invariant;
    Alcotest.test_case "pool: forall_lb trials domain-invariant" `Quick
      test_forall_trials_domain_invariant;
    Alcotest.test_case "pool: karger domain-invariant" `Quick
      test_karger_domain_invariant;
    Alcotest.test_case "pool: karger-stein domain-invariant" `Quick
      test_karger_stein_domain_invariant;
    Alcotest.test_case "prng: split reproducible" `Quick test_split_reproducible;
    Alcotest.test_case "prng: split leaves parent untouched" `Quick
      test_split_pure_in_parent;
    Alcotest.test_case "prng: split streams non-colliding" `Quick
      test_split_streams_pairwise_non_colliding;
    Alcotest.test_case "prng: split differs from parent" `Quick
      test_split_differs_from_parent_continuation;
    Alcotest.test_case "prng: split rejects negative index" `Quick
      test_split_rejects_negative;
    Alcotest.test_case "pool: exceptions propagate" `Quick
      test_exception_propagates;
    Alcotest.test_case "pool: failing chunk still joins the rest" `Quick
      test_exception_joins_all_domains;
    Alcotest.test_case "pool: domain_count positive" `Quick
      test_domain_count_positive;
  ]

(* DAG semantics of Dcs.Sched: values flow along declared edges, the
   report's accounting is exact, cache keys are sensitive to exactly
   (name, version, fingerprint, input hashes), and the scheduler is
   deterministic at any domain count — the contracts E23 enforces
   end-to-end, pinned here in isolation. *)

open Dcs

let int_codec : int Sched.codec = Sched.marshal_codec ()

let with_tmp_dir f =
  let dir = Filename.temp_file "dcs_sched_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun x -> Sys.remove (Filename.concat dir x))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* a = 7; b = a + 1; c = a * 2; d = b + c. *)
let diamond ?(version = "v1") dag =
  let a = Sched.stage dag ~name:"a" ~version ~codec:int_codec ~deps:[] (fun () -> 7) in
  let b =
    Sched.stage dag ~name:"b" ~version ~codec:int_codec ~deps:[ Sched.dep a ]
      (fun () -> Sched.value dag a + 1)
  in
  let c =
    Sched.stage dag ~name:"c" ~version ~codec:int_codec ~deps:[ Sched.dep a ]
      (fun () -> Sched.value dag a * 2)
  in
  let d =
    Sched.stage dag ~name:"d" ~version ~codec:int_codec
      ~deps:[ Sched.dep b; Sched.dep c ]
      (fun () -> Sched.value dag b + Sched.value dag c)
  in
  (a, b, c, d)

let test_diamond () =
  let dag = Sched.create () in
  let a, b, c, d = diamond dag in
  let rep = Sched.run dag in
  Alcotest.(check int) "a" 7 (Sched.value dag a);
  Alcotest.(check int) "b" 8 (Sched.value dag b);
  Alcotest.(check int) "c" 14 (Sched.value dag c);
  Alcotest.(check int) "d" 22 (Sched.value dag d);
  Alcotest.(check int) "stages" 4 rep.Sched.stages;
  Alcotest.(check int) "levels" 3 rep.Sched.levels;
  Alcotest.(check int) "offered" 4 rep.Sched.offered;
  Alcotest.(check int) "ran" 4 rep.Sched.ran;
  Alcotest.(check int) "hits" 0 rep.Sched.hits;
  List.iter
    (fun n -> Alcotest.(check bool) "cold: not from cache" false (Sched.from_cache dag n))
    [ a; b; c; d ]

let test_warm_all_hits () =
  let store = Sched.Store.create () in
  let cold = Sched.create ~store () in
  ignore (diamond cold);
  ignore (Sched.run cold);
  let warm = Sched.create ~store () in
  let _, _, _, d = diamond warm in
  let rep = Sched.run warm in
  Alcotest.(check int) "warm ran" 0 rep.Sched.ran;
  Alcotest.(check int) "warm hits" 4 rep.Sched.hits;
  Alcotest.(check int) "warm d" 22 (Sched.value warm d);
  Alcotest.(check bool) "warm d from cache" true (Sched.from_cache warm d)

let test_version_invalidates () =
  let store = Sched.Store.create () in
  let v1 = Sched.create ~store () in
  let _, _, _, d1 = diamond v1 in
  ignore (Sched.run v1);
  let v2 = Sched.create ~store () in
  let _, _, _, d2 = diamond ~version:"v2" v2 in
  let rep = Sched.run v2 in
  Alcotest.(check int) "v2 recomputes everything" 4 rep.Sched.ran;
  Alcotest.(check bool) "keys differ" true
    (Sched.key_of v1 d1 <> Sched.key_of v2 d2)

let test_fingerprint_invalidates () =
  let store = Sched.Store.create () in
  let mk fp out =
    let dag = Sched.create ~store () in
    let n =
      Sched.stage dag ~name:"seeded" ~fingerprint:fp ~codec:int_codec ~deps:[]
        (fun () -> out)
    in
    (dag, n, Sched.run dag)
  in
  let _, _, r1 = mk 1L 10 in
  Alcotest.(check int) "cold runs" 1 r1.Sched.ran;
  let dag2, n2, r2 = mk 2L 20 in
  Alcotest.(check int) "new fingerprint recomputes" 1 r2.Sched.ran;
  Alcotest.(check int) "new value" 20 (Sched.value dag2 n2);
  let dag3, n3, r3 = mk 1L 999 in
  (* Same identity as the first run: the (stale) thunk is never called. *)
  Alcotest.(check int) "old fingerprint hits" 1 r3.Sched.hits;
  Alcotest.(check int) "cached value wins" 10 (Sched.value dag3 n3)

let test_input_hash_invalidates () =
  (* The sink's own identity never changes; only its input artifact does —
     a changed dependency must cascade into a sink recompute. *)
  let store = Sched.Store.create () in
  let mk fp src_out =
    let dag = Sched.create ~store () in
    let src =
      Sched.stage dag ~name:"src" ~fingerprint:fp ~codec:int_codec ~deps:[]
        (fun () -> src_out)
    in
    let sink =
      Sched.stage dag ~name:"sink" ~codec:int_codec ~deps:[ Sched.dep src ]
        (fun () -> 100 + Sched.value dag src)
    in
    let rep = Sched.run dag in
    (Sched.value dag sink, rep)
  in
  let v1, r1 = mk 1L 1 in
  Alcotest.(check int) "cold sink" 101 v1;
  Alcotest.(check int) "cold ran" 2 r1.Sched.ran;
  let v2, r2 = mk 2L 2 in
  Alcotest.(check int) "sink recomputed off new input" 102 v2;
  Alcotest.(check int) "both recomputed" 2 r2.Sched.ran;
  let v3, r3 = mk 1L 1 in
  Alcotest.(check int) "original chain all-hit" 101 v3;
  Alcotest.(check int) "no recompute" 0 r3.Sched.ran

let test_duplicate_stage_rejected () =
  let dag = Sched.create () in
  ignore (Sched.stage dag ~name:"dup" ~codec:int_codec ~deps:[] (fun () -> 1));
  (match
     Sched.stage dag ~name:"dup" ~codec:int_codec ~deps:[] (fun () -> 2)
   with
  | _ -> Alcotest.fail "duplicate (name, version, fingerprint) must raise"
  | exception Invalid_argument _ -> ());
  (* A different version of the same name is a distinct stage. *)
  ignore
    (Sched.stage dag ~name:"dup" ~version:"v2" ~codec:int_codec ~deps:[]
       (fun () -> 3))

let test_run_once () =
  let dag = Sched.create () in
  ignore (diamond dag);
  ignore (Sched.run dag);
  (match Sched.run dag with
  | _ -> Alcotest.fail "second run must raise"
  | exception Invalid_argument _ -> ());
  match Sched.stage dag ~name:"late" ~codec:int_codec ~deps:[] (fun () -> 0) with
  | _ -> Alcotest.fail "stage after run must raise"
  | exception Invalid_argument _ -> ()

let test_value_before_run_fails () =
  let dag = Sched.create () in
  let a, _, _, _ = diamond dag in
  match Sched.value dag a with
  | _ -> Alcotest.fail "value before run must fail"
  | exception Failure _ -> ()

(* A wider fan-out whose artifacts are PRNG-derived: the scheduler must
   produce the same artifact bytes at any domain count. *)
let fan_dag dag =
  let srcs =
    List.init 9 (fun i ->
        let name = Printf.sprintf "src%d" i in
        Sched.stage dag ~name ~codec:int_codec ~deps:[]
          (fun () ->
            let rng = Prng.create (0x7ab + i) in
            Int64.to_int (Int64.logand (Prng.bits64 rng) 0xffffL)))
  in
  Sched.stage dag ~name:"sum"
    ~codec:(Sched.marshal_codec ())
    ~deps:(List.map Sched.dep srcs)
    (fun () -> List.map (fun s -> Sched.value dag s) srcs)

let test_domain_determinism () =
  let run domains =
    let dag = Sched.create () in
    let sum = fan_dag dag in
    let rep = Sched.run ~domains dag in
    Alcotest.(check int) "all ran" 10 rep.Sched.ran;
    (Sched.artifact_bytes dag sum, Sched.value dag sum)
  in
  let b1, v1 = run 1 in
  List.iter
    (fun d ->
      let b, v = run d in
      Alcotest.(check string)
        (Printf.sprintf "artifact bytes identical at %d domains" d)
        b1 b;
      Alcotest.(check (list int))
        (Printf.sprintf "values identical at %d domains" d)
        v1 v)
    [ 2; 4 ]

let test_serial_mode () =
  let dag = Sched.create () in
  let p =
    Sched.stage dag ~name:"pooled" ~codec:int_codec ~deps:[] (fun () -> 5)
  in
  let s =
    Sched.stage dag ~name:"serial" ~mode:Sched.Serial ~codec:int_codec
      ~deps:[ Sched.dep p ]
      (fun () -> Sched.value dag p * 3)
  in
  let rep = Sched.run ~domains:4 dag in
  Alcotest.(check int) "serial ran" 1 rep.Sched.serial_ran;
  Alcotest.(check int) "pooled ran" 1 rep.Sched.pooled_ran;
  Alcotest.(check int) "value" 15 (Sched.value dag s)

let test_lru_eviction_recomputes () =
  (* A 1-byte memory tier with no disk: every artifact overflows it, so
     only the most recently touched entry survives and a warm DAG can hit
     at most once — the rest are honest misses that recompute. *)
  let store = Sched.Store.create ~mem_capacity_bytes:1 () in
  let ev = Obs.Metrics.counter "sched.store_evictions" in
  let before = Obs.Metrics.counter_value ev in
  let two_stages dag =
    let x = Sched.stage dag ~name:"x" ~codec:int_codec ~deps:[] (fun () -> 1) in
    let y = Sched.stage dag ~name:"y" ~codec:int_codec ~deps:[] (fun () -> 2) in
    (x, y)
  in
  let cold = Sched.create ~store () in
  ignore (two_stages cold);
  ignore (Sched.run cold);
  Alcotest.(check bool) "evictions happened" true
    (Obs.Metrics.counter_value ev > before);
  Alcotest.(check int) "one resident entry" 1 (Sched.Store.entries store);
  let warm = Sched.create ~store () in
  let x, y = two_stages warm in
  let rep = Sched.run warm in
  Alcotest.(check int) "at most one hit" 1 rep.Sched.hits;
  Alcotest.(check int) "the rest recomputed" 1 rep.Sched.ran;
  Alcotest.(check int) "x" 1 (Sched.value warm x);
  Alcotest.(check int) "y" 2 (Sched.value warm y)

let test_disk_write_through () =
  with_tmp_dir (fun dir ->
      let chain dag =
        let a = Sched.stage dag ~name:"a" ~codec:int_codec ~deps:[] (fun () -> 3) in
        let b =
          Sched.stage dag ~name:"b" ~codec:int_codec ~deps:[ Sched.dep a ]
            (fun () -> Sched.value dag a + 10)
        in
        b
      in
      let cold = Sched.create ~store:(Sched.Store.create ~dir ()) () in
      ignore (chain cold);
      ignore (Sched.run cold);
      let arts =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> Filename.check_suffix f ".art")
      in
      Alcotest.(check int) "two spilled artifacts" 2 (List.length arts);
      (* A fresh store over the same directory: a cold process image must
         rehydrate everything from disk without running a single stage. *)
      let dh = Obs.Metrics.counter "sched.store_disk_hits" in
      let before = Obs.Metrics.counter_value dh in
      let warm = Sched.create ~store:(Sched.Store.create ~dir ()) () in
      let b = chain warm in
      let rep = Sched.run warm in
      Alcotest.(check int) "no stage ran" 0 rep.Sched.ran;
      Alcotest.(check int) "all hits" 2 rep.Sched.hits;
      Alcotest.(check int) "both came from disk" 2
        (Obs.Metrics.counter_value dh - before);
      Alcotest.(check int) "value survives the round trip" 13
        (Sched.value warm b))

let suite =
  [
    Alcotest.test_case "diamond: values, levels, accounting" `Quick test_diamond;
    Alcotest.test_case "warm rerun is all cache hits" `Quick test_warm_all_hits;
    Alcotest.test_case "version bump invalidates" `Quick test_version_invalidates;
    Alcotest.test_case "fingerprint change invalidates" `Quick
      test_fingerprint_invalidates;
    Alcotest.test_case "changed input hash cascades" `Quick
      test_input_hash_invalidates;
    Alcotest.test_case "duplicate stage identity rejected" `Quick
      test_duplicate_stage_rejected;
    Alcotest.test_case "DAG runs exactly once" `Quick test_run_once;
    Alcotest.test_case "value before run fails" `Quick test_value_before_run_fails;
    Alcotest.test_case "artifacts identical at 1/2/4 domains" `Quick
      test_domain_determinism;
    Alcotest.test_case "serial stages run in the scheduling domain" `Quick
      test_serial_mode;
    Alcotest.test_case "LRU eviction forces honest recompute" `Quick
      test_lru_eviction_recomputes;
    Alcotest.test_case "disk write-through rehydrates a fresh store" `Quick
      test_disk_write_through;
  ]

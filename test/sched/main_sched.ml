let () =
  Alcotest.run "dcs-sched"
    [ ("dag", Test_ssched.suite); ("store", Test_sstore.suite) ]

(* The content-addressed artifact store, with the damage suite ISSUE 9
   asks for: any bit flip or truncation of a spilled artifact must force a
   recompute — the store may lose an artifact, it must never serve a wrong
   one. Mirrors test/test_checkpoint.ml's damage properties one layer up,
   at the artifact-store boundary. *)

open Dcs
module Store = Sched.Store

let with_tmp_dir f =
  let dir = Filename.temp_file "dcs_sstore_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun x -> Sys.remove (Filename.concat dir x))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* --- key construction --- *)

let test_content_hash_sensitivity () =
  let h = Store.content_hash in
  Alcotest.(check string) "deterministic" (h "payload") (h "payload");
  Alcotest.(check int) "24 hex chars" 24 (String.length (h ""));
  Alcotest.(check bool) "one-byte change" true (h "payload" <> h "payloae");
  Alcotest.(check bool) "length matters" true (h "aa" <> h "aa\x00");
  String.iter
    (fun c ->
      Alcotest.(check bool) "filename-safe hex" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    (h "anything at all")

let test_action_key_sensitivity () =
  let base =
    Store.action_key ~name:"stage" ~version:"v1" ~fingerprint:1L
      ~inputs:[ "aa"; "bb" ]
  in
  let same =
    Store.action_key ~name:"stage" ~version:"v1" ~fingerprint:1L
      ~inputs:[ "aa"; "bb" ]
  in
  Alcotest.(check string) "deterministic" base same;
  List.iter
    (fun (what, key) ->
      Alcotest.(check bool) (what ^ " changes the key") true (key <> base))
    [
      ("name",
       Store.action_key ~name:"stage2" ~version:"v1" ~fingerprint:1L
         ~inputs:[ "aa"; "bb" ]);
      ("version",
       Store.action_key ~name:"stage" ~version:"v2" ~fingerprint:1L
         ~inputs:[ "aa"; "bb" ]);
      ("fingerprint",
       Store.action_key ~name:"stage" ~version:"v1" ~fingerprint:2L
         ~inputs:[ "aa"; "bb" ]);
      ("input hash",
       Store.action_key ~name:"stage" ~version:"v1" ~fingerprint:1L
         ~inputs:[ "aa"; "bc" ]);
      ("input order",
       Store.action_key ~name:"stage" ~version:"v1" ~fingerprint:1L
         ~inputs:[ "bb"; "aa" ]);
      ("input arity",
       Store.action_key ~name:"stage" ~version:"v1" ~fingerprint:1L
         ~inputs:[ "aa" ]);
    ]

(* --- memory tier --- *)

let test_roundtrip_and_miss () =
  let s = Store.create () in
  Alcotest.(check (option string)) "miss" None (Store.find s "nope");
  Store.put s "k1" "hello";
  Alcotest.(check (option string)) "hit" (Some "hello") (Store.find s "k1");
  Alcotest.(check int) "entries" 1 (Store.entries s);
  Alcotest.(check int) "mem bytes" 5 (Store.mem_bytes s)

(* --- damage properties (satellite: corruption forces recompute) --- *)

let payload_arb =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 60))

(* Spill [payload] under its own content hash and let [damage] mangle the
   file; a fresh store over the same directory must refuse to serve it. *)
let spill_damage_probe payload damage =
  with_tmp_dir (fun dir ->
      let key = Store.content_hash payload in
      let s1 = Store.create ~dir () in
      Store.put s1 key payload;
      let path = Store.artifact_path s1 key in
      damage path;
      let s2 = Store.create ~dir () in
      match Store.find s2 key with
      | None -> true
      | Some _ -> false (* served bytes off a damaged artifact *))

let prop_bit_flip_never_served =
  QCheck.Test.make ~name:"any single-bit flip forces a miss" ~count:100
    QCheck.(pair payload_arb (pair small_nat small_nat))
    (fun (payload, (byte_choice, bit)) ->
      spill_damage_probe payload (fun path ->
          let raw = read_file path in
          let pos = byte_choice mod String.length raw in
          let b = Bytes.of_string raw in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (bit mod 8))));
          write_file path (Bytes.to_string b)))

let prop_truncation_never_served =
  QCheck.Test.make ~name:"any truncation forces a miss" ~count:100
    QCheck.(pair payload_arb small_nat)
    (fun (payload, cut_choice) ->
      spill_damage_probe payload (fun path ->
          let raw = read_file path in
          write_file path (String.sub raw 0 (cut_choice mod String.length raw))))

(* --- end to end: a damaged artifact reruns its stage, never lies --- *)

let int_codec : int Sched.codec = Sched.marshal_codec ()

let test_damaged_artifact_recomputes () =
  with_tmp_dir (fun dir ->
      let chain dag =
        let a =
          Sched.stage dag ~name:"gen" ~codec:int_codec ~deps:[] (fun () -> 41)
        in
        let b =
          Sched.stage dag ~name:"use" ~codec:int_codec ~deps:[ Sched.dep a ]
            (fun () -> Sched.value dag a + 1)
        in
        (a, b)
      in
      let store1 = Store.create ~dir () in
      let cold = Sched.create ~store:store1 () in
      let a, _ = chain cold in
      ignore (Sched.run cold);
      let path = Store.artifact_path store1 (Sched.key_of cold a) in
      let intact = read_file path in
      let raw = Bytes.of_string intact in
      let mid = Bytes.length raw / 2 in
      Bytes.set raw mid (Char.chr (Char.code (Bytes.get raw mid) lxor 0x01));
      write_file path (Bytes.to_string raw);
      let corrupt = Obs.Metrics.counter "sched.store_corrupt_rejected" in
      let before = Obs.Metrics.counter_value corrupt in
      let damaged = Sched.create ~store:(Store.create ~dir ()) () in
      let _, b = chain damaged in
      let rep = Sched.run damaged in
      Alcotest.(check int) "rejected once" 1
        (Obs.Metrics.counter_value corrupt - before);
      Alcotest.(check int) "exactly the damaged stage reran" 1 rep.Sched.ran;
      Alcotest.(check int) "the dependent still hit" 1 rep.Sched.hits;
      Alcotest.(check int) "value correct, not garbage" 42
        (Sched.value damaged b);
      (* The recompute's write-through repaired the file in place. *)
      Alcotest.(check string) "file repaired byte-for-byte" intact
        (read_file path);
      let healed = Sched.create ~store:(Store.create ~dir ()) () in
      ignore (chain healed);
      let rep = Sched.run healed in
      Alcotest.(check int) "healed run is all hits" 0 rep.Sched.ran)

let suite =
  [
    Alcotest.test_case "content_hash sensitivity" `Quick
      test_content_hash_sensitivity;
    Alcotest.test_case "action_key sensitivity" `Quick
      test_action_key_sensitivity;
    Alcotest.test_case "memory-tier roundtrip" `Quick test_roundtrip_and_miss;
    QCheck_alcotest.to_alcotest prop_bit_flip_never_served;
    QCheck_alcotest.to_alcotest prop_truncation_never_served;
    Alcotest.test_case "damaged artifact recomputes and repairs" `Quick
      test_damaged_artifact_recomputes;
  ]

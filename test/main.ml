let () =
  Alcotest.run "dcs"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("pool", Test_pool.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("linalg", Test_linalg.suite);
      ("graph", Test_graph.suite);
      ("mincut", Test_mincut.suite);
      ("mincut-agreement", Test_mincut_agreement.suite);
      ("comm", Test_comm.suite);
      ("fault", Test_fault.suite);
      ("sketch", Test_sketch.suite);
      ("foreach_lb", Test_foreach_lb.suite);
      ("forall_lb", Test_forall_lb.suite);
      ("localquery", Test_localquery.suite);
      ("distributed", Test_distributed.suite);
      ("spectral", Test_spectral.suite);
      ("stream", Test_stream.suite);
    ]

(* E9 — distributed min-cut (the paper's motivating application): accuracy
   and communication of the two-sketch pipeline against shipping raw edges
   or full-accuracy for-all sketches. *)

open Dcs

let run () =
  Common.section "E9  Distributed min-cut — accuracy and communication";
  let rng = Common.rng_for 9 in
  let g = Generators.planted_mincut rng ~block:300 ~k:30 ~p_inner:0.97 in
  let exact = Stoer_wagner.mincut_value g in
  Printf.printf "instance: n=%d m=%d true min cut=%.0f, 2 servers\n" (Ugraph.n g)
    (Ugraph.m g) exact;
  let shards = Partition.random rng ~servers:2 g in
  let t =
    Table.create ~title:"communication (kbits) and accuracy vs eps"
      ~columns:
        [
          "eps"; "estimate"; "rel err"; "pipeline"; "coarse for-all";
          "for-each part"; "for-all@eps"; "ship-all";
        ]
  in
  List.iter
    (fun eps ->
      let cfg =
        { (Coordinator.default_config ~eps) with Coordinator.karger_trials = 60 }
      in
      let r = Coordinator.min_cut rng cfg shards in
      Table.add_row t
        [
          Printf.sprintf "%.2f" eps;
          Table.ffloat ~digits:1 r.Coordinator.estimate;
          Table.fpct (Float.abs (r.Coordinator.estimate -. exact) /. exact);
          Common.kbits r.Coordinator.total_bits;
          Common.kbits r.Coordinator.forall_bits;
          Common.kbits r.Coordinator.foreach_bits;
          Common.kbits r.Coordinator.fullacc_forall_bits;
          Common.kbits r.Coordinator.naive_bits;
        ])
    [ 0.5; 0.35; 0.25 ];
  Table.print t;
  Common.note
    "the for-each part is the ε-dependent half the paper's Theorem 1.1 speaks";
  Common.note
    "to — at equal ε it is a log-factor cheaper than the for-all sketch. The";
  Common.note
    "coarse for-all half is paid once, independent of ε; its own sampling only";
  Common.note
    "bites once per-shard strengths exceed ~4·ln n/ε² (EXPERIMENTS.md, regime";
  Common.note "analysis) — beyond exact-ground-truth scale on a laptop."

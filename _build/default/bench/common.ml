(* Shared helpers for the experiment harness. *)

open Dcs

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '#')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  note: %s\n" s) fmt

(* Success-rate cell with a trials annotation. *)
let rate_cell ~ok ~total =
  Printf.sprintf "%.2f (%d/%d)" (float_of_int ok /. float_of_int total) ok total

let kbits bits = Printf.sprintf "%.1f" (float_of_int bits /. 1000.0)

let seed_of_experiment id =
  (* Stable per-experiment seeds so every table is reproducible in
     isolation. *)
  1000 + id

let rng_for id = Prng.create (seed_of_experiment id)

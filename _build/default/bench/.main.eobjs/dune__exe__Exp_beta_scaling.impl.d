bench/exp_beta_scaling.ml: Common Cut Dcs Digraph Directed_sparsifier Float Generators List Option Printf Table

bench/exp_fig1.ml: Array Balance Common Cut Dcs Foreach_lb List Printf Table

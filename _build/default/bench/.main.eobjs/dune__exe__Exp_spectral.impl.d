bench/exp_spectral.ml: Array Benczur_karger Common Cut Dcs Float Generators Laplacian List Prng Spectral_sparsifier Table Ugraph

bench/exp_tightness.ml: Common Dcs Directed_sparsifier Exact_sketch Forall_lb Foreach_lb List Sketch Table

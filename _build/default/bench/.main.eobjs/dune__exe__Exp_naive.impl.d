bench/exp_naive.ml: Common Dcs Exact_sketch Foreach_lb List Naive_foreach Noisy_oracle Table

bench/exp_cut_counting.ml: Common Dcs Generators Karger List Printf Table

bench/exp_upper_query.ml: Array Common Dcs Estimator Generators List Oracle Printf Stats Stoer_wagner Table Ugraph

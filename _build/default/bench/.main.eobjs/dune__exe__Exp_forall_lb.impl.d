bench/exp_forall_lb.ml: Array Bitstring Common Dcs Exact_sketch Forall_lb Gap_hamming List Noisy_oracle Printf Table

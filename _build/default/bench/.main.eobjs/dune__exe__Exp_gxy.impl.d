bench/exp_gxy.ml: Array Bitstring Common Dcs Dinic Float Gxy List Prng Stoer_wagner Table Ugraph

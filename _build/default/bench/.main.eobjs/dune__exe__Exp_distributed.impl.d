bench/exp_distributed.ml: Common Coordinator Dcs Float Generators List Partition Printf Stoer_wagner Table Ugraph

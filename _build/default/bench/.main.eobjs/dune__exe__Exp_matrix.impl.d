bench/exp_matrix.ml: Array Common Dcs Decode_matrix Float Pm_vector Printf Prng Table

bench/exp_imbalance.ml: Array Common Cut Dcs Directed_sparsifier Eulerian Exact_sketch Float Generators Imbalance_sketch List Printf Sketch Table

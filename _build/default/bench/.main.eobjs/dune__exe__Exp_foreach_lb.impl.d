bench/exp_foreach_lb.ml: Common Dcs Exact_sketch Foreach_lb List Noisy_oracle Printf Prng Sketch Table

bench/common.ml: Dcs Printf Prng String

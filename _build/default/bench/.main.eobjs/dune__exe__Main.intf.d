bench/main.mli:

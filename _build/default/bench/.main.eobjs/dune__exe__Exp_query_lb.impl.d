bench/exp_query_lb.ml: Bitstring Common Dcs Estimator Float Gxy List Oracle Printf Table Two_sum Ugraph

(* E11 — ablation from Section 1.2: the naive one-bit-per-edge encoding
   versus the Hadamard superposition, decoded through oracles of varying
   accuracy. The naive scheme needs accuracy ~ ε² (its Θ(1) signal hides
   under a Θ(1/ε²) cut); the superposition survives down to ~ ε/ln(1/ε) —
   the gap that forces the paper's encoding. *)

open Dcs

let run () =
  Common.section "E11  §1.2 ablation — naive encoding vs Hadamard superposition";
  let rng = Common.rng_for 11 in
  let t =
    Table.create
      ~title:"decode success vs oracle accuracy eps' (beta=1, both schemes)"
      ~columns:
        [ "1/eps"; "scheme"; "exact"; "eps'=eps^2"; "eps'=eps^2*4"; "eps'=eps/ln" ]
  in
  List.iter
    (fun inv_eps ->
      let n = 4 * inv_eps in
      let eps = 1.0 /. float_of_int inv_eps in
      let eps_sq = eps *. eps in
      let eps_star = eps /. log (float_of_int inv_eps) in
      (* naive rows *)
      let np = Naive_foreach.make_params ~beta:1 ~inv_eps n in
      let naive_run noise =
        let sketch_of r (inst : Naive_foreach.instance) =
          if noise = 0.0 then Exact_sketch.create inst.Naive_foreach.graph
          else
            Noisy_oracle.create ~mode:Noisy_oracle.Random r ~eps:noise
              inst.Naive_foreach.graph
        in
        (Naive_foreach.run_trials rng np ~sketch_of ~trials:3 ~bits_per_trial:80)
          .Naive_foreach.success_rate
      in
      Table.add_row t
        [
          Table.fint inv_eps;
          "naive (1 bit / edge)";
          Table.ffloat ~digits:2 (naive_run 0.0);
          Table.ffloat ~digits:2 (naive_run eps_sq);
          Table.ffloat ~digits:2 (naive_run (4.0 *. eps_sq));
          Table.ffloat ~digits:2 (naive_run eps_star);
        ];
      (* Hadamard rows *)
      let hp = Foreach_lb.make_params ~beta:1 ~inv_eps n in
      let hadamard_run noise =
        let sketch_of r (inst : Foreach_lb.instance) =
          if noise = 0.0 then Exact_sketch.create inst.Foreach_lb.graph
          else
            Noisy_oracle.create ~mode:Noisy_oracle.Random r ~eps:noise
              inst.Foreach_lb.graph
        in
        (Foreach_lb.run_trials rng hp ~sketch_of ~trials:3 ~bits_per_trial:80)
          .Foreach_lb.success_rate
      in
      Table.add_row t
        [
          Table.fint inv_eps;
          "hadamard (Thm 1.1)";
          Table.ffloat ~digits:2 (hadamard_run 0.0);
          Table.ffloat ~digits:2 (hadamard_run eps_sq);
          Table.ffloat ~digits:2 (hadamard_run (4.0 *. eps_sq));
          Table.ffloat ~digits:2 (hadamard_run eps_star);
        ];
      Table.add_rule t)
    [ 8; 16; 32 ];
  Table.print t;
  Common.note
    "at eps' = eps/ln(1/eps) — the accuracy regime of Theorem 1.1 — the naive";
  Common.note
    "scheme decodes near chance while the superposition still succeeds: the";
  Common.note "reason Section 3 spreads each bit across all 1/eps^2 edges."

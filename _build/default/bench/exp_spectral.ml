(* E12 — sampling-measure ablation: cut sparsification by Nagamochi–Ibaraki
   strength indices (Benczúr–Karger) versus by effective resistances
   (Spielman–Srivastava) on identical graphs. The spectral sampler pays a
   little more (it preserves all quadratic forms, not just cuts) but both
   sit on the Õ(n/ε²) curve; the table reports kept edges and worst
   observed cut error over random cuts. *)

open Dcs

let run () =
  Common.section "E12  Sampling measures — strengths (BK) vs resistances (SS)";
  let rng = Common.rng_for 12 in
  let t =
    Table.create ~title:"identical inputs, eps = 0.7, c = 1 (100 random cuts audited)"
      ~columns:
        [
          "graph"; "n"; "m"; "BK edges"; "BK worst err"; "SS edges";
          "SS worst err"; "forms preserved (SS)";
        ]
  in
  let audit g h =
    let worst = ref 0.0 in
    for _ = 1 to 100 do
      let c = Cut.random rng ~n:(Ugraph.n g) in
      let truth = Ugraph.cut_value g c in
      if truth > 0.0 then
        worst := Float.max !worst (Float.abs (Ugraph.cut_value h c -. truth) /. truth)
    done;
    !worst
  in
  List.iter
    (fun (name, g) ->
      let bk = Benczur_karger.sparsify ~c:1.0 rng ~eps:0.7 g in
      let ss = Spectral_sparsifier.sparsify ~c:1.0 rng ~eps:0.7 g in
      let lg = Laplacian.of_ugraph g and ls = Laplacian.of_ugraph ss in
      let form_err = ref 0.0 in
      for _ = 1 to 50 do
        let x = Array.init (Ugraph.n g) (fun _ -> Prng.gaussian rng) in
        let a = Laplacian.quadratic_form lg x in
        if a > 1e-9 then
          form_err :=
            Float.max !form_err
              (Float.abs (Laplacian.quadratic_form ls x -. a) /. a)
      done;
      Table.add_row t
        [
          name;
          Table.fint (Ugraph.n g);
          Table.fint (Ugraph.m g);
          Table.fint (Ugraph.m bk);
          Table.fpct (audit g bk);
          Table.fint (Ugraph.m ss);
          Table.fpct (audit g ss);
          Table.fpct !form_err;
        ])
    [
      ( "weighted complete",
        Generators.random_multigraph_weights rng (Generators.complete ~n:60)
          ~max_weight:50 );
      ( "weighted ER dense",
        Generators.random_multigraph_weights rng
          (Generators.erdos_renyi_connected rng ~n:80 ~p:0.5)
          ~max_weight:20 );
      ("hypercube Q7", Generators.hypercube ~dim:7);
      ( "preferential attachment",
        Generators.preferential_attachment rng ~n:100 ~m_per_node:8 );
    ];
  Table.print t;
  Common.note
    "both samplers are unbiased per cut; the spectral one also bounds every";
  Common.note
    "quadratic form (last column). Sparse/expander graphs (hypercube, PA)";
  Common.note
    "have low strengths and resistances ~ 1/w·deg, so neither sampler can";
  Common.note "drop much — sparsification is a dense-graph phenomenon."

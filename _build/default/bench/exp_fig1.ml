(* E2 — Figure 1 / Lemma 3.3 anatomy: the queried cut S = A ∪ (R \ B) of
   the for-each construction decomposes exactly as the paper computes it:
   forward weight Θ(log(1/ε)/ε²) from A to B, backward weight Θ(1/ε²) from
   the fixed 1/β edges, and the whole graph is O(β·log(1/ε))-balanced. *)

open Dcs
module F = Foreach_lb

let run () =
  Common.section "E2  Figure 1 — anatomy of the queried cut (for-each LB)";
  let rng = Common.rng_for 2 in
  let t =
    Table.create
      ~title:"cut decomposition for S = A ∪ (V_{p+1}\\B) ∪ rest (middle pair)"
      ~columns:
        [
          "beta"; "1/eps"; "n"; "fwd w(A,B)"; "theory ln/e^2";
          "bwd fixed"; "theory 1/e^2"; "cut total"; "balance cert";
          "paper beta*ln"; "enc fail";
        ]
  in
  List.iter
    (fun (beta, inv_eps) ->
      let block = int_of_float (sqrt (float_of_int beta)) * inv_eps in
      let n = 4 * block in
      let p = F.make_params ~beta ~inv_eps n in
      let inst = F.random_instance rng p in
      let a = { F.pair = 1; ci = 0; cj = 0; t = 0 } in
      let s = F.query_cut p a ~side_a:1 ~side_b:1 in
      let total = Cut.value inst.F.graph s in
      let back = F.fixed_backward_weight p a in
      let fwd = total -. back in
      let e = F.eps p in
      let ln_ie = log (float_of_int inv_eps) in
      let fails =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inst.F.failed
      in
      Table.add_row t
        [
          Table.fint beta;
          Table.fint inv_eps;
          Table.fint n;
          Table.ffloat ~digits:1 fwd;
          Table.ffloat ~digits:1 (2.0 *. 2.0 *. ln_ie /. (4.0 *. e *. e));
          (* 2c1·ln(1/ε) average weight × (1/(2ε))² edges, c1 = 2 *)
          Table.ffloat ~digits:1 back;
          Table.ffloat ~digits:1 (1.0 /. (e *. e));
          Table.ffloat ~digits:1 total;
          Table.ffloat ~digits:1 (Balance.edgewise_upper_bound inst.F.graph);
          Table.ffloat ~digits:1 (F.balance_upper_bound p);
          Printf.sprintf "%d/%d" fails (Array.length inst.F.failed);
        ])
    [ (1, 8); (1, 16); (1, 32); (4, 8); (4, 16); (16, 8) ];
  Table.print t;
  Common.note
    "fwd ≈ 2c₁ln(1/ε)·(1/2ε)² (mean weight × |A||B|); bwd is the closed-form";
  Common.note
    "Θ(1/ε²) backward mass the decoder subtracts; balance certificate stays";
  Common.note "within the paper's O(β·log(1/ε)) for every configuration."

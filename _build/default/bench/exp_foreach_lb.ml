(* E3 — Theorem 1.1: the for-each lower bound, run as an experiment.

   (a) Decode success: against the exact sketch (information-theoretic best
   case) and against (1 ± ε') oracles at multiples of the paper's accuracy
   threshold ε* = ε/ln(1/ε). Success >= 2/3 below the threshold is exactly
   the property the reduction needs; collapse above it shows the accuracy
   requirement is real.

   (b) Bits: the number of decodable bits |s| against the Ω̃(n√β/ε) curve,
   and the instance-codec (matching upper bound) size. *)

open Dcs
module F = Foreach_lb

let success_table rng =
  let t =
    Table.create
      ~title:
        "decode success vs sketch accuracy (eps* = eps/ln(1/eps); threshold of \
         Thm 1.1)"
      ~columns:
        [
          "beta"; "1/eps"; "n"; "exact"; "eps'=eps*/16"; "eps'=eps*/4"; "eps'=eps*";
          "eps'=4eps*";
        ]
  in
  List.iter
    (fun (beta, inv_eps, n) ->
      let p = F.make_params ~beta ~inv_eps n in
      let eps_star = F.eps p /. log (float_of_int inv_eps) in
      let run sketch_of =
        let st = F.run_trials rng p ~sketch_of ~trials:3 ~bits_per_trial:60 in
        Printf.sprintf "%.2f" st.F.success_rate
      in
      let exact = run (fun _ inst -> Exact_sketch.create inst.F.graph) in
      let noisy factor =
        run (fun r inst ->
            Noisy_oracle.create ~mode:Noisy_oracle.Random r
              ~eps:(factor *. eps_star) inst.F.graph)
      in
      Table.add_row t
        [
          Table.fint beta;
          Table.fint inv_eps;
          Table.fint n;
          exact;
          noisy 0.0625;
          noisy 0.25;
          noisy 1.0;
          noisy 4.0;
        ])
    [
      (1, 8, 64); (1, 16, 64); (1, 8, 256); (4, 8, 64); (4, 16, 128); (16, 8, 128);
    ];
  Table.print t

let bits_table () =
  let t =
    Table.create
      ~title:"decodable bits vs the Ω̃(n·√β/ε) lower-bound curve"
      ~columns:
        [
          "n"; "beta"; "1/eps"; "|s| bits"; "n·√β/ε"; "ratio"; "codec kbits";
          "exact-sketch kbits";
        ]
  in
  List.iter
    (fun (n, beta, inv_eps) ->
      let p = F.make_params ~beta ~inv_eps n in
      let cap = F.bits_capacity p in
      let bound =
        float_of_int n *. sqrt (float_of_int beta) *. float_of_int inv_eps
      in
      let rng = Prng.create 42 in
      let inst = F.random_instance rng p in
      let exact = Exact_sketch.create inst.F.graph in
      Table.add_row t
        [
          Table.fint n;
          Table.fint beta;
          Table.fint inv_eps;
          Table.fint cap;
          Table.ffloat ~digits:0 bound;
          Table.ffloat ~digits:3 (float_of_int cap /. bound);
          Common.kbits (F.codec_bits p);
          Common.kbits exact.Sketch.size_bits;
        ])
    [
      (64, 1, 4); (64, 1, 8); (64, 1, 16); (256, 1, 8); (256, 1, 16); (1024, 1, 16);
      (256, 4, 8); (512, 4, 16); (512, 16, 8); (1024, 16, 16);
    ];
  Table.print t;
  Common.note
    "ratio = |s| / (n√β/ε) stays Θ(1) across n, β, ε: the construction stores";
  Common.note
    "a bit string of exactly the lower-bound size, and the codec (a true cut";
  Common.note
    "data structure answering queries exactly) matches it, so the bound is tight."

let run () =
  Common.section "E3  Theorem 1.1 — for-each cut sketch lower bound";
  let rng = Common.rng_for 3 in
  success_table rng;
  print_newline ();
  bits_table ()

(* E14 — the cut-counting fact behind the distributed pipeline: there are
   at most n^O(C) cuts within a factor C of the minimum (Karger), so the
   coordinator can afford to enumerate and re-score them all with for-each
   queries. On the n-cycle the count is known exactly — every pair of
   edges induces a distinct minimum cut, n(n-1)/2 of them — which makes the
   cycle a sharp test of both the theorem and our contraction-based
   enumerator's coverage. *)

open Dcs

let run () =
  Common.section "E14  Cut counting — enumeration coverage on known families";
  let rng = Common.rng_for 14 in
  let t =
    Table.create ~title:"minimum cuts of the n-cycle: theory n(n-1)/2 vs found"
      ~columns:[ "n"; "theory"; "found"; "coverage"; "trials used" ]
  in
  List.iter
    (fun n ->
      let g = Generators.cycle ~n in
      let theory = n * (n - 1) / 2 in
      (* enough contraction runs that every min cut appears w.h.p. *)
      let trials = 60 * theory in
      let cands = Karger.candidate_cuts rng ~trials ~factor:1.0 g in
      let found = List.length cands in
      Table.add_row t
        [
          Table.fint n;
          Table.fint theory;
          Table.fint found;
          Table.fpct (float_of_int found /. float_of_int theory);
          Table.fint trials;
        ])
    [ 5; 7; 9; 11 ];
  Table.print t;
  (* And a planted instance: the near-minimum census stays polynomial. *)
  let g = Generators.planted_mincut rng ~block:12 ~k:2 ~p_inner:0.3 in
  let t2 =
    Table.create ~title:"near-minimum census, planted instance (n=24, k=2)"
      ~columns:[ "factor C"; "cuts found within C·min" ]
  in
  List.iter
    (fun factor ->
      let cands = Karger.candidate_cuts rng ~trials:4000 ~factor g in
      Table.add_row t2
        [ Printf.sprintf "%.1f" factor; Table.fint (List.length cands) ])
    [ 1.0; 1.5; 2.0; 3.0 ];
  Table.print t2;
  Common.note
    "full coverage of all n(n-1)/2 cycle min cuts, and a slowly-growing";
  Common.note
    "near-minimum census: the poly(n) candidate set the distributed";
  Common.note "coordinator re-scores with for-each queries (§1 of the paper)."

(* E4 — Theorem 1.2 / Lemmas 4.2-4.4: the for-all lower bound.

   (a) The Lemma 4.3 population statistics (|L_high|, |L_low| as fractions
   of |L|) and the Lemma 4.4 capture rate |L_high ∩ Q| / |L_high| for the
   argmax subset Q.

   (b) Decode success for three decoders: the one-query strawman the paper
   rules out, the literal subset enumeration, and the polynomial top-k
   variant — against exact sketches and noisy oracles.

   (c) Bits against the Ω(nβ/ε²) curve. *)

open Dcs
module F = Forall_lb

let lemma43_44_table rng =
  let t =
    Table.create ~title:"Lemma 4.3 / 4.4 statistics (mean over 40 instances)"
      ~columns:
        [
          "beta"; "1/eps^2"; "k"; "|L_high|/k"; "|L_low|/k"; "capture |L_high∩Q|/|L_high|";
        ]
  in
  List.iter
    (fun (beta, d) ->
      let n = 2 * beta * d in
      let p = F.make_params ~beta ~inv_eps_sq:d n in
      let k = F.block_size p in
      let trials = 40 in
      let sum_high = ref 0.0 and sum_low = ref 0.0 in
      let capture_num = ref 0 and capture_den = ref 0 in
      for _ = 1 to trials do
        let inst = F.random_instance rng p in
        let high, low = F.lemma43_stats inst in
        sum_high := !sum_high +. (float_of_int high /. float_of_int k);
        sum_low := !sum_low +. (float_of_int low /. float_of_int k);
        (* Q from the argmax decoder on the exact graph. *)
        let q =
          F.topk_q_set p ~sketch_graph:inst.F.graph inst.F.target
            ~t:inst.F.gh.Gap_hamming.t
        in
        (* count how many of L_high landed in Q *)
        let a = inst.F.target in
        let quarter = float_of_int d /. 4.0 in
        let gap_half = float_of_int inst.F.gh.Gap_hamming.gap /. 2.0 in
        for i = 0 to k - 1 do
          let s =
            inst.F.gh.Gap_hamming.strings.(F.string_index_of_address p { a with F.i })
          in
          let overlap =
            float_of_int (Bitstring.intersection_size s inst.F.gh.Gap_hamming.t)
          in
          if overlap >= quarter +. gap_half then begin
            incr capture_den;
            if q.(i) then incr capture_num
          end
        done
      done;
      Table.add_row t
        [
          Table.fint beta;
          Table.fint d;
          Table.fint k;
          Table.ffloat ~digits:3 (!sum_high /. float_of_int trials);
          Table.ffloat ~digits:3 (!sum_low /. float_of_int trials);
          (if !capture_den = 0 then "n/a"
           else Table.ffloat ~digits:3
                  (float_of_int !capture_num /. float_of_int !capture_den));
        ])
    [ (1, 8); (1, 16); (2, 8); (2, 16); (4, 16) ];
  Table.print t;
  Common.note
    "Lemma 4.3 expects both fractions in [1/2 - 10c, 1/2] as c -> 0 (larger";
  Common.note
    "1/eps^2 gives finer gaps, pushing the fractions up); Lemma 4.4 expects";
  Common.note "capture >= 4/5, which holds with margin."

let success_table rng =
  let t =
    Table.create
      ~title:"decode success: one-query strawman vs Lemma 4.4 decoders (Thm 1.2)"
      ~columns:
        [
          "beta"; "1/eps^2"; "sketch"; "single-query"; "enumerate"; "top-k";
        ]
  in
  List.iter
    (fun (beta, d) ->
      let n = 2 * beta * d in
      let p = F.make_params ~beta ~inv_eps_sq:d n in
      let k = F.block_size p in
      let enum_ok = k <= 16 in
      let row sketch_name sketch_of graph_based =
        let trials = 60 in
        let s1 =
          (F.run_trials rng p ~sketch_of ~decoder:`Single ~trials).F.success_rate
        in
        let s2 =
          if enum_ok then
            Printf.sprintf "%.2f"
              (F.run_trials rng p ~sketch_of ~decoder:`Enumerate ~trials:30)
                .F.success_rate
          else "skipped (k>16)"
        in
        let s3 =
          if graph_based then
            Printf.sprintf "%.2f"
              (F.run_trials rng p ~sketch_of ~decoder:`Topk ~trials).F.success_rate
          else "n/a"
        in
        Table.add_row t
          [
            Table.fint beta; Table.fint d; sketch_name;
            Printf.sprintf "%.2f" s1; s2; s3;
          ]
      in
      row "exact" (fun _ inst -> Exact_sketch.create inst.F.graph) true;
      let eps = F.eps p in
      let noisy factor =
        row
          (Printf.sprintf "noisy eps'=%.3f" (factor *. eps))
          (fun r inst ->
            Noisy_oracle.create ~mode:Noisy_oracle.Random r ~eps:(factor *. eps)
              inst.F.graph)
          false
      in
      List.iter noisy [ 0.5; 0.1; 0.02 ];
      Table.add_rule t)
    [ (1, 8); (2, 8); (1, 16) ];
  Table.print t;
  Common.note
    "the single-query decoder needs accuracy ~ eps^2 (its signal Θ(1/ε) hides";
  Common.note
    "under a Θ(β/ε⁴) cut), while the subset decoders survive at Θ(ε) accuracy —";
  Common.note "the separation that drives the Section 4 reduction."

let bits_table () =
  let t =
    Table.create ~title:"raw Gap-Hamming bits vs the Ω(n·β/ε²) curve"
      ~columns:
        [ "n"; "beta"; "1/eps^2"; "bits h/ε²"; "n·β/ε²"; "ratio"; "codec kbits" ]
  in
  List.iter
    (fun (n, beta, d) ->
      let p = F.make_params ~beta ~inv_eps_sq:d n in
      let cap = F.bits_capacity p in
      let bound = float_of_int (n * beta * d) in
      Table.add_row t
        [
          Table.fint n;
          Table.fint beta;
          Table.fint d;
          Table.fint cap;
          Table.ffloat ~digits:0 bound;
          Table.ffloat ~digits:3 (float_of_int cap /. bound);
          Common.kbits (F.codec_bits p);
        ])
    [
      (16, 1, 8); (32, 1, 16); (64, 1, 32); (32, 2, 8); (64, 2, 16); (128, 4, 16);
      (256, 4, 32); (512, 8, 32);
    ];
  Table.print t;
  Common.note
    "ratio = |input| / (nβ/ε²) is Θ(1) over the whole grid; the codec stores";
  Common.note "exactly those bits and answers every cut query, matching the bound."

let run () =
  Common.section "E4  Theorem 1.2 — for-all cut sketch lower bound";
  let rng = Common.rng_for 4 in
  lemma43_44_table rng;
  print_newline ();
  success_table rng;
  print_newline ();
  bits_table ()

(* E1 — Lemma 3.2: the decode matrix M exists and has all three properties.

   For each k we verify: every row sums to zero; rows are pairwise
   orthogonal (exhaustively for small k, on random pairs beyond); every row
   factors as a tensor of two balanced ±1 vectors; and the correlation
   identity ⟨Σ z_t M_t, M_t⟩ = z_t·q² that powers the Section 3 decoder. *)

open Dcs

let verify k rng =
  let m = Decode_matrix.create ~k in
  let rows = Decode_matrix.rows m in
  let sum_violations = ref 0 in
  for t = 0 to rows - 1 do
    if Pm_vector.sum (Decode_matrix.row m t) <> 0 then incr sum_violations
  done;
  let tensor_violations = ref 0 in
  for t = 0 to rows - 1 do
    let u, v = Decode_matrix.row_factors m t in
    if
      (not (Pm_vector.is_balanced u))
      || (not (Pm_vector.is_balanced v))
      || Pm_vector.tensor u v <> Decode_matrix.row m t
    then incr tensor_violations
  done;
  let exhaustive = rows <= 256 in
  let pairs_checked = ref 0 in
  let orth_violations = ref 0 in
  if exhaustive then
    for t = 0 to rows - 1 do
      for t' = t + 1 to rows - 1 do
        incr pairs_checked;
        if Pm_vector.dot (Decode_matrix.row m t) (Decode_matrix.row m t') <> 0 then
          incr orth_violations
      done
    done
  else
    for _ = 1 to 3000 do
      let t = Prng.int rng rows and t' = Prng.int rng rows in
      if t <> t' then begin
        incr pairs_checked;
        if Pm_vector.dot (Decode_matrix.row m t) (Decode_matrix.row m t') <> 0 then
          incr orth_violations
      end
    done;
  (* correlation identity on a random superposition *)
  let z = Array.init rows (fun _ -> Prng.sign rng) in
  let x = Decode_matrix.superpose m z in
  let corr_violations = ref 0 in
  let probes = min rows 64 in
  for _ = 1 to probes do
    let t = Prng.int rng rows in
    let expected = float_of_int (z.(t) * Decode_matrix.row_norm_sq m) in
    if Float.abs (Decode_matrix.correlate m x t -. expected) > 1e-6 then
      incr corr_violations
  done;
  ( rows,
    Decode_matrix.cols m,
    !sum_violations,
    !tensor_violations,
    !pairs_checked,
    !orth_violations,
    probes,
    !corr_violations )

let run () =
  Common.section "E1  Lemma 3.2 — decode matrix properties";
  let rng = Common.rng_for 1 in
  let t =
    Table.create ~title:"decode matrix M ∈ {±1}^{(q-1)² × q²}, q = 2^k"
      ~columns:
        [
          "k"; "q"; "rows"; "cols"; "row-sum=0"; "tensor+balanced";
          "orth pairs checked"; "orth violations"; "corr probes"; "corr violations";
        ]
  in
  for k = 1 to 6 do
    let rows, cols, sv, tv, pc, ov, probes, cv = verify k rng in
    Table.add_row t
      [
        Table.fint k;
        Table.fint (1 lsl k);
        Table.fint rows;
        Table.fint cols;
        (if sv = 0 then "all" else Printf.sprintf "%d violations" sv);
        (if tv = 0 then "all" else Printf.sprintf "%d violations" tv);
        Table.fint pc;
        Table.fint ov;
        Table.fint probes;
        Table.fint cv;
      ]
  done;
  Table.print t;
  Common.note
    "orthogonality checked exhaustively for k <= 4, on 3000 random pairs beyond."

(* E13 — the β dependence of the directed upper bounds: the for-all
   sampler's size must grow linearly in β (its oversampling factor is
   c·β·ln n/ε², mirroring CCPS21's Õ(nβ/ε²)), while accuracy stays at ε.
   This is the upper-bound side of the dependence whose lower-bound side
   E3/E4 establish. *)

open Dcs

let run () =
  Common.section "E13  β-scaling of the directed for-all sparsifier";
  let rng = Common.rng_for 13 in
  let eps = 0.7 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "balanced digraphs, n=120, dense weighted, eps=%.1f, c=0.5" eps)
      ~columns:
        [
          "beta"; "m"; "kept"; "kept/m"; "vs beta=1"; "worst cut err (30 cuts)";
        ]
  in
  let baseline = ref None in
  List.iter
    (fun beta ->
      let g =
        Generators.balanced_digraph rng ~n:120 ~p:0.8 ~beta ~max_weight:30.0
      in
      let h = Directed_sparsifier.forall_sparsify ~c:0.5 rng ~eps ~beta g in
      let kept = Digraph.m h in
      if !baseline = None then baseline := Some (float_of_int kept);
      let worst = ref 0.0 in
      for _ = 1 to 30 do
        let c = Cut.random rng ~n:120 in
        let truth = Cut.value g c in
        if truth > 0.0 then
          worst := Float.max !worst (Float.abs (Cut.value h c -. truth) /. truth)
      done;
      Table.add_row t
        [
          Printf.sprintf "%.0f" beta;
          Table.fint (Digraph.m g);
          Table.fint kept;
          Table.fpct (float_of_int kept /. float_of_int (Digraph.m g));
          Table.ffloat ~digits:2
            (float_of_int kept /. Option.value !baseline ~default:1.0);
          Table.fpct !worst;
        ])
    [ 1.0; 2.0; 4.0; 8.0 ];
  Table.print t;
  Common.note
    "kept-edge counts grow ~linearly with β (the 'vs beta=1' column) while";
  Common.note
    "sampled-cut error stays within ε — the Õ(nβ/ε²) upper bound's β factor,";
  Common.note "whose necessity is exactly Theorem 1.2 (E4)."

(* E6 — Theorem 1.3 / Lemma 5.6: query complexity on the hard instances.

   We build G_{x,y} from promise 2-SUM instances, run the (near-optimal)
   local-query estimator, and meter both queries and the 2-bit-per-query
   communication of the Lemma 5.6 simulation. The measured counts are
   compared against the Ω(min{m, m/(ε²k)}) lower-bound curve: the ratio
   must stay >= 1 (no algorithm can beat the bound — ratios of a few dozen
   are the Õ factors), the ε sweep shows the 1/ε² growth up to the full-
   read ceiling (the min{m, ·} regime), and the k sweep shows the 1/k
   decay. All instances satisfy the Lemma 5.5 hypothesis √N >= 3·INT, so
   the true minimum cut is exactly 2·INT = 2·r·α. *)

open Dcs

let l = 120 (* √N; G has n = 480 vertices and m = 2N = 28800 edges *)

let build_instance rng ~alpha ~frac =
  let n_bits = l * l in
  let t = 16 in
  let len = n_bits / t in
  let inst = Two_sum.generate rng ~t ~len ~alpha ~frac_intersecting:frac in
  let x, y = Two_sum.concat_pair inst in
  let int_xy = Bitstring.intersection_size x y in
  assert (l >= 3 * int_xy);
  (Gxy.build ~x ~y, int_xy)

let run () =
  Common.section "E6  Theorem 1.3 — local-query min-cut lower bound";
  let rng = Common.rng_for 6 in
  let t =
    Table.create
      ~title:"measured queries on G_{x,y} vs Ω(min{m, m/(ε²k)}) (full read = 2m+n)"
      ~columns:
        [
          "sweep"; "eps"; "n"; "m"; "k=2INT"; "bound"; "queries"; "comm bits";
          "q/bound"; "capped"; "est ok";
        ]
  in
  let row sweep ~eps ~alpha ~frac =
    let g, int_xy = build_instance rng ~alpha ~frac in
    let k = 2 * int_xy in
    let m = Ugraph.m g in
    let cap = (2 * m) + Ugraph.n g in
    let o = Oracle.create ~memoize:true g in
    let r = Estimator.estimate ~c0:1.0 rng o ~eps ~mode:Estimator.Modified in
    let bound =
      Float.min (float_of_int m)
        (float_of_int m /. (eps *. eps *. float_of_int k))
    in
    let ok =
      Float.abs (r.Estimator.estimate -. float_of_int k)
      <= (eps *. float_of_int k) +. 1e-9
    in
    Table.add_row t
      [
        sweep;
        Printf.sprintf "%.2f" eps;
        Table.fint (Ugraph.n g);
        Table.fint m;
        Table.fint k;
        Table.ffloat ~digits:0 bound;
        Table.fint r.Estimator.total_queries;
        Table.fint r.Estimator.comm_bits;
        Table.ffloat ~digits:2 (float_of_int r.Estimator.total_queries /. bound);
        Table.fbool (r.Estimator.total_queries >= cap);
        Table.fbool ok;
      ]
  in
  (* ε sweep at fixed k = 80 *)
  List.iter (fun eps -> row "eps" ~eps ~alpha:10 ~frac:0.25) [ 1.0; 0.7; 0.5; 0.35 ];
  Table.add_rule t;
  (* k sweep at fixed ε *)
  List.iter (fun alpha -> row "k" ~eps:0.7 ~alpha ~frac:0.25) [ 2; 5; 10 ];
  Table.print t;
  Common.note
    "every query of the estimator is simulated with <= 2 bits of Alice/Bob";
  Common.note
    "communication (degree queries are free: G_{x,y} is √N-regular). Query";
  Common.note
    "counts sit a logarithmic factor above the Ω curve, grow ~1/ε² until the";
  Common.note "full-read ceiling (the min{m,·} regime), and decay with k."

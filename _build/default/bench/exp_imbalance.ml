(* E15 — the imbalance decomposition as a for-each upper bound:
   w(S,V\S) = (u(S) + Δ(S))/2 with Δ additive over vertices, so a directed
   sketch is n exact imbalances plus an undirected sketch at accuracy
   ε/(1+β). Compared against the direct β-oversampled directed sampler on
   the same graphs; the Eulerian (β = 1) row is the limiting case where
   the directed problem collapses onto the undirected one (Δ ≡ 0). *)

open Dcs

let run () =
  Common.section "E15  Imbalance decomposition — directed sketching via u(S) + Δ(S)";
  let rng = Common.rng_for 15 in
  let eps = 0.6 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "n=120 dense weighted balanced digraphs, eps=%.1f (30 cuts audited)" eps)
      ~columns:
        [
          "beta"; "exact kbits"; "imbalance sketch kbits"; "imb worst err";
          "directed sampler kbits"; "smp worst err"; "max |Δ(v)|";
        ]
  in
  List.iter
    (fun beta ->
      let g =
        if beta = 1.0 then
          (* genuine Eulerian instance: a circulation *)
          Eulerian.random_circulation rng ~n:120 ~cycles:220 ~max_weight:20.0
        else Generators.balanced_digraph rng ~n:120 ~p:0.8 ~beta ~max_weight:30.0
      in
      let exact = Exact_sketch.create g in
      let imb_sk = Imbalance_sketch.create ~c:1.0 rng ~eps ~beta g in
      let smp = Directed_sparsifier.foreach_sketch ~c:1.0 rng ~eps ~beta g in
      let audit (sk : Sketch.t) =
        let worst = ref 0.0 in
        for _ = 1 to 30 do
          let c = Cut.random rng ~n:120 in
          let truth = Cut.value g c in
          if truth > 0.0 then
            worst := Float.max !worst (Float.abs (sk.Sketch.query c -. truth) /. truth)
        done;
        !worst
      in
      let max_imb =
        Array.fold_left
          (fun acc b -> Float.max acc (Float.abs b))
          0.0
          (Imbalance_sketch.imbalances g)
      in
      Table.add_row t
        [
          Printf.sprintf "%.0f" beta;
          Common.kbits exact.Sketch.size_bits;
          Common.kbits imb_sk.Sketch.size_bits;
          Table.fpct (audit imb_sk);
          Common.kbits smp.Sketch.size_bits;
          Table.fpct (audit smp);
          Table.ffloat ~digits:1 max_imb;
        ])
    [ 1.0; 2.0; 4.0 ];
  Table.print t;
  Common.note
    "β = 1 is a true circulation: every vertex imbalance is 0 and directed";
  Common.note
    "sketching reduces exactly to undirected sketching — the Eulerian special";
  Common.note
    "case the paper's related work singles out. As β grows the undirected";
  Common.note
    "half must run at ε/(1+β), the mechanism behind the β factors in both the";
  Common.note "upper bounds and the paper's lower bounds."

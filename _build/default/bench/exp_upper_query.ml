(* E7 — Theorem 5.7 / Section 5.4 ablation: searching at accuracy ε (the
   original BGMP21 schedule, Õ(m/(ε⁴k))) versus searching at constant
   accuracy with a single ε-accurate confirming call (the paper's
   modification, Õ(m/(ε²k))).

   The query counters expose the separation directly: the original variant
   hits the full-read ceiling (reading all 2m edge slots) at much larger ε
   than the modified one, and in the pre-ceiling region its query count
   grows with slope ≈ -4 in log-log against ε versus ≈ -2. *)

open Dcs

let run () =
  Common.section "E7  Theorem 5.7 — modified vs original VERIFY-GUESS schedule";
  let rng = Common.rng_for 7 in
  let g = Generators.planted_mincut rng ~block:200 ~k:150 ~p_inner:0.85 in
  let true_k = Stoer_wagner.mincut_value g in
  let m = Ugraph.m g in
  Printf.printf "instance: n=%d m=%d true min cut=%.0f (full read = %d queries)\n"
    (Ugraph.n g) m true_k
    ((2 * m) + Ugraph.n g);
  let t =
    Table.create ~title:"queries vs eps (same instance, same oracle rules)"
      ~columns:
        [
          "eps"; "modified queries"; "modified est"; "original queries";
          "original est"; "capped?";
        ]
  in
  let cap = (2 * m) + Ugraph.n g in
  let pts_mod = ref [] and pts_orig = ref [] in
  List.iter
    (fun eps ->
      let o1 = Oracle.create ~memoize:true g in
      let r_mod = Estimator.estimate ~c0:1.0 rng o1 ~eps ~mode:Estimator.Modified in
      let o2 = Oracle.create ~memoize:true g in
      let r_orig = Estimator.estimate ~c0:1.0 rng o2 ~eps ~mode:Estimator.Original in
      if r_mod.Estimator.total_queries < cap then
        pts_mod := (eps, float_of_int r_mod.Estimator.total_queries) :: !pts_mod;
      if r_orig.Estimator.total_queries < cap then
        pts_orig := (eps, float_of_int r_orig.Estimator.total_queries) :: !pts_orig;
      Table.add_row t
        [
          Printf.sprintf "%.3f" eps;
          Table.fint r_mod.Estimator.total_queries;
          Table.ffloat ~digits:1 r_mod.Estimator.estimate;
          Table.fint r_orig.Estimator.total_queries;
          Table.ffloat ~digits:1 r_orig.Estimator.estimate;
          Table.fbool
            (r_mod.Estimator.total_queries >= cap
            || r_orig.Estimator.total_queries >= cap);
        ])
    [ 1.0; 0.9; 0.8; 0.65; 0.5; 0.4; 0.3 ];
  Table.print t;
  let slope name pts =
    if List.length pts >= 3 then
      Common.note "%s pre-ceiling log-log slope vs eps: %.2f" name
        (Stats.loglog_slope (Array.of_list pts))
    else Common.note "%s: too few pre-ceiling points for a slope" name
  in
  slope "modified" !pts_mod;
  slope "original" !pts_orig;
  Common.note
    "the original schedule pays its final VERIFY-GUESS at guess t/κ(ε) with";
  Common.note
    "κ(ε) ~ 1/ε², inflating the sampling rate by an extra 1/ε² — it saturates";
  Common.note "the 2m+n ceiling while the modified schedule still samples."

(* E8 — "tight up to logarithmic factors": measured sketch sizes against
   the lower-bound curves, on the lower bounds' own instance families.

   Three size columns per configuration:
   - the lower bound value (n√β/ε for for-each, nβ/ε² for for-all);
   - the instance codec — a real data structure answering every cut query
     exactly, whose size is the encoded string: the matching upper bound;
   - the sampling sketches (general-purpose upper bounds), which sit above
     the curve by the expected logarithmic/constant factors. *)

open Dcs

let foreach_table rng =
  let t =
    Table.create ~title:"for-each (Theorem 1.1): sizes in kbits"
      ~columns:
        [
          "n"; "beta"; "1/eps"; "LB n√β/ε"; "codec"; "exact sketch";
          "sampler (for-each, directed)"; "codec/LB";
        ]
  in
  List.iter
    (fun (n, beta, inv_eps) ->
      let p = Foreach_lb.make_params ~beta ~inv_eps n in
      let inst = Foreach_lb.random_instance rng p in
      let lb =
        float_of_int n *. sqrt (float_of_int beta) *. float_of_int inv_eps
      in
      let codec = Foreach_lb.codec_bits p in
      let exact = Exact_sketch.create inst.Foreach_lb.graph in
      let sampler =
        Directed_sparsifier.foreach_sketch rng ~eps:(Foreach_lb.eps p)
          ~beta:(float_of_int beta) inst.Foreach_lb.graph
      in
      Table.add_row t
        [
          Table.fint n;
          Table.fint beta;
          Table.fint inv_eps;
          Common.kbits (int_of_float lb);
          Common.kbits codec;
          Common.kbits exact.Sketch.size_bits;
          Common.kbits sampler.Sketch.size_bits;
          Table.ffloat ~digits:2 (float_of_int codec /. lb);
        ])
    [ (64, 1, 8); (256, 1, 16); (256, 4, 8); (512, 4, 16); (1024, 16, 16) ];
  Table.print t

let forall_table rng =
  let t =
    Table.create ~title:"for-all (Theorem 1.2): sizes in kbits"
      ~columns:
        [
          "n"; "beta"; "1/eps^2"; "LB nβ/ε²"; "codec"; "exact sketch";
          "sampler (for-all, directed)"; "codec/LB";
        ]
  in
  List.iter
    (fun (n, beta, d) ->
      let p = Forall_lb.make_params ~beta ~inv_eps_sq:d n in
      let inst = Forall_lb.random_instance rng p in
      let lb = float_of_int (n * beta * d) in
      let codec = Forall_lb.codec_bits p in
      let exact = Exact_sketch.create inst.Forall_lb.graph in
      let sampler =
        Directed_sparsifier.forall_sketch rng ~eps:(Forall_lb.eps p)
          ~beta:(float_of_int beta) inst.Forall_lb.graph
      in
      Table.add_row t
        [
          Table.fint n;
          Table.fint beta;
          Table.fint d;
          Common.kbits (int_of_float lb);
          Common.kbits codec;
          Common.kbits exact.Sketch.size_bits;
          Common.kbits sampler.Sketch.size_bits;
          Table.ffloat ~digits:2 (float_of_int codec /. lb);
        ])
    [ (16, 1, 8); (64, 1, 32); (64, 2, 16); (256, 2, 64); (256, 4, 32) ];
  Table.print t

let run () =
  Common.section "E8  Tightness — measured sketch sizes vs the bound curves";
  let rng = Common.rng_for 8 in
  foreach_table rng;
  print_newline ();
  forall_table rng;
  Common.note
    "codec/LB ~ 1 on both families: the lower bounds are met by actual data";
  Common.note
    "structures on their own instances. The generic samplers carry the extra";
  Common.note
    "log-factor / union-bound overheads the paper's Õ hides (and our for-each";
  Common.note
    "sampler is the provable Õ(nβ/ε²)-style one — the Õ(n√β/ε) construction";
  Common.note "of CCPS21 is out of scope, see DESIGN.md)."

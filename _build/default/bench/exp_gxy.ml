(* E5 — Figure 2 / Lemma 5.5: MINCUT(G_{x,y}) = 2·INT(x,y) whenever
   √N >= 3·INT(x,y), plus the regularity and 2γ-connectivity facts the
   proof's case analysis (Figures 3-6) relies on. *)

open Dcs

(* Plant exactly [gamma] intersections into random strings of length l². *)
let planted_pair rng ~l ~gamma =
  let n = l * l in
  let x = Bitstring.zeros n and y = Bitstring.zeros n in
  let shared = Prng.sample_without_replacement rng ~k:gamma ~n in
  Array.iter
    (fun i ->
      x.(i) <- true;
      y.(i) <- true)
    shared;
  for i = 0 to n - 1 do
    if not x.(i) then begin
      match Prng.int rng 3 with
      | 0 -> x.(i) <- true
      | 1 -> y.(i) <- true
      | _ -> ()
    end
  done;
  (x, y)

let run () =
  Common.section "E5  Figure 2 / Lemma 5.5 — MINCUT(G_xy) = 2·INT(x,y)";
  let rng = Common.rng_for 5 in
  let t =
    Table.create ~title:"Lemma 5.5 across sizes and intersection counts"
      ~columns:
        [
          "N"; "sqrtN"; "INT"; "hypothesis"; "predicted"; "stoer-wagner";
          "match"; "regular"; "witness"; "2γ-connected";
        ]
  in
  List.iter
    (fun (l, gamma) ->
      let x, y = planted_pair rng ~l ~gamma in
      let g = Gxy.build ~x ~y in
      let hypothesis = l >= 3 * gamma in
      let mc, _ = Stoer_wagner.mincut g in
      let witness = Ugraph.cut_value g (Gxy.witness_cut ~side:l) in
      let regular =
        let ok = ref true in
        for v = 0 to (4 * l) - 1 do
          if Ugraph.degree g v <> l then ok := false
        done;
        !ok
      in
      let connected_2gamma =
        if gamma = 0 then true
        else begin
          (* sample one pair per Figure 3-6 case class *)
          let pairs =
            [
              (Gxy.vertex ~side:l Gxy.A 0, Gxy.vertex ~side:l Gxy.A (l - 1));
              (Gxy.vertex ~side:l Gxy.A 0, Gxy.vertex ~side:l Gxy.A' (l - 1));
              (Gxy.vertex ~side:l Gxy.A 0, Gxy.vertex ~side:l Gxy.B' (l / 2));
              (Gxy.vertex ~side:l Gxy.A 0, Gxy.vertex ~side:l Gxy.B (l / 2));
            ]
          in
          List.for_all
            (fun (u, v) -> Dinic.edge_disjoint_paths g ~s:u ~t:v >= 2 * gamma)
            pairs
        end
      in
      Table.add_row t
        [
          Table.fint (l * l);
          Table.fint l;
          Table.fint gamma;
          Table.fbool hypothesis;
          (if hypothesis then Table.fint (2 * gamma) else "-");
          Table.ffloat ~digits:0 mc;
          (if hypothesis then Table.fbool (Float.abs (mc -. float_of_int (2 * gamma)) < 1e-9)
           else "-");
          Table.fbool regular;
          Table.ffloat ~digits:0 witness;
          (if hypothesis then Table.fbool connected_2gamma else "-");
        ])
    [
      (16, 0); (16, 1); (16, 3); (16, 5);
      (32, 2); (32, 8); (32, 10);
      (48, 4); (48, 16);
      (64, 8); (64, 21);
      (64, 30) (* hypothesis violated: 3·30 > 64 *);
    ];
  Table.print t;
  Common.note
    "the witness cut (A∪A' | B∪B') always equals 2·INT; Stoer-Wagner confirms";
  Common.note
    "it is the global minimum exactly when √N >= 3·INT (last row: hypothesis";
  Common.note "violated, the identity is no longer guaranteed)."

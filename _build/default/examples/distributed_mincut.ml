(* Distributed minimum cut, the application motivating the paper's
   introduction: the graph's edges live on several servers; each sends a
   coarse for-all sketch plus an accurate for-each sketch, and the
   coordinator finds the minimum cut with far fewer bits than shipping the
   graph.

   Run with: dune exec examples/distributed_mincut.exe *)

open Dcs

let () =
  let rng = Prng.create 99 in

  (* A dense "datacenter" graph with a planted bottleneck: two near-cliques
     of 300 machines joined by 30 links. Density is what makes sparsification
     pay: per-shard edge strengths must clear ~4·ln n/ε² before the sampling
     probabilities drop below 1 (see EXPERIMENTS.md, E9). *)
  let g = Generators.planted_mincut rng ~block:300 ~k:30 ~p_inner:0.97 in
  let exact, exact_cut = Stoer_wagner.mincut g in
  Printf.printf "input: n=%d m=%d, true min cut = %.0f (|S|=%d)\n" (Ugraph.n g)
    (Ugraph.m g) exact
    (Cut.cardinal exact_cut);

  let servers = 2 in
  let shards = Partition.random rng ~servers g in
  Printf.printf "edges spread over %d servers: " servers;
  Array.iter (fun s -> Printf.printf "%d " (Ugraph.m s)) shards;
  print_newline ();

  List.iter
    (fun eps ->
      let cfg =
        { (Coordinator.default_config ~eps) with Coordinator.karger_trials = 60 }
      in
      let r = Coordinator.min_cut rng cfg shards in
      Printf.printf
        "eps=%-5.2f estimate=%7.1f (true %.0f)  candidates=%2d  comm: pipeline \
         %7d B (coarse %7d B + foreach %7d B) | forall@eps %7d B | ship-all %7d B\n"
        eps r.Coordinator.estimate exact r.Coordinator.candidates
        (r.Coordinator.total_bits / 8)
        (r.Coordinator.forall_bits / 8)
        (r.Coordinator.foreach_bits / 8)
        (r.Coordinator.fullacc_forall_bits / 8)
        (r.Coordinator.naive_bits / 8))
    [ 0.5; 0.35; 0.25 ];

  print_endline
    "the for-each half of the pipeline is what the paper's Theorem 1.1 lower-\n\
     bounds: no sketch answering per-cut queries can be asymptotically smaller\n\
     than Ω̃(n√β/ε) bits."

(* AGM graph sketching (the PODS 2012 framework the paper's introduction
   builds on): maintain connectivity of a graph arriving as a stream of
   edge insertions AND deletions, using O(n·polylog n) bits — far less
   than storing the edges.

   Run with: dune exec examples/streaming_connectivity.exe *)

open Dcs

let () =
  let rng = Prng.create 2718 in
  let n = 64 in
  let sk = Agm_sketch.create ~copies:6 rng ~n in

  (* Phase 1: stream in a random connected graph. *)
  let g = Generators.erdos_renyi_connected rng ~n ~p:0.08 in
  let m = Ugraph.m g in
  Ugraph.iter_edges g (fun u v _ -> Agm_sketch.add_edge sk u v);
  Printf.printf "streamed %d insertions over %d vertices\n" m n;
  Printf.printf
    "sketch size: %d bits — O(n·polylog n), fixed before the stream starts;\n\
    \ the stream itself is unbounded (deletions!) and the worst-case edge set\n\
    \ costs ~n² bits. Polylog constants dominate at this toy n; the point is\n\
    \ the scaling and the deletion support.\n"
    (Agm_sketch.size_bits sk);
  Printf.printf "connected (sketch says): %b | (BFS ground truth): %b\n"
    (let probe = Agm_sketch.create ~copies:6 (Prng.create 1) ~n in
     Ugraph.iter_edges g (fun u v _ -> Agm_sketch.add_edge probe u v);
     Agm_sketch.connected probe)
    (Traversal.is_connected g);

  (* Phase 2: delete a random spanning tree's worth of edges and watch the
     sketch track the truth. Deletions are what linear sketches buy: a
     sampling-based summary cannot survive them. *)
  let edges = Array.of_list (Ugraph.edges g) in
  Prng.shuffle rng edges;
  let deleted = ref 0 in
  let current = Ugraph.copy g in
  (try
     Array.iter
       (fun (u, v, _) ->
         Ugraph.set_edge current u v 0.0;
         Agm_sketch.remove_edge sk u v;
         incr deleted;
         if not (Traversal.is_connected current) then raise Exit)
       edges
   with Exit -> ());
  Printf.printf "deleted %d edges until the graph disconnected\n" !deleted;
  let forest = Agm_sketch.spanning_forest sk in
  let comps = Agm_sketch.components_after_forest sk forest in
  let truth = Traversal.connected_components current in
  let distinct a = Array.fold_left max (-1) a + 1 in
  Printf.printf "components: sketch >= %d | truth = %d\n" (distinct comps)
    (distinct truth);
  Printf.printf "sketch forest edges all real: %b\n"
    (List.for_all (fun (u, v) -> Ugraph.mem_edge current u v) forest)

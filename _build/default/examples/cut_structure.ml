(* Cut structure of a graph, three ways: the Gomory-Hu tree (all-pairs
   minimum cuts from n-1 max-flows), near-minimum cut enumeration by
   repeated contraction, and effective resistances (the spectral
   importance measure behind sparsifier sampling).

   Run with: dune exec examples/cut_structure.exe *)

open Dcs

let () =
  let rng = Prng.create 31415 in
  (* Two communities with a weak bridge — visible in all three views. *)
  let g = Generators.planted_mincut rng ~block:14 ~k:2 ~p_inner:0.5 in
  Printf.printf "graph: n=%d m=%d (two 14-vertex communities, 2 bridge edges)\n"
    (Ugraph.n g) (Ugraph.m g);

  (* 1. Gomory-Hu: the full min-cut metric in one tree. *)
  let t = Gomory_hu.build g in
  let v, side = Gomory_hu.global_min_cut t in
  Printf.printf "\ngomory-hu: global min cut %.0f, side {%s}\n" v
    (String.concat "," (List.map string_of_int (Cut.to_list side)));
  Printf.printf "  min cut within community A (0-13): %.0f\n"
    (Gomory_hu.min_cut_value t 0 13);
  Printf.printf "  min cut across communities (0-20): %.0f\n"
    (Gomory_hu.min_cut_value t 0 20);

  (* 2. All near-minimum cuts by repeated contraction. *)
  let candidates = Karger.candidate_cuts rng ~trials:400 ~factor:2.0 g in
  Printf.printf "\nnear-minimum cuts (within 2x, %d found):\n"
    (List.length candidates);
  List.iteri
    (fun i (value, c) ->
      if i < 5 then
        Printf.printf "  %.0f  |S|=%d\n" value
          (min (Cut.cardinal c) (Cut.cardinal (Cut.complement c))))
    candidates;

  (* 3. Effective resistances: bridge edges are electrically critical. *)
  let rs = Resistance.all_edges g in
  let ranked =
    Hashtbl.fold (fun (u, v) r acc -> (r, u, v) :: acc) rs []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare b a)
  in
  Printf.printf "\nhighest effective resistances (bridges first):\n";
  List.iteri
    (fun i (r, u, v) ->
      if i < 4 then
        Printf.printf "  %d -- %d  R=%.3f%s\n" u v r
          (if (u < 14) <> (v < 14) then "   <- bridge" else ""))
    ranked;
  Printf.printf "foster check: sum w·R = %.3f (n-1 = %d)\n"
    (Resistance.foster_sum g) (Ugraph.n g - 1);

  (* The spectral sampler must keep every bridge. *)
  let h = Spectral_sparsifier.sparsify rng ~eps:0.6 g in
  let bridges_kept =
    Ugraph.fold_edges
      (fun u v _ acc -> if (u < 14) <> (v < 14) then acc + 1 else acc)
      h 0
  in
  Printf.printf
    "\nspectral sparsifier at eps=0.6 kept %d/%d edges and %d/2 bridges\n"
    (Ugraph.m h) (Ugraph.m g) bridges_kept

(* Quickstart: build a balanced digraph, measure its balance, sparsify it
   in both the for-all and for-each senses, and compare cut estimates.

   Run with: dune exec examples/quickstart.exe *)

open Dcs

let () =
  let rng = Prng.create 2024 in

  (* A random strongly connected 2-balanced digraph on 64 vertices. *)
  let beta = 2.0 in
  let g = Generators.balanced_digraph rng ~n:64 ~p:0.5 ~beta ~max_weight:20.0 in
  Printf.printf "graph: n=%d directed edges=%d total weight=%.1f\n" (Digraph.n g)
    (Digraph.m g) (Digraph.total_weight g);
  Printf.printf "balance: edgewise certificate <= %.2f, sampled witness >= %.2f\n"
    (Balance.edgewise_upper_bound g)
    (Balance.sampled_lower_bound rng ~trials:200 g);

  (* Pick a cut and look at both directions. *)
  let s = Cut.of_mem ~n:64 (fun v -> v < 32) in
  Printf.printf "cut S = first half: w(S,S̄)=%.1f  w(S̄,S)=%.1f  ratio=%.2f\n"
    (Cut.value g s) (Cut.value_rev g s) (Balance.of_cut g s);

  (* Sketch it three ways and query the same cut. *)
  let exact = Exact_sketch.create g in
  let forall = Directed_sparsifier.forall_sketch rng ~eps:0.25 ~beta g in
  let foreach = Directed_sparsifier.foreach_sketch rng ~eps:0.25 ~beta g in
  let show (sk : Sketch.t) =
    Printf.printf "  %-28s size=%7d bits   estimate(S)=%8.1f   error=%.3f%%\n"
      sk.Sketch.name sk.Sketch.size_bits (sk.Sketch.query s)
      (100.0 *. Sketch.relative_error sk g s)
  in
  print_endline "sketches:";
  show exact;
  show forall;
  show foreach;

  (* Exact minimum cut of the undirected projection, two ways. *)
  let u = Ugraph.of_digraph g in
  let sw, cut = Stoer_wagner.mincut u in
  let kv, _ = Karger.mincut rng ~trials:100 u in
  Printf.printf "undirected projection min cut: stoer-wagner=%.1f (|S|=%d), karger=%.1f\n"
    sw (Cut.cardinal cut) kv

examples/distributed_mincut.ml: Array Coordinator Cut Dcs Generators List Partition Printf Prng Stoer_wagner Ugraph

examples/local_query_demo.ml: Bitstring Dcs Estimator Generators Gxy List Oracle Printf Prng Stoer_wagner Two_sum Ugraph

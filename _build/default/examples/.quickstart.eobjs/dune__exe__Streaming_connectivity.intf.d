examples/streaming_connectivity.mli:

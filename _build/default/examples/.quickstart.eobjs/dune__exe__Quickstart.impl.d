examples/quickstart.ml: Balance Cut Dcs Digraph Directed_sparsifier Exact_sketch Generators Karger Printf Prng Sketch Stoer_wagner Ugraph

examples/quickstart.mli:

examples/local_query_demo.mli:

examples/streaming_connectivity.ml: Agm_sketch Array Dcs Generators List Printf Prng Traversal Ugraph

examples/cut_structure.ml: Cut Dcs Generators Gomory_hu Hashtbl Karger List Printf Prng Resistance Spectral_sparsifier String Ugraph

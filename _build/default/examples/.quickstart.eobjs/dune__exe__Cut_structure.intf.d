examples/cut_structure.mli:

examples/distributed_mincut.mli:

examples/lower_bound_demo.ml: Array Balance Dcs Dcs_util Digraph Exact_sketch Foreach_lb List Noisy_oracle Printf Prng Sketch String

(* "Graphs as storage": the Section 3 reduction, run end to end.

   Alice encodes a text message into the edge weights of a β-balanced
   digraph (Theorem 1.1's construction); Bob recovers it bit by bit using
   only cut-value queries — four per bit, exactly as in the paper's proof.
   Then the same decode is attempted through a lossy (1 ± ε') cut oracle to
   show the accuracy threshold at which the channel breaks.

   Run with: dune exec examples/lower_bound_demo.exe *)

open Dcs
module F = Foreach_lb

let message = "PODS24"

let bits_of_string = Dcs_util.Message.to_signs
let string_of_bits = Dcs_util.Message.of_signs

let () =
  let rng = Prng.create 7 in
  let payload = bits_of_string message in

  (* Pick construction parameters with enough capacity. *)
  let p = F.make_params ~beta:1 ~inv_eps:8 32 in
  let capacity = F.bits_capacity p in
  Printf.printf "construction: n=%d, β=%d, 1/ε=%d -> capacity %d bits\n"
    p.F.n p.F.beta p.F.inv_eps capacity;
  assert (Array.length payload <= capacity);

  (* Pad the payload with random signs, as Alice's string is random. *)
  let s =
    Array.init capacity (fun i ->
        if i < Array.length payload then payload.(i) else Prng.sign rng)
  in
  let inst = F.encode p ~s in
  Printf.printf "encoded %S into a digraph with %d weighted edges (balance <= %.1f)\n"
    message (Digraph.m inst.F.graph)
    (Balance.edgewise_upper_bound inst.F.graph);

  (* Bob decodes through exact cut queries. *)
  let sk = Exact_sketch.create inst.F.graph in
  let decode query =
    Array.init (Array.length payload) (fun q ->
        (F.decode_bit p ~query q).F.decoded)
  in
  let recovered = decode sk.Sketch.query in
  Printf.printf "decoded via exact cut queries : %S (4 cut queries per bit)\n"
    (string_of_bits recovered);

  (* Now through increasingly lossy oracles. *)
  List.iter
    (fun eps' ->
      let noisy = Noisy_oracle.create rng ~eps:eps' inst.F.graph in
      let bits = decode noisy.Sketch.query in
      let errors = ref 0 in
      Array.iteri (fun i b -> if b <> payload.(i) then incr errors) bits;
      Printf.printf "decoded via (1±%.3f) oracle  : %S (%d/%d bit errors)\n" eps'
        (String.escaped (string_of_bits bits))
        !errors (Array.length payload))
    [ 0.001; 0.01; 0.05 ];

  Printf.printf
    "the paper's threshold for ε=1/%d is ε' ≈ c·ε/ln(1/ε) ≈ %.4f — decoding \
     survives below it and degrades above it.\n"
    p.F.inv_eps
    (F.eps p /. log (float_of_int p.F.inv_eps) /. 6.0)

(* Min-cut estimation with local queries (Section 5): estimate the global
   minimum cut of a graph you can only probe through degree / neighbor /
   adjacency queries, and watch the query meter.

   Also builds the paper's G_{x,y} hard instance (Figure 2 construction)
   from a 2-SUM instance and verifies Lemma 5.5 on it.

   Run with: dune exec examples/local_query_demo.exe *)

open Dcs

let () =
  let rng = Prng.create 5 in

  (* Part 1: estimate the min cut of a planted-bottleneck graph. *)
  let g = Generators.planted_mincut rng ~block:100 ~k:40 ~p_inner:0.7 in
  let exact = Stoer_wagner.mincut_value g in
  Printf.printf "graph: n=%d m=%d, true min cut = %.0f\n" (Ugraph.n g) (Ugraph.m g)
    exact;
  let oracle = Oracle.create ~memoize:true g in
  List.iter
    (fun eps ->
      let r = Estimator.estimate ~c0:1.0 rng oracle ~eps ~mode:Estimator.Modified in
      Printf.printf
        "eps=%-5.2f estimate=%6.1f  queries=%7d (degree %d + edge %d) of %d slots\n"
        eps r.Estimator.estimate r.Estimator.total_queries r.Estimator.degree_queries
        r.Estimator.edge_queries
        (2 * Ugraph.m g))
    [ 1.0; 0.5; 0.25 ];

  (* Part 2: the hard instance behind Theorem 1.3. *)
  print_newline ();
  let inst = Two_sum.generate rng ~t:32 ~len:32 ~alpha:2 ~frac_intersecting:0.1 in
  let x, y = Two_sum.concat_pair inst in
  let gxy = Gxy.build ~x ~y in
  let int_xy = Bitstring.intersection_size x y in
  Printf.printf "G_{x,y}: N=%d bits -> n=%d vertices, m=%d edges, INT(x,y)=%d\n"
    (Bitstring.length x) (Ugraph.n gxy) (Ugraph.m gxy) int_xy;
  (match Gxy.predicted_mincut ~x ~y with
  | Some predicted ->
      let actual = Stoer_wagner.mincut_value gxy in
      Printf.printf "Lemma 5.5: predicted min cut 2·INT = %d, Stoer–Wagner says %.0f\n"
        predicted actual
  | None -> print_endline "instance outside the Lemma 5.5 regime (√N < 3·INT)");

  (* Estimating its min cut through the oracle = solving 2-SUM: meter the
     communication of the Lemma 5.6 simulation. *)
  let o = Oracle.create ~memoize:true gxy in
  let r = Estimator.estimate ~c0:1.0 rng o ~eps:0.5 ~mode:Estimator.Modified in
  Printf.printf
    "estimator on G_{x,y}: estimate=%.1f, %d queries = %d bits of Alice/Bob \
     communication (Lemma 5.6 accounting)\n"
    r.Estimator.estimate r.Estimator.total_queries r.Estimator.comm_bits;
  Printf.printf "recovered Σ DISJ = %g (true %d)\n"
    (float_of_int inst.Two_sum.t
    -. (r.Estimator.estimate /. (2.0 *. float_of_int inst.Two_sum.alpha)))
    (Two_sum.disj_sum inst)

module Ugraph = Dcs_graph.Ugraph
module Cut = Dcs_graph.Cut
module Sketch = Dcs_sketch.Sketch
module Prng = Dcs_util.Prng

type config = {
  eps : float;
  eps_coarse : float;
  karger_trials : int;
  candidate_factor : float;
}

(* The paper uses (1 ± 0.2) coarse sketches; at laptop scale the ln n/ε²
   oversampling of Benczúr–Karger only drops below 1 for very dense graphs,
   so the default coarse accuracy is 0.5 (with a correspondingly wider
   candidate factor). EXPERIMENTS.md discusses the regime. *)
let default_config ~eps =
  { eps; eps_coarse = 0.5; karger_trials = 200; candidate_factor = 2.0 }

type result = {
  estimate : float;
  coarse_estimate : float;
  cut : Dcs_graph.Cut.t;
  candidates : int;
  forall_bits : int;
  foreach_bits : int;
  total_bits : int;
  naive_bits : int;
  fullacc_forall_bits : int;
}

let min_cut rng cfg shards =
  if Array.length shards = 0 then invalid_arg "Coordinator.min_cut: no shards";
  let n = Ugraph.n shards.(0) in
  (* Server side: each shard produces its two sketches. A shard may be
     disconnected or even empty — the samplers handle that (strength
     indices are per-component). *)
  let coarse =
    Array.map
      (fun shard ->
        if Ugraph.m shard = 0 then (shard, Sketch.ugraph_encoding_bits shard)
        else begin
          let h = Dcs_sketch.Benczur_karger.sparsify rng ~eps:cfg.eps_coarse shard in
          (h, Sketch.ugraph_encoding_bits h)
        end)
      shards
  in
  let fine =
    Array.map
      (fun shard ->
        if Ugraph.m shard = 0 then (shard, Sketch.ugraph_encoding_bits shard)
        else begin
          let h = Dcs_sketch.Foreach_sampler.sparsify rng ~eps:cfg.eps shard in
          (h, Sketch.ugraph_encoding_bits h)
        end)
      shards
  in
  (* Coordinator side: merge the coarse sparsifiers and enumerate
     near-minimum candidate cuts by repeated contraction. *)
  let merged = Partition.union n (Array.map fst coarse) in
  let candidates =
    Dcs_mincut.Karger.candidate_cuts rng ~trials:cfg.karger_trials
      ~factor:cfg.candidate_factor merged
  in
  let coarse_estimate =
    match candidates with [] -> infinity | (v, _) :: _ -> v
  in
  (* Refine every candidate with the for-each sketches: the estimate of a
     cut is the sum of the shards' estimates because edges are disjoint. *)
  let score cut =
    Array.fold_left (fun acc (h, _) -> acc +. Ugraph.cut_value h cut) 0.0 fine
  in
  let best =
    List.fold_left
      (fun acc (_, cut) ->
        let v = score cut in
        match acc with
        | Some (bv, _) when bv <= v -> acc
        | _ -> Some (v, cut))
      None candidates
  in
  let estimate, cut =
    match best with
    | Some (v, c) -> (v, c)
    | None -> invalid_arg "Coordinator.min_cut: no candidate cuts (empty graph?)"
  in
  let forall_bits = Array.fold_left (fun acc (_, b) -> acc + b) 0 coarse in
  let foreach_bits = Array.fold_left (fun acc (_, b) -> acc + b) 0 fine in
  let naive_bits =
    Array.fold_left (fun acc s -> acc + Sketch.ugraph_encoding_bits s) 0 shards
  in
  let fullacc_forall_bits =
    Array.fold_left
      (fun acc shard ->
        if Ugraph.m shard = 0 then acc + Sketch.ugraph_encoding_bits shard
        else begin
          let h = Dcs_sketch.Benczur_karger.sparsify rng ~eps:cfg.eps shard in
          acc + Sketch.ugraph_encoding_bits h
        end)
      0 shards
  in
  {
    estimate;
    coarse_estimate;
    cut;
    candidates = List.length candidates;
    forall_bits;
    foreach_bits;
    total_bits = forall_bits + foreach_bits;
    naive_bits;
    fullacc_forall_bits;
  }

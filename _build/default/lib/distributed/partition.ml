module Ugraph = Dcs_graph.Ugraph
module Prng = Dcs_util.Prng

let split ~servers g assign =
  if servers < 1 then invalid_arg "Partition: servers >= 1";
  let shards = Array.init servers (fun _ -> Ugraph.create (Ugraph.n g)) in
  Ugraph.iter_edges g (fun u v w -> Ugraph.add_edge shards.(assign u v) u v w);
  shards

let random rng ~servers g = split ~servers g (fun _ _ -> Prng.int rng servers)

let by_hash ~servers g =
  split ~servers g (fun u v -> ((u * 1000003) + (v * 998244353)) mod servers)

let union n shards =
  let g = Ugraph.create n in
  Array.iter
    (fun shard -> Ugraph.iter_edges shard (fun u v w -> Ugraph.add_edge g u v w))
    shards;
  g

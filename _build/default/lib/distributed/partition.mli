(** Edge partitioning for the distributed min-cut setting: the input graph's
    edges are split across servers; every server sees the full vertex set
    but only its own edges. *)

val random :
  Dcs_util.Prng.t -> servers:int -> Dcs_graph.Ugraph.t -> Dcs_graph.Ugraph.t array
(** Each edge assigned to a uniformly random server. *)

val by_hash : servers:int -> Dcs_graph.Ugraph.t -> Dcs_graph.Ugraph.t array
(** Deterministic assignment by endpoint hash (stable across runs). *)

val union : int -> Dcs_graph.Ugraph.t array -> Dcs_graph.Ugraph.t
(** Re-merge shards (weights add). *)

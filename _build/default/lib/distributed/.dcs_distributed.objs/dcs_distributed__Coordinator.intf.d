lib/distributed/coordinator.mli: Dcs_graph Dcs_util

lib/distributed/partition.ml: Array Dcs_graph Dcs_util

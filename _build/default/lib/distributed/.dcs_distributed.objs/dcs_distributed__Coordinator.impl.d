lib/distributed/coordinator.ml: Array Dcs_graph Dcs_mincut Dcs_sketch Dcs_util List Partition

lib/distributed/partition.mli: Dcs_graph Dcs_util

(** The ACK+16 distributed min-cut pipeline the paper's introduction
    describes: each server sends (a) a constant-accuracy for-all sketch and
    (b) a (1 ± ε) for-each sketch of its edge shard; the coordinator merges
    the coarse sparsifiers to find all O(1)-approximate minimum cuts (at
    most poly(n) of them, located by repeated contraction) and then scores
    each candidate by summing the servers' for-each estimates — paying the
    ε-dependent communication only once per server at for-each rates.

    The baselines quantify the trade-off: shipping raw edges, or shipping
    full-accuracy for-all sketches. All message sizes are metered in bits
    by the sketches' canonical encodings. *)

type config = {
  eps : float;            (** target accuracy of the final estimate *)
  eps_coarse : float;     (** accuracy of the for-all sketches (paper: 0.2;
                              default 0.5 at laptop scale) *)
  karger_trials : int;    (** contraction runs for candidate enumeration *)
  candidate_factor : float;  (** keep cuts within this factor of the best *)
}

val default_config : eps:float -> config

type result = {
  estimate : float;               (** refined min-cut estimate *)
  coarse_estimate : float;        (** best candidate value on the merged sparsifier *)
  cut : Dcs_graph.Cut.t;          (** the winning candidate *)
  candidates : int;               (** candidate cuts scored *)
  forall_bits : int;              (** Σ coarse sketch sizes *)
  foreach_bits : int;             (** Σ for-each sketch sizes *)
  total_bits : int;
  naive_bits : int;               (** shipping every shard verbatim *)
  fullacc_forall_bits : int;      (** shipping (1±ε) for-all sketches instead *)
}

val min_cut :
  Dcs_util.Prng.t -> config -> Dcs_graph.Ugraph.t array -> result
(** Runs the full pipeline over the shards. Requires the merged graph to be
    connected with at least 2 vertices. *)

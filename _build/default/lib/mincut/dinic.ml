module Digraph = Dcs_graph.Digraph
module Ugraph = Dcs_graph.Ugraph
module Cut = Dcs_graph.Cut

(* Arc-array representation: arcs stored in pairs, arc i and its reverse
   (i lxor 1). [cap] holds residual capacity. *)

type t = {
  n : int;
  head : int array;          (* arc -> destination *)
  next : int array;          (* arc -> next arc out of same tail *)
  first : int array;         (* vertex -> first arc or -1 *)
  cap : float array;         (* residual capacities, mutated by maxflow *)
  cap0 : float array;        (* original capacities, for reset *)
  level : int array;
  iter : int array;
}

let eps = 1e-12

let build n arcs =
  let m = List.length arcs in
  let head = Array.make (2 * m) 0 in
  let next = Array.make (2 * m) (-1) in
  let first = Array.make n (-1) in
  let cap = Array.make (2 * m) 0.0 in
  let idx = ref 0 in
  List.iter
    (fun (u, v, c) ->
      let a = !idx and b = !idx + 1 in
      idx := !idx + 2;
      head.(a) <- v;
      cap.(a) <- c;
      next.(a) <- first.(u);
      first.(u) <- a;
      head.(b) <- u;
      cap.(b) <- 0.0;
      next.(b) <- first.(v);
      first.(v) <- b)
    arcs;
  {
    n;
    head;
    next;
    first;
    cap;
    cap0 = Array.copy cap;
    level = Array.make n (-1);
    iter = Array.make n (-1);
  }

let of_digraph g =
  let arcs = Digraph.fold_edges (fun u v w acc -> (u, v, w) :: acc) g [] in
  build (Digraph.n g) arcs

let of_ugraph g =
  let arcs =
    Ugraph.fold_edges (fun u v w acc -> (u, v, w) :: (v, u, w) :: acc) g []
  in
  build (Ugraph.n g) arcs

let reset t = Array.blit t.cap0 0 t.cap 0 (Array.length t.cap)

let bfs t s =
  Array.fill t.level 0 t.n (-1);
  let q = Queue.create () in
  t.level.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let a = ref t.first.(u) in
    while !a >= 0 do
      let v = t.head.(!a) in
      if t.cap.(!a) > eps && t.level.(v) < 0 then begin
        t.level.(v) <- t.level.(u) + 1;
        Queue.add v q
      end;
      a := t.next.(!a)
    done
  done

let rec dfs t u sink pushed =
  if u = sink then pushed
  else begin
    let result = ref 0.0 in
    while !result = 0.0 && t.iter.(u) >= 0 do
      let a = t.iter.(u) in
      let v = t.head.(a) in
      if t.cap.(a) > eps && t.level.(v) = t.level.(u) + 1 then begin
        let d = dfs t v sink (Float.min pushed t.cap.(a)) in
        if d > eps then begin
          t.cap.(a) <- t.cap.(a) -. d;
          t.cap.(a lxor 1) <- t.cap.(a lxor 1) +. d;
          result := d
        end
        else t.iter.(u) <- t.next.(a)
      end
      else t.iter.(u) <- t.next.(a)
    done;
    !result
  end

let maxflow t ~s ~t:sink =
  if s = sink then invalid_arg "Dinic.maxflow: s = t";
  reset t;
  let flow = ref 0.0 in
  let continue = ref true in
  while !continue do
    bfs t s;
    if t.level.(sink) < 0 then continue := false
    else begin
      Array.blit t.first 0 t.iter 0 t.n;
      let rec augment () =
        let f = dfs t s sink infinity in
        if f > eps then begin
          flow := !flow +. f;
          augment ()
        end
      in
      augment ()
    end
  done;
  !flow

let mincut_side t ~s ~t:sink =
  let f = maxflow t ~s ~t:sink in
  (* Vertices reachable from s in the residual graph. *)
  bfs t s;
  let side = Cut.of_mem ~n:t.n (fun v -> t.level.(v) >= 0) in
  (f, side)

let edge_connectivity g =
  let n = Ugraph.n g in
  if n < 2 then invalid_arg "Dinic.edge_connectivity: need >= 2 vertices";
  let net = of_ugraph g in
  let best = ref infinity in
  for v = 1 to n - 1 do
    best := Float.min !best (maxflow net ~s:0 ~t:v)
  done;
  !best

let edge_disjoint_paths g ~s ~t:sink =
  let arcs =
    Ugraph.fold_edges (fun u v _ acc -> (u, v, 1.0) :: (v, u, 1.0) :: acc) g []
  in
  let net = build (Ugraph.n g) arcs in
  int_of_float (Float.round (maxflow net ~s ~t:sink))

lib/mincut/karger_stein.ml: Array Dcs_graph Dcs_util Float Hashtbl List

lib/mincut/karger_stein.mli: Dcs_graph Dcs_util

lib/mincut/brute.ml: Dcs_graph Float

lib/mincut/karger.ml: Array Dcs_graph Dcs_util Float Hashtbl List String

lib/mincut/brute.mli: Dcs_graph

lib/mincut/gomory_hu.ml: Array Dcs_graph Dinic Hashtbl List

lib/mincut/karger.mli: Dcs_graph Dcs_util

lib/mincut/gomory_hu.mli: Dcs_graph

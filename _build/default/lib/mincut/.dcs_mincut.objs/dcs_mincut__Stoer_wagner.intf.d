lib/mincut/stoer_wagner.mli: Dcs_graph

lib/mincut/stoer_wagner.ml: Array Dcs_graph

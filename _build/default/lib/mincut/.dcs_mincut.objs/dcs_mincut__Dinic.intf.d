lib/mincut/dinic.mli: Dcs_graph

lib/mincut/dinic.ml: Array Dcs_graph Float List Queue

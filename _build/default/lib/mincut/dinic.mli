(** Dinic's maximum-flow algorithm (float capacities).

    Used for s–t minimum cuts, for certifying edge connectivity, and for the
    2γ-edge-connectivity case checks of the paper's Figures 3–6 (Lemma 5.5's
    proof enumerates pairs u, v and exhibits 2γ edge-disjoint paths; max-flow
    certifies their existence). *)

type t

val of_digraph : Dcs_graph.Digraph.t -> t
(** Capacities are the edge weights. *)

val of_ugraph : Dcs_graph.Ugraph.t -> t
(** Each undirected edge becomes a pair of opposite arcs of that capacity,
    which models undirected flow exactly. *)

val maxflow : t -> s:int -> t:int -> float
(** Resets any previous flow before running. *)

val mincut_side : t -> s:int -> t:int -> float * Dcs_graph.Cut.t
(** Max-flow value together with the source side of a minimum s–t cut
    (vertices reachable from [s] in the final residual network). *)

val edge_connectivity : Dcs_graph.Ugraph.t -> float
(** Global edge connectivity: min over t <> 0 of maxflow(0, t). Exact for
    weighted undirected graphs; O(n) max-flow runs. Requires n >= 2 and a
    connected graph to be meaningful (returns 0 when disconnected). *)

val edge_disjoint_paths : Dcs_graph.Ugraph.t -> s:int -> t:int -> int
(** Max number of edge-disjoint s-t paths in an unweighted view of the graph
    (capacities clamped to 1). *)

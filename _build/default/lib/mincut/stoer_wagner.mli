(** Stoer–Wagner global minimum cut for weighted undirected graphs.

    Deterministic, O(n^3) with the simple maximum-adjacency search used
    here. Returns both the cut value and a witness side. This is the exact
    reference algorithm for Lemma 5.5 verification and for every place the
    benchmarks need ground-truth minimum cuts. *)

val mincut : Dcs_graph.Ugraph.t -> float * Dcs_graph.Cut.t
(** Requires a connected graph with at least 2 vertices. For a disconnected
    graph the result is (0, one component), which is still the true minimum
    cut. *)

val mincut_value : Dcs_graph.Ugraph.t -> float

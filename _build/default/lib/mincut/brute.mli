(** Exhaustive minimum-cut oracles for small graphs (test ground truth). *)

val mincut_ugraph : Dcs_graph.Ugraph.t -> float * Dcs_graph.Cut.t
(** Enumerates all 2^(n-1) - 1 proper cuts; requires 2 <= n <= 24. *)

val mincut_digraph : Dcs_graph.Digraph.t -> float * Dcs_graph.Cut.t
(** Minimum over proper S of the directed value w(S, V\S); same size limit. *)

(** Gomory–Hu tree (Gusfield's variant): a weighted tree on the same vertex
    set such that for every pair (u, v) the minimum u–v cut value equals
    the smallest edge weight on the tree path between them, and the
    corresponding tree edge induces a minimum u–v cut.

    Built with n-1 max-flow computations. Gives all-pairs minimum cuts at
    once — the structural view of cut space that sketches compress — and an
    independent oracle for the test suite (global min cut = lightest tree
    edge). *)

type t

val build : Dcs_graph.Ugraph.t -> t
(** Requires a connected graph with n >= 2. *)

val n : t -> int

val tree_edges : t -> (int * int * float) list
(** The n-1 tree edges (child, parent, flow value). *)

val min_cut_value : t -> int -> int -> float
(** Minimum u–v cut value, O(n) per query. *)

val min_cut : t -> int -> int -> float * Dcs_graph.Cut.t
(** Value and witness side (the side containing [u]) of a minimum u–v cut:
    the partition induced by removing the lightest tree-path edge. *)

val global_min_cut : t -> float * Dcs_graph.Cut.t
(** Lightest tree edge and its induced partition. *)

module Ugraph = Dcs_graph.Ugraph
module Cut = Dcs_graph.Cut

type t = {
  size : int;
  parent : int array;   (* parent.(0) unused; tree edge i -- parent.(i) *)
  flow : float array;   (* weight of that tree edge *)
}

let build g =
  let n = Ugraph.n g in
  if n < 2 then invalid_arg "Gomory_hu.build: need >= 2 vertices";
  if not (Dcs_graph.Traversal.is_connected g) then
    invalid_arg "Gomory_hu.build: graph must be connected";
  let parent = Array.make n 0 in
  let flow = Array.make n infinity in
  let net = Dinic.of_ugraph g in
  for i = 1 to n - 1 do
    let f, side = Dinic.mincut_side net ~s:i ~t:parent.(i) in
    flow.(i) <- f;
    (* Gusfield's re-rooting: vertices on i's side whose parent was i's
       parent now hang off i. *)
    for j = i + 1 to n - 1 do
      if Cut.mem side j && parent.(j) = parent.(i) then parent.(j) <- i
    done;
    (* If i's parent's own parent ended up on i's side, swap roles. *)
    if parent.(i) <> 0 && Cut.mem side parent.(parent.(i)) then begin
      let p = parent.(i) in
      let gp = parent.(p) in
      parent.(i) <- gp;
      parent.(p) <- i;
      flow.(i) <- flow.(p);
      flow.(p) <- f
    end
  done;
  { size = n; parent; flow }

let n t = t.size

let tree_edges t =
  let out = ref [] in
  for i = 1 to t.size - 1 do
    out := (i, t.parent.(i), t.flow.(i)) :: !out
  done;
  !out

(* Path from v to the root (vertex 0) as a vertex list. *)
let path_to_root t v =
  let rec go acc v = if v = 0 then List.rev (0 :: acc) else go (v :: acc) t.parent.(v) in
  go [] v

(* Lightest edge on the tree path between u and v, returned as the child
   endpoint of that edge. *)
let bottleneck t u v =
  if u = v then invalid_arg "Gomory_hu: u = v";
  let pu = path_to_root t u and pv = path_to_root t v in
  (* Find the lowest common ancestor via membership sets. *)
  let on_pu = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace on_pu x ()) pu;
  let lca = List.find (fun x -> Hashtbl.mem on_pu x) pv in
  let rec walk best x = if x = lca then best
    else begin
      let best =
        match best with
        | Some (_, bf) when bf <= t.flow.(x) -> best
        | _ -> Some (x, t.flow.(x))
      in
      walk best t.parent.(x)
    end
  in
  let best = walk None u in
  let best = walk best v in
  match best with
  | Some (child, f) -> (child, f)
  | None -> invalid_arg "Gomory_hu: degenerate path"

let min_cut_value t u v = snd (bottleneck t u v)

(* The side of the cut induced by removing tree edge (child, parent): the
   subtree rooted at child. *)
let subtree_side t child =
  let side = Array.make t.size false in
  side.(child) <- true;
  (* children lists *)
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 1 to t.size - 1 do
      if (not side.(v)) && side.(t.parent.(v)) then begin
        side.(v) <- true;
        changed := true
      end
    done
  done;
  Cut.of_array side

let min_cut t u v =
  let child, f = bottleneck t u v in
  let side = subtree_side t child in
  let side = if Cut.mem side u then side else Cut.complement side in
  (f, side)

let global_min_cut t =
  let best = ref (1, t.flow.(1)) in
  for i = 2 to t.size - 1 do
    if t.flow.(i) < snd !best then best := (i, t.flow.(i))
  done;
  let child, f = !best in
  (f, subtree_side t child)

module Bitstring = Dcs_comm.Bitstring
module Ugraph = Dcs_graph.Ugraph
module Cut = Dcs_graph.Cut

type vertex_class = A | A' | B | B'

let side ~n =
  let l = int_of_float (Float.round (sqrt (float_of_int n))) in
  if l * l <> n then invalid_arg "Gxy: length must be a perfect square";
  l

let vertex ~side:l cls idx =
  if idx < 0 || idx >= l then invalid_arg "Gxy.vertex: index";
  match cls with
  | A -> idx
  | A' -> l + idx
  | B -> (2 * l) + idx
  | B' -> (3 * l) + idx

let classify ~side:l v =
  if v < 0 || v >= 4 * l then invalid_arg "Gxy.classify";
  match v / l with
  | 0 -> (A, v mod l)
  | 1 -> (A', v mod l)
  | 2 -> (B, v mod l)
  | _ -> (B', v mod l)

let build ~x ~y =
  let n = Bitstring.length x in
  if Bitstring.length y <> n then invalid_arg "Gxy.build: length mismatch";
  let l = side ~n in
  let g = Ugraph.create (4 * l) in
  for i = 0 to l - 1 do
    for j = 0 to l - 1 do
      let idx = (i * l) + j in
      if x.(idx) && y.(idx) then begin
        Ugraph.add_edge g (vertex ~side:l A i) (vertex ~side:l B' j) 1.0;
        Ugraph.add_edge g (vertex ~side:l B i) (vertex ~side:l A' j) 1.0
      end
      else begin
        Ugraph.add_edge g (vertex ~side:l A i) (vertex ~side:l A' j) 1.0;
        Ugraph.add_edge g (vertex ~side:l B i) (vertex ~side:l B' j) 1.0
      end
    done
  done;
  g

let of_two_sum inst =
  let x, y = Dcs_comm.Two_sum.concat_pair inst in
  build ~x ~y

let witness_cut ~side:l =
  Cut.of_mem ~n:(4 * l) (fun v -> v < 2 * l)

let predicted_mincut ~x ~y =
  let n = Bitstring.length x in
  let l = side ~n in
  let int_xy = Bitstring.intersection_size x y in
  if l >= 3 * int_xy then Some (2 * int_xy) else None

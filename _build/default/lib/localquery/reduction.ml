module Two_sum = Dcs_comm.Two_sum
module Bitstring = Dcs_comm.Bitstring

type result = {
  answer : float;
  truth : int;
  additive_error : float;
  mincut_estimate : float;
  queries : int;
  comm_bits : int;
}

let solve_two_sum ?c0 rng inst ~eps =
  let x, y = Two_sum.concat_pair inst in
  let n_bits = Bitstring.length x in
  let l = Gxy.side ~n:n_bits in
  let int_xy = Bitstring.intersection_size x y in
  if l < 3 * int_xy then
    invalid_arg "Reduction.solve_two_sum: Lemma 5.5 hypothesis violated";
  let g = Gxy.build ~x ~y in
  let oracle = Oracle.create ~memoize:true g in
  let r = Estimator.estimate ?c0 rng oracle ~eps ~mode:Estimator.Modified in
  let alpha = float_of_int inst.Two_sum.alpha in
  let answer =
    float_of_int inst.Two_sum.t -. (r.Estimator.estimate /. (2.0 *. alpha))
  in
  let truth = Two_sum.disj_sum inst in
  {
    answer;
    truth;
    additive_error = Float.abs (answer -. float_of_int truth);
    mincut_estimate = r.Estimator.estimate;
    queries = r.Estimator.total_queries;
    comm_bits = r.Estimator.comm_bits;
  }

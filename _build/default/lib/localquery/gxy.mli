(** The Section 5.2 graph construction G_{x,y}.

    Given x, y ∈ {0,1}^N with N = ℓ², the vertex set splits into four
    layers A, A', B, B' of ℓ vertices each. For every index (i, j):

    - if x_{i,j} = y_{i,j} = 1 (an intersection), add the crossing edges
      (a_i, b'_j) and (b_i, a'_j);
    - otherwise add the parallel edges (a_i, a'_j) and (b_i, b'_j).

    Every vertex has degree exactly ℓ, the graph has 2N edges, and
    Lemma 5.5 gives MINCUT(G_{x,y}) = 2·INT(x, y) whenever √N >= 3·INT(x,y)
    (the witness cut is (A ∪ A', B ∪ B')). Figure 2 of the paper is
    [build] on x = 000000100, y = 100010100. *)

type vertex_class = A | A' | B | B'

val build : x:Dcs_comm.Bitstring.t -> y:Dcs_comm.Bitstring.t -> Dcs_graph.Ugraph.t
(** Requires equal lengths that are perfect squares. *)

val of_two_sum : Dcs_comm.Two_sum.instance -> Dcs_graph.Ugraph.t
(** [build] on the concatenated pair (Lemma 5.6 step 2). The concatenated
    length t·L must be a perfect square. *)

val side : n:int -> int
(** ℓ = √N given the bit-string length. *)

val classify : side:int -> int -> vertex_class * int
(** Vertex id → (layer, index within layer). Layout: A = 0..ℓ-1,
    A' = ℓ..2ℓ-1, B = 2ℓ..3ℓ-1, B' = 3ℓ..4ℓ-1. *)

val vertex : side:int -> vertex_class -> int -> int

val witness_cut : side:int -> Dcs_graph.Cut.t
(** The cut (A ∪ A') versus (B ∪ B') of size 2·INT. *)

val predicted_mincut : x:Dcs_comm.Bitstring.t -> y:Dcs_comm.Bitstring.t -> int option
(** [Some (2·INT)] when the Lemma 5.5 hypothesis √N >= 3·INT holds. *)

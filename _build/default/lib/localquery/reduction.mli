(** The Lemma 5.6 reduction, end to end: solving promise 2-SUM with a
    min-cut query algorithm.

    Given a 2-SUM(t, L, α) instance, build G_{x,y} from the concatenated
    strings, run a (1 ± ε) min-cut estimator against the local-query
    oracle, and output 1/ε² - MINCUT/(2α) ≈ Σ DISJ(Xⁱ, Yⁱ). Every oracle
    query is charged the 2 bits of Alice/Bob communication the lemma
    assigns it, so the result carries the full communication accounting
    that turns a fast estimator into a cheap 2-SUM protocol — the engine of
    Theorem 1.3. *)

type result = {
  answer : float;           (** estimate of Σ DISJ *)
  truth : int;
  additive_error : float;
  mincut_estimate : float;
  queries : int;
  comm_bits : int;
}

val solve_two_sum :
  ?c0:float ->
  Dcs_util.Prng.t ->
  Dcs_comm.Two_sum.instance ->
  eps:float ->
  result
(** Requires the concatenated length t·L to be a perfect square and the
    instance to satisfy the Lemma 5.5 hypothesis √N >= 3·Σ INT (checked).
    [c0] is passed through to VERIFY-GUESS. *)

lib/localquery/estimator.mli: Dcs_util Oracle

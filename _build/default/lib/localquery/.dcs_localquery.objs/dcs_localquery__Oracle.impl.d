lib/localquery/oracle.ml: Array Dcs_graph Hashtbl

lib/localquery/gxy.ml: Array Dcs_comm Dcs_graph Float

lib/localquery/reduction.mli: Dcs_comm Dcs_util

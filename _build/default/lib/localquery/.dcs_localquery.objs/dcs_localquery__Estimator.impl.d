lib/localquery/estimator.ml: Array Dcs_util Float Oracle Verify_guess

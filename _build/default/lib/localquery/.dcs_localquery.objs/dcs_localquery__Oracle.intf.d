lib/localquery/oracle.mli: Dcs_graph

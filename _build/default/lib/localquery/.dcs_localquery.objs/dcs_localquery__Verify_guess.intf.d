lib/localquery/verify_guess.mli: Dcs_util Oracle

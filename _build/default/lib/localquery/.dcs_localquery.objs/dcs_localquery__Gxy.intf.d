lib/localquery/gxy.mli: Dcs_comm Dcs_graph

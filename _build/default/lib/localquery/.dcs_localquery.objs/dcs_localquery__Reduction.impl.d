lib/localquery/reduction.ml: Dcs_comm Estimator Float Gxy Oracle

lib/localquery/verify_guess.ml: Array Dcs_graph Dcs_mincut Dcs_util Float Oracle

module Ugraph = Dcs_graph.Ugraph

let pair g u v =
  let n = Ugraph.n g in
  if u < 0 || u >= n || v < 0 || v >= n || u = v then invalid_arg "Resistance.pair";
  let l = Laplacian.of_ugraph g in
  let b = Array.make n 0.0 in
  b.(u) <- 1.0;
  b.(v) <- -1.0;
  let phi = Laplacian.solve l b in
  phi.(u) -. phi.(v)

(* Columns of the pseudoinverse, one CG solve per vertex:
   R(u,v) = L⁺_uu + L⁺_vv - 2·L⁺_uv. *)
let all_edges g =
  let n = Ugraph.n g in
  let l = Laplacian.of_ugraph g in
  let columns =
    Array.init n (fun u ->
        let b = Array.make n 0.0 in
        b.(u) <- 1.0;
        Laplacian.solve l b)
  in
  let out = Hashtbl.create (2 * Ugraph.m g) in
  Ugraph.iter_edges g (fun u v _ ->
      let r = columns.(u).(u) +. columns.(v).(v) -. (2.0 *. columns.(u).(v)) in
      Hashtbl.replace out ((min u v, max u v)) r);
  out

let foster_sum g =
  let rs = all_edges g in
  Ugraph.fold_edges
    (fun u v w acc -> acc +. (w *. Hashtbl.find rs (min u v, max u v)))
    g 0.0

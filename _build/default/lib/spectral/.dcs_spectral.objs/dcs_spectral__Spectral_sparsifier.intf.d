lib/spectral/spectral_sparsifier.mli: Dcs_graph Dcs_util

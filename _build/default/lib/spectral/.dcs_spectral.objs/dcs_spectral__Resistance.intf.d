lib/spectral/resistance.mli: Dcs_graph Hashtbl

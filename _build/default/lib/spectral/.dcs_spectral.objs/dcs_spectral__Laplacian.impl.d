lib/spectral/laplacian.ml: Array Dcs_graph Float Option

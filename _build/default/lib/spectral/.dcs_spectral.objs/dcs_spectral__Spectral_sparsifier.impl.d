lib/spectral/spectral_sparsifier.ml: Dcs_graph Dcs_util Float Hashtbl Resistance

lib/spectral/laplacian.mli: Dcs_graph

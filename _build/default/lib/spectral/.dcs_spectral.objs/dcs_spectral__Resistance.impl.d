lib/spectral/resistance.ml: Array Dcs_graph Hashtbl Laplacian

(** Graph Laplacians (dense) and their quadratic forms.

    Cut values are a special case of Laplacian quadratic forms
    (x = indicator of S gives xᵀLx = undirected cut value), which is how
    spectral sparsification generalizes cut sparsification — the stronger
    notion the paper's related work (ST11, SS11, ACK+16) studies. This
    module provides the dense Laplacian, its quadratic form, a conjugate-
    gradient pseudoinverse solve restricted to the space orthogonal to the
    all-ones vector, and matrix–vector application. Dense representation:
    intended for the n <= a-few-thousand experiment scale. *)

type t

val of_ugraph : Dcs_graph.Ugraph.t -> t
val n : t -> int

val apply : t -> float array -> float array
(** L·x. *)

val quadratic_form : t -> float array -> float
(** xᵀLx = Σ_{(u,v)∈E} w_uv (x_u - x_v)². *)

val cut_value : t -> Dcs_graph.Cut.t -> float
(** Quadratic form of the indicator vector: the undirected cut value. *)

val solve :
  ?tol:float -> ?max_iter:int -> t -> float array -> float array
(** [solve l b] returns the minimum-norm x with L·x = b, for b orthogonal
    to the all-ones vector (the component along 1 is projected away first).
    Conjugate gradients; requires a connected graph for convergence.
    Defaults: tol 1e-9, max_iter 10·n. *)

val entry : t -> int -> int -> float

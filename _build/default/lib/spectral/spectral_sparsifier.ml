module Ugraph = Dcs_graph.Ugraph
module Prng = Dcs_util.Prng

let probability ?(c = 4.0) ~eps g =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Spectral_sparsifier: eps in (0,1)";
  let n = float_of_int (max 2 (Ugraph.n g)) in
  let rs = Resistance.all_edges g in
  fun u v w ->
    let r = Hashtbl.find rs (min u v, max u v) in
    c *. w *. r *. log n /. (eps *. eps)

let sparsify ?c rng ~eps g =
  let prob = probability ?c ~eps g in
  let h = Ugraph.create (Ugraph.n g) in
  Ugraph.iter_edges g (fun u v w ->
      let p = Float.min 1.0 (prob u v w) in
      if p >= 1.0 then Ugraph.add_edge h u v w
      else if p > 0.0 && Prng.bernoulli rng p then Ugraph.add_edge h u v (w /. p));
  h

let expected_edges ?c ~eps g =
  let prob = probability ?c ~eps g in
  Ugraph.fold_edges (fun u v w acc -> acc +. Float.min 1.0 (prob u v w)) g 0.0

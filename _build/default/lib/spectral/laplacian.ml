module Ugraph = Dcs_graph.Ugraph
module Cut = Dcs_graph.Cut

type t = { size : int; mat : float array array }

let of_ugraph g =
  let n = Ugraph.n g in
  let mat = Array.make_matrix n n 0.0 in
  Ugraph.iter_edges g (fun u v w ->
      mat.(u).(v) <- mat.(u).(v) -. w;
      mat.(v).(u) <- mat.(v).(u) -. w;
      mat.(u).(u) <- mat.(u).(u) +. w;
      mat.(v).(v) <- mat.(v).(v) +. w);
  { size = n; mat }

let n t = t.size

let entry t i j = t.mat.(i).(j)

let apply t x =
  if Array.length x <> t.size then invalid_arg "Laplacian.apply: length";
  Array.init t.size (fun i ->
      let acc = ref 0.0 in
      for j = 0 to t.size - 1 do
        acc := !acc +. (t.mat.(i).(j) *. x.(j))
      done;
      !acc)

let quadratic_form t x =
  let lx = apply t x in
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (x.(i) *. v)) lx;
  !acc

let cut_value t c =
  if Cut.n c <> t.size then invalid_arg "Laplacian.cut_value: size";
  quadratic_form t (Array.init t.size (fun v -> if Cut.mem c v then 1.0 else 0.0))

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

(* Project out the all-ones component (the Laplacian's kernel on a
   connected graph). *)
let deflate x =
  let n = Array.length x in
  let mean = Array.fold_left ( +. ) 0.0 x /. float_of_int n in
  Array.map (fun v -> v -. mean) x

let solve ?(tol = 1e-9) ?max_iter t b =
  if Array.length b <> t.size then invalid_arg "Laplacian.solve: length";
  let max_iter = Option.value max_iter ~default:(10 * t.size) in
  let b = deflate b in
  let x = Array.make t.size 0.0 in
  let r = Array.copy b in
  let p = Array.copy b in
  let rs_old = ref (dot r r) in
  let b_norm = sqrt (dot b b) in
  if b_norm < tol then x
  else begin
    (try
       for _ = 1 to max_iter do
         let lp = apply t p in
         let denom = dot p lp in
         if Float.abs denom < 1e-300 then raise Exit;
         let alpha = !rs_old /. denom in
         for i = 0 to t.size - 1 do
           x.(i) <- x.(i) +. (alpha *. p.(i));
           r.(i) <- r.(i) -. (alpha *. lp.(i))
         done;
         let rs_new = dot r r in
         if sqrt rs_new <= tol *. b_norm then raise Exit;
         let beta = rs_new /. !rs_old in
         for i = 0 to t.size - 1 do
           p.(i) <- r.(i) +. (beta *. p.(i))
         done;
         rs_old := rs_new
       done
     with Exit -> ());
    deflate x
  end

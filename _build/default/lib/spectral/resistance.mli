(** Effective resistances.

    R(u,v) = (e_u - e_v)ᵀ L⁺ (e_u - e_v): the electrical resistance between
    u and v when edges are conductors of conductance w_e. Effective
    resistance is the importance measure behind spectral sparsification
    (SS11) — the spectral analogue of the inverse edge strengths used by
    the cut sparsifiers in this library. Foster's theorem
    (Σ_e w_e·R_e = n - 1 on a connected graph) gives the expected sample
    size and doubles as a strong correctness test. *)

val pair : Dcs_graph.Ugraph.t -> int -> int -> float
(** One CG solve; requires a connected graph. *)

val all_edges : Dcs_graph.Ugraph.t -> (int * int, float) Hashtbl.t
(** R_e for every edge (key has u < v); n CG solves via per-vertex
    potentials. *)

val foster_sum : Dcs_graph.Ugraph.t -> float
(** Σ_{e} w_e·R_e — equals n - 1 exactly on a connected graph. *)

(** Spectral sparsification by effective-resistance sampling (Spielman–
    Srivastava): keep edge e with probability
    p_e = min(1, c·w_e·R_e·ln n / ε²) and reweight by 1/p_e. The result
    preserves every Laplacian quadratic form — in particular every cut —
    within (1 ± ε) w.h.p., with O(n·ln n/ε²) expected edges (by Foster's
    theorem, Σ w_e·R_e = n-1).

    This is the strictly stronger sibling of the Benczúr–Karger cut
    sparsifier that the paper's related-work section contrasts against;
    having both lets the benchmarks compare the sampling measures
    (resistances vs strength indices) on identical graphs. *)

val sparsify :
  ?c:float -> Dcs_util.Prng.t -> eps:float -> Dcs_graph.Ugraph.t -> Dcs_graph.Ugraph.t
(** Requires a connected graph. Default [c] = 4.0. *)

val expected_edges : ?c:float -> eps:float -> Dcs_graph.Ugraph.t -> float

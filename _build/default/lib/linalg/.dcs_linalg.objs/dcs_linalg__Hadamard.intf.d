lib/linalg/hadamard.mli:

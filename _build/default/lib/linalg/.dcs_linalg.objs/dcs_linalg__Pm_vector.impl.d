lib/linalg/pm_vector.ml: Array Dcs_util

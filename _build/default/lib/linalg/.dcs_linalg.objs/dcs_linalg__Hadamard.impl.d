lib/linalg/hadamard.ml: Array

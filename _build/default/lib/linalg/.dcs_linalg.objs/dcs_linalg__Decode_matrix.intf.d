lib/linalg/decode_matrix.mli: Pm_vector

lib/linalg/pm_vector.mli: Dcs_util

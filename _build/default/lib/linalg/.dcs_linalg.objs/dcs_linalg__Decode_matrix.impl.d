lib/linalg/decode_matrix.ml: Array Hadamard Pm_vector

type t = { h : Hadamard.t; q : int }

let create ~k =
  if k < 1 then invalid_arg "Decode_matrix.create: k >= 1 required";
  let h = Hadamard.create k in
  { h; q = Hadamard.order h }

let q t = t.q
let rows t = (t.q - 1) * (t.q - 1)
let cols t = t.q * t.q
let row_norm_sq t = t.q * t.q

(* Row index t <-> Hadamard row pair (i, j), both ranging over 1..q-1
   (0-based; row 0 is the all-ones row and is excluded). *)
let factors_index t idx =
  if idx < 0 || idx >= rows t then invalid_arg "Decode_matrix: row index";
  let side = t.q - 1 in
  (1 + (idx / side), 1 + (idx mod side))

let row_factors t idx =
  let i, j = factors_index t idx in
  (Hadamard.row t.h i, Hadamard.row t.h j)

let row t idx =
  let u, v = row_factors t idx in
  Pm_vector.tensor u v

let superpose t z =
  if Array.length z <> rows t then invalid_arg "Decode_matrix.superpose: length";
  let q = t.q in
  let zm = Array.make_matrix q q 0.0 in
  Array.iteri
    (fun idx zt ->
      if zt <> 1 && zt <> -1 then invalid_arg "Decode_matrix.superpose: entries";
      let i, j = factors_index t idx in
      zm.(i).(j) <- float_of_int zt)
    z;
  let x = Hadamard.transform2 t.h zm in
  Array.init (q * q) (fun c -> x.(c / q).(c mod q))

let correlate t w idx =
  if Array.length w <> cols t then invalid_arg "Decode_matrix.correlate: length";
  let q = t.q in
  let i, j = factors_index t idx in
  let acc = ref 0.0 in
  for a = 0 to q - 1 do
    let hia = Hadamard.entry t.h i a in
    let base = a * q in
    for b = 0 to q - 1 do
      let s = hia * Hadamard.entry t.h j b in
      acc := !acc +. (float_of_int s *. w.(base + b))
    done
  done;
  !acc

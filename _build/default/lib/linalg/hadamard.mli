(** Sylvester–Hadamard matrices H_{2^k} over {-1, +1}.

    Entries are defined implicitly by H[i][j] = (-1)^popcount(i AND j), which
    is exactly the Sylvester recursion H_{2m} = [[H_m, H_m], [H_m, -H_m]]
    with H_1 = [1]. Row 0 is the all-ones row; rows are pairwise orthogonal
    with squared norm 2^k. The matrix is symmetric.

    This is the engine behind the Lemma 3.2 decode matrix of the paper's
    Section 3 lower bound. *)

type t

val create : int -> t
(** [create k] is H_{2^k}; requires [0 <= k <= 20]. *)

val order : t -> int
(** Number of rows/columns, 2^k. *)

val log_order : t -> int

val entry : t -> int -> int -> int
(** [entry h i j] in {-1, +1}; O(1), no materialization. *)

val row : t -> int -> int array
(** Materialize row [i]. *)

val dot_rows : t -> int -> int -> int
(** Inner product of two rows: [2^k] if equal, 0 otherwise (computed, used
    by tests to validate [entry]). *)

val fwht_in_place : float array -> unit
(** Fast Walsh–Hadamard transform: replaces [v] with H·v where H is the
    Sylvester matrix of matching order. Length must be a power of two.
    O(q log q). Involution up to scaling: H·(H·v) = q·v. *)

val transform2 : t -> float array array -> float array array
(** [transform2 h z] computes H·Z·H for a q×q matrix [z] (two-sided
    transform via row and column FWHTs). Does not modify [z]. *)

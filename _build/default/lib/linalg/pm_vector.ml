type t = int array

let of_array a =
  Array.iter (fun x -> if x <> 1 && x <> -1 then invalid_arg "Pm_vector.of_array") a;
  a

let random rng n = Array.init n (fun _ -> Dcs_util.Prng.sign rng)

let dot u v =
  if Array.length u <> Array.length v then invalid_arg "Pm_vector.dot: length";
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := !acc + (x * v.(i))) u;
  !acc

let sum v = Array.fold_left ( + ) 0 v

let is_balanced v = sum v = 0

let tensor u v =
  let nu = Array.length u and nv = Array.length v in
  Array.init (nu * nv) (fun idx -> u.(idx / nv) * v.(idx mod nv))

let support sign v =
  let out = ref [] in
  for i = Array.length v - 1 downto 0 do
    if v.(i) = sign then out := i :: !out
  done;
  Array.of_list !out

let positive_support v = support 1 v
let negative_support v = support (-1) v

let dot_float v w =
  if Array.length v <> Array.length w then invalid_arg "Pm_vector.dot_float: length";
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (float_of_int x *. w.(i))) v;
  !acc

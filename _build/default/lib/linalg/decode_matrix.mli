(** The decode matrix of Lemma 3.2.

    For q = 2^k, [M] is a ((q-1)^2) × q^2 matrix over {-1, +1} whose rows are
    H_i ⊗ H_j for all 2 <= i, j <= q (1-based; i.e. every pair of non-constant
    Hadamard rows). The lemma's three properties hold by construction:

    1. every row sums to zero;
    2. rows are pairwise orthogonal (with squared norm q^2);
    3. every row is a tensor product u ⊗ v of two balanced ±1 vectors.

    The matrix is never materialized: rows are generated on demand and the
    superposition x = Σ_t z_t · M_t is computed with two fast Walsh–Hadamard
    transforms in O(q^2 log q). *)

type t

val create : k:int -> t
(** [create ~k] for q = 2^k; requires [k >= 1] (q >= 2, at least one row). *)

val q : t -> int
(** Side length, 2^k (the paper's 1/ε). *)

val rows : t -> int
(** (q-1)^2. *)

val cols : t -> int
(** q^2. *)

val row_norm_sq : t -> int
(** ‖M_t‖² = q², same for every row. *)

val row_factors : t -> int -> Pm_vector.t * Pm_vector.t
(** [row_factors m t] = (u, v) with M_t = u ⊗ v, both balanced. *)

val row : t -> int -> Pm_vector.t
(** Materialized row, length q². *)

val superpose : t -> int array -> float array
(** [superpose m z] with [z] in {-1,+1}^(rows m) returns
    x = Σ_t z_t · M_t ∈ R^{q²}. O(q² log q). *)

val correlate : t -> float array -> int -> float
(** [correlate m w t] = ⟨w, M_t⟩ for a real vector w of length q². O(q²).
    By orthogonality, [correlate m (superpose m z) t = z_t * q²]. *)

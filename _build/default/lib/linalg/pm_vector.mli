(** Vectors over {-1, +1} and their tensor products.

    These are the h_A, h_B vectors of the paper's Section 3: each decode-
    matrix row factors as a tensor product u ⊗ v of two balanced ±1 vectors,
    and the positive support of u (resp. v) names the node subset A ⊂ L_i
    (resp. B ⊂ R_j) that Bob queries. *)

type t = int array
(** Invariant: every entry is -1 or +1. Constructors check this. *)

val of_array : int array -> t
(** Validates entries. *)

val random : Dcs_util.Prng.t -> int -> t

val dot : t -> t -> int

val sum : t -> int
(** Inner product with the all-ones vector. *)

val is_balanced : t -> bool
(** [sum v = 0]. *)

val tensor : t -> t -> t
(** [tensor u v] has length [|u| * |v|], entry [(i*|v| + j) = u.(i) * v.(j)].
    Matches the edge indexing of Section 3 ("first by u ∈ L_i then by
    v ∈ R_j"). *)

val positive_support : t -> int array
(** Indices with entry +1, increasing. *)

val negative_support : t -> int array

val dot_float : t -> float array -> float
(** ⟨v, w⟩ for a real vector [w] of the same length. *)

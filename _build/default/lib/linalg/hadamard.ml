type t = { k : int; q : int }

let create k =
  if k < 0 || k > 20 then invalid_arg "Hadamard.create: k out of range";
  { k; q = 1 lsl k }

let order t = t.q
let log_order t = t.k

let popcount_parity x =
  (* Parity of the number of set bits, folded down to one bit. *)
  let x = x lxor (x lsr 32) in
  let x = x lxor (x lsr 16) in
  let x = x lxor (x lsr 8) in
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1

let entry t i j =
  if i < 0 || i >= t.q || j < 0 || j >= t.q then invalid_arg "Hadamard.entry";
  if popcount_parity (i land j) = 0 then 1 else -1

let row t i = Array.init t.q (fun j -> entry t i j)

let dot_rows t i j =
  let acc = ref 0 in
  for c = 0 to t.q - 1 do
    acc := !acc + (entry t i c * entry t j c)
  done;
  !acc

let fwht_in_place v =
  let n = Array.length v in
  if n land (n - 1) <> 0 || n = 0 then invalid_arg "Hadamard.fwht_in_place: length";
  let h = ref 1 in
  while !h < n do
    let step = !h * 2 in
    let i = ref 0 in
    while !i < n do
      for j = !i to !i + !h - 1 do
        let a = v.(j) and b = v.(j + !h) in
        v.(j) <- a +. b;
        v.(j + !h) <- a -. b
      done;
      i := !i + step
    done;
    h := step
  done

let transform2 t z =
  let q = t.q in
  if Array.length z <> q then invalid_arg "Hadamard.transform2: shape";
  let out = Array.map Array.copy z in
  (* H·Z : transform each column; Z·H : transform each row. The Sylvester
     matrix is symmetric so both sides use the same FWHT. *)
  Array.iter
    (fun r ->
      if Array.length r <> q then invalid_arg "Hadamard.transform2: shape";
      fwht_in_place r)
    out;
  let col = Array.make q 0.0 in
  for j = 0 to q - 1 do
    for i = 0 to q - 1 do
      col.(i) <- out.(i).(j)
    done;
    fwht_in_place col;
    for i = 0 to q - 1 do
      out.(i).(j) <- col.(i)
    done
  done;
  out

(** The distributional Index problem of Lemma 3.1 (KNR01).

    Alice holds a uniformly random sign string s ∈ {-1,+1}^n; Bob holds a
    uniformly random index i and must output s_i from a single message. Any
    protocol succeeding with probability >= 2/3 transfers Ω(n) bits. The
    Section 3 reduction instantiates Alice's message with a for-each cut
    sketch; this module provides the instance distribution and a harness
    that measures a protocol's success probability and message size. *)

type instance = { s : int array; (** entries in {-1,+1} *) i : int }

val generate : Dcs_util.Prng.t -> n:int -> instance

type 'msg protocol = {
  encode : int array -> 'msg * int;  (** message and its size in bits *)
  decode : 'msg -> int -> int;       (** recover s_i from message and index *)
}

type result = {
  trials : int;
  successes : int;
  success_rate : float;
  mean_message_bits : float;
  string_length : int;
}

val play : Dcs_util.Prng.t -> n:int -> trials:int -> 'msg protocol -> result
(** Fresh random instance per trial. *)

val trivial_protocol : int array protocol
(** Alice sends s verbatim (1 bit per sign): the information-theoretic
    ceiling the lower bound is measured against. *)

(** The promise 2-SUM(t, L, α) problem of Definition 5.2 (after WZ14).

    Alice holds strings X^1..X^t and Bob Y^1..Y^t, each of length L, with
    the promise that INT(X^i, Y^i) ∈ {0, α} for every i and that at least a
    1/1000 fraction of pairs intersect. The goal is to approximate
    Σ_i DISJ(X^i, Y^i) within additive √t. Solving it requires Ω(tL/α)
    expected bits (Theorem 5.4, by the α-fold concatenation reduction from
    2-SUM(t, L/α, 1), which this module also implements). *)

type instance = {
  t : int;
  len : int;                 (** L *)
  alpha : int;
  xs : Bitstring.t array;
  ys : Bitstring.t array;
  intersecting : int;        (** r = #\{i : INT = α\} *)
}

val generate :
  Dcs_util.Prng.t ->
  t:int ->
  len:int ->
  alpha:int ->
  frac_intersecting:float ->
  instance
(** Random instance with ~[frac_intersecting]·t intersecting pairs (at least
    one; at least t/1000 enforced). Requires [alpha >= 1] and enough room:
    [len >= 2*alpha]. Non-intersecting pairs are disjoint strings; the
    intersecting ones share exactly [alpha] common positions. *)

val disj_sum : instance -> int
(** Σ_i DISJ(X^i, Y^i) = t - intersecting. *)

val int_sum : instance -> int
(** Σ_i INT(X^i, Y^i) = α · intersecting. *)

val check : instance -> bool
(** Validates the promise. *)

val concat_pair : instance -> Bitstring.t * Bitstring.t
(** The (x, y) concatenations of Lemma 5.6 step 1; both have length t·L. *)

val amplify : instance -> alpha:int -> instance
(** The Theorem 5.4 reduction: concatenate α copies of each string, turning
    a 2-SUM(t, L, 1) instance into 2-SUM(t, αL, α). Requires the input to
    have [alpha = 1]. *)

module Prng = Dcs_util.Prng

type instance = { s : int array; i : int }

let generate rng ~n =
  if n <= 0 then invalid_arg "Index_game.generate";
  { s = Array.init n (fun _ -> Prng.sign rng); i = Prng.int rng n }

type 'msg protocol = {
  encode : int array -> 'msg * int;
  decode : 'msg -> int -> int;
}

type result = {
  trials : int;
  successes : int;
  success_rate : float;
  mean_message_bits : float;
  string_length : int;
}

let play rng ~n ~trials proto =
  if trials <= 0 then invalid_arg "Index_game.play";
  let successes = ref 0 in
  let bits = ref 0 in
  for _ = 1 to trials do
    let inst = generate rng ~n in
    let msg, size = proto.encode inst.s in
    bits := !bits + size;
    if proto.decode msg inst.i = inst.s.(inst.i) then incr successes
  done;
  {
    trials;
    successes = !successes;
    success_rate = float_of_int !successes /. float_of_int trials;
    mean_message_bits = float_of_int !bits /. float_of_int trials;
    string_length = n;
  }

let trivial_protocol =
  {
    encode = (fun s -> (s, Array.length s));
    decode = (fun s i -> s.(i));
  }

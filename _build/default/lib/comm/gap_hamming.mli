(** The h-fold distributional Gap-Hamming problem of Lemma 4.1 (ACK+16).

    Alice holds h strings s_1..s_h ∈ {0,1}^d of Hamming weight d/2 where
    d = 1/ε². Bob holds an index i and a string t of weight d/2 such that
    Δ(s_i, t) is, with equal probability, either >= d/2 + c/ε (the "high"
    side) or <= d/2 - c/ε (the "low" side); all other s_j are uniform.
    Deciding the side with probability 2/3 from one message requires
    Ω(h/ε²) bits.

    Distances between equal-weight strings are even, so the generator uses
    the gap g = 2·ceil(c/(2ε)) and plants Δ(s_i, t) = d/2 ± g exactly, which
    lies in the support of the conditional distribution of the lemma. *)

type instance = {
  d : int;                       (** string length, 1/ε² *)
  strings : Bitstring.t array;   (** Alice's h strings, each weight d/2 *)
  i : int;                       (** Bob's index *)
  t : Bitstring.t;               (** Bob's string, weight d/2 *)
  high : bool;                   (** true iff Δ(s_i, t) >= d/2 + gap *)
  gap : int;                     (** planted distance offset *)
}

val generate : Dcs_util.Prng.t -> h:int -> inv_eps_sq:int -> c:float -> instance
(** [inv_eps_sq] is d = 1/ε²; must be a multiple of 4 so that the weight d/2
    and overlap d/4 are integers. [c] is the gap constant (paper's c). *)

val check : instance -> bool
(** Internal consistency: weights, index range, and the planted gap. *)

val total_input_bits : instance -> int
(** h·d — the raw size of Alice's input, an upper bound on useful
    communication. *)

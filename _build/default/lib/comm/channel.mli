(** One-way communication channel with bit metering.

    Every lower-bound reduction in the paper is a one-way protocol: Alice
    encodes her input into a message (a cut sketch, or simulated query
    answers) and Bob decodes. The channel records how many bits crossed so
    experiments can compare the measured message size against the
    information that was provably transferred (the decoded string). *)

type t

val create : unit -> t

val send : t -> bits:int -> unit
(** Record a message of [bits] bits from Alice to Bob. *)

val exchange : t -> bits:int -> unit
(** Record an interactive exchange (used by the Lemma 5.6 query simulation,
    where each local query costs at most 2 bits). *)

val total_bits : t -> int

val rounds : t -> int
(** Number of [send]/[exchange] events. *)

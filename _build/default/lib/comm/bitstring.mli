(** Binary strings for the communication problems of Sections 4 and 5. *)

type t = bool array

val zeros : int -> t
val length : t -> int

val random : Dcs_util.Prng.t -> int -> t
(** Uniform over {0,1}^n. *)

val random_weight : Dcs_util.Prng.t -> n:int -> weight:int -> t
(** Uniform over strings of length [n] with exactly [weight] ones. *)

val hamming_weight : t -> int

val hamming_distance : t -> t -> int

val intersection_size : t -> t -> int
(** INT(x, y) = #\{i : x_i = y_i = 1\} (Definition 5.1). *)

val disjoint : t -> t -> bool
(** DISJ(x, y) = (INT(x, y) = 0). *)

val ones : t -> int list
(** Indices of the 1-entries, increasing. *)

val concat : t list -> t

val bits : t -> int
(** Size in bits when transmitted raw = length. *)

val pp : Format.formatter -> t -> unit

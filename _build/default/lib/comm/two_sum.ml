module Prng = Dcs_util.Prng

type instance = {
  t : int;
  len : int;
  alpha : int;
  xs : Bitstring.t array;
  ys : Bitstring.t array;
  intersecting : int;
}

(* One pair with INT(x, y) = [common] exactly: [common] shared 1-positions,
   and every other position is 1 in at most one of the two strings. *)
let random_pair rng ~len ~common =
  let x = Bitstring.zeros len and y = Bitstring.zeros len in
  let shared = Prng.sample_without_replacement rng ~k:common ~n:len in
  Array.iter
    (fun p ->
      x.(p) <- true;
      y.(p) <- true)
    shared;
  for p = 0 to len - 1 do
    if not x.(p) then begin
      match Prng.int rng 3 with
      | 0 -> x.(p) <- true
      | 1 -> y.(p) <- true
      | _ -> ()
    end
  done;
  (x, y)

let generate rng ~t ~len ~alpha ~frac_intersecting =
  if t <= 0 then invalid_arg "Two_sum.generate: t";
  if alpha < 1 then invalid_arg "Two_sum.generate: alpha >= 1";
  if len < 2 * alpha then invalid_arg "Two_sum.generate: len too small";
  if frac_intersecting < 0.0 || frac_intersecting > 1.0 then
    invalid_arg "Two_sum.generate: frac_intersecting";
  let min_r = max 1 ((t + 999) / 1000) in
  let r = max min_r (int_of_float (Float.round (frac_intersecting *. float_of_int t))) in
  let r = min r t in
  let which = Array.make t false in
  Array.iter (fun i -> which.(i) <- true)
    (Prng.sample_without_replacement rng ~k:r ~n:t);
  let xs = Array.make t [||] and ys = Array.make t [||] in
  for i = 0 to t - 1 do
    let common = if which.(i) then alpha else 0 in
    let x, y = random_pair rng ~len ~common in
    xs.(i) <- x;
    ys.(i) <- y
  done;
  { t; len; alpha; xs; ys; intersecting = r }

let disj_sum inst = inst.t - inst.intersecting

let int_sum inst = inst.alpha * inst.intersecting

let check inst =
  let ok = ref true in
  let r = ref 0 in
  for i = 0 to inst.t - 1 do
    let v = Bitstring.intersection_size inst.xs.(i) inst.ys.(i) in
    if v = inst.alpha then incr r
    else if v <> 0 then ok := false
  done;
  !ok && !r = inst.intersecting && 1000 * !r >= inst.t

let concat_pair inst =
  ( Bitstring.concat (Array.to_list inst.xs),
    Bitstring.concat (Array.to_list inst.ys) )

let amplify inst ~alpha =
  if inst.alpha <> 1 then invalid_arg "Two_sum.amplify: input must have alpha = 1";
  if alpha < 1 then invalid_arg "Two_sum.amplify: alpha >= 1";
  let rep s = Bitstring.concat (List.init alpha (fun _ -> s)) in
  {
    t = inst.t;
    len = alpha * inst.len;
    alpha;
    xs = Array.map rep inst.xs;
    ys = Array.map rep inst.ys;
    intersecting = inst.intersecting;
  }

type t = { mutable bits : int; mutable rounds : int }

let create () = { bits = 0; rounds = 0 }

let send t ~bits =
  if bits < 0 then invalid_arg "Channel.send: negative bits";
  t.bits <- t.bits + bits;
  t.rounds <- t.rounds + 1

let exchange = send

let total_bits t = t.bits
let rounds t = t.rounds

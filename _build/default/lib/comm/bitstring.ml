type t = bool array

let zeros n = Array.make n false
let length = Array.length

let random rng n = Array.init n (fun _ -> Dcs_util.Prng.bool rng)

let random_weight rng ~n ~weight =
  if weight < 0 || weight > n then invalid_arg "Bitstring.random_weight";
  let s = Array.make n false in
  let picks = Dcs_util.Prng.sample_without_replacement rng ~k:weight ~n in
  Array.iter (fun i -> s.(i) <- true) picks;
  s

let hamming_weight s = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 s

let hamming_distance a b =
  if length a <> length b then invalid_arg "Bitstring.hamming_distance: length";
  let acc = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr acc) a;
  !acc

let intersection_size a b =
  if length a <> length b then invalid_arg "Bitstring.intersection_size: length";
  let acc = ref 0 in
  Array.iteri (fun i x -> if x && b.(i) then incr acc) a;
  !acc

let disjoint a b = intersection_size a b = 0

let ones s =
  let out = ref [] in
  for i = length s - 1 downto 0 do
    if s.(i) then out := i :: !out
  done;
  !out

let concat = Array.concat

let bits = length

let pp ppf s =
  Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) s

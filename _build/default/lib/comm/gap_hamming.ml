module Prng = Dcs_util.Prng

type instance = {
  d : int;
  strings : Bitstring.t array;
  i : int;
  t : Bitstring.t;
  high : bool;
  gap : int;
}

let generate rng ~h ~inv_eps_sq:d ~c =
  if h <= 0 then invalid_arg "Gap_hamming.generate: h";
  if d < 4 || d mod 4 <> 0 then
    invalid_arg "Gap_hamming.generate: 1/eps^2 must be a positive multiple of 4";
  if c <= 0.0 then invalid_arg "Gap_hamming.generate: c";
  let w = d / 2 in
  let eps = 1.0 /. sqrt (float_of_int d) in
  let g_real = c /. eps in
  let gap = 2 * max 1 (int_of_float (Float.ceil (g_real /. 2.0))) in
  if gap > d / 4 then invalid_arg "Gap_hamming.generate: gap too large for d";
  let i = Prng.int rng h in
  let t = Bitstring.random_weight rng ~n:d ~weight:w in
  let high = Prng.bool rng in
  (* Overlap o between s_i and t so that Δ = d - 2o equals d/2 ± gap. *)
  let o = if high then (d / 4) - (gap / 2) else (d / 4) + (gap / 2) in
  let t_ones = Array.of_list (Bitstring.ones t) in
  let t_zeros =
    Array.of_list
      (List.filter_map
         (fun j -> if t.(j) then None else Some j)
         (List.init d (fun j -> j)))
  in
  let s_i = Bitstring.zeros d in
  Array.iter (fun j -> s_i.(t_ones.(j)) <- true)
    (Prng.sample_without_replacement rng ~k:o ~n:w);
  Array.iter (fun j -> s_i.(t_zeros.(j)) <- true)
    (Prng.sample_without_replacement rng ~k:(w - o) ~n:(d - w));
  let strings =
    Array.init h (fun j ->
        if j = i then s_i else Bitstring.random_weight rng ~n:d ~weight:w)
  in
  { d; strings; i; t; high; gap }

let check inst =
  let w = inst.d / 2 in
  Array.for_all (fun s -> Bitstring.hamming_weight s = w) inst.strings
  && Bitstring.hamming_weight inst.t = w
  && inst.i >= 0
  && inst.i < Array.length inst.strings
  &&
  let delta = Bitstring.hamming_distance inst.strings.(inst.i) inst.t in
  if inst.high then delta >= w + inst.gap else delta <= w - inst.gap

let total_input_bits inst = Array.length inst.strings * inst.d

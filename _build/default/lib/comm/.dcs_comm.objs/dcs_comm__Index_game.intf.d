lib/comm/index_game.mli: Dcs_util

lib/comm/bitstring.ml: Array Dcs_util Format

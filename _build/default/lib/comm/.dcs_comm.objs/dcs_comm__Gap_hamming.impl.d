lib/comm/gap_hamming.ml: Array Bitstring Dcs_util Float List

lib/comm/index_game.ml: Array Dcs_util

lib/comm/bitstring.mli: Dcs_util Format

lib/comm/channel.mli:

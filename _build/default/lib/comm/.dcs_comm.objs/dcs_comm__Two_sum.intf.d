lib/comm/two_sum.mli: Bitstring Dcs_util

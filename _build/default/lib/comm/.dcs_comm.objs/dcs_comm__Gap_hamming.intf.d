lib/comm/gap_hamming.mli: Bitstring Dcs_util

lib/comm/channel.ml:

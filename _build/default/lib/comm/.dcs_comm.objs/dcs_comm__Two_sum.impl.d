lib/comm/two_sum.ml: Array Bitstring Dcs_util Float List

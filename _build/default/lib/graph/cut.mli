(** Vertex cuts: a side S with ∅ ⊂ S ⊂ V, represented as a bitmap.

    A cut value in this library is always the *directed* total weight
    w(S, V\S); undirected graphs are handled by symmetric digraphs, whose
    directed cut value equals the usual undirected cut value. *)

type t

val of_mem : n:int -> (int -> bool) -> t
(** Membership predicate sampled on 0..n-1. *)

val of_indices : n:int -> int list -> t
val of_array : bool array -> t
val singleton : n:int -> int -> t

val n : t -> int
val mem : t -> int -> bool
val cardinal : t -> int
val complement : t -> t
val to_list : t -> int list
val union : t -> t -> t
val is_proper : t -> bool
(** Neither empty nor the full vertex set. *)

val value : Digraph.t -> t -> float
(** w(S, V\S). *)

val value_rev : Digraph.t -> t -> float
(** w(V\S, S). *)

val equal : t -> t -> bool

val random : Dcs_util.Prng.t -> n:int -> t
(** Uniformly random proper cut (each vertex a fair coin, rejected until
    proper; requires n >= 2). *)

val random_of_size : Dcs_util.Prng.t -> n:int -> k:int -> t
(** Uniformly random side of exactly [k] vertices, 0 < k < n. *)

val pp : Format.formatter -> t -> unit

let bfs_generic ~n ~iter_next src =
  let dist = Array.make n (-1) in
  if n > 0 then begin
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      iter_next u (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v queue
          end)
    done
  end;
  dist

let bfs_digraph g src =
  bfs_generic ~n:(Digraph.n g)
    ~iter_next:(fun u k -> Digraph.iter_out g u (fun v _ -> k v))
    src

let bfs_ugraph g src =
  bfs_generic ~n:(Ugraph.n g)
    ~iter_next:(fun u k -> Ugraph.iter_neighbors g u (fun v _ -> k v))
    src

let connected_components g =
  let n = Ugraph.n g in
  let comp = Array.make n (-1) in
  let next_id = ref 0 in
  for s = 0 to n - 1 do
    if comp.(s) < 0 then begin
      let id = !next_id in
      incr next_id;
      let queue = Queue.create () in
      comp.(s) <- id;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Ugraph.iter_neighbors g u (fun v _ ->
            if comp.(v) < 0 then begin
              comp.(v) <- id;
              Queue.add v queue
            end)
      done
    end
  done;
  comp

let component_count g =
  let comp = connected_components g in
  Array.fold_left max (-1) comp + 1

let is_connected g = Ugraph.n g <= 1 || component_count g = 1

let is_strongly_connected g =
  let n = Digraph.n g in
  n <= 1
  ||
  let fwd = bfs_digraph g 0 in
  Array.for_all (fun d -> d >= 0) fwd
  &&
  let bwd = bfs_digraph (Digraph.reverse g) 0 in
  Array.for_all (fun d -> d >= 0) bwd

let spanning_forest g =
  let n = Ugraph.n g in
  let seen = Array.make n false in
  let out = ref [] in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      seen.(s) <- true;
      let queue = Queue.create () in
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Ugraph.iter_neighbors g u (fun v _ ->
            if not seen.(v) then begin
              seen.(v) <- true;
              out := (u, v) :: !out;
              Queue.add v queue
            end)
      done
    end
  done;
  !out

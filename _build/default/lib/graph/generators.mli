(** Random and structured graph generators used by tests and benchmarks. *)

val erdos_renyi : Dcs_util.Prng.t -> n:int -> p:float -> Ugraph.t
(** G(n, p), unit weights. *)

val erdos_renyi_connected : Dcs_util.Prng.t -> n:int -> p:float -> Ugraph.t
(** G(n, p) plus a random Hamiltonian path to guarantee connectivity. *)

val gnm : Dcs_util.Prng.t -> n:int -> m:int -> Ugraph.t
(** Uniform graph with exactly [m] distinct edges (requires m <= n(n-1)/2). *)

val random_digraph : Dcs_util.Prng.t -> n:int -> p:float -> max_weight:float -> Digraph.t
(** Each ordered pair gets an edge with probability [p] and weight uniform in
    (0, max_weight]. *)

val balanced_digraph :
  Dcs_util.Prng.t -> n:int -> p:float -> beta:float -> max_weight:float -> Digraph.t
(** Strongly connected digraph that is provably β-balanced: built from a
    random cycle plus random edges, where every edge (u,v) of weight w gets a
    reverse edge of weight at least w/β (the edgewise sufficient condition).
    The generator plants some cuts with ratio close to β. *)

val complete_bipartite_digraph :
  left:int ->
  right:int ->
  fwd:(int -> int -> float) ->
  bwd:(int -> int -> float) ->
  Digraph.t
(** Vertices 0..left-1 on the left, left..left+right-1 on the right; forward
    weight [fwd i j] and backward weight [bwd i j] for left index i and right
    index j (weights of 0 omit the edge). *)

val planted_mincut :
  Dcs_util.Prng.t -> block:int -> k:int -> p_inner:float -> Ugraph.t
(** Two G(block, p_inner) blocks (each made connected) joined by exactly [k]
    cross edges: the min cut is [k] whenever p_inner is large enough that
    each block is internally >k-connected. Unit weights. *)

val cycle : n:int -> Ugraph.t
val path : n:int -> Ugraph.t
val complete : n:int -> Ugraph.t

val hypercube : dim:int -> Ugraph.t
(** The d-dimensional hypercube Q_d: 2^d vertices, edge connectivity d. *)

val grid : rows:int -> cols:int -> Ugraph.t
(** 2D grid with unit weights. *)

val preferential_attachment : Dcs_util.Prng.t -> n:int -> m_per_node:int -> Ugraph.t
(** Barabási–Albert-style growth: each new vertex attaches to
    [m_per_node] existing vertices chosen proportionally to degree
    (with an initial clique of m_per_node + 1 vertices). *)

val random_regular : Dcs_util.Prng.t -> n:int -> degree:int -> Ugraph.t
(** Configuration-model d-regular simple graph (pairing retried until
    simple); requires n·degree even and degree < n. *)

val random_multigraph_weights :
  Dcs_util.Prng.t -> Ugraph.t -> max_weight:int -> Ugraph.t
(** Re-weight each edge with an integer uniform in 1..max_weight (models
    integer multiplicities for the Nagamochi–Ibaraki machinery). *)

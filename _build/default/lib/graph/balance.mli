(** β-balance of directed graphs (Definition 2.1).

    A strongly connected digraph is β-balanced when every directed cut
    satisfies w(S, V\S) <= β · w(V\S, S). The exact balance factor is a
    maximum over exponentially many cuts; we provide the exact value for
    small graphs, a per-edge sufficient upper bound (each edge having a
    reverse edge of weight >= w/β implies β-balance — the argument the paper
    uses for both of its constructions), and a sampled lower bound. *)

val of_cut : Digraph.t -> Cut.t -> float
(** w(S,V\S) / w(V\S,S) for one cut; [infinity] when the denominator is 0
    and the numerator is positive; 1 when both are 0. *)

val exact : Digraph.t -> float
(** Max of [of_cut] over all proper cuts. Requires [n <= 24] (enumerates
    2^(n-1) - 1 cuts, exploiting the S ↔ V\S symmetry pairing). *)

val edgewise_upper_bound : Digraph.t -> float
(** Max over edges (u,v) of w(u,v)/w(v,u) ([infinity] if some edge has no
    reverse). Always an upper bound on [exact]. *)

val sampled_lower_bound : Dcs_util.Prng.t -> trials:int -> Digraph.t -> float
(** Max of [of_cut] over random cuts and all singleton cuts — a lower bound
    witness for the true balance. *)

val is_balanced : Digraph.t -> beta:float -> cuts:Cut.t list -> bool
(** Checks the balance inequality on the given cuts. *)

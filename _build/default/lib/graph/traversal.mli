(** Reachability and connectivity. *)

val bfs_digraph : Digraph.t -> int -> int array
(** Unweighted BFS distances along edge directions; -1 for unreachable. *)

val bfs_ugraph : Ugraph.t -> int -> int array

val is_connected : Ugraph.t -> bool
(** True on the empty and 1-vertex graphs. *)

val connected_components : Ugraph.t -> int array
(** Component id per vertex, ids dense from 0. *)

val component_count : Ugraph.t -> int

val is_strongly_connected : Digraph.t -> bool
(** Forward and backward reachability from vertex 0 (n <= 1 is true). *)

val spanning_forest : Ugraph.t -> (int * int) list
(** Edges (u, v) of a BFS spanning forest, one tree per component. *)

(** Weighted undirected graphs on vertices 0..n-1.

    Used by the Section 5 machinery (local-query min-cut is posed for
    undirected graphs) and by the undirected sparsifiers. Parallel edges
    merge by weight accumulation. *)

type t

val create : int -> t
val n : t -> int
val m : t -> int
(** Number of distinct undirected edges. *)

val add_edge : t -> int -> int -> float -> unit
(** Accumulates; requires [u <> v] and [w >= 0]. *)

val set_edge : t -> int -> int -> float -> unit
val weight : t -> int -> int -> float
val mem_edge : t -> int -> int -> bool

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
val degree : t -> int -> int
(** Number of distinct neighbors. *)

val weighted_degree : t -> int -> float

val iter_edges : t -> (int -> int -> float -> unit) -> unit
(** Each undirected edge visited once, with u < v. *)

val fold_edges : (int -> int -> float -> 'a -> 'a) -> t -> 'a -> 'a
val edges : t -> (int * int * float) list
val total_weight : t -> float
val of_edges : int -> (int * int * float) list -> t
val copy : t -> t

val cut_weight : t -> (int -> bool) -> float
(** Total weight of edges with exactly one endpoint in S. *)

val cut_value : t -> Cut.t -> float

val to_digraph : t -> Digraph.t
(** Symmetric digraph with both orientations at the undirected weight (so
    directed cut values coincide with undirected ones). *)

val of_digraph : Digraph.t -> t
(** Undirected projection: weight(u,v) + weight(v,u) per unordered pair. *)

val neighbor_array : t -> int -> int array
(** Distinct neighbors of a vertex in increasing order. Used by the local
    query oracle to expose a stable "i-th neighbor" numbering. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

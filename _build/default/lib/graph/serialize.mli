(** Plain-text graph (de)serialization.

    Format — one header line with the vertex count, then one edge per line:
    {v
    <n>
    <u> <v> <w>
    ...
    v}
    Weights round-trip exactly (printed with 17 significant digits). Used
    by the [dcut] CLI and handy for fixtures. *)

val ugraph_to_string : Ugraph.t -> string
val ugraph_of_string : string -> Ugraph.t
val digraph_to_string : Digraph.t -> string
val digraph_of_string : string -> Digraph.t

val output_ugraph : out_channel -> Ugraph.t -> unit
val input_ugraph : in_channel -> Ugraph.t
val output_digraph : out_channel -> Digraph.t -> unit
val input_digraph : in_channel -> Digraph.t

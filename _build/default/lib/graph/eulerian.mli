(** Eulerian (circulation) digraphs: the β = 1 extreme of balance.

    A digraph is a circulation when every vertex has equal weighted
    in-degree and out-degree. By flow conservation, every directed cut then
    satisfies w(S, V\S) = w(V\S, S) exactly — circulations are precisely
    the 1-balanced graphs, the class (Eulerian sparsification) the paper's
    related work singles out. *)

val is_circulation : ?tol:float -> Digraph.t -> bool
(** Per-vertex in-weight = out-weight (within [tol], default 1e-9). *)

val imbalance : Digraph.t -> float array
(** out-weight minus in-weight per vertex. *)

val random_circulation :
  Dcs_util.Prng.t -> n:int -> cycles:int -> max_weight:float -> Digraph.t
(** Sum of [cycles] random weighted directed cycles (each a uniform
    permutation cycle over a random subset): a circulation by
    construction, strongly connected for modestly many cycles. *)

val make_circulation : Digraph.t -> Digraph.t
(** Rebalance a digraph into a circulation by routing each vertex's
    imbalance along the cycle 0 → 1 → … → n-1 → 0 (adds at most 2n
    correction edges; weights stay nonnegative). *)

module Prng = Dcs_util.Prng

let imbalance g =
  Array.init (Digraph.n g) (fun v -> Digraph.out_weight g v -. Digraph.in_weight g v)

let is_circulation ?(tol = 1e-9) g =
  Array.for_all (fun b -> Float.abs b <= tol) (imbalance g)

let random_circulation rng ~n ~cycles ~max_weight =
  if n < 2 then invalid_arg "Eulerian.random_circulation: n >= 2";
  if cycles < 1 then invalid_arg "Eulerian.random_circulation: cycles >= 1";
  let g = Digraph.create n in
  for _ = 1 to cycles do
    let len = 2 + Prng.int rng (n - 1) in
    let verts = Prng.sample_without_replacement rng ~k:len ~n in
    let w = 0.5 +. Prng.float rng max_weight in
    for i = 0 to len - 1 do
      Digraph.add_edge g verts.(i) verts.((i + 1) mod len) w
    done
  done;
  g

let make_circulation g =
  let n = Digraph.n g in
  if n < 2 then invalid_arg "Eulerian.make_circulation: n >= 2";
  let h = Digraph.copy g in
  let b = imbalance g in
  (* Correction flow x_v on the arc v -> v+1 (mod n) solving
     x_{v-1} - x_v = b_v: x_v = t - prefix_v with t chosen so x >= 0. *)
  let prefix = Array.make n 0.0 in
  let acc = ref 0.0 in
  for v = 0 to n - 1 do
    acc := !acc +. b.(v);
    prefix.(v) <- !acc
  done;
  let t = Array.fold_left Float.max 0.0 prefix in
  for v = 0 to n - 1 do
    let x = t -. prefix.(v) in
    if x > 1e-12 then Digraph.add_edge h v ((v + 1) mod n) x
  done;
  h

let of_cut g c =
  let fwd = Cut.value g c and bwd = Cut.value_rev g c in
  if bwd > 0.0 then fwd /. bwd else if fwd > 0.0 then infinity else 1.0

let exact g =
  let nv = Digraph.n g in
  if nv > 24 then invalid_arg "Balance.exact: graph too large (n > 24)";
  if nv < 2 then 1.0
  else begin
    (* Fix vertex 0 on the S side; the complementary cut is covered because
       we take the max of both directions for each enumerated S. *)
    let best = ref 0.0 in
    let limit = 1 lsl (nv - 1) in
    (* mask = limit - 1 would be the full vertex set; stop short of it. *)
    for mask = 0 to limit - 2 do
      let mem v = v = 0 || (mask lsr (v - 1)) land 1 = 1 in
      let c = Cut.of_mem ~n:nv mem in
      let fwd = Cut.value g c and bwd = Cut.value_rev g c in
      let ratio a b = if b > 0.0 then a /. b else if a > 0.0 then infinity else 1.0 in
      best := Float.max !best (Float.max (ratio fwd bwd) (ratio bwd fwd))
    done;
    if !best = 0.0 then 1.0 else !best
  end

let edgewise_upper_bound g =
  Digraph.fold_edges
    (fun u v w acc ->
      let rev = Digraph.weight g v u in
      let r = if rev > 0.0 then w /. rev else infinity in
      Float.max acc r)
    g 0.0

let sampled_lower_bound rng ~trials g =
  let nv = Digraph.n g in
  if nv < 2 then 1.0
  else begin
    let best = ref 0.0 in
    let consider c = best := Float.max !best (of_cut g c) in
    for v = 0 to nv - 1 do
      let s = Cut.singleton ~n:nv v in
      consider s;
      consider (Cut.complement s)
    done;
    for _ = 1 to trials do
      consider (Cut.random rng ~n:nv)
    done;
    !best
  end

let is_balanced g ~beta ~cuts =
  List.for_all
    (fun c -> Cut.value g c <= (beta *. Cut.value_rev g c) +. 1e-9)
    cuts

module Prng = Dcs_util.Prng

let erdos_renyi rng ~n ~p =
  let g = Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli rng p then Ugraph.add_edge g u v 1.0
    done
  done;
  g

let erdos_renyi_connected rng ~n ~p =
  let g = erdos_renyi rng ~n ~p in
  let perm = Prng.permutation rng n in
  for i = 0 to n - 2 do
    if not (Ugraph.mem_edge g perm.(i) perm.(i + 1)) then
      Ugraph.add_edge g perm.(i) perm.(i + 1) 1.0
  done;
  g

let gnm rng ~n ~m =
  let cap = n * (n - 1) / 2 in
  if m > cap then invalid_arg "Generators.gnm: too many edges";
  let g = Ugraph.create n in
  let placed = ref 0 in
  while !placed < m do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (Ugraph.mem_edge g u v) then begin
      Ugraph.add_edge g u v 1.0;
      incr placed
    end
  done;
  g

let random_digraph rng ~n ~p ~max_weight =
  let g = Digraph.create n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Prng.bernoulli rng p then begin
        let w = Prng.float rng max_weight in
        if w > 0.0 then Digraph.add_edge g u v w
      end
    done
  done;
  g

let balanced_digraph rng ~n ~p ~beta ~max_weight =
  if beta < 1.0 then invalid_arg "Generators.balanced_digraph: beta >= 1";
  let g = Digraph.create n in
  let add_pair u v w =
    (* Forward edge at weight w, reverse at w/beta: the edgewise condition
       guarantees β-balance of every cut. *)
    Digraph.add_edge g u v w;
    Digraph.add_edge g v u (w /. beta)
  in
  (* Random cycle for strong connectivity. *)
  let perm = Prng.permutation rng n in
  for i = 0 to n - 1 do
    let u = perm.(i) and v = perm.((i + 1) mod n) in
    add_pair u v (1.0 +. Prng.float rng max_weight)
  done;
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v && Prng.bernoulli rng p then
        add_pair u v (0.1 +. Prng.float rng max_weight)
    done
  done;
  g

let complete_bipartite_digraph ~left ~right ~fwd ~bwd =
  let g = Digraph.create (left + right) in
  for i = 0 to left - 1 do
    for j = 0 to right - 1 do
      let u = i and v = left + j in
      let wf = fwd i j in
      if wf > 0.0 then Digraph.add_edge g u v wf;
      let wb = bwd i j in
      if wb > 0.0 then Digraph.add_edge g v u wb
    done
  done;
  g

let planted_mincut rng ~block ~k ~p_inner =
  let n = 2 * block in
  let g = Ugraph.create n in
  let fill offset =
    for u = 0 to block - 1 do
      for v = u + 1 to block - 1 do
        if Prng.bernoulli rng p_inner then
          Ugraph.add_edge g (offset + u) (offset + v) 1.0
      done
    done;
    let perm = Prng.permutation rng block in
    for i = 0 to block - 2 do
      let u = offset + perm.(i) and v = offset + perm.(i + 1) in
      if not (Ugraph.mem_edge g u v) then Ugraph.add_edge g u v 1.0
    done
  in
  fill 0;
  fill block;
  let placed = ref 0 in
  while !placed < k do
    let u = Prng.int rng block and v = block + Prng.int rng block in
    if not (Ugraph.mem_edge g u v) then begin
      Ugraph.add_edge g u v 1.0;
      incr placed
    end
  done;
  g

let cycle ~n =
  let g = Ugraph.create n in
  if n >= 2 then
    for i = 0 to n - 1 do
      let j = (i + 1) mod n in
      if not (Ugraph.mem_edge g i j) then Ugraph.add_edge g i j 1.0
    done;
  g

let path ~n =
  let g = Ugraph.create n in
  for i = 0 to n - 2 do
    Ugraph.add_edge g i (i + 1) 1.0
  done;
  g

let complete ~n =
  let g = Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Ugraph.add_edge g u v 1.0
    done
  done;
  g

let hypercube ~dim =
  if dim < 1 || dim > 20 then invalid_arg "Generators.hypercube: dim in [1,20]";
  let n = 1 lsl dim in
  let g = Ugraph.create n in
  for v = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let u = v lxor (1 lsl b) in
      if u > v then Ugraph.add_edge g v u 1.0
    done
  done;
  g

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let g = Ugraph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Ugraph.add_edge g (id r c) (id r (c + 1)) 1.0;
      if r + 1 < rows then Ugraph.add_edge g (id r c) (id (r + 1) c) 1.0
    done
  done;
  g

let preferential_attachment rng ~n ~m_per_node =
  if m_per_node < 1 then invalid_arg "Generators.preferential_attachment: m >= 1";
  if n < m_per_node + 1 then
    invalid_arg "Generators.preferential_attachment: n too small";
  let g = Ugraph.create n in
  let seed = m_per_node + 1 in
  for u = 0 to seed - 1 do
    for v = u + 1 to seed - 1 do
      Ugraph.add_edge g u v 1.0
    done
  done;
  (* endpoint pool: each edge contributes both endpoints, so sampling from
     the pool is degree-proportional *)
  let pool = ref [] in
  Ugraph.iter_edges g (fun u v _ -> pool := u :: v :: !pool);
  let pool = ref (Array.of_list !pool) in
  let pool_len = ref (Array.length !pool) in
  let push x =
    if !pool_len >= Array.length !pool then begin
      let bigger = Array.make (max 16 (2 * Array.length !pool)) 0 in
      Array.blit !pool 0 bigger 0 !pool_len;
      pool := bigger
    end;
    !pool.(!pool_len) <- x;
    incr pool_len
  in
  for v = seed to n - 1 do
    let chosen = Hashtbl.create m_per_node in
    let guard = ref 0 in
    while Hashtbl.length chosen < m_per_node && !guard < 100 * m_per_node do
      incr guard;
      let u = !pool.(Prng.int rng !pool_len) in
      if u <> v then Hashtbl.replace chosen u ()
    done;
    Hashtbl.iter
      (fun u () ->
        Ugraph.add_edge g v u 1.0;
        push u;
        push v)
      chosen
  done;
  g

let random_regular rng ~n ~degree =
  if degree < 1 || degree >= n then invalid_arg "Generators.random_regular: degree";
  if n * degree mod 2 <> 0 then
    invalid_arg "Generators.random_regular: n * degree must be even";
  let rec attempt tries =
    if tries > 200 then
      invalid_arg "Generators.random_regular: failed to build a simple pairing"
    else begin
      let stubs = Array.make (n * degree) 0 in
      for v = 0 to n - 1 do
        for i = 0 to degree - 1 do
          stubs.((v * degree) + i) <- v
        done
      done;
      Prng.shuffle rng stubs;
      let g = Ugraph.create n in
      let ok = ref true in
      let i = ref 0 in
      while !ok && !i + 1 < Array.length stubs do
        let u = stubs.(!i) and v = stubs.(!i + 1) in
        if u = v || Ugraph.mem_edge g u v then ok := false
        else Ugraph.add_edge g u v 1.0;
        i := !i + 2
      done;
      if !ok then g else attempt (tries + 1)
    end
  in
  attempt 0

let random_multigraph_weights rng g ~max_weight =
  if max_weight < 1 then invalid_arg "Generators.random_multigraph_weights";
  let h = Ugraph.create (Ugraph.n g) in
  Ugraph.iter_edges g (fun u v _ ->
      Ugraph.set_edge h u v (float_of_int (1 + Prng.int rng max_weight)));
  h

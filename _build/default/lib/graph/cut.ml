type t = { side : bool array; card : int }

let of_array a =
  let card = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a in
  { side = Array.copy a; card }

let of_mem ~n f =
  if n < 0 then invalid_arg "Cut.of_mem";
  of_array (Array.init n f)

let of_indices ~n idx =
  let a = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Cut.of_indices: vertex out of range";
      a.(i) <- true)
    idx;
  of_array a

let singleton ~n v = of_indices ~n [ v ]

let n t = Array.length t.side
let mem t v = t.side.(v)
let cardinal t = t.card

let complement t = { side = Array.map not t.side; card = n t - t.card }

let to_list t =
  let out = ref [] in
  for i = n t - 1 downto 0 do
    if t.side.(i) then out := i :: !out
  done;
  !out

let union a b =
  if n a <> n b then invalid_arg "Cut.union: size mismatch";
  of_array (Array.mapi (fun i x -> x || mem b i) a.side)

let is_proper t = t.card > 0 && t.card < n t

let value g t =
  if Digraph.n g <> n t then invalid_arg "Cut.value: size mismatch";
  Digraph.cut_weight g (mem t)

let value_rev g t =
  if Digraph.n g <> n t then invalid_arg "Cut.value_rev: size mismatch";
  Digraph.cut_weight_into g (mem t)

let equal a b = n a = n b && a.side = b.side

let random rng ~n:nv =
  if nv < 2 then invalid_arg "Cut.random: need n >= 2";
  let rec go () =
    let c = of_mem ~n:nv (fun _ -> Dcs_util.Prng.bool rng) in
    if is_proper c then c else go ()
  in
  go ()

let random_of_size rng ~n:nv ~k =
  if k <= 0 || k >= nv then invalid_arg "Cut.random_of_size";
  let picks = Dcs_util.Prng.sample_without_replacement rng ~k ~n:nv in
  of_indices ~n:nv (Array.to_list picks)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)

type t = {
  nv : int;
  adj : (int, float) Hashtbl.t array;
  mutable edge_count : int;
}

let create nv =
  if nv < 0 then invalid_arg "Ugraph.create: negative size";
  { nv; adj = Array.init nv (fun _ -> Hashtbl.create 4); edge_count = 0 }

let n g = g.nv
let m g = g.edge_count

let check_vertex g u name =
  if u < 0 || u >= g.nv then invalid_arg (Printf.sprintf "Ugraph.%s: vertex %d" name u)

let weight g u v =
  check_vertex g u "weight";
  check_vertex g v "weight";
  Option.value (Hashtbl.find_opt g.adj.(u) v) ~default:0.0

let mem_edge g u v = weight g u v > 0.0

let set_edge g u v w =
  check_vertex g u "set_edge";
  check_vertex g v "set_edge";
  if u = v then invalid_arg "Ugraph.set_edge: self-loop";
  if w < 0.0 then invalid_arg "Ugraph.set_edge: negative weight";
  let existed = Hashtbl.mem g.adj.(u) v in
  if w = 0.0 then begin
    if existed then begin
      Hashtbl.remove g.adj.(u) v;
      Hashtbl.remove g.adj.(v) u;
      g.edge_count <- g.edge_count - 1
    end
  end
  else begin
    Hashtbl.replace g.adj.(u) v w;
    Hashtbl.replace g.adj.(v) u w;
    if not existed then g.edge_count <- g.edge_count + 1
  end

let add_edge g u v w =
  if w < 0.0 then invalid_arg "Ugraph.add_edge: negative weight";
  if w > 0.0 then set_edge g u v (weight g u v +. w)

let iter_neighbors g u f =
  check_vertex g u "iter_neighbors";
  Hashtbl.iter f g.adj.(u)

let degree g u =
  check_vertex g u "degree";
  Hashtbl.length g.adj.(u)

let weighted_degree g u =
  check_vertex g u "weighted_degree";
  Hashtbl.fold (fun _ w acc -> acc +. w) g.adj.(u) 0.0

let iter_edges g f =
  for u = 0 to g.nv - 1 do
    Hashtbl.iter (fun v w -> if u < v then f u v w) g.adj.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges g (fun u v w -> acc := f u v w !acc);
  !acc

let edges g = fold_edges (fun u v w acc -> (u, v, w) :: acc) g []

let total_weight g = fold_edges (fun _ _ w acc -> acc +. w) g 0.0

let of_edges nv es =
  let g = create nv in
  List.iter (fun (u, v, w) -> add_edge g u v w) es;
  g

let copy g =
  let h = create g.nv in
  iter_edges g (fun u v w -> set_edge h u v w);
  h

let cut_weight g mem =
  let acc = ref 0.0 in
  iter_edges g (fun u v w -> if mem u <> mem v then acc := !acc +. w);
  !acc

let cut_value g c =
  if n g <> Cut.n c then invalid_arg "Ugraph.cut_value: size mismatch";
  cut_weight g (Cut.mem c)

let to_digraph g =
  let d = Digraph.create g.nv in
  iter_edges g (fun u v w ->
      Digraph.set_edge d u v w;
      Digraph.set_edge d v u w);
  d

let of_digraph d =
  let g = create (Digraph.n d) in
  Digraph.iter_edges d (fun u v w -> add_edge g u v w);
  g

let neighbor_array g u =
  check_vertex g u "neighbor_array";
  let ns = Hashtbl.fold (fun v _ acc -> v :: acc) g.adj.(u) [] in
  let a = Array.of_list ns in
  Array.sort compare a;
  a

let equal a b =
  n a = n b
  && m a = m b
  && fold_edges (fun u v w acc -> acc && weight b u v = w) a true

let pp ppf g =
  Format.fprintf ppf "@[<v>ugraph n=%d m=%d@," (n g) (m g);
  iter_edges g (fun u v w -> Format.fprintf ppf "  %d -- %d  %g@," u v w);
  Format.fprintf ppf "@]"

lib/graph/generators.mli: Dcs_util Digraph Ugraph

lib/graph/ugraph.mli: Cut Digraph Format

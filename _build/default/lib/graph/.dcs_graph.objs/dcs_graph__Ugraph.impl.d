lib/graph/ugraph.ml: Array Cut Digraph Format Hashtbl List Option Printf

lib/graph/cut.mli: Dcs_util Digraph Format

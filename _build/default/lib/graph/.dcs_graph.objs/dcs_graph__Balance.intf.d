lib/graph/balance.mli: Cut Dcs_util Digraph

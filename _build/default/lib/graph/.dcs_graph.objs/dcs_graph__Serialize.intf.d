lib/graph/serialize.mli: Digraph Ugraph

lib/graph/traversal.ml: Array Digraph Queue Ugraph

lib/graph/eulerian.ml: Array Dcs_util Digraph Float

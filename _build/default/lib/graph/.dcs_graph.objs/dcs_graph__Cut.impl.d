lib/graph/cut.ml: Array Dcs_util Digraph Format List

lib/graph/eulerian.mli: Dcs_util Digraph

lib/graph/serialize.ml: Buffer Digraph List Printf Scanf Ugraph

lib/graph/balance.ml: Cut Digraph Float List

lib/graph/generators.ml: Array Dcs_util Digraph Hashtbl Ugraph

(** Chain-of-blocks vertex layout shared by both lower-bound constructions.

    Both Theorem 1.1 and Theorem 1.2 partition the n vertices into
    ℓ = n/k consecutive blocks V_0..V_{ℓ-1} of k vertices and encode an
    independent sub-instance into the complete bipartite graph between each
    consecutive pair (V_p, V_{p+1}); every backward edge (right to left
    within a pair) has the fixed weight 1/β. This module owns the vertex
    numbering and the instance-independent backward skeleton. *)

type t = { n : int; block : int; chains : int }

val create : n:int -> block:int -> t
(** Requires block >= 1, n a positive multiple of block, and at least two
    blocks. *)

val block_of_vertex : t -> int -> int
val block_start : t -> int -> int

val vertex : t -> chain:int -> offset:int -> int
(** Vertex id of the [offset]-th node of block [chain]. *)

val backward_skeleton : t -> weight:float -> Dcs_graph.Digraph.t
(** The graph holding only the backward edges: for every consecutive pair,
    every right vertex points to every left vertex with [weight]. Used by
    tests to validate the decoders' closed-form backward-weight
    subtraction. *)

val add_backward_edges : t -> weight:float -> Dcs_graph.Digraph.t -> unit
(** Install the backward skeleton into an existing graph. *)

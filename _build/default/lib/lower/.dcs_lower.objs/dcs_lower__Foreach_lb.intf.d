lib/lower/foreach_lb.mli: Dcs_graph Dcs_sketch Dcs_util Layout

lib/lower/layout.mli: Dcs_graph

lib/lower/foreach_lb.ml: Array Dcs_graph Dcs_linalg Dcs_sketch Dcs_util Float Layout Printf

lib/lower/forall_lb.ml: Array Dcs_comm Dcs_graph Dcs_sketch Dcs_util Layout Printf

lib/lower/naive_foreach.mli: Dcs_graph Dcs_sketch Dcs_util Layout

lib/lower/naive_foreach.ml: Array Dcs_graph Dcs_sketch Dcs_util Float Layout

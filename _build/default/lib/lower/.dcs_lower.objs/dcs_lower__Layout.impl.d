lib/lower/layout.ml: Dcs_graph

lib/lower/forall_lb.mli: Dcs_comm Dcs_graph Dcs_sketch Dcs_util Layout

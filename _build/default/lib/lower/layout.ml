module Digraph = Dcs_graph.Digraph

type t = { n : int; block : int; chains : int }

let create ~n ~block =
  if block < 1 then invalid_arg "Layout.create: block >= 1";
  if n <= 0 || n mod block <> 0 then
    invalid_arg "Layout.create: n must be a positive multiple of block";
  let chains = n / block in
  if chains < 2 then invalid_arg "Layout.create: need at least two blocks";
  { n; block; chains }

let block_of_vertex t v =
  if v < 0 || v >= t.n then invalid_arg "Layout.block_of_vertex";
  v / t.block

let block_start t c =
  if c < 0 || c >= t.chains then invalid_arg "Layout.block_start";
  c * t.block

let vertex t ~chain ~offset =
  if offset < 0 || offset >= t.block then invalid_arg "Layout.vertex: offset";
  block_start t chain + offset

let add_backward_edges t ~weight g =
  for p = 0 to t.chains - 2 do
    for right = 0 to t.block - 1 do
      for left = 0 to t.block - 1 do
        Digraph.add_edge g
          (vertex t ~chain:(p + 1) ~offset:right)
          (vertex t ~chain:p ~offset:left)
          weight
      done
    done
  done

let backward_skeleton t ~weight =
  let g = Digraph.create t.n in
  add_backward_edges t ~weight g;
  g

let create g =
  Sketch.of_digraph ~name:"exact"
    ~size_bits:(Sketch.digraph_encoding_bits g)
    (Dcs_graph.Digraph.copy g)

module Digraph = Dcs_graph.Digraph
module Ugraph = Dcs_graph.Ugraph

let check_params ~eps ~beta =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Directed_sparsifier: eps in (0,1)";
  if beta < 1.0 then invalid_arg "Directed_sparsifier: beta >= 1"

let probability ~oversample g =
  let proj = Ugraph.of_digraph g in
  let strengths = Strength.compute proj in
  fun u v _w ->
    let k = float_of_int (Strength.index strengths u v) in
    oversample /. k

let forall_sparsify ?(c = 4.0) rng ~eps ~beta g =
  check_params ~eps ~beta;
  let n = float_of_int (max 2 (Digraph.n g)) in
  let oversample = c *. beta *. log n /. (eps *. eps) in
  Importance.sample_digraph rng ~prob:(probability ~oversample g) g

let foreach_sparsify ?(c = 4.0) rng ~eps ~beta g =
  check_params ~eps ~beta;
  let oversample = c *. beta /. (eps *. eps) in
  Importance.sample_digraph rng ~prob:(probability ~oversample g) g

let to_sketch ~name h =
  Sketch.of_digraph ~name ~size_bits:(Sketch.digraph_encoding_bits h) h

let forall_sketch ?c rng ~eps ~beta g =
  to_sketch
    ~name:(Printf.sprintf "directed-forall(eps=%g,beta=%g)" eps beta)
    (forall_sparsify ?c rng ~eps ~beta g)

let foreach_sketch ?c rng ~eps ~beta g =
  to_sketch
    ~name:(Printf.sprintf "directed-foreach(eps=%g,beta=%g)" eps beta)
    (foreach_sparsify ?c rng ~eps ~beta g)
